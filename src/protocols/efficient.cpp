#include "protocols/efficient.h"

namespace fnda {

Outcome EfficientClearing::clear_sorted(const SortedBook& book, Rng&) const {
  return clear_sorted(book);
}

Outcome EfficientClearing::clear_sorted(const SortedBook& book) {
  Outcome outcome;
  const std::size_t k = book.efficient_trade_count();
  if (k == 0) return outcome;
  outcome.reserve(k);
  // Any price in [s(k), b(k)] clears all k trades; the midpoint splits the
  // marginal pair's surplus evenly.
  const Money price =
      Money::midpoint(book.buyer_value(k), book.seller_value(k));
  for (std::size_t rank = 1; rank <= k; ++rank) {
    outcome.add_buy(book.buyer(rank).id, book.buyer(rank).identity, price);
    outcome.add_sell(book.seller(rank).id, book.seller(rank).identity, price);
  }
  return outcome;
}

bool EfficientClearing::account_position(const SortedBook& ranked,
                                         const std::vector<OwnDeclaration>& own,
                                         AccountFills* out) const {
  const std::size_t k = ranked.efficient_trade_count();
  if (k == 0) return true;
  const Money price =
      Money::midpoint(ranked.buyer_value(k), ranked.seller_value(k));
  for (const OwnDeclaration& decl : own) {
    if (decl.rank > k) continue;
    if (decl.side == Side::kBuyer) {
      ++out->bought;
      out->paid += price;
    } else {
      ++out->sold;
      out->received += price;
    }
  }
  return true;
}

}  // namespace fnda
