// k-double auction (Chatterjee-Samuelson 1983, generalized).
//
// Executes the efficient allocation at the uniform price
//     p = theta * b(k) + (1 - theta) * s(k),  theta in [0, 1],
// i.e. a convex split of the marginal pair's surplus.  Budget balanced,
// individually rational, Pareto efficient on declared values — and NOT
// incentive compatible, even without false names: the marginal buyer can
// shade its bid to pull p down, the marginal seller can inflate to push
// it up (Myerson-Satterthwaite says something must give).  This is the
// classic pre-McAfee baseline; `bench/trilemma` and the mechanism tests
// use it to show why PMD/TPD sacrifice efficiency instead.
#pragma once

#include "core/protocol.h"

namespace fnda {

class KDoubleAuction final : public DoubleAuctionProtocol {
 public:
  /// `theta` is the buyer's share of the marginal pair's price weight,
  /// clamped to [0, 1].  theta = 0.5 is the split-the-difference auction.
  explicit KDoubleAuction(double theta = 0.5);

  /// Sort-once fast path; `clear` is the inherited sort-and-forward
  /// wrapper.
  Outcome clear_sorted(const SortedBook& book, Rng& rng) const override;
  std::string name() const override { return "kda"; }

  /// k-family bracket: p lies in [s(k), b(k)] by construction.
  PriceBracket price_bracket(const SortedBook& ranked,
                             std::size_t extra_declarations) const override {
    return k_double_auction_bracket(ranked, extra_declarations);
  }

  bool account_position(const SortedBook& ranked,
                        const std::vector<OwnDeclaration>& own,
                        AccountFills* out) const override;

  double theta() const { return theta_; }

  static Outcome clear_sorted(const SortedBook& book, double theta);

 private:
  double theta_;
};

}  // namespace fnda
