#include "protocols/kda.h"

#include <algorithm>
#include <cmath>

namespace fnda {

KDoubleAuction::KDoubleAuction(double theta)
    : theta_(std::clamp(theta, 0.0, 1.0)) {}

Outcome KDoubleAuction::clear_sorted(const SortedBook& book, Rng&) const {
  return clear_sorted(book, theta_);
}

Outcome KDoubleAuction::clear_sorted(const SortedBook& book, double theta) {
  Outcome outcome;
  const std::size_t k = book.efficient_trade_count();
  if (k == 0) return outcome;
  outcome.reserve(k);

  // p = theta * b(k) + (1 - theta) * s(k), rounded to a micro-unit.
  // b(k) >= s(k), so p lies in [s(k), b(k)] and IR holds on both sides.
  const double bk = static_cast<double>(book.buyer_value(k).micros());
  const double sk = static_cast<double>(book.seller_value(k).micros());
  const Money price = Money::from_micros(
      static_cast<std::int64_t>(std::llround(theta * bk + (1.0 - theta) * sk)));

  for (std::size_t rank = 1; rank <= k; ++rank) {
    outcome.add_buy(book.buyer(rank).id, book.buyer(rank).identity, price);
    outcome.add_sell(book.seller(rank).id, book.seller(rank).identity, price);
  }
  return outcome;
}

bool KDoubleAuction::account_position(const SortedBook& ranked,
                                      const std::vector<OwnDeclaration>& own,
                                      AccountFills* out) const {
  const std::size_t k = ranked.efficient_trade_count();
  if (k == 0) return true;
  // Exactly clear_sorted's price arithmetic, so positions match bit-wise.
  const double bk = static_cast<double>(ranked.buyer_value(k).micros());
  const double sk = static_cast<double>(ranked.seller_value(k).micros());
  const Money price = Money::from_micros(static_cast<std::int64_t>(
      std::llround(theta_ * bk + (1.0 - theta_) * sk)));
  for (const OwnDeclaration& decl : own) {
    if (decl.rank > k) continue;
    if (decl.side == Side::kBuyer) {
      ++out->bought;
      out->paid += price;
    } else {
      ++out->sold;
      out->received += price;
    }
  }
  return true;
}

}  // namespace fnda
