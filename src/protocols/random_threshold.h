// The naive randomized-threshold protocol discussed in Section 8.
//
// Fix a threshold price r; buyers with b >= r and sellers with s <= r are
// eligible; t = min(#eligible buyers, #eligible sellers) trades execute at
// price r between uniformly random eligible participants on each side.
//
// Without false-name bids this is trivially dominant-strategy incentive
// compatible (your declaration only gates eligibility, never the price).
// With false-name bids it is NOT: a buyer can submit many buyer bids to
// raise the probability that one of its names is drawn — exactly the
// lottery-stuffing attack the paper uses to motivate why robustness is a
// non-trivial property.  The mechanism/ layer demonstrates the attack.
#pragma once

#include "core/protocol.h"

namespace fnda {

class RandomThresholdProtocol final : public DoubleAuctionProtocol {
 public:
  explicit RandomThresholdProtocol(Money threshold);

  /// Sort-once fast path: the eligible sets are exactly the top
  /// `buyers_at_or_above(r)` / `sellers_at_or_below(r)` ranks, so the
  /// lottery draws directly from rank prefixes.  `rng` supplies the
  /// lottery only (tie-breaking is frozen into the ranking); `clear` is
  /// the inherited sort-and-forward wrapper.
  Outcome clear_sorted(const SortedBook& book, Rng& rng) const override;
  std::string name() const override { return "random-threshold"; }

  /// Every trade executes at exactly r regardless of how many extra
  /// declarations arrive, so the bracket degenerates to {r, r}.  The
  /// bound holds per lottery realization, hence in expectation too.
  /// No `account_position` override: the allocation consumes the rng
  /// stream, so positions cannot be recovered without replaying it.
  PriceBracket price_bracket(const SortedBook&,
                             std::size_t /*extra_declarations*/) const override {
    return PriceBracket{threshold_, threshold_, true};
  }

  Money threshold() const { return threshold_; }

 private:
  Money threshold_;
};

}  // namespace fnda
