// TPD with Bailey-Cavallo-style revenue rebates — a deliberate NEGATIVE
// result.
//
// Section 8 names TPD's main limitation: the auctioneer's revenue "is not
// desirable for the participants".  The textbook remedy is to rebate the
// revenue back: pay each participant 1/N of the revenue the mechanism
// would have collected WITHOUT that participant (so the rebate never
// depends on one's own declaration, preserving truthfulness for a fixed
// set of identities).
//
// In the false-name setting this repair is poisoned: identities are free,
// and every extra identity collects its own rebate share.  A participant
// can mint pseudonyms that bid nothing competitive and simply milk the
// rebate pool.  The tests demonstrate both halves: misreport-IC is
// preserved, false-name-proofness is destroyed — a concrete illustration
// of why the paper keeps the revenue with the auctioneer.
#pragma once

#include "core/protocol.h"

namespace fnda {

class TpdWithRebates final : public DoubleAuctionProtocol {
 public:
  explicit TpdWithRebates(Money threshold);

  /// TPD clearing plus rebates: participant identity i receives
  /// R(-i) / N, where R(-i) is the TPD auctioneer revenue with i's
  /// declaration removed (same threshold) and N is the number of
  /// participating identities.  Rebates can exceed the collected revenue
  /// on some books, so outcomes may run a deficit — validate with
  /// ValidationOptions{.allow_deficit = true}.  Both the trades and the
  /// rebates are functions of the ranking alone, so this rides the
  /// sort-once fast path; `clear` is the inherited wrapper.
  Outcome clear_sorted(const SortedBook& book, Rng& rng) const override;
  std::string name() const override { return "tpd-rebate"; }

  /// Fast position path: TPD trades via rank statistics plus each own
  /// identity's rebate recovered by rank arithmetic instead of the
  /// O(n log n) remove-and-reclear that `clear_sorted` performs per
  /// identity.  Rebates land in `AccountFills::received`, mirroring how
  /// `Outcome::rebate_of` folds into the serial evaluator's position.
  /// No `price_bracket` override: rebate income scales with the whole
  /// book's revenue and has no cheap upper bound, so an "exact" bracket
  /// would be unsound for utility pruning — better to advertise none.
  bool account_position(const SortedBook& ranked,
                        const std::vector<OwnDeclaration>& own,
                        AccountFills* out) const override;

  Money threshold() const { return threshold_; }

 private:
  Money threshold_;
};

}  // namespace fnda
