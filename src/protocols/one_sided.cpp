#include "protocols/one_sided.h"

#include <algorithm>
#include <stdexcept>

namespace fnda {
namespace {

void validate(const QuantityValuation& bid) {
  if (bid.values.empty() || bid.values.front() != Money{}) {
    throw std::invalid_argument(
        "QuantityValuation: values[0] must exist and be 0");
  }
  for (std::size_t q = 1; q < bid.values.size(); ++q) {
    if (bid.values[q] < bid.values[q - 1]) {
      throw std::invalid_argument(
          "QuantityValuation: values must be non-decreasing in quantity");
    }
  }
}

/// Max declared welfare allocating at most `units` among `bids`,
/// optionally skipping one bidder.  Returns the optimum and, when
/// `allocation` is non-null, the per-bidder quantities.
double best_welfare(const std::vector<QuantityValuation>& bids,
                    std::size_t units, std::size_t skip,
                    std::vector<std::size_t>* allocation) {
  const std::size_t n = bids.size();
  // dp[u] = best welfare using the bidders processed so far with u units
  // consumed; choice[i][u] = units given to bidder i at that optimum.
  std::vector<double> dp(units + 1, 0.0);
  std::vector<std::vector<std::size_t>> choice(
      n, std::vector<std::size_t>(units + 1, 0));

  for (std::size_t i = 0; i < n; ++i) {
    if (i == skip) continue;
    std::vector<double> next(units + 1, 0.0);
    for (std::size_t used = 0; used <= units; ++used) {
      double best = dp[used];
      std::size_t best_q = 0;
      const std::size_t max_q = std::min(bids[i].capacity(), used);
      for (std::size_t q = 1; q <= max_q; ++q) {
        const double candidate =
            dp[used - q] + bids[i].values[q].to_double();
        // Strict improvement keeps the allocation minimal (smaller
        // quantities and earlier bidders win ties deterministically).
        if (candidate > best + 1e-12) {
          best = candidate;
          best_q = q;
        }
      }
      next[used] = best;
      choice[i][used] = best_q;
    }
    dp = std::move(next);
  }

  // The best overall uses at most `units`; dp is monotone in used units.
  double best = 0.0;
  std::size_t best_used = 0;
  for (std::size_t used = 0; used <= units; ++used) {
    if (dp[used] > best + 1e-12) {
      best = dp[used];
      best_used = used;
    }
  }

  if (allocation != nullptr) {
    allocation->assign(n, 0);
    std::size_t used = best_used;
    for (std::size_t i = n; i-- > 0;) {
      if (i == skip) continue;
      const std::size_t q = choice[i][used];
      (*allocation)[i] = q;
      used -= q;
    }
  }
  return best;
}

}  // namespace

Money QuantityValuation::value_of(std::size_t quantity) const {
  const std::size_t q = std::min(quantity, capacity());
  return values[q];
}

bool QuantityValuation::has_decreasing_marginals() const {
  for (std::size_t q = 2; q < values.size(); ++q) {
    const Money previous = values[q - 1] - values[q - 2];
    const Money current = values[q] - values[q - 1];
    if (current > previous) return false;
  }
  return true;
}

GeneralizedVickreyAuction::GeneralizedVickreyAuction(std::size_t units)
    : units_(units) {
  if (units == 0) {
    throw std::invalid_argument("GeneralizedVickreyAuction: zero units");
  }
}

OneSidedResult GeneralizedVickreyAuction::run(
    const std::vector<QuantityValuation>& bids) const {
  for (const QuantityValuation& bid : bids) validate(bid);

  std::vector<std::size_t> allocation;
  const double welfare =
      best_welfare(bids, units_, bids.size(), &allocation);

  OneSidedResult result;
  result.declared_welfare = welfare;
  for (std::size_t i = 0; i < bids.size(); ++i) {
    if (allocation[i] == 0) continue;
    const double own = bids[i].values[allocation[i]].to_double();
    const double others_without =
        best_welfare(bids, units_, i, nullptr);
    const double others_with = welfare - own;
    const double pivot = others_without - others_with;
    OneSidedResult::Award award;
    award.identity = bids[i].identity;
    award.units = allocation[i];
    award.payment = Money::from_double(pivot);
    result.revenue += award.payment;
    result.awards.push_back(award);
  }
  return result;
}

const OneSidedResult::Award* OneSidedResult::award_for(
    IdentityId identity) const {
  for (const Award& award : awards) {
    if (award.identity == identity) return &award;
  }
  return nullptr;
}

VickreyResult run_vickrey(
    const std::vector<std::pair<IdentityId, Money>>& bids) {
  VickreyResult result;
  if (bids.empty()) return result;
  std::size_t best = 0;
  for (std::size_t i = 1; i < bids.size(); ++i) {
    if (bids[i].second > bids[best].second) best = i;
  }
  Money second;
  bool has_second = false;
  for (std::size_t i = 0; i < bids.size(); ++i) {
    if (i == best) continue;
    if (!has_second || bids[i].second > second) {
      second = bids[i].second;
      has_second = true;
    }
  }
  result.sold = true;
  result.winner = bids[best].first;
  result.price = has_second ? second : Money{};
  return result;
}

}  // namespace fnda
