#include "protocols/tpd.h"

#include <algorithm>

namespace fnda {

TpdProtocol::TpdProtocol(Money threshold) : threshold_(threshold) {}

Outcome TpdProtocol::clear_sorted(const SortedBook& book, Rng&) const {
  return clear_sorted(book, threshold_);
}

Outcome TpdProtocol::clear_sorted(const SortedBook& book, Money threshold) {
  Outcome outcome;
  const Money r = threshold;
  const std::size_t i = book.buyers_at_or_above(r);
  const std::size_t j = book.sellers_at_or_below(r);
  outcome.reserve(std::min(i, j));

  if (i == j) {
    // Balanced around r: everyone eligible trades at r, budget balanced.
    for (std::size_t rank = 1; rank <= i; ++rank) {
      outcome.add_buy(book.buyer(rank).id, book.buyer(rank).identity, r);
      outcome.add_sell(book.seller(rank).id, book.seller(rank).identity, r);
    }
  } else if (i > j) {
    // Excess demand: sellers are the short side.  The (j+1)-th buyer value
    // prices the buyers (it is >= r because j + 1 <= i).
    const Money buyer_price = book.buyer_value(j + 1);
    for (std::size_t rank = 1; rank <= j; ++rank) {
      outcome.add_buy(book.buyer(rank).id, book.buyer(rank).identity,
                      buyer_price);
      outcome.add_sell(book.seller(rank).id, book.seller(rank).identity, r);
    }
  } else {
    // Excess supply: buyers are the short side.  The (i+1)-th seller value
    // prices the sellers (it is <= r because i + 1 <= j).
    const Money seller_price = book.seller_value(i + 1);
    for (std::size_t rank = 1; rank <= i; ++rank) {
      outcome.add_buy(book.buyer(rank).id, book.buyer(rank).identity, r);
      outcome.add_sell(book.seller(rank).id, book.seller(rank).identity,
                       seller_price);
    }
  }
  return outcome;
}

PriceBracket TpdProtocol::price_bracket(const SortedBook&,
                                        std::size_t) const {
  return PriceBracket{threshold_, threshold_, true};
}

void TpdProtocol::position_on(const SortedBook& ranked, Money threshold,
                              const std::vector<OwnDeclaration>& own,
                              AccountFills* out) {
  const Money r = threshold;
  const std::size_t i = ranked.buyers_at_or_above(r);
  const std::size_t j = ranked.sellers_at_or_below(r);
  const std::size_t trades = std::min(i, j);
  // Mirrors clear_sorted's three cases: only the long side's price moves
  // off r, and the trading set is always the rank prefix 1..min(i, j).
  const Money buyer_price = i > j ? ranked.buyer_value(j + 1) : r;
  const Money seller_price = i < j ? ranked.seller_value(i + 1) : r;
  for (const OwnDeclaration& decl : own) {
    if (decl.rank > trades) continue;
    if (decl.side == Side::kBuyer) {
      ++out->bought;
      out->paid += buyer_price;
    } else {
      ++out->sold;
      out->received += seller_price;
    }
  }
}

bool TpdProtocol::account_position(const SortedBook& ranked,
                                   const std::vector<OwnDeclaration>& own,
                                   AccountFills* out) const {
  position_on(ranked, threshold_, own, out);
  return true;
}

}  // namespace fnda
