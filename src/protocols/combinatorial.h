// Reservation-price combinatorial auction.
//
// The paper's Section 5 opens: "we present a robust double auction
// protocol that utilizes a concept similar to that presented in [14]" —
// Yokoo, Sakurai & Matsubara's robust *combinatorial* auction (AAAI-2000),
// whose key idea is reservation prices fixed before bidding.  This module
// is a conceptual reconstruction of that idea (documented as such in
// DESIGN.md, not a line-by-line port):
//
//   - the seller posts a reservation price per good, before any bid;
//   - a bundle bid is ELIGIBLE iff its declared value is at least the sum
//     of its bundle's reservation prices;
//   - the allocation picks the conflict-free set of eligible bids that
//     maximizes the seller's REVENUE — i.e. the sum of reservation prices
//     of goods sold — NOT declared values (ties broken deterministically
//     by earlier submission);
//   - every winner pays exactly its bundle's reservation-price sum.
//
// Because declared values only gate eligibility and never influence the
// price or the revenue objective, truthful bidding is dominant and extra
// identities buy nothing a single identity couldn't: this is posted
// pricing over bundles, exactly the lever TPD pulls with its threshold.
// The tests verify both properties by exhaustive deviation search.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/money.h"

namespace fnda {

/// Goods are indices 0..good_count-1; a bundle is a bitmask over them.
using Bundle = std::uint32_t;

/// One single-minded bid: `identity` wants exactly `bundle`, declaring
/// value `value` for it (and, implicitly, 0 for anything else).
struct BundleBid {
  IdentityId identity;
  Bundle bundle = 0;
  Money value;
};

struct CombinatorialResult {
  struct Award {
    IdentityId identity;
    Bundle bundle = 0;
    Money payment;  // the bundle's reservation-price sum
  };
  std::vector<Award> awards;
  Money revenue;
  std::size_t eligible_bids = 0;

  const Award* award_for(IdentityId identity) const;
};

/// The auction.  Limited to 20 goods (bitmask DP over 2^goods states).
class ReservationPriceAuction {
 public:
  /// One reservation price per good, fixed before bidding.
  explicit ReservationPriceAuction(std::vector<Money> reservation_prices);

  /// Sum of reservation prices over a bundle.
  Money bundle_price(Bundle bundle) const;

  /// Runs the auction.  Bids with empty bundles or bundles referencing
  /// unknown goods throw std::invalid_argument.
  CombinatorialResult run(const std::vector<BundleBid>& bids) const;

  std::size_t good_count() const { return reservation_prices_.size(); }

 private:
  std::vector<Money> reservation_prices_;
};

}  // namespace fnda
