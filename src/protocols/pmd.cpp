#include "protocols/pmd.h"

namespace fnda {

Outcome PmdProtocol::clear_sorted(const SortedBook& book, Rng&) const {
  return clear_sorted(book);
}

Outcome PmdProtocol::clear_sorted(const SortedBook& book) {
  Outcome outcome;
  const std::size_t k = book.efficient_trade_count();
  if (k == 0) return outcome;
  outcome.reserve(k);

  // Sentinel ranks are valid: buyer_value(m+1) / seller_value(n+1) return
  // the domain bounds, exactly the paper's b(m+1) / s(n+1).
  const Money p0 =
      Money::midpoint(book.buyer_value(k + 1), book.seller_value(k + 1));
  const Money bk = book.buyer_value(k);
  const Money sk = book.seller_value(k);

  if (sk <= p0 && p0 <= bk) {
    // Condition 1: all k efficient trades execute at the uniform price p0.
    for (std::size_t rank = 1; rank <= k; ++rank) {
      outcome.add_buy(book.buyer(rank).id, book.buyer(rank).identity, p0);
      outcome.add_sell(book.seller(rank).id, book.seller(rank).identity, p0);
    }
  } else {
    // Condition 2: the marginal pair (k) is excluded and prices the rest.
    for (std::size_t rank = 1; rank + 1 <= k; ++rank) {
      outcome.add_buy(book.buyer(rank).id, book.buyer(rank).identity, bk);
      outcome.add_sell(book.seller(rank).id, book.seller(rank).identity, sk);
    }
  }
  return outcome;
}

bool PmdProtocol::account_position(const SortedBook& ranked,
                                   const std::vector<OwnDeclaration>& own,
                                   AccountFills* out) const {
  const std::size_t k = ranked.efficient_trade_count();
  if (k == 0) return true;
  const Money p0 =
      Money::midpoint(ranked.buyer_value(k + 1), ranked.seller_value(k + 1));
  const Money bk = ranked.buyer_value(k);
  const Money sk = ranked.seller_value(k);
  // Same branch as clear_sorted: condition 1 trades ranks 1..k at p0,
  // condition 2 trades ranks 1..k-1 at (bk, sk).
  const bool uniform = sk <= p0 && p0 <= bk;
  const std::size_t cutoff = uniform ? k : k - 1;
  const Money buyer_price = uniform ? p0 : bk;
  const Money seller_price = uniform ? p0 : sk;
  for (const OwnDeclaration& decl : own) {
    if (decl.rank > cutoff) continue;
    if (decl.side == Side::kBuyer) {
      ++out->bought;
      out->paid += buyer_price;
    } else {
      ++out->sold;
      out->received += seller_price;
    }
  }
  return true;
}

}  // namespace fnda
