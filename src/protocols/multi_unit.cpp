#include "protocols/multi_unit.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

namespace fnda {
namespace {

/// Assigns each identity a random key, then orders unit entries by value
/// (direction chosen by `ascending`), identity key, unit index.  Equal
/// values within one identity therefore never interleave with another
/// identity's, and lower unit indices rank first — the two properties the
/// Section 9 protocol requires of its unit ordering.
std::vector<UnitEntry> rank_units(const std::vector<UnitEntry>& units,
                                  bool ascending, Rng& rng) {
  std::unordered_map<IdentityId, std::uint64_t> keys;
  for (const UnitEntry& u : units) {
    if (!keys.contains(u.identity)) keys.emplace(u.identity, rng());
  }
  std::vector<UnitEntry> ranked = units;
  std::sort(ranked.begin(), ranked.end(),
            [&](const UnitEntry& a, const UnitEntry& b) {
              if (a.value != b.value) {
                return ascending ? a.value < b.value : a.value > b.value;
              }
              const auto ka = keys.at(a.identity);
              const auto kb = keys.at(b.identity);
              if (ka != kb) return ka < kb;
              return a.unit_index < b.unit_index;
            });
  return ranked;
}

}  // namespace

void MultiUnitBook::validate(const std::vector<Money>& marginal_values) {
  if (marginal_values.empty()) {
    throw std::invalid_argument("MultiUnitBook: empty marginal-value vector");
  }
  for (std::size_t i = 1; i < marginal_values.size(); ++i) {
    if (marginal_values[i] > marginal_values[i - 1]) {
      throw std::invalid_argument(
          "MultiUnitBook: marginal values must be non-increasing "
          "(Section 9 assumes decreasing marginal utility)");
    }
  }
}

void MultiUnitBook::add_buyer(IdentityId identity,
                              std::vector<Money> marginal_values) {
  validate(marginal_values);
  buyer_units_ += marginal_values.size();
  buyers_.push_back(MultiUnitBid{identity, std::move(marginal_values)});
}

void MultiUnitBook::add_seller(IdentityId identity,
                               std::vector<Money> marginal_values) {
  validate(marginal_values);
  seller_units_ += marginal_values.size();
  sellers_.push_back(MultiUnitBid{identity, std::move(marginal_values)});
}

std::vector<UnitEntry> MultiUnitBook::ranked_buyer_units(Rng& rng) const {
  std::vector<UnitEntry> units;
  units.reserve(buyer_units_);
  for (const MultiUnitBid& bid : buyers_) {
    for (std::size_t k = 0; k < bid.marginal_values.size(); ++k) {
      // Buyer trade order follows the declared order: the first unit
      // acquired is worth b_{x,1}.
      units.push_back(UnitEntry{bid.identity, k + 1, bid.marginal_values[k]});
    }
  }
  return rank_units(units, /*ascending=*/false, rng);
}

std::vector<UnitEntry> MultiUnitBook::ranked_seller_units(Rng& rng) const {
  std::vector<UnitEntry> units;
  units.reserve(seller_units_);
  for (const MultiUnitBid& bid : sellers_) {
    const std::size_t capacity = bid.marginal_values.size();
    for (std::size_t k = 0; k < capacity; ++k) {
      // Seller trade order is cheapest-unit-first: the first unit sold is
      // the declared vector's last (least-valued) entry, s_{y,K}.
      units.push_back(
          UnitEntry{bid.identity, k + 1, bid.marginal_values[capacity - 1 - k]});
    }
  }
  return rank_units(units, /*ascending=*/true, rng);
}

std::size_t MultiUnitOutcome::units_traded() const {
  std::size_t units = 0;
  for (const BuyerResult& b : buyers) units += b.units;
  return units;
}

Money MultiUnitOutcome::buyer_payments() const {
  Money total;
  for (const BuyerResult& b : buyers) total += b.total_paid;
  return total;
}

Money MultiUnitOutcome::seller_receipts() const {
  Money total;
  for (const SellerResult& s : sellers) total += s.total_received;
  return total;
}

const MultiUnitOutcome::BuyerResult* MultiUnitOutcome::buyer(
    IdentityId identity) const {
  for (const BuyerResult& b : buyers) {
    if (b.identity == identity) return &b;
  }
  return nullptr;
}

const MultiUnitOutcome::SellerResult* MultiUnitOutcome::seller(
    IdentityId identity) const {
  for (const SellerResult& s : sellers) {
    if (s.identity == identity) return &s;
  }
  return nullptr;
}

std::vector<std::string> validate_multi_outcome(
    const MultiUnitBook& book, const MultiUnitOutcome& outcome) {
  std::vector<std::string> errors;
  auto fail = [&errors](const std::string& message) {
    errors.push_back(message);
  };

  std::unordered_map<IdentityId, const MultiUnitBid*> buyer_bids;
  std::unordered_map<IdentityId, const MultiUnitBid*> seller_bids;
  for (const MultiUnitBid& b : book.buyers()) buyer_bids.emplace(b.identity, &b);
  for (const MultiUnitBid& s : book.sellers()) seller_bids.emplace(s.identity, &s);

  std::size_t bought = 0;
  std::size_t sold = 0;
  for (const auto& b : outcome.buyers) {
    bought += b.units;
    auto it = buyer_bids.find(b.identity);
    if (it == buyer_bids.end()) {
      std::ostringstream os;
      os << "buyer result for unknown identity " << b.identity;
      fail(os.str());
      continue;
    }
    const auto& declared = it->second->marginal_values;
    if (b.units > declared.size()) {
      std::ostringstream os;
      os << "buyer " << b.identity << " awarded " << b.units
         << " units but declared demand for " << declared.size();
      fail(os.str());
      continue;
    }
    Money declared_value;
    for (std::size_t k = 0; k < b.units; ++k) declared_value += declared[k];
    if (b.total_paid > declared_value) {
      std::ostringstream os;
      os << "buyer aggregate IR violated for " << b.identity << ": pays "
         << b.total_paid << " for units declared worth " << declared_value;
      fail(os.str());
    }
    Money sum;
    for (Money p : b.unit_payments) sum += p;
    if (sum != b.total_paid || b.unit_payments.size() != b.units) {
      std::ostringstream os;
      os << "buyer " << b.identity << " per-unit payments inconsistent";
      fail(os.str());
    }
  }
  for (const auto& s : outcome.sellers) {
    sold += s.units;
    auto it = seller_bids.find(s.identity);
    if (it == seller_bids.end()) {
      std::ostringstream os;
      os << "seller result for unknown identity " << s.identity;
      fail(os.str());
      continue;
    }
    const auto& declared = it->second->marginal_values;
    if (s.units > declared.size()) {
      std::ostringstream os;
      os << "seller " << s.identity << " sold " << s.units
         << " units but holds only " << declared.size();
      fail(os.str());
      continue;
    }
    // A seller parting with k units gives up its k least-valued units.
    Money declared_cost;
    for (std::size_t k = 0; k < s.units; ++k) {
      declared_cost += declared[declared.size() - 1 - k];
    }
    if (s.total_received < declared_cost) {
      std::ostringstream os;
      os << "seller aggregate IR violated for " << s.identity << ": receives "
         << s.total_received << " for units declared worth " << declared_cost;
      fail(os.str());
    }
    Money sum;
    for (Money p : s.unit_receipts) sum += p;
    if (sum != s.total_received || s.unit_receipts.size() != s.units) {
      std::ostringstream os;
      os << "seller " << s.identity << " per-unit receipts inconsistent";
      fail(os.str());
    }
  }

  if (bought != sold) {
    std::ostringstream os;
    os << "goods not conserved: " << bought << " bought vs " << sold << " sold";
    fail(os.str());
  }
  if (outcome.auctioneer_revenue() < Money{}) {
    std::ostringstream os;
    os << "auctioneer subsidises the market: revenue "
       << outcome.auctioneer_revenue();
    fail(os.str());
  }
  return errors;
}

MultiUnitSurplus realized_multi_surplus(const MultiUnitOutcome& outcome,
                                        const MultiUnitTruth& truth) {
  MultiUnitSurplus surplus;
  for (const auto& b : outcome.buyers) {
    const auto& values = truth.buyer_values.at(b.identity);
    double gained = 0.0;
    for (std::size_t k = 0; k < b.units; ++k) gained += values.at(k).to_double();
    surplus.except_auctioneer += gained - b.total_paid.to_double();
  }
  for (const auto& s : outcome.sellers) {
    const auto& values = truth.seller_values.at(s.identity);
    double lost = 0.0;
    for (std::size_t k = 0; k < s.units; ++k) {
      lost += values.at(values.size() - 1 - k).to_double();
    }
    surplus.except_auctioneer += s.total_received.to_double() - lost;
  }
  surplus.auctioneer = outcome.auctioneer_revenue().to_double();
  surplus.total = surplus.except_auctioneer + surplus.auctioneer;
  return surplus;
}

double efficient_multi_surplus(const MultiUnitBook& true_book, Rng& rng) {
  const auto bids = true_book.ranked_buyer_units(rng);
  const auto asks = true_book.ranked_seller_units(rng);
  const std::size_t limit = std::min(bids.size(), asks.size());
  double surplus = 0.0;
  for (std::size_t t = 0; t < limit; ++t) {
    if (bids[t].value < asks[t].value) break;
    surplus += (bids[t].value - asks[t].value).to_double();
  }
  return surplus;
}

}  // namespace fnda
