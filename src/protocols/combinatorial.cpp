#include "protocols/combinatorial.h"

#include <stdexcept>

namespace fnda {

ReservationPriceAuction::ReservationPriceAuction(
    std::vector<Money> reservation_prices)
    : reservation_prices_(std::move(reservation_prices)) {
  if (reservation_prices_.empty() || reservation_prices_.size() > 20) {
    throw std::invalid_argument(
        "ReservationPriceAuction: need 1..20 goods (bitmask DP)");
  }
}

Money ReservationPriceAuction::bundle_price(Bundle bundle) const {
  Money total;
  for (std::size_t g = 0; g < reservation_prices_.size(); ++g) {
    if ((bundle >> g) & 1u) total += reservation_prices_[g];
  }
  return total;
}

CombinatorialResult ReservationPriceAuction::run(
    const std::vector<BundleBid>& bids) const {
  const Bundle all = static_cast<Bundle>(
      (1ull << reservation_prices_.size()) - 1);
  for (const BundleBid& bid : bids) {
    if (bid.bundle == 0 || (bid.bundle & ~all) != 0) {
      throw std::invalid_argument(
          "ReservationPriceAuction: bundle empty or references unknown goods");
    }
  }

  // Eligibility: declared value covers the posted bundle price.  This is
  // the ONLY place declared values enter the mechanism.
  std::vector<std::size_t> eligible;
  for (std::size_t i = 0; i < bids.size(); ++i) {
    if (bids[i].value >= bundle_price(bids[i].bundle)) eligible.push_back(i);
  }

  // Revenue-maximising conflict-free packing of eligible bundles, by DP
  // over the set of goods sold.  Strict improvement keeps the earliest
  // bids on ties (deterministic).
  const std::size_t states = static_cast<std::size_t>(all) + 1;
  std::vector<std::int64_t> revenue(states, -1);
  std::vector<std::int32_t> chosen_bid(states, -1);
  std::vector<Bundle> previous(states, 0);
  revenue[0] = 0;

  for (std::size_t index : eligible) {
    const Bundle bundle = bids[index].bundle;
    const std::int64_t price = bundle_price(bundle).micros();
    // Iterate masks downward so each bid is used at most once.
    for (Bundle mask = all;; --mask) {
      if (revenue[mask] >= 0 && (mask & bundle) == 0) {
        const Bundle next = mask | bundle;
        if (revenue[mask] + price > revenue[next]) {
          revenue[next] = revenue[mask] + price;
          chosen_bid[next] = static_cast<std::int32_t>(index);
          previous[next] = mask;
        }
      }
      if (mask == 0) break;
    }
  }

  Bundle best_mask = 0;
  for (Bundle mask = 0; mask <= all; ++mask) {
    if (revenue[mask] > revenue[best_mask]) best_mask = mask;
  }

  CombinatorialResult result;
  result.eligible_bids = eligible.size();
  for (Bundle mask = best_mask; mask != 0; mask = previous[mask]) {
    const BundleBid& bid = bids[static_cast<std::size_t>(chosen_bid[mask])];
    CombinatorialResult::Award award;
    award.identity = bid.identity;
    award.bundle = bid.bundle;
    award.payment = bundle_price(bid.bundle);
    result.revenue += award.payment;
    result.awards.push_back(award);
  }
  return result;
}

const CombinatorialResult::Award* CombinatorialResult::award_for(
    IdentityId identity) const {
  for (const Award& award : awards) {
    if (award.identity == identity) return &award;
  }
  return nullptr;
}

}  // namespace fnda
