// Multi-unit demand/supply declarations (Section 9 setting).
//
// A buyer declares a non-increasing vector of marginal values
// b_{x,1} >= b_{x,2} >= ...  (value of the k-th unit acquired).  A seller
// holding K units declares s_{y,1} >= ... >= s_{y,K}; per the paper, the
// minimum price at which y parts with its *first* sold unit is s_{y,K}
// (it gives up the least-valued unit first), so the seller's ask ladder is
// the declared vector reversed.
#pragma once

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/money.h"
#include "common/rng.h"
#include "core/bid.h"
#include "core/outcome.h"

namespace fnda {

/// One multi-unit declaration.  `marginal_values` must be non-increasing
/// and non-empty; the constructor-free struct is validated when added to a
/// MultiUnitBook.
struct MultiUnitBid {
  IdentityId identity;
  std::vector<Money> marginal_values;
};

/// One pooled unit-level entry: the `unit_index`-th unit (1-based, in
/// trade order) of `identity`'s declaration, at unit value `value`.
/// For sellers, trade order is cheapest-unit-first, so unit_index 1 maps
/// to the *last* element of the declared marginal vector.
struct UnitEntry {
  IdentityId identity;
  std::size_t unit_index;
  Money value;
};

/// Book of multi-unit declarations with unit-level order statistics.
class MultiUnitBook {
 public:
  MultiUnitBook() = default;

  /// Adds a declaration; throws std::invalid_argument if the marginal
  /// vector is empty or increases anywhere (the Section 9 protocol is only
  /// defined for non-increasing marginal utilities).
  void add_buyer(IdentityId identity, std::vector<Money> marginal_values);
  void add_seller(IdentityId identity, std::vector<Money> marginal_values);

  const std::vector<MultiUnitBid>& buyers() const { return buyers_; }
  const std::vector<MultiUnitBid>& sellers() const { return sellers_; }

  /// Total units demanded / supplied.
  std::size_t buyer_units() const { return buyer_units_; }
  std::size_t seller_units() const { return seller_units_; }

  /// Pooled buyer unit values, sorted descending with seeded random
  /// tie-breaking between identities; within one identity, lower unit
  /// indices always rank first (decreasing marginal utility guarantees
  /// their values are >=, and equal values must not straddle a boundary).
  std::vector<UnitEntry> ranked_buyer_units(Rng& rng) const;
  /// Pooled seller unit asks, sorted ascending, same tie-break contract.
  std::vector<UnitEntry> ranked_seller_units(Rng& rng) const;

 private:
  static void validate(const std::vector<Money>& marginal_values);

  std::vector<MultiUnitBid> buyers_;
  std::vector<MultiUnitBid> sellers_;
  std::size_t buyer_units_ = 0;
  std::size_t seller_units_ = 0;
};

/// Result of a multi-unit clearing: per-identity unit counts and totals.
/// Aggregate individual rationality (total payment <= sum of the winning
/// units' declared marginals) replaces the single-unit per-fill check.
struct MultiUnitOutcome {
  struct BuyerResult {
    IdentityId identity;
    std::size_t units = 0;
    Money total_paid;
    /// Per-unit payments in trade order (GVA terms); sums to total_paid.
    std::vector<Money> unit_payments;
  };
  struct SellerResult {
    IdentityId identity;
    std::size_t units = 0;
    Money total_received;
    std::vector<Money> unit_receipts;
  };

  std::vector<BuyerResult> buyers;
  std::vector<SellerResult> sellers;

  std::size_t units_traded() const;
  Money buyer_payments() const;
  Money seller_receipts() const;
  Money auctioneer_revenue() const {
    return buyer_payments() - seller_receipts();
  }

  const BuyerResult* buyer(IdentityId identity) const;
  const SellerResult* seller(IdentityId identity) const;
};

/// Invariants of a multi-unit outcome against its book: unit conservation,
/// per-identity unit counts within declared capacity, aggregate IR on
/// declared values, non-negative auctioneer revenue.  Empty means valid.
std::vector<std::string> validate_multi_outcome(const MultiUnitBook& book,
                                                const MultiUnitOutcome& outcome);

/// True multi-unit valuations, keyed by identity.
struct MultiUnitTruth {
  std::unordered_map<IdentityId, std::vector<Money>> buyer_values;
  std::unordered_map<IdentityId, std::vector<Money>> seller_values;
};

/// Realised social surplus (total / except auctioneer) of a multi-unit
/// outcome under true marginal valuations.  A seller parting with k units
/// loses its k cheapest units' values.
struct MultiUnitSurplus {
  double total = 0.0;
  double except_auctioneer = 0.0;
  double auctioneer = 0.0;
};
MultiUnitSurplus realized_multi_surplus(const MultiUnitOutcome& outcome,
                                        const MultiUnitTruth& truth);

/// Pareto-efficient surplus of a book of true values: pooled unit bids vs
/// pooled unit asks, greedily matched while the bid meets the ask.
double efficient_multi_surplus(const MultiUnitBook& true_book, Rng& rng);

}  // namespace fnda
