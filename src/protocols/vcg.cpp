#include "protocols/vcg.h"

#include <algorithm>

namespace fnda {

Outcome VcgDoubleAuction::clear_sorted(const SortedBook& book, Rng&) const {
  return clear_sorted(book);
}

Money VcgDoubleAuction::buyer_price(const SortedBook& book) {
  const std::size_t k = book.efficient_trade_count();
  return std::max(book.buyer_value(k + 1), book.seller_value(k));
}

Money VcgDoubleAuction::seller_price(const SortedBook& book) {
  const std::size_t k = book.efficient_trade_count();
  return std::min(book.seller_value(k + 1), book.buyer_value(k));
}

Outcome VcgDoubleAuction::clear_sorted(const SortedBook& book) {
  Outcome outcome;
  const std::size_t k = book.efficient_trade_count();
  if (k == 0) return outcome;
  outcome.reserve(k);
  const Money pay = buyer_price(book);
  const Money get = seller_price(book);
  for (std::size_t rank = 1; rank <= k; ++rank) {
    outcome.add_buy(book.buyer(rank).id, book.buyer(rank).identity, pay);
    outcome.add_sell(book.seller(rank).id, book.seller(rank).identity, get);
  }
  return outcome;
}

bool VcgDoubleAuction::account_position(const SortedBook& ranked,
                                        const std::vector<OwnDeclaration>& own,
                                        AccountFills* out) const {
  const std::size_t k = ranked.efficient_trade_count();
  if (k == 0) return true;
  const Money pay = buyer_price(ranked);
  const Money get = seller_price(ranked);
  for (const OwnDeclaration& decl : own) {
    if (decl.rank > k) continue;
    if (decl.side == Side::kBuyer) {
      ++out->bought;
      out->paid += pay;
    } else {
      ++out->sold;
      out->received += get;
    }
  }
  return true;
}

}  // namespace fnda
