// TPD: the Threshold Price Double auction protocol — the paper's
// contribution (Section 5).
//
// The auctioneer fixes a threshold price r *before* seeing any declaration.
// With i = #{buyers with b >= r} and j = #{sellers with s <= r}:
//
//   1. i == j:  ranks (1)..(i) trade; both sides at price r.
//   2. i  > j:  ranks (1)..(j) trade; buyers pay b(j+1), sellers get r;
//               the auctioneer keeps j * (b(j+1) - r).
//   3. i  < j:  ranks (1)..(i) trade; buyers pay r, sellers get s(i+1);
//               the auctioneer keeps i * (r - s(i+1)).
//
// TPD is dominant-strategy incentive compatible even when participants can
// submit false-name bids (Theorem 1), at the cost of handing the spread to
// the auctioneer when the market is unbalanced around r.
#pragma once

#include "core/protocol.h"

namespace fnda {

class TpdProtocol final : public DoubleAuctionProtocol {
 public:
  /// `threshold` is the paper's r.  It must be announced independently of
  /// the declarations; this class simply holds the chosen value.
  explicit TpdProtocol(Money threshold);

  /// Sort-once fast path: TPD is a pure function of the ranking, so the
  /// inherited `clear` wrapper (sort, then forward here) is the raw-book
  /// entry point.
  Outcome clear_sorted(const SortedBook& book, Rng& rng) const override;
  std::string name() const override { return "tpd"; }

  /// TPD prices bracket at the threshold from both sides: a buyer pays r
  /// or b(j+1) >= r, a seller receives r or s(i+1) <= r, regardless of how
  /// many declarations are added.  The bracket is therefore exact and
  /// independent of `extra_declarations` — TPD prunes tightest of all.
  PriceBracket price_bracket(const SortedBook& ranked,
                             std::size_t extra_declarations) const override;

  /// O(log n + |own|): the trade cutoff is min(i, j) and both prices are
  /// rank statistics, so one account's fills need no Outcome at all.
  bool account_position(const SortedBook& ranked,
                        const std::vector<OwnDeclaration>& own,
                        AccountFills* out) const override;

  Money threshold() const { return threshold_; }

  /// Deterministic core on an already-ranked book.
  static Outcome clear_sorted(const SortedBook& book, Money threshold);

  /// `account_position` core, shared with TpdWithRebates' trade half.
  static void position_on(const SortedBook& ranked, Money threshold,
                          const std::vector<OwnDeclaration>& own,
                          AccountFills* out);

 private:
  Money threshold_;
};

}  // namespace fnda
