#include "protocols/tpd_rebate.h"

#include "protocols/tpd.h"

namespace fnda {
namespace {

/// TPD auctioneer revenue of `book` with the declaration of `skip`
/// removed.  Deterministic: uses its own fixed tie-break stream (revenue
/// depends only on values, not on tie order).
Money revenue_without(const SortedBook& book, IdentityId skip,
                      Money threshold) {
  OrderBook reduced(book.domain());
  for (const BidEntry& entry : book.buyers()) {
    if (entry.identity != skip) reduced.add_buyer(entry.identity, entry.value);
  }
  for (const BidEntry& entry : book.sellers()) {
    if (entry.identity != skip) {
      reduced.add_seller(entry.identity, entry.value);
    }
  }
  // Revenue is a function of the declared values alone (tie order only
  // permutes same-valued fills), so a fixed stream is safe here.
  Rng rng(0x2eba7e);
  const Outcome outcome = TpdProtocol(threshold).clear(reduced, rng);
  return outcome.auctioneer_revenue();
}

}  // namespace

TpdWithRebates::TpdWithRebates(Money threshold) : threshold_(threshold) {}

Outcome TpdWithRebates::clear_sorted(const SortedBook& book, Rng&) const {
  Outcome outcome = TpdProtocol::clear_sorted(book, threshold_);

  // One rebate per participating identity (an identity with several
  // declarations would collect once per declaration — which is exactly
  // the vulnerability this module demonstrates, since identities are
  // free to mint).
  std::vector<IdentityId> identities;
  identities.reserve(book.buyer_count() + book.seller_count());
  for (const BidEntry& entry : book.buyers()) {
    identities.push_back(entry.identity);
  }
  for (const BidEntry& entry : book.sellers()) {
    identities.push_back(entry.identity);
  }
  if (identities.empty()) return outcome;

  const auto n = static_cast<std::int64_t>(identities.size());
  for (IdentityId identity : identities) {
    const Money reduced_revenue =
        revenue_without(book, identity, threshold_);
    if (reduced_revenue <= Money{}) continue;
    outcome.add_rebate(identity,
                       Money::from_micros(reduced_revenue.micros() / n));
  }
  return outcome;
}

}  // namespace fnda
