#include "protocols/tpd_rebate.h"

#include "protocols/tpd.h"

namespace fnda {
namespace {

/// TPD auctioneer revenue of `book` with the declaration of `skip`
/// removed.  Deterministic: uses its own fixed tie-break stream (revenue
/// depends only on values, not on tie order).
Money revenue_without(const SortedBook& book, IdentityId skip,
                      Money threshold) {
  OrderBook reduced(book.domain());
  for (const BidEntry& entry : book.buyers()) {
    if (entry.identity != skip) reduced.add_buyer(entry.identity, entry.value);
  }
  for (const BidEntry& entry : book.sellers()) {
    if (entry.identity != skip) {
      reduced.add_seller(entry.identity, entry.value);
    }
  }
  // Revenue is a function of the declared values alone (tie order only
  // permutes same-valued fills), so a fixed stream is safe here.
  Rng rng(0x2eba7e);
  const Outcome outcome = TpdProtocol(threshold).clear(reduced, rng);
  return outcome.auctioneer_revenue();
}

/// Value at rank `y` of a buyer lane with the entry at rank `removed`
/// deleted (`removed == 0`: nothing deleted from this lane).  Deleting a
/// rank shifts everything behind it forward by one, so the reduced lane's
/// rank y maps to the full lane's rank y (before the hole) or y+1 (after).
Money buyer_value_without(const SortedBook& ranked, std::size_t y,
                          std::size_t removed) {
  if (removed != 0 && y >= removed) ++y;
  return ranked.buyer_value(y);
}

Money seller_value_without(const SortedBook& ranked, std::size_t y,
                          std::size_t removed) {
  if (removed != 0 && y >= removed) ++y;
  return ranked.seller_value(y);
}

/// `revenue_without` by rank arithmetic on the full ranking: O(log n)
/// instead of rebuild-and-reclear.  Removing one declaration shifts at
/// most its own lane's ranks and decrements at most one of the eligible
/// counts; revenue is then the usual TPD case split on the reduced book.
Money revenue_without_ranked(const SortedBook& ranked, Money r, Side side,
                             std::size_t rank, Money value) {
  std::size_t i = ranked.buyers_at_or_above(r);
  std::size_t j = ranked.sellers_at_or_below(r);
  std::size_t removed_buyer = 0;
  std::size_t removed_seller = 0;
  if (side == Side::kBuyer) {
    removed_buyer = rank;
    if (value >= r) --i;
  } else {
    removed_seller = rank;
    if (value <= r) --j;
  }
  if (i == j) return Money{};
  if (i > j) {
    // j trades; buyers pay b'(j+1) >= r, sellers receive r.
    const Money pay = buyer_value_without(ranked, j + 1, removed_buyer);
    return Money::from_micros(static_cast<std::int64_t>(j) *
                              (pay.micros() - r.micros()));
  }
  // i trades; buyers pay r, sellers receive s'(i+1) <= r.
  const Money get = seller_value_without(ranked, i + 1, removed_seller);
  return Money::from_micros(static_cast<std::int64_t>(i) *
                            (r.micros() - get.micros()));
}

}  // namespace

TpdWithRebates::TpdWithRebates(Money threshold) : threshold_(threshold) {}

Outcome TpdWithRebates::clear_sorted(const SortedBook& book, Rng&) const {
  Outcome outcome = TpdProtocol::clear_sorted(book, threshold_);

  // One rebate per participating identity (an identity with several
  // declarations would collect once per declaration — which is exactly
  // the vulnerability this module demonstrates, since identities are
  // free to mint).
  std::vector<IdentityId> identities;
  identities.reserve(book.buyer_count() + book.seller_count());
  for (const BidEntry& entry : book.buyers()) {
    identities.push_back(entry.identity);
  }
  for (const BidEntry& entry : book.sellers()) {
    identities.push_back(entry.identity);
  }
  if (identities.empty()) return outcome;

  const auto n = static_cast<std::int64_t>(identities.size());
  for (IdentityId identity : identities) {
    const Money reduced_revenue =
        revenue_without(book, identity, threshold_);
    if (reduced_revenue <= Money{}) continue;
    outcome.add_rebate(identity,
                       Money::from_micros(reduced_revenue.micros() / n));
  }
  return outcome;
}

bool TpdWithRebates::account_position(const SortedBook& ranked,
                                      const std::vector<OwnDeclaration>& own,
                                      AccountFills* out) const {
  TpdProtocol::position_on(ranked, threshold_, own, out);
  const auto n =
      static_cast<std::int64_t>(ranked.buyer_count() + ranked.seller_count());
  if (n == 0) return true;
  for (const OwnDeclaration& decl : own) {
    // Same divisor and positivity gate as clear_sorted's rebate loop.
    const Money revenue = revenue_without_ranked(ranked, threshold_, decl.side,
                                                 decl.rank, decl.value);
    if (revenue <= Money{}) continue;
    out->received += Money::from_micros(revenue.micros() / n);
  }
  return true;
}

}  // namespace fnda
