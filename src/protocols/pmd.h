// PMD: Preston McAfee's dominant-strategy double auction (McAfee 1992),
// as described in Section 3 of the paper.
//
// With order statistics b(1) >= ... >= b(m), s(1) <= ... <= s(n), sentinels
// b(m+1) = lowest possible value and s(n+1) = highest possible value, and
// k = max{ i : b(i) >= s(i) }, the candidate price is
// p0 = (b(k+1) + s(k+1)) / 2 and the rule is:
//
//   1. if s(k) <= p0 <= b(k):  ranks (1)..(k) trade at p0 (budget balanced);
//   2. otherwise:              ranks (1)..(k-1) trade; each buyer pays b(k),
//                              each seller receives s(k); the auctioneer
//                              keeps (k-1) * (b(k) - s(k)).
//
// PMD is dominant-strategy incentive compatible when false-name bids are
// impossible, and is the baseline the paper's Section 4 examples attack.
#pragma once

#include "core/protocol.h"

namespace fnda {

class PmdProtocol final : public DoubleAuctionProtocol {
 public:
  PmdProtocol() = default;

  /// Sort-once fast path; `clear` is the inherited sort-and-forward
  /// wrapper.
  Outcome clear_sorted(const SortedBook& book, Rng& rng) const override;
  std::string name() const override { return "pmd"; }

  /// k-double-auction family bracket: buyers never pay below s(k) (p0 and
  /// b(k) both dominate it), sellers never receive above b(k).
  PriceBracket price_bracket(const SortedBook& ranked,
                             std::size_t extra_declarations) const override {
    return k_double_auction_bracket(ranked, extra_declarations);
  }

  bool account_position(const SortedBook& ranked,
                        const std::vector<OwnDeclaration>& own,
                        AccountFills* out) const override;

  /// Deterministic core on an already-ranked book; exposed so tests can
  /// pin tie-breaking.
  static Outcome clear_sorted(const SortedBook& book);
};

}  // namespace fnda
