// Multi-unit TPD: the Section 9 extension of the threshold-price protocol
// to multi-unit demand/supply with decreasing marginal utilities.
//
// Pool every buyer's unit values (descending) and every seller's unit asks
// (ascending, cheapest unit first); with i = #unit-bids >= r and
// j = #unit-asks <= r:
//
//   1. i == j: the top i unit-bids and unit-asks trade at r per unit.
//   2. i  > j: the top j unit-bids win; sellers receive r per unit; a buyer
//              x winning k units pays sum over l = j-k+1..j of
//              max(b^x_(l), r), where b^x_(l) is the l-th largest buyer
//              unit value excluding x's own units (generalized-Vickrey
//              pricing, Varian 1995); the auctioneer keeps the difference.
//   3. i  < j: symmetric: buyers pay r per unit; a seller y selling k units
//              receives sum over l = i-k+1..i of min(s^y_(l), r).
//
// Under decreasing marginal utilities this is dominant-strategy incentive
// compatible against false-name bids (Section 9, by the argument of
// Sakurai-Yokoo-Matsubara AAAI-99 for the GVA).
#pragma once

#include "common/money.h"
#include "common/rng.h"
#include "protocols/multi_unit.h"

namespace fnda {

class TpdMultiUnitProtocol {
 public:
  explicit TpdMultiUnitProtocol(Money threshold);

  /// Clears the book; `rng` supplies identity tie-breaking.
  MultiUnitOutcome clear(const MultiUnitBook& book, Rng& rng) const;

  Money threshold() const { return threshold_; }
  std::string name() const { return "tpd-multi"; }

 private:
  Money threshold_;
};

}  // namespace fnda
