// VCG (Vickrey-Clarke-Groves) double auction.
//
// The third corner of the design space the paper navigates.  VCG executes
// the efficient allocation and charges each winner its Clarke pivot — the
// welfare externality it imposes on everyone else:
//
//   buyer x at winning rank i pays   W(-x) - (W - b(i))
//   seller y at winning rank j gets  (W - s(j) ... ) analogously,
//
// where W is the declared efficient welfare and W(-x) the declared
// efficient welfare with x removed.  This is dominant-strategy incentive
// compatible (without false names) and Pareto efficient, but it runs a
// BUDGET DEFICIT: buyer payments fall short of seller receipts, and the
// auctioneer must inject the difference.  That deficit is exactly why
// McAfee-style trade reduction (PMD) and the paper's threshold pricing
// (TPD) exist; `bench/trilemma` quantifies it.
//
// Outcomes from this protocol intentionally fail the budget-balance
// invariant; validate it with ValidationOptions{.allow_deficit = true}.
#pragma once

#include "core/protocol.h"

namespace fnda {

class VcgDoubleAuction final : public DoubleAuctionProtocol {
 public:
  VcgDoubleAuction() = default;

  /// Sort-once fast path; `clear` is the inherited sort-and-forward
  /// wrapper.
  Outcome clear_sorted(const SortedBook& book, Rng& rng) const override;
  std::string name() const override { return "vcg"; }

  /// k-family bracket holds: pay = max(b(k+1), s(k)) >= s(k) and
  /// get = min(s(k+1), b(k)) <= b(k) on every reachable book.
  PriceBracket price_bracket(const SortedBook& ranked,
                             std::size_t extra_declarations) const override {
    return k_double_auction_bracket(ranked, extra_declarations);
  }

  bool account_position(const SortedBook& ranked,
                        const std::vector<OwnDeclaration>& own,
                        AccountFills* out) const override;

  static Outcome clear_sorted(const SortedBook& book);

  /// The Clarke pivot is rank-independent in the single-unit double
  /// auction: every winning buyer pays max(b(k+1), s(k)) and every winning
  /// seller receives min(s(k+1), b(k)).  (Removing a winner either leaves
  /// k trades — the next buyer b(k+1) steps in — or drops to k-1 trades —
  /// the marginal seller s(k) exits; the externality is whichever is
  /// larger.)  Exposed for the tests' brute-force cross-checks.
  static Money buyer_price(const SortedBook& book);
  static Money seller_price(const SortedBook& book);
};

}  // namespace fnda
