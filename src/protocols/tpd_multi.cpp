#include "protocols/tpd_multi.h"

#include <algorithm>
#include <optional>
#include <unordered_map>

namespace fnda {
namespace {

/// Winning unit counts per identity from the first `t` ranked units.
std::unordered_map<IdentityId, std::size_t> winners_by_identity(
    const std::vector<UnitEntry>& ranked, std::size_t t) {
  std::unordered_map<IdentityId, std::size_t> counts;
  for (std::size_t u = 0; u < t; ++u) ++counts[ranked[u].identity];
  return counts;
}

/// The l-th largest (descending input) or l-th smallest (ascending input)
/// unit value excluding `self`'s units; 1-based l.  When fewer than l
/// competitor units exist the caller's max/min against r makes the value
/// irrelevant, signalled here by std::nullopt.
std::optional<Money> nth_excluding(const std::vector<UnitEntry>& ranked,
                                   IdentityId self, std::size_t l) {
  std::size_t seen = 0;
  for (const UnitEntry& u : ranked) {
    if (u.identity == self) continue;
    if (++seen == l) return u.value;
  }
  return std::nullopt;
}

}  // namespace

TpdMultiUnitProtocol::TpdMultiUnitProtocol(Money threshold)
    : threshold_(threshold) {}

MultiUnitOutcome TpdMultiUnitProtocol::clear(const MultiUnitBook& book,
                                             Rng& rng) const {
  const Money r = threshold_;
  const std::vector<UnitEntry> bids = book.ranked_buyer_units(rng);
  const std::vector<UnitEntry> asks = book.ranked_seller_units(rng);

  std::size_t i = 0;
  while (i < bids.size() && bids[i].value >= r) ++i;
  std::size_t j = 0;
  while (j < asks.size() && asks[j].value <= r) ++j;

  MultiUnitOutcome outcome;
  const std::size_t trades = std::min(i, j);
  if (trades == 0) return outcome;

  const auto buyer_wins = winners_by_identity(bids, trades);
  const auto seller_wins = winners_by_identity(asks, trades);

  if (i == j) {
    // Balanced: everything at the threshold price, budget balanced.
    for (const auto& [identity, units] : buyer_wins) {
      MultiUnitOutcome::BuyerResult result{identity, units, r * static_cast<std::int64_t>(units), {}};
      result.unit_payments.assign(units, r);
      outcome.buyers.push_back(std::move(result));
    }
    for (const auto& [identity, units] : seller_wins) {
      MultiUnitOutcome::SellerResult result{identity, units, r * static_cast<std::int64_t>(units), {}};
      result.unit_receipts.assign(units, r);
      outcome.sellers.push_back(std::move(result));
    }
  } else if (i > j) {
    // Excess demand: sellers all receive r; buyers pay GVA prices.
    for (const auto& [identity, units] : seller_wins) {
      MultiUnitOutcome::SellerResult result{identity, units, r * static_cast<std::int64_t>(units), {}};
      result.unit_receipts.assign(units, r);
      outcome.sellers.push_back(std::move(result));
    }
    for (const auto& [identity, k] : buyer_wins) {
      MultiUnitOutcome::BuyerResult result{identity, k, Money{}, {}};
      for (std::size_t l = j - k + 1; l <= j; ++l) {
        const auto competitor = nth_excluding(bids, identity, l);
        const Money term =
            competitor.has_value() ? std::max(*competitor, r) : r;
        result.unit_payments.push_back(term);
        result.total_paid += term;
      }
      outcome.buyers.push_back(std::move(result));
    }
  } else {
    // Excess supply: buyers all pay r; sellers receive GVA prices.
    for (const auto& [identity, units] : buyer_wins) {
      MultiUnitOutcome::BuyerResult result{identity, units, r * static_cast<std::int64_t>(units), {}};
      result.unit_payments.assign(units, r);
      outcome.buyers.push_back(std::move(result));
    }
    for (const auto& [identity, k] : seller_wins) {
      MultiUnitOutcome::SellerResult result{identity, k, Money{}, {}};
      for (std::size_t l = i - k + 1; l <= i; ++l) {
        const auto competitor = nth_excluding(asks, identity, l);
        const Money term =
            competitor.has_value() ? std::min(*competitor, r) : r;
        result.unit_receipts.push_back(term);
        result.total_received += term;
      }
      outcome.sellers.push_back(std::move(result));
    }
  }
  return outcome;
}

}  // namespace fnda
