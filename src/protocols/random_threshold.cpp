#include "protocols/random_threshold.h"

#include <algorithm>

namespace fnda {

RandomThresholdProtocol::RandomThresholdProtocol(Money threshold)
    : threshold_(threshold) {}

Outcome RandomThresholdProtocol::clear(const OrderBook& book, Rng& rng) const {
  Outcome outcome;
  const Money r = threshold_;

  std::vector<const BidEntry*> eligible_buyers;
  std::vector<const BidEntry*> eligible_sellers;
  for (const BidEntry& e : book.buyers()) {
    if (e.value >= r) eligible_buyers.push_back(&e);
  }
  for (const BidEntry& e : book.sellers()) {
    if (e.value <= r) eligible_sellers.push_back(&e);
  }

  const std::size_t trades =
      std::min(eligible_buyers.size(), eligible_sellers.size());
  rng.shuffle(eligible_buyers.begin(), eligible_buyers.end());
  rng.shuffle(eligible_sellers.begin(), eligible_sellers.end());

  for (std::size_t t = 0; t < trades; ++t) {
    outcome.add_buy(eligible_buyers[t]->id, eligible_buyers[t]->identity, r);
    outcome.add_sell(eligible_sellers[t]->id, eligible_sellers[t]->identity,
                     r);
  }
  return outcome;
}

}  // namespace fnda
