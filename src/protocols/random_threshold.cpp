#include "protocols/random_threshold.h"

#include <algorithm>

namespace fnda {

RandomThresholdProtocol::RandomThresholdProtocol(Money threshold)
    : threshold_(threshold) {}

Outcome RandomThresholdProtocol::clear_sorted(const SortedBook& book,
                                              Rng& rng) const {
  Outcome outcome;
  const Money r = threshold_;

  // The ranking puts every eligible buyer in ranks 1..i and every
  // eligible seller in ranks 1..j, so eligibility needs no scan.
  const std::size_t i = book.buyers_at_or_above(r);
  const std::size_t j = book.sellers_at_or_below(r);

  std::vector<const BidEntry*> eligible_buyers;
  std::vector<const BidEntry*> eligible_sellers;
  eligible_buyers.reserve(i);
  eligible_sellers.reserve(j);
  for (std::size_t rank = 1; rank <= i; ++rank) {
    eligible_buyers.push_back(&book.buyer(rank));
  }
  for (std::size_t rank = 1; rank <= j; ++rank) {
    eligible_sellers.push_back(&book.seller(rank));
  }

  const std::size_t trades = std::min(i, j);
  rng.shuffle(eligible_buyers.begin(), eligible_buyers.end());
  rng.shuffle(eligible_sellers.begin(), eligible_sellers.end());

  outcome.reserve(trades);
  for (std::size_t t = 0; t < trades; ++t) {
    outcome.add_buy(eligible_buyers[t]->id, eligible_buyers[t]->identity, r);
    outcome.add_sell(eligible_sellers[t]->id, eligible_sellers[t]->identity,
                     r);
  }
  return outcome;
}

}  // namespace fnda
