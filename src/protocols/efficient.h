// Pareto-efficient clearing oracle.
//
// Executes the efficient allocation (ranks (1)..(k) trade, k per Section 3)
// at the uniform price (b(k) + s(k)) / 2, which is individually rational
// and budget balanced.  This protocol is NOT incentive compatible — the
// Myerson–Satterthwaite theorem rules that out — and exists only as the
// denominator for the efficiency ratios the paper reports and as a test
// oracle for allocation optimality.
#pragma once

#include "core/protocol.h"

namespace fnda {

class EfficientClearing final : public DoubleAuctionProtocol {
 public:
  EfficientClearing() = default;

  /// Sort-once fast path; `clear` is the inherited sort-and-forward
  /// wrapper.
  Outcome clear_sorted(const SortedBook& book, Rng& rng) const override;
  std::string name() const override { return "efficient"; }

  /// k-family bracket: the midpoint price lies in [s(k), b(k)].
  PriceBracket price_bracket(const SortedBook& ranked,
                             std::size_t extra_declarations) const override {
    return k_double_auction_bracket(ranked, extra_declarations);
  }

  bool account_position(const SortedBook& ranked,
                        const std::vector<OwnDeclaration>& own,
                        AccountFills* out) const override;

  static Outcome clear_sorted(const SortedBook& book);
};

}  // namespace fnda
