// One-sided (single-seller) auctions: Vickrey and the generalized Vickrey
// auction (GVA).
//
// The paper's robustness program starts here: Sakurai, Yokoo & Matsubara
// (AAAI-99, the paper's ref [8]) showed the GVA is robust against
// false-name bids exactly when every participant's marginal utilities
// decrease, and manipulable otherwise; the multi-unit TPD of Section 9
// imports that argument.  This module implements the protocols so the
// boundary can be demonstrated:
//
//   - single-unit Vickrey: false-name-proof outright (extra identities
//     can only raise your own price);
//   - multi-unit GVA with general quantity valuations: efficient and
//     DSIC, but an identity split beats truth once complements are in
//     play (the classic all-or-nothing counterexample, reproduced in the
//     tests and `bench/one_sided_lineage`).
#pragma once

#include <cstddef>
#include <vector>

#include "common/ids.h"
#include "common/money.h"

namespace fnda {

/// A declared valuation over quantities: value(q) for q = 0..capacity,
/// with value(0) == 0 and monotone non-decreasing.  Marginal utilities
/// need NOT decrease — complements are expressible (that is the point).
struct QuantityValuation {
  IdentityId identity;
  /// values[q] is the total value of holding q units; values[0] must be 0.
  std::vector<Money> values;

  std::size_t capacity() const { return values.size() - 1; }
  Money value_of(std::size_t quantity) const;

  /// True if marginal utilities are non-increasing (concave values).
  bool has_decreasing_marginals() const;
};

/// Result of a one-sided multi-unit auction.
struct OneSidedResult {
  struct Award {
    IdentityId identity;
    std::size_t units = 0;
    Money payment;
  };
  std::vector<Award> awards;  // winners only, in bid order
  double declared_welfare = 0.0;
  Money revenue;

  const Award* award_for(IdentityId identity) const;
};

/// Generalized Vickrey auction for `units` identical units.
///
/// Allocation maximizes declared welfare (dynamic program over bidders);
/// ties prefer earlier bidders and smaller quantities, deterministically.
/// Winner i pays its Clarke pivot: W(-i) - (W - v_i(q_i)).
class GeneralizedVickreyAuction {
 public:
  explicit GeneralizedVickreyAuction(std::size_t units);

  /// Bids must have value(0) == 0 and non-decreasing values; throws
  /// std::invalid_argument otherwise.
  OneSidedResult run(const std::vector<QuantityValuation>& bids) const;

  std::size_t units() const { return units_; }

 private:
  std::size_t units_;
};

/// Single-unit Vickrey (second-price) auction: the k = 1 special case,
/// with the familiar interface.  Ties prefer the earlier bid.
struct VickreyResult {
  bool sold = false;
  IdentityId winner;
  Money price;  // the second-highest bid (or 0 with a single bidder)
};
VickreyResult run_vickrey(const std::vector<std::pair<IdentityId, Money>>& bids);

}  // namespace fnda
