// Minimal JSON writer.
//
// Hand-rolled because the only need is machine-readable output from the
// CLI and audit dumps; there is no JSON *parsing* anywhere in the library.
// The writer produces compact, valid JSON with correctly escaped strings.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/outcome.h"
#include "market/audit.h"
#include "market/settlement.h"

namespace fnda {

/// Streaming JSON builder.  Usage:
///   JsonWriter w;
///   w.begin_object();
///   w.key("trades"); w.value(3);
///   w.key("fills"); w.begin_array(); ... w.end_array();
///   w.end_object();
///   std::string out = w.str();
/// The builder inserts commas automatically; mismatched begin/end is the
/// caller's bug and trips an assertion-style exception.
class JsonWriter {
 public:
  void begin_object();
  void end_object();
  void begin_array();
  void end_array();
  void key(const std::string& name);

  void value(const std::string& text);
  void value(const char* text) { value(std::string(text)); }
  void value(std::int64_t number);
  void value(std::uint64_t number);
  void value(int number) { value(static_cast<std::int64_t>(number)); }
  void value(double number);
  void value(bool flag);
  void null();

  /// The finished document.  Throws std::logic_error if containers are
  /// still open.
  std::string str() const;

  /// Escapes a string per RFC 8259 (quotes, backslash, control chars).
  static std::string escape(const std::string& text);

 private:
  void prefix();

  std::string out_;
  // Stack of container states: true = expecting a key next (object),
  // false = array.  `first_` tracks comma insertion per level.
  std::vector<bool> is_object_;
  std::vector<bool> first_;
  bool pending_key_ = false;
};

/// Outcome -> JSON: {"trades":N,"auctioneer_revenue":x,"fills":[...]}
std::string outcome_to_json(const Outcome& outcome);

/// Audit log -> JSON array of records.
std::string audit_to_json(const AuditLog& log);

/// One exchange round -> JSON: outcome + settlement summary.
std::string settlement_to_json(const SettlementReport& report);

}  // namespace fnda
