// CSV import/export for books and outcomes.
//
// The CLI's interchange format.  Deliberately minimal: comma-separated,
// `#` comments, blank lines ignored, no quoting (none of the values need
// it).  Book rows are `side,identity,value`, e.g.
//
//     # side,identity,value
//     buyer,1,9
//     seller,11,4.5
//
#pragma once

#include <istream>
#include <string>
#include <vector>

#include "core/order_book.h"
#include "core/outcome.h"
#include "protocols/multi_unit.h"

namespace fnda {

/// Splits CSV text into rows of trimmed cells.  `#`-prefixed lines and
/// blank lines are dropped.
std::vector<std::vector<std::string>> parse_csv(const std::string& text);

/// Parses a Money value ("4.5", "12", "0.000001"); throws
/// std::invalid_argument on malformed input.
Money parse_money(const std::string& text);

/// Reads a book from CSV rows of `side,identity,value`.  A header row
/// `side,identity,value` is skipped if present.  Throws
/// std::invalid_argument with a row number on any malformed row.
OrderBook read_book_csv(const std::string& text, ValueDomain domain = {});

/// Book -> CSV (with header), one row per declaration.
std::string write_book_csv(const OrderBook& book);

/// Outcome -> CSV: `side,identity,price` per fill, with header.
std::string write_outcome_csv(const Outcome& outcome);

/// Multi-unit book rows are `side,identity,schedule` with the marginal
/// values joined by ';' in non-increasing order, e.g. `buyer,1,9;8;6`.
MultiUnitBook read_multi_book_csv(const std::string& text);

/// Multi-unit outcome -> CSV: `side,identity,units,total,per_unit` where
/// per_unit joins the unit prices with ';'.
std::string write_multi_outcome_csv(const MultiUnitOutcome& outcome);

}  // namespace fnda
