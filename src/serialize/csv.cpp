#include "serialize/csv.h"

#include <cctype>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace fnda {
namespace {

std::string trim(const std::string& text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

}  // namespace

std::vector<std::vector<std::string>> parse_csv(const std::string& text) {
  std::vector<std::vector<std::string>> rows;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    const std::string stripped = trim(line);
    if (stripped.empty() || stripped.front() == '#') continue;
    std::vector<std::string> cells;
    std::istringstream cell_stream(stripped);
    std::string cell;
    while (std::getline(cell_stream, cell, ',')) {
      cells.push_back(trim(cell));
    }
    if (!stripped.empty() && stripped.back() == ',') cells.push_back("");
    rows.push_back(std::move(cells));
  }
  return rows;
}

Money parse_money(const std::string& text) {
  if (text.empty()) throw std::invalid_argument("parse_money: empty value");
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == nullptr || *end != '\0' || errno != 0) {
    throw std::invalid_argument("parse_money: malformed value '" + text + "'");
  }
  return Money::from_double(value);
}

OrderBook read_book_csv(const std::string& text, ValueDomain domain) {
  OrderBook book(domain);
  const auto rows = parse_csv(text);
  for (std::size_t r = 0; r < rows.size(); ++r) {
    const auto& row = rows[r];
    if (r == 0 && !row.empty() && row[0] == "side") continue;  // header
    if (row.size() != 3) {
      throw std::invalid_argument("read_book_csv: row " + std::to_string(r) +
                                  " needs side,identity,value");
    }
    Side side;
    if (row[0] == "buyer") {
      side = Side::kBuyer;
    } else if (row[0] == "seller") {
      side = Side::kSeller;
    } else {
      throw std::invalid_argument("read_book_csv: row " + std::to_string(r) +
                                  " has unknown side '" + row[0] + "'");
    }
    errno = 0;
    char* end = nullptr;
    const unsigned long long id = std::strtoull(row[1].c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || row[1].empty() || errno != 0) {
      throw std::invalid_argument("read_book_csv: row " + std::to_string(r) +
                                  " has malformed identity '" + row[1] + "'");
    }
    book.add(side, IdentityId{id}, parse_money(row[2]));
  }
  return book;
}

std::string write_book_csv(const OrderBook& book) {
  std::ostringstream os;
  os << "side,identity,value\n";
  for (const BidEntry& entry : book.buyers()) {
    os << "buyer," << entry.identity.value() << ',' << entry.value << '\n';
  }
  for (const BidEntry& entry : book.sellers()) {
    os << "seller," << entry.identity.value() << ',' << entry.value << '\n';
  }
  return os.str();
}

namespace {

std::vector<Money> parse_schedule(const std::string& text) {
  std::vector<Money> values;
  std::istringstream stream(text);
  std::string part;
  while (std::getline(stream, part, ';')) {
    values.push_back(parse_money(part));
  }
  if (values.empty()) {
    throw std::invalid_argument("parse_schedule: empty schedule");
  }
  return values;
}

std::string join_prices(const std::vector<Money>& prices) {
  std::string out;
  for (Money price : prices) {
    if (!out.empty()) out += ';';
    out += price.to_string();
  }
  return out;
}

}  // namespace

MultiUnitBook read_multi_book_csv(const std::string& text) {
  MultiUnitBook book;
  const auto rows = parse_csv(text);
  for (std::size_t r = 0; r < rows.size(); ++r) {
    const auto& row = rows[r];
    if (r == 0 && !row.empty() && row[0] == "side") continue;  // header
    if (row.size() != 3) {
      throw std::invalid_argument("read_multi_book_csv: row " +
                                  std::to_string(r) +
                                  " needs side,identity,schedule");
    }
    errno = 0;
    char* end = nullptr;
    const unsigned long long id = std::strtoull(row[1].c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || row[1].empty() || errno != 0) {
      throw std::invalid_argument("read_multi_book_csv: row " +
                                  std::to_string(r) +
                                  " has malformed identity '" + row[1] + "'");
    }
    if (row[0] == "buyer") {
      book.add_buyer(IdentityId{id}, parse_schedule(row[2]));
    } else if (row[0] == "seller") {
      book.add_seller(IdentityId{id}, parse_schedule(row[2]));
    } else {
      throw std::invalid_argument("read_multi_book_csv: row " +
                                  std::to_string(r) + " has unknown side '" +
                                  row[0] + "'");
    }
  }
  return book;
}

std::string write_multi_outcome_csv(const MultiUnitOutcome& outcome) {
  std::ostringstream os;
  os << "side,identity,units,total,per_unit\n";
  for (const auto& buyer : outcome.buyers) {
    os << "buyer," << buyer.identity.value() << ',' << buyer.units << ','
       << buyer.total_paid << ',' << join_prices(buyer.unit_payments) << '\n';
  }
  for (const auto& seller : outcome.sellers) {
    os << "seller," << seller.identity.value() << ',' << seller.units << ','
       << seller.total_received << ',' << join_prices(seller.unit_receipts)
       << '\n';
  }
  return os.str();
}

std::string write_outcome_csv(const Outcome& outcome) {
  std::ostringstream os;
  os << "side,identity,price\n";
  for (const Fill& fill : outcome.fills()) {
    os << to_string(fill.side) << ',' << fill.identity.value() << ','
       << fill.price << '\n';
  }
  return os.str();
}

}  // namespace fnda
