#include "serialize/json.h"

#include <cstdio>
#include <stdexcept>

namespace fnda {

std::string JsonWriter::escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::prefix() {
  if (is_object_.empty()) return;
  if (is_object_.back() && !pending_key_) {
    throw std::logic_error("JsonWriter: object member needs key() first");
  }
  if (!pending_key_) {
    if (!first_.back()) out_ += ',';
    first_.back() = false;
  }
  pending_key_ = false;
}

void JsonWriter::begin_object() {
  prefix();
  out_ += '{';
  is_object_.push_back(true);
  first_.push_back(true);
}

void JsonWriter::end_object() {
  if (is_object_.empty() || !is_object_.back()) {
    throw std::logic_error("JsonWriter: end_object without begin_object");
  }
  out_ += '}';
  is_object_.pop_back();
  first_.pop_back();
}

void JsonWriter::begin_array() {
  prefix();
  out_ += '[';
  is_object_.push_back(false);
  first_.push_back(true);
}

void JsonWriter::end_array() {
  if (is_object_.empty() || is_object_.back()) {
    throw std::logic_error("JsonWriter: end_array without begin_array");
  }
  out_ += ']';
  is_object_.pop_back();
  first_.pop_back();
}

void JsonWriter::key(const std::string& name) {
  if (is_object_.empty() || !is_object_.back()) {
    throw std::logic_error("JsonWriter: key() outside an object");
  }
  if (pending_key_) throw std::logic_error("JsonWriter: duplicate key()");
  if (!first_.back()) out_ += ',';
  first_.back() = false;
  out_ += '"';
  out_ += escape(name);
  out_ += "\":";
  pending_key_ = true;
}

void JsonWriter::value(const std::string& text) {
  prefix();
  out_ += '"';
  out_ += escape(text);
  out_ += '"';
}

void JsonWriter::value(std::int64_t number) {
  prefix();
  out_ += std::to_string(number);
}

void JsonWriter::value(std::uint64_t number) {
  prefix();
  out_ += std::to_string(number);
}

void JsonWriter::value(double number) {
  prefix();
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.12g", number);
  out_ += buffer;
}

void JsonWriter::value(bool flag) {
  prefix();
  out_ += flag ? "true" : "false";
}

void JsonWriter::null() {
  prefix();
  out_ += "null";
}

std::string JsonWriter::str() const {
  if (!is_object_.empty()) {
    throw std::logic_error("JsonWriter: unterminated container");
  }
  return out_;
}

std::string outcome_to_json(const Outcome& outcome) {
  JsonWriter w;
  w.begin_object();
  w.key("trades");
  w.value(static_cast<std::uint64_t>(outcome.trade_count()));
  w.key("buyer_payments");
  w.value(outcome.buyer_payments().to_double());
  w.key("seller_receipts");
  w.value(outcome.seller_receipts().to_double());
  w.key("auctioneer_revenue");
  w.value(outcome.auctioneer_revenue().to_double());
  w.key("fills");
  w.begin_array();
  for (const Fill& fill : outcome.fills()) {
    w.begin_object();
    w.key("side");
    w.value(to_string(fill.side));
    w.key("identity");
    w.value(fill.identity.value());
    w.key("price");
    w.value(fill.price.to_double());
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

std::string settlement_to_json(const SettlementReport& report) {
  JsonWriter w;
  w.begin_object();
  w.key("round");
  w.value(report.round.value());
  w.key("failed_deliveries");
  w.value(static_cast<std::uint64_t>(report.failed));
  w.key("confiscated_total");
  w.value(report.confiscated_total.to_double());
  w.key("exchange_spread");
  w.value(report.exchange_spread.to_double());
  w.key("deliveries");
  w.begin_array();
  for (const Delivery& delivery : report.deliveries) {
    w.begin_object();
    w.key("seller_identity");
    w.value(delivery.seller.value());
    w.key("buyer_identity");
    w.value(delivery.buyer.value());
    w.key("delivered");
    w.value(delivery.delivered);
    w.key("buyer_paid");
    w.value(delivery.buyer_paid.to_double());
    w.key("seller_received");
    w.value(delivery.seller_received.to_double());
    w.key("confiscated");
    w.value(delivery.confiscated.to_double());
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

std::string audit_to_json(const AuditLog& log) {
  JsonWriter w;
  w.begin_array();
  for (const AuditRecord& record : log.records()) {
    w.begin_object();
    w.key("t_micros");
    w.value(record.at.micros);
    w.key("round");
    w.value(record.round.value());
    w.key("kind");
    w.value(to_string(record.kind));
    w.key("detail");
    w.value(record.detail);
    w.end_object();
  }
  w.end_array();
  return w.str();
}

}  // namespace fnda
