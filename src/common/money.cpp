#include "common/money.h"

#include <cmath>
#include <cstdlib>
#include <ostream>

namespace fnda {

Money Money::from_double(double value) {
  const double scaled = value * static_cast<double>(kScale);
  return from_micros(static_cast<std::int64_t>(std::llround(scaled)));
}

std::string Money::to_string() const {
  const std::int64_t whole = micros_ / kScale;
  std::int64_t frac = micros_ % kScale;
  std::string out;
  if (micros_ < 0 && whole == 0) out += '-';
  out += std::to_string(whole);
  frac = std::llabs(frac);
  if (frac != 0) {
    std::string digits = std::to_string(frac);
    digits.insert(digits.begin(), 6 - digits.size(), '0');
    while (!digits.empty() && digits.back() == '0') digits.pop_back();
    out += '.';
    out += digits;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, Money m) {
  return os << m.to_string();
}

}  // namespace fnda
