// Fixed-point money type used throughout the library.
//
// Auction protocols in this repository compare prices for exact equality
// (e.g. "does this bid meet the threshold price r?").  Floating point makes
// those comparisons unreliable, so all monetary quantities are represented
// as a signed 64-bit count of micro-units (10^-6 of one currency unit).
// The paper's evaluation draws valuations from U[0,100]; micro-unit
// resolution is far finer than anything the protocols distinguish.
#pragma once

#include <cstdint>
#include <compare>
#include <iosfwd>
#include <limits>
#include <string>

namespace fnda {

/// Exact fixed-point monetary value (64-bit signed micro-units).
///
/// Money is a regular value type: totally ordered, hashable, cheap to copy.
/// Arithmetic that could overflow int64 is out of scope for this domain
/// (valuations are bounded by the instance generators); debug builds assert
/// on overflow in the few places it could conceivably matter.
class Money {
 public:
  /// Number of micro-units per currency unit.
  static constexpr std::int64_t kScale = 1'000'000;

  /// Zero money; the additive identity.
  constexpr Money() = default;

  /// Constructs from a raw micro-unit count.  Prefer the named factories.
  static constexpr Money from_micros(std::int64_t micros) {
    Money m;
    m.micros_ = micros;
    return m;
  }

  /// Constructs from a whole number of currency units.
  static constexpr Money from_units(std::int64_t units) {
    return from_micros(units * kScale);
  }

  /// Constructs from a double, rounding to the nearest micro-unit.
  /// Intended for instance generation and human-entered values; protocol
  /// logic never round-trips through floating point.
  static Money from_double(double value);

  /// Smallest representable value.  Used as the b(m+1) sentinel.
  static constexpr Money min_value() {
    return from_micros(std::numeric_limits<std::int64_t>::min());
  }

  /// Largest representable value.  Used as the s(n+1) sentinel.
  static constexpr Money max_value() {
    return from_micros(std::numeric_limits<std::int64_t>::max());
  }

  constexpr std::int64_t micros() const { return micros_; }

  /// Value in currency units as a double (for reporting only).
  constexpr double to_double() const {
    return static_cast<double>(micros_) / static_cast<double>(kScale);
  }

  /// Midpoint of two values, rounding toward negative infinity.  Computed
  /// without overflow for any pair of representable values (the classic
  /// half-each-plus-shared-remainder decomposition, with a floor fix when
  /// exactly one operand is odd and negative).
  static constexpr Money midpoint(Money a, Money b) {
    // Arithmetic right shift floors signed division by two (guaranteed in
    // C++20); the (a & b & 1) term restores the unit lost when both
    // operands are odd.
    const std::int64_t x = a.micros_;
    const std::int64_t y = b.micros_;
    return from_micros((x >> 1) + (y >> 1) + (x & y & 1));
  }

  constexpr Money operator+(Money other) const {
    return from_micros(micros_ + other.micros_);
  }
  constexpr Money operator-(Money other) const {
    return from_micros(micros_ - other.micros_);
  }
  constexpr Money operator-() const { return from_micros(-micros_); }
  constexpr Money operator*(std::int64_t n) const {
    return from_micros(micros_ * n);
  }
  constexpr Money& operator+=(Money other) {
    micros_ += other.micros_;
    return *this;
  }
  constexpr Money& operator-=(Money other) {
    micros_ -= other.micros_;
    return *this;
  }

  constexpr auto operator<=>(const Money&) const = default;

  /// Renders as a decimal string with trailing zeros trimmed, e.g. "4.5".
  std::string to_string() const;

 private:
  std::int64_t micros_ = 0;
};

constexpr Money operator*(std::int64_t n, Money m) { return m * n; }

std::ostream& operator<<(std::ostream& os, Money m);

/// Convenience literal-style helper: money(4.5) == Money::from_double(4.5).
inline Money money(double value) { return Money::from_double(value); }

}  // namespace fnda

template <>
struct std::hash<fnda::Money> {
  std::size_t operator()(const fnda::Money& m) const noexcept {
    return std::hash<std::int64_t>{}(m.micros());
  }
};
