#include "common/statistics.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/rng.h"

namespace fnda {

void RunningStats::add(double x) {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::sem() const {
  if (count_ == 0) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(count_));
}

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (!(lo < hi) || bins == 0) {
    throw std::invalid_argument("Histogram: need lo < hi and bins > 0");
  }
}

void Histogram::add(double x) {
  const double t = (x - lo_) / (hi_ - lo_);
  auto bin = static_cast<std::ptrdiff_t>(t * static_cast<double>(counts_.size()));
  bin = std::clamp<std::ptrdiff_t>(bin, 0,
                                   static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

double Histogram::bin_lower(std::size_t bin) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(bin) /
                   static_cast<double>(counts_.size());
}

BootstrapInterval bootstrap_mean_ci(const std::vector<double>& sample,
                                    double confidence, std::size_t resamples,
                                    Rng& rng) {
  if (sample.empty()) {
    throw std::invalid_argument("bootstrap_mean_ci: empty sample");
  }
  if (!(confidence > 0.0) || !(confidence < 1.0) || resamples == 0) {
    throw std::invalid_argument("bootstrap_mean_ci: bad parameters");
  }
  std::vector<double> means;
  means.reserve(resamples);
  const std::size_t n = sample.size();
  for (std::size_t r = 0; r < resamples; ++r) {
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      total += sample[rng.below(n)];
    }
    means.push_back(total / static_cast<double>(n));
  }
  const double alpha = (1.0 - confidence) / 2.0;
  BootstrapInterval interval;
  interval.lo = quantile(means, alpha);
  interval.hi = quantile(std::move(means), 1.0 - alpha);
  return interval;
}

double quantile(std::vector<double> values, double q) {
  if (values.empty()) throw std::invalid_argument("quantile: empty sample");
  q = std::clamp(q, 0.0, 1.0);
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

}  // namespace fnda
