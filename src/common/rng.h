// Deterministic pseudo-random number generation.
//
// Every stochastic component in this repository (instance generators, tie
// breaking, bus jitter, manipulation search) draws from an explicitly
// seeded Rng so that experiments and failures replay bit-identically.
// The generator is xoshiro256** (Blackman & Vigna) seeded via SplitMix64,
// chosen over std::mt19937 for speed and for a guaranteed cross-platform
// stream (libstdc++/libc++ distributions are not portable; ours are
// hand-rolled below).
#pragma once

#include <array>
#include <cstdint>

#include "common/money.h"

namespace fnda {

/// xoshiro256** generator with SplitMix64 seeding.
///
/// Satisfies UniformRandomBitGenerator, but the distribution helpers on this
/// class should be preferred over <random> distributions for portability.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four-word state from a single seed via SplitMix64.
  explicit Rng(std::uint64_t seed = 0xfeedfacecafebeefULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  /// Next raw 64-bit draw.
  std::uint64_t operator()();

  /// Uniform integer in [0, bound).  bound must be positive.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  std::uint64_t below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Uniform double in [lo, hi).
  double uniform_double(double lo, double hi);

  /// Uniform Money in [lo, hi], at micro-unit resolution.
  Money uniform_money(Money lo, Money hi);

  /// True with probability p (clamped to [0, 1]).
  bool bernoulli(double p);

  /// Number of successes in n fair-ish trials: Binomial(n, p).
  /// Direct summation; n in this codebase is at most a few thousand.
  int binomial(int n, double p);

  /// Fisher-Yates shuffle of a random-access range.
  template <typename RandomIt>
  void shuffle(RandomIt first, RandomIt last) {
    const auto n = static_cast<std::uint64_t>(last - first);
    for (std::uint64_t i = n; i > 1; --i) {
      const auto j = below(i);
      using std::swap;
      swap(first[i - 1], first[j]);
    }
  }

  /// Derives an independent child generator.  Used to give each component
  /// of a simulation its own stream so adding draws to one component does
  /// not perturb the others.
  Rng split();

 private:
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace fnda
