// Branchless/SIMD counting kernel for threshold sweeps.
//
// TPD's outcome at threshold r depends only on the partition points
// i = |{b >= r}| and j = |{s <= r}| over ranked value lanes.  On a sorted
// lane a partition point equals the *count* of qualifying elements, so it
// can be computed by a data-parallel compare-and-accumulate instead of a
// branchy binary search: the kernel narrows the bracket with a short
// branchless binary search, then counts the final window with SIMD
// compares (GCC/Clang vector extensions, 2 x int64 lanes unrolled twice —
// 128-bit vectors are native on baseline x86-64 and NEON, so no ABI or
// ISA flags are needed) or a portable scalar-branchless loop.
//
// Bit-identity is by construction: on a sorted lane every strategy
// returns the same integer, the partition point.  The scalar reference
// implementations (`*_scalar`) are always compiled — the equivalence
// suite asserts kernel == scalar on randomized and adversarial lanes —
// and defining FNDA_FORCE_SCALAR_KERNEL (CMake -DFNDA_SCALAR_SWEEP=ON)
// makes the dispatching entry points USE the scalar path, which a CI leg
// builds so the portable fallback cannot rot.
//
// Lane-utilization counters (elements processed in full SIMD lanes vs the
// scalar tail) accumulate process-wide with relaxed atomics; consumers
// snapshot deltas (see bench/ and the session registry wiring).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>

namespace fnda::simd {

#if defined(__GNUC__) && !defined(FNDA_FORCE_SCALAR_KERNEL)
#define FNDA_SWEEP_KERNEL_VECTOR 1
#endif

/// Process-wide kernel work counters (relaxed; single-writer in practice —
/// sweeps run on one thread — but safe from any).
struct KernelCounters {
  std::atomic<std::uint64_t> vector_elems{0};  ///< elements in full SIMD lanes
  std::atomic<std::uint64_t> tail_elems{0};    ///< elements in scalar tails
  std::atomic<std::uint64_t> calls{0};         ///< kernel invocations
};

inline KernelCounters& kernel_counters() {
  static KernelCounters counters;
  return counters;
}

constexpr std::size_t kernel_lane_width() {
#if defined(FNDA_SWEEP_KERNEL_VECTOR)
  return 2;  // 128-bit vector of int64 (two vectors in flight per step)
#else
  return 1;
#endif
}

constexpr const char* kernel_name() {
#if defined(FNDA_SWEEP_KERNEL_VECTOR)
  return "gcc-vector-128x2";
#else
  return "scalar-branchless";
#endif
}

/// Branchless linear counts over an (unsorted or sorted) window.  The
/// `_scalar` forms are the always-available reference; the plain forms
/// dispatch to the SIMD path when it is compiled in.
inline std::size_t count_ge_linear_scalar(const std::int64_t* values,
                                          std::size_t n, std::int64_t r) {
  std::size_t count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    count += static_cast<std::size_t>(values[i] >= r);
  }
  return count;
}

inline std::size_t count_le_linear_scalar(const std::int64_t* values,
                                          std::size_t n, std::int64_t r) {
  std::size_t count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    count += static_cast<std::size_t>(values[i] <= r);
  }
  return count;
}

#if defined(FNDA_SWEEP_KERNEL_VECTOR)
namespace detail {
typedef std::int64_t Vec2 __attribute__((vector_size(16)));

inline Vec2 load2(const std::int64_t* p) {
  Vec2 x;
  std::memcpy(&x, p, sizeof x);  // unaligned-safe
  return x;
}
}  // namespace detail
#endif

inline std::size_t count_ge_linear(const std::int64_t* values, std::size_t n,
                                   std::int64_t r) {
#if defined(FNDA_SWEEP_KERNEL_VECTOR)
  const detail::Vec2 rv = {r, r};
  detail::Vec2 acc0 = {0, 0};
  detail::Vec2 acc1 = {0, 0};
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc0 -= (detail::load2(values + i) >= rv);  // true lanes are -1
    acc1 -= (detail::load2(values + i + 2) >= rv);
  }
  for (; i + 2 <= n; i += 2) {
    acc0 -= (detail::load2(values + i) >= rv);
  }
  KernelCounters& counters = kernel_counters();
  counters.calls.fetch_add(1, std::memory_order_relaxed);
  counters.vector_elems.fetch_add(i, std::memory_order_relaxed);
  counters.tail_elems.fetch_add(n - i, std::memory_order_relaxed);
  auto count = static_cast<std::size_t>(acc0[0] + acc0[1] + acc1[0] + acc1[1]);
  for (; i < n; ++i) count += static_cast<std::size_t>(values[i] >= r);
  return count;
#else
  KernelCounters& counters = kernel_counters();
  counters.calls.fetch_add(1, std::memory_order_relaxed);
  counters.tail_elems.fetch_add(n, std::memory_order_relaxed);
  return count_ge_linear_scalar(values, n, r);
#endif
}

inline std::size_t count_le_linear(const std::int64_t* values, std::size_t n,
                                   std::int64_t r) {
#if defined(FNDA_SWEEP_KERNEL_VECTOR)
  const detail::Vec2 rv = {r, r};
  detail::Vec2 acc0 = {0, 0};
  detail::Vec2 acc1 = {0, 0};
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc0 -= (detail::load2(values + i) <= rv);
    acc1 -= (detail::load2(values + i + 2) <= rv);
  }
  for (; i + 2 <= n; i += 2) {
    acc0 -= (detail::load2(values + i) <= rv);
  }
  KernelCounters& counters = kernel_counters();
  counters.calls.fetch_add(1, std::memory_order_relaxed);
  counters.vector_elems.fetch_add(i, std::memory_order_relaxed);
  counters.tail_elems.fetch_add(n - i, std::memory_order_relaxed);
  auto count = static_cast<std::size_t>(acc0[0] + acc0[1] + acc1[0] + acc1[1]);
  for (; i < n; ++i) count += static_cast<std::size_t>(values[i] <= r);
  return count;
#else
  KernelCounters& counters = kernel_counters();
  counters.calls.fetch_add(1, std::memory_order_relaxed);
  counters.tail_elems.fetch_add(n, std::memory_order_relaxed);
  return count_le_linear_scalar(values, n, r);
#endif
}

/// Window below which the bracket is counted linearly instead of split
/// further.  Large enough to amortize the lane setup, small enough that
/// huge books still pay O(log n) compares.
inline constexpr std::size_t kLinearWindow = 128;

/// Partition point |{v >= r}| over a DESCENDING-sorted lane: branchless
/// bracket narrowing, then a linear count of the final window.  Equals
/// what std::lower_bound with the same predicate returns, on every input,
/// whichever linear path is compiled.
inline std::size_t count_ge_desc(const std::int64_t* values, std::size_t n,
                                 std::int64_t r) {
  std::size_t lo = 0;
  std::size_t hi = n;
  while (hi - lo > kLinearWindow) {
    const std::size_t mid = lo + (hi - lo) / 2;
    const bool ge = values[mid] >= r;
    lo = ge ? mid + 1 : lo;
    hi = ge ? hi : mid;
  }
  return lo + count_ge_linear(values + lo, hi - lo, r);
}

/// Partition point |{v <= r}| over an ASCENDING-sorted lane.
inline std::size_t count_le_asc(const std::int64_t* values, std::size_t n,
                                std::int64_t r) {
  std::size_t lo = 0;
  std::size_t hi = n;
  while (hi - lo > kLinearWindow) {
    const std::size_t mid = lo + (hi - lo) / 2;
    const bool le = values[mid] <= r;
    lo = le ? mid + 1 : lo;
    hi = le ? hi : mid;
  }
  return lo + count_le_linear(values + lo, hi - lo, r);
}

/// Scalar reference partition points (no SIMD in any build), for the
/// kernel-equivalence suite.
inline std::size_t count_ge_desc_scalar(const std::int64_t* values,
                                        std::size_t n, std::int64_t r) {
  std::size_t lo = 0;
  std::size_t hi = n;
  while (hi - lo > kLinearWindow) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (values[mid] >= r) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo + count_ge_linear_scalar(values + lo, hi - lo, r);
}

inline std::size_t count_le_asc_scalar(const std::int64_t* values,
                                       std::size_t n, std::int64_t r) {
  std::size_t lo = 0;
  std::size_t hi = n;
  while (hi - lo > kLinearWindow) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (values[mid] <= r) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo + count_le_linear_scalar(values + lo, hi - lo, r);
}

}  // namespace fnda::simd
