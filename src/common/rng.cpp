#include "common/rng.h"

#include <cmath>

namespace fnda {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::operator()() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  // Lemire's nearly-divisionless unbiased bounded generation.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(below(span));
}

double Rng::uniform01() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform_double(double lo, double hi) {
  return lo + (hi - lo) * uniform01();
}

Money Rng::uniform_money(Money lo, Money hi) {
  return Money::from_micros(uniform_int(lo.micros(), hi.micros()));
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

int Rng::binomial(int n, double p) {
  int successes = 0;
  for (int i = 0; i < n; ++i) successes += bernoulli(p) ? 1 : 0;
  return successes;
}

Rng Rng::split() {
  return Rng((*this)());
}

}  // namespace fnda
