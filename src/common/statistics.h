// Streaming statistics used by the experiment harness.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <map>
#include <vector>

namespace fnda {

/// Single-pass accumulator: count, mean, variance (Welford), min, max.
///
/// Numerically stable for the ~10^3..10^6 sample sizes the benches use.
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  /// Unbiased sample variance (zero for fewer than two samples).
  double variance() const;
  double stddev() const;
  /// Standard error of the mean.
  double sem() const;
  /// Half-width of the ~95% normal-approximation confidence interval.
  double ci95_half_width() const { return 1.96 * sem(); }
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }

  /// Pools another accumulator into this one (parallel Welford merge).
  void merge(const RunningStats& other);

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-bin histogram over [lo, hi); out-of-range samples clamp to the
/// edge bins.  Used for diagnostics (e.g. distribution of trade counts).
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t bin_count(std::size_t bin) const { return counts_.at(bin); }
  std::size_t bins() const { return counts_.size(); }
  std::size_t total() const { return total_; }
  /// Inclusive lower edge of a bin.
  double bin_lower(std::size_t bin) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Exact quantiles over a retained sample (used only for small diagnostic
/// sets; the main experiment pipeline is streaming).
double quantile(std::vector<double> values, double q);

/// Percentile-bootstrap confidence interval for the mean of `sample`.
/// Returns {lo, hi}; `confidence` in (0, 1), e.g. 0.95.  Deterministic
/// given the generator state.  Throws std::invalid_argument on an empty
/// sample or out-of-range confidence.
struct BootstrapInterval {
  double lo = 0.0;
  double hi = 0.0;
  double half_width() const { return (hi - lo) / 2.0; }
};
class Rng;  // common/rng.h
BootstrapInterval bootstrap_mean_ci(const std::vector<double>& sample,
                                    double confidence, std::size_t resamples,
                                    Rng& rng);

}  // namespace fnda
