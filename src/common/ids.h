// Strongly typed identifiers.
//
// The false-name-bid setting distinguishes *accounts* (real economic
// actors) from *identities* (the possibly-fictitious names under which bids
// are submitted).  Mixing those up is exactly the bug class this paper is
// about, so each concept gets its own incompatible ID type.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <ostream>

namespace fnda {

/// CRTP base for type-safe integer IDs.  Distinct Tag types do not compare
/// or convert to one another.
template <typename Tag>
class TypedId {
 public:
  constexpr TypedId() = default;
  constexpr explicit TypedId(std::uint64_t value) : value_(value) {}

  constexpr std::uint64_t value() const { return value_; }
  constexpr auto operator<=>(const TypedId&) const = default;

  /// Sentinel distinct from every ID minted by the registries.
  static constexpr TypedId invalid() {
    return TypedId(static_cast<std::uint64_t>(-1));
  }
  constexpr bool is_valid() const { return *this != invalid(); }

 private:
  std::uint64_t value_ = static_cast<std::uint64_t>(-1);
};

template <typename Tag>
std::ostream& operator<<(std::ostream& os, TypedId<Tag> id) {
  return os << Tag::prefix() << id.value();
}

struct AccountTag {
  static constexpr const char* prefix() { return "acct-"; }
};
struct IdentityTag {
  static constexpr const char* prefix() { return "id-"; }
};
struct BidTag {
  static constexpr const char* prefix() { return "bid-"; }
};
struct RoundTag {
  static constexpr const char* prefix() { return "round-"; }
};
struct MessageTag {
  static constexpr const char* prefix() { return "msg-"; }
};
struct AddressTag {
  static constexpr const char* prefix() { return "addr-"; }
};

/// A real economic actor (holds money, goods, and a security deposit).
using AccountId = TypedId<AccountTag>;
/// A name under which bids are submitted; cheap to mint, possibly fake.
using IdentityId = TypedId<IdentityTag>;
/// A single submitted bid.
using BidId = TypedId<BidTag>;
/// One clearing round of the call market.
using RoundId = TypedId<RoundTag>;
/// A message on the simulated bus.
using MessageId = TypedId<MessageTag>;
/// A bus endpoint address, interned to a dense index at attach() time.
using AddressId = TypedId<AddressTag>;

}  // namespace fnda

namespace std {
template <typename Tag>
struct hash<fnda::TypedId<Tag>> {
  size_t operator()(const fnda::TypedId<Tag>& id) const noexcept {
    return std::hash<std::uint64_t>{}(id.value());
  }
};
}  // namespace std
