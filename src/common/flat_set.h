// A minimal open-addressed hash set of u64 keys.
//
// Endpoints keep tiny per-object membership sets on the message hot path
// (acked identities, rounds already bid in).  Node-based std::unordered_set
// pays one allocation per insert and a node walk per destructor — across
// tens of thousands of endpoints the teardown frees alone are measurable.
// This set is a single flat vector: linear-probed slots at <=50% load,
// O(1) block free at teardown, and no allocation at all until first use.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace fnda {

class FlatU64Set {
 public:
  /// Inserts `key`; returns true if it was not already present.
  /// `key` must not be the reserved sentinel (~0, TypedId::invalid()).
  bool insert(std::uint64_t key) {
    if (!slots_.empty()) {
      const std::size_t mask = slots_.size() - 1;
      for (std::size_t i = slot_of(key, mask);; i = (i + 1) & mask) {
        if (slots_[i] == key) return false;
        if (slots_[i] == kEmpty) break;
      }
    }
    if ((size_ + 1) * 2 > slots_.size()) grow();
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = slot_of(key, mask);
    while (slots_[i] != kEmpty) i = (i + 1) & mask;
    slots_[i] = key;
    ++size_;
    return true;
  }

  bool contains(std::uint64_t key) const {
    if (slots_.empty()) return false;
    const std::size_t mask = slots_.size() - 1;
    for (std::size_t i = slot_of(key, mask);; i = (i + 1) & mask) {
      if (slots_[i] == key) return true;
      if (slots_[i] == kEmpty) return false;
    }
  }

  std::size_t size() const { return size_; }

 private:
  static constexpr std::uint64_t kEmpty = ~std::uint64_t{0};

  static std::size_t slot_of(std::uint64_t key, std::size_t mask) {
    // splitmix64 finalizer: keys are typically sequential ids, so the
    // low bits need mixing before masking.
    key ^= key >> 33;
    key *= 0xff51afd7ed558ccdull;
    key ^= key >> 33;
    return static_cast<std::size_t>(key) & mask;
  }

  void grow() {
    const std::size_t next = slots_.empty() ? 16 : slots_.size() * 2;
    std::vector<std::uint64_t> rebuilt(next, kEmpty);
    const std::size_t mask = next - 1;
    for (const std::uint64_t key : slots_) {
      if (key == kEmpty) continue;
      std::size_t i = slot_of(key, mask);
      while (rebuilt[i] != kEmpty) i = (i + 1) & mask;
      rebuilt[i] = key;
    }
    slots_ = std::move(rebuilt);
  }

  std::vector<std::uint64_t> slots_;
  std::size_t size_ = 0;
};

}  // namespace fnda
