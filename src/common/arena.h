// Round-lifetime bump allocator.
//
// The market hot path allocates the same short-lived scratch every round:
// the open round's submitted-bid table, outcome-validation lookup lanes,
// the epoch driver's mailbox merge keys.  Each is dead by the next round
// (or epoch) boundary, so a bump arena with an epoch reset replaces that
// round-frequency heap traffic with pointer arithmetic: allocate() bumps
// an offset inside the current block, reset() retires every allocation at
// once and keeps the memory for the next round.
//
// Steady state allocates nothing: when a reset finds the arena spilled
// into more than one block, the blocks are coalesced into a single block
// sized for the whole epoch, so after warm-up every round runs inside one
// contiguous block.  Stats expose the high-water mark (peak live bytes)
// so telemetry can pin the per-round footprint.
//
// Not thread-safe by design — each arena is owned by one shard (or the
// single-threaded barrier completion step), matching the exchange's
// one-world-per-thread layout.  Only trivially-destructible types may be
// placed in the arena: reset() never runs destructors.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

namespace fnda {

class MonotonicArena {
 public:
  struct Stats {
    std::size_t high_water = 0;  ///< peak live bytes across all resets
    std::size_t capacity = 0;    ///< bytes currently reserved in blocks
    std::uint64_t resets = 0;
    std::uint64_t block_allocations = 0;  ///< upstream allocations ever made
  };

  explicit MonotonicArena(std::size_t initial_capacity = 0) {
    if (initial_capacity > 0) add_block(initial_capacity);
  }

  MonotonicArena(const MonotonicArena&) = delete;
  MonotonicArena& operator=(const MonotonicArena&) = delete;

  /// Returns `bytes` of storage aligned to `align` (a power of two).
  /// Never fails short of upstream allocation failure; spilling past the
  /// current block chains a new, geometrically larger one.
  void* allocate(std::size_t bytes, std::size_t align) {
    std::size_t offset = (offset_ + (align - 1)) & ~(align - 1);
    if (block_ >= blocks_.size() || offset + bytes > blocks_[block_].size) {
      spill(bytes + align);
      offset = (offset_ + (align - 1)) & ~(align - 1);
    }
    std::byte* data = blocks_[block_].data.get() + offset;
    offset_ = offset + bytes;
    used_ = block_base_ + offset_;
    if (used_ > stats_.high_water) stats_.high_water = used_;
    return data;
  }

  /// Typed span of `count` default-constructible, trivially-destructible
  /// elements.  The storage is NOT zeroed; callers initialise it.
  template <typename T>
  std::span<T> make_span(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena storage is reclaimed without running destructors");
    if (count == 0) return {};
    auto* data = static_cast<T*>(allocate(count * sizeof(T), alignof(T)));
    for (std::size_t i = 0; i < count; ++i) new (data + i) T{};
    return {data, count};
  }

  /// Retires every allocation.  Memory is retained; if the last epoch
  /// spilled across blocks they are coalesced into one, so a warmed-up
  /// arena serves each epoch from a single contiguous block.
  void reset() {
    ++stats_.resets;
    if (blocks_.size() > 1) {
      std::size_t total = 0;
      for (const Block& block : blocks_) total += block.size;
      blocks_.clear();
      stats_.capacity = 0;
      add_block(total);
    }
    block_ = 0;
    block_base_ = 0;
    offset_ = 0;
    used_ = 0;
  }

  /// Live bytes since the last reset.
  std::size_t used() const { return used_; }
  const Stats& stats() const { return stats_; }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  static constexpr std::size_t kMinBlock = 1024;

  void add_block(std::size_t size) {
    if (size < kMinBlock) size = kMinBlock;
    blocks_.push_back(Block{std::make_unique<std::byte[]>(size), size});
    stats_.capacity += size;
    ++stats_.block_allocations;
  }

  /// Moves the cursor to a block with at least `need` free bytes,
  /// appending a geometrically larger one if none exists.
  void spill(std::size_t need) {
    if (block_ < blocks_.size()) {
      block_base_ += blocks_[block_].size;
      ++block_;
    }
    while (block_ < blocks_.size() && blocks_[block_].size < need) {
      block_base_ += blocks_[block_].size;
      ++block_;
    }
    if (block_ >= blocks_.size()) {
      const std::size_t grown = stats_.capacity * 2;
      add_block(grown > need ? grown : need);
      block_ = blocks_.size() - 1;
    }
    offset_ = 0;
  }

  std::vector<Block> blocks_;
  std::size_t block_ = 0;       ///< index of the block the cursor is in
  std::size_t block_base_ = 0;  ///< bytes in blocks before the cursor's
  std::size_t offset_ = 0;      ///< bump offset inside the cursor block
  std::size_t used_ = 0;
  Stats stats_;
};

}  // namespace fnda
