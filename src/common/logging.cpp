#include "common/logging.h"

#include <iostream>

namespace fnda {
namespace {

LogLevel g_level = LogLevel::kWarn;
std::ostream* g_sink = nullptr;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }
void set_log_sink(std::ostream* sink) { g_sink = sink; }

namespace detail {
void emit(LogLevel level, const std::string& message) {
  std::ostream& out = g_sink != nullptr ? *g_sink : std::cerr;
  out << "[" << level_name(level) << "] " << message << '\n';
}
}  // namespace detail

}  // namespace fnda
