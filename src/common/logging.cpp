#include "common/logging.h"

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <mutex>
#include <string_view>

namespace fnda {
namespace {

LogLevel initial_level() {
  const char* env = std::getenv("FNDA_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kWarn;
  const std::string_view name(env);
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  if (name == "off") return LogLevel::kOff;
  return LogLevel::kWarn;
}

std::atomic<LogLevel> g_level{initial_level()};
std::ostream* g_sink = nullptr;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}
LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }
void set_log_sink(std::ostream* sink) { g_sink = sink; }

namespace detail {
void emit(LogLevel level, const std::string& message) {
  // Worker threads log concurrently (per-round lines close rounds on
  // whichever thread claimed the shard); compose the line first and write
  // it under one lock so lines never interleave mid-record.
  std::string line;
  line.reserve(message.size() + 16);
  line += '[';
  line += level_name(level);
  line += "] ";
  line += message;
  line += '\n';
  static std::mutex emit_mutex;
  const std::lock_guard<std::mutex> lock(emit_mutex);
  std::ostream& out = g_sink != nullptr ? *g_sink : std::cerr;
  out << line;
}
}  // namespace detail

}  // namespace fnda
