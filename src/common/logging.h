// Minimal leveled logging.
//
// The market simulator narrates rounds at kDebug level during development;
// benches and tests run with the default kWarn so output stays clean.
#pragma once

#include <sstream>
#include <string>

namespace fnda {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-wide minimum level; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Sink override for tests (nullptr restores stderr).
void set_log_sink(std::ostream* sink);

namespace detail {
void emit(LogLevel level, const std::string& message);
}

/// Stream-style log line builder: LogLine(LogLevel::kInfo) << "x=" << x;
/// emits on destruction.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() {
    if (level_ >= log_level()) detail::emit(level_, stream_.str());
  }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    if (level_ >= log_level()) stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace fnda

#define FNDA_LOG(level) ::fnda::LogLine(::fnda::LogLevel::level)
