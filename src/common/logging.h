// Minimal leveled logging.
//
// The market simulator narrates rounds at kDebug level during development;
// benches and tests run with the default kWarn so output stays clean.
//
// FNDA_LOG(kDebug) << expensive();  evaluates `expensive()` ONLY when
// kDebug clears the runtime threshold: the macro expands to a conditional
// whose suppressed arm never touches the stream expression (the glog
// voidify idiom — `&&` binds looser than `<<`, and the ternary keeps the
// macro safe inside unbraced if/else).  The threshold itself is an atomic,
// so worker threads may log while a test rebinds the level, and it can be
// seeded from the FNDA_LOG_LEVEL environment variable
// (debug|info|warn|error|off) before main runs.
#pragma once

#include <sstream>
#include <string>

namespace fnda {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-wide minimum level; messages below it are discarded.  Seeded
/// from FNDA_LOG_LEVEL when set, kWarn otherwise.
void set_log_level(LogLevel level);
LogLevel log_level();

/// The FNDA_LOG gate: true when `level` clears the runtime threshold.
inline bool log_enabled(LogLevel level) { return level >= log_level(); }

/// Sink override for tests (nullptr restores stderr).
void set_log_sink(std::ostream* sink);

namespace detail {
void emit(LogLevel level, const std::string& message);
}

/// Stream-style log line builder: LogLine(LogLevel::kInfo) << "x=" << x;
/// emits on destruction.  FNDA_LOG only constructs one past the gate, so
/// streaming is unconditional; direct constructions still check the
/// threshold before emitting.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() {
    if (log_enabled(level_)) detail::emit(level_, stream_.str());
  }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

namespace detail {
/// Swallows the finished LogLine so the enabled arm of FNDA_LOG has type
/// void, matching the suppressed arm.
struct LogVoidify {
  void operator&&(const LogLine&) const {}
};
}  // namespace detail

}  // namespace fnda

#define FNDA_LOG(level)                                \
  !::fnda::log_enabled(::fnda::LogLevel::level)        \
      ? (void)0                                        \
      : ::fnda::detail::LogVoidify{} &&                \
            ::fnda::LogLine(::fnda::LogLevel::level)
