#include "ops/format.h"

#include <algorithm>
#include <charconv>
#include <istream>
#include <stdexcept>

#include "obs/export.h"

namespace fnda::ops {
namespace {

bool parse_i64(std::string_view text, std::int64_t* out) {
  if (text.empty()) return false;
  auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), *out);
  return ec == std::errc{} && ptr == text.data() + text.size();
}

bool parse_u64(std::string_view text, std::uint64_t* out) {
  if (text.empty()) return false;
  auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), *out);
  return ec == std::errc{} && ptr == text.data() + text.size();
}

std::string pad(std::string text, std::size_t width) {
  while (text.size() < width) text += ' ';
  return text;
}

[[noreturn]] void malformed(std::size_t line_number, const std::string& what) {
  throw std::runtime_error("prometheus parse error at line " +
                           std::to_string(line_number) + ": " + what);
}

}  // namespace

std::vector<std::string> render_metrics_table(
    const obs::MetricsSnapshot& snapshot) {
  std::size_t name_width = 4;  // "name"
  for (const auto& [name, value] : snapshot.metrics) {
    name_width = std::max(name_width, name.size());
  }
  std::vector<std::string> lines;
  lines.reserve(snapshot.metrics.size() + 1);
  lines.push_back(pad("name", name_width) + "  type       value");
  for (const auto& [name, value] : snapshot.metrics) {
    std::string rendered;
    switch (value.kind) {
      case obs::MetricKind::kCounter:
        rendered = "counter    " + std::to_string(value.counter);
        break;
      case obs::MetricKind::kGauge:
        rendered = "gauge      " + std::to_string(value.gauge);
        break;
      case obs::MetricKind::kHistogram:
        rendered = "histogram  count=" + std::to_string(value.hist_count) +
                   " sum=" + std::to_string(value.hist_sum) +
                   " p50=" + std::to_string(obs::snapshot_quantile(value, 0.5)) +
                   " p99=" +
                   std::to_string(obs::snapshot_quantile(value, 0.99)) +
                   " max=" + std::to_string(value.hist_max);
        break;
    }
    lines.push_back(pad(name, name_width) + "  " + rendered);
  }
  return lines;
}

std::vector<std::string> render_histogram(const std::string& name,
                                          const obs::MetricValue& value) {
  std::vector<std::string> lines;
  lines.push_back(name + ":");
  lines.push_back("  count " + std::to_string(value.hist_count));
  lines.push_back("  sum   " + std::to_string(value.hist_sum));
  const std::uint64_t mean =
      value.hist_count == 0 ? 0 : value.hist_sum / value.hist_count;
  lines.push_back("  mean  " + std::to_string(mean));
  lines.push_back("  p50   " +
                  std::to_string(obs::snapshot_quantile(value, 0.5)));
  lines.push_back("  p90   " +
                  std::to_string(obs::snapshot_quantile(value, 0.9)));
  lines.push_back("  p99   " +
                  std::to_string(obs::snapshot_quantile(value, 0.99)));
  lines.push_back("  p999  " +
                  std::to_string(obs::snapshot_quantile(value, 0.999)));
  lines.push_back("  max   " + std::to_string(value.hist_max));
  for (const auto& [bucket, count] : value.buckets) {
    lines.push_back(
        "  le " +
        std::to_string(obs::Histogram::bucket_upper_bound(bucket)) + ": " +
        std::to_string(count));
  }
  return lines;
}

obs::MetricsSnapshot parse_prometheus_text(std::istream& in) {
  struct PendingHistogram {
    std::uint64_t last_cumulative = 0;
    bool saw_inf = false;
    std::uint64_t inf_count = 0;
    bool saw_sum = false;
    bool saw_count = false;
  };

  obs::MetricsSnapshot snapshot;
  std::vector<std::pair<std::string, obs::MetricKind>> declared;
  std::vector<std::pair<std::string, PendingHistogram>> pending;

  auto declared_kind = [&](const std::string& name) -> obs::MetricKind* {
    for (auto& [declared_name, kind] : declared) {
      if (declared_name == name) return &kind;
    }
    return nullptr;
  };
  auto value_of = [&](const std::string& name) -> obs::MetricValue* {
    for (auto& [metric_name, value] : snapshot.metrics) {
      if (metric_name == name) return &value;
    }
    return nullptr;
  };
  auto pending_of = [&](const std::string& name) -> PendingHistogram& {
    for (auto& [pending_name, state] : pending) {
      if (pending_name == name) return state;
    }
    pending.emplace_back(name, PendingHistogram{});
    return pending.back().second;
  };

  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    if (line[0] == '#') {
      // Only `# TYPE name kind` matters; HELP and comments pass through.
      const std::vector<std::string> words = [&] {
        std::vector<std::string> out;
        std::string word;
        for (const char c : line) {
          if (c == ' ') {
            if (!word.empty()) out.push_back(std::move(word));
            word.clear();
          } else {
            word += c;
          }
        }
        if (!word.empty()) out.push_back(std::move(word));
        return out;
      }();
      if (words.size() >= 2 && words[1] == "TYPE") {
        if (words.size() != 4) malformed(line_number, "bad TYPE comment");
        obs::MetricKind kind;
        if (words[3] == "counter") {
          kind = obs::MetricKind::kCounter;
        } else if (words[3] == "gauge") {
          kind = obs::MetricKind::kGauge;
        } else if (words[3] == "histogram") {
          kind = obs::MetricKind::kHistogram;
        } else {
          malformed(line_number, "unknown metric type '" + words[3] + "'");
        }
        if (declared_kind(words[2]) != nullptr) {
          malformed(line_number, "duplicate TYPE for '" + words[2] + "'");
        }
        declared.emplace_back(words[2], kind);
        if (kind != obs::MetricKind::kHistogram) {
          obs::MetricValue value;
          value.kind = kind;
          snapshot.metrics.emplace_back(words[2], value);
        } else {
          obs::MetricValue value;
          value.kind = obs::MetricKind::kHistogram;
          snapshot.metrics.emplace_back(words[2], value);
          pending_of(words[2]);
        }
      }
      continue;
    }

    // Sample line: `name[{labels}] value`.
    const std::size_t space = line.rfind(' ');
    if (space == std::string::npos || space + 1 >= line.size()) {
      malformed(line_number, "expected 'name value'");
    }
    std::string key = line.substr(0, space);
    const std::string value_text = line.substr(space + 1);

    // Peel the {le="..."} label set, if any.
    std::string le;
    const std::size_t brace = key.find('{');
    if (brace != std::string::npos) {
      if (key.back() != '}') malformed(line_number, "unterminated label set");
      const std::string labels = key.substr(brace + 1,
                                            key.size() - brace - 2);
      key = key.substr(0, brace);
      constexpr std::string_view kLe = "le=\"";
      if (labels.size() < kLe.size() + 1 ||
          labels.substr(0, kLe.size()) != kLe || labels.back() != '"') {
        malformed(line_number, "unsupported label set '" + labels + "'");
      }
      le = labels.substr(kLe.size(), labels.size() - kLe.size() - 1);
    }

    // Histogram series end in _bucket/_sum/_count on a declared histogram.
    auto strip_suffix = [&](std::string_view suffix,
                            std::string* base) -> bool {
      if (key.size() <= suffix.size()) return false;
      if (std::string_view(key).substr(key.size() - suffix.size()) != suffix) {
        return false;
      }
      *base = key.substr(0, key.size() - suffix.size());
      obs::MetricKind* kind = declared_kind(*base);
      return kind != nullptr && *kind == obs::MetricKind::kHistogram;
    };

    std::string base;
    if (strip_suffix("_bucket", &base)) {
      obs::MetricValue* value = value_of(base);
      PendingHistogram& state = pending_of(base);
      std::uint64_t cumulative = 0;
      if (!parse_u64(value_text, &cumulative)) {
        malformed(line_number, "bad bucket count '" + value_text + "'");
      }
      if (le == "+Inf") {
        state.saw_inf = true;
        state.inf_count = cumulative;
        continue;
      }
      std::uint64_t bound = 0;
      if (!parse_u64(le, &bound)) {
        malformed(line_number, "bad le bound '" + le + "'");
      }
      if (cumulative < state.last_cumulative) {
        malformed(line_number, "bucket counts must be cumulative");
      }
      const std::uint64_t delta = cumulative - state.last_cumulative;
      state.last_cumulative = cumulative;
      if (delta > 0) {
        const std::size_t bucket = obs::Histogram::bucket_index(bound);
        if (obs::Histogram::bucket_upper_bound(bucket) != bound) {
          malformed(line_number,
                    "le bound " + le + " is not a native bucket bound");
        }
        value->buckets.emplace_back(static_cast<std::uint32_t>(bucket), delta);
      }
      continue;
    }
    if (strip_suffix("_sum", &base)) {
      obs::MetricValue* value = value_of(base);
      if (!parse_u64(value_text, &value->hist_sum)) {
        malformed(line_number, "bad histogram sum '" + value_text + "'");
      }
      pending_of(base).saw_sum = true;
      continue;
    }
    if (strip_suffix("_count", &base)) {
      obs::MetricValue* value = value_of(base);
      if (!parse_u64(value_text, &value->hist_count)) {
        malformed(line_number, "bad histogram count '" + value_text + "'");
      }
      pending_of(base).saw_count = true;
      continue;
    }

    obs::MetricKind* kind = declared_kind(key);
    if (kind == nullptr) {
      malformed(line_number, "sample for undeclared metric '" + key + "'");
    }
    obs::MetricValue* value = value_of(key);
    switch (*kind) {
      case obs::MetricKind::kCounter:
        if (!parse_u64(value_text, &value->counter)) {
          malformed(line_number, "bad counter value '" + value_text + "'");
        }
        break;
      case obs::MetricKind::kGauge:
        if (!parse_i64(value_text, &value->gauge)) {
          malformed(line_number, "bad gauge value '" + value_text + "'");
        }
        break;
      case obs::MetricKind::kHistogram:
        malformed(line_number,
                  "bare sample for histogram '" + key +
                      "' (expected _bucket/_sum/_count series)");
    }
  }

  for (const auto& [name, state] : pending) {
    obs::MetricValue* value = value_of(name);
    if (!state.saw_count) {
      throw std::runtime_error("prometheus parse error: histogram '" + name +
                               "' has no _count sample");
    }
    if (state.saw_inf && state.inf_count != value->hist_count) {
      throw std::runtime_error("prometheus parse error: histogram '" + name +
                               "' +Inf bucket disagrees with _count");
    }
  }

  std::sort(snapshot.metrics.begin(), snapshot.metrics.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return snapshot;
}

}  // namespace fnda::ops
