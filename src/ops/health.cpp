#include "ops/health.h"

#include <charconv>
#include <cstdio>
#include <stdexcept>

#include "obs/export.h"

namespace fnda::ops {
namespace {

void skip_spaces(std::string_view& text) {
  while (!text.empty() && (text.front() == ' ' || text.front() == '\t')) {
    text.remove_prefix(1);
  }
}

std::string_view take_word(std::string_view& text) {
  skip_spaces(text);
  std::size_t end = 0;
  while (end < text.size() && text[end] != ' ' && text[end] != '\t') ++end;
  const std::string_view word = text.substr(0, end);
  text.remove_prefix(end);
  return word;
}

bool valid_rule_name(std::string_view name) {
  if (name.empty()) return false;
  for (const char c : name) {
    if (!((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_')) {
      return false;
    }
  }
  return true;
}

bool valid_metric_name(std::string_view name) {
  if (name.empty()) return false;
  for (const char c : name) {
    if (!((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
          (c >= '0' && c <= '9') || c == '_' || c == ':')) {
      return false;
    }
  }
  return true;
}

bool parse_u64(std::string_view text, std::uint64_t* out) {
  if (text.empty()) return false;
  auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), *out);
  return ec == std::errc{} && ptr == text.data() + text.size();
}

/// Parses a non-negative decimal like "0.01" without strtod's locale
/// dependence: integer part plus up to 9 fractional digits.
bool parse_ratio(std::string_view text, double* out) {
  if (text.empty()) return false;
  const std::size_t dot = text.find('.');
  std::uint64_t whole = 0;
  std::uint64_t frac = 0;
  std::uint64_t scale = 1;
  const std::string_view whole_text =
      dot == std::string_view::npos ? text : text.substr(0, dot);
  if (!parse_u64(whole_text, &whole)) return false;
  if (dot != std::string_view::npos) {
    const std::string_view frac_text = text.substr(dot + 1);
    if (frac_text.empty() || frac_text.size() > 9) return false;
    if (!parse_u64(frac_text, &frac)) return false;
    for (std::size_t i = 0; i < frac_text.size(); ++i) scale *= 10;
  }
  *out = static_cast<double>(whole) +
         static_cast<double>(frac) / static_cast<double>(scale);
  return true;
}

/// Fixed-point ratio: numerator*1e6/denominator in integer arithmetic, so
/// evaluation never touches floating point (thread-count invariance needs
/// nothing stronger than integer determinism, but integers are simplest
/// to pin and render).
std::uint64_t ratio_micros(std::uint64_t numerator, std::uint64_t denominator) {
  if (denominator == 0) return 0;
  // Split to avoid overflow on huge counters: whole part + remainder part.
  const std::uint64_t whole = numerator / denominator;
  const std::uint64_t rem = numerator % denominator;
  return whole * 1'000'000ull + (rem * 1'000'000ull) / denominator;
}

std::string format_ratio(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.6f", value);
  return buffer;
}

}  // namespace

bool SloRule::parse(std::string_view text, SloRule* out, std::string* error) {
  auto fail = [&](const std::string& what) {
    if (error != nullptr) *error = what;
    return false;
  };

  SloRule rule;
  std::string_view rest = text;
  const std::string_view name = take_word(rest);
  if (!valid_rule_name(name)) {
    return fail("rule name must be [a-z0-9_]+, got '" + std::string(name) +
                "'");
  }
  rule.name = std::string(name);

  const std::string_view expr = take_word(rest);
  const std::size_t open = expr.find('(');
  if (open == std::string_view::npos || expr.back() != ')') {
    return fail("expected kind(metric), got '" + std::string(expr) + "'");
  }
  const std::string_view kind = expr.substr(0, open);
  const std::string_view args = expr.substr(open + 1,
                                            expr.size() - open - 2);
  if (kind == "max") {
    rule.kind = SloKind::kValueMax;
  } else if (kind == "p50") {
    rule.kind = SloKind::kQuantileMax;
    rule.quantile = 0.50;
  } else if (kind == "p90") {
    rule.kind = SloKind::kQuantileMax;
    rule.quantile = 0.90;
  } else if (kind == "p95") {
    rule.kind = SloKind::kQuantileMax;
    rule.quantile = 0.95;
  } else if (kind == "p99") {
    rule.kind = SloKind::kQuantileMax;
    rule.quantile = 0.99;
  } else if (kind == "p999") {
    rule.kind = SloKind::kQuantileMax;
    rule.quantile = 0.999;
  } else if (kind == "ratio") {
    rule.kind = SloKind::kRatioMax;
  } else {
    return fail("unknown rule kind '" + std::string(kind) +
                "' (max, p50..p999, ratio)");
  }

  if (rule.kind == SloKind::kRatioMax) {
    const std::size_t comma = args.find(',');
    if (comma == std::string_view::npos) {
      return fail("ratio needs two metrics: ratio(numerator,denominator)");
    }
    const std::string_view numerator = args.substr(0, comma);
    const std::string_view denominator = args.substr(comma + 1);
    if (!valid_metric_name(numerator) || !valid_metric_name(denominator)) {
      return fail("bad metric name in ratio(...)");
    }
    rule.metric = std::string(numerator);
    rule.denominator = std::string(denominator);
  } else {
    if (!valid_metric_name(args)) {
      return fail("bad metric name '" + std::string(args) + "'");
    }
    rule.metric = std::string(args);
  }

  const std::string_view op = take_word(rest);
  if (op != "<=") {
    return fail("expected '<=', got '" + std::string(op) + "'");
  }
  const std::string_view threshold = take_word(rest);
  if (rule.kind == SloKind::kRatioMax) {
    if (!parse_ratio(threshold, &rule.ratio_threshold)) {
      return fail("bad ratio threshold '" + std::string(threshold) + "'");
    }
  } else {
    if (!parse_u64(threshold, &rule.threshold)) {
      return fail("bad integer threshold '" + std::string(threshold) + "'");
    }
  }
  skip_spaces(rest);
  if (!rest.empty()) {
    return fail("trailing input after threshold: '" + std::string(rest) + "'");
  }
  *out = rule;
  return true;
}

std::string SloRule::to_string() const {
  std::string kind_text;
  switch (kind) {
    case SloKind::kValueMax: kind_text = "max"; break;
    case SloKind::kQuantileMax:
      if (quantile == 0.50) kind_text = "p50";
      else if (quantile == 0.90) kind_text = "p90";
      else if (quantile == 0.95) kind_text = "p95";
      else if (quantile == 0.999) kind_text = "p999";
      else kind_text = "p99";
      break;
    case SloKind::kRatioMax: kind_text = "ratio"; break;
  }
  std::string args = metric;
  if (kind == SloKind::kRatioMax) args += ',' + denominator;
  std::string threshold_text = kind == SloKind::kRatioMax
                                   ? format_ratio(ratio_threshold)
                                   : std::to_string(threshold);
  return name + ' ' + kind_text + '(' + args + ") <= " + threshold_text;
}

HealthWatchdog::HealthWatchdog(std::vector<SloRule> rules) {
  states_.reserve(rules.size());
  for (SloRule& rule : rules) {
    RuleState state;
    state.rule = std::move(rule);
    states_.push_back(std::move(state));
  }
}

std::vector<SloRule> HealthWatchdog::default_rules() {
  const char* kDefaults[] = {
      "delivery_p99 p99(fnda_bus_delivery_latency_us) <= 250000",
      "mailbox_shed ratio(fnda_mailbox_overflow_total,fnda_bus_sent_total) "
      "<= 0.01",
      "attack_shed ratio(fnda_attack_shed_total,fnda_attack_searches_total) "
      "<= 0.5",
      "escrow_held max(fnda_escrow_held_micros) <= 10000000000000",
  };
  std::vector<SloRule> rules;
  for (const char* text : kDefaults) {
    SloRule rule;
    std::string error;
    if (!SloRule::parse(text, &rule, &error)) {
      throw std::logic_error("HealthWatchdog::default_rules: " + error);
    }
    rules.push_back(std::move(rule));
  }
  return rules;
}

std::size_t HealthWatchdog::evaluate(const obs::MetricsSnapshot& snapshot) {
  ++evaluations_;
  std::size_t breached_now = 0;
  for (RuleState& state : states_) {
    const SloRule& rule = state.rule;
    const obs::MetricValue* value = snapshot.find(rule.metric);
    state.last_present = value != nullptr;
    state.last_breached = false;
    if (value == nullptr) {
      state.last_value = 0;
      continue;
    }
    bool breached = false;
    switch (rule.kind) {
      case SloKind::kValueMax: {
        std::uint64_t observed = 0;
        switch (value->kind) {
          case obs::MetricKind::kCounter: observed = value->counter; break;
          case obs::MetricKind::kGauge:
            observed = value->gauge < 0
                           ? 0
                           : static_cast<std::uint64_t>(value->gauge);
            break;
          case obs::MetricKind::kHistogram: observed = value->hist_max; break;
        }
        state.last_value = observed;
        breached = observed > rule.threshold;
        break;
      }
      case SloKind::kQuantileMax: {
        const std::uint64_t observed =
            obs::snapshot_quantile(*value, rule.quantile);
        state.last_value = observed;
        breached = observed > rule.threshold;
        break;
      }
      case SloKind::kRatioMax: {
        const obs::MetricValue* denom = snapshot.find(rule.denominator);
        if (denom == nullptr) {
          state.last_present = false;
          state.last_value = 0;
          break;
        }
        const std::uint64_t observed =
            ratio_micros(value->counter, denom->counter);
        state.last_value = observed;
        const std::uint64_t ceiling = static_cast<std::uint64_t>(
            rule.ratio_threshold * 1'000'000.0 + 0.5);
        breached = observed > ceiling;
        break;
      }
    }
    if (breached) {
      state.last_breached = true;
      ++state.breaches;
      ++total_breaches_;
      ++breached_now;
    }
  }
  return breached_now;
}

void HealthWatchdog::bind_metrics(obs::MetricsRegistry& registry) {
  registry.counter_fn("fnda_health_evaluations_total",
                      [this] { return evaluations_; });
  registry.counter_fn("fnda_health_breaches_total",
                      [this] { return total_breaches_; });
  for (const RuleState& state : states_) {
    registry.counter_fn(
        "fnda_health_breach_" + state.rule.name + "_total",
        [&state] { return state.breaches; });
  }
}

}  // namespace fnda::ops
