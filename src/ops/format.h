// Rendering and parsing helpers shared by the console and the CLI.
//
// render_* functions turn deterministic MetricsSnapshots into aligned
// text tables (every number is an integer — the snapshot never holds
// floats, so output is byte-stable).  parse_prometheus_text inverts
// write_prometheus: it reads an exposition-format document back into a
// snapshot, which is how `fnda metrics-dump --in` validates and reformats
// files and how tests round-trip the writer.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace fnda::ops {

/// One text row per metric: counters/gauges show their value, histograms
/// show count/sum/p50/p99/max (quantiles via obs::snapshot_quantile).
/// Columns are space-aligned on the longest name.
std::vector<std::string> render_metrics_table(
    const obs::MetricsSnapshot& snapshot);

/// Percentile readout for one histogram: count, sum, mean (integer
/// division), p50/p90/p99/p999, max, and the non-empty buckets.
std::vector<std::string> render_histogram(const std::string& name,
                                          const obs::MetricValue& value);

/// Parses a Prometheus text-exposition document (the dialect
/// write_prometheus emits: `# TYPE` comments, scalar samples, histogram
/// `_bucket{le="..."}` cumulative counts plus `_sum`/`_count`) into a
/// snapshot.  Throws std::runtime_error with a line-numbered message on
/// anything malformed.  Histogram `hist_max` is not representable in the
/// format and reads back as 0.
obs::MetricsSnapshot parse_prometheus_text(std::istream& in);

}  // namespace fnda::ops
