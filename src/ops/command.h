// Typed command plane for the operations console.
//
// Modeled on the eriksl esp32 CLI framework (SNIPPETS.md 1-3): commands
// live in a declarative table — multi-word names, aliases, help text, and
// *typed parameter descriptors* with bounds — so parsing, validation, and
// help generation are data-driven and a handler only ever sees arguments
// that already passed their declared checks.  Replies are structured:
// every command produces both a text rendering (the REPL/script surface)
// and a JSON object (the machine surface the future network gateway
// serves), built from the same fields so the two can never drift.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

namespace fnda::ops {

enum class ParamType { kInt, kUInt, kString, kChoice };

/// One positional parameter's descriptor.  kInt/kUInt validate bounds;
/// kChoice validates membership; kString passes through.  Optional
/// parameters must trail required ones and fall back to `fallback`.
struct ParamSpec {
  std::string name;
  ParamType type = ParamType::kString;
  bool required = true;
  std::int64_t min_value = std::numeric_limits<std::int64_t>::min();
  std::int64_t max_value = std::numeric_limits<std::int64_t>::max();
  std::vector<std::string> choices;  ///< kChoice only
  std::string fallback;              ///< optional params only
  std::string help;

  static ParamSpec integer(std::string name, std::int64_t min_value,
                           std::int64_t max_value, std::string help);
  static ParamSpec string(std::string name, std::string help);
  static ParamSpec choice(std::string name, std::vector<std::string> choices,
                          std::string help);
  /// Marks the param optional with a default (applies to any factory).
  ParamSpec optional(std::string fallback) &&;
};

/// Structured reply: `ok` + text lines + a JSON object string.  Build via
/// ReplyBuilder so text and JSON stay two renderings of the same fields.
struct Reply {
  bool ok = true;
  std::vector<std::string> lines;
  std::string json;  ///< one JSON object, e.g. {"ok":true,"trades":3}

  std::string text() const;  ///< lines joined with '\n' (no trailing \n)

  static Reply error(const std::string& message);
};

/// Accumulates named fields and free-form rows, then renders both forms.
/// Fields become `key: value` text lines and JSON members; rows become
/// bare text lines and a JSON "rows" array.  Field order is preserved.
class ReplyBuilder {
 public:
  ReplyBuilder& field(std::string_view key, std::string_view value);
  ReplyBuilder& field(std::string_view key, std::int64_t value);
  ReplyBuilder& field(std::string_view key, std::uint64_t value);
  ReplyBuilder& field(std::string_view key, bool value);
  ReplyBuilder& row(std::string text);

  Reply build() const;

 private:
  struct Field {
    std::string key;
    std::string json_value;  ///< already JSON-encoded
    std::string text_value;  ///< human rendering
  };
  std::vector<Field> fields_;
  std::vector<std::string> rows_;
};

/// JSON string escaping shared by the reply builders.
std::string json_escape(std::string_view text);

/// A parsed, validated invocation: values keyed by the declaring
/// ParamSpec/flag name.  Typed accessors never fail for declared names —
/// the parser rejected anything malformed before the handler ran.
class Invocation {
 public:
  bool flag(std::string_view name) const;
  const std::string& get(std::string_view name) const;
  std::int64_t get_int(std::string_view name) const;

 private:
  friend class CommandTable;
  std::vector<std::pair<std::string, std::string>> values_;
  std::vector<std::string> flags_;
};

struct CommandSpec {
  /// Space-separated words, e.g. "metrics dump".  Dispatch matches the
  /// longest registered word sequence.
  std::string name;
  std::vector<std::string> aliases;
  std::string help;
  std::vector<ParamSpec> params;
  /// Boolean flags (`--json`); unknown flags are rejected.
  std::vector<std::string> flags;
  std::function<Reply(const Invocation&)> handler;
};

/// The command registry: registration, tokenization, longest-prefix
/// dispatch, typed validation, and auto-generated help.
class CommandTable {
 public:
  void add(CommandSpec spec);

  /// Tokenizes and dispatches one input line.  Empty/whitespace lines
  /// return an ok empty reply; unknown commands and validation failures
  /// return `ok == false` with a diagnostic.
  Reply dispatch(const std::string& line) const;

  /// `help` / `help <command words>` rendering.
  Reply help(const std::vector<std::string>& words) const;

  const std::vector<CommandSpec>& commands() const { return commands_; }

  static std::vector<std::string> tokenize(const std::string& line);

 private:
  const CommandSpec* match(const std::vector<std::string>& tokens,
                           std::size_t* words_consumed) const;
  static std::string usage_line(const CommandSpec& spec);

  std::vector<CommandSpec> commands_;
};

}  // namespace fnda::ops
