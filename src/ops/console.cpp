#include "ops/console.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "obs/export.h"
#include "ops/format.h"

namespace fnda::ops {
namespace {

void fold(std::uint64_t& hash, std::uint64_t word) {
  for (int byte = 0; byte < 8; ++byte) {
    hash ^= (word >> (byte * 8)) & 0xffu;
    hash *= 1099511628211ull;
  }
}

std::string hex_digest(std::uint64_t digest) {
  constexpr char kHex[] = "0123456789abcdef";
  std::string out = "0x";
  for (int shift = 60; shift >= 0; shift -= 4) {
    out += kHex[(digest >> shift) & 0xf];
  }
  return out;
}

/// Renders a fixed-point micros ratio as a 6-decimal string ("0.012500").
std::string micros_ratio_text(std::uint64_t micros) {
  std::string frac = std::to_string(micros % 1'000'000ull);
  while (frac.size() < 6) frac.insert(frac.begin(), '0');
  return std::to_string(micros / 1'000'000ull) + "." + frac;
}

}  // namespace

ConsoleSession::ConsoleSession(const DoubleAuctionProtocol& protocol,
                               ConsoleConfig config)
    : config_(std::move(config)) {
  MultiExchangeConfig mx;
  mx.shards = config_.shards;
  mx.threads = config_.threads;
  mx.bus.drop_probability = config_.drop_probability;
  mx.bus.duplicate_probability = config_.duplicate_probability;
  mx.server.domain = ValueDomain{Money::from_units(config_.value_low),
                                 Money::from_units(config_.value_high)};
  // One fresh identity per trader per round, each posting the default
  // deposit; endow enough cash for max_rounds of deposits (same sizing as
  // run_throughput_session).
  mx.initial_cash = Money::from_units(
      static_cast<std::int64_t>(config_.max_rounds + 1) * 10 + 1'000);
  mx.seed = config_.seed;
  mx.telemetry = config_.telemetry;
  exchange_ = std::make_unique<MultiServerExchange>(protocol, mx);

  std::vector<SloRule> rules;
  if (config_.slo_rules.empty()) {
    rules = HealthWatchdog::default_rules();
  } else {
    for (const std::string& text : config_.slo_rules) {
      SloRule rule;
      std::string error;
      if (!SloRule::parse(text, &rule, &error)) {
        throw std::invalid_argument("bad SLO rule '" + text + "': " + error);
      }
      rules.push_back(std::move(rule));
    }
  }
  watchdog_ = std::make_unique<HealthWatchdog>(std::move(rules));
  if (obs::SessionTelemetry* telemetry = exchange_->telemetry()) {
    // Health counters ride the standard exposition: merged snapshots (and
    // thus metrics dump / the Prometheus surface) include them.
    watchdog_->bind_metrics(telemetry->driver().metrics);
  }

  Rng values(Rng(config_.seed ^ 0x5eedu).split());
  for (std::size_t i = 0; i < config_.clients; ++i) {
    const Side role = (i % 2 == 0) ? Side::kBuyer : Side::kSeller;
    const Money value = Money::from_units(
        values.uniform_int(config_.value_low, config_.value_high));
    TradingClient& trader = exchange_->add_trader(role, value);
    if (role == Side::kSeller && config_.max_rounds > 1) {
      exchange_->grant_goods(trader.account(), config_.max_rounds - 1);
    }
  }

  register_commands();
}

ConsoleSession::~ConsoleSession() = default;

obs::MetricsSnapshot ConsoleSession::merged_snapshot() const {
  if (const obs::SessionTelemetry* telemetry = exchange_->telemetry()) {
    return telemetry->merged_snapshot();
  }
  return obs::MetricsSnapshot{};
}

Reply ConsoleSession::execute(const std::string& line) {
  std::size_t first = 0;
  while (first < line.size() && (line[first] == ' ' || line[first] == '\t')) {
    ++first;
  }
  if (first == line.size() || line[first] == '#') return Reply{};
  return commands_.dispatch(line);
}

std::uint64_t ConsoleSession::digest() const {
  std::uint64_t digest = round_digest_;
  fold(digest, static_cast<std::uint64_t>(exchange_->cash_total().micros()));
  fold(digest, exchange_->goods_total());
  fold(digest,
       static_cast<std::uint64_t>(exchange_->escrow_total_held().micros()));
  return digest;
}

Reply ConsoleSession::cmd_run(const Invocation& invocation) {
  const std::int64_t rounds = invocation.get_int("rounds");
  std::uint64_t trades = 0;
  std::uint64_t breaches = 0;
  for (std::int64_t r = 0; r < rounds; ++r) {
    const std::vector<RoundId> ids = exchange_->open_rounds(config_.open_for);
    exchange_->drive_to_quiescence();
    for (std::size_t s = 0; s < ids.size(); ++s) {
      if (ids[s] == RoundId::invalid()) continue;  // paused shard
      const Outcome* outcome = exchange_->server(s).outcome_of(ids[s]);
      if (outcome == nullptr) continue;
      trades += outcome->trade_count();
      fold(round_digest_, s);
      fold(round_digest_, ids[s].value());
      fold(round_digest_, outcome->trade_count());
      for (const Fill& fill : outcome->fills()) {
        fold(round_digest_, fill.side == Side::kBuyer ? 1 : 2);
        fold(round_digest_, fill.identity.value());
        fold(round_digest_,
             static_cast<std::uint64_t>(fill.price.micros()));
      }
    }
    ++rounds_run_;
    // One watchdog evaluation per round boundary, on the quiescent merged
    // snapshot — the epoch-cadence SLO check.
    breaches += watchdog_->evaluate(merged_snapshot());
  }
  return ReplyBuilder()
      .field("rounds", static_cast<std::uint64_t>(rounds))
      .field("trades", trades)
      .field("breaches", breaches)
      .field("rounds_total", rounds_run_)
      .build();
}

Reply ConsoleSession::cmd_status(const Invocation&) {
  const RuntimeConfig& runtime = exchange_->runtime_config();
  return ReplyBuilder()
      .field("shards", static_cast<std::uint64_t>(exchange_->shard_count()))
      .field("paused", static_cast<std::uint64_t>(exchange_->paused_count()))
      .field("rounds_total", rounds_run_)
      .field("rounds_completed",
             static_cast<std::uint64_t>(exchange_->rounds_completed()))
      .field("sim_now_us", exchange_->now().micros)
      .field("config_generation", runtime.generation())
      .field("config_pending", runtime.has_pending())
      .build();
}

Reply ConsoleSession::cmd_metrics_show(const Invocation&) {
  ReplyBuilder builder;
  for (std::string& line : render_metrics_table(merged_snapshot())) {
    builder.row(std::move(line));
  }
  return builder.build();
}

Reply ConsoleSession::cmd_metrics_dump(const Invocation& invocation) {
  const obs::MetricsSnapshot snapshot = merged_snapshot();
  Reply reply;
  std::ostringstream json;
  obs::write_json_snapshot(json, snapshot);
  if (invocation.flag("json")) {
    std::string body = json.str();
    if (!body.empty() && body.back() == '\n') body.pop_back();
    reply.lines.push_back(body);
  } else {
    std::istringstream text(obs::prometheus_text(snapshot));
    std::string line;
    while (std::getline(text, line)) reply.lines.push_back(line);
  }
  reply.json = "{\"ok\":true,\"snapshot\":" + json.str();
  if (!reply.json.empty() && reply.json.back() == '\n') reply.json.pop_back();
  reply.json += '}';
  return reply;
}

Reply ConsoleSession::cmd_hist(const Invocation& invocation) {
  const std::string& name = invocation.get("name");
  const obs::MetricsSnapshot snapshot = merged_snapshot();
  const obs::MetricValue* value = snapshot.find(name);
  if (value == nullptr) {
    return Reply::error("no such metric: '" + name + "'");
  }
  if (value->kind != obs::MetricKind::kHistogram) {
    return Reply::error("'" + name + "' is not a histogram");
  }
  ReplyBuilder builder;
  for (std::string& line : render_histogram(name, *value)) {
    builder.row(std::move(line));
  }
  return builder.build();
}

Reply ConsoleSession::cmd_book_dump(const Invocation& invocation) {
  const std::int64_t shard = invocation.get_int("shard");
  const std::int64_t depth = invocation.get_int("depth");
  if (shard < 0 ||
      static_cast<std::size_t>(shard) >= exchange_->shard_count()) {
    return Reply::error("shard out of range (have " +
                        std::to_string(exchange_->shard_count()) + ")");
  }
  const AuctionServer& server = exchange_->server(
      static_cast<std::size_t>(shard));
  const std::optional<RoundId> round = server.latest_round();
  if (!round.has_value()) {
    return Reply::error("shard " + std::to_string(shard) +
                        " has no completed round");
  }
  const SortedBook* ranked = server.ranked_of(*round);
  if (ranked == nullptr) {
    return Reply::error("round evicted (retained_rounds)");
  }
  ReplyBuilder builder;
  builder.field("shard", static_cast<std::uint64_t>(shard));
  builder.field("round", round->value());
  builder.field("buyers", static_cast<std::uint64_t>(ranked->buyer_count()));
  builder.field("sellers",
                static_cast<std::uint64_t>(ranked->seller_count()));
  const std::size_t limit = static_cast<std::size_t>(depth);
  const auto& buyers = ranked->buyers();
  for (std::size_t i = 0; i < buyers.size() && i < limit; ++i) {
    builder.row("  buy  " + std::to_string(i + 1) + ": id-" +
                std::to_string(buyers[i].identity.value()) + " @ " +
                buyers[i].value.to_string());
  }
  const auto& sellers = ranked->sellers();
  for (std::size_t i = 0; i < sellers.size() && i < limit; ++i) {
    builder.row("  sell " + std::to_string(i + 1) + ": id-" +
                std::to_string(sellers[i].identity.value()) + " @ " +
                sellers[i].value.to_string());
  }
  return builder.build();
}

Reply ConsoleSession::cmd_escrow_show(const Invocation&) {
  ReplyBuilder builder;
  builder.field("total_held_micros", exchange_->escrow_total_held().micros());
  for (std::size_t s = 0; s < exchange_->shard_count(); ++s) {
    const EscrowService& escrow = exchange_->escrow(s);
    builder.row("  shard " + std::to_string(s) + ": held=" +
                escrow.total_held().to_string() + " identities=" +
                std::to_string(escrow.identities_with_deposits().size()));
  }
  return builder.build();
}

Reply ConsoleSession::cmd_audit_tail(const Invocation& invocation) {
  const std::int64_t count = invocation.get_int("count");
  const std::vector<AuditRecord> merged = exchange_->merged_audit();
  const std::size_t take =
      std::min(static_cast<std::size_t>(count), merged.size());
  ReplyBuilder builder;
  builder.field("total", static_cast<std::uint64_t>(merged.size()));
  for (std::size_t i = merged.size() - take; i < merged.size(); ++i) {
    const AuditRecord& record = merged[i];
    std::ostringstream row;
    row << "  t=" << record.at.micros << ' ' << record.round << ' '
        << to_string(record.kind);
    if (!record.detail.empty()) row << ' ' << record.detail;
    builder.row(row.str());
  }
  return builder.build();
}

Reply ConsoleSession::cmd_trace(bool start) {
  obs::SessionTelemetry* telemetry = exchange_->telemetry();
  if (telemetry == nullptr) {
    return Reply::error("telemetry is disabled for this session");
  }
  telemetry->set_trace_enabled(start);
  return ReplyBuilder().field("tracing", start).build();
}

Reply ConsoleSession::cmd_trace_export(const Invocation& invocation) {
  obs::SessionTelemetry* telemetry = exchange_->telemetry();
  if (telemetry == nullptr) {
    return Reply::error("telemetry is disabled for this session");
  }
  const std::string& path = invocation.get("file");
  const obs::TraceLog log = telemetry->flush_trace();
  std::ofstream out(path);
  if (!out) {
    return Reply::error("cannot open '" + path + "' for writing");
  }
  obs::write_chrome_trace(out, log);
  return ReplyBuilder()
      .field("file", path)
      .field("events", static_cast<std::uint64_t>(log.events.size()))
      .field("dropped", log.dropped)
      .build();
}

Reply ConsoleSession::cmd_shard_pause(const Invocation& invocation) {
  const std::int64_t shard = invocation.get_int("shard");
  if (shard < 0 ||
      static_cast<std::size_t>(shard) >= exchange_->shard_count()) {
    return Reply::error("shard out of range (have " +
                        std::to_string(exchange_->shard_count()) + ")");
  }
  exchange_->pause_shard(static_cast<std::size_t>(shard));
  return ReplyBuilder()
      .field("shard", static_cast<std::uint64_t>(shard))
      .field("paused", true)
      .build();
}

Reply ConsoleSession::cmd_shard_resume(const Invocation& invocation) {
  const std::int64_t shard = invocation.get_int("shard");
  if (shard < 0 ||
      static_cast<std::size_t>(shard) >= exchange_->shard_count()) {
    return Reply::error("shard out of range (have " +
                        std::to_string(exchange_->shard_count()) + ")");
  }
  exchange_->resume_shard(static_cast<std::size_t>(shard));
  return ReplyBuilder()
      .field("shard", static_cast<std::uint64_t>(shard))
      .field("paused", false)
      .build();
}

Reply ConsoleSession::cmd_shard_drain(const Invocation& invocation) {
  const std::int64_t shard = invocation.get_int("shard");
  if (shard < 0 ||
      static_cast<std::size_t>(shard) >= exchange_->shard_count()) {
    return Reply::error("shard out of range (have " +
                        std::to_string(exchange_->shard_count()) + ")");
  }
  // Drain = pause + run the whole fabric to quiescence: the shard's
  // in-flight round (if any) clears and nothing new opens on it.
  exchange_->pause_shard(static_cast<std::size_t>(shard));
  exchange_->drive_to_quiescence();
  return ReplyBuilder()
      .field("shard", static_cast<std::uint64_t>(shard))
      .field("paused", true)
      .field("drained", true)
      .build();
}

Reply ConsoleSession::cmd_config_show(const Invocation&) {
  const RuntimeConfig& runtime = exchange_->runtime_config();
  ReplyBuilder builder;
  builder.field("generation", runtime.generation());
  builder.field("applied_at_round", runtime.applied_at());
  for (const ConfigEntry& entry : runtime.entries()) {
    std::string row = "  " + entry.key + " = " + std::to_string(entry.active);
    if (entry.has_pending) {
      row += " (pending: " + std::to_string(entry.pending) + ")";
    }
    row += "  [" + std::to_string(entry.min_value) + ", " +
           std::to_string(entry.max_value) + "] " + entry.help;
    builder.row(std::move(row));
  }
  return builder.build();
}

Reply ConsoleSession::cmd_config_set(const Invocation& invocation) {
  const std::string& key = invocation.get("key");
  const std::string& value = invocation.get("value");
  std::string error;
  if (!exchange_->runtime_config().stage(key, value, &error)) {
    return Reply::error(error);
  }
  return ReplyBuilder()
      .field("key", key)
      .field("pending", value)
      .field("applies", "next round")
      .build();
}

Reply ConsoleSession::cmd_health(const Invocation&) {
  ReplyBuilder builder;
  builder.field("evaluations", watchdog_->evaluations());
  builder.field("breaches_total", watchdog_->total_breaches());
  for (const HealthWatchdog::RuleState& state : watchdog_->states()) {
    std::string status = "ok";
    if (!state.last_present) {
      status = "absent";
    } else if (state.last_breached) {
      status = "BREACH";
    }
    const bool ratio = state.rule.kind == SloKind::kRatioMax;
    builder.row("  " + state.rule.to_string() + " | value=" +
                (ratio ? micros_ratio_text(state.last_value)
                       : std::to_string(state.last_value)) +
                " breaches=" + std::to_string(state.breaches) + " " + status);
  }
  return builder.build();
}

Reply ConsoleSession::cmd_digest(const Invocation&) {
  return ReplyBuilder().field("digest", hex_digest(digest())).build();
}

void ConsoleSession::register_commands() {
  auto add = [this](std::string name, std::vector<std::string> aliases,
                    std::string help, std::vector<ParamSpec> params,
                    std::vector<std::string> flags,
                    Reply (ConsoleSession::*handler)(const Invocation&)) {
    CommandSpec spec;
    spec.name = std::move(name);
    spec.aliases = std::move(aliases);
    spec.help = std::move(help);
    spec.params = std::move(params);
    spec.flags = std::move(flags);
    spec.handler = [this, handler](const Invocation& invocation) {
      return (this->*handler)(invocation);
    };
    commands_.add(std::move(spec));
  };

  add("run", {"r"}, "advance the session by N rounds",
      {ParamSpec::integer("rounds", 1, 100'000, "rounds to run")
           .optional("1")},
      {}, &ConsoleSession::cmd_run);
  add("status", {"st"}, "session overview (shards, rounds, config)", {}, {},
      &ConsoleSession::cmd_status);
  add("metrics show", {"m"}, "merged metrics as an aligned table", {}, {},
      &ConsoleSession::cmd_metrics_show);
  add("metrics dump", {"md"},
      "merged metrics in Prometheus text (--json for the JSON document)", {},
      {"json", "prom"}, &ConsoleSession::cmd_metrics_dump);
  add("hist", {}, "percentile readout of one histogram metric",
      {ParamSpec::string("name", "metric name")}, {},
      &ConsoleSession::cmd_hist);
  add("book dump", {"bd"}, "ranked book lanes of a shard's latest round",
      {ParamSpec::integer("shard", 0, 1 << 20, "shard index"),
       ParamSpec::integer("depth", 1, 10'000, "entries per side")
           .optional("10")},
      {}, &ConsoleSession::cmd_book_dump);
  add("escrow show", {"es"}, "escrowed deposits per shard", {}, {},
      &ConsoleSession::cmd_escrow_show);
  add("audit tail", {"at"}, "last N merged audit records",
      {ParamSpec::integer("count", 1, 100'000, "records to show")
           .optional("10")},
      {}, &ConsoleSession::cmd_audit_tail);
  {
    CommandSpec spec;
    spec.name = "trace start";
    spec.help = "enable trace span recording";
    spec.handler = [this](const Invocation&) { return cmd_trace(true); };
    commands_.add(std::move(spec));
  }
  {
    CommandSpec spec;
    spec.name = "trace stop";
    spec.help = "disable trace span recording";
    spec.handler = [this](const Invocation&) { return cmd_trace(false); };
    commands_.add(std::move(spec));
  }
  add("trace export", {},
      "write the Chrome trace collected so far to a file",
      {ParamSpec::string("file", "output path")}, {},
      &ConsoleSession::cmd_trace_export);
  add("shard pause", {}, "stop opening rounds on a shard",
      {ParamSpec::integer("shard", 0, 1 << 20, "shard index")}, {},
      &ConsoleSession::cmd_shard_pause);
  add("shard resume", {}, "resume opening rounds on a shard",
      {ParamSpec::integer("shard", 0, 1 << 20, "shard index")}, {},
      &ConsoleSession::cmd_shard_resume);
  add("shard drain", {},
      "pause a shard and run the fabric to quiescence",
      {ParamSpec::integer("shard", 0, 1 << 20, "shard index")}, {},
      &ConsoleSession::cmd_shard_drain);
  add("config show", {"cs"},
      "runtime config: active values, pending changes, bounds", {}, {},
      &ConsoleSession::cmd_config_show);
  add("config set", {},
      "stage a runtime config change (applies at the next round)",
      {ParamSpec::string("key", "config key (see config show)"),
       ParamSpec::string("value", "new value")},
      {}, &ConsoleSession::cmd_config_set);
  add("health", {"h"}, "SLO watchdog state and breach counters", {}, {},
      &ConsoleSession::cmd_health);
  add("digest", {}, "FNV-1a digest of every cleared round + ledger totals",
      {}, {}, &ConsoleSession::cmd_digest);
  {
    CommandSpec spec;
    spec.name = "quit";
    spec.aliases = {"exit", "q"};
    spec.help = "leave the console";
    spec.handler = [this](const Invocation&) {
      done_ = true;
      return ReplyBuilder().field("bye", true).build();
    };
    commands_.add(std::move(spec));
  }
}

}  // namespace fnda::ops
