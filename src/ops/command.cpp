#include "ops/command.h"

#include <charconv>
#include <stdexcept>

namespace fnda::ops {
namespace {

bool parse_int(std::string_view text, std::int64_t* out) {
  if (text.empty()) return false;
  const char* begin = text.data();
  const char* end = begin + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, *out);
  return ec == std::errc{} && ptr == end;
}

}  // namespace

ParamSpec ParamSpec::integer(std::string name, std::int64_t min_value,
                             std::int64_t max_value, std::string help) {
  ParamSpec spec;
  spec.name = std::move(name);
  spec.type = ParamType::kInt;
  spec.min_value = min_value;
  spec.max_value = max_value;
  spec.help = std::move(help);
  return spec;
}

ParamSpec ParamSpec::string(std::string name, std::string help) {
  ParamSpec spec;
  spec.name = std::move(name);
  spec.type = ParamType::kString;
  spec.help = std::move(help);
  return spec;
}

ParamSpec ParamSpec::choice(std::string name, std::vector<std::string> choices,
                            std::string help) {
  ParamSpec spec;
  spec.name = std::move(name);
  spec.type = ParamType::kChoice;
  spec.choices = std::move(choices);
  spec.help = std::move(help);
  return spec;
}

ParamSpec ParamSpec::optional(std::string fallback) && {
  required = false;
  this->fallback = std::move(fallback);
  return std::move(*this);
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(c >> 4) & 0xf];
          out += kHex[c & 0xf];
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string Reply::text() const {
  std::string out;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (i > 0) out += '\n';
    out += lines[i];
  }
  return out;
}

Reply Reply::error(const std::string& message) {
  Reply reply;
  reply.ok = false;
  reply.lines.push_back("error: " + message);
  reply.json = "{\"ok\":false,\"error\":\"" + json_escape(message) + "\"}";
  return reply;
}

ReplyBuilder& ReplyBuilder::field(std::string_view key,
                                  std::string_view value) {
  fields_.push_back(Field{std::string(key),
                          '"' + json_escape(value) + '"',
                          std::string(value)});
  return *this;
}

ReplyBuilder& ReplyBuilder::field(std::string_view key, std::int64_t value) {
  const std::string text = std::to_string(value);
  fields_.push_back(Field{std::string(key), text, text});
  return *this;
}

ReplyBuilder& ReplyBuilder::field(std::string_view key, std::uint64_t value) {
  const std::string text = std::to_string(value);
  fields_.push_back(Field{std::string(key), text, text});
  return *this;
}

ReplyBuilder& ReplyBuilder::field(std::string_view key, bool value) {
  fields_.push_back(Field{std::string(key), value ? "true" : "false",
                          value ? "true" : "false"});
  return *this;
}

ReplyBuilder& ReplyBuilder::row(std::string text) {
  rows_.push_back(std::move(text));
  return *this;
}

Reply ReplyBuilder::build() const {
  Reply reply;
  reply.json = "{\"ok\":true";
  for (const Field& field : fields_) {
    reply.lines.push_back(field.key + ": " + field.text_value);
    reply.json += ",\"" + json_escape(field.key) + "\":" + field.json_value;
  }
  if (!rows_.empty()) {
    reply.json += ",\"rows\":[";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      if (i > 0) reply.json += ',';
      reply.json += '"' + json_escape(rows_[i]) + '"';
      reply.lines.push_back(rows_[i]);
    }
    reply.json += ']';
  }
  reply.json += '}';
  return reply;
}

bool Invocation::flag(std::string_view name) const {
  for (const std::string& flag : flags_) {
    if (flag == name) return true;
  }
  return false;
}

const std::string& Invocation::get(std::string_view name) const {
  for (const auto& [key, value] : values_) {
    if (key == name) return value;
  }
  throw std::logic_error("Invocation: undeclared parameter '" +
                         std::string(name) + "'");
}

std::int64_t Invocation::get_int(std::string_view name) const {
  std::int64_t value = 0;
  if (!parse_int(get(name), &value)) {
    throw std::logic_error("Invocation: parameter '" + std::string(name) +
                           "' is not an integer");
  }
  return value;
}

std::vector<std::string> CommandTable::tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::string current;
  for (const char c : line) {
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      if (!current.empty()) tokens.push_back(std::move(current));
      current.clear();
    } else {
      current += c;
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

void CommandTable::add(CommandSpec spec) { commands_.push_back(std::move(spec)); }

std::string CommandTable::usage_line(const CommandSpec& spec) {
  std::string usage = spec.name;
  for (const ParamSpec& param : spec.params) {
    usage += ' ';
    usage += param.required ? "<" + param.name + ">" : "[" + param.name + "]";
  }
  for (const std::string& flag : spec.flags) {
    usage += " [--" + flag + "]";
  }
  return usage;
}

const CommandSpec* CommandTable::match(const std::vector<std::string>& tokens,
                                       std::size_t* words_consumed) const {
  const CommandSpec* best = nullptr;
  std::size_t best_words = 0;
  for (const CommandSpec& spec : commands_) {
    // Exact multi-word name match against the leading tokens.
    const std::vector<std::string> words = tokenize(spec.name);
    if (words.size() <= tokens.size()) {
      bool matches = true;
      for (std::size_t i = 0; i < words.size(); ++i) {
        if (words[i] != tokens[i]) {
          matches = false;
          break;
        }
      }
      if (matches && words.size() > best_words) {
        best = &spec;
        best_words = words.size();
      }
    }
    // Aliases are single tokens standing for the whole name.
    if (best_words < 1 && !tokens.empty()) {
      for (const std::string& alias : spec.aliases) {
        if (alias == tokens[0]) {
          best = &spec;
          best_words = 1;
        }
      }
    }
  }
  *words_consumed = best_words;
  return best;
}

Reply CommandTable::dispatch(const std::string& line) const {
  const std::vector<std::string> tokens = tokenize(line);
  if (tokens.empty()) return Reply{};
  if (tokens[0] == "help" || tokens[0] == "?") {
    return help({tokens.begin() + 1, tokens.end()});
  }

  std::size_t consumed = 0;
  const CommandSpec* spec = match(tokens, &consumed);
  if (spec == nullptr) {
    return Reply::error("unknown command: '" + tokens[0] +
                        "' (try 'help')");
  }

  Invocation invocation;
  std::vector<std::string> positional;
  for (std::size_t i = consumed; i < tokens.size(); ++i) {
    const std::string& token = tokens[i];
    if (token.size() > 2 && token[0] == '-' && token[1] == '-') {
      const std::string name = token.substr(2);
      bool known = false;
      for (const std::string& flag : spec->flags) {
        if (flag == name) known = true;
      }
      if (!known) {
        return Reply::error("unknown flag --" + name + " (usage: " +
                            usage_line(*spec) + ")");
      }
      invocation.flags_.push_back(name);
    } else {
      positional.push_back(token);
    }
  }

  if (positional.size() > spec->params.size()) {
    return Reply::error("too many arguments (usage: " + usage_line(*spec) +
                        ")");
  }
  for (std::size_t i = 0; i < spec->params.size(); ++i) {
    const ParamSpec& param = spec->params[i];
    if (i >= positional.size()) {
      if (param.required) {
        return Reply::error("missing <" + param.name + "> (usage: " +
                            usage_line(*spec) + ")");
      }
      invocation.values_.emplace_back(param.name, param.fallback);
      continue;
    }
    const std::string& raw = positional[i];
    switch (param.type) {
      case ParamType::kInt:
      case ParamType::kUInt: {
        std::int64_t value = 0;
        if (!parse_int(raw, &value)) {
          return Reply::error("<" + param.name + "> expects an integer, got '" +
                              raw + "'");
        }
        if (value < param.min_value || value > param.max_value) {
          return Reply::error("<" + param.name + "> out of range [" +
                              std::to_string(param.min_value) + ", " +
                              std::to_string(param.max_value) + "]: " + raw);
        }
        break;
      }
      case ParamType::kChoice: {
        bool valid = false;
        for (const std::string& choice : param.choices) {
          if (choice == raw) valid = true;
        }
        if (!valid) {
          std::string options;
          for (const std::string& choice : param.choices) {
            if (!options.empty()) options += '|';
            options += choice;
          }
          return Reply::error("<" + param.name + "> must be one of " + options +
                              ", got '" + raw + "'");
        }
        break;
      }
      case ParamType::kString:
        break;
    }
    invocation.values_.emplace_back(param.name, raw);
  }

  return spec->handler(invocation);
}

Reply CommandTable::help(const std::vector<std::string>& words) const {
  if (!words.empty()) {
    // Detail view: match the requested words against one command.
    std::string requested;
    for (const std::string& word : words) {
      if (!requested.empty()) requested += ' ';
      requested += word;
    }
    for (const CommandSpec& spec : commands_) {
      bool hit = spec.name == requested;
      for (const std::string& alias : spec.aliases) {
        if (alias == requested) hit = true;
      }
      if (!hit) continue;
      ReplyBuilder builder;
      builder.field("command", spec.name);
      builder.field("usage", usage_line(spec));
      if (!spec.aliases.empty()) {
        std::string aliases;
        for (const std::string& alias : spec.aliases) {
          if (!aliases.empty()) aliases += ", ";
          aliases += alias;
        }
        builder.field("aliases", aliases);
      }
      builder.field("help", spec.help);
      for (const ParamSpec& param : spec.params) {
        std::string detail = "  <" + param.name + ">";
        if (param.type == ParamType::kInt || param.type == ParamType::kUInt) {
          detail += " int [" + std::to_string(param.min_value) + ", " +
                    std::to_string(param.max_value) + "]";
        } else if (param.type == ParamType::kChoice) {
          detail += " one of";
          for (const std::string& choice : param.choices) {
            detail += ' ' + choice;
          }
        }
        if (!param.required) detail += " (default: " + param.fallback + ")";
        if (!param.help.empty()) detail += " — " + param.help;
        builder.row(std::move(detail));
      }
      return builder.build();
    }
    return Reply::error("unknown command: '" + requested + "'");
  }

  ReplyBuilder builder;
  builder.field("commands", static_cast<std::uint64_t>(commands_.size()));
  for (const CommandSpec& spec : commands_) {
    builder.row("  " + usage_line(spec) + " — " + spec.help);
  }
  return builder.build();
}

}  // namespace fnda::ops
