// SLO health watchdog over deterministic metrics snapshots.
//
// An operator declares rules in a one-line syntax and the watchdog
// evaluates them against each quiescent merged snapshot (the console runs
// it after every round).  Because snapshots are bit-identical for every
// worker count, breach counters are thread-count-invariant — a health
// regression reproduces exactly under any --threads, which is what makes
// the counters pinnable in golden tests.
//
// Rule syntax (one rule per line):
//
//   <name> max(<metric>) <= <int>            current value ceiling
//   <name> p50|p90|p95|p99|p999(<metric>) <= <int>
//                                            histogram quantile ceiling
//   <name> ratio(<metric>,<metric>) <= <float>
//                                            numerator/denominator ceiling
//
// `max` reads a counter's count, a gauge's value, or a histogram's max.
// A rule whose metric is absent from the snapshot evaluates to "not
// present" and never breaches (sessions differ in which subsystems they
// wire).  Rule names must be [a-z0-9_]+ — they become Prometheus metric
// name suffixes.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"

namespace fnda::ops {

enum class SloKind { kValueMax, kQuantileMax, kRatioMax };

struct SloRule {
  std::string name;
  SloKind kind = SloKind::kValueMax;
  std::string metric;
  std::string denominator;  ///< kRatioMax only
  double quantile = 0.99;   ///< kQuantileMax only
  std::uint64_t threshold = 0;   ///< kValueMax / kQuantileMax
  double ratio_threshold = 0.0;  ///< kRatioMax

  /// Parses the one-line syntax above; returns false and fills `error` on
  /// anything malformed.
  static bool parse(std::string_view text, SloRule* out, std::string* error);
  /// Round-trips back to the declaration syntax (config show, docs).
  std::string to_string() const;
};

class HealthWatchdog {
 public:
  explicit HealthWatchdog(std::vector<SloRule> rules);

  /// The rules console sessions run by default, covering the tentpole
  /// SLOs: p99 delivery latency, mailbox shed rate, attack-search shed
  /// rate, and the escrow held ceiling.
  static std::vector<SloRule> default_rules();

  /// Evaluates every rule against one snapshot, bumping breach counters.
  /// Returns the number of rules breached by this snapshot.
  std::size_t evaluate(const obs::MetricsSnapshot& snapshot);

  struct RuleState {
    SloRule rule;
    std::uint64_t breaches = 0;    ///< evaluations that breached
    bool last_present = false;     ///< metric existed in the last snapshot
    bool last_breached = false;
    /// Last observed value: integer domain for value/quantile rules; for
    /// ratio rules this is the ratio scaled by 1e6 (fixed-point, so the
    /// state stays integer and deterministic to render).
    std::uint64_t last_value = 0;
  };

  const std::vector<RuleState>& states() const { return states_; }
  std::uint64_t evaluations() const { return evaluations_; }
  std::uint64_t total_breaches() const { return total_breaches_; }

  /// Exposes the watchdog through the standard exposition: counter_fns
  /// for evaluations, total breaches, and one per-rule breach counter
  /// (`fnda_health_breach_<rule>_total`).  The watchdog must outlive the
  /// registry's snapshots.
  void bind_metrics(obs::MetricsRegistry& registry);

 private:
  std::vector<RuleState> states_;
  std::uint64_t evaluations_ = 0;
  std::uint64_t total_breaches_ = 0;
};

}  // namespace fnda::ops
