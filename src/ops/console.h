// ConsoleSession: the live operations console over a MultiServerExchange.
//
// The session owns an exchange plus a population of truthful traders (the
// same workload shape as run_throughput_session) and exposes the typed
// command plane against it.  Commands only ever run between drives — the
// exchange is quiescent at every epoch barrier run_round leaves behind —
// so every reply reads a deterministic snapshot and the whole transcript
// (replies AND the exchange digest) is byte-identical for every worker
// thread count.  Runtime config changes stage through RuntimeConfig and
// land at the next `run`'s round boundary.
//
// This is the seam the future network gateway (ROADMAP item 1) serves:
// the gateway will feed lines into execute() and stream Reply objects
// back; nothing here knows about stdin or sockets.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "market/multi_exchange.h"
#include "ops/command.h"
#include "ops/health.h"

namespace fnda::ops {

struct ConsoleConfig {
  std::size_t clients = 64;
  std::size_t shards = 2;
  std::size_t threads = 1;
  std::uint64_t seed = 42;
  /// Rounds stay open this long (sim time) on every `run`.
  SimTime open_for = SimTime::millis(100);
  std::int64_t value_low = 0;
  std::int64_t value_high = 200;
  double drop_probability = 0.0;
  double duplicate_probability = 0.0;
  /// Sizing allowance for trader cash/goods endowments: sessions can run
  /// this many rounds before sellers run out of stock or deposit cash.
  std::size_t max_rounds = 1024;
  obs::TelemetryOptions telemetry{};
  /// SLO rule declarations (health.h syntax); empty = default_rules().
  std::vector<std::string> slo_rules;
};

class ConsoleSession {
 public:
  /// Throws std::invalid_argument on a malformed SLO rule.  `protocol`
  /// must outlive the session.
  ConsoleSession(const DoubleAuctionProtocol& protocol, ConsoleConfig config);
  ~ConsoleSession();

  /// Executes one command line (tokenize, validate, run) and returns the
  /// structured reply.  Empty lines and `#` comments return ok/empty.
  Reply execute(const std::string& line);

  /// True once `quit`/`exit` ran; the REPL loop exits on it.
  bool done() const { return done_; }

  /// FNV-1a fold over every cleared round (shard, round id, fills) plus
  /// the current conservation totals — the bit-identity witness the
  /// golden tests pin across thread counts.
  std::uint64_t digest() const;

  std::uint64_t rounds_run() const { return rounds_run_; }
  MultiServerExchange& exchange() { return *exchange_; }
  const CommandTable& commands() const { return commands_; }
  const HealthWatchdog& watchdog() const { return *watchdog_; }

 private:
  void register_commands();
  Reply cmd_run(const Invocation& invocation);
  Reply cmd_status(const Invocation& invocation);
  Reply cmd_metrics_show(const Invocation& invocation);
  Reply cmd_metrics_dump(const Invocation& invocation);
  Reply cmd_hist(const Invocation& invocation);
  Reply cmd_book_dump(const Invocation& invocation);
  Reply cmd_escrow_show(const Invocation& invocation);
  Reply cmd_audit_tail(const Invocation& invocation);
  Reply cmd_trace(bool start);
  Reply cmd_trace_export(const Invocation& invocation);
  Reply cmd_shard_pause(const Invocation& invocation);
  Reply cmd_shard_resume(const Invocation& invocation);
  Reply cmd_shard_drain(const Invocation& invocation);
  Reply cmd_config_show(const Invocation& invocation);
  Reply cmd_config_set(const Invocation& invocation);
  Reply cmd_health(const Invocation& invocation);
  Reply cmd_digest(const Invocation& invocation);

  obs::MetricsSnapshot merged_snapshot() const;

  ConsoleConfig config_;
  std::unique_ptr<MultiServerExchange> exchange_;
  std::unique_ptr<HealthWatchdog> watchdog_;
  CommandTable commands_;
  std::uint64_t round_digest_ = 1469598103934665603ull;  // FNV offset basis
  std::uint64_t rounds_run_ = 0;
  bool done_ = false;
};

}  // namespace fnda::ops
