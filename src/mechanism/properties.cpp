#include "mechanism/properties.h"

#include <algorithm>

#include "core/validation.h"

namespace fnda {

SingleUnitInstance random_instance(const InstanceSpec& spec, Rng& rng) {
  SingleUnitInstance instance;
  instance.domain = spec.domain;
  const auto buyers = static_cast<std::size_t>(rng.uniform_int(
      static_cast<std::int64_t>(spec.min_buyers),
      static_cast<std::int64_t>(spec.max_buyers)));
  const auto sellers = static_cast<std::size_t>(rng.uniform_int(
      static_cast<std::int64_t>(spec.min_sellers),
      static_cast<std::int64_t>(spec.max_sellers)));
  instance.buyer_values.reserve(buyers);
  instance.seller_values.reserve(sellers);
  for (std::size_t i = 0; i < buyers; ++i) {
    instance.buyer_values.push_back(rng.uniform_money(spec.low, spec.high));
  }
  for (std::size_t j = 0; j < sellers; ++j) {
    instance.seller_values.push_back(rng.uniform_money(spec.low, spec.high));
  }
  return instance;
}

IcCheckReport check_incentive_compatibility(
    const DoubleAuctionProtocol& protocol, const IcCheckConfig& config) {
  IcCheckReport report;
  Rng rng(config.seed);

  for (std::size_t run = 0; run < config.instances; ++run) {
    const SingleUnitInstance instance =
        random_instance(config.instance_spec, rng);
    ++report.instances_checked;

    // Candidate manipulators: every agent, in a random order, truncated.
    std::vector<ManipulatorSpec> manipulators;
    for (std::size_t i = 0; i < instance.buyer_values.size(); ++i) {
      manipulators.push_back(ManipulatorSpec{Side::kBuyer, i});
    }
    for (std::size_t j = 0; j < instance.seller_values.size(); ++j) {
      manipulators.push_back(ManipulatorSpec{Side::kSeller, j});
    }
    rng.shuffle(manipulators.begin(), manipulators.end());
    if (manipulators.size() > config.manipulators_per_instance) {
      manipulators.resize(config.manipulators_per_instance);
    }

    for (const ManipulatorSpec& spec : manipulators) {
      EvalConfig eval = config.eval;
      eval.seed = rng();  // fresh common-random-number base per search
      const DeviationEvaluator evaluator(protocol, instance, spec, eval);
      const SearchResult result = find_best_deviation(evaluator, config.search);
      ++report.searches_run;
      report.strategies_evaluated += result.strategies_evaluated;

      if (result.profitable(config.epsilon)) {
        report.violations.push_back(IcViolation{
            instance, spec, result.best_strategy, result.truthful_utility,
            result.best_utility});
        if (report.violations.size() >= config.max_violations) return report;
      }
    }
  }
  return report;
}

std::optional<std::string> check_outcome_invariants(
    const DoubleAuctionProtocol& protocol, const InstanceSpec& spec,
    std::size_t instances, std::uint64_t seed) {
  Rng rng(seed);
  for (std::size_t run = 0; run < instances; ++run) {
    const SingleUnitInstance instance = random_instance(spec, rng);
    const InstantiatedMarket market = instantiate_truthful(instance);
    Rng clear_rng = rng.split();
    const Outcome outcome = protocol.clear(market.book, clear_rng);
    const ValidationErrors errors = validate_outcome(market.book, outcome);
    if (!errors.empty()) {
      return "instance " + std::to_string(run) + ": " + errors.front();
    }
  }
  return std::nullopt;
}

}  // namespace fnda
