#include "mechanism/strategy.h"

namespace fnda {

std::string Strategy::to_string() const {
  std::string out = "[";
  for (std::size_t i = 0; i < declarations.size(); ++i) {
    if (i > 0) out += ", ";
    out += fnda::to_string(declarations[i].side);
    out += '@';
    out += declarations[i].value.to_string();
  }
  out += ']';
  return out;
}

}  // namespace fnda
