#include "mechanism/linear_feasibility.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>

namespace fnda {
namespace {

/// Scales a constraint so its largest |coefficient| is 1 (pure-bound rows
/// are left alone), enabling duplicate detection after combination steps.
void normalize(LinearConstraint& c) {
  double scale = 0.0;
  for (double coeff : c.coeffs) scale = std::max(scale, std::abs(coeff));
  if (scale <= 0.0) return;
  for (double& coeff : c.coeffs) coeff /= scale;
  c.bound /= scale;
}

/// Rounds for the dedup key; combinations produce values that differ only
/// in the last few ulps.
std::vector<long long> dedup_key(const LinearConstraint& c) {
  std::vector<long long> key;
  key.reserve(c.coeffs.size() + 1);
  for (double coeff : c.coeffs) {
    key.push_back(static_cast<long long>(std::llround(coeff * 1e9)));
  }
  key.push_back(static_cast<long long>(std::llround(c.bound * 1e9)));
  return key;
}

/// Drops exact duplicates and, among rows with identical coefficients,
/// keeps only the tightest bound.
void prune(std::vector<LinearConstraint>& constraints) {
  std::set<std::vector<long long>> seen;
  std::vector<LinearConstraint> kept;
  kept.reserve(constraints.size());
  // Tightest-bound-first so the first instance of each coefficient row is
  // the binding one.
  std::sort(constraints.begin(), constraints.end(),
            [](const LinearConstraint& a, const LinearConstraint& b) {
              return a.bound < b.bound;
            });
  std::set<std::vector<long long>> coeff_rows;
  for (LinearConstraint& c : constraints) {
    auto key = dedup_key(c);
    key.pop_back();  // coefficient row only
    if (!coeff_rows.insert(std::move(key)).second) continue;
    kept.push_back(std::move(c));
  }
  constraints = std::move(kept);
}

}  // namespace

std::vector<LinearConstraint> equality(std::vector<double> coeffs,
                                       double bound) {
  std::vector<double> negated(coeffs.size());
  for (std::size_t i = 0; i < coeffs.size(); ++i) negated[i] = -coeffs[i];
  return {LinearConstraint{std::move(coeffs), bound},
          LinearConstraint{std::move(negated), -bound}};
}

bool feasible(std::vector<LinearConstraint> constraints,
              std::size_t variables, double eps) {
  for (const LinearConstraint& c : constraints) {
    if (c.coeffs.size() != variables) {
      throw std::invalid_argument("feasible: constraint arity mismatch");
    }
  }

  std::vector<bool> eliminated(variables, false);
  for (std::size_t round = 0; round < variables; ++round) {
    for (LinearConstraint& c : constraints) normalize(c);
    prune(constraints);

    // Early contradiction: a pure-bound row with a negative bound.
    for (const LinearConstraint& c : constraints) {
      bool pure = true;
      for (double coeff : c.coeffs) {
        if (std::abs(coeff) > eps) {
          pure = false;
          break;
        }
      }
      if (pure && c.bound < -eps) return false;
    }

    // Greedy pick: the variable whose elimination creates the fewest
    // combined rows (classic Fourier-Motzkin heuristic).
    std::size_t best_var = variables;
    long long best_growth = 0;
    for (std::size_t v = 0; v < variables; ++v) {
      if (eliminated[v]) continue;
      long long pos = 0;
      long long neg = 0;
      for (const LinearConstraint& c : constraints) {
        if (c.coeffs[v] > eps) ++pos;
        if (c.coeffs[v] < -eps) ++neg;
      }
      const long long growth = pos * neg - (pos + neg);
      if (best_var == variables || growth < best_growth) {
        best_var = v;
        best_growth = growth;
      }
    }
    if (best_var == variables) break;  // nothing left to eliminate
    eliminated[best_var] = true;
    const std::size_t k = best_var;

    std::vector<LinearConstraint> lower;
    std::vector<LinearConstraint> upper;
    std::vector<LinearConstraint> next;
    for (LinearConstraint& c : constraints) {
      const double a = c.coeffs[k];
      c.coeffs[k] = 0.0;
      if (a > eps) {
        for (double& coeff : c.coeffs) coeff /= a;
        c.bound /= a;
        upper.push_back(std::move(c));
      } else if (a < -eps) {
        for (double& coeff : c.coeffs) coeff /= -a;
        c.bound /= -a;
        lower.push_back(std::move(c));
      } else {
        next.push_back(std::move(c));
      }
    }
    for (const LinearConstraint& lo : lower) {
      for (const LinearConstraint& up : upper) {
        LinearConstraint combined;
        combined.coeffs.resize(variables, 0.0);
        for (std::size_t i = 0; i < variables; ++i) {
          combined.coeffs[i] = lo.coeffs[i] + up.coeffs[i];
        }
        combined.bound = lo.bound + up.bound;
        next.push_back(std::move(combined));
      }
    }
    constraints = std::move(next);
  }

  for (const LinearConstraint& c : constraints) {
    bool pure = true;
    for (double coeff : c.coeffs) {
      if (std::abs(coeff) > eps) {
        pure = false;
        break;
      }
    }
    if (pure && c.bound < -eps) return false;
  }
  return true;
}

}  // namespace fnda
