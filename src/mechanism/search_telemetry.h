// Binds manipulation-search counters into the unified metrics layer.
//
// The search engine accumulates its own SearchStats (plain struct, no
// registry dependency — the engine is usable without fnda_obs).  This
// header is the one-way bridge: given a finished stats block, register
// callback counters that expose it through a MetricsRegistry, so search
// coverage shows up in the same exposition/digest pipeline as the
// exchange's shard metrics.
//
// Determinism: every bound counter except the wall-time one is identical
// for every thread count (see SearchStats).  Wall time is opt-in via
// `include_wall_time` and must stay out of digest-pinned expositions.
#pragma once

#include <cstdint>

#include "mechanism/manipulation.h"
#include "obs/metrics.h"

namespace fnda {

/// Registers the deterministic search counters as callback metrics that
/// read `stats` at snapshot time.  `stats` must outlive the registry's
/// last snapshot.  Metric names follow the fnda_* convention used by the
/// exchange registries.
inline void bind_search_metrics(obs::MetricsRegistry& registry,
                                const SearchStats& stats,
                                bool include_wall_time = false) {
  registry.counter_fn("fnda_search_candidates_enumerated_total",
                      [&stats] { return stats.strategies_enumerated; });
  registry.counter_fn("fnda_search_candidates_evaluated_total",
                      [&stats] { return stats.strategies_evaluated; });
  registry.counter_fn("fnda_search_pruned_by_bound_total",
                      [&stats] { return stats.pruned_by_bound; });
  registry.counter_fn("fnda_search_pruned_in_subtree_total",
                      [&stats] { return stats.pruned_in_subtree; });
  registry.counter_fn("fnda_search_pruned_by_warm_floor_total",
                      [&stats] { return stats.pruned_by_warm_floor; });
  registry.counter_fn("fnda_search_dedup_skipped_total",
                      [&stats] { return stats.dedup_skipped; });
  registry.counter_fn("fnda_search_clears_performed_total",
                      [&stats] { return stats.clears_performed; });
  registry.counter_fn("fnda_search_fast_positions_total",
                      [&stats] { return stats.fast_positions; });
  registry.counter_fn("fnda_search_bound_slack_micros_total", [&stats] {
    // Slack is clamped non-negative per sample, so the sum fits the
    // counter contract.
    return static_cast<std::uint64_t>(stats.bound_slack_micros);
  });
  registry.counter_fn("fnda_search_bound_slack_samples_total",
                      [&stats] { return stats.bound_slack_samples; });
  if (include_wall_time) {
    // NOT deterministic — never include in digest-pinned output.
    registry.counter_fn("fnda_search_wall_time_ns_total",
                        [&stats] { return stats.wall_time_ns; });
  }
}

/// Aggregate counters of a live adversarial co-simulation (one
/// AttackScheduler session): how many per-round plans ran, how the warm
/// cache behaved, and how much work was shed or replanned.  All counters
/// are deterministic for a fixed session config (independent of both the
/// exchange thread count and the search pool size).
struct AttackSearchCounters {
  std::uint64_t rounds = 0;        ///< planning rounds driven
  std::uint64_t searches = 0;      ///< per-account searches launched
  std::uint64_t warm_hits = 0;     ///< cache hits (no enumeration)
  std::uint64_t warm_seeded = 0;   ///< floor-seeded engine runs
  std::uint64_t cold_runs = 0;     ///< cold engine runs
  std::uint64_t shed = 0;          ///< searches skipped by the round budget
  std::uint64_t withdrawals = 0;   ///< plans shrinking the prior declaration set
};

/// Registers the co-simulation counters (callback metrics reading
/// `counters` at snapshot time) plus, when `latency_us` is non-null, a
/// search-latency HDR histogram in microseconds.  The histogram is
/// wall-clock derived — keep it out of digest-pinned expositions, exactly
/// like fnda_search_wall_time_ns_total.
inline void bind_attack_metrics(obs::MetricsRegistry& registry,
                                const AttackSearchCounters& counters,
                                obs::Histogram** latency_us = nullptr) {
  registry.counter_fn("fnda_attack_rounds_total",
                      [&counters] { return counters.rounds; });
  registry.counter_fn("fnda_attack_searches_total",
                      [&counters] { return counters.searches; });
  registry.counter_fn("fnda_attack_warm_hits_total",
                      [&counters] { return counters.warm_hits; });
  registry.counter_fn("fnda_attack_warm_seeded_total",
                      [&counters] { return counters.warm_seeded; });
  registry.counter_fn("fnda_attack_cold_runs_total",
                      [&counters] { return counters.cold_runs; });
  registry.counter_fn("fnda_attack_shed_total",
                      [&counters] { return counters.shed; });
  registry.counter_fn("fnda_attack_withdrawals_total",
                      [&counters] { return counters.withdrawals; });
  if (latency_us != nullptr) {
    *latency_us = &registry.histogram("fnda_attack_search_latency_us");
  }
}

}  // namespace fnda
