// Deviation evaluation for the multi-unit TPD protocol (Section 9).
//
// The interesting deviations in the multi-unit setting are *schedule
// manipulations*: shading/inflating marginal values, withholding units,
// and — the false-name move — splitting one account's schedule across
// several pseudonymous identities.  Section 9 claims the GVA-style
// payments make all of these useless while marginal utilities decrease;
// `check_multi_unit_robustness` verifies that empirically and the tests
// pin the Example 5 cases.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "mechanism/manipulation.h"  // SearchStats
#include "mechanism/utility.h"
#include "protocols/tpd_multi.h"

namespace fnda {

/// True multi-unit valuations of every participant.  Schedules are
/// non-increasing marginal values (the Section 9 assumption).
struct MultiUnitInstance {
  std::vector<std::vector<Money>> buyer_schedules;
  std::vector<std::vector<Money>> seller_schedules;
};

struct MultiManipulatorSpec {
  Side role;
  std::size_t index;
};

/// One declared schedule under one (possibly fictitious) identity.
struct MultiDeclaration {
  Side side;
  std::vector<Money> schedule;  // non-increasing
};

/// The manipulator's full action: any number of declarations.
struct MultiStrategy {
  std::vector<MultiDeclaration> declarations;

  static MultiStrategy truthful(Side role, std::vector<Money> schedule) {
    return MultiStrategy{{MultiDeclaration{role, std::move(schedule)}}};
  }
};

/// Evaluates multi-unit strategies for one (instance, manipulator) pair
/// under the multi-unit TPD protocol.
///
/// Thread-safety: `evaluate` is const AND stateless — it builds its book
/// and rng locally per call — so one evaluator can be shared read-only by
/// any number of search workers (unlike the single-unit
/// DeviationEvaluator, whose merge scratch makes concurrent evaluate
/// calls a race).
class MultiDeviationEvaluator {
 public:
  MultiDeviationEvaluator(const TpdMultiUnitProtocol& protocol,
                          MultiUnitInstance instance,
                          MultiManipulatorSpec manipulator,
                          UtilityModel penalty_model = UtilityModel{},
                          std::uint64_t seed = 0x3117);

  /// Utility of the manipulator playing `strategy`, everyone else
  /// truthful.  Quasi-linear over the true schedule: a buyer obtaining k
  /// units gains its k highest marginals; a seller delivering k units
  /// loses its k lowest.  Sales beyond the endowment are failed
  /// deliveries and incur the penalty model's fine.
  double evaluate(const MultiStrategy& strategy) const;

  double truthful_utility() const;

  const std::vector<Money>& true_schedule() const { return true_schedule_; }
  Side role() const { return manipulator_.role; }

 private:
  const TpdMultiUnitProtocol& protocol_;
  MultiUnitInstance instance_;
  MultiManipulatorSpec manipulator_;
  UtilityModel penalty_model_;
  std::uint64_t seed_;
  std::vector<Money> true_schedule_;
};

/// Search parameters for find_best_multi_deviation.
struct MultiSearchConfig {
  /// Per-identity scaling factors applied to each split half (clamped to
  /// keep schedules non-increasing and non-negative).
  std::vector<double> shade_factors = {0.5, 0.75, 0.9, 1.0, 1.1, 1.5};
  /// Worker threads over the split-mask space (0 = hardware concurrency).
  /// Results are bit-identical for every thread count: masks are
  /// partitioned into deterministic contiguous ranges and merged in range
  /// order with a strictly-greater test, and `evaluate` is a pure
  /// function of the strategy.  No pruning here — GVA payments depend on
  /// whole-book reallocations, so no cheap sound price bracket exists.
  std::size_t threads = 1;
};

/// Best deviation found over the schedule-manipulation space: every
/// 2-identity split of the true schedule, each optionally scaled by the
/// configured shade factors, plus full withholding.
struct MultiSearchResult {
  double truthful_utility = 0.0;
  double best_utility = 0.0;
  MultiStrategy best_strategy;
  std::size_t strategies_evaluated = 0;
  /// Coverage/throughput counters (enumerated == evaluated: no pruning).
  SearchStats stats;

  bool profitable(double eps = 1e-9) const {
    return best_utility > truthful_utility + eps;
  }
};

MultiSearchResult find_best_multi_deviation(
    const MultiDeviationEvaluator& evaluator,
    const MultiSearchConfig& config = {});

/// Legacy shim: explicit shade factors, single-threaded.
MultiSearchResult find_best_multi_deviation(
    const MultiDeviationEvaluator& evaluator,
    const std::vector<double>& shade_factors);

}  // namespace fnda
