// Iterated best-response dynamics.
//
// Section 8 of the paper argues that without a dominant-strategy
// equilibrium "each participant must deliberate to determine his/her
// strategy ... and the result obtained by the mechanism becomes very
// difficult to predict".  This module makes that claim measurable: start
// every agent truthful, repeatedly let each agent best-respond (over the
// full strategy space, including false-name declaration sets) against the
// others' *current* strategies, and watch what happens.
//
// Under TPD, truth-telling is dominant, so the dynamics are a fixed point
// at sweep one.  Under PMD/kDA/VCG with false names, agents drift away
// from truth, the process may not converge, and realized surplus (scored
// against true valuations) degrades — `bench/strategic_dynamics`
// quantifies the damage.
#pragma once

#include <vector>

#include "core/instance.h"
#include "core/protocol.h"
#include "mechanism/manipulation.h"

namespace fnda {

struct DynamicsConfig {
  /// Full passes over all agents before giving up on convergence.
  std::size_t max_sweeps = 10;
  /// Minimum utility gain that counts as an improvement.
  double epsilon = 1e-6;
  /// Strategy space per best response (grid x sides x multiset size).
  SearchConfig search{};
  /// Model agents optimise against: the Section 6 deterrent penalty keeps
  /// them away from strategies with failing deliveries.
  UtilityModel utility{};
  /// Model used to *score* profiles (truthful_surplus / final_surplus /
  /// per-agent utility).  An agent can end up with a failing fake bid not
  /// by choice but because later movers changed the clearing around it;
  /// scoring that at the astronomic deterrent value would swamp every
  /// other number, so the default charges a realistic confiscated-deposit
  /// penalty instead.
  UtilityModel scoring{Money::from_units(10)};
  std::uint64_t seed = 0xd1;
  /// Replicates per evaluation (for randomized protocols / tie-heavy books).
  std::size_t replicates = 1;
};

/// One agent's spot in the dynamics.
struct AgentState {
  Side role;
  Money true_value;
  Strategy strategy;  // current play; starts truthful
  double utility = 0.0;  // under the final profile
};

struct DynamicsResult {
  bool converged = false;   // a full sweep produced no update
  std::size_t sweeps = 0;
  std::size_t updates = 0;  // total strategy changes
  std::vector<AgentState> agents;

  /// Realized (true-valuation) surplus of the truthful profile and of the
  /// final profile, including the auctioneer.
  double truthful_surplus = 0.0;
  double final_surplus = 0.0;
  /// Number of agents whose final strategy is not the single truthful bid.
  std::size_t deviators = 0;
};

/// Runs the dynamics for `instance` under `protocol`.
DynamicsResult best_response_dynamics(const DoubleAuctionProtocol& protocol,
                                      const SingleUnitInstance& instance,
                                      const DynamicsConfig& config = {});

}  // namespace fnda
