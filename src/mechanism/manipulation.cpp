#include "mechanism/manipulation.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <exception>
#include <limits>
#include <set>
#include <stdexcept>
#include <thread>
#include <utility>

namespace fnda {
namespace {

constexpr std::uint64_t kReplicateGamma = 0x9e3779b97f4a7c15ULL;

/// Inserts `entry` into a ranked vector at a uniformly random position
/// within its equal-value run (the only positions that keep the ordering
/// valid).  Sequential uniform insertion of each own entry yields a
/// uniform interleaving with the residual ties, matching the footnote-5
/// "shuffle then stable sort" semantics conditioned on the residual order.
template <typename Compare>
void insert_with_random_tie(std::vector<BidEntry>& ranked,
                            const BidEntry& entry, Compare value_before,
                            Rng& rng) {
  const auto lo = std::lower_bound(
      ranked.begin(), ranked.end(), entry.value,
      [&](const BidEntry& e, Money v) { return value_before(e.value, v); });
  const auto hi = std::upper_bound(
      lo, ranked.end(), entry.value,
      [&](Money v, const BidEntry& e) { return value_before(v, e.value); });
  const auto span = static_cast<std::uint64_t>(hi - lo);
  const auto offset = static_cast<std::ptrdiff_t>(rng.below(span + 1));
  ranked.insert(lo + offset, entry);
}

}  // namespace

DeviationEvaluator::DeviationEvaluator(const DoubleAuctionProtocol& protocol,
                                       SingleUnitInstance instance,
                                       ManipulatorSpec manipulator,
                                       EvalConfig config)
    : protocol_(protocol),
      instance_(std::move(instance)),
      manipulator_(manipulator),
      config_(config) {
  const auto& values = manipulator_.role == Side::kBuyer
                           ? instance_.buyer_values
                           : instance_.seller_values;
  if (manipulator_.index >= values.size()) {
    throw std::out_of_range("DeviationEvaluator: manipulator index");
  }
  true_value_ = values[manipulator_.index];
  if (config_.replicates == 0) {
    throw std::invalid_argument("DeviationEvaluator: replicates must be > 0");
  }

  // Rank the residual book (everyone but the manipulator) once per
  // replicate.  Every strategy evaluation reuses these rankings; only the
  // manipulator's own declarations are merged in per strategy.
  OrderBook residual(instance_.domain);
  for (std::size_t i = 0; i < instance_.buyer_values.size(); ++i) {
    if (manipulator_.role == Side::kBuyer && manipulator_.index == i) continue;
    residual.add_buyer(IdentityId{i}, instance_.buyer_values[i]);
  }
  for (std::size_t j = 0; j < instance_.seller_values.size(); ++j) {
    if (manipulator_.role == Side::kSeller && manipulator_.index == j) continue;
    residual.add_seller(IdentityId{kSellerIdentityBase + j},
                        instance_.seller_values[j]);
  }

  replicates_.reserve(config_.replicates);
  for (std::size_t t = 0; t < config_.replicates; ++t) {
    Rng rng(config_.seed + kReplicateGamma * t);
    ResidualRanking ranking;
    const SortedBook sorted(residual, rng);
    ranking.buyers = sorted.buyers();
    ranking.sellers = sorted.sellers();
    ranking.insert_seed = rng();
    ranking.clear_seed = rng();
    replicates_.push_back(std::move(ranking));
  }
}

DeviationEvaluator::DeviationEvaluator(
    const DoubleAuctionProtocol& protocol, ValueDomain domain, Side role,
    Money true_value, const std::vector<BidEntry>& residual_buyers,
    const std::vector<BidEntry>& residual_sellers, EvalConfig config)
    : protocol_(protocol), manipulator_{role, 0}, config_(config) {
  if (config_.replicates == 0) {
    throw std::invalid_argument("DeviationEvaluator: replicates must be > 0");
  }
  // Synthesize the instance the lanes describe: residual values in rank
  // order, the manipulator's own value appended last on its side.  The
  // rank order of a sorted lane IS a valid instance order, so accessors
  // and candidate_values see exactly the live population.
  instance_.domain = domain;
  instance_.buyer_values.reserve(residual_buyers.size() + 1);
  for (const BidEntry& entry : residual_buyers) {
    instance_.buyer_values.push_back(entry.value);
  }
  instance_.seller_values.reserve(residual_sellers.size() + 1);
  for (const BidEntry& entry : residual_sellers) {
    instance_.seller_values.push_back(entry.value);
  }
  auto& own_side = role == Side::kBuyer ? instance_.buyer_values
                                        : instance_.seller_values;
  manipulator_.index = own_side.size();
  own_side.push_back(true_value);
  true_value_ = true_value;

  // Adopt the frozen ranking for every replicate, re-numbered with the
  // canonical instance id scheme (BidIds in lane order, buyers first;
  // identities i / kSellerIdentityBase + j) so the engine's own-identity
  // window [kExtraIdentityBase, ...) can never collide with a residual
  // entry.  The manipulator's utility does not depend on residual
  // identities, so the re-numbering changes nothing observable.
  replicates_.reserve(config_.replicates);
  for (std::size_t t = 0; t < config_.replicates; ++t) {
    Rng rng(config_.seed + kReplicateGamma * t);
    ResidualRanking ranking;
    ranking.buyers.reserve(residual_buyers.size());
    for (std::size_t i = 0; i < residual_buyers.size(); ++i) {
      ranking.buyers.push_back(
          BidEntry{BidId{i}, IdentityId{i}, residual_buyers[i].value});
    }
    ranking.sellers.reserve(residual_sellers.size());
    for (std::size_t j = 0; j < residual_sellers.size(); ++j) {
      ranking.sellers.push_back(BidEntry{BidId{residual_buyers.size() + j},
                                         IdentityId{kSellerIdentityBase + j},
                                         residual_sellers[j].value});
    }
    ranking.insert_seed = rng();
    ranking.clear_seed = rng();
    replicates_.push_back(std::move(ranking));
  }
}

AccountPosition DeviationEvaluator::clear_with(const ResidualRanking& residual,
                                               const Strategy& strategy) const {
  merged_buyers_.assign(residual.buyers.begin(), residual.buyers.end());
  merged_sellers_.assign(residual.sellers.begin(), residual.sellers.end());

  // BidIds in the residual ranking are 0..residual_total-1 (OrderBook
  // insertion order); own declarations continue the sequence.
  const std::uint64_t bid_base =
      static_cast<std::uint64_t>(residual.buyers.size() +
                                 residual.sellers.size());
  Rng insert_rng(residual.insert_seed);
  std::vector<IdentityId> own_identities;
  own_identities.reserve(strategy.declarations.size());
  for (std::size_t d = 0; d < strategy.declarations.size(); ++d) {
    const Declaration& decl = strategy.declarations[d];
    if (decl.value < instance_.domain.lowest ||
        decl.value > instance_.domain.highest) {
      throw std::invalid_argument(
          "DeviationEvaluator: declaration outside the value domain");
    }
    const BidEntry entry{BidId{bid_base + d}, IdentityId{kExtraIdentityBase + d},
                         decl.value};
    own_identities.push_back(entry.identity);
    if (decl.side == Side::kBuyer) {
      insert_with_random_tie(merged_buyers_, entry,
                             [](Money a, Money b) { return a > b; },
                             insert_rng);
    } else {
      insert_with_random_tie(merged_sellers_, entry,
                             [](Money a, Money b) { return a < b; },
                             insert_rng);
    }
  }

  const SortedBook book = SortedBook::from_ranked(
      instance_.domain, std::move(merged_buyers_), std::move(merged_sellers_));
  Rng clear_rng(residual.clear_seed);
  const Outcome outcome = protocol_.clear_sorted(book, clear_rng);

  AccountPosition position;
  for (IdentityId identity : own_identities) {
    position.bought += outcome.units_bought(identity);
    position.sold += outcome.units_sold(identity);
    position.paid += outcome.paid_by(identity);
    position.received += outcome.received_by(identity);
    position.received += outcome.rebate_of(identity);  // rebate protocols
  }
  return position;
}

double DeviationEvaluator::evaluate(const Strategy& strategy) const {
  // Common random numbers: replicate t always uses the same residual
  // ranking and the same insertion/clearing streams, so strategy
  // comparisons are not polluted by tie-breaking noise.
  double total = 0.0;
  for (const ResidualRanking& residual : replicates_) {
    const AccountPosition position = clear_with(residual, strategy);
    total += config_.utility.evaluate(manipulator_.role, true_value_, position);
  }
  return total / static_cast<double>(config_.replicates);
}

double DeviationEvaluator::truthful_utility() const {
  return evaluate(Strategy::truthful(manipulator_.role, true_value_));
}

std::vector<Money> candidate_values(const SingleUnitInstance& instance,
                                    Money true_value,
                                    const std::vector<Money>& extras) {
  std::set<Money> seeds;
  for (Money v : instance.buyer_values) seeds.insert(v);
  for (Money v : instance.seller_values) seeds.insert(v);
  seeds.insert(true_value);
  for (Money v : extras) seeds.insert(v);

  const Money delta = Money::from_double(0.125);
  std::set<Money> grid;
  auto add = [&](Money v) {
    grid.insert(std::clamp(v, instance.domain.lowest, instance.domain.highest));
  };
  Money previous;
  bool has_previous = false;
  for (Money v : seeds) {
    add(v - delta);
    add(v);
    add(v + delta);
    if (has_previous) add(Money::midpoint(previous, v));
    previous = v;
    has_previous = true;
  }
  add(instance.domain.lowest);
  add(instance.domain.highest);
  return {grid.begin(), grid.end()};
}

void SearchStats::merge_from(const SearchStats& other) {
  strategies_enumerated += other.strategies_enumerated;
  strategies_evaluated += other.strategies_evaluated;
  pruned_by_bound += other.pruned_by_bound;
  pruned_in_subtree += other.pruned_in_subtree;
  pruned_by_warm_floor += other.pruned_by_warm_floor;
  dedup_skipped += other.dedup_skipped;
  clears_performed += other.clears_performed;
  fast_positions += other.fast_positions;
  bound_slack_micros += other.bound_slack_micros;
  bound_slack_samples += other.bound_slack_samples;
  // wall_time_ns and threads_used describe the whole run, not a part;
  // the engine sets them once after the merge.
}

// ---------------------------------------------------------------------------
// The parallel pruned engine.
//
// Candidate space (identical to enumerate_strategies): the empty strategy
// first when allowed, then declaration multisets of size 1..S over the
// alphabet {buyer, seller} x grid, as non-decreasing index tuples in lex
// order.  The canonical-multiset form IS the dedup: the n^s ordered
// tuples per size collapse to C(n+s-1, s) value-permutation classes.
//
// Partition: a slice is every tuple of one size sharing its first
// alphabet index — a contiguous run of the serial order whose length is a
// closed-form multiset count.  Slices are grouped, still in serial order,
// into at most 64 blocks of roughly equal leaf count; workers claim
// blocks through an atomic cursor.  Each block keeps a BLOCK-LOCAL prune
// incumbent seeded from max(truthful, absence) only — never from another
// block — so which candidates get pruned is a function of the partition
// alone, not of thread timing.  The final best response is folded in
// block order with a strictly-greater test, which reproduces the serial
// scan's first-strict-improvement winner exactly (a pruned candidate has
// bound <= its block incumbent <= the final best, so it can never be the
// serial first achiever: the incumbent it lost to comes earlier in
// serial order and already achieved at least its utility).
//
// Within a block, candidates are evaluated incrementally: each worker
// keeps one SortedBook per replicate holding residual + current prefix,
// patched with insert_ranked/erase_ranked per tree edge instead of
// re-copying both lanes per candidate.  Per-depth rng checkpoints replay
// the serial per-candidate insertion stream exactly (the serial path
// re-seeds from insert_seed per candidate, so the draw trajectory of a
// tuple depends only on its own prefix).  Positions of own declarations
// are tracked through the inserts, which lets protocols with
// rank-statistic pricing answer through account_position — no Outcome,
// no hashing — with a full clear_sorted fallback for the rest.
// ---------------------------------------------------------------------------
namespace {

constexpr std::uint64_t kCountMax = std::numeric_limits<std::uint64_t>::max();

std::uint64_t sat_add(std::uint64_t a, std::uint64_t b) {
  return a > kCountMax - b ? kCountMax : a + b;
}

std::uint64_t sat_mul(std::uint64_t a, std::uint64_t b) {
  if (a == 0 || b == 0) return 0;
  return a > kCountMax / b ? kCountMax : a * b;
}

/// Number of size-`size` multisets over `symbols` symbols:
/// C(symbols + size - 1, size), saturating.  The stepwise product
/// C(n-1+i, i) = C(n-2+i, i-1) * (n-1+i) / i divides exactly at every
/// step.
std::uint64_t multiset_count(std::uint64_t symbols, std::uint64_t size) {
  if (size == 0) return 1;
  if (symbols == 0) return 0;
  std::uint64_t result = 1;
  for (std::uint64_t i = 1; i <= size; ++i) {
    const std::uint64_t mult = symbols - 1 + i;
    if (result > kCountMax / mult) return kCountMax;
    result = result * mult / i;
  }
  return result;
}

/// One contiguous run of the serial tuple order: all size-`size` tuples
/// whose first alphabet index is `first`.
struct Slice {
  std::size_t size = 0;
  std::size_t first = 0;
  std::uint64_t start = 0;  // serial tuple index of the slice's first leaf
  std::uint64_t leaves = 0;
};

struct BlockOutcome {
  bool has_best = false;
  double best_utility = 0.0;
  Strategy best_strategy;
  SearchStats stats;
};

/// Everything immutable the workers share.
struct SearchContext {
  const DeviationEvaluator* evaluator = nullptr;
  const UtilityModel* utility = nullptr;
  Side role = Side::kBuyer;
  Money true_value;
  ValueDomain domain;
  std::uint64_t bid_base = 0;
  std::size_t max_declarations = 0;
  std::vector<Declaration> alphabet;
  std::vector<char> tradable;   // can this declaration ever fill?
  std::vector<char> suffix_tb;  // tradable buy at index >= i exists
  std::vector<char> suffix_ts;  // tradable sell at index >= i exists
  std::vector<Slice> slices;
  std::vector<std::pair<std::size_t, std::size_t>> blocks;  // [first, last)
  std::uint64_t tuple_cap = 0;  // tuples the serial order would consider
  double base_utility = 0.0;    // max(truthful, absence) — incumbent seed
  bool bracket_usable = false;  // bracket valid AND bound preconditions hold
  bool prune = false;           // bracket_usable && config.prune
  bool warm = false;            // bracket_usable && warm_floor > -inf
  double floor_units = 0.0;     // bracket.buy_floor, currency units
  double ceiling_units = 0.0;   // bracket.sell_ceiling, currency units
  double warm_floor = 0.0;      // SearchConfig::warm_floor (see soundness
                                // note there: only applied when achievable)
};

/// Sound utility upper bound for any candidate whose declarations contain
/// a tradable buy (tb) / tradable sell (ts), given the price bracket.
/// Preconditions (checked once per search before enabling the bracket):
/// buy_floor >= 0 and penalty >= sell_ceiling, which make every extra buy
/// and every failed delivery weakly utility-decreasing.  The bound is
/// monotone in (tb, ts), so evaluating it with "could any completion of
/// this prefix contain one" yields a sound subtree bound.
double strategy_bound(const SearchContext& ctx, bool tb, bool ts) {
  if (ctx.role == Side::kBuyer) {
    // Best case: one buy at the floor.  Sells are failed deliveries and
    // net at most ceiling - penalty <= 0 each.
    return tb ? std::max(0.0, ctx.true_value.to_double() - ctx.floor_units)
              : 0.0;
  }
  // Seller: without a tradable sell no fill can pay the account
  // (tradable buys alone cost at least the floor each).
  if (!ts) return 0.0;
  double bound = std::max(0.0, ctx.ceiling_units - ctx.true_value.to_double());
  if (tb) {
    // Wash trade: deliver the bought unit instead of the endowment —
    // receives at most the ceiling, pays at least the floor.  This is the
    // VCG-deficit exploit, and it is why the bound needs the tb term.
    bound = std::max(bound, ctx.ceiling_units - ctx.floor_units);
  }
  return bound;
}

/// Per-worker search state: one incrementally patched SortedBook (and rng
/// checkpoint ladder) per replicate.  Everything here is private to the
/// worker; the shared residual rankings are only read.
class BlockWorker {
 public:
  explicit BlockWorker(const SearchContext& ctx) : ctx_(ctx) {}

  void run_block(std::size_t first_slice, std::size_t last_slice,
                 BlockOutcome* out) {
    ensure_books();
    out_ = out;
    incumbent_ = ctx_.base_utility;
    for (std::size_t s = first_slice; s < last_slice; ++s) {
      const Slice& slice = ctx_.slices[s];
      if (slice.start >= ctx_.tuple_cap) break;
      cursor_ = slice.start;
      tradable_buys_ = 0;
      tradable_sells_ = 0;
      stack_.clear();
      // The slice's first element is fixed; deeper levels range freely.
      if (!dfs(0, slice.first, slice.first + 1, slice.size)) break;
    }
  }

 private:
  struct OwnPos {
    Side side = Side::kBuyer;
    std::size_t index = 0;  // current 0-based index in its lane
  };

  struct Rep {
    SortedBook book;               // residual + current prefix
    std::vector<Rng> checkpoints;  // [d] = insert stream before depth d
    std::vector<OwnPos> positions;
  };

  void ensure_books() {
    if (initialized_) return;
    const auto& residuals = ctx_.evaluator->residual_rankings();
    reps_.resize(residuals.size());
    for (std::size_t t = 0; t < residuals.size(); ++t) {
      reps_[t].book.assign_ranked(ctx_.domain, residuals[t].buyers,
                                  residuals[t].sellers);
      reps_[t].checkpoints.assign(ctx_.max_declarations + 1, Rng{});
      reps_[t].checkpoints[0] = Rng(residuals[t].insert_seed);
      reps_[t].positions.assign(ctx_.max_declarations, OwnPos{});
    }
    own_scratch_.reserve(ctx_.max_declarations);
    initialized_ = true;
  }

  /// Visits every tuple extending the current prefix with indices in
  /// [lo, hi) at `depth`, in serial order.  Returns false once the
  /// considered-candidate cap is reached (callers unwind and stop).
  bool dfs(std::size_t depth, std::size_t lo, std::size_t hi,
           std::size_t size) {
    const std::size_t n = ctx_.alphabet.size();
    for (std::size_t idx = lo; idx < hi; ++idx) {
      if (cursor_ >= ctx_.tuple_cap) return false;
      const std::uint64_t subtree =
          multiset_count(n - idx, size - depth - 1);
      const Declaration& decl = ctx_.alphabet[idx];
      const bool decl_tb = decl.side == Side::kBuyer && ctx_.tradable[idx];
      const bool decl_ts = decl.side == Side::kSeller && ctx_.tradable[idx];
      double bound = 0.0;
      if (ctx_.bracket_usable) {
        // Optimistic class availability over every completion: the
        // prefix, this declaration, and (below leaf level) anything at
        // index >= idx.  At a leaf this is the tuple's exact bound.
        const bool deeper = size - depth - 1 > 0;
        const bool tb = tradable_buys_ > 0 || decl_tb ||
                        (deeper && ctx_.suffix_tb[idx]);
        const bool ts = tradable_sells_ > 0 || decl_ts ||
                        (deeper && ctx_.suffix_ts[idx]);
        bound = strategy_bound(ctx_, tb, ts);
        const bool below_incumbent = ctx_.prune && bound <= incumbent_;
        // Warm floor: STRICTLY below (a bound-tight candidate achieving
        // exactly the floor may be the serial first achiever, so it must
        // survive).  Pruned candidates then have utility < floor <= the
        // final best, which keeps the winner — though not the coverage
        // counters — identical to the un-floored search.
        const bool below_floor = ctx_.warm && bound < ctx_.warm_floor;
        if (below_incumbent || below_floor) {
          // The whole subtree is dominated: no completion can strictly
          // beat the incumbent (or reach the warm floor), which sits
          // earlier in serial order.
          const std::uint64_t considered =
              std::min<std::uint64_t>(subtree, ctx_.tuple_cap - cursor_);
          if (!below_incumbent) {
            out_->stats.pruned_by_warm_floor += considered;
          } else if (depth + 1 == size) {
            out_->stats.pruned_by_bound += considered;
          } else {
            out_->stats.pruned_in_subtree += considered;
          }
          cursor_ = sat_add(cursor_, subtree);
          continue;
        }
      }

      stack_.push_back(idx);
      insert_depth(depth, decl);
      tradable_buys_ += decl_tb ? 1 : 0;
      tradable_sells_ += decl_ts ? 1 : 0;
      bool keep_going = true;
      if (depth + 1 == size) {
        const double utility = evaluate_leaf(size);
        ++out_->stats.strategies_evaluated;
        if (ctx_.bracket_usable) {
          const std::int64_t slack =
              std::llround((bound - utility) * 1e6);
          out_->stats.bound_slack_micros += std::max<std::int64_t>(0, slack);
          ++out_->stats.bound_slack_samples;
        }
        if (utility > incumbent_) {
          incumbent_ = utility;
          out_->has_best = true;
          out_->best_utility = utility;
          out_->best_strategy.declarations.clear();
          for (std::size_t chosen : stack_) {
            out_->best_strategy.declarations.push_back(ctx_.alphabet[chosen]);
          }
        }
        ++cursor_;
      } else {
        keep_going = dfs(depth + 1, idx, n, size);
      }
      tradable_buys_ -= decl_tb ? 1 : 0;
      tradable_sells_ -= decl_ts ? 1 : 0;
      erase_depth(depth);
      stack_.pop_back();
      if (!keep_going) return false;
    }
    return true;
  }

  /// Merges `decl` into every replicate's book at the position the serial
  /// evaluator's insert stream would choose, and records it.
  void insert_depth(std::size_t depth, const Declaration& decl) {
    const BidEntry entry{BidId{ctx_.bid_base + depth},
                         IdentityId{kExtraIdentityBase + depth}, decl.value};
    for (Rep& rep : reps_) {
      Rng rng = rep.checkpoints[depth];
      const auto& lane = decl.side == Side::kBuyer ? rep.book.buyers()
                                                   : rep.book.sellers();
      std::size_t lo;
      std::size_t hi;
      if (decl.side == Side::kBuyer) {
        lo = static_cast<std::size_t>(
            std::lower_bound(lane.begin(), lane.end(), decl.value,
                             [](const BidEntry& e, Money v) {
                               return e.value > v;
                             }) -
            lane.begin());
        hi = static_cast<std::size_t>(
            std::upper_bound(lane.begin() + static_cast<std::ptrdiff_t>(lo),
                             lane.end(), decl.value,
                             [](Money v, const BidEntry& e) {
                               return v > e.value;
                             }) -
            lane.begin());
      } else {
        lo = static_cast<std::size_t>(
            std::lower_bound(lane.begin(), lane.end(), decl.value,
                             [](const BidEntry& e, Money v) {
                               return e.value < v;
                             }) -
            lane.begin());
        hi = static_cast<std::size_t>(
            std::upper_bound(lane.begin() + static_cast<std::ptrdiff_t>(lo),
                             lane.end(), decl.value,
                             [](Money v, const BidEntry& e) {
                               return v < e.value;
                             }) -
            lane.begin());
      }
      const std::size_t index =
          lo + static_cast<std::size_t>(rng.below(hi - lo + 1));
      rep.book.insert_ranked(decl.side, entry, index);
      // The insert shifts every earlier own declaration at or behind it.
      for (std::size_t e = 0; e < depth; ++e) {
        OwnPos& p = rep.positions[e];
        if (p.side == decl.side && p.index >= index) ++p.index;
      }
      rep.positions[depth] = OwnPos{decl.side, index};
      rep.checkpoints[depth + 1] = rng;
    }
  }

  void erase_depth(std::size_t depth) {
    for (Rep& rep : reps_) {
      const OwnPos p = rep.positions[depth];
      rep.book.erase_ranked(p.side, p.index);
      for (std::size_t e = 0; e < depth; ++e) {
        OwnPos& q = rep.positions[e];
        if (q.side == p.side && q.index > p.index) --q.index;
      }
    }
  }

  /// Mean utility of the fully inserted tuple, bit-identical to the
  /// serial evaluator: the fast position path and the fill-scan fallback
  /// both reproduce clear_sorted's attribution exactly (Money sums are
  /// integer and order-independent), and the replicate averaging loop
  /// runs in the same order with the same double arithmetic.
  double evaluate_leaf(std::size_t size) {
    const auto& residuals = ctx_.evaluator->residual_rankings();
    const DoubleAuctionProtocol& protocol = ctx_.evaluator->protocol();
    double total = 0.0;
    for (std::size_t t = 0; t < reps_.size(); ++t) {
      Rep& rep = reps_[t];
      own_scratch_.clear();
      for (std::size_t d = 0; d < size; ++d) {
        own_scratch_.push_back(OwnDeclaration{
            rep.positions[d].side, rep.positions[d].index + 1,
            ctx_.alphabet[stack_[d]].value,
            IdentityId{kExtraIdentityBase + d}});
      }
      AccountFills fills;
      if (protocol.account_position(rep.book, own_scratch_, &fills)) {
        ++out_->stats.fast_positions;
      } else {
        Rng clear_rng(residuals[t].clear_seed);
        const Outcome outcome = protocol.clear_sorted(rep.book, clear_rng);
        ++out_->stats.clears_performed;
        const std::uint64_t id_lo = kExtraIdentityBase;
        const std::uint64_t id_hi = kExtraIdentityBase + size;
        for (const Fill& fill : outcome.fills()) {
          const std::uint64_t id = fill.identity.value();
          if (id < id_lo || id >= id_hi) continue;
          if (fill.side == Side::kBuyer) {
            ++fills.bought;
            fills.paid += fill.price;
          } else {
            ++fills.sold;
            fills.received += fill.price;
          }
        }
        for (std::size_t d = 0; d < size; ++d) {
          fills.received +=
              outcome.rebate_of(IdentityId{kExtraIdentityBase + d});
        }
      }
      const AccountPosition position{fills.bought, fills.sold, fills.paid,
                                     fills.received};
      total += ctx_.utility->evaluate(ctx_.role, ctx_.true_value, position);
    }
    return total / static_cast<double>(reps_.size());
  }

  const SearchContext& ctx_;
  std::vector<Rep> reps_;
  std::vector<std::size_t> stack_;  // alphabet indices of the current prefix
  std::vector<OwnDeclaration> own_scratch_;
  std::uint64_t cursor_ = 0;  // serial tuple index of the next leaf
  std::size_t tradable_buys_ = 0;
  std::size_t tradable_sells_ = 0;
  double incumbent_ = 0.0;
  BlockOutcome* out_ = nullptr;
  bool initialized_ = false;
};

}  // namespace

SearchResult find_best_deviation(const DeviationEvaluator& evaluator,
                                 const SearchConfig& config) {
  const auto started = std::chrono::steady_clock::now();
  const SingleUnitInstance& instance = evaluator.instance();
  const std::vector<Money> grid =
      config.grid_override.empty()
          ? candidate_values(instance, evaluator.true_value(),
                            config.extra_candidates)
          : config.grid_override;
  for (Money v : grid) {
    if (v < instance.domain.lowest || v > instance.domain.highest) {
      throw std::invalid_argument(
          "find_best_deviation: declaration outside the value domain");
    }
  }

  SearchResult result;
  result.truthful_utility = evaluator.truthful_utility();
  result.best_utility = result.truthful_utility;
  result.best_strategy =
      Strategy::truthful(evaluator.role(), evaluator.true_value());
  if (config.allow_absence) {
    const double absence_utility = evaluator.evaluate(Strategy{});
    if (absence_utility > result.best_utility) {
      result.best_utility = absence_utility;
      result.best_strategy = Strategy{};
    }
  }

  SearchContext ctx;
  ctx.evaluator = &evaluator;
  ctx.utility = &evaluator.eval_config().utility;
  ctx.role = evaluator.role();
  ctx.true_value = evaluator.true_value();
  ctx.domain = instance.domain;
  ctx.max_declarations = config.max_declarations;
  ctx.base_utility = result.best_utility;
  {
    const auto& residual = evaluator.residual_rankings().front();
    ctx.bid_base = static_cast<std::uint64_t>(residual.buyers.size() +
                                              residual.sellers.size());
  }

  ctx.alphabet.reserve(grid.size() * 2);
  for (Money v : grid) {
    ctx.alphabet.push_back(Declaration{Side::kBuyer, v});
    ctx.alphabet.push_back(Declaration{Side::kSeller, v});
  }
  const std::size_t n = ctx.alphabet.size();

  // Candidate-space accounting, matching enumerate_strategies exactly:
  // the absence candidate (when allowed) is always considered, tuples
  // until the cap.  The counts are closed-form, so pruning never changes
  // the reported coverage.
  const std::uint64_t absence = config.allow_absence ? 1 : 0;
  std::uint64_t total_tuples = 0;
  std::uint64_t dedup = 0;
  for (std::size_t size = 1; size <= config.max_declarations; ++size) {
    const std::uint64_t multisets = multiset_count(n, size);
    total_tuples = sat_add(total_tuples, multisets);
    std::uint64_t ordered = 1;
    for (std::size_t i = 0; i < size; ++i) ordered = sat_mul(ordered, n);
    dedup = ordered == kCountMax ? kCountMax
                                 : sat_add(dedup, ordered - multisets);
  }
  result.truncated = total_tuples >= 1 &&
                     sat_add(absence, total_tuples) > config.max_strategies;
  const std::uint64_t considered =
      result.truncated
          ? std::max<std::uint64_t>(absence, config.max_strategies)
          : absence + total_tuples;
  ctx.tuple_cap = result.truncated
                      ? (config.max_strategies > absence
                             ? config.max_strategies - absence
                             : 0)
                      : total_tuples;

  // Price bracket from replicate 0's ranking (the bound only reads value
  // order statistics, identical across replicates), gated on the
  // preconditions that make the utility bound sound.
  const auto& residuals = evaluator.residual_rankings();
  const PriceBracket bracket = [&] {
    const SortedBook ranked = SortedBook::from_ranked(
        instance.domain, residuals.front().buyers, residuals.front().sellers);
    return evaluator.protocol().price_bracket(ranked, config.max_declarations);
  }();
  const Money penalty = evaluator.eval_config().utility.penalty();
  ctx.bracket_usable = bracket.valid && bracket.buy_floor >= Money{} &&
                       penalty >= bracket.sell_ceiling;
  ctx.prune = config.prune && ctx.bracket_usable;
  ctx.warm = ctx.bracket_usable &&
             config.warm_floor > -std::numeric_limits<double>::infinity();
  ctx.warm_floor = config.warm_floor;
  ctx.floor_units = bracket.buy_floor.to_double();
  ctx.ceiling_units = bracket.sell_ceiling.to_double();

  ctx.tradable.assign(n, 1);
  ctx.suffix_tb.assign(n, 0);
  ctx.suffix_ts.assign(n, 0);
  if (ctx.bracket_usable) {
    for (std::size_t i = 0; i < n; ++i) {
      const Declaration& decl = ctx.alphabet[i];
      // A buy below the floor / a sell above the ceiling can never fill
      // on any reachable book (prices bracket every fill).
      ctx.tradable[i] = decl.side == Side::kBuyer
                            ? decl.value >= bracket.buy_floor
                            : decl.value <= bracket.sell_ceiling;
    }
    bool tb = false;
    bool ts = false;
    for (std::size_t i = n; i-- > 0;) {
      tb = tb || (ctx.alphabet[i].side == Side::kBuyer && ctx.tradable[i]);
      ts = ts || (ctx.alphabet[i].side == Side::kSeller && ctx.tradable[i]);
      ctx.suffix_tb[i] = tb;
      ctx.suffix_ts[i] = ts;
    }
  }

  // Deterministic partition: slices in serial order, grouped into at most
  // 64 contiguous blocks of roughly equal leaf count.  Independent of the
  // thread count by construction.
  {
    std::uint64_t cursor = 0;
    for (std::size_t size = 1; size <= config.max_declarations; ++size) {
      for (std::size_t first = 0; first < n; ++first) {
        const std::uint64_t leaves = multiset_count(n - first, size - 1);
        if (cursor < ctx.tuple_cap) {
          ctx.slices.push_back(Slice{size, first, cursor, leaves});
        }
        cursor = sat_add(cursor, leaves);
      }
    }
    std::uint64_t considered_leaves = 0;
    for (const Slice& slice : ctx.slices) {
      considered_leaves = sat_add(
          considered_leaves,
          std::min<std::uint64_t>(slice.leaves, ctx.tuple_cap - slice.start));
    }
    const std::uint64_t target =
        considered_leaves == 0 ? 1 : (considered_leaves + 63) / 64;
    std::size_t begin = 0;
    std::uint64_t accumulated = 0;
    for (std::size_t i = 0; i < ctx.slices.size(); ++i) {
      accumulated += std::min<std::uint64_t>(
          ctx.slices[i].leaves, ctx.tuple_cap - ctx.slices[i].start);
      if (accumulated >= target) {
        ctx.blocks.emplace_back(begin, i + 1);
        begin = i + 1;
        accumulated = 0;
      }
    }
    if (begin < ctx.slices.size()) {
      ctx.blocks.emplace_back(begin, ctx.slices.size());
    }
  }

  std::vector<BlockOutcome> outcomes(ctx.blocks.size());
  std::size_t thread_count =
      config.threads == 0
          ? std::max<std::size_t>(1, std::thread::hardware_concurrency())
          : config.threads;
  thread_count =
      std::max<std::size_t>(1, std::min(thread_count, ctx.blocks.size()));

  std::atomic<std::size_t> next_block{0};
  auto worker_loop = [&] {
    BlockWorker worker(ctx);
    while (true) {
      const std::size_t b = next_block.fetch_add(1);
      if (b >= ctx.blocks.size()) break;
      worker.run_block(ctx.blocks[b].first, ctx.blocks[b].second,
                       &outcomes[b]);
    }
  };
  if (thread_count <= 1) {
    worker_loop();
  } else {
    std::vector<std::thread> pool;
    std::vector<std::exception_ptr> errors(thread_count);
    pool.reserve(thread_count);
    for (std::size_t t = 0; t < thread_count; ++t) {
      pool.emplace_back([&, t] {
        try {
          worker_loop();
        } catch (...) {
          errors[t] = std::current_exception();
        }
      });
    }
    for (std::thread& thread : pool) thread.join();
    for (const std::exception_ptr& error : errors) {
      if (error) std::rethrow_exception(error);
    }
  }

  // Merge in block (= serial) order with a strictly-greater test: the
  // first block whose champion achieves the maximum wins, reproducing the
  // serial first-strict-improvement scan.
  result.stats.strategies_evaluated = static_cast<std::size_t>(absence);
  for (const BlockOutcome& block : outcomes) {
    result.stats.merge_from(block.stats);
    if (block.has_best && block.best_utility > result.best_utility) {
      result.best_utility = block.best_utility;
      result.best_strategy = block.best_strategy;
    }
  }
  result.strategies_evaluated = static_cast<std::size_t>(considered);
  result.stats.strategies_enumerated = static_cast<std::size_t>(considered);
  result.stats.dedup_skipped = static_cast<std::size_t>(dedup);
  result.stats.threads_used = thread_count;
  result.stats.wall_time_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - started)
          .count());
  return result;
}

namespace {

/// FNV-1a fold of the non-lane, non-grid inputs that affect a search
/// result.  Collisions here are harmless for correctness — the lanes and
/// grid are compared exactly, and even a spurious "hit" is re-validated
/// against the live book before the cached result is trusted.
std::uint64_t warm_config_key(const DeviationEvaluator& evaluator,
                              const SearchConfig& config) {
  std::uint64_t hash = 1469598103934665603ull;
  auto fold = [&hash](std::uint64_t word) {
    for (int byte = 0; byte < 8; ++byte) {
      hash ^= (word >> (byte * 8)) & 0xffu;
      hash *= 1099511628211ull;
    }
  };
  const EvalConfig& eval = evaluator.eval_config();
  fold(eval.seed);
  fold(eval.replicates);
  fold(static_cast<std::uint64_t>(eval.utility.penalty().micros()));
  fold(evaluator.role() == Side::kBuyer ? 1 : 2);
  fold(static_cast<std::uint64_t>(evaluator.true_value().micros()));
  fold(static_cast<std::uint64_t>(evaluator.instance().domain.lowest.micros()));
  fold(
      static_cast<std::uint64_t>(evaluator.instance().domain.highest.micros()));
  fold(config.max_declarations);
  fold(config.allow_absence ? 1 : 0);
  fold(config.max_strategies);
  fold(config.prune ? 1 : 0);
  return hash;
}

/// True when `strategy` is produced by the canonical enumeration over
/// `grid` under `config` — the precondition for using its utility as a
/// sound warm floor (see SearchConfig::warm_floor).
bool strategy_in_space(const Strategy& strategy, const std::vector<Money>& grid,
                       const SearchConfig& config, Side role,
                       Money true_value) {
  if (strategy.declarations.empty()) return config.allow_absence;
  // The truthful single declaration is base-evaluated before enumeration,
  // so it is always achieved — grid membership is irrelevant.
  if (strategy.declarations.size() == 1 &&
      strategy.declarations.front().side == role &&
      strategy.declarations.front().value == true_value) {
    return true;
  }
  if (strategy.declarations.size() > config.max_declarations) return false;
  for (const Declaration& decl : strategy.declarations) {
    if (std::find(grid.begin(), grid.end(), decl.value) == grid.end()) {
      return false;
    }
  }
  // Truncated enumerations may stop before reaching the cached tuple, so
  // the floor would not be achieved; require full coverage.
  const std::size_t n = grid.size() * 2;
  const std::uint64_t absence = config.allow_absence ? 1 : 0;
  std::uint64_t total_tuples = 0;
  for (std::size_t size = 1; size <= config.max_declarations; ++size) {
    total_tuples = sat_add(total_tuples, multiset_count(n, size));
  }
  return sat_add(absence, total_tuples) <= config.max_strategies;
}

/// Re-evaluates `strategy` against the retained residual book through the
/// protocol's O(log n) `account_position` fast path, replaying the exact
/// insert stream the engine (and the serial evaluator) would use, so the
/// returned utility is bit-identical to `evaluator.evaluate(strategy)`.
/// Returns false when the fast path is unavailable (replicates > 1, or
/// the protocol declines the position query); the book is left unchanged
/// either way.
bool fast_revalidate(const DeviationEvaluator& evaluator,
                     const Strategy& strategy, SortedBook& book,
                     double* utility_out) {
  const UtilityModel& utility = evaluator.eval_config().utility;
  if (strategy.declarations.empty()) {
    *utility_out =
        utility.evaluate(evaluator.role(), evaluator.true_value(),
                         AccountPosition{});
    return true;
  }
  if (evaluator.eval_config().replicates != 1) return false;
  const auto& residual = evaluator.residual_rankings().front();
  const std::uint64_t bid_base =
      static_cast<std::uint64_t>(residual.buyers.size() +
                                 residual.sellers.size());
  Rng rng(residual.insert_seed);
  struct OwnPos {
    Side side = Side::kBuyer;
    std::size_t index = 0;
  };
  std::vector<OwnPos> positions;
  positions.reserve(strategy.declarations.size());
  for (std::size_t d = 0; d < strategy.declarations.size(); ++d) {
    const Declaration& decl = strategy.declarations[d];
    const BidEntry entry{BidId{bid_base + d},
                         IdentityId{kExtraIdentityBase + d}, decl.value};
    const auto& lane =
        decl.side == Side::kBuyer ? book.buyers() : book.sellers();
    std::size_t lo;
    std::size_t hi;
    if (decl.side == Side::kBuyer) {
      lo = static_cast<std::size_t>(
          std::lower_bound(
              lane.begin(), lane.end(), decl.value,
              [](const BidEntry& e, Money v) { return e.value > v; }) -
          lane.begin());
      hi = static_cast<std::size_t>(
          std::upper_bound(
              lane.begin() + static_cast<std::ptrdiff_t>(lo), lane.end(),
              decl.value,
              [](Money v, const BidEntry& e) { return v > e.value; }) -
          lane.begin());
    } else {
      lo = static_cast<std::size_t>(
          std::lower_bound(
              lane.begin(), lane.end(), decl.value,
              [](const BidEntry& e, Money v) { return e.value < v; }) -
          lane.begin());
      hi = static_cast<std::size_t>(
          std::upper_bound(
              lane.begin() + static_cast<std::ptrdiff_t>(lo), lane.end(),
              decl.value,
              [](Money v, const BidEntry& e) { return v < e.value; }) -
          lane.begin());
    }
    const std::size_t index =
        lo + static_cast<std::size_t>(rng.below(hi - lo + 1));
    book.insert_ranked(decl.side, entry, index);
    for (std::size_t e = 0; e < d; ++e) {
      OwnPos& p = positions[e];
      if (p.side == decl.side && p.index >= index) ++p.index;
    }
    positions.push_back(OwnPos{decl.side, index});
  }

  std::vector<OwnDeclaration> own;
  own.reserve(strategy.declarations.size());
  for (std::size_t d = 0; d < strategy.declarations.size(); ++d) {
    own.push_back(OwnDeclaration{positions[d].side, positions[d].index + 1,
                                 strategy.declarations[d].value,
                                 IdentityId{kExtraIdentityBase + d}});
  }
  AccountFills fills;
  const bool supported =
      evaluator.protocol().account_position(book, own, &fills);
  if (supported) {
    const AccountPosition position{fills.bought, fills.sold, fills.paid,
                                   fills.received};
    *utility_out =
        utility.evaluate(evaluator.role(), evaluator.true_value(), position);
  }

  // Undo the inserts (reverse depth order, with the same shift
  // bookkeeping as the engine's erase_depth).
  for (std::size_t d = strategy.declarations.size(); d-- > 0;) {
    const OwnPos p = positions[d];
    book.erase_ranked(p.side, p.index);
    for (std::size_t e = 0; e < d; ++e) {
      OwnPos& q = positions[e];
      if (q.side == p.side && q.index > p.index) --q.index;
    }
  }
  return supported;
}

}  // namespace

SearchResult find_best_deviation_warm(const DeviationEvaluator& evaluator,
                                      const SearchConfig& config,
                                      SearchState& state) {
  const SingleUnitInstance& instance = evaluator.instance();
  const std::vector<Money> grid =
      config.grid_override.empty()
          ? candidate_values(instance, evaluator.true_value(),
                             config.extra_candidates)
          : config.grid_override;
  const std::uint64_t key = warm_config_key(evaluator, config);
  const auto& residual = evaluator.residual_rankings().front();
  auto lanes_match = [&] {
    if (state.buyer_values.size() != residual.buyers.size()) return false;
    if (state.seller_values.size() != residual.sellers.size()) return false;
    for (std::size_t i = 0; i < residual.buyers.size(); ++i) {
      if (state.buyer_values[i] != residual.buyers[i].value) return false;
    }
    for (std::size_t j = 0; j < residual.sellers.size(); ++j) {
      if (state.seller_values[j] != residual.sellers[j].value) return false;
    }
    return true;
  };

  // Tier 1 — nothing changed: revalidate the cached best response against
  // the retained book and return the cached result without enumerating.
  // The revalidation is a safety net, not a correctness requirement: on
  // any mismatch we fall through to a full (warm-seeded) search.
  if (state.has_result && state.config_key == key && state.grid == grid &&
      lanes_match()) {
    double revalidated = 0.0;
    bool checked = false;
    if (fast_revalidate(evaluator, state.last.best_strategy,
                        state.residual_book, &revalidated)) {
      ++state.fast_revalidations;
      checked = true;
    } else {
      revalidated = evaluator.evaluate(state.last.best_strategy);
      checked = true;
    }
    if (checked && revalidated == state.last.best_utility) {
      ++state.warm_hits;
      return state.last;
    }
  }

  // Tier 2 — the book (or config) changed: if the cached best strategy is
  // still in the candidate space, its utility on the CURRENT book is a
  // sound prune floor (some enumerated candidate — that very strategy —
  // achieves it).  Tier 3 — no usable prior state: run cold.
  SearchConfig run = config;
  if (state.has_result &&
      strategy_in_space(state.last.best_strategy, grid, config,
                        evaluator.role(), evaluator.true_value())) {
    run.warm_floor = evaluator.evaluate(state.last.best_strategy);
    ++state.warm_seeded;
  } else {
    ++state.cold_runs;
  }
  SearchResult result = find_best_deviation(evaluator, run);

  state.has_result = true;
  state.last = result;
  state.buyer_values.clear();
  state.buyer_values.reserve(residual.buyers.size());
  for (const BidEntry& entry : residual.buyers) {
    state.buyer_values.push_back(entry.value);
  }
  state.seller_values.clear();
  state.seller_values.reserve(residual.sellers.size());
  for (const BidEntry& entry : residual.sellers) {
    state.seller_values.push_back(entry.value);
  }
  state.grid = grid;
  state.config_key = key;
  state.residual_book.assign_ranked(instance.domain, residual.buyers,
                                    residual.sellers);
  return result;
}

SearchResult find_best_deviation_serial(const DeviationEvaluator& evaluator,
                                        const SearchConfig& config) {
  const auto started = std::chrono::steady_clock::now();
  const std::vector<Money> grid =
      config.grid_override.empty()
          ? candidate_values(evaluator.instance(), evaluator.true_value(),
                             config.extra_candidates)
          : config.grid_override;

  SearchResult result;
  result.truthful_utility = evaluator.truthful_utility();
  result.best_utility = result.truthful_utility;
  result.best_strategy =
      Strategy::truthful(evaluator.role(), evaluator.true_value());

  auto consider = [&](const Strategy& strategy) {
    ++result.strategies_evaluated;
    const double utility = evaluator.evaluate(strategy);
    if (utility > result.best_utility) {
      result.best_utility = utility;
      result.best_strategy = strategy;
    }
  };
  result.truncated = !enumerate_strategies(grid, config, consider);
  result.stats.strategies_enumerated = result.strategies_evaluated;
  result.stats.strategies_evaluated = result.strategies_evaluated;
  result.stats.clears_performed =
      result.strategies_evaluated * evaluator.eval_config().replicates;
  result.stats.threads_used = 1;
  result.stats.wall_time_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - started)
          .count());
  return result;
}

bool enumerate_strategies(
    const std::vector<Money>& grid, const SearchConfig& config,
    const std::function<void(const Strategy&)>& consider) {
  std::vector<Declaration> alphabet;
  alphabet.reserve(grid.size() * 2);
  for (Money v : grid) {
    alphabet.push_back(Declaration{Side::kBuyer, v});
    alphabet.push_back(Declaration{Side::kSeller, v});
  }

  std::size_t evaluated = 0;
  if (config.allow_absence) {
    consider(Strategy{});
    ++evaluated;
  }

  // Multisets of declarations of size 1..max_declarations, enumerated as
  // non-decreasing index tuples over the alphabet.
  std::vector<std::size_t> indices;
  const std::size_t n = alphabet.size();
  for (std::size_t size = 1; size <= config.max_declarations; ++size) {
    indices.assign(size, 0);
    while (true) {
      if (evaluated >= config.max_strategies) return false;
      Strategy strategy;
      strategy.declarations.reserve(size);
      for (std::size_t idx : indices) {
        strategy.declarations.push_back(alphabet[idx]);
      }
      consider(strategy);
      ++evaluated;

      // Advance to the next non-decreasing tuple.
      std::size_t pos = size;
      while (pos > 0 && indices[pos - 1] == n - 1) --pos;
      if (pos == 0) break;
      const std::size_t next = indices[pos - 1] + 1;
      for (std::size_t p = pos - 1; p < size; ++p) indices[p] = next;
    }
  }
  return true;
}

}  // namespace fnda
