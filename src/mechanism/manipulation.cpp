#include "mechanism/manipulation.h"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace fnda {
namespace {

constexpr std::uint64_t kReplicateGamma = 0x9e3779b97f4a7c15ULL;

/// Inserts `entry` into a ranked vector at a uniformly random position
/// within its equal-value run (the only positions that keep the ordering
/// valid).  Sequential uniform insertion of each own entry yields a
/// uniform interleaving with the residual ties, matching the footnote-5
/// "shuffle then stable sort" semantics conditioned on the residual order.
template <typename Compare>
void insert_with_random_tie(std::vector<BidEntry>& ranked,
                            const BidEntry& entry, Compare value_before,
                            Rng& rng) {
  const auto lo = std::lower_bound(
      ranked.begin(), ranked.end(), entry.value,
      [&](const BidEntry& e, Money v) { return value_before(e.value, v); });
  const auto hi = std::upper_bound(
      lo, ranked.end(), entry.value,
      [&](Money v, const BidEntry& e) { return value_before(v, e.value); });
  const auto span = static_cast<std::uint64_t>(hi - lo);
  const auto offset = static_cast<std::ptrdiff_t>(rng.below(span + 1));
  ranked.insert(lo + offset, entry);
}

}  // namespace

DeviationEvaluator::DeviationEvaluator(const DoubleAuctionProtocol& protocol,
                                       SingleUnitInstance instance,
                                       ManipulatorSpec manipulator,
                                       EvalConfig config)
    : protocol_(protocol),
      instance_(std::move(instance)),
      manipulator_(manipulator),
      config_(config) {
  const auto& values = manipulator_.role == Side::kBuyer
                           ? instance_.buyer_values
                           : instance_.seller_values;
  if (manipulator_.index >= values.size()) {
    throw std::out_of_range("DeviationEvaluator: manipulator index");
  }
  true_value_ = values[manipulator_.index];
  if (config_.replicates == 0) {
    throw std::invalid_argument("DeviationEvaluator: replicates must be > 0");
  }

  // Rank the residual book (everyone but the manipulator) once per
  // replicate.  Every strategy evaluation reuses these rankings; only the
  // manipulator's own declarations are merged in per strategy.
  OrderBook residual(instance_.domain);
  for (std::size_t i = 0; i < instance_.buyer_values.size(); ++i) {
    if (manipulator_.role == Side::kBuyer && manipulator_.index == i) continue;
    residual.add_buyer(IdentityId{i}, instance_.buyer_values[i]);
  }
  for (std::size_t j = 0; j < instance_.seller_values.size(); ++j) {
    if (manipulator_.role == Side::kSeller && manipulator_.index == j) continue;
    residual.add_seller(IdentityId{kSellerIdentityBase + j},
                        instance_.seller_values[j]);
  }

  replicates_.reserve(config_.replicates);
  for (std::size_t t = 0; t < config_.replicates; ++t) {
    Rng rng(config_.seed + kReplicateGamma * t);
    ResidualRanking ranking;
    const SortedBook sorted(residual, rng);
    ranking.buyers = sorted.buyers();
    ranking.sellers = sorted.sellers();
    ranking.insert_seed = rng();
    ranking.clear_seed = rng();
    replicates_.push_back(std::move(ranking));
  }
}

AccountPosition DeviationEvaluator::clear_with(const ResidualRanking& residual,
                                               const Strategy& strategy) const {
  merged_buyers_.assign(residual.buyers.begin(), residual.buyers.end());
  merged_sellers_.assign(residual.sellers.begin(), residual.sellers.end());

  // BidIds in the residual ranking are 0..residual_total-1 (OrderBook
  // insertion order); own declarations continue the sequence.
  const std::uint64_t bid_base =
      static_cast<std::uint64_t>(residual.buyers.size() +
                                 residual.sellers.size());
  Rng insert_rng(residual.insert_seed);
  std::vector<IdentityId> own_identities;
  own_identities.reserve(strategy.declarations.size());
  for (std::size_t d = 0; d < strategy.declarations.size(); ++d) {
    const Declaration& decl = strategy.declarations[d];
    if (decl.value < instance_.domain.lowest ||
        decl.value > instance_.domain.highest) {
      throw std::invalid_argument(
          "DeviationEvaluator: declaration outside the value domain");
    }
    const BidEntry entry{BidId{bid_base + d}, IdentityId{kExtraIdentityBase + d},
                         decl.value};
    own_identities.push_back(entry.identity);
    if (decl.side == Side::kBuyer) {
      insert_with_random_tie(merged_buyers_, entry,
                             [](Money a, Money b) { return a > b; },
                             insert_rng);
    } else {
      insert_with_random_tie(merged_sellers_, entry,
                             [](Money a, Money b) { return a < b; },
                             insert_rng);
    }
  }

  const SortedBook book = SortedBook::from_ranked(
      instance_.domain, std::move(merged_buyers_), std::move(merged_sellers_));
  Rng clear_rng(residual.clear_seed);
  const Outcome outcome = protocol_.clear_sorted(book, clear_rng);

  AccountPosition position;
  for (IdentityId identity : own_identities) {
    position.bought += outcome.units_bought(identity);
    position.sold += outcome.units_sold(identity);
    position.paid += outcome.paid_by(identity);
    position.received += outcome.received_by(identity);
    position.received += outcome.rebate_of(identity);  // rebate protocols
  }
  return position;
}

double DeviationEvaluator::evaluate(const Strategy& strategy) const {
  // Common random numbers: replicate t always uses the same residual
  // ranking and the same insertion/clearing streams, so strategy
  // comparisons are not polluted by tie-breaking noise.
  double total = 0.0;
  for (const ResidualRanking& residual : replicates_) {
    const AccountPosition position = clear_with(residual, strategy);
    total += config_.utility.evaluate(manipulator_.role, true_value_, position);
  }
  return total / static_cast<double>(config_.replicates);
}

double DeviationEvaluator::truthful_utility() const {
  return evaluate(Strategy::truthful(manipulator_.role, true_value_));
}

std::vector<Money> candidate_values(const SingleUnitInstance& instance,
                                    Money true_value,
                                    const std::vector<Money>& extras) {
  std::set<Money> seeds;
  for (Money v : instance.buyer_values) seeds.insert(v);
  for (Money v : instance.seller_values) seeds.insert(v);
  seeds.insert(true_value);
  for (Money v : extras) seeds.insert(v);

  const Money delta = Money::from_double(0.125);
  std::set<Money> grid;
  auto add = [&](Money v) {
    grid.insert(std::clamp(v, instance.domain.lowest, instance.domain.highest));
  };
  Money previous;
  bool has_previous = false;
  for (Money v : seeds) {
    add(v - delta);
    add(v);
    add(v + delta);
    if (has_previous) add(Money::midpoint(previous, v));
    previous = v;
    has_previous = true;
  }
  add(instance.domain.lowest);
  add(instance.domain.highest);
  return {grid.begin(), grid.end()};
}

SearchResult find_best_deviation(const DeviationEvaluator& evaluator,
                                 const SearchConfig& config) {
  const std::vector<Money> grid = candidate_values(
      evaluator.instance(), evaluator.true_value(), config.extra_candidates);

  SearchResult result;
  result.truthful_utility = evaluator.truthful_utility();
  result.best_utility = result.truthful_utility;
  result.best_strategy =
      Strategy::truthful(evaluator.role(), evaluator.true_value());

  auto consider = [&](const Strategy& strategy) {
    ++result.strategies_evaluated;
    const double utility = evaluator.evaluate(strategy);
    if (utility > result.best_utility) {
      result.best_utility = utility;
      result.best_strategy = strategy;
    }
  };
  result.truncated = !enumerate_strategies(grid, config, consider);
  return result;
}

bool enumerate_strategies(
    const std::vector<Money>& grid, const SearchConfig& config,
    const std::function<void(const Strategy&)>& consider) {
  std::vector<Declaration> alphabet;
  alphabet.reserve(grid.size() * 2);
  for (Money v : grid) {
    alphabet.push_back(Declaration{Side::kBuyer, v});
    alphabet.push_back(Declaration{Side::kSeller, v});
  }

  std::size_t evaluated = 0;
  if (config.allow_absence) {
    consider(Strategy{});
    ++evaluated;
  }

  // Multisets of declarations of size 1..max_declarations, enumerated as
  // non-decreasing index tuples over the alphabet.
  std::vector<std::size_t> indices;
  const std::size_t n = alphabet.size();
  for (std::size_t size = 1; size <= config.max_declarations; ++size) {
    indices.assign(size, 0);
    while (true) {
      if (evaluated >= config.max_strategies) return false;
      Strategy strategy;
      strategy.declarations.reserve(size);
      for (std::size_t idx : indices) {
        strategy.declarations.push_back(alphabet[idx]);
      }
      consider(strategy);
      ++evaluated;

      // Advance to the next non-decreasing tuple.
      std::size_t pos = size;
      while (pos > 0 && indices[pos - 1] == n - 1) --pos;
      if (pos == 0) break;
      const std::size_t next = indices[pos - 1] + 1;
      for (std::size_t p = pos - 1; p < size; ++p) indices[p] = next;
    }
  }
  return true;
}

}  // namespace fnda
