#include "mechanism/manipulation.h"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace fnda {
namespace {

/// Builds the book where every agent except the manipulator bids
/// truthfully and the manipulator submits `strategy`, then returns the
/// manipulator's aggregate position after clearing.
AccountPosition clear_and_aggregate(const DoubleAuctionProtocol& protocol,
                                    const SingleUnitInstance& instance,
                                    const ManipulatorSpec& manipulator,
                                    const Strategy& strategy, Rng& rng) {
  OrderBook book(instance.domain);
  for (std::size_t i = 0; i < instance.buyer_values.size(); ++i) {
    if (manipulator.role == Side::kBuyer && manipulator.index == i) continue;
    book.add_buyer(IdentityId{i}, instance.buyer_values[i]);
  }
  for (std::size_t j = 0; j < instance.seller_values.size(); ++j) {
    if (manipulator.role == Side::kSeller && manipulator.index == j) continue;
    book.add_seller(IdentityId{kSellerIdentityBase + j},
                    instance.seller_values[j]);
  }

  std::vector<IdentityId> own_identities;
  own_identities.reserve(strategy.declarations.size());
  for (std::size_t d = 0; d < strategy.declarations.size(); ++d) {
    const IdentityId identity{kExtraIdentityBase + d};
    own_identities.push_back(identity);
    book.add(strategy.declarations[d].side, identity,
             strategy.declarations[d].value);
  }

  const Outcome outcome = protocol.clear(book, rng);

  AccountPosition position;
  for (IdentityId identity : own_identities) {
    position.bought += outcome.units_bought(identity);
    position.sold += outcome.units_sold(identity);
    position.paid += outcome.paid_by(identity);
    position.received += outcome.received_by(identity);
    position.received += outcome.rebate_of(identity);  // rebate protocols
  }
  return position;
}

}  // namespace

DeviationEvaluator::DeviationEvaluator(const DoubleAuctionProtocol& protocol,
                                       SingleUnitInstance instance,
                                       ManipulatorSpec manipulator,
                                       EvalConfig config)
    : protocol_(protocol),
      instance_(std::move(instance)),
      manipulator_(manipulator),
      config_(config) {
  const auto& values = manipulator_.role == Side::kBuyer
                           ? instance_.buyer_values
                           : instance_.seller_values;
  if (manipulator_.index >= values.size()) {
    throw std::out_of_range("DeviationEvaluator: manipulator index");
  }
  true_value_ = values[manipulator_.index];
  if (config_.replicates == 0) {
    throw std::invalid_argument("DeviationEvaluator: replicates must be > 0");
  }
}

double DeviationEvaluator::evaluate(const Strategy& strategy) const {
  // Common random numbers: replicate t always uses the same stream, so
  // strategy comparisons are not polluted by tie-breaking noise.
  double total = 0.0;
  for (std::size_t t = 0; t < config_.replicates; ++t) {
    Rng rng(config_.seed + 0x9e3779b97f4a7c15ULL * t);
    const AccountPosition position = clear_and_aggregate(
        protocol_, instance_, manipulator_, strategy, rng);
    total += config_.utility.evaluate(manipulator_.role, true_value_, position);
  }
  return total / static_cast<double>(config_.replicates);
}

double DeviationEvaluator::truthful_utility() const {
  return evaluate(Strategy::truthful(manipulator_.role, true_value_));
}

std::vector<Money> candidate_values(const SingleUnitInstance& instance,
                                    Money true_value,
                                    const std::vector<Money>& extras) {
  std::set<Money> seeds;
  for (Money v : instance.buyer_values) seeds.insert(v);
  for (Money v : instance.seller_values) seeds.insert(v);
  seeds.insert(true_value);
  for (Money v : extras) seeds.insert(v);

  const Money delta = Money::from_double(0.125);
  std::set<Money> grid;
  auto add = [&](Money v) {
    grid.insert(std::clamp(v, instance.domain.lowest, instance.domain.highest));
  };
  Money previous;
  bool has_previous = false;
  for (Money v : seeds) {
    add(v - delta);
    add(v);
    add(v + delta);
    if (has_previous) add(Money::midpoint(previous, v));
    previous = v;
    has_previous = true;
  }
  add(instance.domain.lowest);
  add(instance.domain.highest);
  return {grid.begin(), grid.end()};
}

SearchResult find_best_deviation(const DeviationEvaluator& evaluator,
                                 const SearchConfig& config) {
  const std::vector<Money> grid = candidate_values(
      evaluator.instance(), evaluator.true_value(), config.extra_candidates);

  SearchResult result;
  result.truthful_utility = evaluator.truthful_utility();
  result.best_utility = result.truthful_utility;
  result.best_strategy =
      Strategy::truthful(evaluator.role(), evaluator.true_value());

  auto consider = [&](const Strategy& strategy) {
    ++result.strategies_evaluated;
    const double utility = evaluator.evaluate(strategy);
    if (utility > result.best_utility) {
      result.best_utility = utility;
      result.best_strategy = strategy;
    }
  };
  result.truncated = !enumerate_strategies(grid, config, consider);
  return result;
}

bool enumerate_strategies(
    const std::vector<Money>& grid, const SearchConfig& config,
    const std::function<void(const Strategy&)>& consider) {
  std::vector<Declaration> alphabet;
  alphabet.reserve(grid.size() * 2);
  for (Money v : grid) {
    alphabet.push_back(Declaration{Side::kBuyer, v});
    alphabet.push_back(Declaration{Side::kSeller, v});
  }

  std::size_t evaluated = 0;
  if (config.allow_absence) {
    consider(Strategy{});
    ++evaluated;
  }

  // Multisets of declarations of size 1..max_declarations, enumerated as
  // non-decreasing index tuples over the alphabet.
  std::vector<std::size_t> indices;
  const std::size_t n = alphabet.size();
  for (std::size_t size = 1; size <= config.max_declarations; ++size) {
    indices.assign(size, 0);
    while (true) {
      if (evaluated >= config.max_strategies) return false;
      Strategy strategy;
      strategy.declarations.reserve(size);
      for (std::size_t idx : indices) {
        strategy.declarations.push_back(alphabet[idx]);
      }
      consider(strategy);
      ++evaluated;

      // Advance to the next non-decreasing tuple.
      std::size_t pos = size;
      while (pos > 0 && indices[pos - 1] == n - 1) --pos;
      if (pos == 0) break;
      const std::size_t next = indices[pos - 1] + 1;
      for (std::size_t p = pos - 1; p < size; ++p) indices[p] = next;
    }
  }
  return true;
}

}  // namespace fnda
