// Batch property checking over random instances.
//
// These checkers are the empirical counterpart of the paper's theorems:
// Theorem 1 (TPD is dominant-strategy IC under false-name bids) should
// produce zero violations; PMD should be clean without false names and
// dirty with them (Section 4).  The same machinery validates outcome
// invariants (feasibility, IR, budget balance) on every clearing.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/instance.h"
#include "core/protocol.h"
#include "mechanism/manipulation.h"

namespace fnda {

/// Random-instance generator parameters for the checkers.
struct InstanceSpec {
  std::size_t min_buyers = 1;
  std::size_t max_buyers = 6;
  std::size_t min_sellers = 1;
  std::size_t max_sellers = 6;
  Money low = Money::from_units(0);
  Money high = Money::from_units(100);
  ValueDomain domain{};
};

/// Draws an instance: counts uniform in the configured ranges, values
/// uniform at micro-unit resolution (ties have negligible probability).
SingleUnitInstance random_instance(const InstanceSpec& spec, Rng& rng);

/// One discovered profitable deviation.
struct IcViolation {
  SingleUnitInstance instance;
  ManipulatorSpec manipulator;
  Strategy strategy;
  double truthful_utility = 0.0;
  double deviant_utility = 0.0;
};

struct IcCheckConfig {
  std::size_t instances = 50;
  /// Agents examined per instance (all, if the instance is smaller).
  std::size_t manipulators_per_instance = 3;
  InstanceSpec instance_spec{};
  SearchConfig search{};
  EvalConfig eval{};
  std::uint64_t seed = 0xabcdef;
  double epsilon = 1e-6;
  /// Stop after this many violations (they are expensive to store).
  std::size_t max_violations = 8;
};

struct IcCheckReport {
  std::size_t instances_checked = 0;
  std::size_t searches_run = 0;
  std::size_t strategies_evaluated = 0;
  std::vector<IcViolation> violations;

  bool clean() const { return violations.empty(); }
};

/// Runs the best-deviation search across random instances and manipulators.
IcCheckReport check_incentive_compatibility(
    const DoubleAuctionProtocol& protocol, const IcCheckConfig& config);

/// Clears random instances and validates every outcome invariant
/// (validate_outcome).  Returns the first violation description, if any.
std::optional<std::string> check_outcome_invariants(
    const DoubleAuctionProtocol& protocol, const InstanceSpec& spec,
    std::size_t instances, std::uint64_t seed);

}  // namespace fnda
