#include "mechanism/dynamics.h"

namespace fnda {
namespace {

/// Identity block reserved per agent: agent a's d-th declaration bids as
/// IdentityId{a * kBlock + d}.
constexpr std::uint64_t kBlock = 64;

OrderBook build_book(const SingleUnitInstance& instance,
                     const std::vector<AgentState>& agents) {
  OrderBook book(instance.domain);
  for (std::size_t a = 0; a < agents.size(); ++a) {
    const Strategy& strategy = agents[a].strategy;
    for (std::size_t d = 0; d < strategy.declarations.size(); ++d) {
      book.add(strategy.declarations[d].side, IdentityId{a * kBlock + d},
               strategy.declarations[d].value);
    }
  }
  return book;
}

AccountPosition position_of(const Outcome& outcome, std::size_t agent,
                            std::size_t declarations) {
  AccountPosition position;
  for (std::size_t d = 0; d < declarations; ++d) {
    const IdentityId identity{agent * kBlock + d};
    position.bought += outcome.units_bought(identity);
    position.sold += outcome.units_sold(identity);
    position.paid += outcome.paid_by(identity);
    position.received += outcome.received_by(identity);
    position.received += outcome.rebate_of(identity);  // rebate protocols
  }
  return position;
}

/// Mean utility of `agent` under the profile, averaged over replicates
/// with common random numbers.
double profile_utility(const DoubleAuctionProtocol& protocol,
                       const SingleUnitInstance& instance,
                       const std::vector<AgentState>& agents,
                       std::size_t agent, const UtilityModel& model,
                       const DynamicsConfig& config,
                       std::uint64_t base_seed) {
  const OrderBook book = build_book(instance, agents);
  double total = 0.0;
  for (std::size_t t = 0; t < config.replicates; ++t) {
    Rng rng(base_seed + 0x9e3779b97f4a7c15ULL * t);
    const Outcome outcome = protocol.clear(book, rng);
    const AccountPosition position =
        position_of(outcome, agent, agents[agent].strategy.declarations.size());
    total += model.evaluate(agents[agent].role, agents[agent].true_value,
                            position);
  }
  return total / static_cast<double>(config.replicates);
}

/// Realized surplus of a profile: sum of all agents' utilities plus the
/// auctioneer's revenue (averaged over replicates).
double profile_surplus(const DoubleAuctionProtocol& protocol,
                       const SingleUnitInstance& instance,
                       const std::vector<AgentState>& agents,
                       const DynamicsConfig& config, std::uint64_t base_seed) {
  const OrderBook book = build_book(instance, agents);
  double total = 0.0;
  for (std::size_t t = 0; t < config.replicates; ++t) {
    Rng rng(base_seed + 0x9e3779b97f4a7c15ULL * t);
    const Outcome outcome = protocol.clear(book, rng);
    double surplus = outcome.auctioneer_revenue().to_double();
    for (std::size_t a = 0; a < agents.size(); ++a) {
      const AccountPosition position =
          position_of(outcome, a, agents[a].strategy.declarations.size());
      surplus += config.scoring.evaluate(agents[a].role,
                                         agents[a].true_value, position);
    }
    total += surplus;
  }
  return total / static_cast<double>(config.replicates);
}

}  // namespace

DynamicsResult best_response_dynamics(const DoubleAuctionProtocol& protocol,
                                      const SingleUnitInstance& instance,
                                      const DynamicsConfig& config) {
  DynamicsResult result;
  for (Money v : instance.buyer_values) {
    result.agents.push_back(
        AgentState{Side::kBuyer, v, Strategy::truthful(Side::kBuyer, v), 0.0});
  }
  for (Money v : instance.seller_values) {
    result.agents.push_back(AgentState{Side::kSeller, v,
                                       Strategy::truthful(Side::kSeller, v),
                                       0.0});
  }

  Rng seeder(config.seed);
  const std::uint64_t surplus_seed = seeder();
  result.truthful_surplus = profile_surplus(protocol, instance, result.agents,
                                            config, surplus_seed);

  const std::vector<Money> grid = candidate_values(instance, Money{}, {});

  for (std::size_t sweep = 0; sweep < config.max_sweeps; ++sweep) {
    ++result.sweeps;
    bool any_update = false;
    for (std::size_t a = 0; a < result.agents.size(); ++a) {
      // Best response of agent a against everyone else's current play.
      // The same evaluation seed is used for every candidate (common
      // random numbers), fresh per (sweep, agent).
      const std::uint64_t eval_seed = seeder();
      std::vector<AgentState> trial = result.agents;
      double best = profile_utility(protocol, instance, trial, a,
                                    config.utility, config, eval_seed);
      Strategy best_strategy = result.agents[a].strategy;
      bool improved = false;

      enumerate_strategies(grid, config.search, [&](const Strategy& s) {
        trial[a].strategy = s;
        const double utility = profile_utility(protocol, instance, trial, a,
                                               config.utility, config,
                                               eval_seed);
        if (utility > best + config.epsilon) {
          best = utility;
          best_strategy = s;
          improved = true;
        }
      });

      if (improved) {
        result.agents[a].strategy = best_strategy;
        ++result.updates;
        any_update = true;
      }
    }
    if (!any_update) {
      result.converged = true;
      break;
    }
  }

  result.final_surplus = profile_surplus(protocol, instance, result.agents,
                                         config, surplus_seed);
  for (std::size_t a = 0; a < result.agents.size(); ++a) {
    result.agents[a].utility =
        profile_utility(protocol, instance, result.agents, a, config.scoring,
                        config, surplus_seed);
    const Strategy truthful = Strategy::truthful(result.agents[a].role,
                                                 result.agents[a].true_value);
    if (!(result.agents[a].strategy.declarations ==
          truthful.declarations)) {
      ++result.deviators;
    }
  }
  return result;
}

}  // namespace fnda
