#include "mechanism/utility.h"

#include <algorithm>

namespace fnda {
namespace {

std::size_t endowment_of(Side role) {
  return role == Side::kSeller ? 1 : 0;
}

}  // namespace

std::size_t UtilityModel::failed_deliveries(Side role,
                                            const AccountPosition& position) {
  const std::size_t endowment = endowment_of(role);
  return position.sold > endowment ? position.sold - endowment : 0;
}

double UtilityModel::evaluate(Side role, Money true_value,
                              const AccountPosition& position) const {
  const std::size_t endowment = endowment_of(role);
  const std::size_t failed = failed_deliveries(role, position);
  const std::size_t delivered = position.sold - failed;
  const std::size_t holdings = endowment + position.bought - delivered;

  // One unit is valued; extras are worthless (single-unit demand).
  const double goods_value =
      true_value.to_double() * static_cast<double>(std::min<std::size_t>(holdings, 1));
  const double endowment_value =
      true_value.to_double() * static_cast<double>(std::min<std::size_t>(endowment, 1));

  return goods_value - endowment_value - position.paid.to_double() +
         position.received.to_double() -
         penalty_.to_double() * static_cast<double>(failed);
}

}  // namespace fnda
