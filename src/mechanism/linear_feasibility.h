// Feasibility of small systems of linear inequalities, by Fourier-Motzkin
// elimination.
//
// Used by the bilateral-trade module to decide whether a direct mechanism
// with given properties (incentive compatibility, individual rationality,
// budget balance, efficiency) exists: those properties are linear
// constraints over the mechanism's transfers.  Fourier-Motzkin is doubly
// exponential in the worst case, which is irrelevant at the handful of
// variables these settings produce, and it is exact up to floating-point
// tolerance — no LP solver dependency.
#pragma once

#include <cstddef>
#include <vector>

namespace fnda {

/// One inequality: sum_i coeffs[i] * x[i] <= bound.
struct LinearConstraint {
  std::vector<double> coeffs;
  double bound = 0.0;
};

/// Builds equality a.x == b as a pair of inequalities.
std::vector<LinearConstraint> equality(std::vector<double> coeffs,
                                       double bound);

/// True if some x satisfies every constraint (each constraint's coeffs
/// must have exactly `variables` entries).  `eps` absorbs rounding: a
/// derived contradiction 0 <= -d only counts when d > eps.
bool feasible(std::vector<LinearConstraint> constraints,
              std::size_t variables, double eps = 1e-9);

}  // namespace fnda
