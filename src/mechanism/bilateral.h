// Bilateral trade and the Myerson-Satterthwaite impossibility.
//
// The paper's Section 2 leans on the classic result (ref [6]) that no
// bilateral trading mechanism is simultaneously dominant-strategy
// incentive compatible, ex-post individually rational, budget balanced,
// and Pareto efficient when the traders' value supports overlap.  This
// module *mechanizes* that statement for discrete type spaces: the four
// properties are linear constraints on the mechanism's transfers, so
// existence reduces to linear feasibility (Fourier-Motzkin).
//
// It also implements the mechanism that survives the impossibility —
// the posted-price mechanism (trade at a fixed price p iff b >= p >= s),
// which is exactly TPD restricted to one buyer and one seller — together
// with its expected-efficiency analysis and optimal price search.
#pragma once

#include <cstddef>
#include <vector>

#include "common/money.h"

namespace fnda {

/// A discrete type: a valuation and its probability.
struct BilateralType {
  Money value;
  double probability = 0.0;
};

/// One buyer, one seller, independent discrete private values.
/// Probabilities on each side must sum to ~1 (validated by the entry
/// points below).
struct BilateralSetting {
  std::vector<BilateralType> buyer_types;
  std::vector<BilateralType> seller_types;
};

/// Which properties the sought direct mechanism must satisfy; efficiency
/// and DSIC+IR are always imposed, budget balance is the knob that makes
/// the difference between impossibility (true) and VCG-style subsidised
/// mechanisms (false).
struct MechanismRequirements {
  /// Buyer payment equals seller receipt in every type profile.
  bool budget_balanced = true;
  /// The auctioneer may keep money but never injects any
  /// (payment >= receipt).  Only meaningful when !budget_balanced.
  bool no_subsidy = false;
};

struct FeasibilityReport {
  bool feasible = false;
  std::size_t variables = 0;
  std::size_t constraints = 0;
};

/// Is there a deterministic, ex-post-efficient (trade iff b > s),
/// dominant-strategy IC, ex-post IR direct mechanism with the given
/// budget requirements?  Myerson-Satterthwaite (discrete form): no, when
/// supports overlap and budget balance is required.
FeasibilityReport check_efficient_mechanism_exists(
    const BilateralSetting& setting, const MechanismRequirements& requirements,
    double eps = 1e-9);

/// Expected gains from trade of the efficient allocation.
double expected_efficient_surplus(const BilateralSetting& setting);

/// Expected gains from trade of the posted-price mechanism at price p
/// (trade iff b >= p and s <= p).
double expected_posted_price_surplus(const BilateralSetting& setting,
                                     Money price);

/// The posted price maximizing expected surplus (ties broken low); the
/// optimum is always at one of the type values.
struct PostedPriceResult {
  Money price;
  double expected_surplus = 0.0;
  double efficiency = 0.0;  ///< ratio to the expected efficient surplus
};
PostedPriceResult optimal_posted_price(const BilateralSetting& setting);

}  // namespace fnda
