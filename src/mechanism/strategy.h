// Strategy representation for the manipulation framework.
//
// A strategy for one account is the multiset of declarations it submits,
// each under a fresh identity.  Truthful play is a single declaration of
// the account's true role and value; any other strategy is a deviation —
// a misreport, a false-name set, or both.
#pragma once

#include <string>
#include <vector>

#include "common/money.h"
#include "core/bid.h"

namespace fnda {

/// One declaration: a side and a claimed value, submitted under its own
/// (possibly fictitious) identity.
struct Declaration {
  Side side;
  Money value;

  friend bool operator==(const Declaration&, const Declaration&) = default;
};

/// The full action of one account in the direct revelation mechanism.
struct Strategy {
  std::vector<Declaration> declarations;

  static Strategy truthful(Side role, Money true_value) {
    return Strategy{{Declaration{role, true_value}}};
  }

  /// Single declaration on the account's own side with a shaded/inflated
  /// value.
  static Strategy misreport(Side role, Money declared) {
    return Strategy{{Declaration{role, declared}}};
  }

  bool is_single_bid() const { return declarations.size() == 1; }

  /// Human-readable form, e.g. "[buyer@7, seller@4.8]".
  std::string to_string() const;
};

}  // namespace fnda
