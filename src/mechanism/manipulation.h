// Deviation evaluation and best-response search.
//
// This is the machinery behind the paper's Section 4 examples and the
// empirical incentive-compatibility results: fix an instance, pick one
// account (the manipulator), hold everyone else truthful, and ask whether
// any alternative strategy — misreporting, abstaining, or submitting
// false-name bids on either side — beats truth-telling.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/instance.h"
#include "core/protocol.h"
#include "mechanism/strategy.h"
#include "mechanism/utility.h"

namespace fnda {

/// Which account deviates: the `index`-th agent on `role`'s side of the
/// instance (its truthful bid is removed and replaced by the strategy).
struct ManipulatorSpec {
  Side role;
  std::size_t index;
};

/// Evaluation parameters.
struct EvalConfig {
  /// Outcome replicates averaged per strategy.  Protocols are deterministic
  /// given the rng stream, and all strategies share the same streams
  /// (common random numbers), so 1 suffices for tie-free instances; use
  /// more for randomized protocols or books with ties.
  std::size_t replicates = 1;
  std::uint64_t seed = 0x5eed;
  UtilityModel utility{};
};

/// Evaluates strategies for one (protocol, instance, manipulator) triple.
///
/// Sort-once: the residual book (everyone except the manipulator, all
/// truthful) is identical for every strategy, so its random-tie ranking is
/// computed ONCE per replicate at construction.  Evaluating a strategy
/// then merge-inserts the manipulator's declarations into a copy of that
/// ranking — each at a uniformly random position within its equal-value
/// run, reproducing the paper's footnote-5 tie semantics — and hands the
/// already-ranked book to `clear_sorted`.  Per strategy that is O(n)
/// instead of the naive O(n log n) rebuild-and-sort.
///
/// Not thread-safe: evaluate() reuses internal scratch buffers.
class DeviationEvaluator {
 public:
  DeviationEvaluator(const DoubleAuctionProtocol& protocol,
                     SingleUnitInstance instance, ManipulatorSpec manipulator,
                     EvalConfig config = {});

  /// Mean utility of the manipulator when it plays `strategy` and everyone
  /// else bids truthfully.
  double evaluate(const Strategy& strategy) const;

  /// Utility of the truthful single-bid strategy.
  double truthful_utility() const;

  Money true_value() const { return true_value_; }
  Side role() const { return manipulator_.role; }
  const SingleUnitInstance& instance() const { return instance_; }

 private:
  /// One replicate's frozen view of the non-manipulator market: ranked
  /// residual entries plus the seeds for the strategy-insertion and
  /// protocol-internal randomness streams (fixed per replicate, so all
  /// strategies share them — common random numbers).
  struct ResidualRanking {
    std::vector<BidEntry> buyers;   // descending, ties in replicate order
    std::vector<BidEntry> sellers;  // ascending, ties in replicate order
    std::uint64_t insert_seed = 0;
    std::uint64_t clear_seed = 0;
  };

  AccountPosition clear_with(const ResidualRanking& residual,
                             const Strategy& strategy) const;

  const DoubleAuctionProtocol& protocol_;
  SingleUnitInstance instance_;
  ManipulatorSpec manipulator_;
  EvalConfig config_;
  Money true_value_;
  std::vector<ResidualRanking> replicates_;
  mutable std::vector<BidEntry> merged_buyers_;   // scratch
  mutable std::vector<BidEntry> merged_sellers_;  // scratch
};

/// Search-space parameters for find_best_deviation.
struct SearchConfig {
  /// Maximum number of declarations in a strategy (1 = misreports only,
  /// 2 = one false name in addition to a primary bid, ...).
  std::size_t max_declarations = 2;
  /// Also consider submitting nothing at all.
  bool allow_absence = true;
  /// Extra candidate values appended to the instance-derived grid.
  std::vector<Money> extra_candidates;
  /// Hard cap on strategies evaluated (the enumeration is combinatorial).
  std::size_t max_strategies = 250'000;
};

struct SearchResult {
  double truthful_utility = 0.0;
  double best_utility = 0.0;
  Strategy best_strategy;
  std::size_t strategies_evaluated = 0;
  bool truncated = false;

  /// True if the best deviation strictly beats truth by more than eps.
  bool profitable(double eps = 1e-9) const {
    return best_utility > truthful_utility + eps;
  }
};

/// Grid of candidate declaration values derived from an instance: every
/// agent's value, midpoints of adjacent distinct values, small offsets
/// around each, and the domain bounds — enough to realise any outcome the
/// (piecewise-constant) protocols can produce.
std::vector<Money> candidate_values(const SingleUnitInstance& instance,
                                    Money true_value,
                                    const std::vector<Money>& extras);

/// Exhaustive search over declaration multisets up to the configured size.
SearchResult find_best_deviation(const DeviationEvaluator& evaluator,
                                 const SearchConfig& config = {});

/// Enumerates every strategy in the configured space (optionally the empty
/// strategy, then all declaration multisets over grid x {buyer, seller} up
/// to config.max_declarations), calling `consider` on each.  Returns false
/// if config.max_strategies stopped the enumeration early.  This is the
/// engine under find_best_deviation and the best-response dynamics.
bool enumerate_strategies(const std::vector<Money>& grid,
                          const SearchConfig& config,
                          const std::function<void(const Strategy&)>& consider);

}  // namespace fnda
