// Deviation evaluation and best-response search.
//
// This is the machinery behind the paper's Section 4 examples and the
// empirical incentive-compatibility results: fix an instance, pick one
// account (the manipulator), hold everyone else truthful, and ask whether
// any alternative strategy — misreporting, abstaining, or submitting
// false-name bids on either side — beats truth-telling.
//
// Two search paths are provided.  `find_best_deviation` is the parallel
// pruned engine: it partitions the canonical candidate space into
// deterministic blocks, evaluates them on worker threads over the shared
// residual rankings, skips whole subtrees whose price-bracket utility
// bound cannot beat the incumbent, and obtains most positions through the
// protocols' O(log n) `account_position` fast path instead of a full
// clearing.  `find_best_deviation_serial` is the original exhaustive
// reference implementation, kept verbatim as the equivalence oracle: for
// any thread count the engine returns the same best strategy, the same
// utilities bit-for-bit, and the same considered-strategy count.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "core/instance.h"
#include "core/protocol.h"
#include "mechanism/strategy.h"
#include "mechanism/utility.h"

namespace fnda {

/// Which account deviates: the `index`-th agent on `role`'s side of the
/// instance (its truthful bid is removed and replaced by the strategy).
struct ManipulatorSpec {
  Side role;
  std::size_t index;
};

/// Evaluation parameters.
struct EvalConfig {
  /// Outcome replicates averaged per strategy.  Protocols are deterministic
  /// given the rng stream, and all strategies share the same streams
  /// (common random numbers), so 1 suffices for tie-free instances; use
  /// more for randomized protocols or books with ties.
  std::size_t replicates = 1;
  std::uint64_t seed = 0x5eed;
  UtilityModel utility{};
};

/// Evaluates strategies for one (protocol, instance, manipulator) triple.
///
/// Sort-once: the residual book (everyone except the manipulator, all
/// truthful) is identical for every strategy, so its random-tie ranking is
/// computed ONCE per replicate at construction.  Evaluating a strategy
/// then merge-inserts the manipulator's declarations into a copy of that
/// ranking — each at a uniformly random position within its equal-value
/// run, reproducing the paper's footnote-5 tie semantics — and hands the
/// already-ranked book to `clear_sorted`.  Per strategy that is O(n)
/// instead of the naive O(n log n) rebuild-and-sort.
///
/// Thread-safety contract: `evaluate` is const but NOT thread-safe — it
/// reuses the mutable `merged_*_` scratch buffers below, a deliberate
/// trade (no per-call allocation on the hot path) that makes concurrent
/// `evaluate` calls on one instance a data race.  Everything else
/// (`replicates_`, the config, the residual rankings) is immutable after
/// construction, so parallel callers have two safe options: clone the
/// evaluator per worker (construction re-derives identical rankings from
/// the same seed), or — as the search engine in this module does — share
/// one evaluator read-only via `residual_rankings()` and keep all mutable
/// merge state in per-worker scratch.
class DeviationEvaluator {
 public:
  DeviationEvaluator(const DoubleAuctionProtocol& protocol,
                     SingleUnitInstance instance, ManipulatorSpec manipulator,
                     EvalConfig config = {});

  /// Live-book entry point: adopts a residual ranking that is ALREADY
  /// rank-ordered (buyers descending, sellers ascending, tie order frozen
  /// by the caller — e.g. a retained round's SortedBook with the
  /// manipulator's own entries removed) instead of re-sorting an
  /// instance.  No O(n log n) work: the lanes are copied and re-numbered
  /// with the canonical instance id scheme, and the tie order is shared
  /// by every replicate (the snapshot froze it; common random numbers
  /// still vary the insertion/clearing streams per replicate).  The
  /// synthesized instance appends the manipulator's true value after the
  /// residual values, so `candidate_values` and every accessor behave as
  /// if the evaluator had been built from that instance.
  DeviationEvaluator(const DoubleAuctionProtocol& protocol, ValueDomain domain,
                     Side role, Money true_value,
                     const std::vector<BidEntry>& residual_buyers,
                     const std::vector<BidEntry>& residual_sellers,
                     EvalConfig config = {});

  /// Mean utility of the manipulator when it plays `strategy` and everyone
  /// else bids truthfully.  Const but not thread-safe; see the class
  /// comment.
  double evaluate(const Strategy& strategy) const;

  /// Utility of the truthful single-bid strategy.
  double truthful_utility() const;

  Money true_value() const { return true_value_; }
  Side role() const { return manipulator_.role; }
  const SingleUnitInstance& instance() const { return instance_; }

  /// One replicate's frozen view of the non-manipulator market: ranked
  /// residual entries plus the seeds for the strategy-insertion and
  /// protocol-internal randomness streams (fixed per replicate, so all
  /// strategies share them — common random numbers).  Immutable after
  /// construction; safe to read from any number of threads.
  struct ResidualRanking {
    std::vector<BidEntry> buyers;   // descending, ties in replicate order
    std::vector<BidEntry> sellers;  // ascending, ties in replicate order
    std::uint64_t insert_seed = 0;
    std::uint64_t clear_seed = 0;
  };

  const std::vector<ResidualRanking>& residual_rankings() const {
    return replicates_;
  }
  const DoubleAuctionProtocol& protocol() const { return protocol_; }
  const EvalConfig& eval_config() const { return config_; }

 private:
  AccountPosition clear_with(const ResidualRanking& residual,
                             const Strategy& strategy) const;

  const DoubleAuctionProtocol& protocol_;
  SingleUnitInstance instance_;
  ManipulatorSpec manipulator_;
  EvalConfig config_;
  Money true_value_;
  std::vector<ResidualRanking> replicates_;
  // Mutable scratch: reused by every `evaluate` call so the hot path never
  // allocates.  This is exactly what the thread-safety contract above is
  // about — const calls mutate these.
  mutable std::vector<BidEntry> merged_buyers_;   // scratch
  mutable std::vector<BidEntry> merged_sellers_;  // scratch
};

/// Search-space parameters for find_best_deviation.
struct SearchConfig {
  /// Maximum number of declarations in a strategy (1 = misreports only,
  /// 2 = one false name in addition to a primary bid, ...).
  std::size_t max_declarations = 2;
  /// Also consider submitting nothing at all.
  bool allow_absence = true;
  /// Extra candidate values appended to the instance-derived grid.
  std::vector<Money> extra_candidates;
  /// Hard cap on strategies evaluated (the enumeration is combinatorial).
  std::size_t max_strategies = 250'000;
  /// Worker threads for the engine (0 = hardware concurrency).  Results
  /// are bit-identical for every thread count.
  std::size_t threads = 1;
  /// Bound-based pruning via DoubleAuctionProtocol::price_bracket.  Sound
  /// (never changes the result); disable to measure its effect.
  bool prune = true;
  /// Non-empty: use exactly these values as the declaration grid instead
  /// of the instance-derived `candidate_values`.  Lets benchmarks fix the
  /// candidate space independently of the population size.
  std::vector<Money> grid_override;
  /// Warm-start prune floor: candidates whose utility upper bound is
  /// STRICTLY below this are pruned in addition to the incumbent rule.
  /// Sound — same best strategy and utilities as the un-floored search —
  /// if and only if some enumerated candidate achieves at least this
  /// utility; `find_best_deviation_warm` guarantees that by seeding the
  /// floor with the re-evaluated utility of a strategy it has proven to
  /// be in the candidate space.  Coverage counters (evaluated / pruned)
  /// DO depend on the floor; the result does not.  -inf disables.
  double warm_floor = -std::numeric_limits<double>::infinity();
};

/// Engine observability: how the search space was covered.  All counters
/// except `wall_time_ns` and `threads_used` are deterministic — identical
/// for every thread count, because candidate blocks and their block-local
/// prune incumbents do not depend on the execution interleaving.
struct SearchStats {
  /// Candidates considered by the enumeration (absence included, capped by
  /// max_strategies) — pruned ones too.  Matches the serial reference's
  /// SearchResult::strategies_evaluated.
  std::size_t strategies_enumerated = 0;
  /// Candidates actually priced (enumerated minus pruned).
  std::size_t strategies_evaluated = 0;
  /// Candidates skipped by the utility upper bound at leaf level.
  std::size_t pruned_by_bound = 0;
  /// Candidates skipped in bulk when a whole declaration-size subtree's
  /// optimistic bound could not beat the incumbent.
  std::size_t pruned_in_subtree = 0;
  /// Candidates skipped only because of the warm-start floor (their bound
  /// beat the block incumbent but fell strictly below the floor).  Zero
  /// for cold searches.
  std::size_t pruned_by_warm_floor = 0;
  /// Ordered duplicate tuples avoided by canonical multiset enumeration
  /// (value-permutation-equivalent declaration sets collapse to one).
  std::size_t dedup_skipped = 0;
  /// Full clear_sorted fallbacks (per candidate per replicate).
  std::size_t clears_performed = 0;
  /// account_position fast-path hits (per candidate per replicate).
  std::size_t fast_positions = 0;
  /// Prune-bound tightness: sum over evaluated candidates (with a valid
  /// bracket) of bound minus achieved utility, in micro-units, plus the
  /// sample count.  Mean slack = bound_slack_micros / bound_slack_samples.
  std::int64_t bound_slack_micros = 0;
  std::size_t bound_slack_samples = 0;
  /// Wall time of the whole search (enumeration + merge), and the number
  /// of workers actually used.  NOT deterministic; excluded from metric
  /// digests by default.
  std::uint64_t wall_time_ns = 0;
  std::size_t threads_used = 1;

  /// Accumulates every deterministic counter from `other` (wall time and
  /// thread count are left alone — they describe the whole run, not a
  /// part).  Used to fold per-block stats in block order.
  void merge_from(const SearchStats& other);
};

struct SearchResult {
  double truthful_utility = 0.0;
  double best_utility = 0.0;
  Strategy best_strategy;
  /// Candidates considered (absence included, capped, pruned ones too) —
  /// the historical meaning, preserved so results compare across engine
  /// versions; `stats.strategies_evaluated` has the priced-only count.
  std::size_t strategies_evaluated = 0;
  bool truncated = false;
  SearchStats stats;

  /// True if the best deviation strictly beats truth by more than eps.
  bool profitable(double eps = 1e-9) const {
    return best_utility > truthful_utility + eps;
  }
};

/// Grid of candidate declaration values derived from an instance: every
/// agent's value, midpoints of adjacent distinct values, small offsets
/// around each, and the domain bounds — enough to realise any outcome the
/// (piecewise-constant) protocols can produce.
std::vector<Money> candidate_values(const SingleUnitInstance& instance,
                                    Money true_value,
                                    const std::vector<Money>& extras);

/// Parallel pruned best-response search over declaration multisets up to
/// the configured size.  Bit-identical to `find_best_deviation_serial`
/// (same best strategy, same utilities, same considered count) at every
/// thread count; the speedup comes from pruning, the account-position
/// fast path, incremental residual patching, and worker parallelism.
SearchResult find_best_deviation(const DeviationEvaluator& evaluator,
                                 const SearchConfig& config = {});

/// Persistent per-account warm-start state carried across rounds of a
/// live session.  `find_best_deviation_warm` owns every field; callers
/// only construct one per manipulator account and keep it alive between
/// calls.  Holding the state for account A and calling with account B's
/// evaluator is safe (the cached lanes/grid/config key will not match and
/// the search runs cold) but wastes the cache.
struct SearchState {
  bool has_result = false;
  /// The previous search's full result (returned verbatim on a warm hit).
  SearchResult last;
  /// Ranked residual VALUE lanes of `last` — the invalidation rule: any
  /// change to either lane (value multiset or rank order, which for
  /// sorted lanes is the same thing) invalidates the cached result.
  /// Residual identities and tie order are deliberately excluded: the
  /// manipulator's utility is a function of the value lanes, its own
  /// declarations, and the seeds only.
  std::vector<Money> buyer_values;
  std::vector<Money> seller_values;
  /// Candidate grid of `last` (grid changes invalidate the cache).
  std::vector<Money> grid;
  /// Digest of every other result-affecting input (eval seed, replicates,
  /// utility penalty, role, true value, domain, search knobs).
  std::uint64_t config_key = 0;
  /// Residual lanes as a SortedBook, kept warm across rounds so a cache
  /// hit revalidates the cached best response through the protocol's
  /// O(log n) `account_position` fast path without copying the lanes.
  SortedBook residual_book;
  // --- observability ----------------------------------------------------
  std::size_t warm_hits = 0;    ///< unchanged book: cached result reused
  std::size_t warm_seeded = 0;  ///< engine runs seeded with the warm floor
  std::size_t cold_runs = 0;    ///< engine runs with no usable warm state
  std::size_t fast_revalidations = 0;  ///< account_position hit revalidations
};

/// Warm-start wrapper around `find_best_deviation`.  Three tiers:
///   1. Cache hit — the residual value lanes, grid, and config match the
///      previous call exactly: the cached best response is revalidated in
///      O(log n) via `account_position` against the retained residual
///      book and the cached result is returned without enumeration.
///   2. Warm seed — the book changed but the previous best strategy is
///      still in the candidate space (declarations on the current grid,
///      within max_declarations, enumeration not truncated): it is
///      re-evaluated against the new book and its utility becomes
///      `SearchConfig::warm_floor`, so most subtrees die immediately.
///   3. Cold — no usable prior state: plain `find_best_deviation`.
/// All three tiers return the same best strategy and utilities as a cold
/// `find_best_deviation` / `find_best_deviation_serial` on the same
/// evaluator, bit for bit, at every thread count; only the coverage
/// counters differ.  Updates `state` with the returned result.
SearchResult find_best_deviation_warm(const DeviationEvaluator& evaluator,
                                      const SearchConfig& config,
                                      SearchState& state);

/// The original single-threaded exhaustive search, kept as the
/// equivalence oracle and the benchmark baseline.  Evaluates every
/// candidate with a full merge + clearing; no pruning, no fast path.
SearchResult find_best_deviation_serial(const DeviationEvaluator& evaluator,
                                        const SearchConfig& config = {});

/// Enumerates every strategy in the configured space (optionally the empty
/// strategy, then all declaration multisets over grid x {buyer, seller} up
/// to config.max_declarations), calling `consider` on each.  Returns false
/// if config.max_strategies stopped the enumeration early.  This is the
/// engine under find_best_deviation_serial and the best-response dynamics.
bool enumerate_strategies(const std::vector<Money>& grid,
                          const SearchConfig& config,
                          const std::function<void(const Strategy&)>& consider);

}  // namespace fnda
