#include "mechanism/multi_manipulation.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <utility>

#include "core/instance.h"

namespace fnda {
namespace {

constexpr std::uint64_t kManipulatorBase = 5'000'000;

/// Sum of the `count` highest entries of a non-increasing schedule.
double top_values(const std::vector<Money>& schedule, std::size_t count) {
  double total = 0.0;
  for (std::size_t l = 0; l < std::min(count, schedule.size()); ++l) {
    total += schedule[l].to_double();
  }
  return total;
}

}  // namespace

MultiDeviationEvaluator::MultiDeviationEvaluator(
    const TpdMultiUnitProtocol& protocol, MultiUnitInstance instance,
    MultiManipulatorSpec manipulator, UtilityModel penalty_model,
    std::uint64_t seed)
    : protocol_(protocol),
      instance_(std::move(instance)),
      manipulator_(manipulator),
      penalty_model_(penalty_model),
      seed_(seed) {
  const auto& schedules = manipulator_.role == Side::kBuyer
                              ? instance_.buyer_schedules
                              : instance_.seller_schedules;
  if (manipulator_.index >= schedules.size()) {
    throw std::out_of_range("MultiDeviationEvaluator: manipulator index");
  }
  true_schedule_ = schedules[manipulator_.index];
}

double MultiDeviationEvaluator::evaluate(const MultiStrategy& strategy) const {
  MultiUnitBook book;
  for (std::size_t b = 0; b < instance_.buyer_schedules.size(); ++b) {
    if (manipulator_.role == Side::kBuyer && manipulator_.index == b) continue;
    book.add_buyer(IdentityId{b}, instance_.buyer_schedules[b]);
  }
  for (std::size_t s = 0; s < instance_.seller_schedules.size(); ++s) {
    if (manipulator_.role == Side::kSeller && manipulator_.index == s) {
      continue;
    }
    book.add_seller(IdentityId{kSellerIdentityBase + s},
                    instance_.seller_schedules[s]);
  }
  std::vector<IdentityId> own;
  for (std::size_t d = 0; d < strategy.declarations.size(); ++d) {
    const IdentityId identity{kManipulatorBase + d};
    own.push_back(identity);
    if (strategy.declarations[d].side == Side::kBuyer) {
      book.add_buyer(identity, strategy.declarations[d].schedule);
    } else {
      book.add_seller(identity, strategy.declarations[d].schedule);
    }
  }

  Rng rng(seed_);
  const MultiUnitOutcome outcome = protocol_.clear(book, rng);

  std::size_t bought = 0;
  std::size_t sold = 0;
  double paid = 0.0;
  double received = 0.0;
  for (IdentityId identity : own) {
    if (const auto* buyer = outcome.buyer(identity)) {
      bought += buyer->units;
      paid += buyer->total_paid.to_double();
    }
    if (const auto* seller = outcome.seller(identity)) {
      sold += seller->units;
      received += seller->total_received.to_double();
    }
  }

  const std::size_t endowment =
      manipulator_.role == Side::kSeller ? true_schedule_.size() : 0;
  const std::size_t failed = sold > endowment ? sold - endowment : 0;
  const std::size_t delivered = sold - failed;

  // Goods value: holdings are the endowment plus purchases minus
  // deliveries; marginal value of the h-th unit held is the schedule's
  // h-th entry (0 beyond it).
  const std::size_t holdings = endowment + bought - delivered;
  const double goods_value = top_values(true_schedule_, holdings);
  const double endowment_value = top_values(true_schedule_, endowment);

  return goods_value - endowment_value - paid + received -
         penalty_model_.penalty().to_double() * static_cast<double>(failed);
}

double MultiDeviationEvaluator::truthful_utility() const {
  return evaluate(MultiStrategy::truthful(manipulator_.role, true_schedule_));
}

namespace {

std::vector<Money> scaled_schedule(const std::vector<Money>& values,
                                   double factor) {
  std::vector<Money> out;
  out.reserve(values.size());
  for (Money v : values) {
    out.push_back(Money::from_micros(std::max<std::int64_t>(
        0, static_cast<std::int64_t>(static_cast<double>(v.micros()) *
                                     factor))));
  }
  return out;
}

/// Champion of one contiguous mask range, with a range-local incumbent
/// seeded from max(truthful, withholding) so which strategy wins does not
/// depend on what other ranges found — the merge in range order then
/// reproduces the serial first-strict-improvement scan exactly.
struct MaskRangeOutcome {
  bool has_best = false;
  double best_utility = 0.0;
  MultiStrategy best_strategy;
  std::size_t evaluated = 0;
};

void search_mask_range(const MultiDeviationEvaluator& evaluator,
                       const std::vector<double>& shade_factors,
                       double base_utility, std::uint32_t mask_begin,
                       std::uint32_t mask_end, MaskRangeOutcome* out) {
  const std::vector<Money>& schedule = evaluator.true_schedule();
  const std::size_t units = schedule.size();
  const Side role = evaluator.role();
  double incumbent = base_utility;

  // Every assignment of the schedule's units to identities A/B (bit mask),
  // with every shading factor pair.  Mask 0 keeps one identity (covers
  // pure shading and unit withholding via subset masks below).
  for (std::uint32_t mask = mask_begin; mask < mask_end; ++mask) {
    std::vector<Money> a;
    std::vector<Money> b;
    for (std::size_t u = 0; u < units; ++u) {
      ((mask >> u) & 1u ? b : a).push_back(schedule[u]);
    }
    for (double fa : shade_factors) {
      for (double fb : shade_factors) {
        MultiStrategy strategy;
        if (!a.empty()) {
          strategy.declarations.push_back(
              MultiDeclaration{role, scaled_schedule(a, fa)});
        }
        if (!b.empty()) {
          strategy.declarations.push_back(
              MultiDeclaration{role, scaled_schedule(b, fb)});
        }
        if (strategy.declarations.empty()) continue;
        ++out->evaluated;
        const double utility = evaluator.evaluate(strategy);
        if (utility > incumbent) {
          incumbent = utility;
          out->has_best = true;
          out->best_utility = utility;
          out->best_strategy = std::move(strategy);
        }
        if (b.empty()) break;  // fb is irrelevant without a B identity
      }
      if (a.empty()) break;
    }
  }
}

}  // namespace

MultiSearchResult find_best_multi_deviation(
    const MultiDeviationEvaluator& evaluator,
    const MultiSearchConfig& config) {
  const auto started = std::chrono::steady_clock::now();
  MultiSearchResult result;
  result.truthful_utility = evaluator.truthful_utility();
  result.best_utility = result.truthful_utility;
  result.best_strategy = MultiStrategy::truthful(
      evaluator.role(), evaluator.true_schedule());

  // Withholding entirely (the serial order's first candidate).
  ++result.strategies_evaluated;
  {
    const double utility = evaluator.evaluate(MultiStrategy{});
    if (utility > result.best_utility) {
      result.best_utility = utility;
      result.best_strategy = MultiStrategy{};
    }
  }

  const std::size_t units = evaluator.true_schedule().size();
  const std::uint32_t masks =
      units == 0 ? 1u : (1u << static_cast<std::uint32_t>(units));

  // Deterministic contiguous mask ranges (at most 64), claimed by workers
  // through an atomic cursor.  `evaluate` builds all its state locally,
  // so sharing the evaluator read-only across threads is safe.
  const std::uint32_t range_count = std::min<std::uint32_t>(64, masks);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> ranges;
  ranges.reserve(range_count);
  for (std::uint32_t r = 0; r < range_count; ++r) {
    const std::uint32_t begin =
        static_cast<std::uint32_t>((static_cast<std::uint64_t>(masks) * r) /
                                   range_count);
    const std::uint32_t end = static_cast<std::uint32_t>(
        (static_cast<std::uint64_t>(masks) * (r + 1)) / range_count);
    if (begin < end) ranges.emplace_back(begin, end);
  }

  std::vector<MaskRangeOutcome> outcomes(ranges.size());
  std::size_t thread_count =
      config.threads == 0
          ? std::max<std::size_t>(1, std::thread::hardware_concurrency())
          : config.threads;
  thread_count =
      std::max<std::size_t>(1, std::min(thread_count, ranges.size()));

  std::atomic<std::size_t> next_range{0};
  const double base_utility = result.best_utility;
  auto worker_loop = [&] {
    while (true) {
      const std::size_t r = next_range.fetch_add(1);
      if (r >= ranges.size()) break;
      search_mask_range(evaluator, config.shade_factors, base_utility,
                        ranges[r].first, ranges[r].second, &outcomes[r]);
    }
  };
  if (thread_count <= 1) {
    worker_loop();
  } else {
    std::vector<std::thread> pool;
    std::vector<std::exception_ptr> errors(thread_count);
    pool.reserve(thread_count);
    for (std::size_t t = 0; t < thread_count; ++t) {
      pool.emplace_back([&, t] {
        try {
          worker_loop();
        } catch (...) {
          errors[t] = std::current_exception();
        }
      });
    }
    for (std::thread& thread : pool) thread.join();
    for (const std::exception_ptr& error : errors) {
      if (error) std::rethrow_exception(error);
    }
  }

  for (const MaskRangeOutcome& range : outcomes) {
    result.strategies_evaluated += range.evaluated;
    if (range.has_best && range.best_utility > result.best_utility) {
      result.best_utility = range.best_utility;
      result.best_strategy = range.best_strategy;
    }
  }
  result.stats.strategies_enumerated = result.strategies_evaluated;
  result.stats.strategies_evaluated = result.strategies_evaluated;
  result.stats.clears_performed = result.strategies_evaluated;
  result.stats.threads_used = thread_count;
  result.stats.wall_time_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - started)
          .count());
  return result;
}

MultiSearchResult find_best_multi_deviation(
    const MultiDeviationEvaluator& evaluator,
    const std::vector<double>& shade_factors) {
  MultiSearchConfig config;
  config.shade_factors = shade_factors;
  return find_best_multi_deviation(evaluator, config);
}

}  // namespace fnda
