#include "mechanism/multi_manipulation.h"

#include <algorithm>
#include <stdexcept>

#include "core/instance.h"

namespace fnda {
namespace {

constexpr std::uint64_t kManipulatorBase = 5'000'000;

/// Sum of the `count` highest entries of a non-increasing schedule.
double top_values(const std::vector<Money>& schedule, std::size_t count) {
  double total = 0.0;
  for (std::size_t l = 0; l < std::min(count, schedule.size()); ++l) {
    total += schedule[l].to_double();
  }
  return total;
}

}  // namespace

MultiDeviationEvaluator::MultiDeviationEvaluator(
    const TpdMultiUnitProtocol& protocol, MultiUnitInstance instance,
    MultiManipulatorSpec manipulator, UtilityModel penalty_model,
    std::uint64_t seed)
    : protocol_(protocol),
      instance_(std::move(instance)),
      manipulator_(manipulator),
      penalty_model_(penalty_model),
      seed_(seed) {
  const auto& schedules = manipulator_.role == Side::kBuyer
                              ? instance_.buyer_schedules
                              : instance_.seller_schedules;
  if (manipulator_.index >= schedules.size()) {
    throw std::out_of_range("MultiDeviationEvaluator: manipulator index");
  }
  true_schedule_ = schedules[manipulator_.index];
}

double MultiDeviationEvaluator::evaluate(const MultiStrategy& strategy) const {
  MultiUnitBook book;
  for (std::size_t b = 0; b < instance_.buyer_schedules.size(); ++b) {
    if (manipulator_.role == Side::kBuyer && manipulator_.index == b) continue;
    book.add_buyer(IdentityId{b}, instance_.buyer_schedules[b]);
  }
  for (std::size_t s = 0; s < instance_.seller_schedules.size(); ++s) {
    if (manipulator_.role == Side::kSeller && manipulator_.index == s) {
      continue;
    }
    book.add_seller(IdentityId{kSellerIdentityBase + s},
                    instance_.seller_schedules[s]);
  }
  std::vector<IdentityId> own;
  for (std::size_t d = 0; d < strategy.declarations.size(); ++d) {
    const IdentityId identity{kManipulatorBase + d};
    own.push_back(identity);
    if (strategy.declarations[d].side == Side::kBuyer) {
      book.add_buyer(identity, strategy.declarations[d].schedule);
    } else {
      book.add_seller(identity, strategy.declarations[d].schedule);
    }
  }

  Rng rng(seed_);
  const MultiUnitOutcome outcome = protocol_.clear(book, rng);

  std::size_t bought = 0;
  std::size_t sold = 0;
  double paid = 0.0;
  double received = 0.0;
  for (IdentityId identity : own) {
    if (const auto* buyer = outcome.buyer(identity)) {
      bought += buyer->units;
      paid += buyer->total_paid.to_double();
    }
    if (const auto* seller = outcome.seller(identity)) {
      sold += seller->units;
      received += seller->total_received.to_double();
    }
  }

  const std::size_t endowment =
      manipulator_.role == Side::kSeller ? true_schedule_.size() : 0;
  const std::size_t failed = sold > endowment ? sold - endowment : 0;
  const std::size_t delivered = sold - failed;

  // Goods value: holdings are the endowment plus purchases minus
  // deliveries; marginal value of the h-th unit held is the schedule's
  // h-th entry (0 beyond it).
  const std::size_t holdings = endowment + bought - delivered;
  const double goods_value = top_values(true_schedule_, holdings);
  const double endowment_value = top_values(true_schedule_, endowment);

  return goods_value - endowment_value - paid + received -
         penalty_model_.penalty().to_double() * static_cast<double>(failed);
}

double MultiDeviationEvaluator::truthful_utility() const {
  return evaluate(MultiStrategy::truthful(manipulator_.role, true_schedule_));
}

MultiSearchResult find_best_multi_deviation(
    const MultiDeviationEvaluator& evaluator,
    const std::vector<double>& shade_factors) {
  MultiSearchResult result;
  result.truthful_utility = evaluator.truthful_utility();
  result.best_utility = result.truthful_utility;
  result.best_strategy = MultiStrategy::truthful(
      evaluator.role(), evaluator.true_schedule());

  auto consider = [&](const MultiStrategy& strategy) {
    ++result.strategies_evaluated;
    const double utility = evaluator.evaluate(strategy);
    if (utility > result.best_utility) {
      result.best_utility = utility;
      result.best_strategy = strategy;
    }
  };

  // Withholding entirely.
  consider(MultiStrategy{});

  const std::vector<Money>& schedule = evaluator.true_schedule();
  const std::size_t units = schedule.size();
  const Side role = evaluator.role();

  auto scaled = [](const std::vector<Money>& values, double factor) {
    std::vector<Money> out;
    out.reserve(values.size());
    for (Money v : values) {
      out.push_back(Money::from_micros(std::max<std::int64_t>(
          0, static_cast<std::int64_t>(static_cast<double>(v.micros()) *
                                       factor))));
    }
    return out;
  };

  // Every assignment of the schedule's units to identities A/B (bit mask),
  // with every shading factor pair.  Mask 0 keeps one identity (covers
  // pure shading and unit withholding via subset masks below).
  for (std::uint32_t mask = 0; mask < (1u << units); ++mask) {
    std::vector<Money> a;
    std::vector<Money> b;
    for (std::size_t u = 0; u < units; ++u) {
      ((mask >> u) & 1u ? b : a).push_back(schedule[u]);
    }
    for (double fa : shade_factors) {
      for (double fb : shade_factors) {
        MultiStrategy strategy;
        if (!a.empty()) {
          strategy.declarations.push_back(
              MultiDeclaration{role, scaled(a, fa)});
        }
        if (!b.empty()) {
          strategy.declarations.push_back(
              MultiDeclaration{role, scaled(b, fb)});
        }
        if (strategy.declarations.empty()) continue;
        consider(strategy);
        if (b.empty()) break;  // fb is irrelevant without a B identity
      }
      if (a.empty()) break;
    }
  }
  return result;
}

}  // namespace fnda
