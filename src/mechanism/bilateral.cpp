#include "mechanism/bilateral.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "mechanism/linear_feasibility.h"

namespace fnda {
namespace {

void validate(const BilateralSetting& setting) {
  auto check_side = [](const std::vector<BilateralType>& types,
                       const char* side) {
    if (types.empty()) {
      throw std::invalid_argument(std::string("BilateralSetting: no ") +
                                  side + " types");
    }
    double total = 0.0;
    for (const BilateralType& type : types) {
      if (type.probability < 0.0) {
        throw std::invalid_argument("BilateralSetting: negative probability");
      }
      total += type.probability;
    }
    if (std::abs(total - 1.0) > 1e-6) {
      throw std::invalid_argument(
          std::string("BilateralSetting: ") + side +
          " probabilities must sum to 1");
    }
  };
  check_side(setting.buyer_types, "buyer");
  check_side(setting.seller_types, "seller");
}

/// Efficient deterministic allocation: trade exactly when b > s.
bool trades(Money buyer, Money seller) { return buyer > seller; }

}  // namespace

FeasibilityReport check_efficient_mechanism_exists(
    const BilateralSetting& setting, const MechanismRequirements& requirements,
    double eps) {
  validate(setting);
  const std::size_t nb = setting.buyer_types.size();
  const std::size_t ns = setting.seller_types.size();
  // Variables: the buyer's payment p_ij and the seller's receipt r_ij per
  // type pair (i, j).  Under budget balance p_ij == r_ij, so the equality
  // is substituted away into a single transfer variable — halving the
  // dimensionality keeps Fourier-Motzkin comfortable.
  const std::size_t per_pair = requirements.budget_balanced ? 1 : 2;
  const std::size_t variables = per_pair * nb * ns;
  auto var_p = [ns, per_pair](std::size_t i, std::size_t j) {
    return per_pair * (i * ns + j);
  };
  auto var_r = [ns, per_pair](std::size_t i, std::size_t j) {
    return per_pair * (i * ns + j) + (per_pair - 1);
  };
  auto unit = [variables](std::size_t index, double coefficient) {
    std::vector<double> coeffs(variables, 0.0);
    coeffs[index] = coefficient;
    return coeffs;
  };

  std::vector<LinearConstraint> constraints;
  for (std::size_t i = 0; i < nb; ++i) {
    for (std::size_t j = 0; j < ns; ++j) {
      const double b = setting.buyer_types[i].value.to_double();
      const double s = setting.seller_types[j].value.to_double();
      const double q = trades(setting.buyer_types[i].value,
                              setting.seller_types[j].value)
                           ? 1.0
                           : 0.0;
      // Ex-post IR: q*b - p >= 0  and  r - q*s >= 0.
      constraints.push_back({unit(var_p(i, j), 1.0), q * b});
      constraints.push_back({unit(var_r(i, j), -1.0), -q * s});

      if (!requirements.budget_balanced && requirements.no_subsidy) {
        std::vector<double> diff(variables, 0.0);
        diff[var_r(i, j)] = 1.0;
        diff[var_p(i, j)] = -1.0;
        constraints.push_back({std::move(diff), 0.0});
      }
    }
  }

  // Dominant-strategy IC for the buyer: against every seller report j,
  // truth beats reporting any other type i'.
  for (std::size_t j = 0; j < ns; ++j) {
    for (std::size_t i = 0; i < nb; ++i) {
      const double b = setting.buyer_types[i].value.to_double();
      const double q_true = trades(setting.buyer_types[i].value,
                                   setting.seller_types[j].value)
                                ? 1.0
                                : 0.0;
      for (std::size_t other = 0; other < nb; ++other) {
        if (other == i) continue;
        const double q_lie = trades(setting.buyer_types[other].value,
                                    setting.seller_types[j].value)
                                 ? 1.0
                                 : 0.0;
        // q_true*b - p(i,j) >= q_lie*b - p(other,j)
        std::vector<double> coeffs(variables, 0.0);
        coeffs[var_p(i, j)] = 1.0;
        coeffs[var_p(other, j)] = -1.0;
        constraints.push_back({std::move(coeffs), (q_true - q_lie) * b});
      }
    }
  }
  // Dominant-strategy IC for the seller.
  for (std::size_t i = 0; i < nb; ++i) {
    for (std::size_t j = 0; j < ns; ++j) {
      const double s = setting.seller_types[j].value.to_double();
      const double q_true = trades(setting.buyer_types[i].value,
                                   setting.seller_types[j].value)
                                ? 1.0
                                : 0.0;
      for (std::size_t other = 0; other < ns; ++other) {
        if (other == j) continue;
        const double q_lie = trades(setting.buyer_types[i].value,
                                    setting.seller_types[other].value)
                                 ? 1.0
                                 : 0.0;
        // r(i,j) - q_true*s >= r(i,other) - q_lie*s
        std::vector<double> coeffs(variables, 0.0);
        coeffs[var_r(i, other)] = 1.0;
        coeffs[var_r(i, j)] = -1.0;
        constraints.push_back({std::move(coeffs), (q_lie - q_true) * s});
      }
    }
  }

  FeasibilityReport report;
  report.variables = variables;
  report.constraints = constraints.size();
  report.feasible = feasible(std::move(constraints), variables, eps);
  return report;
}

double expected_efficient_surplus(const BilateralSetting& setting) {
  validate(setting);
  double total = 0.0;
  for (const BilateralType& buyer : setting.buyer_types) {
    for (const BilateralType& seller : setting.seller_types) {
      if (trades(buyer.value, seller.value)) {
        total += buyer.probability * seller.probability *
                 (buyer.value - seller.value).to_double();
      }
    }
  }
  return total;
}

double expected_posted_price_surplus(const BilateralSetting& setting,
                                     Money price) {
  validate(setting);
  double total = 0.0;
  for (const BilateralType& buyer : setting.buyer_types) {
    if (buyer.value < price) continue;
    for (const BilateralType& seller : setting.seller_types) {
      if (seller.value > price) continue;
      total += buyer.probability * seller.probability *
               (buyer.value - seller.value).to_double();
    }
  }
  return total;
}

PostedPriceResult optimal_posted_price(const BilateralSetting& setting) {
  validate(setting);
  std::vector<Money> candidates;
  for (const BilateralType& type : setting.buyer_types) {
    candidates.push_back(type.value);
  }
  for (const BilateralType& type : setting.seller_types) {
    candidates.push_back(type.value);
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());

  PostedPriceResult best;
  best.price = candidates.front();
  best.expected_surplus = expected_posted_price_surplus(setting, best.price);
  for (Money candidate : candidates) {
    const double surplus = expected_posted_price_surplus(setting, candidate);
    if (surplus > best.expected_surplus + 1e-12) {
      best.expected_surplus = surplus;
      best.price = candidate;
    }
  }
  const double efficient = expected_efficient_surplus(setting);
  best.efficiency = efficient > 0.0 ? best.expected_surplus / efficient : 1.0;
  return best;
}

}  // namespace fnda
