// Account-level utility model (Section 2's quasi-linear utilities, plus
// the Section 6 penalty for discovered false-name sellers).
//
// Protocols see identities; utilities accrue to *accounts*.  An account
// may have cleared trades through several identities; this model folds the
// aggregate position back into a single quasi-linear utility:
//
//   utility = v * min(holdings, 1) - endowment_value - paid + received
//             - penalty * failed_deliveries
//
// where holdings = endowment + units bought - units delivered, and a sale
// beyond the account's endowment is a failed delivery (the paper's
// "brought to light" case: the good does not exist, the security deposit
// is confiscated).  Bought units cannot cover a same-round sale — the
// paper treats any false seller bid included in the trades as discovered.
//
// Buyers have endowment 0 and demand one unit; sellers have endowment 1
// and no value for additional units.  Truthful no-trade utility is 0 for
// both sides, matching the paper's normalisation.
#pragma once

#include <cstddef>

#include "common/money.h"
#include "core/bid.h"

namespace fnda {

/// Aggregate cleared position of one account across all its identities.
struct AccountPosition {
  std::size_t bought = 0;
  std::size_t sold = 0;
  Money paid;
  Money received;
};

class UtilityModel {
 public:
  /// `penalty` is the Section 6 "sufficiently large" fine per failed
  /// delivery.  The default exceeds any conceivable single-round gain in
  /// the default value domain.
  explicit UtilityModel(Money penalty = Money::from_units(2'000'000'000))
      : penalty_(penalty) {}

  Money penalty() const { return penalty_; }

  /// Utility of an account with true role `role` and true valuation
  /// `true_value`, given its cleared position.
  double evaluate(Side role, Money true_value,
                  const AccountPosition& position) const;

  /// Number of sales the account cannot deliver.
  static std::size_t failed_deliveries(Side role,
                                       const AccountPosition& position);

 private:
  Money penalty_;
};

}  // namespace fnda
