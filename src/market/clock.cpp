#include "market/clock.h"

#include <algorithm>
#include <utility>

namespace fnda {

void EventQueue::schedule_at(SimTime at, Action action) {
  queue_.push(Entry{std::max(at, now_), next_sequence_++, std::move(action)});
}

void EventQueue::schedule_after(SimTime delay, Action action) {
  schedule_at(now_ + delay, std::move(action));
}

bool EventQueue::step() {
  if (queue_.empty()) return false;
  // priority_queue::top() is const; the entry must be copied out before
  // pop.  Actions are small (captured pointers), so this is cheap.
  Entry entry = queue_.top();
  queue_.pop();
  now_ = entry.at;
  entry.action();
  return true;
}

std::size_t EventQueue::run(std::size_t max_events) {
  std::size_t executed = 0;
  while (executed < max_events && step()) ++executed;
  return executed;
}

std::size_t EventQueue::run_until(SimTime until, std::size_t max_events) {
  std::size_t executed = 0;
  while (executed < max_events && !queue_.empty() &&
         queue_.top().at <= until) {
    step();
    ++executed;
  }
  return executed;
}

}  // namespace fnda
