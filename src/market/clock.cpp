#include "market/clock.h"

#include <algorithm>
#include <bit>
#include <limits>
#include <utility>

namespace fnda {

std::uint32_t EventQueue::acquire_action(Action action) {
  if (!action_free_.empty()) {
    const std::uint32_t index = action_free_.back();
    action_free_.pop_back();
    actions_[index] = std::move(action);
    return index;
  }
  actions_.push_back(std::move(action));
  return static_cast<std::uint32_t>(actions_.size() - 1);
}

void EventQueue::schedule_at(SimTime at, Action action) {
  Entry entry;
  entry.at = std::max(at, now_);
  entry.slot = acquire_action(std::move(action));
  push(entry);
}

void EventQueue::schedule_after(SimTime delay, Action action) {
  schedule_at(now_ + delay, std::move(action));
}

void EventQueue::schedule_delivery(SimTime at, std::uint32_t slot,
                                   std::uint64_t key) {
  Entry entry;
  entry.at = std::max(at, now_);
  entry.key = key;
  entry.slot = slot;
  entry.is_delivery = true;
  push(entry);
}

void EventQueue::push(Entry entry) {
  const std::int64_t bucket = bucket_of(entry.at);
  ++size_;
  if (bucket > cursor_) {
    if (bucket < horizon()) {
      const auto slot_index = static_cast<std::size_t>(bucket) & kWheelMask;
      wheel_[slot_index].push_back(entry);
      mark_occupied(slot_index);
      ++wheel_count_;
    } else {
      overflow_[bucket].push_back(entry);
    }
    return;
  }
  const auto offset =
      static_cast<std::size_t>(entry.at.micros) & (kBucketWidth - 1);
  if (bucket == cursor_ && offset >= instant_offset_) {
    // The common reentrant case: an executing handler schedules into the
    // bucket being drained, at or after the drain position.  The target
    // list is one instant, and the new sequence number is the largest
    // yet, so a plain append preserves (at, sequence) order.
    instant_[offset].push_back(entry);
    instant_occupied_[offset >> 6] |= std::uint64_t{1} << (offset & 63);
    ++instant_pending_;
    return;
  }
  // Behind the drain position: only reachable while now_ lags the cursor
  // (after a partial run_until), so it stays ahead of everything already
  // executed.  Splice into the sorted early buffer.
  insert_early(entry);
}

void EventQueue::insert_early(const Entry& entry) {
  // upper_bound keeps equal-time insertion stable: the new entry lands
  // after every pending entry at the same instant, which were pushed
  // earlier.
  const auto position = std::upper_bound(
      early_.begin() + static_cast<std::ptrdiff_t>(early_index_), early_.end(),
      entry.at,
      [](SimTime at, const Entry& other) { return at < other.at; });
  early_.insert(position, entry);
}

void EventQueue::mark_occupied(std::size_t slot_index) {
  occupied_[slot_index >> 6] |= std::uint64_t{1} << (slot_index & 63);
}

void EventQueue::clear_occupied(std::size_t slot_index) {
  occupied_[slot_index >> 6] &= ~(std::uint64_t{1} << (slot_index & 63));
}

std::size_t EventQueue::next_occupied_distance() const {
  // Circular scan of the occupancy bitmap starting at the cursor slot.
  // The wheel holds only buckets in (cursor_, cursor_ + kWheelSlots), so
  // slot order from the cursor equals absolute bucket order.
  const std::size_t start = static_cast<std::size_t>(cursor_) & kWheelMask;
  std::size_t word = start >> 6;
  const std::size_t start_bit = start & 63;
  std::uint64_t bits = occupied_[word] >> start_bit;
  if (bits != 0) {
    return static_cast<std::size_t>(std::countr_zero(bits));
  }
  std::size_t scanned = 64 - start_bit;
  while (scanned < kWheelSlots) {
    word = (word + 1) & (kBitmapWords - 1);
    bits = occupied_[word];
    if (bits != 0) {
      return scanned + static_cast<std::size_t>(std::countr_zero(bits));
    }
    scanned += 64;
  }
  return kWheelSlots;  // wheel empty
}

void EventQueue::pull_overflow() {
  while (!overflow_.empty() && overflow_.begin()->first < horizon()) {
    auto node = overflow_.extract(overflow_.begin());
    const auto slot_index = static_cast<std::size_t>(node.key()) & kWheelMask;
    std::vector<Entry>& dest = wheel_[slot_index];
    wheel_count_ += node.mapped().size();
    if (dest.empty()) {
      dest = std::move(node.mapped());
    } else {
      // Unreachable: the cursor only advances over slots the occupancy
      // scan proved empty, and two distinct buckets inside the 1024-slot
      // horizon can never alias to one slot, so a pulled bucket's slot is
      // always vacant.  Appending is the conservative fallback.
      dest.insert(dest.end(), std::make_move_iterator(node.mapped().begin()),
                  std::make_move_iterator(node.mapped().end()));
    }
    mark_occupied(slot_index);
  }
}

bool EventQueue::ensure_ready() {
  if (early_pending() || instant_pending_ > 0) return true;
  if (early_index_ > 0) {
    early_.clear();
    early_index_ = 0;
  }
  if (size_ == 0) return false;
  if (wheel_count_ == 0) {
    // Nothing on the wheel: jump straight to the first overflow epoch.
    cursor_ = overflow_.begin()->first;
    pull_overflow();
  }
  const std::size_t distance = next_occupied_distance();
  if (distance > 0) {
    cursor_ += static_cast<std::int64_t>(distance);
    pull_overflow();  // the horizon advanced with the cursor
  }
  // Distribute the bucket into its per-offset instant lists.  The bucket
  // vector is in push (= sequence) order and the distribution is stable,
  // so each list ends up in exact (at, sequence) order without sorting.
  const auto slot_index = static_cast<std::size_t>(cursor_) & kWheelMask;
  std::vector<Entry>& bucket = wheel_[slot_index];
  clear_occupied(slot_index);
  wheel_count_ -= bucket.size();
  instant_pending_ = bucket.size();
  instant_offset_ = 0;
  instant_index_ = 0;
  for (const Entry& entry : bucket) {
    const auto offset =
        static_cast<std::size_t>(entry.at.micros) & (kBucketWidth - 1);
    instant_[offset].push_back(entry);
    instant_occupied_[offset >> 6] |= std::uint64_t{1} << (offset & 63);
  }
  bucket.clear();
  return true;
}

void EventQueue::seek_instant() {
  std::size_t word = instant_offset_ >> 6;
  const std::uint64_t bits = instant_occupied_[word] >> (instant_offset_ & 63);
  if (bits != 0) {
    instant_offset_ += static_cast<std::size_t>(std::countr_zero(bits));
    return;
  }
  for (++word; word < instant_occupied_.size(); ++word) {
    if (instant_occupied_[word] != 0) {
      instant_offset_ =
          (word << 6) +
          static_cast<std::size_t>(std::countr_zero(instant_occupied_[word]));
      return;
    }
  }
  instant_offset_ = kBucketWidth;  // nothing left in this bucket
}

SimTime EventQueue::head_at() {
  if (early_pending()) return early_[early_index_].at;
  seek_instant();
  return instant_[instant_offset_][instant_index_].at;
}

void EventQueue::execute_one() {
  // Copy the entry out: executing it may send or schedule, which can
  // grow the list it came from and invalidate references into it.
  Entry entry;
  if (early_pending()) {
    entry = early_[early_index_++];
  } else {
    seek_instant();
    std::vector<Entry>& list = instant_[instant_offset_];
    entry = list[instant_index_++];
    if (instant_index_ >= list.size()) {
      list.clear();
      instant_occupied_[instant_offset_ >> 6] &=
          ~(std::uint64_t{1} << (instant_offset_ & 63));
      ++instant_offset_;
      instant_index_ = 0;
    }
    --instant_pending_;
  }
  --size_;
  now_ = entry.at;
  if (entry.is_delivery) {
    if (sink_ != nullptr) {
      const Delivery single{entry.key, entry.slot};
      sink_->deliver_run(now_, &single, 1);
    }
  } else {
    const Action action = std::move(actions_[entry.slot]);
    actions_[entry.slot] = nullptr;
    action_free_.push_back(entry.slot);
    action();
  }
}

bool EventQueue::step() {
  if (!ensure_ready()) return false;
  execute_one();
  return true;
}

std::size_t EventQueue::drain_ready(std::size_t budget, SimTime until) {
  std::size_t executed = 0;
  while (executed < budget) {
    if (early_pending()) {
      if (early_[early_index_].at > until) break;
      execute_one();
      ++executed;
      continue;
    }
    if (instant_pending_ == 0) break;
    seek_instant();
    std::vector<Entry>& list = instant_[instant_offset_];
    const Entry& head = list[instant_index_];
    // Every entry in one instant list shares a timestamp, so one bound
    // check covers the whole list.
    if (head.at > until) break;
    if (!head.is_delivery || sink_ == nullptr) {
      execute_one();
      ++executed;
      continue;
    }
    // Hand the sink the run of deliveries at this instant; the run is
    // contiguous in the total order, so the receivers observe exactly
    // the sequence they would have seen message by message.
    const SimTime at = head.at;
    std::size_t next = instant_index_;
    const std::size_t limit =
        std::min(list.size(), instant_index_ + (budget - executed));
    // Sized once up front so the copy loop is branch-free on capacity.
    if (batch_scratch_.size() < limit - instant_index_) {
      batch_scratch_.resize(limit - instant_index_);
    }
    Delivery* out = batch_scratch_.data();
    while (next < limit) {
      const Entry& candidate = list[next];
      if (!candidate.is_delivery) break;
      *out++ = Delivery{candidate.key, candidate.slot};
      ++next;
    }
    const std::size_t n = next - instant_index_;
    instant_index_ = next;
    instant_pending_ -= n;
    size_ -= n;
    executed += n;
    now_ = at;
    sink_->deliver_run(at, batch_scratch_.data(), n);  // n <= scratch size
    // Clean up after the sink call: handlers may have appended to the
    // list (same-instant sends), in which case it is not exhausted.
    if (instant_index_ >= list.size()) {
      list.clear();
      instant_occupied_[instant_offset_ >> 6] &=
          ~(std::uint64_t{1} << (instant_offset_ & 63));
      ++instant_offset_;
      instant_index_ = 0;
    }
  }
  return executed;
}

std::size_t EventQueue::run(std::size_t max_events) {
  constexpr SimTime kNoBound{std::numeric_limits<std::int64_t>::max()};
  std::size_t executed = 0;
  while (executed < max_events && ensure_ready()) {
    executed += drain_ready(max_events - executed, kNoBound);
  }
  return executed;
}

std::size_t EventQueue::run_until(SimTime until, std::size_t max_events) {
  std::size_t executed = 0;
  while (executed < max_events && ensure_ready() && head_at() <= until) {
    executed += drain_ready(max_events - executed, until);
  }
  return executed;
}

std::optional<SimTime> EventQueue::next_time() {
  if (!ensure_ready()) return std::nullopt;
  return head_at();
}

}  // namespace fnda
