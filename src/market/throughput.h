// Throughput workload: ZI-trader sessions on the sharded exchange.
//
// Drives `clients` zero-intelligence traders (random valuations, truthful
// declarations — the ZI-C budget constraint) through `rounds` call-market
// rounds on a MultiServerExchange, and reports the message/bid/trade
// volumes the session generated.  The bench and the CLI `market-bench`
// subcommand wrap this with wall-clock timing; keeping the workload here
// makes the experiment reproducible from both.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/live_book.h"
#include "core/protocol.h"
#include "market/bus.h"
#include "market/clock.h"
#include "market/epoch.h"
#include "obs/telemetry.h"

namespace fnda {

struct ThroughputConfig {
  std::size_t clients = 10'000;
  std::size_t rounds = 3;
  std::size_t shards = 4;
  /// Worker threads driving the shards (0 = hardware concurrency,
  /// clamped to `shards`).  Results are bit-identical for every value.
  std::size_t threads = 1;
  double drop_probability = 0.0;
  double duplicate_probability = 0.0;
  /// Bus latency model (jitter spreads same-round submissions over time).
  SimTime base_latency{1'000};
  SimTime jitter{500};
  SimTime open_for = SimTime::millis(100);
  /// Completed rounds retained per shard; bounds memory in long sessions.
  std::size_t retained_rounds = 2;
  std::uint64_t seed = 1;
  /// Adaptive epoch windows (MultiExchangeConfig::adaptive_epochs); off
  /// forces the fixed-lookahead schedule — the bench's barrier-crossing
  /// baseline.  Either setting is bit-identical for every `threads`.
  bool adaptive = true;
  /// ZI valuation range (units).
  std::int64_t value_low = 1;
  std::int64_t value_high = 100;
  /// Session telemetry; sim-time mode keeps the snapshot and trace
  /// bit-identical for every `threads` value.
  obs::TelemetryOptions telemetry{};
};

struct ThroughputResult {
  std::size_t clients = 0;
  std::size_t rounds = 0;
  std::size_t shards = 0;
  /// Resolved worker count the session actually ran with.
  std::size_t threads = 0;
  std::size_t bids_accepted = 0;
  std::size_t trades = 0;
  SimTime sim_time{};
  /// Merged transport counters (conservation holds here)...
  BusStats bus{};
  /// ...and the per-shard breakdown, for load-imbalance reporting.
  std::vector<BusStats> shard_bus;
  /// Merged incremental-ranking counters across all shards (inserts,
  /// entries shifted, tie fixups; sorts_at_close stays 0 — the bench
  /// records these as the zero-sort-at-close evidence).
  LiveBookStats book{};
  /// Epoch-driver counters accumulated across the whole session: epochs,
  /// injections, barrier crossings, widened windows.  Identical for
  /// every `threads` value; the bench's adaptive-vs-fixed comparison
  /// reads `epoch.barriers`.
  EpochStats epoch{};
  /// Unified session metrics (empty when telemetry was disabled), merged
  /// driver-then-shards in shard order at session end.
  obs::MetricsSnapshot metrics;
  /// Flushed trace spans (empty when telemetry was disabled).
  obs::TraceLog trace;
};

/// Runs one ZI session and returns its volumes.  Deterministic in
/// `config.seed`.
ThroughputResult run_throughput_session(const DoubleAuctionProtocol& protocol,
                                        const ThroughputConfig& config);

}  // namespace fnda
