// Conservative epoch synchronization for the sharded exchange.
//
// Classic conservative parallel discrete-event execution: with every
// cross-shard message taking at least `lookahead` of simulated time to
// arrive, all events in the window [T, T + lookahead) are causally
// independent across shards — a message sent at t >= T arrives at
// t + lookahead, beyond the window.  Each epoch is two phases separated
// by barriers, with almost all work on the workers:
//
//   1. (inject phase, parallel) workers claim shards from an atomic
//      cursor; for each claimed shard they drain its inbound mailbox,
//      sort the inbox by (deliver_at, source_shard, sequence), inject the
//      envelopes into the shard's bus, and publish the shard's next-event
//      time into its lane;
//   2. (window barrier, serial completion) the driver reduces the
//      per-lane minima, computes the next window — fixed lookahead, or
//      wider when the adaptive policy proves a larger causal bound — and
//      folds stall/injection accounting;
//   3. (run phase, parallel) workers claim shards again and run each
//      claimed queue up to the window end, staging cross-shard sends
//      into mailboxes;
//   4. (drain barrier, serial completion) per-shard stall accounting;
//      the cycle repeats until no shard has pending events and every
//      mailbox is empty.
//
// Dynamic claiming doubles as load balancing: when several shards close
// rounds at the same epoch boundary, the clearing/validation work fans
// out across the worker pool instead of serializing behind a static
// stride, and a worker that finishes a cheap shard immediately claims
// the next.
//
// Determinism: within a phase each claimed shard is touched by exactly
// one worker, phases are barrier-separated, and the only cross-thread
// artifact — mailbox contents — is re-ordered into a canonical total
// order before injection.  The adaptive window is computed from the
// lane minima, which are a pure function of event history.  Delivery
// order, tie-breaking, and RNG draw order are therefore bit-identical
// for every worker count, including 1.
//
// Adaptive windows (on by default; see DESIGN.md §2h for the safety
// argument):
//   * fabric topology kIsolated, or a single shard: no cross-shard
//     message can exist, the causal bound is infinite, and every drive
//     collapses to one epoch that runs each shard to quiescence;
//   * otherwise, when the two smallest shard head times m1 <= m2 are at
//     least two lookaheads apart, only the m1-shard can execute — the
//     window widens to min(m2 - lookahead, m1 + 2*lookahead - 1), both
//     caps required: the first keeps every other shard idle until its
//     own traffic is injected, the second keeps the running shard from
//     outpacing the earliest possible response to its own sends.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <limits>
#include <vector>

#include "common/arena.h"
#include "market/bus.h"
#include "market/clock.h"
#include "market/fabric.h"
#include "obs/telemetry.h"

namespace fnda {

/// One shard's event loop as seen by the driver.
struct EpochShard {
  EventQueue* queue = nullptr;
  MessageBus* bus = nullptr;
};

struct EpochStats {
  std::size_t epochs = 0;    // windows executed
  std::size_t injected = 0;  // mailbox envelopes delivered to shard queues
  std::size_t barriers = 0;  // barrier crossings (window + drain syncs)
  std::size_t widened = 0;   // epochs whose window exceeded the lookahead

  void merge(const EpochStats& other) {
    epochs += other.epochs;
    injected += other.injected;
    barriers += other.barriers;
    widened += other.widened;
  }
};

/// Drives a set of per-shard event loops to quiescence on `threads`
/// workers.  Stateless between drives; construct once per exchange and
/// call drive() whenever work is pending.
class EpochDriver {
 public:
  /// `lookahead` must be a lower bound on cross-shard latency (>= 1 µs).
  /// `adaptive` enables the wide-window policy documented above; turning
  /// it off forces the fixed-lookahead conservative schedule (the bench's
  /// barrier-reduction baseline).
  EpochDriver(Fabric& fabric, std::vector<EpochShard> shards,
              SimTime lookahead, bool adaptive = true);

  /// Runs until every queue and mailbox is empty.  `threads` is clamped
  /// to [1, shard_count]; the calling thread is worker 0.  If a shard's
  /// event handler throws, every worker stops at the next window barrier
  /// and the lowest-shard-index exception is rethrown here — no hang, no
  /// partial epoch on other shards beyond the one in flight.
  EpochStats drive(std::size_t threads);

  /// Bounded drive: like drive(), but shard `s` executes only events
  /// strictly before `bounds[s]` (one entry per shard).  Events at or
  /// beyond the bound stay queued — the drive reports quiescence once no
  /// shard has a pending event below its bound and every mailbox has been
  /// drained into its queue — and a later drive()/drive_until() resumes
  /// them.  A bounded shard never executes, so it never sends; the
  /// conservative window arithmetic is unchanged, its inputs are just the
  /// bound-clamped shard heads.  Used by the adversarial co-simulation to
  /// stop every shard mid-round (before its round close) while attack
  /// searches overlap on background threads.
  EpochStats drive_until(const std::vector<SimTime>& bounds,
                         std::size_t threads);

  /// Wires the driver into the session telemetry: cumulative epoch,
  /// injection, barrier-crossing, and widened-window counters (the
  /// per-drive EpochStats struct stays the drive() return value), a
  /// sim-time epoch-advance histogram, a bounded-window-width histogram,
  /// and a per-shard queue-depth sample at every inject phase.  In
  /// wallclock mode the serial completion step is additionally timed
  /// into a barrier-stall histogram and each shard's wait between
  /// finishing its run phase and the drain barrier into a per-shard
  /// stall histogram — the deliberately nondeterministic metrics.
  void bind_telemetry(obs::SessionTelemetry& session);

  SimTime lookahead() const { return lookahead_; }
  bool adaptive() const { return adaptive_; }

 private:
  /// lane.next value for a shard with an empty queue.
  static constexpr std::int64_t kEmpty =
      std::numeric_limits<std::int64_t>::max();

  /// Per-shard state with per-phase ownership: written only by the
  /// worker that claimed the shard in the current phase (or by the
  /// serial completion step); barriers separate the phases.  Padded so
  /// concurrently-claimed neighbours never share a cache line.
  struct alignas(64) ShardLane {
    /// Drain buffer (capacity persists across epochs, so a warm lane
    /// allocates nothing).  The fat envelopes stay put where the drain
    /// wrote them; ordering happens on 24-byte merge keys in the arena
    /// and injection walks pointers.
    std::vector<RemoteEnvelope> inbox;
    /// Merge scratch (keys + pointer batches); reset per epoch, so
    /// high-water tracks this shard's largest single inbox.
    MonotonicArena arena;
    std::int64_t next = kEmpty;     ///< queue head after injection
    std::size_t injected = 0;       ///< envelopes injected this epoch
    std::int64_t run_end_wall = 0;  ///< wallclock at end of run phase
  };

  /// Parallel phases (run on every worker) and serial barrier
  /// completions (run on exactly one thread while the others are parked
  /// inside the barrier, whose release edge publishes the writes).
  void inject_phase() noexcept;
  void run_phase() noexcept;
  void advance_window() noexcept;  // window barrier completion
  void finish_run() noexcept;      // drain barrier completion
  EpochStats drive_impl(std::size_t threads);

  Fabric& fabric_;
  std::vector<EpochShard> shards_;
  SimTime lookahead_;
  bool adaptive_;
  /// Per-shard execution bounds for the current drive (null: unbounded).
  const std::vector<SimTime>* bounds_ = nullptr;

  // Epoch state, written by the barrier completion steps.
  SimTime epoch_end_{};
  SimTime epoch_start_{};
  bool epoch_unbounded_ = false;
  bool stop_ = false;
  EpochStats stats_;
  std::deque<ShardLane> lanes_;  // deque: ShardLane is pinned (arena)
  std::size_t workers_ = 1;
  alignas(64) std::atomic<std::size_t> inject_claim_{0};
  alignas(64) std::atomic<std::size_t> run_claim_{0};
  std::vector<std::exception_ptr> errors_;
  std::atomic<bool> failed_{false};

  // Telemetry (null/empty until bind_telemetry).  Lifetime counters feed
  // the registry; per-drive stats_ remains the drive() contract.
  obs::SessionTelemetry* telemetry_ = nullptr;
  EpochStats lifetime_;
  obs::Histogram* epoch_advance_hist_ = nullptr;
  obs::Histogram* window_hist_ = nullptr;         // bounded windows only
  obs::Histogram* barrier_stall_hist_ = nullptr;  // wallclock mode only
  std::vector<obs::Histogram*> depth_hists_;      // one per shard
  std::vector<obs::Gauge*> depth_peaks_;          // one per shard
  std::vector<obs::Histogram*> shard_stall_hists_;  // wallclock mode only
  SimTime last_epoch_start_{};
  bool first_epoch_of_drive_ = true;
};

}  // namespace fnda
