// Conservative epoch synchronization for the sharded exchange.
//
// Classic conservative parallel discrete-event execution: with every
// cross-shard message taking at least `lookahead` of simulated time to
// arrive, all events in the window [T, T + lookahead) are causally
// independent across shards — a message sent at t >= T arrives at
// t + lookahead, beyond the window.  So the driver repeatedly:
//
//   1. (barrier completion, single-threaded) drains every shard's inbound
//      mailbox, sorts each inbox by (deliver_at, source_shard, sequence),
//      injects the envelopes into the destination bus, then sets the next
//      epoch horizon from the global minimum next-event time;
//   2. (all workers, parallel) each worker runs its shards' queues up to
//      the horizon, staging any cross-shard sends into mailboxes;
//   3. workers meet at the barrier and the cycle repeats until no shard
//      has pending events and every mailbox is empty.
//
// Determinism: within an epoch each shard's execution is sequential on
// its own queue, and the only cross-thread artifact — mailbox contents —
// is re-ordered into a canonical total order before injection.  Delivery
// order, tie-breaking, and RNG draw order are therefore bit-identical
// for every worker count, including 1.
#pragma once

#include <atomic>
#include <cstddef>
#include <exception>
#include <vector>

#include "common/arena.h"
#include "market/bus.h"
#include "market/clock.h"
#include "market/fabric.h"
#include "obs/telemetry.h"

namespace fnda {

/// One shard's event loop as seen by the driver.
struct EpochShard {
  EventQueue* queue = nullptr;
  MessageBus* bus = nullptr;
};

struct EpochStats {
  std::size_t epochs = 0;    // barrier cycles executed
  std::size_t injected = 0;  // mailbox envelopes delivered to shard queues
};

/// Drives a set of per-shard event loops to quiescence on `threads`
/// workers.  Stateless between drives; construct once per exchange and
/// call drive() whenever work is pending.
class EpochDriver {
 public:
  /// `lookahead` must be a lower bound on cross-shard latency (>= 1 µs).
  EpochDriver(Fabric& fabric, std::vector<EpochShard> shards,
              SimTime lookahead);

  /// Runs until every queue and mailbox is empty.  `threads` is clamped
  /// to [1, shard_count]; the calling thread is worker 0.  If a shard's
  /// event handler throws, every worker stops at the next barrier and
  /// the lowest-shard-index exception is rethrown here — no hang, no
  /// partial epoch on other shards beyond the one in flight.
  EpochStats drive(std::size_t threads);

  /// Wires the driver into the session telemetry: cumulative epoch and
  /// injection counters (the per-drive EpochStats struct stays the
  /// drive() return value), a sim-time epoch-advance histogram, and a
  /// per-shard queue-depth sample at every barrier.  In wallclock mode
  /// the serial completion step is additionally timed into a barrier-
  /// stall histogram — the one deliberately nondeterministic metric.
  /// All recording happens in the single-threaded completion step.
  void bind_telemetry(obs::SessionTelemetry& session);

  SimTime lookahead() const { return lookahead_; }

 private:
  /// Barrier completion step: inject mailboxes, advance the horizon.
  void advance_epoch() noexcept;

  Fabric& fabric_;
  std::vector<EpochShard> shards_;
  SimTime lookahead_;

  // Per-drive state, written by the barrier completion step (which runs
  // on exactly one thread while all others are blocked at the barrier —
  // the barrier's release edge publishes it).
  SimTime epoch_end_{};
  bool stop_ = false;
  EpochStats stats_;
  /// One drain buffer per shard (capacity persists across epochs, so a
  /// warm driver's barrier step allocates nothing).  The fat envelopes
  /// stay put where the drain wrote them; ordering happens on 24-byte
  /// merge keys in the arena and injection walks pointers.
  std::vector<std::vector<RemoteEnvelope>> inbox_scratch_;
  /// Barrier-step scratch (merge keys + pointer batches); reset per
  /// shard iteration, so high-water tracks the largest single inbox.
  MonotonicArena merge_arena_;
  std::vector<std::exception_ptr> errors_;
  std::atomic<bool> failed_{false};

  // Telemetry (null/empty until bind_telemetry).  Lifetime counters feed
  // the registry; per-drive stats_ remains the drive() contract.
  obs::SessionTelemetry* telemetry_ = nullptr;
  EpochStats lifetime_;
  obs::Histogram* epoch_advance_hist_ = nullptr;
  obs::Histogram* barrier_stall_hist_ = nullptr;  // wallclock mode only
  std::vector<obs::Histogram*> depth_hists_;      // one per shard
  std::vector<obs::Gauge*> depth_peaks_;          // one per shard
  SimTime last_epoch_start_{};
  bool first_epoch_of_drive_ = true;
};

}  // namespace fnda
