// Append-only audit log.
//
// Every externally visible event at the exchange — round lifecycle, bid
// acceptance/rejection, clears, deliveries, confiscations — is recorded
// with its simulated timestamp.  The log supports filtering for tests and
// a compact dump for the examples.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/ids.h"
#include "market/clock.h"

namespace fnda {

enum class AuditKind {
  kRoundOpened,
  kBidAccepted,
  kBidRejected,
  kRoundCleared,
  kDelivery,
  kDeliveryFailed,
  kDepositConfiscated,
  kDepositRefunded,
};

const char* to_string(AuditKind kind);

struct AuditRecord {
  SimTime at;
  RoundId round;
  AuditKind kind;
  std::string detail;
};

class AuditLog {
 public:
  void append(SimTime at, RoundId round, AuditKind kind, std::string detail);

  const std::vector<AuditRecord>& records() const { return records_; }
  std::size_t count(AuditKind kind) const;
  std::vector<AuditRecord> for_round(RoundId round) const;

  /// One line per record: "t=12000 round-0 bid-accepted id-3 buyer@9".
  std::string dump() const;

 private:
  std::vector<AuditRecord> records_;
};

}  // namespace fnda
