#include "market/server.h"

#include <bit>
#include <stdexcept>

#include "common/logging.h"

namespace fnda {
namespace {

// Audit-detail formatting runs once per accepted/rejected bid, squarely on
// the submission hot path.  Each overload appends exactly what the
// corresponding operator<< would stream (ids are prefix + decimal, Money
// is Money::to_string), so detail lines are byte-identical to the old
// ostringstream path without paying its locale machinery per call.
inline void append_part(std::string& out, char c) { out += c; }
inline void append_part(std::string& out, const char* s) { out += s; }
inline void append_part(std::string& out, const std::string& s) { out += s; }
inline void append_part(std::string& out, Money m) { out += m.to_string(); }
inline void append_part(std::string& out, std::size_t v) {
  out += std::to_string(v);
}
template <typename Tag>
void append_part(std::string& out, TypedId<Tag> id) {
  out += Tag::prefix();
  out += std::to_string(id.value());
}

/// Concatenates every argument into a string (audit-log detail lines).
template <typename... Parts>
std::string fmt(const Parts&... parts) {
  std::string out;
  (append_part(out, parts), ...);
  return out;
}

}  // namespace

void AuctionServer::SubmittedTable::reset(MonotonicArena& arena,
                                          std::size_t expected_entries) {
  arena_ = &arena;
  // Size for a <=50% load factor at the expected population so the
  // steady state never rehashes; 64 floors the first round.
  std::size_t capacity = 64;
  while (capacity < expected_entries * 2) capacity *= 2;
  slots_ = arena.make_span<Slot>(capacity);
  for (Slot& slot : slots_) slot.key = kEmptyKey;
  mask_ = capacity - 1;
  shift_ = 64 - static_cast<unsigned>(std::countr_zero(capacity));
  size_ = 0;
}

const AuctionServer::SubmittedBid* AuctionServer::SubmittedTable::find(
    IdentityId identity) const {
  const std::uint64_t key = identity.value();
  for (std::size_t i = probe(key);; i = (i + 1) & mask_) {
    const Slot& slot = slots_[i];
    if (slot.key == key) return &slot.bid;
    if (slot.key == kEmptyKey) return nullptr;
  }
}

void AuctionServer::SubmittedTable::insert(IdentityId identity,
                                           const SubmittedBid& bid) {
  if ((size_ + 1) * 2 > slots_.size()) grow();
  const std::uint64_t key = identity.value();
  for (std::size_t i = probe(key);; i = (i + 1) & mask_) {
    Slot& slot = slots_[i];
    if (slot.key == kEmptyKey) {
      slot.key = key;
      slot.bid = bid;
      ++size_;
      return;
    }
  }
}

void AuctionServer::SubmittedTable::grow() {
  const std::span<Slot> old = slots_;
  const std::size_t capacity = old.size() * 2;
  slots_ = arena_->make_span<Slot>(capacity);
  for (Slot& slot : slots_) slot.key = kEmptyKey;
  mask_ = capacity - 1;
  shift_ = 64 - static_cast<unsigned>(std::countr_zero(capacity));
  for (const Slot& slot : old) {
    if (slot.key == kEmptyKey) continue;
    for (std::size_t i = probe(slot.key);; i = (i + 1) & mask_) {
      if (slots_[i].key == kEmptyKey) {
        slots_[i] = slot;
        break;
      }
    }
  }
}

AuctionServer::AuctionServer(std::string address, EventQueue& queue,
                             MessageBus& bus,
                             const DoubleAuctionProtocol& protocol,
                             EscrowService& escrow,
                             SettlementEngine& settlement, AuditLog& audit,
                             Rng rng, ServerConfig config)
    : address_(std::move(address)),
      queue_(queue),
      bus_(bus),
      protocol_(&protocol),
      escrow_(escrow),
      settlement_(settlement),
      audit_(audit),
      rng_(rng),
      config_(config) {
  address_id_ = bus_.attach(address_, *this);
}

void AuctionServer::bind_telemetry(obs::ShardTelemetry& telemetry,
                                   const obs::SessionTelemetry& session) {
  session_telemetry_ = &session;
  trace_ = &telemetry.trace;
  obs::MetricsRegistry& registry = telemetry.metrics;
  registry.counter_fn("fnda_book_inserts_total",
                      [this] { return live_book_.stats().inserts; });
  registry.counter_fn("fnda_book_entries_shifted_total",
                      [this] { return live_book_.stats().entries_shifted; });
  registry.counter_fn("fnda_book_tie_entries_permuted_total", [this] {
    return live_book_.stats().tie_entries_permuted;
  });
  registry.counter_fn("fnda_book_sorts_at_close_total",
                      [this] { return live_book_.stats().sorts_at_close; });
  registry.counter_fn("fnda_book_chunk_splits_total",
                      [this] { return live_book_.stats().chunk_splits; });
  // Monotone by construction (a high-water mark), so it is exposed as a
  // counter and merges deterministically.
  registry.counter_fn("fnda_server_round_arena_high_water_bytes", [this] {
    return static_cast<std::uint64_t>(round_arena_.stats().high_water);
  });
  registry.counter_fn("fnda_server_rounds_closed_total", [this] {
    return static_cast<std::uint64_t>(completed_count_);
  });
  round_bids_hist_ = &registry.histogram("fnda_server_round_bids");
  round_trades_hist_ = &registry.histogram("fnda_server_round_trades");
  if (session.wallclock()) {
    round_close_wall_hist_ =
        &registry.histogram("fnda_server_round_close_us");
  }
}

void AuctionServer::subscribe(const std::string& address) {
  subscribers_.push_back(bus_.intern(address));
}

void AuctionServer::subscribe(AddressId address) {
  subscribers_.push_back(address);
}

void AuctionServer::set_protocol(const DoubleAuctionProtocol& protocol) {
  if (open_round_.has_value()) {
    throw std::logic_error(
        "AuctionServer::set_protocol: a round is open; the protocol in "
        "force at open_round() clears it");
  }
  protocol_ = &protocol;
}

void AuctionServer::set_config(const ServerConfig& config) {
  if (open_round_.has_value()) {
    throw std::logic_error(
        "AuctionServer::set_config: a round is open; the config in force "
        "at open_round() governs it");
  }
  config_ = config;
  // A tightened retention cap evicts immediately; waiting for the next
  // clear would briefly hold more rounds than the operator asked for.
  if (config_.retained_rounds > 0) {
    while (completion_order_.size() > config_.retained_rounds) {
      completed_.erase(completion_order_.front());
      completion_order_.pop_front();
    }
  }
}

RoundId AuctionServer::open_round(SimTime open_for) {
  if (open_round_.has_value()) {
    throw std::logic_error("AuctionServer: a round is already open");
  }
  const RoundId id{next_round_++};
  const SimTime close_at = queue_.now() + open_for;
  live_book_.reset(config_.domain);
  // The previous round's arena-backed scratch (its submitted table) is
  // dead by now — clear_round finished reading it — so the whole arena
  // recycles here and the table sizes itself off the last population.
  round_arena_.reset();
  open_round_.emplace(OpenRound{id, close_at, queue_.now(), rng_(), {}});
  open_round_->submitted.reset(round_arena_, last_round_bids_);
  audit_.append(queue_.now(), id, AuditKind::kRoundOpened, "");

  announce_round(*open_round_);
  schedule_announcements(id);
  queue_.schedule_at(close_at, [this, id] {
    // Guard against stale closures if the round set ever changes shape.
    if (open_round_.has_value() && open_round_->id == id) clear_round();
  });
  return id;
}

void AuctionServer::announce_round(const OpenRound& round) {
  for (const AddressId subscriber : subscribers_) {
    bus_.send(address_id_, subscriber, RoundOpenMsg{round.id, round.close_at});
  }
}

void AuctionServer::schedule_announcements(RoundId id) {
  if (config_.announce_interval.micros <= 0) return;
  queue_.schedule_after(config_.announce_interval, [this, id] {
    if (!open_round_.has_value() || open_round_->id != id) return;
    if (queue_.now() >= open_round_->close_at) return;
    announce_round(*open_round_);
    schedule_announcements(id);
  });
}

void AuctionServer::on_message(const Envelope& envelope) {
  // At-least-once transport: duplicates share a MessageId and are ignored.
  if (!dedup_.fresh(envelope.id)) return;
  if (const auto* msg = std::get_if<SubmitBidMsg>(&envelope.payload)) {
    EscrowCache cache;
    handle_submit(envelope, *msg, cache);
  }
  // Other message kinds are client-bound; a server receiving one ignores it.
}

void AuctionServer::on_batch(const Envelope* const* envelopes,
                             std::size_t count) {
  // Same-instant volley: the escrow cache survives across the batch, so
  // a retransmission run from one identity probes escrow once.
  EscrowCache cache;
  for (std::size_t i = 0; i < count; ++i) {
    const Envelope& envelope = *envelopes[i];
    if (!dedup_.fresh(envelope.id)) continue;
    if (const auto* msg = std::get_if<SubmitBidMsg>(&envelope.payload)) {
      handle_submit(envelope, *msg, cache);
    }
  }
}

void AuctionServer::reject(const Envelope& envelope, const SubmitBidMsg& msg,
                           const std::string& reason) {
  audit_.append(queue_.now(), msg.round, AuditKind::kBidRejected,
                fmt(msg.identity, ' ', to_string(msg.side), '@', msg.value,
                    ": ", reason));
  bus_.send(address_id_, envelope.from,
            BidAckMsg{msg.round, msg.identity, false, reason});
}

void AuctionServer::handle_submit(const Envelope& envelope,
                                  const SubmitBidMsg& msg,
                                  EscrowCache& cache) {
  if (!open_round_.has_value() || open_round_->id != msg.round) {
    reject(envelope, msg, "round not open");
    return;
  }
  OpenRound& round = *open_round_;
  if (const SubmittedBid* existing = round.submitted.find(msg.identity)) {
    if (existing->side == msg.side && existing->value == msg.value) {
      // Identical retransmission (at-least-once client): ack idempotently.
      bus_.send(address_id_, envelope.from,
                BidAckMsg{msg.round, msg.identity, true, ""});
    } else {
      reject(envelope, msg, "identity already bid this round");
    }
    return;
  }
  if (msg.identity != cache.identity) {
    cache.identity = msg.identity;
    cache.held = escrow_.held(msg.identity);
  }
  if (cache.held < config_.min_deposit) {
    reject(envelope, msg, "insufficient deposit");
    return;
  }
  if (msg.value < config_.domain.lowest || msg.value > config_.domain.highest) {
    reject(envelope, msg, "value outside domain");
    return;
  }

  live_book_.add(msg.side, msg.identity, msg.value);
  round.submitted.insert(msg.identity,
                         SubmittedBid{envelope.from, msg.side, msg.value});
  audit_.append(queue_.now(), msg.round, AuditKind::kBidAccepted,
                fmt(msg.identity, ' ', to_string(msg.side), '@', msg.value));
  bus_.send(address_id_, envelope.from,
            BidAckMsg{msg.round, msg.identity, true, ""});
}

void AuctionServer::clear_round() {
  OpenRound round = std::move(*open_round_);
  open_round_.reset();
  const std::int64_t close_wall_start =
      round_close_wall_hist_ != nullptr ? session_telemetry_->wall_micros()
                                        : 0;

  // The book is already ranked (every accepted bid was galloping-inserted
  // at its rank), so round close pays zero sort work: freeze the
  // footnote-5 tie-breaking — consuming exactly the draws the old
  // sort-at-close path made, keeping outcomes and replays bit-identical —
  // and hand the protocol the ranked view directly.
  Rng clear_rng(round.clear_seed);
  live_book_.finalize_ties(clear_rng);
  const Rng replay_rng = clear_rng;  // post-ranking stream, for replays
  SortedBook ranked = live_book_.to_sorted();
  Outcome outcome = protocol_->clear_sorted(ranked, clear_rng);
  expect_valid_outcome(ranked, outcome, validation_scratch_);
  last_round_bids_ = round.submitted.size();

  audit_.append(queue_.now(), round.id, AuditKind::kRoundCleared,
                fmt(outcome.trade_count(), " trades, revenue ",
                    outcome.auctioneer_revenue()));

  for (const Fill& fill : outcome.fills()) {
    const SubmittedBid* submitted = round.submitted.find(fill.identity);
    if (submitted == nullptr) continue;
    bus_.send(address_id_, submitted->reply_to,
              FillNoticeMsg{round.id, fill.identity, fill.side, fill.price});
  }
  for (const AddressId subscriber : subscribers_) {
    bus_.send(address_id_, subscriber,
              RoundClosedMsg{round.id, outcome.trade_count(),
                             outcome.auctioneer_revenue()});
  }

  SettlementReport report = settlement_.settle(round.id, outcome);
  for (const Delivery& delivery : report.deliveries) {
    if (delivery.delivered) {
      audit_.append(queue_.now(), round.id, AuditKind::kDelivery,
                    fmt(delivery.seller, " -> ", delivery.buyer));
      continue;
    }
    audit_.append(queue_.now(), round.id, AuditKind::kDeliveryFailed,
                  fmt(delivery.seller));
    if (delivery.confiscated > Money{}) {
      audit_.append(queue_.now(), round.id, AuditKind::kDepositConfiscated,
                    fmt(delivery.seller, ' ', delivery.confiscated));
    }
    const SubmittedBid* seller = round.submitted.find(delivery.seller);
    if (seller != nullptr) {
      bus_.send(address_id_, seller->reply_to,
                SettlementNoticeMsg{round.id, delivery.seller, false,
                                    delivery.confiscated});
    }
  }

  if (log_enabled(LogLevel::kInfo)) {
    // Operational round-close record (off by default: threshold is kWarn).
    // Surplus here is *declared* surplus — the gain traders' declarations
    // imply at the clearing prices; true valuations are invisible to the
    // server, exactly as in the paper's model.
    Money declared_surplus{};
    for (const Fill& fill : outcome.fills()) {
      const SubmittedBid* submitted = round.submitted.find(fill.identity);
      if (submitted == nullptr) continue;
      declared_surplus = declared_surplus + (fill.side == Side::kBuyer
                                                 ? submitted->value - fill.price
                                                 : fill.price - submitted->value);
    }
    FNDA_LOG(kInfo) << "round-close server=" << address_
                    << " round=" << round.id.value()
                    << " bids=" << round.submitted.size()
                    << " trades=" << outcome.trade_count()
                    << " declared_surplus=" << declared_surplus.to_string()
                    << " revenue=" << outcome.auctioneer_revenue().to_string()
                    << " seized=" << report.confiscated_total.to_string();
  }

  const std::size_t trade_count = outcome.trade_count();
  completed_.emplace(round.id,
                     CompletedRound{round.id, std::move(ranked),
                                    round.clear_seed, replay_rng, protocol_,
                                    std::move(outcome), std::move(report)});
  completion_order_.push_back(round.id);
  ++completed_count_;
  if (config_.retained_rounds > 0) {
    while (completion_order_.size() > config_.retained_rounds) {
      completed_.erase(completion_order_.front());
      completion_order_.pop_front();
    }
  }

  if (round_bids_hist_ != nullptr) {
    round_bids_hist_->record(static_cast<std::int64_t>(round.submitted.size()));
    round_trades_hist_->record(static_cast<std::int64_t>(trade_count));
    if (round_close_wall_hist_ != nullptr) {
      // Wallclock mode: the histogram carries the real clearing cost and
      // the span carries wall timestamps from the sink's session clock.
      const std::int64_t close_wall =
          session_telemetry_->wall_micros() - close_wall_start;
      round_close_wall_hist_->record(close_wall);
      trace_->record_span("clear-round", "server", close_wall_start,
                          close_wall);
    } else {
      // Sim mode: one span per round covering [opened_at, close] — a
      // deterministic timeline of the auction lifecycle.
      trace_->record_span("round", "server", round.opened_at.micros,
                          (queue_.now() - round.opened_at).micros);
    }
  }
}

const Outcome* AuctionServer::outcome_of(RoundId round) const {
  auto it = completed_.find(round);
  return it == completed_.end() ? nullptr : &it->second.outcome;
}

const SettlementReport* AuctionServer::settlement_of(RoundId round) const {
  auto it = completed_.find(round);
  return it == completed_.end() ? nullptr : &it->second.settlement;
}

const SortedBook* AuctionServer::ranked_of(RoundId round) const {
  auto it = completed_.find(round);
  return it == completed_.end() ? nullptr : &it->second.ranked;
}

std::optional<SimTime> AuctionServer::round_closes_at() const {
  if (!open_round_.has_value()) return std::nullopt;
  return open_round_->close_at;
}

std::optional<Outcome> AuctionServer::replay_round(RoundId round) const {
  auto it = completed_.find(round);
  if (it == completed_.end()) return std::nullopt;
  // The retained view is already ranked and tie-broken; resuming from the
  // post-ranking RNG state re-runs only the protocol itself, exactly as
  // the original clear did.
  Rng clear_rng = it->second.replay_rng;
  return it->second.protocol->clear_sorted(it->second.ranked, clear_rng);
}

}  // namespace fnda
