#include "market/ledger.h"

namespace fnda {

void CashLedger::grant(AccountId account, Money amount) {
  balances_[account] += amount;
}

void CashLedger::transfer(AccountId from, AccountId to, Money amount) {
  balances_[from] -= amount;
  balances_[to] += amount;
}

Money CashLedger::balance(AccountId account) const {
  auto it = balances_.find(account);
  return it == balances_.end() ? Money{} : it->second;
}

Money CashLedger::total() const {
  Money sum;
  for (const auto& [account, balance] : balances_) sum += balance;
  return sum;
}

void GoodsLedger::grant(AccountId account, std::size_t units) {
  units_[account] += units;
}

bool GoodsLedger::transfer_unit(AccountId from, AccountId to) {
  auto it = units_.find(from);
  if (it == units_.end() || it->second == 0) return false;
  --it->second;
  ++units_[to];
  return true;
}

std::size_t GoodsLedger::units(AccountId account) const {
  auto it = units_.find(account);
  return it == units_.end() ? 0 : it->second;
}

std::size_t GoodsLedger::total() const {
  std::size_t sum = 0;
  for (const auto& [account, units] : units_) sum += units;
  return sum;
}

}  // namespace fnda
