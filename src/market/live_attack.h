// Live-exchange adversarial co-simulation session.
//
// One harness, two metric families from the same run: honest ZI traders
// and false-name attacker accounts share a MultiServerExchange; every
// round the AttackScheduler re-plans the attackers against the previous
// round's book on a background pool (overlapping the round's clearing)
// and injects the planned strategies for the next round.  The session
// reports mechanism-level outcomes (planned manipulation gain, attack
// success rate, realized-vs-efficient surplus ratio) alongside
// systems-level outcomes (per-round wall latency, ns/message, shed rate)
// — the live axis of bench/robustness_attacks, see DESIGN.md §2j.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/protocol.h"
#include "market/bus.h"
#include "market/clock.h"
#include "market/epoch.h"
#include "mechanism/search_telemetry.h"
#include "obs/telemetry.h"

namespace fnda {

struct LiveAttackConfig {
  /// Honest zero-intelligence traders (truthful, random valuations).
  std::size_t honest = 200;
  /// False-name attacker accounts (deferred clients re-planned per round).
  std::size_t attackers = 16;
  std::size_t rounds = 4;
  std::size_t shards = 2;
  /// Exchange worker threads (0 = hardware).  Output is bit-identical for
  /// every value — including the co-simulation's injections.
  std::size_t threads = 1;
  /// Background search-pool threads (also output-invariant).
  std::size_t search_threads = 1;
  /// Attack searches per planning round (0 = whole population); excess
  /// attackers are shed deterministically and replay their prior plan.
  std::size_t search_budget = 0;
  /// Warm-start wrapper on/off (off = cold search every round — the
  /// baseline the warm-speedup gate compares against).
  bool warm = true;
  std::size_t max_declarations = 2;
  /// Fixed evenly spaced declaration grid size over [value_low,
  /// value_high]: keeps per-search cost independent of the population.
  std::size_t grid_points = 9;
  SimTime open_for = SimTime::millis(100);
  /// Bus latency model.  base_latency + jitter must stay below
  /// open_for/2: deferred attacker bids are injected at the bounded-drive
  /// stop (open_for/2 before close) and must still arrive in time.
  SimTime base_latency{1'000};
  SimTime jitter{500};
  /// Completed rounds retained per shard (clamped to >= 2: round r's book
  /// must survive while round r+1 completes).
  std::size_t retained_rounds = 2;
  std::uint64_t seed = 1;
  std::int64_t value_low = 1;
  std::int64_t value_high = 100;
  bool adaptive = true;
  obs::TelemetryOptions telemetry{};
};

struct LiveAttackResult {
  std::size_t honest = 0;
  std::size_t attackers = 0;
  std::size_t rounds = 0;
  std::size_t shards = 0;
  std::size_t threads = 0;
  std::size_t search_threads = 0;

  // --- systems level ----------------------------------------------------
  std::size_t bids_accepted = 0;
  std::size_t trades = 0;
  BusStats bus{};
  EpochStats epoch{};
  SimTime sim_time{};
  /// Wall time of each completed round (open → settled), nanoseconds.
  std::vector<std::uint64_t> round_wall_ns;
  std::uint64_t total_wall_ns = 0;

  // --- mechanism level --------------------------------------------------
  AttackSearchCounters attack{};
  /// Summed per-search wall time (the warm-vs-cold speedup numerator).
  std::uint64_t search_wall_ns = 0;
  /// Σ max(0, best − truthful) over all searches (planned gain against
  /// the snapshot the attacker searched; deterministic).
  double planned_gain_total = 0.0;
  std::uint64_t profitable_searches = 0;
  /// Realized surplus (per-fill owner true values, announced) over the
  /// per-round efficient true-value surplus × rounds.
  double efficiency_ratio = 0.0;

  /// FNV-1a digest of the exchange output (per-round fills + final
  /// ledgers/positions).  Pinned by tests at exchange threads 1/2/8 and
  /// search pools 1/2/8 — the co-simulation's determinism contract.
  std::uint64_t digest = 0;
  /// Attack metrics + search-latency histogram (fnda_attack_*).  The
  /// histogram is wall-clock: never digest-pin this snapshot.
  obs::MetricsSnapshot metrics;
};

/// Runs one co-simulation session.  The exchange output (digest, trades,
/// positions) is deterministic in `config.seed` and invariant in both
/// `threads` and `search_threads`; wall-time fields are not.
LiveAttackResult run_live_attack_session(const DoubleAuctionProtocol& protocol,
                                         const LiveAttackConfig& config);

}  // namespace fnda
