// Wire protocol of the simulated call-market exchange.
//
// Identity management and deposit posting are out-of-band (they model the
// account-opening phase); the bidding round itself — open, submit, ack,
// fill, settle — is fully message-based so that latency, duplication and
// loss exercise the server's idempotency logic.
#pragma once

#include <string>
#include <variant>

#include "common/ids.h"
#include "common/money.h"
#include "core/bid.h"
#include "market/clock.h"

namespace fnda {

/// Server -> everyone: a round is accepting bids until `close_at`.
struct RoundOpenMsg {
  RoundId round;
  SimTime close_at;
};

/// Client -> server: one declaration for `round` under `identity`.
struct SubmitBidMsg {
  RoundId round;
  IdentityId identity;
  Side side;
  Money value;
};

/// Server -> client: bid accepted or rejected (with reason).
struct BidAckMsg {
  RoundId round;
  IdentityId identity;
  bool accepted = false;
  std::string reason;
};

/// Server -> client: one unit filled for `identity` at `price`.
struct FillNoticeMsg {
  RoundId round;
  IdentityId identity;
  Side side;
  Money price;
};

/// Server -> everyone: round summary.
struct RoundClosedMsg {
  RoundId round;
  std::size_t trades = 0;
  Money auctioneer_revenue;
};

/// Server -> client: settlement result for a traded seller identity.
struct SettlementNoticeMsg {
  RoundId round;
  IdentityId identity;
  bool delivered = false;
  Money deposit_confiscated;
};

using Message = std::variant<RoundOpenMsg, SubmitBidMsg, BidAckMsg,
                             FillNoticeMsg, RoundClosedMsg,
                             SettlementNoticeMsg>;

/// Short tag for logs ("submit-bid", "fill", ...).
const char* message_kind(const Message& message);

}  // namespace fnda
