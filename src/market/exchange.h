// ExchangeSimulation: one-stop wiring of the whole market substrate.
//
// Owns the event queue, bus, ledgers, registry, escrow, settlement engine,
// audit log, server, and clients, in dependency order.  Examples, benches
// and integration tests use this facade instead of hand-wiring components.
#pragma once

#include <deque>
#include <memory>

#include "market/client.h"
#include "market/server.h"

namespace fnda {

struct ExchangeConfig {
  BusConfig bus{};
  ServerConfig server{};
  ClientConfig client{};
  /// Cash granted to each trader account on creation.
  Money initial_cash = Money::from_units(1'000);
  std::uint64_t seed = 1;
};

class ExchangeSimulation {
 public:
  /// `protocol` must outlive the simulation.
  explicit ExchangeSimulation(const DoubleAuctionProtocol& protocol,
                              ExchangeConfig config = {});

  /// Adds a truthful trader (single own-side declaration of `true_value`).
  /// Sellers are endowed with one unit of the good.
  TradingClient& add_trader(Side role, Money true_value);
  /// Adds a trader playing an arbitrary strategy (attackers).
  TradingClient& add_trader(Side role, Money true_value, Strategy strategy);

  /// Opens one round, runs the event queue to quiescence (all bids,
  /// clearing, fills, settlement, notices), and returns the round id.
  RoundId run_round(SimTime open_for = SimTime::millis(100));

  /// Settlement-truth utility of a trader: change in cash plus change in
  /// valued goods (at most one unit counts), relative to its endowment.
  /// Confiscated deposits and cancelled trades are all reflected here.
  double settled_utility(const TradingClient& client) const;

  /// Ends the trading day: every remaining deposit is returned to the
  /// account behind its identity (confiscated deposits are already gone).
  /// Returns the total refunded.  Throws std::logic_error while a round
  /// is still open.
  Money close_market();

  AuctionServer& server() { return *server_; }
  const AuctionServer& server() const { return *server_; }
  EventQueue& queue() { return queue_; }
  MessageBus& bus() { return *bus_; }
  IdentityRegistry& registry() { return registry_; }
  CashLedger& cash() { return cash_; }
  GoodsLedger& goods() { return goods_; }
  EscrowService& escrow() { return *escrow_; }
  AuditLog& audit() { return audit_; }
  const std::deque<std::unique_ptr<TradingClient>>& traders() const {
    return traders_;
  }

 private:
  ExchangeConfig config_;
  EventQueue queue_;
  std::unique_ptr<MessageBus> bus_;
  IdentityRegistry registry_;
  CashLedger cash_;
  GoodsLedger goods_;
  std::unique_ptr<EscrowService> escrow_;
  std::unique_ptr<SettlementEngine> settlement_;
  AuditLog audit_;
  std::unique_ptr<AuctionServer> server_;
  std::deque<std::unique_ptr<TradingClient>> traders_;
  std::uint64_t next_client_ = 0;
};

}  // namespace fnda
