// Account and identity management.
//
// The paper's threat model in one class: accounts are real economic
// actors, identities are names minted at will.  The auction server never
// queries the account behind an identity (that is the whole point of a
// false-name bid); only settlement — physical delivery — pierces the veil,
// via owner(), which models "the fact that s_y is a false-name bid is
// brought to light".
#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "common/ids.h"

namespace fnda {

class IdentityRegistry {
 public:
  /// Reserved account for the exchange/auctioneer itself.
  static constexpr AccountId exchange_account() { return AccountId{0}; }

  IdentityRegistry() = default;
  /// Strided identity namespace: shard `s` of an S-shard exchange uses
  /// (first = s, stride = S), so every shard mints globally unique
  /// identity ids with no shared counter — and the ids a shard mints do
  /// not depend on what other shards do, which keeps parallel runs
  /// bit-identical.
  IdentityRegistry(std::uint64_t first_identity, std::uint64_t identity_stride)
      : next_identity_(first_identity),
        identity_stride_(identity_stride == 0 ? 1 : identity_stride) {}

  /// Opens a fresh trader account.
  AccountId create_account();

  /// Mints a new identity owned by `account`.  Unlimited and cheap —
  /// identifying participants on the Internet is "virtually impossible".
  IdentityId register_identity(AccountId account);

  /// The account behind an identity.  Settlement-time only.
  /// Throws std::out_of_range for unknown identities.
  AccountId owner(IdentityId identity) const;

  /// All identities minted by one account (audit views).
  std::vector<IdentityId> identities_of(AccountId account) const;

  std::size_t account_count() const { return next_account_ - 1; }
  std::size_t identity_count() const { return owners_.size(); }

 private:
  std::unordered_map<IdentityId, AccountId> owners_;
  std::uint64_t next_account_ = 1;  // 0 is the exchange
  std::uint64_t next_identity_ = 0;
  std::uint64_t identity_stride_ = 1;
};

}  // namespace fnda
