#include "market/attack_scheduler.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

namespace fnda {
namespace {

constexpr std::uint64_t kAccountGamma = 0x9e3779b97f4a7c15ULL;

}  // namespace

AttackScheduler::AttackScheduler(MultiServerExchange& exchange,
                                 AttackSchedulerConfig config)
    : exchange_(exchange), config_(std::move(config)) {
  if (config_.pool_threads == 0) config_.pool_threads = 1;
  snapshots_.resize(exchange_.shard_count());
}

AttackScheduler::~AttackScheduler() {
  try {
    join();
  } catch (...) {
    // Worker exceptions surface at the explicit join(); a scheduler torn
    // down with searches in flight only needs the threads reaped.
  }
}

void AttackScheduler::add_attacker(TradingClient& client) {
  if (inflight_) {
    throw std::logic_error("add_attacker: searches in flight");
  }
  client.set_deferred(true);
  Attacker attacker;
  attacker.client = &client;
  attacker.shard = exchange_.shard_of(client.account());
  attacker.planned = Strategy::truthful(client.role(), client.true_value());
  attackers_.push_back(std::move(attacker));
}

void AttackScheduler::plan_from(const std::vector<RoundId>& rounds) {
  join();
  if (rounds.size() != exchange_.shard_count()) {
    throw std::invalid_argument("plan_from: one RoundId per shard required");
  }
  // Snapshot: copy the retained ranked lanes (already sorted, tie order
  // frozen at clearing) and resolve each entry's owner account so every
  // attacker can subtract its own declarations from the view.
  for (std::size_t s = 0; s < snapshots_.size(); ++s) {
    ShardSnapshot& snap = snapshots_[s];
    snap.buyers.clear();
    snap.sellers.clear();
    snap.buyer_owner.clear();
    snap.seller_owner.clear();
    const SortedBook* ranked = exchange_.server(s).ranked_of(rounds[s]);
    if (ranked == nullptr) continue;  // evicted/unknown: plan on empty book
    const IdentityRegistry& registry = exchange_.registry(s);
    snap.buyers = ranked->buyers();
    snap.sellers = ranked->sellers();
    snap.buyer_owner.reserve(snap.buyers.size());
    for (const BidEntry& entry : snap.buyers) {
      snap.buyer_owner.push_back(registry.owner(entry.identity));
    }
    snap.seller_owner.reserve(snap.sellers.size());
    for (const BidEntry& entry : snap.sellers) {
      snap.seller_owner.push_back(registry.owner(entry.identity));
    }
  }

  // Deterministic shedding: a rotating budget window over the account-
  // ordered population, a pure function of the planning-round index.
  plan_list_.clear();
  const std::size_t population = attackers_.size();
  for (Attacker& attacker : attackers_) attacker.selected = false;
  const std::size_t budget =
      config_.round_budget == 0
          ? population
          : std::min(config_.round_budget, population);
  if (population > 0) {
    const std::size_t start = (plan_rounds_ * budget) % population;
    for (std::size_t k = 0; k < budget; ++k) {
      const std::size_t i = (start + k) % population;
      attackers_[i].selected = true;
      plan_list_.push_back(i);
    }
  }
  counters_.shed += population - budget;
  ++counters_.rounds;
  ++plan_rounds_;

  const std::size_t workers =
      std::max<std::size_t>(1, std::min(config_.pool_threads,
                                        std::max<std::size_t>(
                                            plan_list_.size(), 1)));
  errors_.assign(workers, nullptr);
  next_.store(0, std::memory_order_relaxed);
  inflight_ = true;
  pool_.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    pool_.emplace_back([this, w] {
      try {
        for (;;) {
          const std::size_t slot =
              next_.fetch_add(1, std::memory_order_relaxed);
          if (slot >= plan_list_.size()) return;
          search_one(attackers_[plan_list_[slot]]);
        }
      } catch (...) {
        errors_[w] = std::current_exception();
      }
    });
  }
}

void AttackScheduler::search_one(Attacker& attacker) {
  const auto started = std::chrono::steady_clock::now();
  const ShardSnapshot& snap = snapshots_[attacker.shard];
  const AccountId account = attacker.client->account();

  // Residual view: the shard's ranked lanes minus this account's own
  // declarations, order preserved (erasing entries keeps a sorted lane
  // sorted and the frozen tie order intact).
  std::vector<BidEntry> residual_buyers;
  residual_buyers.reserve(snap.buyers.size());
  for (std::size_t i = 0; i < snap.buyers.size(); ++i) {
    if (snap.buyer_owner[i] == account) continue;
    residual_buyers.push_back(snap.buyers[i]);
  }
  std::vector<BidEntry> residual_sellers;
  residual_sellers.reserve(snap.sellers.size());
  for (std::size_t j = 0; j < snap.sellers.size(); ++j) {
    if (snap.seller_owner[j] == account) continue;
    residual_sellers.push_back(snap.sellers[j]);
  }

  EvalConfig eval;
  eval.replicates = 1;
  // Per-account, round-stable stream: the warm cache key embeds the seed,
  // so a stable seed is what lets an unchanged book hit the cache.
  eval.seed = config_.seed + kAccountGamma * account.value();
  eval.utility = config_.utility;
  const DeviationEvaluator evaluator(
      exchange_.protocol(), exchange_.config().server.domain,
      attacker.client->role(), attacker.client->true_value(), residual_buyers,
      residual_sellers, eval);

  const SearchResult result =
      config_.warm ? find_best_deviation_warm(evaluator, config_.search,
                                              attacker.state)
                   : find_best_deviation(evaluator, config_.search);
  if (!config_.warm) ++attacker.cold_runs;

  attacker.planned = result.best_strategy;
  attacker.gain =
      std::max(0.0, result.best_utility - result.truthful_utility);
  attacker.profitable = result.profitable();
  attacker.wall_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - started)
          .count());
}

void AttackScheduler::join() {
  if (!inflight_) return;
  for (std::thread& thread : pool_) thread.join();
  pool_.clear();
  inflight_ = false;
  for (const std::exception_ptr& error : errors_) {
    if (error) std::rethrow_exception(error);
  }
  // Fold in account order — sums of per-attacker values are independent
  // of which pool worker ran which search, so every counter here is
  // deterministic for any pool size (wall time and latency excepted).
  for (const Attacker& attacker : attackers_) {
    if (!attacker.selected) continue;
    ++counters_.searches;
    search_wall_ns_ += attacker.wall_ns;
    planned_gain_total_ += attacker.gain;
    if (attacker.profitable) ++profitable_searches_;
    if (latency_hist_ != nullptr) {
      latency_hist_->record(
          static_cast<std::int64_t>(attacker.wall_ns / 1'000));
    }
  }
  std::uint64_t warm_hits = 0;
  std::uint64_t warm_seeded = 0;
  std::uint64_t cold_runs = 0;
  for (const Attacker& attacker : attackers_) {
    warm_hits += attacker.state.warm_hits;
    warm_seeded += attacker.state.warm_seeded;
    cold_runs += attacker.state.cold_runs + attacker.cold_runs;
  }
  counters_.warm_hits = warm_hits;
  counters_.warm_seeded = warm_seeded;
  counters_.cold_runs = cold_runs;
}

std::size_t AttackScheduler::apply_and_submit() {
  if (inflight_) {
    throw std::logic_error("apply_and_submit: join() the searches first");
  }
  std::size_t submitted = 0;
  for (Attacker& attacker : attackers_) {
    if (attacker.planned.declarations.size() < attacker.applied_declarations) {
      ++counters_.withdrawals;
    }
    attacker.client->set_strategy(attacker.planned);
    attacker.applied_declarations = attacker.planned.declarations.size();
    submitted += attacker.client->submit_pending();
  }
  return submitted;
}

}  // namespace fnda
