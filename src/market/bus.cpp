#include "market/bus.h"

#include <utility>

namespace fnda {

const char* message_kind(const Message& message) {
  struct Visitor {
    const char* operator()(const RoundOpenMsg&) const { return "round-open"; }
    const char* operator()(const SubmitBidMsg&) const { return "submit-bid"; }
    const char* operator()(const BidAckMsg&) const { return "bid-ack"; }
    const char* operator()(const FillNoticeMsg&) const { return "fill"; }
    const char* operator()(const RoundClosedMsg&) const {
      return "round-closed";
    }
    const char* operator()(const SettlementNoticeMsg&) const {
      return "settlement";
    }
  };
  return std::visit(Visitor{}, message);
}

MessageBus::MessageBus(EventQueue& queue, BusConfig config, Rng rng)
    : queue_(queue), config_(config), rng_(rng) {}

void MessageBus::attach(const std::string& address, Endpoint& endpoint) {
  endpoints_[address] = &endpoint;
}

void MessageBus::detach(const std::string& address) {
  endpoints_.erase(address);
}

MessageId MessageBus::send(const std::string& from, const std::string& to,
                           Message payload) {
  const MessageId id{next_message_++};
  ++stats_.sent;

  Envelope envelope;
  envelope.id = id;
  envelope.from = from;
  envelope.to = to;
  envelope.sent_at = queue_.now();
  envelope.payload = std::move(payload);

  if (rng_.bernoulli(config_.drop_probability)) {
    ++stats_.dropped;
    return id;
  }
  schedule_delivery(envelope);
  if (rng_.bernoulli(config_.duplicate_probability)) {
    ++stats_.duplicated;
    schedule_delivery(envelope);
  }
  return id;
}

void MessageBus::schedule_delivery(Envelope envelope) {
  SimTime latency = config_.base_latency;
  if (config_.jitter.micros > 0) {
    latency.micros +=
        rng_.uniform_int(0, config_.jitter.micros - 1);
  }
  const SimTime deliver_at = queue_.now() + latency;
  queue_.schedule_at(deliver_at, [this, envelope = std::move(envelope),
                                  deliver_at]() mutable {
    auto it = endpoints_.find(envelope.to);
    if (it == endpoints_.end()) {
      ++stats_.dead_lettered;
      return;
    }
    envelope.delivered_at = deliver_at;
    ++stats_.delivered;
    it->second->on_message(envelope);
  });
}

}  // namespace fnda
