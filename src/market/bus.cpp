#include "market/bus.h"

#include <stdexcept>
#include <utility>

namespace fnda {

const char* message_kind(const Message& message) {
  struct Visitor {
    const char* operator()(const RoundOpenMsg&) const { return "round-open"; }
    const char* operator()(const SubmitBidMsg&) const { return "submit-bid"; }
    const char* operator()(const BidAckMsg&) const { return "bid-ack"; }
    const char* operator()(const FillNoticeMsg&) const { return "fill"; }
    const char* operator()(const RoundClosedMsg&) const {
      return "round-closed";
    }
    const char* operator()(const SettlementNoticeMsg&) const {
      return "settlement";
    }
  };
  return std::visit(Visitor{}, message);
}

MessageBus::MessageBus(EventQueue& queue, BusConfig config, Rng rng)
    : queue_(queue), config_(config), rng_(rng) {
  queue_.set_delivery_sink(this);
}

MessageBus::~MessageBus() { queue_.set_delivery_sink(nullptr); }

AddressId MessageBus::intern(const std::string& address) {
  auto [it, inserted] = names_.try_emplace(address, 0);
  if (inserted) {
    it->second = static_cast<std::uint32_t>(directory_.size());
    directory_.push_back(DirectoryEntry{});
    addresses_.push_back(address);
  }
  return AddressId{it->second};
}

const std::string& MessageBus::name_of(AddressId address) const {
  return addresses_.at(address.value());
}

AddressId MessageBus::attach(const std::string& address, Endpoint& endpoint) {
  const AddressId id = intern(address);
  attach(id, endpoint);
  return id;
}

void MessageBus::attach(AddressId address, Endpoint& endpoint) {
  DirectoryEntry& entry = directory_.at(address.value());
  entry.endpoint = &endpoint;
  ++entry.binding;
}

void MessageBus::detach(const std::string& address) {
  auto it = names_.find(address);
  if (it == names_.end()) return;
  detach(AddressId{it->second});
}

void MessageBus::detach(AddressId address) {
  DirectoryEntry& entry = directory_.at(address.value());
  if (entry.endpoint == nullptr) return;
  entry.endpoint = nullptr;
  ++entry.binding;
}

std::uint32_t MessageBus::acquire_slot() {
  if (!free_.empty()) {
    const std::uint32_t slot = free_.back();
    free_.pop_back();
    return slot;
  }
  if (pool_size_ == pool_.size() * kPoolChunkSize) {
    pool_.push_back(std::make_unique<Envelope[]>(kPoolChunkSize));
  }
  return static_cast<std::uint32_t>(pool_size_++);
}

MessageId MessageBus::send(AddressId from, AddressId to, Message payload) {
  return send_impl(from, to, std::move(payload));
}

MessageId MessageBus::send(const std::string& from, const std::string& to,
                           Message payload) {
  const AddressId from_id = intern(from);
  const AddressId to_id = intern(to);
  return send(from_id, to_id, std::move(payload));
}

void MessageBus::schedule_slot(std::uint32_t slot, std::uint64_t key) {
  SimTime latency = config_.base_latency;
  if (config_.jitter.micros > 0) {
    latency.micros += rng_.uniform_int(0, config_.jitter.micros - 1);
  }
  queue_.schedule_delivery(queue_.now() + latency, slot, key);
}

void MessageBus::deliver_run(SimTime at, const EventQueue::Delivery* run,
                             std::size_t count) {
  // The envelopes and directory lines for one instant are scattered
  // across a working set much larger than L2; sweep prefetches ahead of
  // the dispatch loop so the groups below don't stall on each in turn.
#if defined(__GNUC__)
  for (std::size_t i = 0; i < count; ++i) {
    __builtin_prefetch(&slot_ref(run[i].slot), 1, 1);
    __builtin_prefetch(&directory_[static_cast<std::uint32_t>(run[i].key)], 0,
                       1);
  }
  // Second sweep: by now the directory lines are (mostly) resident, so
  // the endpoint objects themselves can be prefetched before dispatch.
  for (std::size_t i = 0; i < count; ++i) {
    const Endpoint* endpoint =
        directory_[static_cast<std::uint32_t>(run[i].key)].endpoint;
    if (endpoint != nullptr) __builtin_prefetch(endpoint, 0, 1);
  }
#endif
  std::size_t i = 0;
  while (i < count) {
    const std::uint64_t key = run[i].key;
    std::size_t j = i + 1;
    while (j < count && run[j].key == key) ++j;
    deliver_group(at, key, run + i, j - i);
    i = j;
  }
}

void MessageBus::deliver_group(SimTime at, std::uint64_t key,
                               const EventQueue::Delivery* run,
                               std::size_t count) {
  // The batch key pins both the destination and the binding generation
  // captured at send time, so one compare validates the whole batch.
  // Copy the directory fields out: a handler that interns a new address
  // can grow directory_ and invalidate references into it.
  const auto to = static_cast<std::uint32_t>(key);
  Endpoint* const endpoint = directory_[to].endpoint;
  if (endpoint == nullptr ||
      key != pack_key(to, directory_[to].binding)) {
    stats_.dead_lettered += count;
    for (std::size_t i = 0; i < count; ++i) release_slot(run[i].slot);
    return;
  }

  stats_.delivered += count;
  if (count == 1) {
    // Singleton batches dominate client-bound traffic; dispatching them
    // straight to on_message skips a virtual hop and the scratch array,
    // and is what the default on_batch would do anyway (overrides must
    // honour that equivalence).
    Envelope& envelope = slot_ref(run[0].slot);
    envelope.delivered_at = at;
    endpoint->on_message(envelope);
    release_slot(run[0].slot);
    return;
  }
  deliver_scratch_.clear();
  for (std::size_t i = 0; i < count; ++i) {
    Envelope& envelope = slot_ref(run[i].slot);
    envelope.delivered_at = at;
    deliver_scratch_.push_back(&envelope);
  }
  endpoint->on_batch(deliver_scratch_.data(), deliver_scratch_.size());
  for (std::size_t i = 0; i < count; ++i) release_slot(run[i].slot);
}

}  // namespace fnda
