#include "market/bus.h"

#include <stdexcept>
#include <utility>

namespace fnda {

const char* message_kind(const Message& message) {
  struct Visitor {
    const char* operator()(const RoundOpenMsg&) const { return "round-open"; }
    const char* operator()(const SubmitBidMsg&) const { return "submit-bid"; }
    const char* operator()(const BidAckMsg&) const { return "bid-ack"; }
    const char* operator()(const FillNoticeMsg&) const { return "fill"; }
    const char* operator()(const RoundClosedMsg&) const {
      return "round-closed";
    }
    const char* operator()(const SettlementNoticeMsg&) const {
      return "settlement";
    }
  };
  return std::visit(Visitor{}, message);
}

MessageBus::MessageBus(EventQueue& queue, BusConfig config, Rng rng)
    : queue_(queue),
      config_(config),
      rng_(rng),
      owned_space_(std::make_unique<AddressSpace>()),
      space_(owned_space_.get()),
      next_message_(config.first_message_id) {
  queue_.set_delivery_sink(this);
}

MessageBus::MessageBus(EventQueue& queue, BusConfig config, Rng rng,
                       Fabric& fabric, std::uint32_t shard)
    : queue_(queue),
      config_(config),
      rng_(rng),
      space_(&fabric.addresses()),
      fabric_(&fabric),
      shard_(shard),
      next_message_(config.first_message_id) {
  queue_.set_delivery_sink(this);
}

MessageBus::~MessageBus() { queue_.set_delivery_sink(nullptr); }

void MessageBus::bind_telemetry(obs::ShardTelemetry& telemetry) {
  obs::MetricsRegistry& registry = telemetry.metrics;
  registry.counter_fn("fnda_bus_sent_total", [this] {
    return static_cast<std::uint64_t>(stats_.sent);
  });
  registry.counter_fn("fnda_bus_delivered_total", [this] {
    return static_cast<std::uint64_t>(stats_.delivered);
  });
  registry.counter_fn("fnda_bus_duplicated_total", [this] {
    return static_cast<std::uint64_t>(stats_.duplicated);
  });
  registry.counter_fn("fnda_bus_dropped_total", [this] {
    return static_cast<std::uint64_t>(stats_.dropped);
  });
  registry.counter_fn("fnda_bus_dead_lettered_total", [this] {
    return static_cast<std::uint64_t>(stats_.dead_lettered);
  });
  registry.counter_fn("fnda_bus_forwarded_total", [this] {
    return static_cast<std::uint64_t>(stats_.forwarded);
  });
  registry.counter_fn("fnda_mailbox_overflow_total", [this] {
    return static_cast<std::uint64_t>(stats_.mailbox_overflow);
  });
  delivery_latency_hist_ =
      &registry.histogram("fnda_bus_delivery_latency_us");
  batch_size_hist_ = &registry.histogram("fnda_queue_batch_size");
}

AddressId MessageBus::intern(const std::string& address) {
  const AddressId id = space_->intern(address);
  ensure_directory(id.value());
  return id;
}

const std::string& MessageBus::name_of(AddressId address) const {
  return space_->name_of(address);
}

AddressId MessageBus::attach(const std::string& address, Endpoint& endpoint) {
  const AddressId id = intern(address);
  attach(id, endpoint);
  return id;
}

void MessageBus::attach(AddressId address, Endpoint& endpoint) {
  if (address.value() >= space_->size()) {
    throw std::out_of_range("MessageBus::attach: unknown AddressId");
  }
  DirectoryEntry& entry = ensure_directory(address.value());
  entry.endpoint = &endpoint;
  ++entry.binding;
  space_->claim(address, shard_);
}

void MessageBus::detach(const std::string& address) {
  const std::optional<AddressId> id = space_->lookup(address);
  if (!id.has_value()) return;
  detach(*id);
}

void MessageBus::detach(AddressId address) {
  if (address.value() >= space_->size()) {
    throw std::out_of_range("MessageBus::detach: unknown AddressId");
  }
  DirectoryEntry& entry = ensure_directory(address.value());
  if (entry.endpoint == nullptr) return;
  entry.endpoint = nullptr;
  ++entry.binding;
}

std::uint32_t MessageBus::acquire_slot() {
  if (!free_.empty()) {
    const std::uint32_t slot = free_.back();
    free_.pop_back();
    return slot;
  }
  if (pool_size_ == pool_.size() * kPoolChunkSize) {
    pool_.push_back(std::make_unique<Envelope[]>(kPoolChunkSize));
  }
  return static_cast<std::uint32_t>(pool_size_++);
}

MessageId MessageBus::send(AddressId from, AddressId to, Message payload) {
  return send_impl(from, to, std::move(payload));
}

MessageId MessageBus::send(const std::string& from, const std::string& to,
                           Message payload) {
  const AddressId from_id = intern(from);
  const AddressId to_id = intern(to);
  return send(from_id, to_id, std::move(payload));
}

SimTime MessageBus::draw_latency() {
  SimTime latency = config_.base_latency;
  if (config_.jitter.micros > 0) {
    latency.micros += rng_.uniform_int(0, config_.jitter.micros - 1);
  }
  return latency;
}

void MessageBus::schedule_slot(std::uint32_t slot, std::uint64_t key) {
  queue_.schedule_delivery(queue_.now() + draw_latency(), slot, key);
}

void MessageBus::forward_remote(MessageId id, AddressId from, AddressId to,
                                std::uint32_t owner, Message payload) {
  if (fabric_->topology() == ShardTopology::kIsolated) {
    // The fabric declared no cross-shard links and the epoch driver has
    // widened its windows on that basis; a send that contradicts the
    // declaration must fail loudly (and deterministically — the send
    // sequence is a pure function of shard-local event history) instead
    // of arriving after the destination ran past its delivery time.
    throw std::logic_error(
        "MessageBus: cross-shard send to '" +
        fabric_->addresses().name_of(to) + "' (owner shard " +
        std::to_string(owner) + ", sender shard " + std::to_string(shard_) +
        ") on a fabric declared ShardTopology::kIsolated");
  }
  ++stats_.forwarded;
  RemoteEnvelope envelope;
  envelope.id = id;
  envelope.from = from;
  envelope.to = to;
  envelope.sent_at = queue_.now();
  envelope.deliver_at = queue_.now() + draw_latency();
  envelope.source_shard = shard_;
  envelope.payload = std::move(payload);
  // Draw order mirrors the local path: primary jitter, duplicate coin,
  // then the duplicate's own jitter — so routing a message remotely
  // instead of locally never shifts the RNG stream.
  if (!rng_.bernoulli(config_.duplicate_probability)) {
    push_remote(owner, std::move(envelope));
    return;
  }
  ++stats_.duplicated;
  RemoteEnvelope duplicate = envelope;
  duplicate.deliver_at = queue_.now() + draw_latency();
  push_remote(owner, std::move(envelope));
  push_remote(owner, std::move(duplicate));
}

void MessageBus::push_remote(std::uint32_t owner, RemoteEnvelope&& envelope) {
  envelope.sequence = next_remote_sequence_++;
  if (!fabric_->forward(owner, std::move(envelope))) {
    ++stats_.mailbox_overflow;
    ++stats_.dropped;
  }
}

void MessageBus::inject(const RemoteEnvelope& remote) {
  const std::uint32_t slot = acquire_slot();
  Envelope& envelope = slot_ref(slot);
  envelope.id = remote.id;
  envelope.from = remote.from;
  envelope.to = remote.to;
  envelope.sent_at = remote.sent_at;
  envelope.delivered_at = SimTime{};
  envelope.payload = remote.payload;
  const std::uint64_t key = pack_key(
      remote.to.value(), ensure_directory(remote.to.value()).binding);
  // A deliver_at in this shard's past (possible when lookahead is tiny)
  // clamps to now_ inside schedule_delivery — deterministically, since
  // injection happens at a barrier when now_ is a pure function of the
  // event history.
  queue_.schedule_delivery(remote.deliver_at, slot, key);
}

void MessageBus::inject_batch(RemoteEnvelope* const* batch,
                              std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    RemoteEnvelope& remote = *batch[i];
    const std::uint32_t slot = acquire_slot();
    Envelope& envelope = slot_ref(slot);
    envelope.id = remote.id;
    envelope.from = remote.from;
    envelope.to = remote.to;
    envelope.sent_at = remote.sent_at;
    envelope.delivered_at = SimTime{};
    envelope.payload = std::move(remote.payload);
    const std::uint64_t key = pack_key(
        remote.to.value(), ensure_directory(remote.to.value()).binding);
    queue_.schedule_delivery(remote.deliver_at, slot, key);
  }
}

void MessageBus::deliver_run(SimTime at, const EventQueue::Delivery* run,
                             std::size_t count) {
  // The envelopes and directory lines for one instant are scattered
  // across a working set much larger than L2; sweep prefetches ahead of
  // the dispatch loop so the groups below don't stall on each in turn.
#if defined(__GNUC__)
  for (std::size_t i = 0; i < count; ++i) {
    __builtin_prefetch(&slot_ref(run[i].slot), 1, 1);
    __builtin_prefetch(&directory_[static_cast<std::uint32_t>(run[i].key)], 0,
                       1);
  }
  // Second sweep: by now the directory lines are (mostly) resident, so
  // the endpoint objects themselves can be prefetched before dispatch.
  for (std::size_t i = 0; i < count; ++i) {
    const Endpoint* endpoint =
        directory_[static_cast<std::uint32_t>(run[i].key)].endpoint;
    if (endpoint != nullptr) __builtin_prefetch(endpoint, 0, 1);
  }
#endif
  std::size_t i = 0;
  while (i < count) {
    const std::uint64_t key = run[i].key;
    std::size_t j = i + 1;
    while (j < count && run[j].key == key) ++j;
    deliver_group(at, key, run + i, j - i);
    i = j;
  }
}

void MessageBus::deliver_group(SimTime at, std::uint64_t key,
                               const EventQueue::Delivery* run,
                               std::size_t count) {
  // The batch key pins both the destination and the binding generation
  // captured at send time, so one compare validates the whole batch.
  // Copy the directory fields out: a handler that interns a new address
  // can grow directory_ and invalidate references into it.
  const auto to = static_cast<std::uint32_t>(key);
  Endpoint* const endpoint = directory_[to].endpoint;
  if (endpoint == nullptr ||
      key != pack_key(to, directory_[to].binding)) {
    stats_.dead_lettered += count;
    for (std::size_t i = 0; i < count; ++i) release_slot(run[i].slot);
    return;
  }

  stats_.delivered += count;
  // Per-delivery histograms are deterministically decimated: every
  // kDeliverySampleStride-th delivered group records its batch size and
  // its envelopes' latencies.  The tick advances in the shard's own
  // delivery order, so the sample stream is a pure function of the event
  // history (bit-identical at any worker count) while the full-fidelity
  // cost — measurably ~6% of session throughput — stays off the hot
  // path.  Exact totals remain in BusStats.
  const bool sample =
      batch_size_hist_ != nullptr &&
      (delivery_sample_tick_++ % kDeliverySampleStride) == 0;
  if (sample) {
    batch_size_hist_->record(static_cast<std::int64_t>(count));
  }
  if (count == 1) {
    // Singleton batches dominate client-bound traffic; dispatching them
    // straight to on_message skips a virtual hop and the scratch array,
    // and is what the default on_batch would do anyway (overrides must
    // honour that equivalence).  Latency is recorded here, where the
    // envelope is already in cache, not in a separate slot walk.
    Envelope& envelope = slot_ref(run[0].slot);
    envelope.delivered_at = at;
    if (sample) {
      delivery_latency_hist_->record((at - envelope.sent_at).micros);
    }
    endpoint->on_message(envelope);
    release_slot(run[0].slot);
    return;
  }
  deliver_scratch_.clear();
  for (std::size_t i = 0; i < count; ++i) {
    Envelope& envelope = slot_ref(run[i].slot);
    envelope.delivered_at = at;
    if (sample) {
      delivery_latency_hist_->record((at - envelope.sent_at).micros);
    }
    deliver_scratch_.push_back(&envelope);
  }
  endpoint->on_batch(deliver_scratch_.data(), deliver_scratch_.size());
  for (std::size_t i = 0; i < count; ++i) release_slot(run[i].slot);
}

}  // namespace fnda
