// Settlement: turning a cleared outcome into cash and goods movements.
//
// Trades are settled pairwise in fill order.  A seller identity whose
// account cannot deliver a unit is a discovered false-name bid: the pair
// is cancelled (the matched buyer pays nothing, receives nothing) and the
// seller identity's deposit is confiscated — the Section 6 penalty.
#pragma once

#include <vector>

#include "core/outcome.h"
#include "market/escrow.h"
#include "market/identity.h"
#include "market/ledger.h"
#include "obs/metrics.h"

namespace fnda {

struct Delivery {
  IdentityId seller;
  AccountId seller_account;
  IdentityId buyer;
  AccountId buyer_account;
  Money buyer_paid;
  Money seller_received;
  bool delivered = false;
  Money confiscated;
};

struct SettlementReport {
  RoundId round;
  std::vector<Delivery> deliveries;
  std::size_t failed = 0;
  Money confiscated_total;
  /// The exchange's trading profit for the round (spread on delivered
  /// pairs), excluding confiscations.
  Money exchange_spread;
};

class SettlementEngine {
 public:
  SettlementEngine(IdentityRegistry& registry, CashLedger& cash,
                   GoodsLedger& goods, EscrowService& escrow)
      : registry_(registry), cash_(cash), goods_(goods), escrow_(escrow) {}

  /// Settles every trade in `outcome`.  Buyer fill i is matched with
  /// seller fill i (goods are identical, so the pairing is arbitrary but
  /// must be deterministic).
  SettlementReport settle(RoundId round, const Outcome& outcome);

  /// Registers the Section 6 penalty quantities as owned counters:
  /// delivered pairs, failed deliveries (discovered false-name sellers),
  /// confiscated deposit micros, and the exchange's spread micros.
  void bind_metrics(obs::MetricsRegistry& registry);

 private:
  IdentityRegistry& registry_;
  CashLedger& cash_;
  GoodsLedger& goods_;
  EscrowService& escrow_;

  obs::Counter* delivered_counter_ = nullptr;
  obs::Counter* failed_counter_ = nullptr;
  obs::Counter* confiscated_micros_counter_ = nullptr;
  obs::Counter* spread_micros_counter_ = nullptr;
};

}  // namespace fnda
