// Security-deposit escrow (Section 6's penalty mechanism).
//
// "If one completes his/her transaction, or his/her bid is not included in
// the actual trades, the security deposit would be returned.  If one does
// not complete his/her transaction while his/her bid is included in the
// actual trades, the security deposit would be confiscated."
//
// Deposits are posted per identity (the server cannot tell identities
// apart, so it must charge each one).  Confiscated deposits go to the
// exchange account.
#pragma once

#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/money.h"
#include "market/ledger.h"
#include "obs/metrics.h"

namespace fnda {

class EscrowService {
 public:
  explicit EscrowService(CashLedger& cash) : cash_(cash) {}

  /// Moves `amount` from `payer`'s cash into escrow for `identity`.
  /// Additional posts accumulate.
  void post(IdentityId identity, AccountId payer, Money amount);

  /// Returns the full deposit to `payee`'s cash.
  void refund(IdentityId identity, AccountId payee);

  /// Seizes the full deposit for the exchange.  Returns the amount seized.
  Money confiscate(IdentityId identity, AccountId exchange);

  Money held(IdentityId identity) const;
  Money total_held() const;

  /// Identities currently holding a non-zero deposit (market-close sweep).
  std::vector<IdentityId> identities_with_deposits() const;

  /// Registers deposit-flow counters (posts, refunds, seizures — counts
  /// and micros) plus a snapshot-time gauge over total_held().
  void bind_metrics(obs::MetricsRegistry& registry);

 private:
  CashLedger& cash_;
  std::unordered_map<IdentityId, Money> deposits_;

  obs::Counter* posted_counter_ = nullptr;
  obs::Counter* refunded_counter_ = nullptr;
  obs::Counter* seized_counter_ = nullptr;
  obs::Counter* seized_micros_counter_ = nullptr;
  /// Escrow is itself a cash holder; use a dedicated pseudo-account so the
  /// CashLedger's conservation invariant covers posted deposits too.
  static constexpr AccountId escrow_account() {
    return AccountId{static_cast<std::uint64_t>(-2)};
  }
};

}  // namespace fnda
