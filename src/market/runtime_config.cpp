#include "market/runtime_config.h"

#include <charconv>
#include <limits>

namespace fnda {
namespace {

constexpr std::int64_t kMaxMicros =
    std::numeric_limits<std::int64_t>::max() / 2;

bool parse_int(std::string_view text, std::int64_t* out) {
  if (text.empty()) return false;
  const char* begin = text.data();
  const char* end = begin + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, *out);
  return ec == std::errc{} && ptr == end;
}

}  // namespace

struct RuntimeConfig::Key {
  std::string_view name;
  std::int64_t min_value;
  std::int64_t max_value;
  std::string_view help;
  std::int64_t (*get)(const ServerConfig&);
  void (*set)(ServerConfig&, std::int64_t);
};

const std::vector<RuntimeConfig::Key>& RuntimeConfig::keys() {
  static const std::vector<Key> table = {
      {"retained_rounds", 0,
       std::int64_t{std::numeric_limits<std::int32_t>::max()},
       "completed rounds kept for replay/audit views (0 = unbounded)",
       [](const ServerConfig& c) {
         return static_cast<std::int64_t>(c.retained_rounds);
       },
       [](ServerConfig& c, std::int64_t v) {
         c.retained_rounds = static_cast<std::size_t>(v);
       }},
      {"announce_interval_us", 0, kMaxMicros,
       "round-open re-announcement interval in sim microseconds (0 = off)",
       [](const ServerConfig& c) { return c.announce_interval.micros; },
       [](ServerConfig& c, std::int64_t v) {
         c.announce_interval = SimTime{v};
       }},
      {"min_deposit_micros", 0, kMaxMicros,
       "minimum escrowed deposit (micros) for a bid to be accepted",
       [](const ServerConfig& c) { return c.min_deposit.micros(); },
       [](ServerConfig& c, std::int64_t v) {
         c.min_deposit = Money::from_micros(v);
       }},
  };
  return table;
}

RuntimeConfig::RuntimeConfig(ServerConfig initial)
    : active_(std::move(initial)) {}

bool RuntimeConfig::stage(std::string_view key, std::string_view value,
                          std::string* error) {
  const auto& table = keys();
  for (std::size_t i = 0; i < table.size(); ++i) {
    const Key& row = table[i];
    if (row.name != key) continue;
    std::int64_t parsed = 0;
    if (!parse_int(value, &parsed)) {
      if (error) {
        *error = "invalid integer for " + std::string(key) + ": '" +
                 std::string(value) + "'";
      }
      return false;
    }
    if (parsed < row.min_value || parsed > row.max_value) {
      if (error) {
        *error = std::string(key) + " out of range [" +
                 std::to_string(row.min_value) + ", " +
                 std::to_string(row.max_value) + "]: " +
                 std::to_string(parsed);
      }
      return false;
    }
    // Last stage of the same key wins within one generation.
    for (Pending& pending : pending_) {
      if (pending.key_index == i) {
        pending.value = parsed;
        return true;
      }
    }
    pending_.push_back(Pending{i, parsed});
    return true;
  }
  if (error) {
    *error = "unknown config key: '" + std::string(key) + "'";
  }
  return false;
}

bool RuntimeConfig::apply_pending(std::uint64_t stamp) {
  if (pending_.empty()) return false;
  const auto& table = keys();
  bool changed = false;
  for (const Pending& pending : pending_) {
    const Key& row = table[pending.key_index];
    if (row.get(active_) != pending.value) {
      row.set(active_, pending.value);
      changed = true;
    }
  }
  pending_.clear();
  if (changed) {
    ++generation_;
    applied_at_ = stamp;
  }
  return changed;
}

std::vector<ConfigEntry> RuntimeConfig::entries() const {
  const auto& table = keys();
  std::vector<ConfigEntry> out;
  out.reserve(table.size());
  for (std::size_t i = 0; i < table.size(); ++i) {
    const Key& row = table[i];
    ConfigEntry entry;
    entry.key = std::string(row.name);
    entry.type = "int";
    entry.min_value = row.min_value;
    entry.max_value = row.max_value;
    entry.active = row.get(active_);
    entry.help = std::string(row.help);
    for (const Pending& pending : pending_) {
      if (pending.key_index == i) {
        entry.has_pending = true;
        entry.pending = pending.value;
      }
    }
    out.push_back(std::move(entry));
  }
  return out;
}

bool RuntimeConfig::read(std::string_view key, std::int64_t* value) const {
  for (const Key& row : keys()) {
    if (row.name == key) {
      *value = row.get(active_);
      return true;
    }
  }
  return false;
}

}  // namespace fnda
