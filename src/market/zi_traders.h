// Zero-intelligence trading sessions on the continuous double auction.
//
// Gode & Sunder's classic experiment (in the double-auction literature the
// paper cites via Friedman & Rust [1]): "ZI-C" traders submit *random*
// offers constrained only by their budget — buyers bid U[low, value],
// sellers ask U[cost, high] — and the CDA's matching discipline alone
// extracts most of the available surplus.  This harness runs such
// sessions so `bench/cda_vs_call` can compare the continuous market
// against the paper's discrete-time protocols on identical valuations.
#pragma once

#include "common/rng.h"
#include "core/instance.h"
#include "market/cda.h"

namespace fnda {

struct ZiSessionConfig {
  /// Re-quote attempts; a session ends early once every feasible trade
  /// has executed.  Each step, one random still-active trader quotes.
  std::size_t max_steps = 10'000;
  /// Quote bounds (ZI-C budget constraint ends at the trader's value).
  Money low = Money::from_units(0);
  Money high = Money::from_units(100);
};

struct ZiSessionResult {
  std::size_t trades = 0;
  std::size_t steps = 0;
  /// Realized surplus against true valuations.
  double surplus = 0.0;
  /// Pareto bound of the instance.
  double efficient_surplus = 0.0;
  /// surplus / efficient_surplus (1.0 when nothing was achievable).
  double efficiency = 1.0;
  /// Volume-weighted mean trade price (diagnostics).
  double mean_price = 0.0;
};

/// Runs one ZI-C session over `instance`'s traders.  Traders leave the
/// market after trading (single-unit demand/supply).
ZiSessionResult run_zi_session(const SingleUnitInstance& instance, Rng& rng,
                               const ZiSessionConfig& config = {});

}  // namespace fnda
