// Cross-shard fabric: the shared pieces that connect per-shard event
// loops without sharing their hot state.
//
// A sharded exchange runs one EventQueue + MessageBus + server world per
// shard, each owned by exactly one worker thread.  The fabric provides the
// only two things shards must share:
//
//   * AddressSpace — one global name <-> AddressId interning table, plus
//     the owning shard of every attached address.  Interning and claiming
//     are mutex-guarded (setup-time operations); the owner lookup on the
//     send hot path is a lock-free chunked-atomic read.
//   * ShardMailbox — one fixed-capacity MPSC ring per shard carrying
//     cross-shard messages (client -> server routing by account hash,
//     server -> client replies).  Senders push during an epoch; the
//     destination drains at the epoch barrier, sorts by
//     (deliver_at, source_shard, sequence), and injects — so the merge
//     order is bit-identical for every thread count and every ring
//     interleaving.
//
// Backpressure: a full mailbox rejects the push.  The sending bus accounts
// the message as dropped (plus a mailbox_overflow counter), which is
// deterministic — per-epoch traffic volume does not depend on thread
// timing — and models a saturated inter-server link.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "market/clock.h"
#include "market/messages.h"

namespace fnda {

/// A message crossing shards, as staged in a mailbox.  `sequence` is the
/// sending bus's per-shard forwarding counter; together with
/// (deliver_at, source_shard) it gives the destination a total order that
/// is independent of thread interleaving.
struct RemoteEnvelope {
  MessageId id;
  AddressId from;
  AddressId to;
  SimTime sent_at{};
  SimTime deliver_at{};
  std::uint64_t sequence = 0;
  std::uint32_t source_shard = 0;
  Message payload;
};

/// Global address book shared by every shard's MessageBus.
///
/// Ids are dense and stable for the fabric's lifetime.  intern()/claim()
/// take a mutex and are intended for wiring time; owner_shard() is the
/// per-send hot read and is lock-free (chunked atomics under a fixed
/// top-level array, so growth never moves a slot another thread may read).
class AddressSpace {
 public:
  /// owner_shard() result for an address no endpoint has ever claimed.
  static constexpr std::uint32_t kUnowned = 0xffffffffu;

  /// Returns the dense id for `name`, creating an unowned entry on first
  /// sight.
  AddressId intern(const std::string& name);

  /// The string behind an interned id (logs and tests).
  const std::string& name_of(AddressId address) const;

  /// The id behind a name, without interning; nullopt if never seen.
  std::optional<AddressId> lookup(const std::string& name) const;

  /// Records that `shard`'s bus hosts the endpoint behind `address`.
  /// Ownership survives detach (in-flight traffic still routes to the
  /// owner, which dead-letters it) and moves on a re-attach elsewhere.
  void claim(AddressId address, std::uint32_t shard);

  /// The shard hosting `address`, or kUnowned.  Lock-free.
  std::uint32_t owner_shard(AddressId address) const;

  /// Ids interned so far.  Acquire-ordered: an id below size() is safe to
  /// look up from any thread.
  std::size_t size() const { return size_.load(std::memory_order_acquire); }

 private:
  static constexpr std::size_t kChunkBits = 12;  // 4096 addresses per chunk
  static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkBits;
  static constexpr std::size_t kChunkMask = kChunkSize - 1;
  static constexpr std::size_t kMaxChunks = std::size_t{1} << 12;  // 16.7M

  struct Chunk {
    std::array<std::atomic<std::uint32_t>, kChunkSize> owners;
  };

  mutable std::mutex mutex_;
  std::unordered_map<std::string, std::uint32_t> ids_;
  std::deque<std::string> names_;  // stable references under growth
  std::array<std::unique_ptr<Chunk>, kMaxChunks> chunks_{};
  std::atomic<std::size_t> size_{0};
};

/// Fixed-capacity multi-producer single-consumer ring of RemoteEnvelopes
/// (Vyukov's bounded queue, restricted to one consumer).  push() is safe
/// from any shard worker mid-epoch; pop() is called by the epoch barrier's
/// completion step while every producer is quiescent.
class ShardMailbox {
 public:
  /// Capacity is rounded up to a power of two (minimum 2).
  explicit ShardMailbox(std::size_t capacity);
  ShardMailbox(const ShardMailbox&) = delete;
  ShardMailbox& operator=(const ShardMailbox&) = delete;

  /// False if the ring is full (the caller accounts the message dropped).
  bool push(RemoteEnvelope&& envelope);

  /// Moves the oldest envelope out; false when empty.  Single consumer.
  bool pop(RemoteEnvelope& out);

  /// Moves every staged envelope into `out` (appending) and returns how
  /// many were drained.  Single consumer; reads the producer cursor once,
  /// so it drains exactly the traffic staged before the call — the shape
  /// the epoch barrier wants, where producers are quiescent and the whole
  /// epoch's inbox is consumed as one batch.
  std::size_t drain(std::vector<RemoteEnvelope>& out);

  std::size_t capacity() const { return slots_.size(); }

 private:
  struct Slot {
    std::atomic<std::uint64_t> sequence{0};
    RemoteEnvelope value;
  };

  std::vector<Slot> slots_;
  std::uint64_t mask_ = 0;
  alignas(64) std::atomic<std::uint64_t> tail_{0};  // producers claim here
  alignas(64) std::uint64_t head_ = 0;              // consumer cursor
};

/// Declared communication structure between shards.  The epoch driver
/// derives its causal window bound from this: kAllToAll is the
/// conservative default (any shard may message any other, so the window
/// is bounded by the cross-shard latency floor); kIsolated declares that
/// no cross-shard traffic exists — the identity-partitioned deployment,
/// where every client trades on its account's home shard — letting the
/// driver run shards to quiescence independently between barriers.  The
/// declaration is enforced, not trusted: under kIsolated a cross-shard
/// send throws at the sender, deterministically, instead of silently
/// breaking the window math.
enum class ShardTopology : std::uint8_t { kAllToAll, kIsolated };

/// The shared substrate of a sharded exchange: one address space and one
/// inbound mailbox per shard.
class Fabric {
 public:
  Fabric(std::size_t shards, std::size_t mailbox_capacity);

  AddressSpace& addresses() { return addresses_; }
  const AddressSpace& addresses() const { return addresses_; }

  /// Stages `envelope` for `dest_shard`; false if its mailbox is full.
  bool forward(std::uint32_t dest_shard, RemoteEnvelope&& envelope) {
    return mailboxes_[dest_shard]->push(std::move(envelope));
  }

  ShardMailbox& mailbox(std::size_t shard) { return *mailboxes_[shard]; }
  std::size_t shard_count() const { return mailboxes_.size(); }

  /// Wiring-time declaration (set before workers spawn; read-only during
  /// epochs, so a plain field is safe).
  void set_topology(ShardTopology topology) { topology_ = topology; }
  ShardTopology topology() const { return topology_; }

 private:
  AddressSpace addresses_;
  std::vector<std::unique_ptr<ShardMailbox>> mailboxes_;
  ShardTopology topology_ = ShardTopology::kAllToAll;
};

}  // namespace fnda
