// Continuous double auction (CDA) order book.
//
// The paper's Section 1 taxonomy: double auctions are either discrete-time
// call markets (PMD/TPD — the paper's setting) or continuous-time books
// where "the overall trades of the auction are composed of multiple
// bilateral transactions".  This is the continuous half, used by the
// zi_traders harness and `bench/cda_vs_call` to compare the two market
// structures on identical valuations.
//
// Rules (the standard CDA):
//   - single-unit limit orders with price-time priority;
//   - an incoming order that crosses the best resting opposite order
//     trades immediately at the *resting* order's price;
//   - otherwise it rests in the book until matched or cancelled.
#pragma once

#include <deque>
#include <map>
#include <optional>
#include <vector>

#include "common/ids.h"
#include "common/money.h"
#include "core/bid.h"
#include "market/clock.h"

namespace fnda {

class ContinuousDoubleAuction {
 public:
  struct Trade {
    IdentityId buyer;
    IdentityId seller;
    Money price;
    SimTime at;
  };

  ContinuousDoubleAuction() = default;

  /// Submits a limit order.  Returns the trade if the order crossed, or
  /// std::nullopt if it rested.  One identity may have at most one open
  /// order (resubmitting replaces it, losing time priority).
  std::optional<Trade> submit(Side side, IdentityId identity, Money limit,
                              SimTime now);

  /// Removes an identity's resting order; false if it had none.
  bool cancel(IdentityId identity);

  /// Best resting prices (nullopt when that side is empty).
  std::optional<Money> best_bid() const;
  std::optional<Money> best_ask() const;

  std::size_t open_bids() const;
  std::size_t open_asks() const;

  const std::vector<Trade>& trades() const { return trades_; }

  /// True if no resting bid can ever cross a resting ask (book is done
  /// unless new orders arrive).
  bool crossed() const;

 private:
  struct RestingOrder {
    IdentityId identity;
    Money price;
    std::uint64_t sequence;  // time priority within a price level
  };

  // Bids keyed descending (best first), asks ascending.
  std::map<Money, std::deque<RestingOrder>, std::greater<Money>> bids_;
  std::map<Money, std::deque<RestingOrder>> asks_;
  std::vector<Trade> trades_;
  std::uint64_t next_sequence_ = 0;

  bool remove_resting(Side side, IdentityId identity);
};

}  // namespace fnda
