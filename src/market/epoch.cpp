#include "market/epoch.h"

#include <algorithm>
#include <barrier>
#include <limits>
#include <optional>
#include <span>
#include <stdexcept>
#include <thread>
#include <utility>

namespace fnda {

namespace {

/// Window end for an epoch whose causal bound is infinite (isolated
/// topology or a single shard): far enough that every pending event is
/// inside it, small enough that no queue arithmetic can overflow.
constexpr SimTime kUnboundedWindow{std::numeric_limits<std::int64_t>::max() /
                                   2};

}  // namespace

EpochDriver::EpochDriver(Fabric& fabric, std::vector<EpochShard> shards,
                         SimTime lookahead, bool adaptive)
    : fabric_(fabric),
      shards_(std::move(shards)),
      lookahead_(std::max(lookahead, SimTime{1})),
      adaptive_(adaptive) {
  for (std::size_t s = 0; s < shards_.size(); ++s) lanes_.emplace_back();
}

void EpochDriver::bind_telemetry(obs::SessionTelemetry& session) {
  telemetry_ = &session;
  obs::MetricsRegistry& registry = session.driver().metrics;
  registry.counter_fn("fnda_epoch_total", [this] {
    return static_cast<std::uint64_t>(lifetime_.epochs);
  });
  registry.counter_fn("fnda_epoch_injected_total", [this] {
    return static_cast<std::uint64_t>(lifetime_.injected);
  });
  registry.counter_fn("fnda_epoch_barriers_total", [this] {
    return static_cast<std::uint64_t>(lifetime_.barriers);
  });
  registry.counter_fn("fnda_epoch_widened_total", [this] {
    return static_cast<std::uint64_t>(lifetime_.widened);
  });
  // Merge-scratch footprint (keys + pointer batches): the max over the
  // per-shard high-water marks, each monotone and a pure function of
  // per-epoch traffic, so it merges deterministically across thread
  // counts.
  registry.counter_fn("fnda_epoch_merge_arena_high_water_bytes", [this] {
    std::size_t high = 0;
    for (const ShardLane& lane : lanes_) {
      high = std::max(high, lane.arena.stats().high_water);
    }
    return static_cast<std::uint64_t>(high);
  });
  epoch_advance_hist_ = &registry.histogram("fnda_epoch_advance_us");
  window_hist_ = &registry.histogram("fnda_epoch_window_us");
  if (session.wallclock()) {
    barrier_stall_hist_ = &registry.histogram("fnda_epoch_barrier_stall_us");
  }
  // Depth and stall samples go into each shard's own registry so the
  // merged snapshot still folds them in canonical shard order.
  depth_hists_.assign(shards_.size(), nullptr);
  depth_peaks_.assign(shards_.size(), nullptr);
  shard_stall_hists_.clear();
  if (session.wallclock()) {
    shard_stall_hists_.assign(shards_.size(), nullptr);
  }
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    obs::MetricsRegistry& shard_registry = session.shard(s).metrics;
    depth_hists_[s] = &shard_registry.histogram("fnda_queue_depth");
    depth_peaks_[s] = &shard_registry.gauge("fnda_queue_depth_peak",
                                            obs::GaugeMerge::kMax);
    if (session.wallclock()) {
      shard_stall_hists_[s] =
          &shard_registry.histogram("fnda_epoch_shard_stall_us");
    }
  }
}

void EpochDriver::inject_phase() noexcept {
  // Parallel: each worker claims shards off the shared cursor.  The
  // claimed shard's queue, bus, lane, and shard registry are touched by
  // this worker only (per-phase ownership); the preceding barrier
  // ordered these accesses after the run phase that staged the traffic.
  const bool bail = failed_.load(std::memory_order_acquire);
  for (;;) {
    const std::size_t s =
        inject_claim_.fetch_add(1, std::memory_order_relaxed);
    if (s >= shards_.size()) return;
    ShardLane& lane = lanes_[s];
    lane.injected = 0;
    if (bail || errors_[s] != nullptr) {
      lane.next = kEmpty;
      continue;
    }
    try {
      std::vector<RemoteEnvelope>& inbox = lane.inbox;
      inbox.clear();
      fabric_.mailbox(s).drain(inbox);
      if (!inbox.empty()) {
        // Ring order depends on producer interleaving; (deliver_at,
        // source_shard, sequence) is a total order over one epoch's
        // traffic that does not, so injection order is canonical.  Sort
        // 24-byte POD keys instead of the fat envelopes (Message
        // variants carry strings); the batch of pointers then walks the
        // drain buffer in merge order.
        struct MergeKey {
          std::int64_t deliver_at;
          std::uint64_t sequence;
          std::uint32_t source_shard;
          std::uint32_t index;
        };
        lane.arena.reset();
        std::span<MergeKey> keys =
            lane.arena.make_span<MergeKey>(inbox.size());
        for (std::size_t i = 0; i < inbox.size(); ++i) {
          keys[i] = MergeKey{inbox[i].deliver_at.micros, inbox[i].sequence,
                             inbox[i].source_shard,
                             static_cast<std::uint32_t>(i)};
        }
        std::sort(keys.begin(), keys.end(),
                  [](const MergeKey& a, const MergeKey& b) {
                    if (a.deliver_at != b.deliver_at) {
                      return a.deliver_at < b.deliver_at;
                    }
                    if (a.source_shard != b.source_shard) {
                      return a.source_shard < b.source_shard;
                    }
                    return a.sequence < b.sequence;
                  });
        std::span<RemoteEnvelope*> batch =
            lane.arena.make_span<RemoteEnvelope*>(inbox.size());
        for (std::size_t i = 0; i < inbox.size(); ++i) {
          batch[i] = &inbox[keys[i].index];
        }
        shards_[s].bus->inject_batch(batch.data(), batch.size());
        lane.injected = inbox.size();
      }
      if (!depth_hists_.empty()) {
        // Post-injection depth is a pure function of the event history,
        // so the sample stream is identical for every worker count.
        const auto depth =
            static_cast<std::int64_t>(shards_[s].queue->pending());
        depth_hists_[s]->record(depth);
        depth_peaks_[s]->raise_to(depth);
      }
      const std::optional<SimTime> head = shards_[s].queue->next_time();
      lane.next = head.has_value() ? head->micros : kEmpty;
      // Bounded drive: a head at or beyond this shard's bound is outside
      // the drive — the shard looks quiescent to the window reduction and
      // its events stay queued for a later drive.
      if (bounds_ != nullptr && lane.next != kEmpty &&
          lane.next >= (*bounds_)[s].micros) {
        lane.next = kEmpty;
      }
    } catch (...) {
      errors_[s] = std::current_exception();
      failed_.store(true, std::memory_order_release);
      lane.next = kEmpty;
    }
  }
}

void EpochDriver::advance_window() noexcept {
  // Window barrier completion: runs on exactly one thread while every
  // other worker is parked inside the barrier.  All that is left here is
  // the O(shards) reduction — the drain/sort/inject work this step used
  // to do now runs in the inject phase.
  ++stats_.barriers;
  ++lifetime_.barriers;
  const std::int64_t stall_start =
      barrier_stall_hist_ != nullptr ? telemetry_->wall_micros() : 0;
  run_claim_.store(0, std::memory_order_relaxed);
  if (failed_.load(std::memory_order_acquire)) {
    stop_ = true;
    return;
  }
  std::int64_t m1 = kEmpty;  // smallest shard head
  std::int64_t m2 = kEmpty;  // second-smallest (ties land here)
  for (const ShardLane& lane : lanes_) {
    stats_.injected += lane.injected;
    lifetime_.injected += lane.injected;
    if (lane.next < m1) {
      m2 = m1;
      m1 = lane.next;
    } else if (lane.next < m2) {
      m2 = lane.next;
    }
  }
  if (m1 == kEmpty) {
    // Every queue is empty and the inject phase just drained every
    // mailbox: quiescent.
    stop_ = true;
    if (barrier_stall_hist_ != nullptr) {
      barrier_stall_hist_->record(telemetry_->wall_micros() - stall_start);
    }
    return;
  }
  const SimTime next{m1};
  const std::int64_t lookahead = lookahead_.micros;
  epoch_end_ = next + lookahead_ - SimTime{1};
  epoch_start_ = next;
  epoch_unbounded_ = false;
  if (adaptive_) {
    if (shards_.size() == 1 ||
        fabric_.topology() == ShardTopology::kIsolated) {
      // No cross-shard message can ever exist (enforced by the bus for
      // kIsolated), so the causal bound is infinite: run every shard to
      // quiescence in this one window.
      epoch_end_ = kUnboundedWindow;
      epoch_unbounded_ = true;
      ++stats_.widened;
      ++lifetime_.widened;
    } else if (m2 != kEmpty ? m2 - m1 >= 2 * lookahead
                            : shards_.size() > 1) {
      // Only the m1-shard has events below m2 (m2 == kEmpty: below
      // anything), so nothing else executes in a widened window.  Cap
      // one: stop lookahead short of m2 so every other shard still sees
      // its inbound traffic injected before its own first event.  Cap
      // two: two lookaheads past m1, the earliest instant a response to
      // the running shard's own sends could arrive.
      const std::int64_t cap_other =
          m2 != kEmpty ? m2 - lookahead : kEmpty;
      const std::int64_t cap_response = m1 + 2 * lookahead - 1;
      const std::int64_t widened = std::min(cap_other, cap_response);
      if (widened > epoch_end_.micros) {
        epoch_end_ = SimTime{widened};
        ++stats_.widened;
        ++lifetime_.widened;
      }
    }
  }
  ++stats_.epochs;
  ++lifetime_.epochs;
  if (telemetry_ != nullptr) {
    if (epoch_advance_hist_ != nullptr && !first_epoch_of_drive_) {
      epoch_advance_hist_->record((next - last_epoch_start_).micros);
    }
    first_epoch_of_drive_ = false;
    last_epoch_start_ = next;
    if (window_hist_ != nullptr && !epoch_unbounded_) {
      window_hist_->record((epoch_end_ - next).micros + 1);
    }
    if (!telemetry_->wallclock() && !epoch_unbounded_) {
      // Deterministic epoch-window span in sim time.  Unbounded windows
      // are recorded at the drain barrier, once their executed extent is
      // known; in wallclock mode the stall span below carries the driver
      // timeline instead.
      telemetry_->driver().trace.record_span(
          "epoch", "epoch", next.micros, (epoch_end_ - next).micros + 1);
    }
  }
  if (barrier_stall_hist_ != nullptr) {
    const std::int64_t stall = telemetry_->wall_micros() - stall_start;
    barrier_stall_hist_->record(stall);
    telemetry_->driver().trace.record_span("barrier-advance", "epoch",
                                           stall_start, stall);
  }
}

void EpochDriver::run_phase() noexcept {
  // Parallel: claim-and-run.  A shard that already captured an error
  // stays frozen; the others finish the epoch in flight (matching the
  // pre-parallel driver), and the window barrier stops everyone next.
  const bool wall = !shard_stall_hists_.empty();
  for (;;) {
    const std::size_t s = run_claim_.fetch_add(1, std::memory_order_relaxed);
    if (s >= shards_.size()) return;
    if (errors_[s] == nullptr) {
      try {
        // run_until is INCLUSIVE of its end time, so a bounded shard is
        // clamped to bound - 1: only events strictly before the bound run.
        SimTime end = epoch_end_;
        if (bounds_ != nullptr) {
          end = std::min(end, (*bounds_)[s] - SimTime{1});
        }
        shards_[s].queue->run_until(end,
                                    std::numeric_limits<std::size_t>::max());
      } catch (...) {
        errors_[s] = std::current_exception();
        failed_.store(true, std::memory_order_release);
      }
    }
    if (wall) lanes_[s].run_end_wall = telemetry_->wall_micros();
  }
}

void EpochDriver::finish_run() noexcept {
  // Drain barrier completion (serial): reset the inject cursor before
  // any worker is released into the inject phase, account how long each
  // shard waited for the slowest one, and record the executed extent of
  // an unbounded window now that it is known.
  ++stats_.barriers;
  ++lifetime_.barriers;
  inject_claim_.store(0, std::memory_order_relaxed);
  if (epoch_unbounded_ && telemetry_ != nullptr && !telemetry_->wallclock() &&
      !failed_.load(std::memory_order_acquire)) {
    SimTime extent = epoch_start_;
    for (const EpochShard& shard : shards_) {
      extent = std::max(extent, shard.queue->now());
    }
    telemetry_->driver().trace.record_span(
        "epoch", "epoch", epoch_start_.micros,
        (extent - epoch_start_).micros + 1);
  }
  if (!shard_stall_hists_.empty()) {
    const std::int64_t barrier_wall = telemetry_->wall_micros();
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      shard_stall_hists_[s]->record(barrier_wall - lanes_[s].run_end_wall);
    }
  }
}

EpochStats EpochDriver::drive(std::size_t threads) {
  bounds_ = nullptr;
  return drive_impl(threads);
}

EpochStats EpochDriver::drive_until(const std::vector<SimTime>& bounds,
                                    std::size_t threads) {
  if (bounds.size() != shards_.size()) {
    throw std::invalid_argument("drive_until: one bound per shard required");
  }
  bounds_ = &bounds;
  try {
    const EpochStats stats = drive_impl(threads);
    bounds_ = nullptr;
    return stats;
  } catch (...) {
    bounds_ = nullptr;
    throw;
  }
}

EpochStats EpochDriver::drive_impl(std::size_t threads) {
  const std::size_t shard_count = shards_.size();
  workers_ =
      std::clamp<std::size_t>(threads, 1, shard_count == 0 ? 1 : shard_count);
  stop_ = false;
  failed_.store(false, std::memory_order_relaxed);
  stats_ = EpochStats{};
  first_epoch_of_drive_ = true;
  errors_.assign(shard_count, nullptr);
  inject_claim_.store(0, std::memory_order_relaxed);
  run_claim_.store(0, std::memory_order_relaxed);

  std::barrier window_barrier(static_cast<std::ptrdiff_t>(workers_),
                              [this]() noexcept { advance_window(); });
  std::barrier drain_barrier(static_cast<std::ptrdiff_t>(workers_),
                             [this]() noexcept { finish_run(); });

  auto worker = [&](std::size_t) {
    inject_phase();
    for (;;) {
      window_barrier.arrive_and_wait();  // completion step ran before release
      if (stop_) return;
      run_phase();
      drain_barrier.arrive_and_wait();
      inject_phase();
    }
  };

  if (workers_ == 1) {
    worker(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers_ - 1);
    for (std::size_t w = 1; w < workers_; ++w) {
      pool.emplace_back(worker, w);
    }
    worker(0);
    for (std::thread& thread : pool) thread.join();
  }

  for (std::size_t s = 0; s < shard_count; ++s) {
    if (errors_[s] != nullptr) std::rethrow_exception(errors_[s]);
  }
  return stats_;
}

}  // namespace fnda
