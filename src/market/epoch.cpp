#include "market/epoch.h"

#include <algorithm>
#include <barrier>
#include <limits>
#include <optional>
#include <thread>
#include <utility>

namespace fnda {

EpochDriver::EpochDriver(Fabric& fabric, std::vector<EpochShard> shards,
                         SimTime lookahead)
    : fabric_(fabric),
      shards_(std::move(shards)),
      lookahead_(std::max(lookahead, SimTime{1})) {
  inbox_scratch_.resize(shards_.size());
}

void EpochDriver::bind_telemetry(obs::SessionTelemetry& session) {
  telemetry_ = &session;
  obs::MetricsRegistry& registry = session.driver().metrics;
  registry.counter_fn("fnda_epoch_total", [this] {
    return static_cast<std::uint64_t>(lifetime_.epochs);
  });
  registry.counter_fn("fnda_epoch_injected_total", [this] {
    return static_cast<std::uint64_t>(lifetime_.injected);
  });
  // Barrier-step scratch footprint (merge keys + pointer batches): a
  // high-water mark, monotone, and a pure function of per-epoch traffic,
  // so it merges deterministically across thread counts.
  registry.counter_fn("fnda_epoch_merge_arena_high_water_bytes", [this] {
    return static_cast<std::uint64_t>(merge_arena_.stats().high_water);
  });
  epoch_advance_hist_ = &registry.histogram("fnda_epoch_advance_us");
  if (session.wallclock()) {
    barrier_stall_hist_ = &registry.histogram("fnda_epoch_barrier_stall_us");
  }
  // Depth samples go into each shard's own registry so the merged
  // snapshot still folds them in canonical shard order.
  depth_hists_.assign(shards_.size(), nullptr);
  depth_peaks_.assign(shards_.size(), nullptr);
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    obs::MetricsRegistry& shard_registry = session.shard(s).metrics;
    depth_hists_[s] = &shard_registry.histogram("fnda_queue_depth");
    depth_peaks_[s] = &shard_registry.gauge("fnda_queue_depth_peak",
                                            obs::GaugeMerge::kMax);
  }
}

void EpochDriver::advance_epoch() noexcept {
  // Runs on exactly one thread while every other worker is parked inside
  // the barrier, so all shard state is safe to touch; the barrier's
  // release edge publishes the writes to every worker.  The same
  // exclusivity makes it safe to record into shard registries here.
  const std::int64_t stall_start =
      barrier_stall_hist_ != nullptr ? telemetry_->wall_micros() : 0;
  if (failed_.load(std::memory_order_acquire)) {
    stop_ = true;
    return;
  }
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    std::vector<RemoteEnvelope>& inbox = inbox_scratch_[s];
    inbox.clear();
    fabric_.mailbox(s).drain(inbox);
    if (inbox.empty()) continue;
    // Ring order depends on producer interleaving; (deliver_at,
    // source_shard, sequence) is a total order over one epoch's traffic
    // that does not, so injection order is canonical.  Sort 24-byte POD
    // keys instead of the fat envelopes (Message variants carry strings);
    // the batch of pointers then walks the drain buffer in merge order.
    struct MergeKey {
      std::int64_t deliver_at;
      std::uint64_t sequence;
      std::uint32_t source_shard;
      std::uint32_t index;
    };
    merge_arena_.reset();
    std::span<MergeKey> keys = merge_arena_.make_span<MergeKey>(inbox.size());
    for (std::size_t i = 0; i < inbox.size(); ++i) {
      keys[i] = MergeKey{inbox[i].deliver_at.micros, inbox[i].sequence,
                         inbox[i].source_shard,
                         static_cast<std::uint32_t>(i)};
    }
    std::sort(keys.begin(), keys.end(),
              [](const MergeKey& a, const MergeKey& b) {
                if (a.deliver_at != b.deliver_at) {
                  return a.deliver_at < b.deliver_at;
                }
                if (a.source_shard != b.source_shard) {
                  return a.source_shard < b.source_shard;
                }
                return a.sequence < b.sequence;
              });
    std::span<RemoteEnvelope*> batch =
        merge_arena_.make_span<RemoteEnvelope*>(inbox.size());
    for (std::size_t i = 0; i < inbox.size(); ++i) {
      batch[i] = &inbox[keys[i].index];
    }
    shards_[s].bus->inject_batch(batch.data(), batch.size());
    stats_.injected += inbox.size();
    lifetime_.injected += inbox.size();
  }
  if (!depth_hists_.empty()) {
    // Post-injection depth is a pure function of the event history, so
    // the sample stream is identical for every worker count.
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      const auto depth =
          static_cast<std::int64_t>(shards_[s].queue->pending());
      depth_hists_[s]->record(depth);
      depth_peaks_[s]->raise_to(depth);
    }
  }
  SimTime next{std::numeric_limits<std::int64_t>::max()};
  bool any = false;
  for (const EpochShard& shard : shards_) {
    if (const std::optional<SimTime> head = shard.queue->next_time()) {
      any = true;
      next = std::min(next, *head);
    }
  }
  if (!any) {
    stop_ = true;
    if (barrier_stall_hist_ != nullptr) {
      barrier_stall_hist_->record(telemetry_->wall_micros() - stall_start);
    }
    return;
  }
  epoch_end_ = next + lookahead_ - SimTime{1};
  ++stats_.epochs;
  ++lifetime_.epochs;
  if (telemetry_ != nullptr) {
    if (epoch_advance_hist_ != nullptr && !first_epoch_of_drive_) {
      epoch_advance_hist_->record((next - last_epoch_start_).micros);
    }
    first_epoch_of_drive_ = false;
    last_epoch_start_ = next;
    if (!telemetry_->wallclock()) {
      // Deterministic epoch-window span in sim time.  In wallclock mode
      // the stall span below carries the driver timeline instead.
      telemetry_->driver().trace.record_span(
          "epoch", "epoch", next.micros, (epoch_end_ - next).micros + 1);
    }
  }
  if (barrier_stall_hist_ != nullptr) {
    const std::int64_t stall = telemetry_->wall_micros() - stall_start;
    barrier_stall_hist_->record(stall);
    telemetry_->driver().trace.record_span("barrier-advance", "epoch",
                                           stall_start, stall);
  }
}

EpochStats EpochDriver::drive(std::size_t threads) {
  const std::size_t shard_count = shards_.size();
  const std::size_t workers =
      std::clamp<std::size_t>(threads, 1, shard_count == 0 ? 1 : shard_count);
  stop_ = false;
  failed_.store(false, std::memory_order_relaxed);
  stats_ = EpochStats{};
  first_epoch_of_drive_ = true;
  errors_.assign(shard_count, nullptr);

  std::barrier barrier(static_cast<std::ptrdiff_t>(workers),
                       [this]() noexcept { advance_epoch(); });

  auto worker = [&](std::size_t index) {
    for (;;) {
      barrier.arrive_and_wait();  // completion step ran before release
      if (stop_) return;
      for (std::size_t s = index; s < shard_count; s += workers) {
        if (errors_[s] != nullptr) continue;
        try {
          shards_[s].queue->run_until(
              epoch_end_, std::numeric_limits<std::size_t>::max());
        } catch (...) {
          errors_[s] = std::current_exception();
          failed_.store(true, std::memory_order_release);
        }
      }
    }
  };

  if (workers == 1) {
    worker(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers - 1);
    for (std::size_t w = 1; w < workers; ++w) {
      pool.emplace_back(worker, w);
    }
    worker(0);
    for (std::thread& thread : pool) thread.join();
  }

  for (std::size_t s = 0; s < shard_count; ++s) {
    if (errors_[s] != nullptr) std::rethrow_exception(errors_[s]);
  }
  return stats_;
}

}  // namespace fnda
