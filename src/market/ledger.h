// Cash and goods ledgers.
//
// Settlement moves real balances: buyers' cash to the exchange, the
// exchange's cash to sellers, and one unit of the good per delivered
// trade.  Both ledgers are conservation-checked: money and goods are
// created only by explicit grants.
#pragma once

#include <cstddef>
#include <unordered_map>

#include "common/ids.h"
#include "common/money.h"

namespace fnda {

/// Account cash balances.  Balances may go negative (the simulator's
/// traders have credit); conservation is the invariant that matters:
/// the sum of all balances never changes except through grant().
class CashLedger {
 public:
  /// Creates money (initial endowments only).
  void grant(AccountId account, Money amount);

  /// Moves `amount` from one account to another.
  void transfer(AccountId from, AccountId to, Money amount);

  Money balance(AccountId account) const;

  /// Sum over all accounts; constant across transfers.
  Money total() const;

 private:
  std::unordered_map<AccountId, Money> balances_;
};

/// Units of the (single) traded good held per account.
class GoodsLedger {
 public:
  void grant(AccountId account, std::size_t units);

  /// Moves one unit; returns false (and moves nothing) if `from` has none.
  bool transfer_unit(AccountId from, AccountId to);

  std::size_t units(AccountId account) const;
  std::size_t total() const;

 private:
  std::unordered_map<AccountId, std::size_t> units_;
};

}  // namespace fnda
