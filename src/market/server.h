// The call-market auction server.
//
// Lifecycle per round (all on the simulated clock):
//   open_round()     broadcast RoundOpen, start accepting SubmitBid
//   ...              validate each bid: round open, identity fresh this
//                    round, deposit posted, value in domain; ack/nack
//   close time       build the order book, clear with the configured
//                    protocol, validate invariants, notify fills,
//                    broadcast RoundClosed, settle (deliveries, penalty
//                    confiscations), notify settled sellers
//
// The server sees identities only; it never consults the identity
// registry for ownership — that happens inside settlement, exactly as in
// the paper's model.  Every round stores its book and clearing seed, so
// any outcome can be replayed bit-for-bit for audit.
#pragma once

#include <deque>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/arena.h"
#include "common/rng.h"
#include "core/live_book.h"
#include "core/protocol.h"
#include "core/validation.h"
#include "market/audit.h"
#include "market/bus.h"
#include "market/settlement.h"
#include "obs/telemetry.h"

namespace fnda {

struct ServerConfig {
  /// Minimum escrowed deposit for an identity's bid to be accepted.
  Money min_deposit = Money::from_units(10);
  /// Valuation domain enforced on declarations.
  ValueDomain domain{};
  /// Re-broadcast the round-open announcement at this interval while the
  /// round is accepting bids (zero disables).  Lossy transports drop the
  /// first announcement for some clients; the heartbeat reaches them, and
  /// clients deduplicate rounds they have already bid in.
  SimTime announce_interval{0};
  /// Completed rounds retained for outcome_of/settlement_of/replay_round
  /// (0 = unbounded).  Million-round sessions set this so books and
  /// outcomes don't accumulate forever; the audit log keeps every round's
  /// entries regardless.
  std::size_t retained_rounds = 0;
};

class AuctionServer : public Endpoint {
 public:
  AuctionServer(std::string address, EventQueue& queue, MessageBus& bus,
                const DoubleAuctionProtocol& protocol, EscrowService& escrow,
                SettlementEngine& settlement, AuditLog& audit, Rng rng,
                ServerConfig config = {});

  /// Registers a client address for round-open/round-closed broadcasts.
  void subscribe(const std::string& address);
  void subscribe(AddressId address);

  /// Swaps the clearing protocol for subsequent rounds (e.g. a TPD with a
  /// re-tuned threshold).  `protocol` must outlive the server.  Throws
  /// std::logic_error while a round is open — the protocol in force when
  /// a round opened is the one that clears it.
  void set_protocol(const DoubleAuctionProtocol& protocol);

  /// Replaces the server config for subsequent rounds (the runtime-config
  /// seam: the exchange pushes RuntimeConfig::active() here at round
  /// boundaries).  Throws std::logic_error while a round is open — the
  /// config in force when a round opened governs it.
  void set_config(const ServerConfig& config);
  const ServerConfig& config() const { return config_; }

  /// Opens a new round that closes `open_for` from now.  Only one round
  /// may be open at a time (throws std::logic_error otherwise).
  RoundId open_round(SimTime open_for);

  void on_message(const Envelope& envelope) override;
  /// Validates a same-instant volley of submissions in one pass: one
  /// dedup probe per message (duplicates share ids) but escrow lookups
  /// are reused across a retransmission run and the book grows once.
  void on_batch(const Envelope* const* envelopes, std::size_t count) override;

  const std::string& address() const { return address_; }
  AddressId address_id() const { return address_id_; }

  /// Completed-round views (nullptr/nullopt for unknown or open rounds).
  const Outcome* outcome_of(RoundId round) const;
  const SettlementReport* settlement_of(RoundId round) const;

  /// The ranked view a completed round cleared from (tie order frozen) —
  /// the cheap snapshot the adversarial co-simulation plans against; no
  /// re-sort, the lanes already exist.  nullptr for unknown/evicted
  /// rounds.
  const SortedBook* ranked_of(RoundId round) const;

  /// Close time of the currently open round (nullopt when none is open).
  /// Lets a co-simulation bound a partial drive strictly before the
  /// round's clearing event.
  std::optional<SimTime> round_closes_at() const;

  /// Re-clears a completed round from its retained ranked view and the
  /// post-ranking RNG state; returns the recomputed outcome for
  /// comparison against the stored one.  No sort work: the ranking was
  /// frozen (footnote-5 tie-breaking included) when the round cleared.
  std::optional<Outcome> replay_round(RoundId round) const;

  /// Rounds cleared over the server's lifetime (not capped by
  /// retained_rounds).
  std::size_t rounds_completed() const { return completed_count_; }
  /// Most recently completed round still retained (nullopt before the
  /// first clear) — what `book dump` ranks from.
  std::optional<RoundId> latest_round() const {
    if (completion_order_.empty()) return std::nullopt;
    return completion_order_.back();
  }
  bool round_open() const { return open_round_.has_value(); }

  /// Cumulative incremental-ranking work counters across all rounds
  /// (galloping inserts, entries shifted, tie-run fixups; sorts_at_close
  /// stays 0 — the claim the bench and tests pin).
  const LiveBookStats& book_stats() const { return live_book_.stats(); }

  /// Wires the server into its shard's telemetry: the LiveBookStats
  /// counters surface as callback metrics, rounds-closed becomes a
  /// counter, per-round bid/trade sizes become sim-deterministic
  /// histograms, and clear_round gains a trace span (plus a wall-clock
  /// round-close latency histogram when the session runs in wallclock
  /// mode).
  void bind_telemetry(obs::ShardTelemetry& telemetry,
                      const obs::SessionTelemetry& session);

 private:
  struct SubmittedBid {
    AddressId reply_to;
    Side side;
    Money value;
  };

  /// Open-addressing identity -> declaration table for the open round,
  /// backed by the round arena.  The round lifecycle only ever probes
  /// (find), inserts, and reads size() — iteration order is never used —
  /// so flat linear-probed slots replace the per-round unordered_map and
  /// its node allocations.  Slots live in arena storage that dies at the
  /// next round's reset; growing rehashes into a fresh arena span (the
  /// old one is simply abandoned until then).
  class SubmittedTable {
   public:
    void reset(MonotonicArena& arena, std::size_t expected_entries);
    const SubmittedBid* find(IdentityId identity) const;
    /// `identity` must not be present (callers probe first).
    void insert(IdentityId identity, const SubmittedBid& bid);
    std::size_t size() const { return size_; }

   private:
    struct Slot {
      std::uint64_t key;  ///< IdentityId value; kEmptyKey marks a free slot
      SubmittedBid bid;
    };
    static constexpr std::uint64_t kEmptyKey = ~std::uint64_t{0};

    std::size_t probe(std::uint64_t key) const {
      // Fibonacci hash of the identity: identities are dense small ints,
      // so multiply-shift spreads them across the table.
      return static_cast<std::size_t>((key * 0x9e3779b97f4a7c15ull) >>
                                      shift_) &
             mask_;
    }
    void grow();

    MonotonicArena* arena_ = nullptr;
    std::span<Slot> slots_;
    std::size_t mask_ = 0;
    unsigned shift_ = 64;
    std::size_t size_ = 0;
  };

  struct OpenRound {
    RoundId id;
    SimTime close_at;
    /// When the round opened — the start of the per-round trace span.
    SimTime opened_at;
    /// The round's book lives in the server's persistent LiveBook
    /// (`live_book_`), reset at open_round so its buffers survive across
    /// rounds; accepted bids are galloping-inserted there at their rank.
    std::uint64_t clear_seed = 0;
    /// Accepted declaration per identity: reply address for fill notices
    /// plus the declaration itself, so an identical retransmission can be
    /// acked idempotently (at-least-once clients retry until acked).
    /// Backed by `round_arena_`, reset at open_round.
    SubmittedTable submitted;
  };
  struct CompletedRound {
    RoundId id;
    /// The ranked view the round cleared from, tie-breaking frozen — the
    /// retained replay/audit artifact (the raw book in rank order).
    SortedBook ranked;
    std::uint64_t clear_seed = 0;
    /// RNG state after the footnote-5 ranking draws; replay hands this to
    /// clear_sorted so protocol-internal randomness replays exactly.
    Rng replay_rng{0};
    /// The protocol that cleared this round (set_protocol may have
    /// changed the active one since); replay must use this.
    const DoubleAuctionProtocol* protocol = nullptr;
    Outcome outcome;
    SettlementReport settlement;
  };

  /// Escrow-lookup cache shared across one delivery batch; consecutive
  /// submissions from the same identity (a retransmission volley) probe
  /// escrow once.
  struct EscrowCache {
    IdentityId identity = IdentityId::invalid();
    Money held{};
  };

  void handle_submit(const Envelope& envelope, const SubmitBidMsg& msg,
                     EscrowCache& cache);
  void announce_round(const OpenRound& round);
  void schedule_announcements(RoundId id);
  void clear_round();
  void reject(const Envelope& envelope, const SubmitBidMsg& msg,
              const std::string& reason);

  std::string address_;
  AddressId address_id_;
  EventQueue& queue_;
  MessageBus& bus_;
  const DoubleAuctionProtocol* protocol_;
  EscrowService& escrow_;
  SettlementEngine& settlement_;
  AuditLog& audit_;
  Rng rng_;
  ServerConfig config_;

  std::vector<AddressId> subscribers_;
  std::optional<OpenRound> open_round_;
  /// Incrementally ranked book of the open round; buffers persist across
  /// rounds, so a warm server's submission path never allocates.
  LiveBook live_book_;
  /// Round-lifetime scratch: the submitted table's slots (and anything
  /// else alive only until the round clears).  Reset at open_round — the
  /// cleared round's table is read during clear_round, strictly before
  /// the next open.
  MonotonicArena round_arena_;
  /// Outcome-validation lookup lanes, reused every round.
  ValidationScratch validation_scratch_;
  /// Bid count of the most recent round — the next round's table sizing
  /// hint, so steady-state rounds never rehash mid-round.
  std::size_t last_round_bids_ = 0;
  std::unordered_map<RoundId, CompletedRound> completed_;
  /// Completion order, for retained_rounds eviction (oldest first).
  std::deque<RoundId> completion_order_;
  std::size_t completed_count_ = 0;
  DedupFilter dedup_;
  std::uint64_t next_round_ = 0;

  // Telemetry (null until bind_telemetry; clear_round guards on them).
  const obs::SessionTelemetry* session_telemetry_ = nullptr;
  obs::TraceSink* trace_ = nullptr;
  obs::Histogram* round_bids_hist_ = nullptr;
  obs::Histogram* round_trades_hist_ = nullptr;
  obs::Histogram* round_close_wall_hist_ = nullptr;  // wallclock mode only
};

}  // namespace fnda
