#include "market/multi_exchange.h"

#include <sstream>
#include <stdexcept>

namespace {

std::string identity_detail(fnda::IdentityId identity, fnda::Money amount) {
  std::ostringstream os;
  os << identity << ' ' << amount;
  return os.str();
}

}  // namespace

namespace fnda {

MultiServerExchange::MultiServerExchange(const DoubleAuctionProtocol& protocol,
                                         MultiExchangeConfig config)
    : config_(config) {
  if (config_.shards == 0) {
    throw std::invalid_argument("MultiServerExchange: shards must be >= 1");
  }
  Rng root(config_.seed);
  bus_ = std::make_unique<MessageBus>(queue_, config_.bus, root.split());
  escrow_ = std::make_unique<EscrowService>(cash_);
  settlement_ = std::make_unique<SettlementEngine>(registry_, cash_, goods_,
                                                   *escrow_);
  servers_.reserve(config_.shards);
  for (std::size_t shard = 0; shard < config_.shards; ++shard) {
    servers_.push_back(std::make_unique<AuctionServer>(
        "exchange-" + std::to_string(shard), queue_, *bus_, protocol,
        *escrow_, *settlement_, audit_, root.split(), config_.server));
  }
}

std::size_t MultiServerExchange::shard_of(AccountId account) const {
  // splitmix64 finalizer: a plain multiplicative hash keeps the low bits
  // of sequential account ids, which correlates shard with creation
  // parity (and thus with any alternating buyer/seller pattern).
  std::uint64_t x = account.value() + 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  x ^= x >> 31;
  return static_cast<std::size_t>(x % servers_.size());
}

TradingClient& MultiServerExchange::add_trader(Side role, Money true_value) {
  return add_trader(role, true_value, Strategy::truthful(role, true_value));
}

TradingClient& MultiServerExchange::add_trader(Side role, Money true_value,
                                               Strategy strategy) {
  const AccountId account = registry_.create_account();
  cash_.grant(account, config_.initial_cash);
  if (role == Side::kSeller) goods_.grant(account, 1);

  AuctionServer& home = *servers_[shard_of(account)];
  const std::string address = "trader-" + std::to_string(next_client_++);
  auto client = std::make_unique<TradingClient>(
      address, account, role, true_value, queue_, *bus_, registry_, *escrow_,
      home.address(), config_.client);
  client->set_strategy(std::move(strategy));
  home.subscribe(client->address_id());
  traders_.push_back(std::move(client));
  return *traders_.back();
}

std::vector<RoundId> MultiServerExchange::run_round(SimTime open_for) {
  std::vector<RoundId> rounds;
  rounds.reserve(servers_.size());
  for (auto& server : servers_) {
    rounds.push_back(server->open_round(open_for));
  }
  // One quiescence drive covers every shard: events interleave on the
  // shared queue exactly as they would on one wire.
  while (queue_.run() > 0) {
  }
  return rounds;
}

std::size_t MultiServerExchange::rounds_completed() const {
  std::size_t total = 0;
  for (const auto& server : servers_) total += server->rounds_completed();
  return total;
}

Money MultiServerExchange::close_market() {
  for (const auto& server : servers_) {
    if (server->round_open()) {
      throw std::logic_error("close_market: a round is still open");
    }
  }
  Money refunded;
  for (IdentityId identity : escrow_->identities_with_deposits()) {
    const Money amount = escrow_->held(identity);
    escrow_->refund(identity, registry_.owner(identity));
    refunded += amount;
    audit_.append(queue_.now(), RoundId::invalid(),
                  AuditKind::kDepositRefunded,
                  identity_detail(identity, amount));
  }
  return refunded;
}

}  // namespace fnda
