#include "market/multi_exchange.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "common/sweep_kernel.h"

namespace {

std::string identity_detail(fnda::IdentityId identity, fnda::Money amount) {
  std::ostringstream os;
  os << identity << ' ' << amount;
  return os.str();
}

}  // namespace

namespace fnda {

MultiServerExchange::MultiServerExchange(const DoubleAuctionProtocol& protocol,
                                         MultiExchangeConfig config)
    : config_(config),
      protocol_(&protocol),
      runtime_config_(config.server),
      paused_(config.shards == 0 ? 1 : config.shards, false) {
  if (config_.shards == 0) {
    throw std::invalid_argument("MultiServerExchange: shards must be >= 1");
  }
  threads_ = config_.threads;
  if (threads_ == 0) {
    threads_ = std::thread::hardware_concurrency();
    if (threads_ == 0) threads_ = 1;
  }
  threads_ = std::min(threads_, config_.shards);

  fabric_ = std::make_unique<Fabric>(config_.shards, config_.mailbox_capacity);
  fabric_->set_topology(config_.topology);

  // RNG derivation order is part of the replay contract.  The seed root
  // hands out one stream for the bus layer, then one server stream per
  // shard in shard order — exactly the draws the shared-queue engine
  // made, so equal seeds reproduce the pre-sharding clearing seeds.  The
  // bus layer stream is the single bus's RNG when shards == 1 (making
  // that case bit-identical to ExchangeSimulation) and the parent of one
  // sub-stream per shard bus otherwise.
  Rng root(config_.seed);
  Rng bus_master = root.split();
  for (std::size_t s = 0; s < config_.shards; ++s) {
    Shard& shard = shards_.emplace_back();
    BusConfig bus_config = config_.bus;
    bus_config.first_message_id = s;
    bus_config.message_id_stride = config_.shards;
    const Rng bus_rng =
        config_.shards == 1 ? bus_master : bus_master.split();
    shard.bus = std::make_unique<MessageBus>(shard.queue, bus_config, bus_rng,
                                             *fabric_,
                                             static_cast<std::uint32_t>(s));
    shard.registry = IdentityRegistry(s, config_.shards);
    shard.escrow = std::make_unique<EscrowService>(shard.cash);
    shard.settlement = std::make_unique<SettlementEngine>(
        shard.registry, shard.cash, shard.goods, *shard.escrow);
    shard.server = std::make_unique<AuctionServer>(
        "exchange-" + std::to_string(s), shard.queue, *shard.bus, protocol,
        *shard.escrow, *shard.settlement, shard.audit, root.split(),
        config_.server);
  }

  std::vector<EpochShard> loops;
  loops.reserve(shards_.size());
  for (Shard& shard : shards_) {
    loops.push_back(EpochShard{&shard.queue, shard.bus.get()});
  }
  const SimTime lookahead = std::max(SimTime{1}, config_.bus.base_latency);
  driver_ = std::make_unique<EpochDriver>(*fabric_, std::move(loops),
                                          lookahead, config_.adaptive_epochs);

  if (config_.telemetry.enabled) {
    telemetry_ = std::make_unique<obs::SessionTelemetry>(config_.shards,
                                                         config_.telemetry);
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      obs::ShardTelemetry& shard_telemetry = telemetry_->shard(s);
      if (config_.telemetry.wallclock) {
        shard_telemetry.trace.set_clock(
            [t = telemetry_.get()] { return t->wall_micros(); });
      } else {
        shard_telemetry.trace.set_clock(
            [q = &shards_[s].queue] { return q->now().micros; });
      }
      shards_[s].bus->bind_telemetry(shard_telemetry);
      shards_[s].server->bind_telemetry(shard_telemetry, *telemetry_);
      shards_[s].escrow->bind_metrics(shard_telemetry.metrics);
      shards_[s].settlement->bind_metrics(shard_telemetry.metrics);
    }
    if (config_.telemetry.wallclock) {
      telemetry_->driver().trace.set_clock(
          [t = telemetry_.get()] { return t->wall_micros(); });
    }
    driver_->bind_telemetry(*telemetry_);
    // Threshold-sweep kernel utilization, exposed as deltas since bind:
    // the kernel counters are process-global (sim tools share them), so
    // anchoring at bind time keeps this session's metrics a function of
    // this session's work — zero for market sessions, which never sweep —
    // and therefore identical across kernel builds and thread counts.
    obs::MetricsRegistry& driver_registry = telemetry_->driver().metrics;
    const simd::KernelCounters& kernel = simd::kernel_counters();
    driver_registry.counter_fn(
        "fnda_sweep_kernel_vector_elems_total",
        [&kernel, base = kernel.vector_elems.load(std::memory_order_relaxed)] {
          return kernel.vector_elems.load(std::memory_order_relaxed) - base;
        });
    driver_registry.counter_fn(
        "fnda_sweep_kernel_tail_elems_total",
        [&kernel, base = kernel.tail_elems.load(std::memory_order_relaxed)] {
          return kernel.tail_elems.load(std::memory_order_relaxed) - base;
        });
    driver_registry.counter_fn(
        "fnda_sweep_kernel_calls_total",
        [&kernel, base = kernel.calls.load(std::memory_order_relaxed)] {
          return kernel.calls.load(std::memory_order_relaxed) - base;
        });
  }
}

std::size_t MultiServerExchange::shard_of(AccountId account) const {
  // splitmix64 finalizer: a plain multiplicative hash keeps the low bits
  // of sequential account ids, which correlates shard with creation
  // parity (and thus with any alternating buyer/seller pattern).
  std::uint64_t x = account.value() + 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  x ^= x >> 31;
  return static_cast<std::size_t>(x % shards_.size());
}

TradingClient& MultiServerExchange::add_trader(Side role, Money true_value) {
  return add_trader(role, true_value, Strategy::truthful(role, true_value));
}

TradingClient& MultiServerExchange::add_trader(Side role, Money true_value,
                                               Strategy strategy) {
  // Account ids come from one exchange-level counter (matching the old
  // shared registry), so shard_of and the account/shard assignment are
  // unchanged; everything behind the id lives on the home shard.
  const AccountId account{next_account_++};
  Shard& home = shards_[shard_of(account)];
  home.cash.grant(account, config_.initial_cash);
  if (role == Side::kSeller) home.goods.grant(account, 1);

  const std::string address = "trader-" + std::to_string(next_client_++);
  auto client = std::make_unique<TradingClient>(
      address, account, role, true_value, home.queue, *home.bus,
      home.registry, *home.escrow, home.server->address(), config_.client);
  client->set_strategy(std::move(strategy));
  home.server->subscribe(client->address_id());
  traders_.push_back(std::move(client));
  return *traders_.back();
}

std::vector<RoundId> MultiServerExchange::run_round(SimTime open_for) {
  std::vector<RoundId> rounds = open_rounds(open_for);
  drive_to_quiescence();
  return rounds;
}

std::vector<RoundId> MultiServerExchange::open_rounds(SimTime open_for) {
  // Round boundary: every shard is quiescent and this runs on the driver
  // thread, so promoting a pending config generation here is race-free
  // and, by construction, identical for every --threads value.
  if (runtime_config_.apply_pending(next_round_stamp_)) {
    for (Shard& shard : shards_) {
      shard.server->set_config(runtime_config_.active());
    }
  }
  ++next_round_stamp_;
  std::vector<RoundId> rounds;
  rounds.reserve(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (paused_[s]) {
      rounds.push_back(RoundId::invalid());
      continue;
    }
    rounds.push_back(shards_[s].server->open_round(open_for));
  }
  return rounds;
}

void MultiServerExchange::pause_shard(std::size_t shard) {
  paused_.at(shard) = true;
}

void MultiServerExchange::resume_shard(std::size_t shard) {
  paused_.at(shard) = false;
}

std::size_t MultiServerExchange::paused_count() const {
  std::size_t count = 0;
  for (const bool paused : paused_) count += paused ? 1 : 0;
  return count;
}

EpochStats MultiServerExchange::drive_until(
    const std::vector<SimTime>& bounds) {
  const EpochStats stats = driver_->drive_until(bounds, threads_);
  epoch_totals_.merge(stats);
  return stats;
}

void MultiServerExchange::drive_to_quiescence() {
  // One full drive's stats become last_drive_ — run_round keeps reporting
  // exactly what it always has, whether or not bounded drives preceded it.
  last_drive_ = driver_->drive(threads_);
  epoch_totals_.merge(last_drive_);
}

std::size_t MultiServerExchange::rounds_completed() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.server->rounds_completed();
  }
  return total;
}

Money MultiServerExchange::close_market() {
  for (const Shard& shard : shards_) {
    if (shard.server->round_open()) {
      throw std::logic_error("close_market: a round is still open");
    }
  }
  Money refunded;
  for (Shard& shard : shards_) {
    for (IdentityId identity : shard.escrow->identities_with_deposits()) {
      const Money amount = shard.escrow->held(identity);
      shard.escrow->refund(identity, shard.registry.owner(identity));
      refunded += amount;
      shard.audit.append(shard.queue.now(), RoundId::invalid(),
                         AuditKind::kDepositRefunded,
                         identity_detail(identity, amount));
    }
  }
  return refunded;
}

SimTime MultiServerExchange::now() const {
  SimTime latest{};
  for (const Shard& shard : shards_) {
    latest = std::max(latest, shard.queue.now());
  }
  return latest;
}

BusStats MultiServerExchange::bus_stats() const {
  BusStats merged;
  for (const Shard& shard : shards_) merged.merge(shard.bus->stats());
  return merged;
}

LiveBookStats MultiServerExchange::book_stats() const {
  LiveBookStats merged;
  for (const Shard& shard : shards_) merged.merge(shard.server->book_stats());
  return merged;
}

std::vector<BusStats> MultiServerExchange::shard_bus_stats() const {
  std::vector<BusStats> stats;
  stats.reserve(shards_.size());
  for (const Shard& shard : shards_) stats.push_back(shard.bus->stats());
  return stats;
}

std::vector<AuditRecord> MultiServerExchange::merged_audit() const {
  std::vector<AuditRecord> merged;
  std::size_t total = 0;
  for (const Shard& shard : shards_) total += shard.audit.records().size();
  merged.reserve(total);
  // Stable merge by timestamp with shard index as the tiebreak: append
  // in shard order, then stable-sort by time.  Within one shard the log
  // is already chronological, so the result is a canonical total order.
  for (const Shard& shard : shards_) {
    const auto& records = shard.audit.records();
    merged.insert(merged.end(), records.begin(), records.end());
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const AuditRecord& a, const AuditRecord& b) {
                     return a.at < b.at;
                   });
  return merged;
}

std::size_t MultiServerExchange::audit_count(AuditKind kind) const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) total += shard.audit.count(kind);
  return total;
}

Money MultiServerExchange::cash_balance(AccountId account) const {
  // An account's funds live on its home shard, except the exchange
  // account (0), which every shard's settlement credits; summing covers
  // both without special cases.
  Money total;
  for (const Shard& shard : shards_) {
    total += shard.cash.balance(account);
  }
  return total;
}

Money MultiServerExchange::cash_total() const {
  Money total;
  for (const Shard& shard : shards_) total += shard.cash.total();
  return total;
}

std::size_t MultiServerExchange::goods_units(AccountId account) const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) total += shard.goods.units(account);
  return total;
}

std::size_t MultiServerExchange::goods_total() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) total += shard.goods.total();
  return total;
}

Money MultiServerExchange::escrow_total_held() const {
  Money total;
  for (const Shard& shard : shards_) total += shard.escrow->total_held();
  return total;
}

void MultiServerExchange::grant_cash(AccountId account, Money amount) {
  shards_[shard_of(account)].cash.grant(account, amount);
}

void MultiServerExchange::grant_goods(AccountId account, std::size_t units) {
  shards_[shard_of(account)].goods.grant(account, units);
}

}  // namespace fnda
