#include "market/settlement.h"

namespace fnda {

void SettlementEngine::bind_metrics(obs::MetricsRegistry& registry) {
  delivered_counter_ = &registry.counter("fnda_settlement_delivered_total");
  failed_counter_ = &registry.counter("fnda_settlement_failed_total");
  confiscated_micros_counter_ =
      &registry.counter("fnda_settlement_confiscated_micros_total");
  spread_micros_counter_ =
      &registry.counter("fnda_settlement_spread_micros_total");
}

SettlementReport SettlementEngine::settle(RoundId round,
                                          const Outcome& outcome) {
  SettlementReport report;
  report.round = round;

  std::vector<const Fill*> buys;
  std::vector<const Fill*> sells;
  for (const Fill& fill : outcome.fills()) {
    (fill.side == Side::kBuyer ? buys : sells).push_back(&fill);
  }

  const AccountId exchange = IdentityRegistry::exchange_account();
  const std::size_t pairs = std::min(buys.size(), sells.size());
  for (std::size_t t = 0; t < pairs; ++t) {
    Delivery delivery;
    delivery.buyer = buys[t]->identity;
    delivery.seller = sells[t]->identity;
    delivery.buyer_account = registry_.owner(delivery.buyer);
    delivery.seller_account = registry_.owner(delivery.seller);

    if (goods_.transfer_unit(delivery.seller_account,
                             delivery.buyer_account)) {
      delivery.delivered = true;
      delivery.buyer_paid = buys[t]->price;
      delivery.seller_received = sells[t]->price;
      cash_.transfer(delivery.buyer_account, exchange, delivery.buyer_paid);
      cash_.transfer(exchange, delivery.seller_account,
                     delivery.seller_received);
      report.exchange_spread +=
          delivery.buyer_paid - delivery.seller_received;
    } else {
      // Discovered false-name (or otherwise insolvent) seller: cancel the
      // pair and seize the deposit.
      delivery.delivered = false;
      delivery.confiscated = escrow_.confiscate(delivery.seller, exchange);
      report.confiscated_total += delivery.confiscated;
      ++report.failed;
    }
    report.deliveries.push_back(delivery);
  }
  if (delivered_counter_ != nullptr) {
    delivered_counter_->add(report.deliveries.size() - report.failed);
    failed_counter_->add(report.failed);
    confiscated_micros_counter_->add(
        static_cast<std::uint64_t>(report.confiscated_total.micros()));
    spread_micros_counter_->add(
        static_cast<std::uint64_t>(report.exchange_spread.micros()));
  }
  return report;
}

}  // namespace fnda
