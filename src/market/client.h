// Trading clients.
//
// A client is one *account* pursuing one strategy.  On every round-open
// broadcast it mints a fresh identity per declaration (false names are
// free), posts the required deposit, and submits its bids over the bus.
// Truthful clients have a single own-side declaration; attackers carry
// whatever Strategy they were configured with.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/flat_set.h"
#include "market/bus.h"
#include "market/clock.h"
#include "market/escrow.h"
#include "market/identity.h"
#include "mechanism/strategy.h"
#include "mechanism/utility.h"

namespace fnda {

struct ClientConfig {
  /// Deposit posted for each freshly minted identity.
  Money deposit_per_identity = Money::from_units(10);
  /// Retransmit an unacked bid after this long; zero disables retries.
  /// The server acks identical retransmissions idempotently, so retrying
  /// over a lossy bus is safe.
  SimTime retry_interval{0};
  /// Retransmissions per bid before giving up.
  std::size_t max_retries = 3;
};

class TradingClient : public Endpoint {
 public:
  TradingClient(std::string address, AccountId account, Side role,
                Money true_value, EventQueue& queue, MessageBus& bus,
                IdentityRegistry& registry, EscrowService& escrow,
                std::string server_address, ClientConfig config = {});

  /// Replaces the default truthful strategy.
  void set_strategy(Strategy strategy) { strategy_ = std::move(strategy); }

  /// Deferred mode (adversarial co-simulation): round-open announcements
  /// are latched instead of answered, and the bids go out only when the
  /// scheduler calls `submit_pending()` — after it has finished planning
  /// this round's strategy against the previous round's book.  The
  /// submission path (identity minting, deposits, retries) is byte-for-
  /// byte the immediate one, just time-shifted to the caller's instant.
  void set_deferred(bool deferred) { deferred_ = deferred; }

  /// Submits the latched round's bids with the current strategy; no-op
  /// when no announcement is pending.  Returns the number of declarations
  /// submitted.
  std::size_t submit_pending();

  /// True when a round-open announcement is latched and unanswered.
  bool has_pending_round() const { return pending_.has_value(); }

  void on_message(const Envelope& envelope) override;

  AccountId account() const { return account_; }
  Side role() const { return role_; }
  Money true_value() const { return true_value_; }
  const std::string& address() const { return address_; }
  AddressId address_id() const { return address_id_; }

  /// Aggregate cleared position across all of this account's identities,
  /// reconstructed from fill notices.
  const AccountPosition& position() const { return position_; }

  /// Quasi-linear utility of the position as *announced* (before
  /// settlement cancellations); the exchange-level utility from ledgers is
  /// the authoritative number.
  double announced_utility(const UtilityModel& model = UtilityModel{}) const {
    return model.evaluate(role_, true_value_, position_);
  }

  std::size_t bids_accepted() const { return accepted_; }
  std::size_t bids_rejected() const { return rejected_; }
  std::size_t retransmissions() const { return retransmissions_; }
  std::size_t rounds_seen() const { return rounds_seen_; }
  std::size_t settlement_failures() const { return settlement_failures_; }
  const std::vector<FillNoticeMsg>& fills() const { return fills_; }
  const std::vector<IdentityId>& identities() const { return identities_; }

 private:
  void on_round_open(const RoundOpenMsg& msg);
  void submit_round(const RoundOpenMsg& msg);
  void submit_with_retry(const SubmitBidMsg& msg, SimTime deadline,
                         std::size_t retries_left);

  std::string address_;
  AddressId address_id_;
  AccountId account_;
  Side role_;
  Money true_value_;
  EventQueue& queue_;
  MessageBus& bus_;
  IdentityRegistry& registry_;
  EscrowService& escrow_;
  AddressId server_id_;
  ClientConfig config_;
  Strategy strategy_;

  std::vector<IdentityId> identities_;
  std::vector<FillNoticeMsg> fills_;
  AccountPosition position_;
  DedupFilter dedup_;
  std::size_t accepted_ = 0;
  std::size_t rejected_ = 0;
  std::size_t rounds_seen_ = 0;
  std::size_t settlement_failures_ = 0;
  std::size_t retransmissions_ = 0;
  /// Identities whose bid the server has acknowledged (either way).
  FlatU64Set acked_;
  /// Rounds already bid in (round-open heartbeats repeat announcements).
  FlatU64Set rounds_bid_;
  /// Deferred mode: latch announcements for submit_pending().
  bool deferred_ = false;
  std::optional<RoundOpenMsg> pending_;
};

}  // namespace fnda
