#include "market/escrow.h"

namespace fnda {

void EscrowService::post(IdentityId identity, AccountId payer, Money amount) {
  cash_.transfer(payer, escrow_account(), amount);
  deposits_[identity] += amount;
}

void EscrowService::refund(IdentityId identity, AccountId payee) {
  auto it = deposits_.find(identity);
  if (it == deposits_.end() || it->second == Money{}) return;
  cash_.transfer(escrow_account(), payee, it->second);
  it->second = Money{};
}

Money EscrowService::confiscate(IdentityId identity, AccountId exchange) {
  auto it = deposits_.find(identity);
  if (it == deposits_.end() || it->second == Money{}) return Money{};
  const Money seized = it->second;
  cash_.transfer(escrow_account(), exchange, seized);
  it->second = Money{};
  return seized;
}

Money EscrowService::held(IdentityId identity) const {
  auto it = deposits_.find(identity);
  return it == deposits_.end() ? Money{} : it->second;
}

std::vector<IdentityId> EscrowService::identities_with_deposits() const {
  std::vector<IdentityId> result;
  for (const auto& [identity, amount] : deposits_) {
    if (amount > Money{}) result.push_back(identity);
  }
  return result;
}

Money EscrowService::total_held() const {
  Money sum;
  for (const auto& [identity, amount] : deposits_) sum += amount;
  return sum;
}

}  // namespace fnda
