#include "market/escrow.h"

namespace fnda {

void EscrowService::bind_metrics(obs::MetricsRegistry& registry) {
  posted_counter_ = &registry.counter("fnda_escrow_posted_total");
  refunded_counter_ = &registry.counter("fnda_escrow_refunded_total");
  seized_counter_ = &registry.counter("fnda_escrow_seized_total");
  seized_micros_counter_ =
      &registry.counter("fnda_escrow_seized_micros_total");
  registry.gauge_fn(
      "fnda_escrow_held_micros",
      [this] { return total_held().micros(); }, obs::GaugeMerge::kSum);
}

void EscrowService::post(IdentityId identity, AccountId payer, Money amount) {
  cash_.transfer(payer, escrow_account(), amount);
  deposits_[identity] += amount;
  if (posted_counter_ != nullptr) posted_counter_->add();
}

void EscrowService::refund(IdentityId identity, AccountId payee) {
  auto it = deposits_.find(identity);
  if (it == deposits_.end() || it->second == Money{}) return;
  cash_.transfer(escrow_account(), payee, it->second);
  it->second = Money{};
  if (refunded_counter_ != nullptr) refunded_counter_->add();
}

Money EscrowService::confiscate(IdentityId identity, AccountId exchange) {
  auto it = deposits_.find(identity);
  if (it == deposits_.end() || it->second == Money{}) return Money{};
  const Money seized = it->second;
  cash_.transfer(escrow_account(), exchange, seized);
  it->second = Money{};
  if (seized_counter_ != nullptr) {
    seized_counter_->add();
    seized_micros_counter_->add(static_cast<std::uint64_t>(seized.micros()));
  }
  return seized;
}

Money EscrowService::held(IdentityId identity) const {
  auto it = deposits_.find(identity);
  return it == deposits_.end() ? Money{} : it->second;
}

std::vector<IdentityId> EscrowService::identities_with_deposits() const {
  std::vector<IdentityId> result;
  for (const auto& [identity, amount] : deposits_) {
    if (amount > Money{}) result.push_back(identity);
  }
  return result;
}

Money EscrowService::total_held() const {
  Money sum;
  for (const auto& [identity, amount] : deposits_) sum += amount;
  return sum;
}

}  // namespace fnda
