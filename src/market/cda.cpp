#include "market/cda.h"

namespace fnda {

bool ContinuousDoubleAuction::remove_resting(Side side, IdentityId identity) {
  auto scan = [identity](auto& book) {
    for (auto level = book.begin(); level != book.end(); ++level) {
      auto& queue = level->second;
      for (auto it = queue.begin(); it != queue.end(); ++it) {
        if (it->identity == identity) {
          queue.erase(it);
          if (queue.empty()) book.erase(level);
          return true;
        }
      }
    }
    return false;
  };
  return side == Side::kBuyer ? scan(bids_) : scan(asks_);
}

bool ContinuousDoubleAuction::cancel(IdentityId identity) {
  return remove_resting(Side::kBuyer, identity) ||
         remove_resting(Side::kSeller, identity);
}

std::optional<ContinuousDoubleAuction::Trade> ContinuousDoubleAuction::submit(
    Side side, IdentityId identity, Money limit, SimTime now) {
  // Replace any previous open order from this identity.
  cancel(identity);

  if (side == Side::kBuyer) {
    if (!asks_.empty() && asks_.begin()->first <= limit) {
      auto level = asks_.begin();
      const RestingOrder resting = level->second.front();
      level->second.pop_front();
      if (level->second.empty()) asks_.erase(level);
      const Trade trade{identity, resting.identity, resting.price, now};
      trades_.push_back(trade);
      return trade;
    }
    bids_[limit].push_back(RestingOrder{identity, limit, next_sequence_++});
    return std::nullopt;
  }

  if (!bids_.empty() && bids_.begin()->first >= limit) {
    auto level = bids_.begin();
    const RestingOrder resting = level->second.front();
    level->second.pop_front();
    if (level->second.empty()) bids_.erase(level);
    const Trade trade{resting.identity, identity, resting.price, now};
    trades_.push_back(trade);
    return trade;
  }
  asks_[limit].push_back(RestingOrder{identity, limit, next_sequence_++});
  return std::nullopt;
}

std::optional<Money> ContinuousDoubleAuction::best_bid() const {
  if (bids_.empty()) return std::nullopt;
  return bids_.begin()->first;
}

std::optional<Money> ContinuousDoubleAuction::best_ask() const {
  if (asks_.empty()) return std::nullopt;
  return asks_.begin()->first;
}

std::size_t ContinuousDoubleAuction::open_bids() const {
  std::size_t count = 0;
  for (const auto& [price, queue] : bids_) count += queue.size();
  return count;
}

std::size_t ContinuousDoubleAuction::open_asks() const {
  std::size_t count = 0;
  for (const auto& [price, queue] : asks_) count += queue.size();
  return count;
}

bool ContinuousDoubleAuction::crossed() const {
  if (bids_.empty() || asks_.empty()) return false;
  return bids_.begin()->first >= asks_.begin()->first;
}

}  // namespace fnda
