#include "market/live_attack.h"

#include <algorithm>
#include <chrono>
#include <unordered_map>

#include "market/attack_scheduler.h"
#include "market/multi_exchange.h"
#include "obs/metrics.h"

namespace fnda {
namespace {

void fold(std::uint64_t& hash, std::uint64_t word) {
  for (int byte = 0; byte < 8; ++byte) {
    hash ^= (word >> (byte * 8)) & 0xffu;
    hash *= 1099511628211ull;
  }
}

std::uint64_t wall_ns_since(
    const std::chrono::steady_clock::time_point& start) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

/// Greedy efficient surplus of one shard's true-value population: match
/// the highest buyer with the lowest seller while the pair is positive.
std::int64_t efficient_surplus_micros(std::vector<Money> buyers,
                                      std::vector<Money> sellers) {
  std::sort(buyers.begin(), buyers.end(),
            [](Money a, Money b) { return a > b; });
  std::sort(sellers.begin(), sellers.end());
  std::int64_t total = 0;
  const std::size_t pairs = std::min(buyers.size(), sellers.size());
  for (std::size_t i = 0; i < pairs; ++i) {
    if (buyers[i] <= sellers[i]) break;
    total += (buyers[i] - sellers[i]).micros();
  }
  return total;
}

}  // namespace

LiveAttackResult run_live_attack_session(const DoubleAuctionProtocol& protocol,
                                         const LiveAttackConfig& config) {
  const auto session_started = std::chrono::steady_clock::now();

  MultiExchangeConfig mx;
  mx.shards = config.shards;
  mx.threads = config.threads;
  mx.bus.base_latency = config.base_latency;
  mx.bus.jitter = config.jitter;
  mx.server.domain =
      ValueDomain{Money::from_units(0), Money::from_units(config.value_high)};
  // Round r's ranked book must survive while round r+1 completes (the
  // scheduler snapshots it at the barrier, but the co-sim tests also
  // replay it), so retain at least two.
  mx.server.retained_rounds = std::max<std::size_t>(config.retained_rounds, 2);
  // Deposits: one identity per declaration per round; attackers mint up
  // to max_declarations of them.  Endow enough cash that escrow never
  // drives balances negative.
  mx.initial_cash = Money::from_units(
      static_cast<std::int64_t>(config.rounds + 1) * 10 *
          static_cast<std::int64_t>(config.max_declarations + 1) +
      1'000);
  mx.seed = config.seed;
  mx.adaptive_epochs = config.adaptive;
  mx.telemetry = config.telemetry;

  MultiServerExchange exchange(protocol, mx);

  // Honest ZI population first, attackers after: account ids — and with
  // them shard placement and every downstream id stream — do not depend
  // on the attack configuration knobs.
  Rng values(Rng(config.seed ^ 0x5eedu).split());
  for (std::size_t i = 0; i < config.honest; ++i) {
    const Side role = (i % 2 == 0) ? Side::kBuyer : Side::kSeller;
    const Money value = Money::from_units(
        values.uniform_int(config.value_low, config.value_high));
    TradingClient& trader = exchange.add_trader(role, value);
    if (role == Side::kSeller && config.rounds > 1) {
      exchange.grant_goods(trader.account(), config.rounds - 1);
    }
  }

  AttackSchedulerConfig sched;
  sched.search.max_declarations = config.max_declarations;
  sched.search.allow_absence = true;
  sched.search.threads = 1;
  // Fixed evenly spaced grid: population-independent search cost, and a
  // stable candidate space across rounds (warm cache key ingredient).
  sched.search.grid_override.reserve(std::max<std::size_t>(config.grid_points,
                                                           2));
  {
    const std::int64_t lo = config.value_low;
    const std::int64_t hi = config.value_high;
    const std::size_t points = std::max<std::size_t>(config.grid_points, 2);
    for (std::size_t g = 0; g < points; ++g) {
      const std::int64_t units =
          lo + (hi - lo) * static_cast<std::int64_t>(g) /
                   static_cast<std::int64_t>(points - 1);
      sched.search.grid_override.push_back(Money::from_units(units));
    }
  }
  sched.seed = config.seed ^ 0xa77ac4ull;
  sched.warm = config.warm;
  sched.pool_threads = config.search_threads;
  sched.round_budget = config.search_budget;
  AttackScheduler scheduler(exchange, sched);

  Rng attacker_values(Rng(config.seed ^ 0xbad5eedULL).split());
  for (std::size_t i = 0; i < config.attackers; ++i) {
    const Side role = (i % 2 == 0) ? Side::kBuyer : Side::kSeller;
    const Money value = Money::from_units(
        attacker_values.uniform_int(config.value_low, config.value_high));
    TradingClient& attacker = exchange.add_trader(role, value);
    // False-name strategies can sell beyond the endowment (the penalty
    // prices that); stock the honest-side endowment like any seller and
    // cover the extra per-identity deposits.
    if (role == Side::kSeller && config.rounds > 1) {
      exchange.grant_goods(attacker.account(), config.rounds - 1);
    }
    scheduler.add_attacker(attacker);
  }

  obs::MetricsRegistry attack_registry;
  obs::Histogram* latency_hist = nullptr;
  bind_attack_metrics(attack_registry, scheduler.counters(), &latency_hist);
  scheduler.bind_latency_histogram(*latency_hist);

  // True-value maps for the surplus accounting (announced fills pierce
  // the identity veil through the per-shard registry).
  std::unordered_map<std::uint64_t, Money> value_of_account;
  std::vector<std::vector<Money>> shard_buyer_values(exchange.shard_count());
  std::vector<std::vector<Money>> shard_seller_values(exchange.shard_count());
  for (const auto& trader : exchange.traders()) {
    value_of_account.emplace(trader->account().value(), trader->true_value());
    const std::size_t shard = exchange.shard_of(trader->account());
    (trader->role() == Side::kBuyer ? shard_buyer_values
                                    : shard_seller_values)[shard]
        .push_back(trader->true_value());
  }
  std::int64_t efficient_per_round_micros = 0;
  for (std::size_t s = 0; s < exchange.shard_count(); ++s) {
    efficient_per_round_micros += efficient_surplus_micros(
        shard_buyer_values[s], shard_seller_values[s]);
  }

  LiveAttackResult result;
  result.honest = config.honest;
  result.attackers = config.attackers;
  result.shards = exchange.shard_count();
  result.threads = exchange.thread_count();
  result.search_threads = std::max<std::size_t>(config.search_threads, 1);

  std::uint64_t digest = 1469598103934665603ull;
  std::int64_t realized_micros = 0;
  const SimTime margin{config.open_for.micros / 2};

  for (std::size_t r = 0; r < config.rounds; ++r) {
    const auto round_started = std::chrono::steady_clock::now();
    const std::vector<RoundId> rounds = exchange.open_rounds(config.open_for);

    // Bounded drive: clear the honest traffic up to open_for/2 before
    // each shard's close while the searches (launched from round r-1's
    // book) run on the background pool.
    std::vector<SimTime> bounds;
    bounds.reserve(exchange.shard_count());
    for (std::size_t s = 0; s < exchange.shard_count(); ++s) {
      const SimTime close = *exchange.server(s).round_closes_at();
      bounds.push_back(close - margin);
    }
    exchange.drive_until(bounds);

    // Staleness barrier: strategies computed from round r-1 inject into
    // round r, in account order on this thread — deterministic for every
    // exchange thread count and pool size.
    scheduler.join();
    scheduler.apply_and_submit();
    exchange.drive_to_quiescence();

    for (std::size_t s = 0; s < exchange.shard_count(); ++s) {
      const Outcome* outcome = exchange.server(s).outcome_of(rounds[s]);
      if (outcome == nullptr) continue;
      result.trades += outcome->trade_count();
      fold(digest, s);
      fold(digest, rounds[s].value());
      fold(digest, outcome->trade_count());
      const IdentityRegistry& registry = exchange.registry(s);
      for (const Fill& fill : outcome->fills()) {
        fold(digest, fill.side == Side::kBuyer ? 1 : 2);
        fold(digest, fill.identity.value());
        fold(digest, static_cast<std::uint64_t>(fill.price.micros()));
        const AccountId owner = registry.owner(fill.identity);
        const auto it = value_of_account.find(owner.value());
        if (it == value_of_account.end()) continue;
        realized_micros += fill.side == Side::kBuyer ? it->second.micros()
                                                     : -it->second.micros();
      }
    }

    // Overlap setup for the next round: snapshot round r's books and
    // launch the searches before the next open (skipped after the last
    // round — nothing left to plan for).
    if (r + 1 < config.rounds) scheduler.plan_from(rounds);

    result.round_wall_ns.push_back(wall_ns_since(round_started));
    ++result.rounds;
  }
  scheduler.join();

  for (const auto& trader : exchange.traders()) {
    result.bids_accepted += trader->bids_accepted();
    const AccountPosition& position = trader->position();
    fold(digest, position.bought);
    fold(digest, position.sold);
    fold(digest, static_cast<std::uint64_t>(position.paid.micros()));
    fold(digest, static_cast<std::uint64_t>(position.received.micros()));
  }
  fold(digest, static_cast<std::uint64_t>(exchange.cash_total().micros()));
  fold(digest, exchange.goods_total());
  fold(digest,
       static_cast<std::uint64_t>(exchange.escrow_total_held().micros()));

  result.sim_time = exchange.now();
  result.bus = exchange.bus_stats();
  result.epoch = exchange.epoch_totals();
  result.attack = scheduler.counters();
  result.search_wall_ns = scheduler.search_wall_ns();
  result.planned_gain_total = scheduler.planned_gain_total();
  result.profitable_searches = scheduler.profitable_searches();
  const std::int64_t efficient_total =
      efficient_per_round_micros *
      static_cast<std::int64_t>(std::max<std::size_t>(config.rounds, 1));
  result.efficiency_ratio =
      efficient_total > 0 ? static_cast<double>(realized_micros) /
                                static_cast<double>(efficient_total)
                          : 0.0;
  result.digest = digest;
  result.total_wall_ns = wall_ns_since(session_started);
  result.metrics = attack_registry.snapshot();
  return result;
}

}  // namespace fnda
