// Overlapped, warm-started attack planning against the live exchange.
//
// The adversarial co-simulation's control plane: a population of
// false-name attacker accounts lives inside a MultiServerExchange (as
// deferred TradingClients), and this scheduler re-plans each attacker's
// strategy via the manipulation-search engine against the *current* book
// every round, without stalling the exchange:
//
//   * Snapshot at the barrier.  When a round completes, `plan_from`
//     copies each shard's retained ranked lanes (AuctionServer::ranked_of
//     — the SortedBook the round cleared from, tie order frozen; no
//     re-sort) plus the owner account of every entry, and launches the
//     searches on a background worker pool.  The exchange immediately
//     proceeds to open and drive the next round; search and clearing
//     overlap in wall-clock time.
//   * Bounded staleness.  A strategy computed from round r's book is
//     submitted for round r+1 (`apply_and_submit`, called after the
//     bounded drive and `join`).  Round 0 plays each attacker's initial
//     strategy.  Submissions run on the main thread in account order, so
//     every bus/RNG draw sequence — and therefore the exchange output —
//     is bit-identical for every exchange thread count AND every search
//     pool size.
//   * Warm starts.  Each attacker carries a persistent SearchState;
//     `find_best_deviation_warm` revalidates an unchanged book in
//     O(log n) via account_position and otherwise seeds the prune floor
//     with the prior best response's current utility.
//   * Shedding.  An optional per-round search budget caps the number of
//     searches; the rotating window (deterministic in the round index)
//     spreads planning across the population, and shed attackers simply
//     replay their previous strategy.
//
// Withdrawal is a first-class primitive of the candidate space: the
// engine's absence candidate is a full withdrawal, and any smaller
// declaration multiset is a partial one.  The scheduler counts plans that
// shrink the previously applied declaration set (`withdrawals`).
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <thread>
#include <vector>

#include "market/multi_exchange.h"
#include "mechanism/manipulation.h"
#include "mechanism/search_telemetry.h"
#include "obs/metrics.h"

namespace fnda {

struct AttackSchedulerConfig {
  /// Per-account search knobs.  Set `grid_override` for population-
  /// independent cost; `threads` is the per-search engine fan-out (keep 1
  /// — parallelism comes from the pool running whole accounts).
  SearchConfig search{};
  UtilityModel utility{};
  /// Base evaluation seed; each account uses seed + gamma * account id,
  /// fixed across rounds so warm cache keys stay comparable.
  std::uint64_t seed = 0x5eed;
  /// Warm-start wrapper on/off (off = cold engine every round, the
  /// speedup baseline).
  bool warm = true;
  /// Background search workers (0 -> 1).
  std::size_t pool_threads = 1;
  /// Searches per planning round; 0 = the whole population.
  std::size_t round_budget = 0;
};

class AttackScheduler {
 public:
  AttackScheduler(MultiServerExchange& exchange, AttackSchedulerConfig config);
  ~AttackScheduler();

  AttackScheduler(const AttackScheduler&) = delete;
  AttackScheduler& operator=(const AttackScheduler&) = delete;

  /// Registers an attacker account and switches its client to deferred
  /// submission.  Call in account order, before the first round.
  void add_attacker(TradingClient& client);

  /// Snapshots each shard's cleared book for `rounds` (one RoundId per
  /// shard) and launches this round's searches on the background pool.
  /// Returns immediately; overlap the next round's drive, then `join`.
  void plan_from(const std::vector<RoundId>& rounds);

  /// Blocks until every in-flight search finishes, folds the counters
  /// (deterministically, in account order), and rethrows the first
  /// worker exception if any.  Idempotent.
  void join();

  /// Installs each attacker's planned strategy and submits its latched
  /// round announcement, in account order on the calling thread.  Returns
  /// the number of declarations submitted.
  std::size_t apply_and_submit();

  /// Cumulative co-simulation counters (deterministic).
  const AttackSearchCounters& counters() const { return counters_; }
  /// Summed per-search wall time (steady clock; NOT deterministic).
  std::uint64_t search_wall_ns() const { return search_wall_ns_; }
  /// Σ max(0, best - truthful) over all searches run so far.
  double planned_gain_total() const { return planned_gain_total_; }
  /// Searches whose best response strictly beat truth-telling.
  std::uint64_t profitable_searches() const { return profitable_searches_; }
  std::size_t attacker_count() const { return attackers_.size(); }

  /// Optional wall-clock search-latency histogram (microseconds),
  /// recorded at join() in account order.  Never digest-pin it.
  void bind_latency_histogram(obs::Histogram& hist) { latency_hist_ = &hist; }

 private:
  struct ShardSnapshot {
    std::vector<BidEntry> buyers;   // descending, tie order frozen
    std::vector<BidEntry> sellers;  // ascending, tie order frozen
    std::vector<AccountId> buyer_owner;
    std::vector<AccountId> seller_owner;
  };

  struct Attacker {
    TradingClient* client = nullptr;
    std::size_t shard = 0;
    SearchState state;
    /// Strategy to install at the next apply (initially the client's
    /// current strategy, i.e. truthful round 0).
    Strategy planned;
    std::size_t applied_declarations = 0;
    bool selected = false;          ///< searched this planning round
    std::uint64_t wall_ns = 0;      ///< this round's search wall time
    double gain = 0.0;              ///< this round's best - truthful
    bool profitable = false;
    std::uint64_t cold_runs = 0;    ///< warm=false mode bookkeeping
  };

  void search_one(Attacker& attacker);

  MultiServerExchange& exchange_;
  AttackSchedulerConfig config_;
  std::vector<Attacker> attackers_;  // account order
  std::vector<ShardSnapshot> snapshots_;
  std::vector<std::size_t> plan_list_;  // attacker indexes searched this round
  std::vector<std::thread> pool_;
  std::vector<std::exception_ptr> errors_;
  std::atomic<std::size_t> next_{0};
  std::size_t plan_rounds_ = 0;
  bool inflight_ = false;

  AttackSearchCounters counters_{};
  std::uint64_t search_wall_ns_ = 0;
  double planned_gain_total_ = 0.0;
  std::uint64_t profitable_searches_ = 0;
  obs::Histogram* latency_hist_ = nullptr;
};

}  // namespace fnda
