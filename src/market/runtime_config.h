// Runtime-versioned server configuration.
//
// PR 2..9 treated ServerConfig as construction-time constants; the
// operations console (and the future network gateway) need to adjust
// knobs on a *live* exchange without giving up the determinism contract.
// RuntimeConfig wraps a ServerConfig in a staged/active pair:
//
//   * `stage(key, value)` parses and bounds-checks a typed key against a
//     declared key table and records the change as *pending* — nothing
//     the hot path reads has moved yet;
//   * `apply_pending(stamp)` promotes every pending change into the
//     active config in one step and bumps the generation, recording the
//     stamp (the exchange passes its round-open index) at which the new
//     generation took effect.
//
// The exchange calls apply_pending only at round boundaries, on the
// driver thread, while every shard is quiescent — so a command script
// replayed against the same session produces bit-identical output for
// any worker-thread count: the config a round clears under is a pure
// function of the command sequence, never of thread timing.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "market/server.h"

namespace fnda {

/// One runtime-settable key's reflection record (for `config show` and
/// the docs table): name, type, bounds, and current/pending values.
struct ConfigEntry {
  std::string key;
  std::string type;  ///< "int" for now; all knobs are integer-valued
  std::int64_t min_value = 0;
  std::int64_t max_value = 0;
  std::int64_t active = 0;
  bool has_pending = false;
  std::int64_t pending = 0;
  std::string help;
};

class RuntimeConfig {
 public:
  explicit RuntimeConfig(ServerConfig initial);

  /// The config servers run with.  Stable address; re-read by the
  /// exchange at every round open.
  const ServerConfig& active() const { return active_; }

  /// Number of apply_pending calls that changed anything; generation 0 is
  /// the construction-time config.
  std::uint64_t generation() const { return generation_; }
  /// The stamp passed to the apply_pending call that produced the current
  /// generation (0 until the first runtime change lands).
  std::uint64_t applied_at() const { return applied_at_; }

  /// Parses and bounds-checks `value` for `key`; stages it as pending.
  /// Returns false and fills `error` on unknown key, parse failure, or a
  /// value outside the key's declared bounds.
  bool stage(std::string_view key, std::string_view value,
             std::string* error);

  bool has_pending() const { return !pending_.empty(); }

  /// Promotes pending changes into the active config.  Returns true when
  /// the active config changed (the caller then pushes it to the
  /// servers); `stamp` is recorded as the generation's birth round.
  bool apply_pending(std::uint64_t stamp);

  /// Reflection over every runtime key, in declaration order.
  std::vector<ConfigEntry> entries() const;

  /// Reads one key's active value (the integer form `stage` accepts).
  /// Returns false on unknown key.
  bool read(std::string_view key, std::int64_t* value) const;

 private:
  struct Key;  // declared key table row (see runtime_config.cpp)

  struct Pending {
    std::size_t key_index;
    std::int64_t value;
  };

  static const std::vector<Key>& keys();

  ServerConfig active_;
  std::vector<Pending> pending_;
  std::uint64_t generation_ = 0;
  std::uint64_t applied_at_ = 0;
};

}  // namespace fnda
