#include "market/throughput.h"

#include "market/multi_exchange.h"

namespace fnda {

ThroughputResult run_throughput_session(const DoubleAuctionProtocol& protocol,
                                        const ThroughputConfig& config) {
  MultiExchangeConfig mx;
  mx.shards = config.shards;
  mx.threads = config.threads;
  mx.bus.base_latency = config.base_latency;
  mx.bus.jitter = config.jitter;
  mx.bus.drop_probability = config.drop_probability;
  mx.bus.duplicate_probability = config.duplicate_probability;
  mx.server.domain =
      ValueDomain{Money::from_units(0), Money::from_units(config.value_high)};
  mx.server.retained_rounds = config.retained_rounds;
  // One fresh identity per trader per round, each posting the default
  // deposit; endow enough cash that escrow never drives balances negative.
  mx.initial_cash = Money::from_units(
      static_cast<std::int64_t>(config.rounds + 1) * 10 + 1'000);
  mx.seed = config.seed;
  mx.adaptive_epochs = config.adaptive;
  mx.telemetry = config.telemetry;

  MultiServerExchange exchange(protocol, mx);
  Rng values(Rng(config.seed ^ 0x5eedu).split());
  for (std::size_t i = 0; i < config.clients; ++i) {
    const Side role = (i % 2 == 0) ? Side::kBuyer : Side::kSeller;
    const Money value = Money::from_units(
        values.uniform_int(config.value_low, config.value_high));
    TradingClient& trader = exchange.add_trader(role, value);
    if (role == Side::kSeller && config.rounds > 1) {
      // Sellers re-enter every round; stock them so settlement delivers.
      exchange.grant_goods(trader.account(), config.rounds - 1);
    }
  }

  ThroughputResult result;
  result.clients = config.clients;
  result.shards = exchange.shard_count();
  result.threads = exchange.thread_count();
  for (std::size_t r = 0; r < config.rounds; ++r) {
    const std::vector<RoundId> rounds = exchange.run_round(config.open_for);
    for (std::size_t shard = 0; shard < rounds.size(); ++shard) {
      if (const Outcome* outcome = exchange.server(shard).outcome_of(
              rounds[shard])) {
        result.trades += outcome->trade_count();
      }
    }
    ++result.rounds;
  }
  for (const auto& trader : exchange.traders()) {
    result.bids_accepted += trader->bids_accepted();
  }
  result.sim_time = exchange.now();
  result.bus = exchange.bus_stats();
  result.shard_bus = exchange.shard_bus_stats();
  result.book = exchange.book_stats();
  result.epoch = exchange.epoch_totals();
  if (const obs::SessionTelemetry* telemetry = exchange.telemetry()) {
    result.metrics = telemetry->merged_snapshot();
    result.trace = telemetry->flush_trace();
  }
  return result;
}

}  // namespace fnda
