#include "market/identity.h"

#include <stdexcept>

namespace fnda {

AccountId IdentityRegistry::create_account() {
  return AccountId{next_account_++};
}

IdentityId IdentityRegistry::register_identity(AccountId account) {
  const IdentityId identity{next_identity_};
  next_identity_ += identity_stride_;
  owners_.emplace(identity, account);
  return identity;
}

AccountId IdentityRegistry::owner(IdentityId identity) const {
  auto it = owners_.find(identity);
  if (it == owners_.end()) {
    throw std::out_of_range("IdentityRegistry::owner: unknown identity");
  }
  return it->second;
}

std::vector<IdentityId> IdentityRegistry::identities_of(
    AccountId account) const {
  std::vector<IdentityId> result;
  for (const auto& [identity, owner] : owners_) {
    if (owner == account) result.push_back(identity);
  }
  return result;
}

}  // namespace fnda
