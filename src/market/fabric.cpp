#include "market/fabric.h"

#include <bit>
#include <stdexcept>
#include <utility>

namespace fnda {

AddressId AddressSpace::intern(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto [it, inserted] =
      ids_.try_emplace(name, static_cast<std::uint32_t>(names_.size()));
  if (inserted) {
    const std::size_t index = names_.size();
    if (index >= kMaxChunks * kChunkSize) {
      ids_.erase(it);
      throw std::length_error("AddressSpace: address table full");
    }
    names_.push_back(name);
    const std::size_t chunk = index >> kChunkBits;
    if (chunks_[chunk] == nullptr) {
      auto fresh = std::make_unique<Chunk>();
      for (auto& owner : fresh->owners) {
        owner.store(kUnowned, std::memory_order_relaxed);
      }
      chunks_[chunk] = std::move(fresh);
    }
    // Publish the new size after the slot's owner word is initialised so
    // a racing owner_shard(id < size()) never reads garbage.
    size_.store(names_.size(), std::memory_order_release);
  }
  return AddressId{it->second};
}

const std::string& AddressSpace::name_of(AddressId address) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return names_.at(address.value());
}

std::optional<AddressId> AddressSpace::lookup(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = ids_.find(name);
  if (it == ids_.end()) return std::nullopt;
  return AddressId{it->second};
}

void AddressSpace::claim(AddressId address, std::uint32_t shard) {
  if (address.value() >= size()) {
    throw std::out_of_range("AddressSpace::claim: unknown address");
  }
  const std::size_t index = address.value();
  chunks_[index >> kChunkBits]->owners[index & kChunkMask].store(
      shard, std::memory_order_release);
}

std::uint32_t AddressSpace::owner_shard(AddressId address) const {
  const std::size_t index = address.value();
  if (index >= size()) return kUnowned;
  return chunks_[index >> kChunkBits]->owners[index & kChunkMask].load(
      std::memory_order_acquire);
}

ShardMailbox::ShardMailbox(std::size_t capacity)
    : slots_(std::bit_ceil(capacity < 2 ? std::size_t{2} : capacity)) {
  mask_ = slots_.size() - 1;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    slots_[i].sequence.store(i, std::memory_order_relaxed);
  }
}

bool ShardMailbox::push(RemoteEnvelope&& envelope) {
  std::uint64_t pos = tail_.load(std::memory_order_relaxed);
  for (;;) {
    Slot& slot = slots_[pos & mask_];
    const std::uint64_t sequence = slot.sequence.load(std::memory_order_acquire);
    const auto diff =
        static_cast<std::int64_t>(sequence) - static_cast<std::int64_t>(pos);
    if (diff == 0) {
      if (tail_.compare_exchange_weak(pos, pos + 1,
                                      std::memory_order_relaxed)) {
        slot.value = std::move(envelope);
        slot.sequence.store(pos + 1, std::memory_order_release);
        return true;
      }
    } else if (diff < 0) {
      return false;  // a full lap behind: ring is full
    } else {
      pos = tail_.load(std::memory_order_relaxed);
    }
  }
}

bool ShardMailbox::pop(RemoteEnvelope& out) {
  Slot& slot = slots_[head_ & mask_];
  const std::uint64_t sequence = slot.sequence.load(std::memory_order_acquire);
  if (static_cast<std::int64_t>(sequence) -
          static_cast<std::int64_t>(head_ + 1) <
      0) {
    return false;  // producer has not finished (or started) this slot
  }
  out = std::move(slot.value);
  slot.value.payload = Message{};  // drop any heap payload promptly
  slot.sequence.store(head_ + mask_ + 1, std::memory_order_release);
  ++head_;
  return true;
}

std::size_t ShardMailbox::drain(std::vector<RemoteEnvelope>& out) {
  // One producer-cursor read bounds the batch; each slot still publishes
  // through its own sequence word, so a producer mid-push (impossible at
  // the epoch barrier, but legal for the type) just ends the batch early.
  const std::uint64_t tail = tail_.load(std::memory_order_acquire);
  out.reserve(out.size() + static_cast<std::size_t>(tail - head_));
  std::size_t drained = 0;
  while (head_ != tail) {
    Slot& slot = slots_[head_ & mask_];
    const std::uint64_t sequence = slot.sequence.load(std::memory_order_acquire);
    if (static_cast<std::int64_t>(sequence) -
            static_cast<std::int64_t>(head_ + 1) <
        0) {
      break;
    }
    out.push_back(std::move(slot.value));
    slot.value.payload = Message{};  // drop any heap payload promptly
    slot.sequence.store(head_ + mask_ + 1, std::memory_order_release);
    ++head_;
    ++drained;
  }
  return drained;
}

Fabric::Fabric(std::size_t shards, std::size_t mailbox_capacity) {
  mailboxes_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    mailboxes_.push_back(std::make_unique<ShardMailbox>(mailbox_capacity));
  }
}

}  // namespace fnda
