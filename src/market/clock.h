// Virtual time and the discrete-event queue driving the market simulator.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace fnda {

/// Simulated time in microseconds since simulation start.
struct SimTime {
  std::int64_t micros = 0;

  constexpr auto operator<=>(const SimTime&) const = default;
  constexpr SimTime operator+(SimTime other) const {
    return SimTime{micros + other.micros};
  }
  constexpr SimTime operator-(SimTime other) const {
    return SimTime{micros - other.micros};
  }

  static constexpr SimTime millis(std::int64_t ms) {
    return SimTime{ms * 1000};
  }
  static constexpr SimTime seconds(std::int64_t s) {
    return SimTime{s * 1'000'000};
  }
};

/// Single-threaded discrete-event scheduler.
///
/// Events fire in (time, insertion-order) order, so two events scheduled
/// for the same instant run FIFO — deterministic replays depend on this.
class EventQueue {
 public:
  using Action = std::function<void()>;

  /// Schedules `action` at absolute time `at`.  Scheduling in the past is
  /// clamped to now (the action runs next).
  void schedule_at(SimTime at, Action action);
  /// Schedules `action` `delay` after the current time.
  void schedule_after(SimTime delay, Action action);

  /// Executes the earliest pending event; returns false if none remain.
  bool step();

  /// Runs events until the queue is empty or `max_events` have executed;
  /// returns the number executed.  The cap guards against event loops
  /// that reschedule themselves forever.
  std::size_t run(std::size_t max_events = 1'000'000);

  /// Runs all events scheduled at or before `until`.
  std::size_t run_until(SimTime until, std::size_t max_events = 1'000'000);

  SimTime now() const { return now_; }
  std::size_t pending() const { return queue_.size(); }

 private:
  struct Entry {
    SimTime at;
    std::uint64_t sequence;
    Action action;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return b.at < a.at;
      return b.sequence < a.sequence;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  SimTime now_{};
  std::uint64_t next_sequence_ = 0;
};

}  // namespace fnda
