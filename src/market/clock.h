// Virtual time and the discrete-event queue driving the market simulator.
//
// The queue is a bucketed calendar queue (a one-level timing wheel with a
// sorted overflow calendar) rather than a comparison heap: scheduling is
// an O(1) bucket append, and draining distributes one bucket at a time
// into per-microsecond instant lists instead of paying a log-n
// percolation per event.  Events still fire in exact (time,
// insertion-order) order — every move (append, stable distribution,
// stable early-buffer insertion) preserves relative order, so no sort or
// tiebreak key is ever needed — and deterministic replays are preserved
// bit-for-bit relative to the old heap implementation.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <type_traits>
#include <vector>

namespace fnda {

/// Simulated time in microseconds since simulation start.
struct SimTime {
  std::int64_t micros = 0;

  constexpr auto operator<=>(const SimTime&) const = default;
  constexpr SimTime operator+(SimTime other) const {
    return SimTime{micros + other.micros};
  }
  constexpr SimTime operator-(SimTime other) const {
    return SimTime{micros - other.micros};
  }

  static constexpr SimTime millis(std::int64_t ms) {
    return SimTime{ms * 1000};
  }
  static constexpr SimTime seconds(std::int64_t s) {
    return SimTime{s * 1'000'000};
  }
};

/// Single-threaded discrete-event scheduler.
///
/// Events fire in (time, insertion-order) order, so two events scheduled
/// for the same instant run FIFO — deterministic replays depend on this.
///
/// Besides arbitrary `Action` callbacks, the queue natively schedules
/// *deliveries*: lightweight (slot, destination) records owned by a
/// registered DeliverySink (the MessageBus).  Deliveries that share a
/// timestamp and a destination and are adjacent in the total order are
/// handed to the sink as one batch, which lets the receiving endpoint
/// validate a whole volley of same-instant messages in a single pass.
/// Batching never reorders anything: a batch is exactly a maximal run of
/// consecutive entries in the (time, insertion-order) sequence.
class EventQueue {
 public:
  using Action = std::function<void()>;

  /// One scheduled delivery as handed to the sink: `slot` indexes the
  /// sink's own storage, `key` is the batch key recorded at schedule
  /// time (opaque to the queue — the bus packs the destination and its
  /// attach-generation into it).
  struct Delivery {
    std::uint64_t key = 0;
    std::uint32_t slot = 0;
  };

  /// Owner of slab-allocated deliveries (see MessageBus).  One call
  /// covers the maximal run of consecutive deliveries sharing a
  /// timestamp, in send order.  Handing the sink the whole instant at
  /// once lets it prefetch every slot before dispatching and group
  /// consecutive equal keys itself.
  class DeliverySink {
   public:
    virtual ~DeliverySink() = default;
    virtual void deliver_run(SimTime at, const Delivery* run,
                             std::size_t count) = 0;
  };

  /// Registers the (single) delivery sink.  Pass nullptr to unregister;
  /// pending deliveries of an unregistered sink are silently discarded.
  void set_delivery_sink(DeliverySink* sink) { sink_ = sink; }

  /// Schedules `action` at absolute time `at`.  Scheduling in the past is
  /// clamped to now (the action runs next).
  void schedule_at(SimTime at, Action action);
  /// Schedules `action` `delay` after the current time.
  void schedule_after(SimTime delay, Action action);
  /// Schedules a sink delivery; `key` groups batchable deliveries (the
  /// bus uses the destination address id).
  void schedule_delivery(SimTime at, std::uint32_t slot, std::uint64_t key);

  /// Executes the earliest pending event; returns false if none remain.
  bool step();

  /// Runs events until the queue is empty or `max_events` have executed;
  /// returns the number executed.  The cap guards against event loops
  /// that reschedule themselves forever.
  std::size_t run(std::size_t max_events = 1'000'000);

  /// Runs all events scheduled at or before `until`.
  std::size_t run_until(SimTime until, std::size_t max_events = 1'000'000);

  /// Timestamp of the earliest pending event, or nullopt when empty.
  /// Non-const: may advance the internal cursor to find the next bucket
  /// (a pure lookahead — nothing executes and now() is unchanged).
  std::optional<SimTime> next_time();

  SimTime now() const { return now_; }
  std::size_t pending() const { return size_; }

 private:
  // Bucket geometry: 2^8 us = 256 us per bucket, 1024 buckets on the
  // wheel -> ~262 ms of horizon before events spill into the overflow
  // calendar.  Default bus latencies land a handful of buckets ahead.
  // (Finer 1 us buckets would make the per-bucket sort a no-op, but
  // measured slower: appends scatter over many small slot vectors
  // instead of streaming into a few large ones.)
  static constexpr int kBucketBits = 8;
  static constexpr std::size_t kBucketWidth = std::size_t{1} << kBucketBits;
  static constexpr int kWheelBits = 10;
  static constexpr std::size_t kWheelSlots = std::size_t{1} << kWheelBits;
  static constexpr std::size_t kWheelMask = kWheelSlots - 1;
  static constexpr std::size_t kBitmapWords = kWheelSlots / 64;

  /// 24-byte POD: wheel moves and instant distribution are memcpy-class.
  /// No sequence number is stored — insertion order is preserved
  /// structurally (appends everywhere, stable distribution, stable
  /// early-buffer insertion), so FIFO-among-equal-times never needs a
  /// tiebreak key.  The (rare) Action callbacks live in a side slab
  /// indexed by `slot`; deliveries use `slot` as the sink's slab index.
  struct Entry {
    SimTime at;
    std::uint64_t key = 0;     // delivery batch key (destination)
    std::uint32_t slot = 0;    // delivery or action slab index
    bool is_delivery = false;
  };
  static_assert(std::is_trivially_copyable_v<Entry>);

  static constexpr std::int64_t bucket_of(SimTime at) {
    return at.micros >> kBucketBits;
  }
  std::int64_t horizon() const {
    return cursor_ + static_cast<std::int64_t>(kWheelSlots);
  }

  void push(Entry entry);
  std::uint32_t acquire_action(Action action);
  /// True if something is ready to execute; advances the cursor to the
  /// next non-empty bucket and distributes it into the per-offset
  /// instant lists when the current bucket is exhausted.
  bool ensure_ready();
  /// Executes exactly one ready entry (ensure_ready must have succeeded).
  void execute_one();
  /// Executes ready entries up to `budget` with timestamps <= `until`,
  /// batching deliveries; returns the number executed.
  std::size_t drain_ready(std::size_t budget, SimTime until);
  /// Moves overflow buckets that entered the horizon onto the wheel.
  void pull_overflow();
  void mark_occupied(std::size_t slot_index);
  void clear_occupied(std::size_t slot_index);
  /// Distance (in buckets) from cursor_ to the first occupied wheel slot.
  std::size_t next_occupied_distance() const;
  /// Advances instant_offset_ to the next non-empty instant list.
  void seek_instant();
  /// The timestamp of the next entry to execute (early_ head, or the
  /// current instant list).  Only valid after ensure_ready() succeeded.
  SimTime head_at();
  bool early_pending() const { return early_index_ < early_.size(); }
  void insert_early(const Entry& entry);

  std::vector<Action> actions_;          // side slab for callbacks
  std::vector<std::uint32_t> action_free_;
  std::array<std::vector<Entry>, kWheelSlots> wheel_;
  std::array<std::uint64_t, kBitmapWords> occupied_{};
  std::map<std::int64_t, std::vector<Entry>> overflow_;
  // The bucket at cursor_ is drained through one list per microsecond
  // offset: distribution is a single stable pass, and each list is one
  // instant in push (= sequence) order, so draining never sorts or
  // compares timestamps.
  std::array<std::vector<Entry>, kBucketWidth> instant_;
  std::array<std::uint64_t, kBucketWidth / 64> instant_occupied_{};
  std::size_t instant_offset_ = 0;  // offset currently being drained
  std::size_t instant_index_ = 0;   // position within that list
  std::size_t instant_pending_ = 0;  // undrained entries across lists
  // Entries pushed behind the drain position (only possible while now_
  // lags the cursor after a partial run_until); executed first, in
  // (at, sequence) order.
  std::vector<Entry> early_;
  std::size_t early_index_ = 0;
  std::vector<Delivery> batch_scratch_;
  std::int64_t cursor_ = 0;         // absolute bucket index being drained
  std::size_t wheel_count_ = 0;     // entries on the wheel (not instant_)
  std::size_t size_ = 0;            // all pending entries
  SimTime now_{};
  DeliverySink* sink_ = nullptr;
};

}  // namespace fnda
