#include "market/client.h"

namespace fnda {

TradingClient::TradingClient(std::string address, AccountId account,
                             Side role, Money true_value, EventQueue& queue,
                             MessageBus& bus, IdentityRegistry& registry,
                             EscrowService& escrow,
                             std::string server_address, ClientConfig config)
    : address_(std::move(address)),
      account_(account),
      role_(role),
      true_value_(true_value),
      queue_(queue),
      bus_(bus),
      registry_(registry),
      escrow_(escrow),
      server_id_(bus.intern(server_address)),
      config_(config),
      strategy_(Strategy::truthful(role, true_value)) {
  address_id_ = bus_.attach(address_, *this);
}

void TradingClient::on_round_open(const RoundOpenMsg& msg) {
  // Heartbeat re-announcements repeat the same round; bid once per round.
  if (!rounds_bid_.insert(msg.round.value())) return;
  ++rounds_seen_;
  if (deferred_) {
    pending_ = msg;
    return;
  }
  submit_round(msg);
}

void TradingClient::submit_round(const RoundOpenMsg& msg) {
  for (const Declaration& declaration : strategy_.declarations) {
    // A fresh pseudonym per declaration per round: identities are
    // disposable in the false-name threat model.
    const IdentityId identity = registry_.register_identity(account_);
    identities_.push_back(identity);
    escrow_.post(identity, account_, config_.deposit_per_identity);
    submit_with_retry(SubmitBidMsg{msg.round, identity, declaration.side,
                                   declaration.value},
                      msg.close_at, config_.max_retries);
  }
}

std::size_t TradingClient::submit_pending() {
  if (!pending_.has_value()) return 0;
  const RoundOpenMsg msg = *pending_;
  pending_.reset();
  submit_round(msg);
  return strategy_.declarations.size();
}

void TradingClient::submit_with_retry(const SubmitBidMsg& msg,
                                      SimTime deadline,
                                      std::size_t retries_left) {
  bus_.send(address_id_, server_id_, msg);
  if (config_.retry_interval.micros <= 0 || retries_left == 0) return;
  queue_.schedule_after(config_.retry_interval, [this, msg, deadline,
                                                 retries_left] {
    if (acked_.contains(msg.identity.value())) return;
    if (queue_.now() >= deadline) return;  // round closed; no point
    ++retransmissions_;
    submit_with_retry(msg, deadline, retries_left - 1);
  });
}

void TradingClient::on_message(const Envelope& envelope) {
  if (!dedup_.fresh(envelope.id)) return;
  struct Visitor {
    TradingClient& self;
    void operator()(const RoundOpenMsg& msg) { self.on_round_open(msg); }
    void operator()(const BidAckMsg& msg) {
      // Idempotent server acks can arrive for retransmissions; count each
      // identity's resolution once.
      if (!self.acked_.insert(msg.identity.value())) return;
      (msg.accepted ? self.accepted_ : self.rejected_) += 1;
    }
    void operator()(const FillNoticeMsg& msg) {
      self.fills_.push_back(msg);
      if (msg.side == Side::kBuyer) {
        self.position_.bought += 1;
        self.position_.paid += msg.price;
      } else {
        self.position_.sold += 1;
        self.position_.received += msg.price;
      }
    }
    void operator()(const RoundClosedMsg&) {}
    void operator()(const SettlementNoticeMsg& msg) {
      if (!msg.delivered) self.settlement_failures_ += 1;
    }
    void operator()(const SubmitBidMsg&) {}  // server-bound; ignore
  };
  std::visit(Visitor{*this}, envelope.payload);
}

}  // namespace fnda
