// MultiServerExchange: a sharded, multi-threaded deployment of the call
// market.
//
// The paper's Internet deployment target ("heavy traffic from millions of
// users") outgrows a single auctioneer process.  This harness partitions
// the identity space across N AuctionServers by owner-account hash —
// every identity an account mints trades on that account's shard — and,
// unlike the PR 2 logical partition, gives each shard a *complete*
// private world: its own EventQueue, MessageBus (envelope slab included),
// identity registry, ledgers, escrow, settlement engine, and audit log.
// Nothing mutable is shared on the hot path; shards are stitched together
// by a Fabric (shared address space + per-shard MPSC mailboxes) and
// driven to quiescence by an EpochDriver on `threads` workers.
//
// Determinism: results are bit-identical for every `threads` value —
// per-shard RNG streams, strided id namespaces (messages and identities),
// and the epoch barrier's canonical mailbox merge remove every source of
// cross-thread nondeterminism.  With shards == 1 the exchange reproduces
// the single-server ExchangeSimulation's output exactly, RNG draw for
// RNG draw.
#pragma once

#include <deque>
#include <memory>
#include <vector>

#include "market/client.h"
#include "market/epoch.h"
#include "market/fabric.h"
#include "market/runtime_config.h"
#include "market/server.h"
#include "obs/telemetry.h"

namespace fnda {

struct MultiExchangeConfig {
  /// Number of independent auction servers (>= 1).
  std::size_t shards = 4;
  /// Worker threads driving the shards: 0 = hardware concurrency; values
  /// above `shards` are clamped (a shard is owned by one thread).  Every
  /// setting produces bit-identical results.
  std::size_t threads = 1;
  /// Capacity of each shard's inbound cross-shard mailbox (rounded up to
  /// a power of two).  A full mailbox drops the message, deterministically,
  /// at the sender (BusStats::mailbox_overflow).
  std::size_t mailbox_capacity = std::size_t{1} << 16;
  /// Declared cross-shard communication structure.  The default,
  /// kIsolated, encodes the identity-partitioned deployment contract:
  /// every client is wired to its account's home-shard server and every
  /// server replies to its own shard's clients, so no message ever
  /// crosses shards — which lets the adaptive epoch driver run shards to
  /// quiescence independently between barriers.  The declaration is
  /// enforced (a cross-shard send throws at the sender); a deployment
  /// that routes traffic between shards must declare kAllToAll.
  ShardTopology topology = ShardTopology::kIsolated;
  /// Adaptive epoch windows (see EpochDriver): widen the window to the
  /// true causal bound when shard head times prove it safe, cutting
  /// barrier crossings.  Off forces the fixed-lookahead schedule.
  bool adaptive_epochs = true;
  BusConfig bus{};
  ServerConfig server{};
  ClientConfig client{};
  /// Cash granted to each trader account on creation.
  Money initial_cash = Money::from_units(1'000);
  std::uint64_t seed = 1;
  /// Session telemetry (on by default; `enabled = false` wires nothing —
  /// every component keeps null instrument pointers, the runtime baseline
  /// the overhead bench compares against).
  obs::TelemetryOptions telemetry{};
};

class MultiServerExchange {
 public:
  /// `protocol` must outlive the exchange (it clears every shard).
  explicit MultiServerExchange(const DoubleAuctionProtocol& protocol,
                               MultiExchangeConfig config = {});

  /// Adds a truthful trader on the shard its account hashes to.  Sellers
  /// are endowed with one unit of the good.
  TradingClient& add_trader(Side role, Money true_value);
  TradingClient& add_trader(Side role, Money true_value, Strategy strategy);

  /// The shard an account's identities trade on.
  std::size_t shard_of(AccountId account) const;

  /// Opens one round on every shard, drives all shards to quiescence on
  /// the configured worker threads, and returns the per-shard round ids.
  std::vector<RoundId> run_round(SimTime open_for = SimTime::millis(100));

  // --- phased round control (adversarial co-simulation) -----------------
  // run_round == open_rounds + drive_to_quiescence.  The co-simulation
  // splits the drive instead: open_rounds, then drive_until with bounds
  // strictly before each shard's round close (honest traffic clears while
  // attack searches overlap on background threads), then deferred attacker
  // submissions, then drive_to_quiescence to close the round.
  /// Opens one round per shard without driving; returns per-shard ids.
  /// Applies any pending runtime-config change first (round boundaries are
  /// the only place config generations advance — see RuntimeConfig), and
  /// skips paused shards, returning RoundId::invalid() in their slots.
  std::vector<RoundId> open_rounds(SimTime open_for);
  /// Bounded drive: shard `s` executes only events strictly before
  /// `bounds[s]`; later events stay queued.  Folds into epoch_totals()
  /// but leaves last_drive() alone (it reports full drives).
  EpochStats drive_until(const std::vector<SimTime>& bounds);
  /// Drives every shard to quiescence (the tail of run_round).
  void drive_to_quiescence();

  /// Refunds every remaining deposit (see ExchangeSimulation).
  Money close_market();

  // --- operator control plane (console / future gateway) ----------------
  /// Runtime-versioned server config.  stage() changes through it at any
  /// time; they take effect at the next open_rounds, on the driver
  /// thread, so determinism is untouched by thread count.
  RuntimeConfig& runtime_config() { return runtime_config_; }
  const RuntimeConfig& runtime_config() const { return runtime_config_; }

  /// Pauses a shard: subsequent open_rounds skip it (its slot reports
  /// RoundId::invalid()).  In-flight rounds are unaffected — to drain,
  /// pause and then drive_to_quiescence.  Idempotent.
  void pause_shard(std::size_t shard);
  void resume_shard(std::size_t shard);
  bool shard_paused(std::size_t shard) const { return paused_[shard]; }
  std::size_t paused_count() const;

  std::size_t shard_count() const { return shards_.size(); }
  /// The clearing protocol the exchange was constructed with (the
  /// co-simulation evaluates deviations against it).
  const DoubleAuctionProtocol& protocol() const { return *protocol_; }
  /// The resolved construction config (domain, latencies, ...).
  const MultiExchangeConfig& config() const { return config_; }
  /// Resolved worker count (after 0 -> hardware, clamp to shards).
  std::size_t thread_count() const { return threads_; }
  AuctionServer& server(std::size_t shard) { return *shards_[shard].server; }
  const AuctionServer& server(std::size_t shard) const {
    return *shards_[shard].server;
  }
  /// Rounds cleared across all shards.
  std::size_t rounds_completed() const;

  // --- per-shard worlds -------------------------------------------------
  EventQueue& queue(std::size_t shard) { return shards_[shard].queue; }
  MessageBus& bus(std::size_t shard) { return *shards_[shard].bus; }
  IdentityRegistry& registry(std::size_t shard) {
    return shards_[shard].registry;
  }
  CashLedger& cash(std::size_t shard) { return shards_[shard].cash; }
  GoodsLedger& goods(std::size_t shard) { return shards_[shard].goods; }
  EscrowService& escrow(std::size_t shard) { return *shards_[shard].escrow; }
  AuditLog& audit(std::size_t shard) { return shards_[shard].audit; }
  Fabric& fabric() { return *fabric_; }

  // --- merged views (session-end reporting; never on the hot path) -----
  /// Latest shard clock (every shard quiesces at its own last event).
  SimTime now() const;
  /// Per-shard transport counters merged; conservation holds here.
  BusStats bus_stats() const;
  std::vector<BusStats> shard_bus_stats() const;
  /// Per-shard incremental-ranking work counters merged (see
  /// LiveBookStats; sorts_at_close must stay 0 across every shard).
  LiveBookStats book_stats() const;
  /// All shards' audit records, stably merged by (timestamp, shard).
  std::vector<AuditRecord> merged_audit() const;
  std::size_t audit_count(AuditKind kind) const;
  Money cash_balance(AccountId account) const;
  Money cash_total() const;
  std::size_t goods_units(AccountId account) const;
  std::size_t goods_total() const;
  Money escrow_total_held() const;

  /// Routed to the account's home-shard ledgers.
  void grant_cash(AccountId account, Money amount);
  void grant_goods(AccountId account, std::size_t units);

  const std::deque<std::unique_ptr<TradingClient>>& traders() const {
    return traders_;
  }
  /// Epoch/injection counters from the most recent drive.
  const EpochStats& last_drive() const { return last_drive_; }
  /// Epoch counters accumulated across every drive of this exchange —
  /// the session-level barrier-crossing record the bench reports.
  const EpochStats& epoch_totals() const { return epoch_totals_; }

  /// Session telemetry, or nullptr when the config disabled it.  Merged
  /// snapshots/traces are deterministic only on a quiescent exchange
  /// (between run_round calls).
  obs::SessionTelemetry* telemetry() { return telemetry_.get(); }
  const obs::SessionTelemetry* telemetry() const { return telemetry_.get(); }

 private:
  /// One shard's complete private world.  Lives in a deque so addresses
  /// stay stable while shards are appended during construction.
  struct Shard {
    EventQueue queue;
    std::unique_ptr<MessageBus> bus;
    IdentityRegistry registry;
    CashLedger cash;
    GoodsLedger goods;
    std::unique_ptr<EscrowService> escrow;
    std::unique_ptr<SettlementEngine> settlement;
    AuditLog audit;
    std::unique_ptr<AuctionServer> server;
  };

  MultiExchangeConfig config_;
  const DoubleAuctionProtocol* protocol_ = nullptr;
  std::size_t threads_ = 1;
  RuntimeConfig runtime_config_;
  std::vector<bool> paused_;
  /// Monotone open_rounds counter — the stamp runtime-config generations
  /// are born at (a pure function of the command sequence).
  std::uint64_t next_round_stamp_ = 0;
  /// Declared before the shards so it outlives every component holding
  /// instrument pointers into it.
  std::unique_ptr<obs::SessionTelemetry> telemetry_;
  std::unique_ptr<Fabric> fabric_;
  std::deque<Shard> shards_;
  std::unique_ptr<EpochDriver> driver_;
  std::deque<std::unique_ptr<TradingClient>> traders_;
  EpochStats last_drive_;
  EpochStats epoch_totals_;
  std::uint64_t next_account_ = 1;  // 0 is the exchange
  std::uint64_t next_client_ = 0;
};

}  // namespace fnda
