// MultiServerExchange: a sharded deployment of the call market.
//
// The paper's Internet deployment target ("heavy traffic from millions of
// users") outgrows a single auctioneer process.  This harness partitions
// the identity space across N independent AuctionServers by owner-account
// hash — every identity an account mints trades on that account's shard —
// all sharing one simulated bus, queue, ledgers, and audit log.  Shards
// never talk to each other: each runs the full open/submit/clear/settle
// lifecycle on its own slice of traders, which is exactly how a
// horizontally scaled call market would shard (per-round books are
// independent; only settlement touches shared ledgers).
#pragma once

#include <deque>
#include <memory>
#include <vector>

#include "market/client.h"
#include "market/server.h"

namespace fnda {

struct MultiExchangeConfig {
  /// Number of independent auction servers (≥ 1).
  std::size_t shards = 4;
  BusConfig bus{};
  ServerConfig server{};
  ClientConfig client{};
  /// Cash granted to each trader account on creation.
  Money initial_cash = Money::from_units(1'000);
  std::uint64_t seed = 1;
};

class MultiServerExchange {
 public:
  /// `protocol` must outlive the exchange (it clears every shard).
  explicit MultiServerExchange(const DoubleAuctionProtocol& protocol,
                               MultiExchangeConfig config = {});

  /// Adds a truthful trader on the shard its account hashes to.  Sellers
  /// are endowed with one unit of the good.
  TradingClient& add_trader(Side role, Money true_value);
  TradingClient& add_trader(Side role, Money true_value, Strategy strategy);

  /// The shard an account's identities trade on.
  std::size_t shard_of(AccountId account) const;

  /// Opens one round on every shard, runs the queue to quiescence, and
  /// returns the per-shard round ids.
  std::vector<RoundId> run_round(SimTime open_for = SimTime::millis(100));

  /// Refunds every remaining deposit (see ExchangeSimulation).
  Money close_market();

  std::size_t shard_count() const { return servers_.size(); }
  AuctionServer& server(std::size_t shard) { return *servers_[shard]; }
  const AuctionServer& server(std::size_t shard) const {
    return *servers_[shard];
  }
  /// Rounds cleared across all shards.
  std::size_t rounds_completed() const;

  EventQueue& queue() { return queue_; }
  MessageBus& bus() { return *bus_; }
  IdentityRegistry& registry() { return registry_; }
  CashLedger& cash() { return cash_; }
  GoodsLedger& goods() { return goods_; }
  EscrowService& escrow() { return *escrow_; }
  AuditLog& audit() { return audit_; }
  const std::deque<std::unique_ptr<TradingClient>>& traders() const {
    return traders_;
  }

 private:
  MultiExchangeConfig config_;
  EventQueue queue_;
  std::unique_ptr<MessageBus> bus_;
  IdentityRegistry registry_;
  CashLedger cash_;
  GoodsLedger goods_;
  std::unique_ptr<EscrowService> escrow_;
  std::unique_ptr<SettlementEngine> settlement_;
  AuditLog audit_;
  std::vector<std::unique_ptr<AuctionServer>> servers_;
  std::deque<std::unique_ptr<TradingClient>> traders_;
  std::uint64_t next_client_ = 0;
};

}  // namespace fnda
