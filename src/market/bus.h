// In-process message bus with simulated network behaviour.
//
// Deliveries are scheduled on the EventQueue after a configurable latency
// (base + uniform jitter) and may be duplicated or dropped.  Duplicates
// carry the original MessageId so receivers can deduplicate; the server
// does, which the tests exercise.
#pragma once

#include <cstddef>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "common/rng.h"
#include "market/clock.h"
#include "market/messages.h"

namespace fnda {

/// A delivered message with transport metadata.
struct Envelope {
  MessageId id;
  std::string from;
  std::string to;
  SimTime sent_at;
  SimTime delivered_at;
  Message payload;
};

/// Anything attachable to the bus.
class Endpoint {
 public:
  virtual ~Endpoint() = default;
  virtual void on_message(const Envelope& envelope) = 0;
};

struct BusConfig {
  SimTime base_latency{1'000};  // 1ms
  SimTime jitter{500};          // uniform [0, jitter)
  double duplicate_probability = 0.0;
  double drop_probability = 0.0;
};

struct BusStats {
  std::size_t sent = 0;
  std::size_t delivered = 0;
  std::size_t duplicated = 0;
  std::size_t dropped = 0;
  std::size_t dead_lettered = 0;  // receiver detached before delivery
};

class MessageBus {
 public:
  MessageBus(EventQueue& queue, BusConfig config, Rng rng);

  /// Attaches an endpoint at `address`; the endpoint must outlive the bus
  /// or be detached first.  Re-attaching an address replaces the handler.
  void attach(const std::string& address, Endpoint& endpoint);
  void detach(const std::string& address);

  /// Queues a message; returns its id (shared by any duplicates).
  MessageId send(const std::string& from, const std::string& to,
                 Message payload);

  const BusStats& stats() const { return stats_; }

 private:
  void schedule_delivery(Envelope envelope);

  EventQueue& queue_;
  BusConfig config_;
  Rng rng_;
  std::unordered_map<std::string, Endpoint*> endpoints_;
  BusStats stats_;
  std::uint64_t next_message_ = 0;
};

/// Receiver-side duplicate filter keyed by MessageId.
class DedupFilter {
 public:
  /// Returns true the first time an id is seen.
  bool fresh(MessageId id) { return seen_.insert(id).second; }
  std::size_t seen_count() const { return seen_.size(); }

 private:
  std::unordered_set<MessageId> seen_;
};

}  // namespace fnda
