// In-process message bus with simulated network behaviour.
//
// Deliveries are scheduled on the EventQueue after a configurable latency
// (base + uniform jitter) and may be duplicated or dropped.  Duplicates
// carry the original MessageId so receivers can deduplicate; the server
// does, which the tests exercise.
//
// Throughput substrate: endpoint addresses are interned to dense
// `AddressId`s at attach()/intern() time, so routing is an array index
// rather than a string hash (string-accepting overloads remain for
// convenience and tests).  Envelopes live in a slab (deque + free list)
// instead of being heap-allocated per send, and in-flight deliveries are
// lightweight (slot, destination) records batched by the EventQueue: all
// same-instant deliveries to one endpoint arrive through a single
// `Endpoint::on_batch` call, in send order.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "market/clock.h"
#include "market/fabric.h"
#include "market/messages.h"
#include "obs/telemetry.h"

namespace fnda {

/// A delivered message with transport metadata.
struct Envelope {
  MessageId id;
  AddressId from;
  AddressId to;
  SimTime sent_at;
  SimTime delivered_at;
  Message payload;
};

/// Anything attachable to the bus.
class Endpoint {
 public:
  virtual ~Endpoint() = default;
  virtual void on_message(const Envelope& envelope) = 0;
  /// Same-instant deliveries to this endpoint arrive as one batch, in
  /// send order.  Overriding lets a receiver hoist per-volley work (the
  /// server validates bid volleys this way); the default dispatches
  /// message by message, which is always equivalent.
  virtual void on_batch(const Envelope* const* envelopes, std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) on_message(*envelopes[i]);
  }
};

struct BusConfig {
  SimTime base_latency{1'000};  // 1ms
  SimTime jitter{500};          // uniform [0, jitter)
  double duplicate_probability = 0.0;
  double drop_probability = 0.0;
  /// Message-id namespace: bus `s` of a sharded exchange mints ids
  /// first_message_id, +stride, +2·stride, … so ids are globally unique
  /// without a shared counter.  Standalone buses keep (0, 1).
  std::uint64_t first_message_id = 0;
  std::uint64_t message_id_stride = 1;
};

struct BusStats {
  std::size_t sent = 0;
  std::size_t delivered = 0;
  std::size_t duplicated = 0;
  std::size_t dropped = 0;
  /// Receiver detached — or detached and re-attached — before delivery.
  std::size_t dead_lettered = 0;
  /// Staged to another shard's mailbox (counted by the *sender*; the
  /// receiving shard counts the eventual delivered/dead_lettered).
  std::size_t forwarded = 0;
  /// Cross-shard pushes rejected by a full mailbox (also counted in
  /// `dropped`, so conservation still holds).
  std::size_t mailbox_overflow = 0;

  /// Conservation: sent == delivered + dropped + dead_lettered −
  /// duplicated.  For a sharded exchange this holds on the *merged*
  /// stats (sum over shards): a forwarded message is `sent` on one shard
  /// and `delivered` on another.
  void merge(const BusStats& other) {
    sent += other.sent;
    delivered += other.delivered;
    duplicated += other.duplicated;
    dropped += other.dropped;
    dead_lettered += other.dead_lettered;
    forwarded += other.forwarded;
    mailbox_overflow += other.mailbox_overflow;
  }
};

class MessageBus : public EventQueue::DeliverySink {
 public:
  /// Standalone bus: owns a private AddressSpace, never forwards.
  MessageBus(EventQueue& queue, BusConfig config, Rng rng);
  /// Shard-local bus of a sharded exchange: names and ownership live in
  /// the fabric's shared AddressSpace; sends whose destination is owned
  /// by another shard are staged into that shard's mailbox instead of
  /// the local queue.
  MessageBus(EventQueue& queue, BusConfig config, Rng rng, Fabric& fabric,
             std::uint32_t shard);
  ~MessageBus() override;
  MessageBus(const MessageBus&) = delete;
  MessageBus& operator=(const MessageBus&) = delete;

  /// Returns the dense id for `address`, creating a (detached) directory
  /// entry on first sight.  Ids are stable for the bus's lifetime.
  AddressId intern(const std::string& address);
  /// The string name behind an interned id (for logs and tests).
  const std::string& name_of(AddressId address) const;

  /// Attaches an endpoint at `address`; the endpoint must outlive the bus
  /// or be detached first.  Re-attaching an address replaces the handler;
  /// messages sent to the previous attachment that are still in flight
  /// are dead-lettered, not delivered to the replacement.
  AddressId attach(const std::string& address, Endpoint& endpoint);
  void attach(AddressId address, Endpoint& endpoint);
  void detach(const std::string& address);
  void detach(AddressId address);

  /// Queues a message; returns its id (shared by any duplicates).
  MessageId send(AddressId from, AddressId to, Message payload);
  MessageId send(const std::string& from, const std::string& to,
                 Message payload);
  /// Concrete-type fast path: assigns the alternative straight into the
  /// pooled envelope instead of building a temporary variant and moving
  /// it.  Behaviour (ids, RNG draws, ordering) is identical to the
  /// Message overload.
  template <typename M,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<M>, Message> &&
                std::is_constructible_v<Message, M&&>>>
  MessageId send(AddressId from, AddressId to, M&& payload) {
    return send_impl(from, to, std::forward<M>(payload));
  }

  const BusStats& stats() const { return stats_; }

  /// Joins the shard's telemetry world: registers the BusStats cells as
  /// callback counters (the structs stay the storage; the registry is
  /// the exposition/merge layer) and creates the transport histograms
  /// (delivery latency in sim microseconds, endpoint batch size).  Call
  /// once at wiring time; a bus never bound records nothing extra.
  void bind_telemetry(obs::ShardTelemetry& telemetry);

  /// Schedules a mailbox envelope for local delivery.  Called by the
  /// epoch driver at a barrier, while this shard's worker is quiescent.
  /// The delivery binds to the destination's binding generation *at
  /// injection time* (a message in flight across a re-attach that also
  /// crossed a shard boundary delivers to the new attachment; same-shard
  /// traffic keeps the stricter send-time binding).
  void inject(const RemoteEnvelope& remote);

  /// Batched inject: schedules `count` envelopes in order, with semantics
  /// identical to calling inject() on each — except payloads are *moved*
  /// out of the envelopes, which the epoch driver's drain scratch permits
  /// (it is cleared right after).  `batch` points into caller storage in
  /// canonical merge order.
  void inject_batch(RemoteEnvelope* const* batch, std::size_t count);

  /// EventQueue::DeliverySink — one call per run of same-instant
  /// deliveries.  Keys carry the destination and the binding generation
  /// captured at send time (see pack_key); consecutive equal keys are
  /// dispatched to their endpoint as one batch.
  void deliver_run(SimTime at, const EventQueue::Delivery* run,
                   std::size_t count) override;

 private:
  /// Hot per-address routing state, kept to 16 bytes so delivery touches
  /// one cache line per four addresses; names live in a cold array.
  struct DirectoryEntry {
    Endpoint* endpoint = nullptr;
    /// Bumped on every attach and detach; an envelope only delivers if
    /// the binding it captured at send time still matches, so messages
    /// in flight across a re-attach dead-letter instead of silently
    /// reaching the replacement endpoint.  The binding rides in the high
    /// half of the delivery key, so the check is one compare per batch.
    std::uint32_t binding = 0;
  };

  static constexpr std::uint64_t pack_key(std::uint32_t to,
                                          std::uint32_t binding) {
    return (std::uint64_t{binding} << 32) | to;
  }

  // Envelope slab: fixed-size chunks so slot lookup is a shift and a
  // mask (a deque would divide by its block stride) while envelope
  // addresses stay stable when the slab grows mid-delivery.
  static constexpr std::size_t kPoolChunkBits = 10;  // 1024 envelopes
  static constexpr std::size_t kPoolChunkSize = std::size_t{1}
                                                << kPoolChunkBits;
  static constexpr std::size_t kPoolChunkMask = kPoolChunkSize - 1;

  Envelope& slot_ref(std::uint32_t slot) {
    return pool_[slot >> kPoolChunkBits][slot & kPoolChunkMask];
  }
  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t slot) { free_.push_back(slot); }
  void schedule_slot(std::uint32_t slot, std::uint64_t key);
  SimTime draw_latency();
  /// Grows the (lazily sized) directory to cover `id`.
  DirectoryEntry& ensure_directory(std::uint32_t id) {
    if (id >= directory_.size()) directory_.resize(id + 1);
    return directory_[id];
  }
  /// Remote leg of send_impl: jitter/duplicate draws mirror the local
  /// path, then the envelope(s) go to `owner`'s mailbox.
  void forward_remote(MessageId id, AddressId from, AddressId to,
                      std::uint32_t owner, Message payload);
  void push_remote(std::uint32_t owner, RemoteEnvelope&& envelope);

  /// Shared send body; `payload` may be the Message variant or any of its
  /// alternatives (assigned directly into the pooled envelope).
  template <typename M>
  MessageId send_impl(AddressId from, AddressId to, M&& payload) {
    if (to.value() >= space_->size()) {
      throw std::out_of_range(
          "MessageBus::send: unknown destination AddressId");
    }
    const MessageId id{next_message_};
    next_message_ += config_.message_id_stride;
    ++stats_.sent;

    if (rng_.bernoulli(config_.drop_probability)) {
      ++stats_.dropped;
      return id;
    }

    if (fabric_ != nullptr) {
      const std::uint32_t owner = fabric_->addresses().owner_shard(to);
      if (owner != shard_ && owner != AddressSpace::kUnowned) {
        forward_remote(id, from, to, owner,
                       Message(std::forward<M>(payload)));
        return id;
      }
    }

    const std::uint32_t slot = acquire_slot();
    Envelope& envelope = slot_ref(slot);
    envelope.id = id;
    envelope.from = from;
    envelope.to = to;
    envelope.sent_at = queue_.now();
    envelope.delivered_at = SimTime{};
    envelope.payload = std::forward<M>(payload);
    const std::uint64_t key =
        pack_key(to.value(), ensure_directory(to.value()).binding);

    schedule_slot(slot, key);
    if (rng_.bernoulli(config_.duplicate_probability)) {
      ++stats_.duplicated;
      const std::uint32_t duplicate = acquire_slot();
      slot_ref(duplicate) = slot_ref(slot);  // duplicates are rare
      schedule_slot(duplicate, key);
    }
    return id;
  }
  /// One validated batch (consecutive equal keys) to one endpoint.
  void deliver_group(SimTime at, std::uint64_t key,
                     const EventQueue::Delivery* run, std::size_t count);

  EventQueue& queue_;
  BusConfig config_;
  Rng rng_;

  // Standalone buses own a private AddressSpace; sharded buses share the
  // fabric's.  Either way `space_` is the one source of names/ids and
  // directory_ is lazily sized to cover the ids this bus has touched.
  std::unique_ptr<AddressSpace> owned_space_;
  AddressSpace* space_ = nullptr;
  Fabric* fabric_ = nullptr;
  std::uint32_t shard_ = 0;

  std::vector<DirectoryEntry> directory_;        // indexed by AddressId

  std::vector<std::unique_ptr<Envelope[]>> pool_;  // chunked slab
  std::size_t pool_size_ = 0;                    // slots ever created
  std::vector<std::uint32_t> free_;              // recycled slots
  std::vector<const Envelope*> deliver_scratch_;

  BusStats stats_;
  std::uint64_t next_message_ = 0;
  std::uint64_t next_remote_sequence_ = 0;

  // Telemetry instruments (null until bind_telemetry; recording through
  // a null pointer is skipped, and FNDA_NO_TELEMETRY empties the bodies).
  // Per-delivery histograms sample every stride-th delivered group — the
  // tick advances in this shard's deterministic delivery order, so the
  // sampled stream is bit-identical at any worker count.
  static constexpr std::uint64_t kDeliverySampleStride = 16;
  obs::Histogram* delivery_latency_hist_ = nullptr;
  obs::Histogram* batch_size_hist_ = nullptr;
  std::uint64_t delivery_sample_tick_ = 0;
};

/// Receiver-side duplicate filter keyed by MessageId.
///
/// Bounded: ids live in two generations of at most `generation_capacity`
/// each; when the current generation fills, the oldest generation is
/// discarded.  An id is therefore remembered for at least
/// `generation_capacity` fresh ids after it — far longer than any
/// retransmission window — while long sessions stay at O(capacity)
/// memory instead of growing forever.
class DedupFilter {
 public:
  static constexpr std::size_t kDefaultGenerationCapacity = std::size_t{1}
                                                            << 16;

  explicit DedupFilter(
      std::size_t generation_capacity = kDefaultGenerationCapacity)
      : capacity_(generation_capacity == 0 ? 1 : generation_capacity) {}

  /// Returns true the first time an id is seen (within the retention
  /// window).  Storage is two generations of open-addressed flat u64
  /// tables (<=50% load, linear probing): one probe run per lookup on a
  /// contiguous array instead of a node-based set — the dedup check runs
  /// once per delivered message, and flat storage also frees in O(1)
  /// block per endpoint at teardown instead of a node walk.
  bool fresh(MessageId id) {
    const std::uint64_t key = id.value();
    if (contains(current_, key) || contains(previous_, key)) return false;
    if (current_count_ >= capacity_) {
      std::swap(current_, previous_);  // keep the newer generation
      std::fill(current_.begin(), current_.end(), kEmpty);  // storage reused
      current_count_ = 0;
    }
    insert(key);
    ++seen_total_;
    return true;
  }

  /// Distinct ids ever seen (not bounded by the retention window).
  std::size_t seen_count() const { return seen_total_; }

 private:
  /// Free-slot sentinel: MessageId::invalid(), which no delivered
  /// envelope carries.
  static constexpr std::uint64_t kEmpty = ~std::uint64_t{0};

  static std::size_t slot_of(std::uint64_t key, std::size_t mask) {
    // splitmix64-style finalizer: message ids are sequential counters,
    // so the low bits need mixing before masking.
    key ^= key >> 33;
    key *= 0xff51afd7ed558ccdull;
    key ^= key >> 33;
    return static_cast<std::size_t>(key) & mask;
  }

  static bool contains(const std::vector<std::uint64_t>& table,
                       std::uint64_t key) {
    if (table.empty()) return false;
    const std::size_t mask = table.size() - 1;
    for (std::size_t i = slot_of(key, mask);; i = (i + 1) & mask) {
      if (table[i] == key) return true;
      if (table[i] == kEmpty) return false;
    }
  }

  void insert(std::uint64_t key) {
    if ((current_count_ + 1) * 2 > current_.size()) grow();
    const std::size_t mask = current_.size() - 1;
    std::size_t i = slot_of(key, mask);
    while (current_[i] != kEmpty) i = (i + 1) & mask;
    current_[i] = key;
    ++current_count_;
  }

  /// Doubles the current generation's table (idle endpoints stay tiny;
  /// a generation at capacity_ stops growing by construction).
  void grow() {
    const std::size_t next = current_.empty() ? 64 : current_.size() * 2;
    std::vector<std::uint64_t> rebuilt(next, kEmpty);
    const std::size_t mask = next - 1;
    for (const std::uint64_t key : current_) {
      if (key == kEmpty) continue;
      std::size_t i = slot_of(key, mask);
      while (rebuilt[i] != kEmpty) i = (i + 1) & mask;
      rebuilt[i] = key;
    }
    current_ = std::move(rebuilt);
  }

  std::size_t capacity_;
  std::size_t seen_total_ = 0;
  std::size_t current_count_ = 0;
  std::vector<std::uint64_t> current_;
  std::vector<std::uint64_t> previous_;
};

}  // namespace fnda
