#include "market/zi_traders.h"

#include <algorithm>
#include <stdexcept>

namespace fnda {

ZiSessionResult run_zi_session(const SingleUnitInstance& instance, Rng& rng,
                               const ZiSessionConfig& config) {
  struct Trader {
    Side side;
    IdentityId identity;
    Money value;
    bool done = false;
  };
  std::vector<Trader> traders;
  traders.reserve(instance.buyer_values.size() +
                  instance.seller_values.size());
  for (std::size_t i = 0; i < instance.buyer_values.size(); ++i) {
    traders.push_back(
        Trader{Side::kBuyer, IdentityId{i}, instance.buyer_values[i]});
  }
  for (std::size_t j = 0; j < instance.seller_values.size(); ++j) {
    traders.push_back(Trader{Side::kSeller,
                             IdentityId{kSellerIdentityBase + j},
                             instance.seller_values[j]});
  }

  // True valuations for scoring.  The ranking is only read within this
  // call, so bench loops (cda_vs_call sweeps thousands of sessions) reuse
  // one per-thread scratch instead of allocating a SortedBook per session.
  const InstantiatedMarket market = instantiate_truthful(instance);
  Rng sort_rng = rng.split();
  thread_local SortedBook sorted;
  sorted.rebuild(market.book, sort_rng);

  ZiSessionResult result;
  result.efficient_surplus = efficient_surplus(sorted);

  ContinuousDoubleAuction book;
  auto by_identity = [&traders](IdentityId identity) -> Trader& {
    for (Trader& t : traders) {
      if (t.identity == identity) return t;
    }
    throw std::logic_error("run_zi_session: unknown identity");
  };

  double price_total = 0.0;
  std::size_t active = traders.size();
  for (std::size_t step = 0; step < config.max_steps && active > 0; ++step) {
    ++result.steps;
    // Pick a random still-active trader.
    std::size_t pick = rng.below(active);
    Trader* chosen = nullptr;
    for (Trader& t : traders) {
      if (t.done) continue;
      if (pick == 0) {
        chosen = &t;
        break;
      }
      --pick;
    }

    // ZI-C quote: uniform within the budget-feasible range.
    Money quote;
    if (chosen->side == Side::kBuyer) {
      if (chosen->value <= config.low) continue;  // cannot bid profitably
      quote = rng.uniform_money(config.low, chosen->value);
    } else {
      if (chosen->value >= config.high) continue;
      quote = rng.uniform_money(chosen->value, config.high);
    }

    const auto trade = book.submit(chosen->side, chosen->identity, quote,
                                   SimTime{static_cast<std::int64_t>(step)});
    if (trade.has_value()) {
      Trader& buyer = by_identity(trade->buyer);
      Trader& seller = by_identity(trade->seller);
      buyer.done = true;
      seller.done = true;
      active -= 2;
      ++result.trades;
      price_total += trade->price.to_double();
      result.surplus += (buyer.value - seller.value).to_double();
      // Their resting orders are consumed/replaced by the book itself.
    }

    // Early exit: no remaining buyer value exceeds any remaining seller
    // value -> no feasible trade can ever form.
    if (result.trades > 0 && active > 0 && step % 50 == 49) {
      Money best_buyer = Money::min_value();
      Money best_seller = Money::max_value();
      for (const Trader& t : traders) {
        if (t.done) continue;
        if (t.side == Side::kBuyer) best_buyer = std::max(best_buyer, t.value);
        if (t.side == Side::kSeller) {
          best_seller = std::min(best_seller, t.value);
        }
      }
      if (best_buyer < best_seller) break;
    }
  }

  if (result.trades > 0) {
    result.mean_price = price_total / static_cast<double>(result.trades);
  }
  result.efficiency = result.efficient_surplus > 0.0
                          ? result.surplus / result.efficient_surplus
                          : 1.0;
  return result;
}

}  // namespace fnda
