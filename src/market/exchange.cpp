#include "market/exchange.h"

#include <sstream>
#include <stdexcept>

namespace {

std::string identity_detail(fnda::IdentityId identity, fnda::Money amount) {
  std::ostringstream os;
  os << identity << ' ' << amount;
  return os.str();
}

}  // namespace

namespace fnda {

ExchangeSimulation::ExchangeSimulation(const DoubleAuctionProtocol& protocol,
                                       ExchangeConfig config)
    : config_(config) {
  Rng root(config_.seed);
  bus_ = std::make_unique<MessageBus>(queue_, config_.bus, root.split());
  escrow_ = std::make_unique<EscrowService>(cash_);
  settlement_ = std::make_unique<SettlementEngine>(registry_, cash_, goods_,
                                                   *escrow_);
  server_ = std::make_unique<AuctionServer>(
      "exchange", queue_, *bus_, protocol, *escrow_, *settlement_, audit_,
      root.split(), config_.server);
}

TradingClient& ExchangeSimulation::add_trader(Side role, Money true_value) {
  return add_trader(role, true_value, Strategy::truthful(role, true_value));
}

TradingClient& ExchangeSimulation::add_trader(Side role, Money true_value,
                                              Strategy strategy) {
  const AccountId account = registry_.create_account();
  cash_.grant(account, config_.initial_cash);
  if (role == Side::kSeller) goods_.grant(account, 1);

  const std::string address = "trader-" + std::to_string(next_client_++);
  auto client = std::make_unique<TradingClient>(
      address, account, role, true_value, queue_, *bus_, registry_, *escrow_,
      server_->address(), config_.client);
  client->set_strategy(std::move(strategy));
  server_->subscribe(address);
  traders_.push_back(std::move(client));
  return *traders_.back();
}

RoundId ExchangeSimulation::run_round(SimTime open_for) {
  const RoundId round = server_->open_round(open_for);
  queue_.run();
  return round;
}

Money ExchangeSimulation::close_market() {
  if (server_->round_open()) {
    throw std::logic_error("close_market: a round is still open");
  }
  Money refunded;
  for (IdentityId identity : escrow_->identities_with_deposits()) {
    const Money amount = escrow_->held(identity);
    escrow_->refund(identity, registry_.owner(identity));
    refunded += amount;
    audit_.append(queue_.now(), RoundId::invalid(),
                  AuditKind::kDepositRefunded,
                  identity_detail(identity, amount));
  }
  return refunded;
}

double ExchangeSimulation::settled_utility(const TradingClient& client) const {
  const AccountId account = client.account();
  // Wealth = spendable cash + deposits still in escrow (they remain the
  // account's money unless confiscated) + the valued unit, if held.
  Money escrowed;
  for (IdentityId identity : client.identities()) {
    escrowed += escrow_->held(identity);
  }
  const double cash_now = (cash_.balance(account) + escrowed).to_double();
  const double cash_initial = config_.initial_cash.to_double();

  const std::size_t units = goods_.units(account);
  const double value = client.true_value().to_double();
  const double goods_now = units > 0 ? value : 0.0;  // one unit is valued
  const double goods_initial = client.role() == Side::kSeller ? value : 0.0;

  return (cash_now - cash_initial) + (goods_now - goods_initial);
}

}  // namespace fnda
