#include "market/audit.h"

#include <sstream>

namespace fnda {

const char* to_string(AuditKind kind) {
  switch (kind) {
    case AuditKind::kRoundOpened: return "round-opened";
    case AuditKind::kBidAccepted: return "bid-accepted";
    case AuditKind::kBidRejected: return "bid-rejected";
    case AuditKind::kRoundCleared: return "round-cleared";
    case AuditKind::kDelivery: return "delivery";
    case AuditKind::kDeliveryFailed: return "delivery-failed";
    case AuditKind::kDepositConfiscated: return "deposit-confiscated";
    case AuditKind::kDepositRefunded: return "deposit-refunded";
  }
  return "?";
}

void AuditLog::append(SimTime at, RoundId round, AuditKind kind,
                      std::string detail) {
  records_.push_back(AuditRecord{at, round, kind, std::move(detail)});
}

std::size_t AuditLog::count(AuditKind kind) const {
  std::size_t n = 0;
  for (const AuditRecord& record : records_) {
    if (record.kind == kind) ++n;
  }
  return n;
}

std::vector<AuditRecord> AuditLog::for_round(RoundId round) const {
  std::vector<AuditRecord> result;
  for (const AuditRecord& record : records_) {
    if (record.round == round) result.push_back(record);
  }
  return result;
}

std::string AuditLog::dump() const {
  std::ostringstream os;
  for (const AuditRecord& record : records_) {
    os << "t=" << record.at.micros << ' ' << record.round << ' '
       << to_string(record.kind);
    if (!record.detail.empty()) os << ' ' << record.detail;
    os << '\n';
  }
  return os.str();
}

}  // namespace fnda
