// Experiment runner: the Monte-Carlo loop behind Tables 1-2 and Figure 1.
//
// For each generated instance, every registered protocol clears the same
// truthful book (common random numbers across protocols), the realised
// surplus is decomposed, and the Pareto-efficient surplus of the instance
// is recorded as the ratio denominator.
#pragma once

#include <string>
#include <vector>

#include "common/statistics.h"
#include "core/protocol.h"
#include "core/validation.h"
#include "sim/generators.h"

namespace fnda {

struct ExperimentConfig {
  std::size_t instances = 1000;
  std::uint64_t seed = 20010416;  // ICDCS-2001 vintage default
  /// Run validate_outcome on every clearing (cheap; on by default).
  bool validate = true;
  /// Relaxations for deliberately invariant-breaking protocols (VCG).
  ValidationOptions validation{};
  /// Sort-once fast path (default): each instance's book is ranked
  /// exactly once and that SortedBook is shared by the Pareto surplus
  /// computation and every protocol's `clear_sorted`, with per-protocol
  /// rng streams derived from the instance seed.  When false, the legacy
  /// path re-sorts per protocol from a common tie-break stream — kept so
  /// the paper-reproduction numbers can always be cross-checked against
  /// the original pipeline.  For the deterministic protocols (TPD, PMD,
  /// efficient, kDA, VCG) the two paths produce identical per-instance
  /// surpluses; they may differ in which same-valued bid fills (tie
  /// permutations only).
  bool shared_sort = true;
};

/// Aggregated results for one protocol across all instances.
struct ProtocolSummary {
  std::string name;
  RunningStats total;              ///< social surplus incl. auctioneer
  RunningStats except_auctioneer;  ///< surplus kept by traders
  RunningStats auctioneer;         ///< auctioneer revenue
  RunningStats trades;             ///< executed trade count
};

struct ComparisonResult {
  RunningStats pareto;        ///< efficient surplus per instance
  RunningStats pareto_trades; ///< efficient trade count per instance
  std::vector<ProtocolSummary> protocols;

  const ProtocolSummary& summary(const std::string& name) const;
  /// mean(total surplus) / mean(Pareto surplus) — the paper's
  /// parenthesised percentage, as a fraction.
  double ratio_total(const std::string& name) const;
  double ratio_except_auctioneer(const std::string& name) const;
};

/// Runs `config.instances` draws of `generator`, clearing each with every
/// protocol in `protocols` (non-owning pointers; all must outlive the call).
/// The instance stream is a function of `config.seed` alone and is
/// identical under both the shared-sort and legacy paths.
ComparisonResult run_comparison(
    const InstanceGenerator& generator,
    const std::vector<const DoubleAuctionProtocol*>& protocols,
    const ExperimentConfig& config = {});

/// Parallel variant.  Each instance's randomness is derived from
/// (config.seed, instance index) rather than one sequential stream, and
/// per-thread accumulators are merged in index order — so the result is
/// bit-identical for EVERY thread count (including 1), though it differs
/// from run_comparison's draw order.  `threads` == 0 uses the hardware
/// concurrency.  Exceptions from worker threads (e.g. validation
/// failures) are rethrown on the calling thread.
ComparisonResult run_comparison_parallel(
    const InstanceGenerator& generator,
    const std::vector<const DoubleAuctionProtocol*>& protocols,
    const ExperimentConfig& config = {}, std::size_t threads = 0);

}  // namespace fnda
