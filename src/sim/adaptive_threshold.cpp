#include "sim/adaptive_threshold.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fnda {

AdaptiveThresholdPolicy::AdaptiveThresholdPolicy(Money initial,
                                                 double smoothing)
    : current_(initial), smoothing_(smoothing) {
  if (!(smoothing > 0.0) || smoothing > 1.0) {
    throw std::invalid_argument(
        "AdaptiveThresholdPolicy: smoothing must be in (0, 1]");
  }
}

void AdaptiveThresholdPolicy::observe(const SortedBook& book) {
  const std::size_t k = book.efficient_trade_count();
  if (k == 0) return;  // no crossing pair: nothing learned
  const Money target =
      Money::midpoint(book.buyer_value(k), book.seller_value(k));
  const double updated =
      (1.0 - smoothing_) * static_cast<double>(current_.micros()) +
      smoothing_ * static_cast<double>(target.micros());
  current_ = Money::from_micros(static_cast<std::int64_t>(
      std::llround(updated)));
  ++observations_;
}

}  // namespace fnda
