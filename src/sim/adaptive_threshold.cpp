#include "sim/adaptive_threshold.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fnda {

AdaptiveThresholdPolicy::AdaptiveThresholdPolicy(Money initial,
                                                 double smoothing)
    : current_(initial), smoothing_(smoothing) {
  if (!(smoothing > 0.0) || smoothing > 1.0) {
    throw std::invalid_argument(
        "AdaptiveThresholdPolicy: smoothing must be in (0, 1]");
  }
}

void AdaptiveThresholdPolicy::observe(const SortedBook& book) {
  if (window_capacity_ > 0) {
    window_.emplace_back(book);
    while (window_.size() > window_capacity_) window_.pop_front();
  }

  const std::size_t k = book.efficient_trade_count();
  if (k == 0) return;  // no crossing pair: nothing learned
  const Money target =
      Money::midpoint(book.buyer_value(k), book.seller_value(k));
  const double updated =
      (1.0 - smoothing_) * static_cast<double>(current_.micros()) +
      smoothing_ * static_cast<double>(target.micros());
  current_ = Money::from_micros(static_cast<std::int64_t>(
      std::llround(updated)));
  ++observations_;
}

void AdaptiveThresholdPolicy::set_window_capacity(std::size_t capacity) {
  window_capacity_ = capacity;
  while (window_.size() > window_capacity_) window_.pop_front();
}

Money AdaptiveThresholdPolicy::recalibrate(std::span<const Money> candidates,
                                           ThresholdObjective objective) {
  if (window_.empty() || candidates.empty()) return current_;

  Money best = current_;
  double best_value = -std::numeric_limits<double>::infinity();
  for (Money r : candidates) {
    double value = 0.0;
    for (const TpdSweepBook& book : window_) {
      value += book.evaluate(r).objective(objective);
    }
    if (value > best_value) {
      best_value = value;
      best = r;
    }
  }
  current_ = best;
  return current_;
}

}  // namespace fnda
