#include "sim/table.h"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace fnda {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  if (headers_.empty()) {
    throw std::invalid_argument("TextTable: need at least one column");
  }
}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("TextTable::add_row: cell count mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << "  ";
      os << row[c];
      for (std::size_t pad = row[c].size(); pad < widths[c]; ++pad) os << ' ';
    }
    os << '\n';
  };

  emit_row(headers_);
  std::size_t rule = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    rule += widths[c] + (c > 0 ? 2 : 0);
  }
  os << std::string(rule, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string TextTable::to_csv() const {
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit_row(headers_);
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string format_fixed(double value, int decimals) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", decimals, value);
  return buffer;
}

std::string format_with_ratio(double value, double ratio, int value_decimals,
                              int ratio_decimals) {
  return format_fixed(value, value_decimals) + " (" +
         format_fixed(ratio * 100.0, ratio_decimals) + "%)";
}

std::ostream& operator<<(std::ostream& os, const TextTable& table) {
  return os << table.to_string();
}

}  // namespace fnda
