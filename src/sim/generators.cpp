#include "sim/generators.h"

namespace fnda {
namespace {

SingleUnitInstance draw(std::size_t buyers, std::size_t sellers,
                        const ValueDistribution& values, Rng& rng) {
  SingleUnitInstance instance;
  instance.domain = values.domain;
  instance.buyer_values.reserve(buyers);
  instance.seller_values.reserve(sellers);
  for (std::size_t i = 0; i < buyers; ++i) {
    instance.buyer_values.push_back(rng.uniform_money(values.low, values.high));
  }
  for (std::size_t j = 0; j < sellers; ++j) {
    instance.seller_values.push_back(
        rng.uniform_money(values.low, values.high));
  }
  return instance;
}

}  // namespace

InstanceGenerator fixed_count_generator(std::size_t buyers,
                                        std::size_t sellers,
                                        ValueDistribution values) {
  return [buyers, sellers, values](Rng& rng) {
    return draw(buyers, sellers, values, rng);
  };
}

InstanceGenerator correlated_value_generator(std::size_t buyers,
                                             std::size_t sellers, double rho,
                                             ValueDistribution values) {
  return [buyers, sellers, rho, values](Rng& rng) {
    const double common =
        rng.uniform_double(values.low.to_double(), values.high.to_double());
    auto draw_value = [&] {
      const double priv =
          rng.uniform_double(values.low.to_double(), values.high.to_double());
      return Money::from_double((1.0 - rho) * priv + rho * common);
    };
    SingleUnitInstance instance;
    instance.domain = values.domain;
    instance.buyer_values.reserve(buyers);
    instance.seller_values.reserve(sellers);
    for (std::size_t i = 0; i < buyers; ++i) {
      instance.buyer_values.push_back(draw_value());
    }
    for (std::size_t j = 0; j < sellers; ++j) {
      instance.seller_values.push_back(draw_value());
    }
    return instance;
  };
}

InstanceGenerator binomial_count_generator(int trials, double p,
                                           ValueDistribution values) {
  return [trials, p, values](Rng& rng) {
    const auto buyers = static_cast<std::size_t>(rng.binomial(trials, p));
    const auto sellers = static_cast<std::size_t>(rng.binomial(trials, p));
    return draw(buyers, sellers, values, rng);
  };
}

}  // namespace fnda
