// Problem-instance generators matching Section 7 of the paper.
#pragma once

#include <cstdint>
#include <functional>

#include "common/rng.h"
#include "core/instance.h"

namespace fnda {

/// A generator draws one instance per call from the provided stream.
using InstanceGenerator = std::function<SingleUnitInstance(Rng&)>;

/// Parameters shared by the paper's generators: valuations are i.i.d.
/// uniform on [low, high] (the paper uses [0, 100]).
struct ValueDistribution {
  Money low = Money::from_units(0);
  Money high = Money::from_units(100);
  ValueDomain domain{};
};

/// Table 1 workload: exactly `buyers` buyers and `sellers` sellers.
InstanceGenerator fixed_count_generator(std::size_t buyers,
                                        std::size_t sellers,
                                        ValueDistribution values = {});

/// Table 2 workload: m and n drawn independently from Binomial(N, p)
/// (the paper sets p = 0.5, so E[m] = E[n] = N/2).
InstanceGenerator binomial_count_generator(int trials, double p = 0.5,
                                           ValueDistribution values = {});

/// Correlated-value workload (the paper's "future work": goods whose
/// values are correlated across participants).  Each instance draws one
/// common component C ~ U[low, high]; every valuation is
/// (1 - rho) * private + rho * C with private ~ U[low, high].  rho = 0 is
/// the standard private-value model; rho = 1 is pure common value.
/// TPD's incentive guarantees are distribution-free, but a *fixed*
/// threshold suffers: the clearing region now moves with C each round
/// (see bench/threshold_optimizer's correlated rows).
InstanceGenerator correlated_value_generator(std::size_t buyers,
                                             std::size_t sellers, double rho,
                                             ValueDistribution values = {});

}  // namespace fnda
