#include "sim/experiment.h"

#include <atomic>
#include <exception>
#include <stdexcept>
#include <thread>

namespace fnda {

const ProtocolSummary& ComparisonResult::summary(
    const std::string& name) const {
  for (const ProtocolSummary& s : protocols) {
    if (s.name == name) return s;
  }
  throw std::out_of_range("ComparisonResult::summary: unknown protocol " +
                          name);
}

double ComparisonResult::ratio_total(const std::string& name) const {
  const double denom = pareto.mean();
  return denom == 0.0 ? 0.0 : summary(name).total.mean() / denom;
}

double ComparisonResult::ratio_except_auctioneer(
    const std::string& name) const {
  const double denom = pareto.mean();
  return denom == 0.0 ? 0.0 : summary(name).except_auctioneer.mean() / denom;
}

namespace {

constexpr std::uint64_t kStreamGamma = 0x9e3779b97f4a7c15ULL;

/// Per-worker reusable buffers: the shared ranking is rebuilt in place
/// each instance, so steady-state clearing allocates only the outcomes.
struct ClearScratch {
  SortedBook sorted;
};

/// Scores one instance into `result` (accumulators only; caller provides
/// the rng streams so sequential and parallel paths can differ in how
/// they derive them).
///
/// Shared-sort path: `market.book` is ranked once from `pareto_rng` and
/// the resulting SortedBook feeds the Pareto surplus AND every protocol's
/// `clear_sorted`; protocol p draws its internal randomness from a stream
/// split off `clear_seed` by index.  Legacy path: the Pareto book is
/// sorted from `pareto_rng` and every protocol re-sorts from an identical
/// Rng(clear_seed) (common random numbers), exactly the original
/// pipeline.
void score_instance(const SingleUnitInstance& instance,
                    const std::vector<const DoubleAuctionProtocol*>& protocols,
                    const ExperimentConfig& config, Rng& pareto_rng,
                    std::uint64_t clear_seed, ClearScratch& scratch,
                    ComparisonResult& result) {
  const InstantiatedMarket market = instantiate_truthful(instance);
  scratch.sorted.rebuild(market.book, pareto_rng);
  const SortedBook& true_book = scratch.sorted;
  result.pareto.add(efficient_surplus(true_book));
  result.pareto_trades.add(
      static_cast<double>(true_book.efficient_trade_count()));

  for (std::size_t p = 0; p < protocols.size(); ++p) {
    Outcome outcome;
    if (config.shared_sort) {
      Rng clear_rng(clear_seed ^ (kStreamGamma * (p + 1)));
      outcome = protocols[p]->clear_sorted(true_book, clear_rng);
    } else {
      Rng clear_rng(clear_seed);
      outcome = protocols[p]->clear(market.book, clear_rng);
    }
    if (config.validate) {
      expect_valid_outcome(market.book, outcome, config.validation);
    }
    const SurplusReport surplus = realized_surplus(outcome, market.truth);
    ProtocolSummary& summary = result.protocols[p];
    summary.total.add(surplus.total);
    summary.except_auctioneer.add(surplus.except_auctioneer);
    summary.auctioneer.add(surplus.auctioneer);
    summary.trades.add(static_cast<double>(outcome.trade_count()));
  }
}

ComparisonResult make_result_shell(
    const std::vector<const DoubleAuctionProtocol*>& protocols) {
  ComparisonResult result;
  result.protocols.reserve(protocols.size());
  for (const DoubleAuctionProtocol* protocol : protocols) {
    ProtocolSummary summary;
    summary.name = protocol->name();
    result.protocols.push_back(std::move(summary));
  }
  return result;
}

void merge_into(ComparisonResult& into, const ComparisonResult& from) {
  into.pareto.merge(from.pareto);
  into.pareto_trades.merge(from.pareto_trades);
  for (std::size_t p = 0; p < into.protocols.size(); ++p) {
    into.protocols[p].total.merge(from.protocols[p].total);
    into.protocols[p].except_auctioneer.merge(
        from.protocols[p].except_auctioneer);
    into.protocols[p].auctioneer.merge(from.protocols[p].auctioneer);
    into.protocols[p].trades.merge(from.protocols[p].trades);
  }
}

}  // namespace

ComparisonResult run_comparison_parallel(
    const InstanceGenerator& generator,
    const std::vector<const DoubleAuctionProtocol*>& protocols,
    const ExperimentConfig& config, std::size_t threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }

  // The work is partitioned into a FIXED number of blocks (independent of
  // the thread count), each with its own accumulators; blocks are merged
  // in index order.  Floating-point accumulation order is therefore a
  // function of the instance count alone, making results bit-identical
  // for every thread count.
  const std::size_t blocks =
      std::min<std::size_t>(std::max<std::size_t>(config.instances, 1), 64);
  threads = std::min(threads, blocks);

  std::vector<ComparisonResult> partials;
  partials.reserve(blocks);
  for (std::size_t b = 0; b < blocks; ++b) {
    partials.push_back(make_result_shell(protocols));
  }
  std::vector<std::exception_ptr> errors(threads);
  std::atomic<std::size_t> next_block{0};

  auto worker = [&](std::size_t thread_index) {
    try {
      ClearScratch scratch;  // reused across every instance this thread runs
      while (true) {
        const std::size_t block = next_block.fetch_add(1);
        if (block >= blocks) return;
        const std::size_t begin = config.instances * block / blocks;
        const std::size_t end = config.instances * (block + 1) / blocks;
        for (std::size_t run = begin; run < end; ++run) {
          // Counter-based derivation: independent of scheduling.
          Rng rng(config.seed ^ (kStreamGamma * (run + 1)));
          const SingleUnitInstance instance = generator(rng);
          Rng pareto_rng = rng.split();
          const std::uint64_t clear_seed = rng();
          score_instance(instance, protocols, config, pareto_rng, clear_seed,
                         scratch, partials[block]);
        }
      }
    } catch (...) {
      errors[thread_index] = std::current_exception();
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) pool.emplace_back(worker, t);
  for (std::thread& thread : pool) thread.join();
  for (const std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }

  ComparisonResult result = make_result_shell(protocols);
  for (const ComparisonResult& partial : partials) {
    merge_into(result, partial);
  }
  return result;
}

ComparisonResult run_comparison(
    const InstanceGenerator& generator,
    const std::vector<const DoubleAuctionProtocol*>& protocols,
    const ExperimentConfig& config) {
  ComparisonResult result = make_result_shell(protocols);
  ClearScratch scratch;

  Rng rng(config.seed);
  for (std::size_t run = 0; run < config.instances; ++run) {
    const SingleUnitInstance instance = generator(rng);
    // The Pareto benchmark uses the true-value ranking (declared == true
    // here, since the experiment assumes no false-name bids, Section 7);
    // under shared_sort the same ranking also feeds every protocol.
    Rng pareto_rng = rng.split();
    const std::uint64_t clear_seed = rng();
    score_instance(instance, protocols, config, pareto_rng, clear_seed,
                   scratch, result);
  }
  return result;
}

}  // namespace fnda
