#include "sim/threshold_search.h"

#include <algorithm>
#include <stdexcept>

#include "protocols/tpd.h"
#include "sim/experiment.h"

namespace fnda {

double expected_tpd_surplus(const InstanceGenerator& generator, Money r,
                            ThresholdObjective objective,
                            std::size_t instances, std::uint64_t seed) {
  const TpdProtocol tpd(r);
  ExperimentConfig config;
  config.instances = instances;
  config.seed = seed;
  config.validate = false;  // hot loop; invariants are covered by tests
  const ComparisonResult result = run_comparison(generator, {&tpd}, config);
  const ProtocolSummary& summary = result.protocols.front();
  return objective == ThresholdObjective::kTotalSurplus
             ? summary.total.mean()
             : summary.except_auctioneer.mean();
}

ThresholdSearchResult optimize_threshold(const InstanceGenerator& generator,
                                         const ThresholdSearchConfig& config) {
  if (!(config.lo < config.hi) || config.coarse_points < 2) {
    throw std::invalid_argument("optimize_threshold: bad config");
  }

  auto evaluate = [&](Money r) {
    // Same seed for every candidate: common random numbers.
    return expected_tpd_surplus(generator, r, config.objective,
                                config.instances_per_eval, config.seed);
  };

  ThresholdSearchResult result;
  result.sweep.reserve(config.coarse_points);
  const std::int64_t lo = config.lo.micros();
  const std::int64_t hi = config.hi.micros();
  std::size_t best_index = 0;
  for (std::size_t p = 0; p < config.coarse_points; ++p) {
    const Money r = Money::from_micros(
        lo + (hi - lo) * static_cast<std::int64_t>(p) /
                 static_cast<std::int64_t>(config.coarse_points - 1));
    const double value = evaluate(r);
    result.sweep.emplace_back(r, value);
    if (value > result.sweep[best_index].second) best_index = p;
  }

  // Golden-section refinement on the bracket around the best coarse point.
  const Money bracket_lo =
      result.sweep[best_index == 0 ? 0 : best_index - 1].first;
  const Money bracket_hi =
      result.sweep[std::min(best_index + 1, result.sweep.size() - 1)].first;

  constexpr double kInvPhi = 0.6180339887498949;
  double a = static_cast<double>(bracket_lo.micros());
  double b = static_cast<double>(bracket_hi.micros());
  double c = b - (b - a) * kInvPhi;
  double d = a + (b - a) * kInvPhi;
  double fc = evaluate(Money::from_micros(static_cast<std::int64_t>(c)));
  double fd = evaluate(Money::from_micros(static_cast<std::int64_t>(d)));
  for (std::size_t it = 0; it < config.refine_iterations && b - a > 1.0; ++it) {
    if (fc > fd) {
      b = d;
      d = c;
      fd = fc;
      c = b - (b - a) * kInvPhi;
      fc = evaluate(Money::from_micros(static_cast<std::int64_t>(c)));
    } else {
      a = c;
      c = d;
      fc = fd;
      d = a + (b - a) * kInvPhi;
      fd = evaluate(Money::from_micros(static_cast<std::int64_t>(d)));
    }
  }

  const Money refined = Money::from_micros(static_cast<std::int64_t>((a + b) / 2.0));
  const double refined_value = evaluate(refined);
  const auto& coarse_best = result.sweep[best_index];
  if (refined_value >= coarse_best.second) {
    result.best_threshold = refined;
    result.best_value = refined_value;
  } else {
    result.best_threshold = coarse_best.first;
    result.best_value = coarse_best.second;
  }
  return result;
}

}  // namespace fnda
