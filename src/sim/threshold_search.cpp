#include "sim/threshold_search.h"

#include <algorithm>
#include <functional>
#include <stdexcept>

#include "common/statistics.h"
#include "common/sweep_kernel.h"

namespace fnda {

TpdSweepBook::TpdSweepBook(const SortedBook& book) {
  buyers_desc_.reserve(book.buyer_count());
  for (const BidEntry& entry : book.buyers()) {
    buyers_desc_.push_back(entry.value.micros());
  }
  sellers_asc_.reserve(book.seller_count());
  for (const BidEntry& entry : book.sellers()) {
    sellers_asc_.push_back(entry.value.micros());
  }
  prepare();
}

TpdSweepBook::TpdSweepBook(const SingleUnitInstance& instance) {
  buyers_desc_.reserve(instance.buyer_values.size());
  for (const Money value : instance.buyer_values) {
    buyers_desc_.push_back(value.micros());
  }
  sellers_asc_.reserve(instance.seller_values.size());
  for (const Money value : instance.seller_values) {
    sellers_asc_.push_back(value.micros());
  }
  std::sort(buyers_desc_.begin(), buyers_desc_.end(), std::greater<>());
  std::sort(sellers_asc_.begin(), sellers_asc_.end());
  prepare();
}

void TpdSweepBook::prepare() {
  const std::size_t limit = std::min(buyers_desc_.size(), sellers_asc_.size());
  pair_surplus_prefix_.assign(limit + 1, 0);
  for (std::size_t t = 0; t < limit; ++t) {
    pair_surplus_prefix_[t + 1] =
        pair_surplus_prefix_[t] + (buyers_desc_[t] - sellers_asc_[t]);
  }
}

TpdThresholdOutcome TpdSweepBook::evaluate(Money r) const {
  // i = |{b >= r}|, j = |{s <= r}|: partition points over the ranked
  // lanes, computed by the branchless/SIMD kernel (identical to the
  // lower_bound formulation this code used to spell out).
  const std::int64_t threshold = r.micros();
  const std::size_t i =
      simd::count_ge_desc(buyers_desc_.data(), buyers_desc_.size(), threshold);
  const std::size_t j =
      simd::count_le_asc(sellers_asc_.data(), sellers_asc_.size(), threshold);

  TpdThresholdOutcome outcome;
  outcome.trades = std::min(i, j);
  outcome.total = Money::from_micros(pair_surplus_prefix_[outcome.trades]);
  if (i > j) {
    // Sellers are the short side: each buyer pays b(j+1) (>= r since
    // j + 1 <= i), each seller receives r.
    outcome.auctioneer = static_cast<std::int64_t>(j) *
                         Money::from_micros(buyers_desc_[j] - threshold);
  } else if (i < j) {
    // Buyers are the short side: each buyer pays r, each seller receives
    // s(i+1) (<= r since i + 1 <= j).
    outcome.auctioneer = static_cast<std::int64_t>(i) *
                         Money::from_micros(threshold - sellers_asc_[i]);
  }
  return outcome;
}

std::vector<TpdThresholdOutcome> sweep_tpd_surplus(
    const SortedBook& book, std::span<const Money> thresholds) {
  const TpdSweepBook prepared(book);
  std::vector<TpdThresholdOutcome> results;
  results.reserve(thresholds.size());
  for (Money r : thresholds) {
    results.push_back(prepared.evaluate(r));
  }
  return results;
}

std::vector<TpdSweepBook> prepare_tpd_sweep(const InstanceGenerator& generator,
                                            std::size_t instances,
                                            std::uint64_t seed) {
  std::vector<TpdSweepBook> books;
  books.reserve(instances);
  Rng rng(seed);
  for (std::size_t run = 0; run < instances; ++run) {
    books.emplace_back(generator(rng));
  }
  return books;
}

double mean_tpd_objective(std::span<const TpdSweepBook> books, Money r,
                          ThresholdObjective objective) {
  RunningStats stats;
  for (const TpdSweepBook& book : books) {
    stats.add(book.evaluate(r).objective(objective));
  }
  return stats.mean();
}

double expected_tpd_surplus(const InstanceGenerator& generator, Money r,
                            ThresholdObjective objective,
                            std::size_t instances, std::uint64_t seed) {
  const std::vector<TpdSweepBook> books =
      prepare_tpd_sweep(generator, instances, seed);
  return mean_tpd_objective(books, r, objective);
}

ThresholdSearchResult optimize_threshold(const InstanceGenerator& generator,
                                         const ThresholdSearchConfig& config) {
  if (!(config.lo < config.hi) || config.coarse_points < 2) {
    throw std::invalid_argument("optimize_threshold: bad config");
  }

  // One instance draw + one rank/prefix pass, shared by the coarse sweep
  // AND every golden-section probe (common random numbers, sort-once).
  const std::vector<TpdSweepBook> books =
      prepare_tpd_sweep(generator, config.instances_per_eval, config.seed);
  auto evaluate = [&](Money r) {
    return mean_tpd_objective(books, r, config.objective);
  };

  ThresholdSearchResult result;
  result.sweep.reserve(config.coarse_points);
  const std::int64_t lo = config.lo.micros();
  const std::int64_t hi = config.hi.micros();
  std::size_t best_index = 0;
  for (std::size_t p = 0; p < config.coarse_points; ++p) {
    const Money r = Money::from_micros(
        lo + (hi - lo) * static_cast<std::int64_t>(p) /
                 static_cast<std::int64_t>(config.coarse_points - 1));
    const double value = evaluate(r);
    result.sweep.emplace_back(r, value);
    if (value > result.sweep[best_index].second) best_index = p;
  }

  // Golden-section refinement on the bracket around the best coarse point.
  const Money bracket_lo =
      result.sweep[best_index == 0 ? 0 : best_index - 1].first;
  const Money bracket_hi =
      result.sweep[std::min(best_index + 1, result.sweep.size() - 1)].first;

  constexpr double kInvPhi = 0.6180339887498949;
  double a = static_cast<double>(bracket_lo.micros());
  double b = static_cast<double>(bracket_hi.micros());
  double c = b - (b - a) * kInvPhi;
  double d = a + (b - a) * kInvPhi;
  double fc = evaluate(Money::from_micros(static_cast<std::int64_t>(c)));
  double fd = evaluate(Money::from_micros(static_cast<std::int64_t>(d)));
  for (std::size_t it = 0; it < config.refine_iterations && b - a > 1.0; ++it) {
    if (fc > fd) {
      b = d;
      d = c;
      fd = fc;
      c = b - (b - a) * kInvPhi;
      fc = evaluate(Money::from_micros(static_cast<std::int64_t>(c)));
    } else {
      a = c;
      c = d;
      fc = fd;
      d = a + (b - a) * kInvPhi;
      fd = evaluate(Money::from_micros(static_cast<std::int64_t>(d)));
    }
  }

  const Money refined = Money::from_micros(static_cast<std::int64_t>((a + b) / 2.0));
  const double refined_value = evaluate(refined);
  const auto& coarse_best = result.sweep[best_index];
  if (refined_value >= coarse_best.second) {
    result.best_threshold = refined;
    result.best_value = refined_value;
  } else {
    result.best_threshold = coarse_best.first;
    result.best_value = coarse_best.second;
  }
  return result;
}

}  // namespace fnda
