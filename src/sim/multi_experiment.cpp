#include "sim/multi_experiment.h"

#include <algorithm>
#include <stdexcept>

namespace fnda {
namespace {

std::vector<Money> draw_schedule(const MultiUnitWorkload& workload, Rng& rng) {
  const std::size_t units =
      workload.min_units +
      rng.below(workload.max_units - workload.min_units + 1);
  std::vector<Money> values;
  values.reserve(units);
  for (std::size_t u = 0; u < units; ++u) {
    values.push_back(rng.uniform_money(workload.low, workload.high));
  }
  std::sort(values.begin(), values.end(),
            [](Money a, Money b) { return a > b; });
  return values;
}

}  // namespace

MultiUnitDraw draw_multi_instance(const MultiUnitWorkload& workload,
                                  Rng& rng) {
  if (workload.min_units == 0 || workload.min_units > workload.max_units) {
    throw std::invalid_argument("draw_multi_instance: bad unit range");
  }
  MultiUnitDraw draw;
  for (std::size_t b = 0; b < workload.buyers; ++b) {
    const IdentityId identity{b};
    auto values = draw_schedule(workload, rng);
    draw.truth.buyer_values[identity] = values;
    draw.book.add_buyer(identity, std::move(values));
  }
  for (std::size_t s = 0; s < workload.sellers; ++s) {
    const IdentityId identity{1'000'000 + s};
    auto values = draw_schedule(workload, rng);
    draw.truth.seller_values[identity] = values;
    draw.book.add_seller(identity, std::move(values));
  }
  return draw;
}

MultiExperimentResult run_multi_experiment(const TpdMultiUnitProtocol& protocol,
                                           const MultiUnitWorkload& workload,
                                           std::size_t instances,
                                           std::uint64_t seed) {
  MultiExperimentResult result;
  Rng rng(seed);
  for (std::size_t run = 0; run < instances; ++run) {
    const MultiUnitDraw draw = draw_multi_instance(workload, rng);
    Rng clear_rng = rng.split();
    const MultiUnitOutcome outcome = protocol.clear(draw.book, clear_rng);
    const auto errors = validate_multi_outcome(draw.book, outcome);
    if (!errors.empty()) {
      throw std::logic_error("run_multi_experiment: invalid outcome: " +
                             errors.front());
    }
    const MultiUnitSurplus surplus = realized_multi_surplus(outcome, draw.truth);
    result.total.add(surplus.total);
    result.except_auctioneer.add(surplus.except_auctioneer);
    result.auctioneer.add(surplus.auctioneer);
    result.units.add(static_cast<double>(outcome.units_traded()));
    Rng pareto_rng = rng.split();
    result.pareto.add(efficient_multi_surplus(draw.book, pareto_rng));
  }
  return result;
}

}  // namespace fnda
