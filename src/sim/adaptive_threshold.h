// Online threshold adaptation across rounds (Section 8's future work,
// operationalised).
//
// The TPD auctioneer must fix r before each round's bids, but nothing
// stops it from learning across rounds: past declarations are sunk, and
// in the exchange model every round's identities are fresh, so a one-shot
// bidder cannot profit by distorting today's bid to move tomorrow's
// threshold.  (With long-lived patient bidders this assumption weakens —
// documented, not hidden.)
//
// The policy tracks the *market-clearing region* of each observed book:
// the midpoint of the marginal pair (b(k), s(k)) is where supply meets
// demand, which for symmetric markets is exactly the surplus-maximising
// threshold.  Exponential smoothing filters sampling noise.
#pragma once

#include "common/money.h"
#include "core/order_book.h"

namespace fnda {

class AdaptiveThresholdPolicy {
 public:
  /// `smoothing` in (0, 1]: weight of the newest observation.
  AdaptiveThresholdPolicy(Money initial, double smoothing = 0.25);

  /// The threshold to announce for the next round.
  Money current() const { return current_; }

  /// Feeds one completed round's declared book.  Books with no crossing
  /// pair carry no clearing-price information and are ignored.
  void observe(const SortedBook& book);

  std::size_t observations() const { return observations_; }

 private:
  Money current_;
  double smoothing_;
  std::size_t observations_ = 0;
};

}  // namespace fnda
