// Online threshold adaptation across rounds (Section 8's future work,
// operationalised).
//
// The TPD auctioneer must fix r before each round's bids, but nothing
// stops it from learning across rounds: past declarations are sunk, and
// in the exchange model every round's identities are fresh, so a one-shot
// bidder cannot profit by distorting today's bid to move tomorrow's
// threshold.  (With long-lived patient bidders this assumption weakens —
// documented, not hidden.)
//
// Two estimators are available:
//
//   1. Clearing-midpoint tracking (the default `observe` update): the
//      midpoint of the marginal pair (b(k), s(k)) is where supply meets
//      demand, which for symmetric markets is exactly the
//      surplus-maximising threshold.  Exponential smoothing filters
//      sampling noise.
//   2. Sweep recalibration (`recalibrate`): with a window of recent books
//      retained (see `set_window_capacity`), the policy evaluates a
//      candidate grid against the whole window through the incremental
//      TPD sweep kernel (`TpdSweepBook`, two binary searches per
//      candidate per book) and jumps to the empirical argmax.  This is
//      the direct "optimise the threshold online" answer and handles
//      asymmetric markets where the midpoint heuristic is biased.
#pragma once

#include <deque>
#include <span>

#include "common/money.h"
#include "core/order_book.h"
#include "sim/threshold_search.h"

namespace fnda {

class AdaptiveThresholdPolicy {
 public:
  /// `smoothing` in (0, 1]: weight of the newest observation.
  AdaptiveThresholdPolicy(Money initial, double smoothing = 0.25);

  /// The threshold to announce for the next round.
  Money current() const { return current_; }

  /// Feeds one completed round's declared book.  Books with no crossing
  /// pair carry no clearing-price information and are ignored by the
  /// midpoint update but still enter the sweep window (a book that
  /// cannot clear is evidence about the value distribution too).
  void observe(const SortedBook& book);

  std::size_t observations() const { return observations_; }

  /// Enables the sweep window: the most recent `capacity` observed books
  /// are retained (preprocessed for the kernel).  Zero (the default)
  /// disables retention.
  void set_window_capacity(std::size_t capacity);
  std::size_t window_size() const { return window_.size(); }

  /// Jumps the threshold to the candidate maximising the chosen objective
  /// averaged over the retained window, and returns it.  With an empty
  /// window (or empty candidate list) the threshold is left unchanged.
  Money recalibrate(std::span<const Money> candidates,
                    ThresholdObjective objective =
                        ThresholdObjective::kTotalSurplus);

 private:
  Money current_;
  double smoothing_;
  std::size_t observations_ = 0;
  std::size_t window_capacity_ = 0;
  std::deque<TpdSweepBook> window_;
};

}  // namespace fnda
