// Threshold-price optimisation (the "future work" of Section 8).
//
// The TPD auctioneer must fix r before seeing bids; its only lever is the
// value *distribution*.  This module estimates the expected-surplus curve
// r -> E[surplus(TPD_r)] by Monte Carlo with common random numbers (the
// same instance set for every candidate r, so the curve is smooth and
// comparable), then refines the best coarse grid point by golden-section
// search.
//
// The estimator rides an incremental sweep kernel rather than re-clearing
// the book per candidate: TPD's outcome at threshold r depends only on
// the counts i = |{b >= r}|, j = |{s <= r}| over ONE ranked book, so after
// an O(n log n) preparation (rank + prefix-sum the pairwise surpluses)
// every candidate threshold costs two binary searches.  A T-candidate
// sweep over N instances is O(N * (n log n + T log n)) instead of the
// naive O(T * N * n log n).
#pragma once

#include <span>
#include <vector>

#include "common/money.h"
#include "core/order_book.h"
#include "sim/generators.h"

namespace fnda {

enum class ThresholdObjective {
  kTotalSurplus,            ///< include the auctioneer's revenue
  kSurplusExceptAuctioneer  ///< what the traders keep (Figure 1's lower curve)
};

/// TPD's surplus decomposition at one threshold on one book, in exact
/// fixed-point arithmetic (truthful declarations, so declared surplus is
/// realized surplus).
struct TpdThresholdOutcome {
  Money total;       ///< sum of (b - s) over executed trades
  Money auctioneer;  ///< revenue kept by the budget balancer
  std::size_t trades = 0;

  Money except_auctioneer() const { return total - auctioneer; }
  double objective(ThresholdObjective objective) const {
    return (objective == ThresholdObjective::kTotalSurplus
                ? total
                : except_auctioneer())
        .to_double();
  }
};

/// One instance preprocessed for O(log n)-per-threshold TPD evaluation:
/// ranked buyer/seller values plus prefix sums of the pairwise surpluses
/// b(t) - s(t).
class TpdSweepBook {
 public:
  TpdSweepBook() = default;
  /// From an already-ranked book (values are copied out; identities and
  /// tie order are irrelevant to surplus).
  explicit TpdSweepBook(const SortedBook& book);
  /// Directly from an instance's true values (truthful declaration —
  /// skips book instantiation entirely).
  explicit TpdSweepBook(const SingleUnitInstance& instance);

  /// TPD at threshold r on this book: two partition-point counts through
  /// the branchless/SIMD sweep kernel + O(1).  Bit-identical to the
  /// binary-search formulation on every input (the kernel computes the
  /// same partition points), whichever kernel flavour is compiled.
  TpdThresholdOutcome evaluate(Money r) const;

  std::size_t buyer_count() const { return buyers_desc_.size(); }
  std::size_t seller_count() const { return sellers_asc_.size(); }

 private:
  void prepare();

  /// Ranked value lanes in raw micros: dense int64 arrays are what the
  /// branchless/SIMD partition kernel (common/sweep_kernel.h) consumes.
  std::vector<std::int64_t> buyers_desc_;  // b(1) >= b(2) >= ...
  std::vector<std::int64_t> sellers_asc_;  // s(1) <= s(2) <= ...
  /// pair_surplus_prefix_[t] = sum_{rank=1..t} (b(rank) - s(rank)) in
  /// micros; index 0 is 0, length min(m, n) + 1.
  std::vector<std::int64_t> pair_surplus_prefix_;
};

/// Evaluates TPD at every threshold in `thresholds` against one ranked
/// book.  Result[t] corresponds to thresholds[t].  This is the batched
/// kernel behind the Figure-1 sweep and `optimize_threshold`.
std::vector<TpdThresholdOutcome> sweep_tpd_surplus(
    const SortedBook& book, std::span<const Money> thresholds);

/// Draws `instances` books from `generator` (same stream for every later
/// threshold query — common random numbers) and preprocesses each for the
/// sweep kernel.
std::vector<TpdSweepBook> prepare_tpd_sweep(const InstanceGenerator& generator,
                                            std::size_t instances,
                                            std::uint64_t seed);

/// Mean objective of TPD at threshold r over a prepared instance set.
double mean_tpd_objective(std::span<const TpdSweepBook> books, Money r,
                          ThresholdObjective objective);

struct ThresholdSearchConfig {
  Money lo = Money::from_units(0);
  Money hi = Money::from_units(100);
  std::size_t coarse_points = 21;
  std::size_t instances_per_eval = 200;
  std::size_t refine_iterations = 24;
  ThresholdObjective objective = ThresholdObjective::kTotalSurplus;
  std::uint64_t seed = 7;
};

struct ThresholdSearchResult {
  Money best_threshold;
  double best_value = 0.0;
  /// The coarse sweep, in threshold order (useful for plotting).
  std::vector<std::pair<Money, double>> sweep;
};

/// Estimates E[objective] for TPD at threshold r under `generator`.
double expected_tpd_surplus(const InstanceGenerator& generator, Money r,
                            ThresholdObjective objective,
                            std::size_t instances, std::uint64_t seed);

/// Coarse sweep + golden-section refinement.  The instance set is drawn
/// once and shared by every candidate evaluation (common random numbers
/// AND a single sort per instance).
ThresholdSearchResult optimize_threshold(const InstanceGenerator& generator,
                                         const ThresholdSearchConfig& config);

}  // namespace fnda
