// Threshold-price optimisation (the "future work" of Section 8).
//
// The TPD auctioneer must fix r before seeing bids; its only lever is the
// value *distribution*.  This module estimates the expected-surplus curve
// r -> E[surplus(TPD_r)] by Monte Carlo with common random numbers (the
// same instance set for every candidate r, so the curve is smooth and
// comparable), then refines the best coarse grid point by golden-section
// search.
#pragma once

#include <vector>

#include "common/money.h"
#include "sim/generators.h"

namespace fnda {

enum class ThresholdObjective {
  kTotalSurplus,            ///< include the auctioneer's revenue
  kSurplusExceptAuctioneer  ///< what the traders keep (Figure 1's lower curve)
};

struct ThresholdSearchConfig {
  Money lo = Money::from_units(0);
  Money hi = Money::from_units(100);
  std::size_t coarse_points = 21;
  std::size_t instances_per_eval = 200;
  std::size_t refine_iterations = 24;
  ThresholdObjective objective = ThresholdObjective::kTotalSurplus;
  std::uint64_t seed = 7;
};

struct ThresholdSearchResult {
  Money best_threshold;
  double best_value = 0.0;
  /// The coarse sweep, in threshold order (useful for plotting).
  std::vector<std::pair<Money, double>> sweep;
};

/// Estimates E[objective] for TPD at threshold r under `generator`.
double expected_tpd_surplus(const InstanceGenerator& generator, Money r,
                            ThresholdObjective objective,
                            std::size_t instances, std::uint64_t seed);

/// Coarse sweep + golden-section refinement.
ThresholdSearchResult optimize_threshold(const InstanceGenerator& generator,
                                         const ThresholdSearchConfig& config);

}  // namespace fnda
