// Plain-text table and CSV rendering for the bench binaries.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace fnda {

/// Column-aligned text table.  Cells are strings; numeric formatting is the
/// caller's job (see format_* helpers below, which match the paper's
/// "1255.9 (99.2%)" presentation).
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Adds a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  std::size_t rows() const { return rows_.size(); }

  /// Renders with single-space-padded columns and a dashed header rule.
  std::string to_string() const;
  /// Comma-separated values (no quoting: cells in this codebase never
  /// contain commas).
  std::string to_csv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-decimal formatting, e.g. format_fixed(12738.31, 1) == "12738.3".
std::string format_fixed(double value, int decimals);

/// The paper's cell style: "value (ratio%)", e.g. "1255.9 (99.2%)".
std::string format_with_ratio(double value, double ratio, int value_decimals = 1,
                              int ratio_decimals = 1);

std::ostream& operator<<(std::ostream& os, const TextTable& table);

}  // namespace fnda
