// Monte-Carlo harness for the Section 9 multi-unit protocol.
//
// Mirrors sim/experiment.h for multi-unit books: draw random
// decreasing-marginal schedules, clear with multi-unit TPD, score against
// true valuations and the pooled-unit Pareto bound.
#pragma once

#include "common/statistics.h"
#include "protocols/tpd_multi.h"

namespace fnda {

/// Random multi-unit market shape: every participant declares between
/// min_units and max_units units with i.i.d. U[low, high] marginals,
/// sorted non-increasing.
struct MultiUnitWorkload {
  std::size_t buyers = 10;
  std::size_t sellers = 10;
  std::size_t min_units = 1;
  std::size_t max_units = 4;
  Money low = Money::from_units(0);
  Money high = Money::from_units(100);
};

/// One drawn instance: the truthful book plus the truth for scoring.
struct MultiUnitDraw {
  MultiUnitBook book;
  MultiUnitTruth truth;
};

MultiUnitDraw draw_multi_instance(const MultiUnitWorkload& workload, Rng& rng);

struct MultiExperimentResult {
  RunningStats total;
  RunningStats except_auctioneer;
  RunningStats auctioneer;
  RunningStats units;
  RunningStats pareto;

  double ratio_total() const {
    return pareto.mean() == 0.0 ? 0.0 : total.mean() / pareto.mean();
  }
  double ratio_except_auctioneer() const {
    return pareto.mean() == 0.0 ? 0.0
                                : except_auctioneer.mean() / pareto.mean();
  }
};

/// Runs `instances` draws; every outcome is validated against the book's
/// invariants (throws std::logic_error on violation — a protocol bug).
MultiExperimentResult run_multi_experiment(const TpdMultiUnitProtocol& protocol,
                                           const MultiUnitWorkload& workload,
                                           std::size_t instances,
                                           std::uint64_t seed);

}  // namespace fnda
