#include "cli/commands.h"

#include <chrono>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <thread>

#include "core/validation.h"
#include "ops/console.h"
#include "ops/format.h"
#include "protocols/efficient.h"
#include "protocols/kda.h"
#include "protocols/pmd.h"
#include "protocols/random_threshold.h"
#include "protocols/tpd.h"
#include "protocols/tpd_multi.h"
#include "protocols/vcg.h"
#include "serialize/csv.h"
#include "serialize/json.h"
#include "market/throughput.h"
#include "obs/export.h"
#include "obs/trace.h"
#include "mechanism/dynamics.h"
#include "mechanism/manipulation.h"
#include "mechanism/search_telemetry.h"
#include "sim/experiment.h"
#include "sim/table.h"
#include "sim/threshold_search.h"

namespace fnda {
namespace {

/// Builds the protocol named by --protocol (default tpd); --threshold and
/// --theta parameterize the ones that need it.
ProtocolPtr make_protocol(const ArgParser& args) {
  const std::string name = args.get_or("protocol", "tpd");
  const Money threshold = money(args.get_double_or("threshold", 50.0));
  if (name == "tpd") return std::make_unique<TpdProtocol>(threshold);
  if (name == "pmd") return std::make_unique<PmdProtocol>();
  if (name == "vcg") return std::make_unique<VcgDoubleAuction>();
  if (name == "kda") {
    return std::make_unique<KDoubleAuction>(args.get_double_or("theta", 0.5));
  }
  if (name == "efficient") return std::make_unique<EfficientClearing>();
  if (name == "random-threshold") {
    return std::make_unique<RandomThresholdProtocol>(threshold);
  }
  throw std::invalid_argument(
      "unknown --protocol '" + name +
      "' (tpd|pmd|vcg|kda|efficient|random-threshold)");
}

int usage_error(std::ostream& err, const std::string& message) {
  err << "error: " << message << "\nrun 'fnda help' for usage\n";
  return 2;
}

/// Reads --book FILE or stdin into a string; returns false on I/O error.
bool slurp_book(const ArgParser& args, std::istream& in, std::ostream& err,
                std::string* text) {
  if (const auto path = args.get("book"); path.has_value()) {
    std::ifstream file(*path);
    if (!file) {
      err << "error: cannot open book file '" << *path << "'\n";
      return false;
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    *text = buffer.str();
    return true;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *text = buffer.str();
  return true;
}

int check_unused(const ArgParser& args, std::ostream& err) {
  const auto leftover = args.unused();
  if (leftover.empty()) return 0;
  std::string list;
  for (const auto& flag : leftover) {
    if (!list.empty()) list += ", ";
    list += flag;
  }
  return usage_error(err, "unrecognized flag(s): " + list);
}

}  // namespace

int cmd_clear(const ArgParser& args, std::istream& in, std::ostream& out,
              std::ostream& err) {
  const ProtocolPtr protocol = make_protocol(args);
  const std::string format = args.get_or("format", "text");
  const auto seed = static_cast<std::uint64_t>(args.get_int_or("seed", 1));

  std::string text;
  if (!slurp_book(args, in, err, &text)) return 1;
  if (const int rc = check_unused(args, err); rc != 0) return rc;

  const OrderBook book = read_book_csv(text);
  Rng rng(seed);
  const Outcome outcome = protocol->clear(book, rng);
  // VCG legitimately runs a deficit; everything else must balance.
  ValidationOptions options;
  options.allow_deficit = protocol->name() == "vcg";
  expect_valid_outcome(book, outcome, options);

  if (format == "csv") {
    out << write_outcome_csv(outcome);
  } else if (format == "json") {
    out << outcome_to_json(outcome) << '\n';
  } else if (format == "text") {
    out << protocol->name() << ": " << outcome.trade_count()
        << " trades, auctioneer revenue " << outcome.auctioneer_revenue()
        << '\n';
    for (const Fill& fill : outcome.fills()) {
      out << "  " << to_string(fill.side) << ' ' << fill.identity.value()
          << (fill.side == Side::kBuyer ? " pays " : " receives ")
          << fill.price << '\n';
    }
  } else {
    return usage_error(err, "unknown --format '" + format + "'");
  }
  return 0;
}

int cmd_clear_multi(const ArgParser& args, std::istream& in,
                    std::ostream& out, std::ostream& err) {
  const Money threshold = money(args.get_double_or("threshold", 50.0));
  const std::string format = args.get_or("format", "text");
  const auto seed = static_cast<std::uint64_t>(args.get_int_or("seed", 1));
  std::string text;
  if (!slurp_book(args, in, err, &text)) return 1;
  if (const int rc = check_unused(args, err); rc != 0) return rc;

  const MultiUnitBook book = read_multi_book_csv(text);
  const TpdMultiUnitProtocol protocol(threshold);
  Rng rng(seed);
  const MultiUnitOutcome outcome = protocol.clear(book, rng);
  const auto errors = validate_multi_outcome(book, outcome);
  if (!errors.empty()) {
    err << "error: invalid multi-unit outcome: " << errors.front() << "\n";
    return 1;
  }

  if (format == "csv") {
    out << write_multi_outcome_csv(outcome);
  } else if (format == "text") {
    out << protocol.name() << " (r = " << threshold << "): "
        << outcome.units_traded() << " units traded, auctioneer revenue "
        << outcome.auctioneer_revenue() << '\n';
    for (const auto& buyer : outcome.buyers) {
      out << "  buyer " << buyer.identity.value() << " takes " << buyer.units
          << " unit(s) for " << buyer.total_paid << '\n';
    }
    for (const auto& seller : outcome.sellers) {
      out << "  seller " << seller.identity.value() << " sells "
          << seller.units << " unit(s) for " << seller.total_received
          << '\n';
    }
  } else {
    return usage_error(err, "unknown --format '" + format +
                                "' (clear-multi supports text|csv)");
  }
  return 0;
}

int cmd_simulate(const ArgParser& args, std::ostream& out,
                 std::ostream& err) {
  const ProtocolPtr protocol = make_protocol(args);
  const auto buyers = static_cast<std::size_t>(args.get_int_or("buyers", 50));
  const auto sellers =
      static_cast<std::size_t>(args.get_int_or("sellers", 50));
  ExperimentConfig config;
  config.instances =
      static_cast<std::size_t>(args.get_int_or("instances", 1000));
  config.seed = static_cast<std::uint64_t>(args.get_int_or("seed", 1));
  config.validation.allow_deficit = protocol->name() == "vcg";
  const double low = args.get_double_or("low", 0.0);
  const double high = args.get_double_or("high", 100.0);
  const auto binomial = args.get_int_or("binomial", 0);
  const auto threads = args.get_int_or("threads", 1);
  if (const int rc = check_unused(args, err); rc != 0) return rc;

  const ValueDistribution values{money(low), money(high), ValueDomain{}};
  const InstanceGenerator generator =
      binomial > 0
          ? binomial_count_generator(static_cast<int>(binomial), 0.5, values)
          : fixed_count_generator(buyers, sellers, values);
  const ComparisonResult result =
      threads > 1 ? run_comparison_parallel(generator, {protocol.get()},
                                            config,
                                            static_cast<std::size_t>(threads))
                  : run_comparison(generator, {protocol.get()}, config);
  const ProtocolSummary& summary = result.protocols.front();

  TextTable table({"metric", "mean", "ci95"});
  auto row = [&table](const char* metric, const RunningStats& stats) {
    table.add_row({metric, format_fixed(stats.mean(), 2),
                   "+/-" + format_fixed(stats.ci95_half_width(), 2)});
  };
  row("social surplus", summary.total);
  row("surplus except auctioneer", summary.except_auctioneer);
  row("auctioneer revenue", summary.auctioneer);
  row("trades", summary.trades);
  row("pareto surplus", result.pareto);
  out << protocol->name() << " on ";
  if (binomial > 0) {
    out << "m,n~B(" << binomial << ",0.5)";
  } else {
    out << buyers << "x" << sellers;
  }
  out << " U[" << low << "," << high << "], " << config.instances
      << " instances\n"
      << table;
  out << "efficiency: "
      << format_fixed(100.0 * result.ratio_total(protocol->name()), 2)
      << "% of Pareto\n";
  return 0;
}

int cmd_attack(const ArgParser& args, std::istream& in, std::ostream& out,
               std::ostream& err) {
  const ProtocolPtr protocol = make_protocol(args);
  const std::string manipulator_spec = args.get_or("manipulator", "");
  const auto max_declarations =
      static_cast<std::size_t>(args.get_int_or("max-declarations", 2));
  std::string text;
  if (!slurp_book(args, in, err, &text)) return 1;
  if (const int rc = check_unused(args, err); rc != 0) return rc;

  // --manipulator side:index, e.g. "seller:2".
  const auto colon = manipulator_spec.find(':');
  if (colon == std::string::npos) {
    return usage_error(err,
                       "--manipulator must be side:index, e.g. seller:2");
  }
  const std::string side_text = manipulator_spec.substr(0, colon);
  Side role;
  if (side_text == "buyer") {
    role = Side::kBuyer;
  } else if (side_text == "seller") {
    role = Side::kSeller;
  } else {
    return usage_error(err, "--manipulator side must be buyer or seller");
  }
  const auto index = static_cast<std::size_t>(
      std::strtoull(manipulator_spec.c_str() + colon + 1, nullptr, 10));

  // Interpret the book's declarations as the participants' true values
  // (the standard assumption when auditing an instance).
  const OrderBook book = read_book_csv(text);
  SingleUnitInstance instance;
  for (const BidEntry& entry : book.buyers()) {
    instance.buyer_values.push_back(entry.value);
  }
  for (const BidEntry& entry : book.sellers()) {
    instance.seller_values.push_back(entry.value);
  }

  const DeviationEvaluator evaluator(*protocol, instance, {role, index});
  SearchConfig search;
  search.max_declarations = max_declarations;
  const SearchResult result = find_best_deviation(evaluator, search);

  out << "protocol: " << protocol->name() << "\n"
      << "manipulator: " << side_text << " #" << index << " (true value "
      << evaluator.true_value() << ")\n"
      << "strategies evaluated: " << result.strategies_evaluated
      << (result.truncated ? " (truncated)" : "") << "\n"
      << "truthful utility: " << format_fixed(result.truthful_utility, 4)
      << "\n"
      << "best deviation:   " << format_fixed(result.best_utility, 4)
      << "  via " << result.best_strategy.to_string() << "\n";
  if (result.profitable()) {
    out << "VERDICT: manipulable (profitable deviation found)\n";
  } else {
    out << "VERDICT: truthful play is optimal here\n";
  }
  return 0;
}

int cmd_attack_search(const ArgParser& args, std::istream& in,
                      std::ostream& out, std::ostream& err) {
  const ProtocolPtr protocol = make_protocol(args);
  const std::string manipulator_spec = args.get_or("manipulator", "");
  const auto max_declarations =
      static_cast<std::size_t>(args.get_int_or("max-declarations", 2));
  const auto threads = static_cast<std::size_t>(args.get_int_or("threads", 1));
  const auto replicates =
      static_cast<std::size_t>(args.get_int_or("replicates", 1));
  const auto seed = static_cast<std::uint64_t>(args.get_int_or("seed", 0x5eed));
  const bool serial = args.get_int_or("serial", 0) != 0;
  const bool prune = args.get_int_or("prune", 1) != 0;
  const bool json = args.get_int_or("json", 0) != 0;
  const std::string metrics_out = args.get_or("metrics-out", "");
  std::string text;
  if (!slurp_book(args, in, err, &text)) return 1;
  if (const int rc = check_unused(args, err); rc != 0) return rc;

  const auto colon = manipulator_spec.find(':');
  if (colon == std::string::npos) {
    return usage_error(err,
                       "--manipulator must be side:index, e.g. seller:2");
  }
  const std::string side_text = manipulator_spec.substr(0, colon);
  Side role;
  if (side_text == "buyer") {
    role = Side::kBuyer;
  } else if (side_text == "seller") {
    role = Side::kSeller;
  } else {
    return usage_error(err, "--manipulator side must be buyer or seller");
  }
  const auto index = static_cast<std::size_t>(
      std::strtoull(manipulator_spec.c_str() + colon + 1, nullptr, 10));

  const OrderBook book = read_book_csv(text);
  SingleUnitInstance instance;
  for (const BidEntry& entry : book.buyers()) {
    instance.buyer_values.push_back(entry.value);
  }
  for (const BidEntry& entry : book.sellers()) {
    instance.seller_values.push_back(entry.value);
  }

  EvalConfig eval;
  eval.replicates = replicates;
  eval.seed = seed;
  const DeviationEvaluator evaluator(*protocol, instance, {role, index}, eval);
  SearchConfig search;
  search.max_declarations = max_declarations;
  search.threads = threads;
  search.prune = prune;
  const SearchResult result = serial
                                  ? find_best_deviation_serial(evaluator,
                                                               search)
                                  : find_best_deviation(evaluator, search);
  const SearchStats& stats = result.stats;

  if (json) {
    // Machine-readable record (result + stats + timings); the Prometheus
    // dump via --metrics-out still works alongside.  Wall time is the
    // only nondeterministic field.
    auto escape = [](const std::string& text_in) {
      std::string escaped;
      escaped.reserve(text_in.size() + 8);
      for (const char c : text_in) {
        if (c == '"' || c == '\\') escaped.push_back('\\');
        escaped.push_back(static_cast<unsigned char>(c) < 0x20 ? ' ' : c);
      }
      return escaped;
    };
    out << "{\n"
        << "  \"protocol\": \"" << escape(protocol->name()) << "\",\n"
        << "  \"engine\": \"" << (serial ? "serial" : "parallel_pruned")
        << "\",\n"
        << "  \"manipulator\": {\"side\": \"" << side_text
        << "\", \"index\": " << index << ", \"true_value\": \""
        << evaluator.true_value() << "\"},\n"
        << "  \"result\": {\n"
        << "    \"truthful_utility\": " << result.truthful_utility << ",\n"
        << "    \"best_utility\": " << result.best_utility << ",\n"
        << "    \"best_strategy\": \""
        << escape(result.best_strategy.to_string()) << "\",\n"
        << "    \"profitable\": " << (result.profitable() ? "true" : "false")
        << ",\n"
        << "    \"truncated\": " << (result.truncated ? "true" : "false")
        << ",\n"
        << "    \"strategies_evaluated\": " << result.strategies_evaluated
        << "\n  },\n"
        << "  \"stats\": {\n"
        << "    \"threads_used\": " << stats.threads_used << ",\n"
        << "    \"strategies_enumerated\": " << stats.strategies_enumerated
        << ",\n"
        << "    \"strategies_evaluated\": " << stats.strategies_evaluated
        << ",\n"
        << "    \"pruned_by_bound\": " << stats.pruned_by_bound << ",\n"
        << "    \"pruned_in_subtree\": " << stats.pruned_in_subtree << ",\n"
        << "    \"pruned_by_warm_floor\": " << stats.pruned_by_warm_floor
        << ",\n"
        << "    \"dedup_skipped\": " << stats.dedup_skipped << ",\n"
        << "    \"fast_positions\": " << stats.fast_positions << ",\n"
        << "    \"clears_performed\": " << stats.clears_performed << "\n"
        << "  },\n"
        << "  \"wall_time_ns\": " << stats.wall_time_ns << "\n"
        << "}\n";
  } else {
    out << "protocol: " << protocol->name() << "\n"
        << "engine: " << (serial ? "serial reference" : "parallel pruned")
        << ", threads used: " << stats.threads_used << "\n"
        << "manipulator: " << side_text << " #" << index << " (true value "
        << evaluator.true_value() << ")\n"
        << "candidates: " << stats.strategies_enumerated << " enumerated, "
        << stats.strategies_evaluated << " evaluated, "
        << stats.pruned_by_bound + stats.pruned_in_subtree << " pruned ("
        << stats.pruned_by_bound << " leaf, " << stats.pruned_in_subtree
        << " subtree), " << stats.dedup_skipped << " dedup-skipped"
        << (result.truncated ? ", truncated" : "") << "\n"
        << "positions: " << stats.fast_positions << " fast, "
        << stats.clears_performed << " full clears\n";
    if (stats.bound_slack_samples > 0) {
      out << "mean bound slack: "
          << format_fixed(static_cast<double>(stats.bound_slack_micros) /
                              (1e6 * static_cast<double>(
                                         stats.bound_slack_samples)),
                          4)
          << "\n";
    }
    out << "wall time: " << stats.wall_time_ns / 1000 << " us\n"
        << "truthful utility: " << format_fixed(result.truthful_utility, 4)
        << "\n"
        << "best deviation:   " << format_fixed(result.best_utility, 4)
        << "  via " << result.best_strategy.to_string() << "\n";
    if (result.profitable()) {
      out << "VERDICT: manipulable (profitable deviation found)\n";
    } else {
      out << "VERDICT: truthful play is optimal here\n";
    }
  }

  if (!metrics_out.empty()) {
    obs::MetricsRegistry registry;
    bind_search_metrics(registry, stats);
    std::ofstream file(metrics_out);
    if (!file) {
      err << "error: cannot write " << metrics_out << '\n';
      return 1;
    }
    obs::write_prometheus(file, registry.snapshot());
  }
  return 0;
}

int cmd_dynamics(const ArgParser& args, std::istream& in, std::ostream& out,
                 std::ostream& err) {
  const ProtocolPtr protocol = make_protocol(args);
  const auto sweeps = static_cast<std::size_t>(args.get_int_or("sweeps", 6));
  const auto max_declarations =
      static_cast<std::size_t>(args.get_int_or("max-declarations", 2));
  std::string text;
  if (!slurp_book(args, in, err, &text)) return 1;
  if (const int rc = check_unused(args, err); rc != 0) return rc;

  const OrderBook book = read_book_csv(text);
  SingleUnitInstance instance;
  for (const BidEntry& entry : book.buyers()) {
    instance.buyer_values.push_back(entry.value);
  }
  for (const BidEntry& entry : book.sellers()) {
    instance.seller_values.push_back(entry.value);
  }

  DynamicsConfig config;
  config.max_sweeps = sweeps;
  config.search.max_declarations = max_declarations;
  const DynamicsResult result =
      best_response_dynamics(*protocol, instance, config);

  out << "protocol: " << protocol->name() << "\n"
      << "converged: " << (result.converged ? "yes" : "no") << " after "
      << result.sweeps << " sweep(s), " << result.updates
      << " strategy update(s)\n"
      << "agents deviating from truth: " << result.deviators << "/"
      << result.agents.size() << "\n"
      << "surplus: truthful " << format_fixed(result.truthful_surplus, 2)
      << " -> strategic " << format_fixed(result.final_surplus, 2) << "\n";
  for (std::size_t a = 0; a < result.agents.size(); ++a) {
    const AgentState& agent = result.agents[a];
    out << "  " << to_string(agent.role) << " v=" << agent.true_value
        << " plays " << agent.strategy.to_string() << " (u="
        << format_fixed(agent.utility, 2) << ")\n";
  }
  return 0;
}

int cmd_sweep(const ArgParser& args, std::ostream& out, std::ostream& err) {
  const auto participants =
      static_cast<std::size_t>(args.get_int_or("participants", 500));
  const auto step = args.get_int_or("step", 5);
  ExperimentConfig config;
  config.instances =
      static_cast<std::size_t>(args.get_int_or("instances", 200));
  config.seed = static_cast<std::uint64_t>(args.get_int_or("seed", 1));
  if (const int rc = check_unused(args, err); rc != 0) return rc;
  if (step <= 0) return usage_error(err, "--step must be positive");

  std::vector<std::unique_ptr<TpdProtocol>> protocols;
  std::vector<const DoubleAuctionProtocol*> pointers;
  std::vector<std::int64_t> thresholds;
  for (std::int64_t r = 0; r <= 100; r += step) {
    thresholds.push_back(r);
    protocols.push_back(std::make_unique<TpdProtocol>(money(r)));
    pointers.push_back(protocols.back().get());
  }
  const ComparisonResult result = run_comparison(
      fixed_count_generator(participants, participants), pointers, config);

  out << "threshold,surplus,surplus_except_auctioneer,pareto\n";
  for (std::size_t p = 0; p < pointers.size(); ++p) {
    out << thresholds[p] << ',' << format_fixed(result.protocols[p].total.mean(), 3)
        << ',' << format_fixed(result.protocols[p].except_auctioneer.mean(), 3)
        << ',' << format_fixed(result.pareto.mean(), 3) << '\n';
  }
  return 0;
}

int cmd_optimize(const ArgParser& args, std::ostream& out,
                 std::ostream& err) {
  const auto buyers = static_cast<std::size_t>(args.get_int_or("buyers", 50));
  const auto sellers =
      static_cast<std::size_t>(args.get_int_or("sellers", 50));
  const double low = args.get_double_or("low", 0.0);
  const double high = args.get_double_or("high", 100.0);
  ThresholdSearchConfig config;
  config.lo = money(args.get_double_or("lo", low));
  config.hi = money(args.get_double_or("hi", high));
  config.instances_per_eval =
      static_cast<std::size_t>(args.get_int_or("instances", 200));
  config.seed = static_cast<std::uint64_t>(args.get_int_or("seed", 7));
  if (args.get_or("objective", "total") == "traders") {
    config.objective = ThresholdObjective::kSurplusExceptAuctioneer;
  }
  if (const int rc = check_unused(args, err); rc != 0) return rc;

  const ThresholdSearchResult result = optimize_threshold(
      fixed_count_generator(buyers, sellers,
                            ValueDistribution{money(low), money(high),
                                              ValueDomain{}}),
      config);
  out << "best threshold: " << result.best_threshold << '\n'
      << "expected surplus: " << format_fixed(result.best_value, 2) << '\n';
  return 0;
}

namespace {

/// Opens `path` for writing and streams `write` into it.
template <typename WriteFn>
bool write_file(const std::string& path, std::ostream& err, WriteFn write) {
  std::ofstream file(path);
  if (!file) {
    err << "error: cannot open output file '" << path << "'\n";
    return false;
  }
  write(file);
  return true;
}

}  // namespace

int cmd_market_bench(const ArgParser& args, std::ostream& out,
                     std::ostream& err) {
  ThroughputConfig config;
  config.clients = static_cast<std::size_t>(args.get_int_or("clients", 1000));
  config.rounds = static_cast<std::size_t>(args.get_int_or("rounds", 3));
  config.shards = static_cast<std::size_t>(args.get_int_or("shards", 4));
  config.threads = static_cast<std::size_t>(args.get_int_or("threads", 1));
  config.drop_probability = args.get_double_or("drop", 0.0);
  config.duplicate_probability = args.get_double_or("duplicate", 0.0);
  config.seed = static_cast<std::uint64_t>(args.get_int_or("seed", 1));
  config.adaptive = args.get_int_or("adaptive", 1) != 0;
  const Money threshold = money(args.get_double_or("threshold", 50.0));
  const std::optional<std::string> metrics_out = args.get("metrics-out");
  const std::optional<std::string> metrics_json = args.get("metrics-json");
  const std::optional<std::string> trace_out = args.get("trace-out");
  config.telemetry.wallclock = args.has("trace-wallclock");
  if (args.has("no-telemetry")) config.telemetry.enabled = false;
  if (const int rc = check_unused(args, err); rc != 0) return rc;
  if (!config.telemetry.enabled &&
      (metrics_out || metrics_json || trace_out ||
       config.telemetry.wallclock)) {
    return usage_error(err,
                       "--no-telemetry contradicts the other telemetry flags");
  }
  if (config.clients == 0 || config.rounds == 0 || config.shards == 0) {
    return usage_error(err, "--clients, --rounds, --shards must be positive");
  }
  if (config.threads > config.shards) {
    return usage_error(err,
                       "--threads must not exceed --shards (a shard is owned "
                       "by one worker; 0 = hardware concurrency)");
  }

  // Same caveat the bench embeds in its JSON `warnings` field: wall-time
  // numbers from an oversubscribed host are not parallel speedup.
  // --threads 0 resolves to hardware concurrency, so it never
  // oversubscribes.
  const unsigned num_cpus =
      std::max(1u, std::thread::hardware_concurrency());
  if (config.threads > num_cpus) {
    err << "warning: " << config.threads << " worker threads on a "
        << num_cpus
        << "-CPU host; throughput measures oversubscription, not parallel "
           "speedup\n";
  }

  const TpdProtocol tpd(threshold);
  const auto start = std::chrono::steady_clock::now();
  const ThroughputResult result = run_throughput_session(tpd, config);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  const std::size_t messages = result.bus.delivered + result.bus.dropped +
                               result.bus.dead_lettered;
  out << "clients: " << result.clients << "  rounds: " << result.rounds
      << "  shards: " << result.shards << "  threads: " << result.threads
      << '\n'
      << "messages: " << messages << " (sent " << result.bus.sent
      << ", duplicated " << result.bus.duplicated << ", dropped "
      << result.bus.dropped << ", dead-lettered " << result.bus.dead_lettered
      << ", forwarded " << result.bus.forwarded << ")\n";
  for (std::size_t s = 0; s < result.shard_bus.size(); ++s) {
    const BusStats& shard = result.shard_bus[s];
    out << "  shard " << s << ": delivered " << shard.delivered
        << ", dead-lettered " << shard.dead_lettered << ", dropped "
        << shard.dropped << '\n';
  }
  out << "bids accepted: " << result.bids_accepted
      << "  trades: " << result.trades << '\n'
      << "book: " << result.book.inserts << " inserts, "
      << result.book.entries_shifted << " entries shifted, "
      << result.book.chunk_splits << " chunk splits, "
      << result.book.sorts_at_close << " sorts at close\n"
      << "epochs: " << result.epoch.epochs << "  barrier crossings: "
      << result.epoch.barriers << "  widened: " << result.epoch.widened
      << "  cross-shard injected: " << result.epoch.injected
      << "  (adaptive " << (config.adaptive ? "on" : "off") << ")\n"
      << "sim time: " << result.sim_time.micros << " us  wall: "
      << format_fixed(elapsed, 3) << " s\n"
      << "throughput: "
      << format_fixed(static_cast<double>(messages) / elapsed, 0)
      << " msg/s, "
      << format_fixed(static_cast<double>(result.bids_accepted) / elapsed, 0)
      << " bids/s, "
      << format_fixed(static_cast<double>(result.rounds) / elapsed, 2)
      << " rounds/s\n";

  if (metrics_out.has_value() &&
      !write_file(*metrics_out, err, [&result](std::ostream& file) {
        obs::write_prometheus(file, result.metrics);
      })) {
    return 1;
  }
  if (metrics_json.has_value() &&
      !write_file(*metrics_json, err, [&result](std::ostream& file) {
        obs::write_json_snapshot(file, result.metrics);
      })) {
    return 1;
  }
  if (trace_out.has_value() &&
      !write_file(*trace_out, err, [&result](std::ostream& file) {
        obs::write_chrome_trace(file, result.trace);
      })) {
    return 1;
  }
  return 0;
}

int cmd_metrics_dump(const ArgParser& args, std::ostream& out,
                     std::ostream& err) {
  // Two modes: run a small deterministic session and dump its merged
  // snapshot (the CI smoke step greps this), or --in FILE to parse an
  // existing Prometheus text file back into a snapshot — validating it
  // and optionally reformatting.  Missing or malformed input exits 1.
  ThroughputConfig config;
  config.clients = static_cast<std::size_t>(args.get_int_or("clients", 64));
  config.rounds = static_cast<std::size_t>(args.get_int_or("rounds", 2));
  config.shards = static_cast<std::size_t>(args.get_int_or("shards", 2));
  config.threads = static_cast<std::size_t>(args.get_int_or("threads", 1));
  config.seed = static_cast<std::uint64_t>(args.get_int_or("seed", 1));
  const Money threshold = money(args.get_double_or("threshold", 50.0));
  const std::string format = args.get_or("format", "prom");
  const std::optional<std::string> in_path = args.get("in");
  const bool quiet = args.has("quiet");
  if (const int rc = check_unused(args, err); rc != 0) return rc;
  if (config.clients == 0 || config.rounds == 0 || config.shards == 0) {
    return usage_error(err, "--clients, --rounds, --shards must be positive");
  }
  if (format != "prom" && format != "json" && format != "table") {
    return usage_error(err, "--format must be prom, json, or table");
  }

  obs::MetricsSnapshot snapshot;
  if (in_path.has_value()) {
    std::ifstream file(*in_path);
    if (!file) {
      err << "error: cannot open metrics file '" << *in_path << "'\n";
      return 1;
    }
    try {
      snapshot = ops::parse_prometheus_text(file);
    } catch (const std::exception& e) {
      err << "error: " << e.what() << '\n';
      return 1;
    }
  } else {
    const TpdProtocol tpd(threshold);
    snapshot = run_throughput_session(tpd, config).metrics;
  }

  if (quiet) return 0;
  if (format == "json") {
    obs::write_json_snapshot(out, snapshot);
    out << '\n';
  } else if (format == "table") {
    for (const std::string& line : ops::render_metrics_table(snapshot)) {
      out << line << '\n';
    }
  } else {
    obs::write_prometheus(out, snapshot);
  }
  return 0;
}

int cmd_console(const ArgParser& args, std::istream& in, std::ostream& out,
                std::ostream& err) {
  const ProtocolPtr protocol = make_protocol(args);
  ops::ConsoleConfig config;
  config.clients = static_cast<std::size_t>(args.get_int_or("clients", 64));
  config.shards = static_cast<std::size_t>(args.get_int_or("shards", 2));
  config.threads = static_cast<std::size_t>(args.get_int_or("threads", 1));
  config.seed = static_cast<std::uint64_t>(args.get_int_or("seed", 42));
  config.max_rounds =
      static_cast<std::size_t>(args.get_int_or("rounds-budget", 1024));
  config.drop_probability = args.get_double_or("drop", 0.0);
  config.duplicate_probability = args.get_double_or("duplicate", 0.0);
  config.telemetry.enabled = !args.has("no-telemetry");
  const std::optional<std::string> script_path = args.get("script");
  const std::optional<std::string> slo_path = args.get("slo-file");
  const bool json_replies = args.has("json");
  if (const int rc = check_unused(args, err); rc != 0) return rc;
  if (config.clients == 0 || config.shards == 0) {
    return usage_error(err, "--clients and --shards must be positive");
  }
  if (slo_path.has_value()) {
    std::ifstream file(*slo_path);
    if (!file) {
      err << "error: cannot open SLO file '" << *slo_path << "'\n";
      return 1;
    }
    std::string line;
    while (std::getline(file, line)) {
      if (line.empty() || line[0] == '#') continue;
      config.slo_rules.push_back(line);
    }
  }

  ops::ConsoleSession session(*protocol, config);

  const bool script_mode = script_path.has_value();
  std::ifstream script;
  if (script_mode) {
    script.open(*script_path);
    if (!script) {
      err << "error: cannot open script '" << *script_path << "'\n";
      return 1;
    }
  }
  std::istream& source = script_mode ? static_cast<std::istream&>(script) : in;

  if (!script_mode) {
    out << "fnda console — 'help' lists commands, 'quit' leaves\n";
  }
  std::string line;
  while (!session.done()) {
    if (script_mode) {
      if (!std::getline(source, line)) break;
      out << "> " << line << '\n';
    } else {
      out << "fnda> " << std::flush;
      if (!std::getline(source, line)) break;
    }
    const ops::Reply reply = session.execute(line);
    const std::string rendered = json_replies ? reply.json : reply.text();
    if (!rendered.empty()) out << rendered << '\n';
    if (!reply.ok && script_mode) {
      // Batch scripts are CI material: the first failing command fails
      // the run, like `sh -e`.
      return 1;
    }
  }
  return 0;
}

int cmd_help(std::ostream& out) {
  out << "fnda - false-name-robust double auctions (Yokoo et al., ICDCS"
         " 2001)\n\n"
         "commands:\n"
         "  clear     clear one book from CSV (side,identity,value)\n"
         "            --protocol tpd|pmd|vcg|kda|efficient|random-threshold\n"
         "            --threshold R  --theta T  --book FILE (default stdin)\n"
         "            --format text|csv|json  --seed N\n"
         "  clear-multi  Section 9 multi-unit TPD from CSV\n"
         "            (side,identity,schedule; schedule = v1;v2;... )\n"
         "            --threshold R --book FILE --format text|csv\n"
         "  simulate  Monte-Carlo surplus of one protocol\n"
         "            --buyers N --sellers M | --binomial N\n"
         "            --instances K --low --high --threads T\n"
         "  attack    exhaustive deviation search for one participant\n"
         "            --book FILE --manipulator buyer:0|seller:2\n"
         "            --protocol ... --max-declarations D\n"
         "  attack-search  the parallel pruned search engine with full\n"
         "            coverage counters (pruning, fast positions, slack)\n"
         "            --book FILE --manipulator buyer:0|seller:2\n"
         "            --protocol ... --max-declarations D --threads T\n"
         "            (0 = hardware concurrency; result is identical for\n"
         "            every T) --replicates R --seed N --prune 0|1\n"
         "            --serial 1 (run the reference oracle instead)\n"
         "            --json 1 (machine-readable result + stats + timings)\n"
         "            --metrics-out FILE (Prometheus text)\n"
         "  dynamics  iterated best response over the book's traders\n"
         "            --book FILE --protocol ... --sweeps N\n"
         "  sweep     TPD threshold sweep (Figure 1 series, CSV)\n"
         "            --participants N --step S --instances K\n"
         "  optimize  find the best threshold for a workload\n"
         "            --buyers N --sellers M --lo --hi --objective "
         "total|traders\n"
         "  market-bench  ZI-trader session on the sharded exchange\n"
         "            --clients N --rounds R --shards S --threads T\n"
         "            (T <= S; 0 = hardware concurrency) --drop P\n"
         "            --duplicate P --threshold R --seed N\n"
         "            --metrics-out FILE (Prometheus text)\n"
         "            --metrics-json FILE --trace-out FILE (Chrome trace)\n"
         "            --trace-wallclock (wall timestamps; nondeterministic)\n"
         "            --no-telemetry (runtime-disabled baseline)\n"
         "            --adaptive 0|1 (adaptive epoch windows; default on)\n"
         "            prints live-book work counters and epoch barrier\n"
         "            crossings; warns when threads oversubscribe the\n"
         "            host's CPUs; the scaling axes and the\n"
         "            --assert-ns-per-message / --assert-speedup /\n"
         "            --assert-barrier-reduction gates live in\n"
         "            bench/market_throughput\n"
         "  metrics-dump  run a small session, dump its metrics to stdout\n"
         "            --format prom|json|table --clients N --rounds R\n"
         "            --shards S --threads T --seed N\n"
         "            --in FILE (parse a Prometheus text file instead of\n"
         "            running; exit 1 on missing/malformed input)\n"
         "            --quiet (validate only, print nothing)\n"
         "  console   live operations console over a running exchange\n"
         "            interactive REPL by default; --script FILE runs a\n"
         "            command batch (CI mode: first error exits 1)\n"
         "            --json (JSON replies) --clients N --shards S\n"
         "            --threads T --seed N --rounds-budget N\n"
         "            --drop P --duplicate P --protocol ... --threshold R\n"
         "            --slo-file FILE (one SLO rule per line)\n"
         "            --no-telemetry (commands degrade gracefully)\n"
         "            commands: run, status, metrics show|dump, hist,\n"
         "            book dump, escrow show, audit tail, trace\n"
         "            start|stop|export, shard pause|resume|drain,\n"
         "            config show|set, health, digest, help, quit\n"
         "  help      this text\n";
  return 0;
}

int run_cli(const std::vector<std::string>& args, std::istream& in,
            std::ostream& out, std::ostream& err) {
  try {
    const ArgParser parsed(args);
    const std::string& command = parsed.command();
    if (command.empty() || command == "help") return cmd_help(out);
    if (command == "clear") return cmd_clear(parsed, in, out, err);
    if (command == "clear-multi") return cmd_clear_multi(parsed, in, out, err);
    if (command == "simulate") return cmd_simulate(parsed, out, err);
    if (command == "attack") return cmd_attack(parsed, in, out, err);
    if (command == "attack-search") {
      return cmd_attack_search(parsed, in, out, err);
    }
    if (command == "dynamics") return cmd_dynamics(parsed, in, out, err);
    if (command == "sweep") return cmd_sweep(parsed, out, err);
    if (command == "optimize") return cmd_optimize(parsed, out, err);
    if (command == "market-bench") return cmd_market_bench(parsed, out, err);
    if (command == "metrics-dump") return cmd_metrics_dump(parsed, out, err);
    if (command == "console") return cmd_console(parsed, in, out, err);
    return usage_error(err, "unknown command '" + command + "'");
  } catch (const std::invalid_argument& e) {
    err << "error: " << e.what() << '\n';
    return 2;
  } catch (const std::exception& e) {
    err << "error: " << e.what() << '\n';
    return 1;
  }
}

}  // namespace fnda
