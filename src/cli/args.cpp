#include "cli/args.h"

#include <cstdlib>
#include <stdexcept>

namespace fnda {

ArgParser::ArgParser(const std::vector<std::string>& args) {
  std::size_t i = 0;
  if (i < args.size() && args[i].rfind("--", 0) != 0) {
    command_ = args[i++];
  }
  while (i < args.size()) {
    const std::string& token = args[i];
    if (token.rfind("--", 0) != 0 || token.size() <= 2) {
      throw std::invalid_argument("ArgParser: expected --flag, got '" +
                                  token + "'");
    }
    const std::string key = token.substr(2);
    if (values_.contains(key)) {
      throw std::invalid_argument("ArgParser: duplicate flag --" + key);
    }
    if (i + 1 < args.size() && args[i + 1].rfind("--", 0) != 0) {
      values_.emplace(key, args[i + 1]);
      i += 2;
    } else {
      values_.emplace(key, "");  // bare flag
      i += 1;
    }
  }
}

bool ArgParser::has(const std::string& key) const {
  auto it = values_.find(key);
  if (it == values_.end()) return false;
  consumed_.insert(key);
  return true;
}

std::optional<std::string> ArgParser::get(const std::string& key) const {
  auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  consumed_.insert(key);
  return it->second;
}

std::string ArgParser::get_or(const std::string& key,
                              const std::string& fallback) const {
  return get(key).value_or(fallback);
}

double ArgParser::get_double_or(const std::string& key,
                                double fallback) const {
  const auto text = get(key);
  if (!text.has_value()) return fallback;
  char* end = nullptr;
  const double value = std::strtod(text->c_str(), &end);
  if (end == nullptr || *end != '\0' || text->empty()) {
    throw std::invalid_argument("ArgParser: --" + key +
                                " expects a number, got '" + *text + "'");
  }
  return value;
}

std::int64_t ArgParser::get_int_or(const std::string& key,
                                   std::int64_t fallback) const {
  const auto text = get(key);
  if (!text.has_value()) return fallback;
  char* end = nullptr;
  const long long value = std::strtoll(text->c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || text->empty()) {
    throw std::invalid_argument("ArgParser: --" + key +
                                " expects an integer, got '" + *text + "'");
  }
  return value;
}

std::vector<std::string> ArgParser::unused() const {
  std::vector<std::string> leftover;
  for (const auto& [key, value] : values_) {
    if (!consumed_.contains(key)) leftover.push_back("--" + key);
  }
  return leftover;
}

}  // namespace fnda
