// Tiny command-line argument parser for the fnda CLI.
//
// Grammar: `fnda <command> [--key value | --flag] ...`.  Values never
// start with `--`; everything else is rejected loudly — a mistyped flag
// silently ignored is how benchmarks lie.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace fnda {

class ArgParser {
 public:
  /// Parses argv (excluding argv[0]).  The first non-flag token is the
  /// command.  Throws std::invalid_argument on malformed input.
  explicit ArgParser(const std::vector<std::string>& args);

  const std::string& command() const { return command_; }

  bool has(const std::string& key) const;
  std::optional<std::string> get(const std::string& key) const;
  std::string get_or(const std::string& key, const std::string& fallback) const;
  double get_double_or(const std::string& key, double fallback) const;
  std::int64_t get_int_or(const std::string& key, std::int64_t fallback) const;

  /// Flags the caller never consumed; non-empty means a typo.  The CLI
  /// calls this after wiring a command and refuses to run with leftovers.
  std::vector<std::string> unused() const;

 private:
  std::string command_;
  std::unordered_map<std::string, std::string> values_;
  mutable std::unordered_set<std::string> consumed_;
};

}  // namespace fnda
