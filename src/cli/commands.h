// fnda CLI commands.
//
//   fnda clear       --protocol tpd --threshold 50 --book bids.csv
//                    [--format text|csv|json] [--seed N]
//   fnda clear-multi --threshold 50 --book schedules.csv (Section 9)
//   fnda simulate    --buyers 50 --sellers 50 [--binomial N]
//                    [--protocol ...] [--instances N]
//   fnda attack      --book bids.csv --manipulator buyer:0 [--protocol ...]
//                    (exhaustive deviation search incl. false names)
//   fnda attack-search --book bids.csv --manipulator buyer:0
//                    [--protocol ... --threads T --replicates R --seed N]
//                    [--prune 0|1 --serial 1 --metrics-out FILE]
//                    (the parallel pruned engine with coverage counters;
//                    bit-identical result for every thread count)
//   fnda dynamics    --book bids.csv [--protocol ...] [--sweeps N]
//                    (iterated best response; Section 8's deliberation)
//   fnda sweep    --participants 500 [--step 5] [--instances N]   (Figure 1)
//   fnda optimize --buyers 50 --sellers 50 [--lo 0 --hi 100]
//   fnda market-bench --clients 1000 --rounds 3 --shards 4 --threads 2
//                     [--drop P --duplicate P --threshold R --seed N]
//                     [--metrics-out FILE --metrics-json FILE]
//                     [--trace-out FILE --trace-wallclock --no-telemetry]
//                     (threads <= shards; 0 = hardware concurrency)
//   fnda metrics-dump [--format prom|json|table] [--clients N --rounds R
//                     --shards S --threads T --seed N]
//                     [--in FILE (parse a Prometheus text file instead of
//                     running a session; exit 1 on missing/malformed)]
//                     [--quiet (validate only, print nothing)]
//   fnda console  [--script FILE] [--json] [--clients N --shards S
//                 --threads T --seed N --rounds-budget N --protocol ...
//                 --threshold R --slo-file FILE --no-telemetry]
//                 (live operations console: REPL on stdin, or batch
//                 --script for CI; same session → byte-identical
//                 transcript for every --threads)
//   fnda help
//
// Commands are plain functions over streams so tests can drive them
// without a process boundary.  `run_cli` dispatches and maps exceptions
// to exit codes (0 ok, 1 runtime failure, 2 usage error).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "cli/args.h"

namespace fnda {

int cmd_clear(const ArgParser& args, std::istream& in, std::ostream& out,
              std::ostream& err);
int cmd_clear_multi(const ArgParser& args, std::istream& in,
                    std::ostream& out, std::ostream& err);
int cmd_simulate(const ArgParser& args, std::ostream& out, std::ostream& err);
int cmd_attack(const ArgParser& args, std::istream& in, std::ostream& out,
               std::ostream& err);
int cmd_attack_search(const ArgParser& args, std::istream& in,
                      std::ostream& out, std::ostream& err);
int cmd_dynamics(const ArgParser& args, std::istream& in, std::ostream& out,
                 std::ostream& err);
int cmd_sweep(const ArgParser& args, std::ostream& out, std::ostream& err);
int cmd_optimize(const ArgParser& args, std::ostream& out, std::ostream& err);
int cmd_market_bench(const ArgParser& args, std::ostream& out,
                     std::ostream& err);
int cmd_metrics_dump(const ArgParser& args, std::ostream& out,
                     std::ostream& err);
int cmd_console(const ArgParser& args, std::istream& in, std::ostream& out,
                std::ostream& err);
int cmd_help(std::ostream& out);

/// Entry point used by tools/fnda_cli.cpp and the tests.
int run_cli(const std::vector<std::string>& args, std::istream& in,
            std::ostream& out, std::ostream& err);

}  // namespace fnda
