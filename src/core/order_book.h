// Order book and the paper's order statistics.
//
// An OrderBook collects raw single-unit declarations.  A SortedBook is the
// immutable, rank-ordered view every protocol actually consumes:
//
//   b(1) >= b(2) >= ... >= b(m)      (buyers, highest first)
//   s(1) <= s(2) <= ... <= s(n)      (sellers, lowest first)
//
// with the paper's sentinels b(m+1) = lowest possible valuation and
// s(n+1) = highest possible valuation, and random tie-breaking among equal
// values (footnote 5 of the paper).
#pragma once

#include <cstddef>
#include <vector>

#include "common/ids.h"
#include "common/money.h"
#include "common/rng.h"
#include "core/bid.h"

namespace fnda {

/// Inclusive bounds of the valuation domain.  The PMD trading-price
/// candidate p0 averages the sentinels when the book is short, so bounds
/// must be finite; defaults match the paper's examples ("e.g. 0" and
/// "e.g. one billion dollars").
struct ValueDomain {
  Money lowest = Money::from_units(0);
  Money highest = Money::from_units(1'000'000'000);
};

/// Mutable collection of declarations for one clearing round.
class OrderBook {
 public:
  explicit OrderBook(ValueDomain domain = {});

  /// Records a declaration and returns its book-unique bid ID.
  /// Values outside the domain are clamped-free: they are rejected with
  /// std::invalid_argument, since a declaration the domain cannot price is
  /// a caller bug, not market data.
  BidId add(Side side, IdentityId identity, Money value);
  BidId add_buyer(IdentityId identity, Money value) {
    return add(Side::kBuyer, identity, value);
  }
  BidId add_seller(IdentityId identity, Money value) {
    return add(Side::kSeller, identity, value);
  }

  const std::vector<BidEntry>& buyers() const { return buyers_; }
  const std::vector<BidEntry>& sellers() const { return sellers_; }
  const ValueDomain& domain() const { return domain_; }

  std::size_t buyer_count() const { return buyers_.size(); }
  std::size_t seller_count() const { return sellers_.size(); }

 private:
  ValueDomain domain_;
  std::vector<BidEntry> buyers_;
  std::vector<BidEntry> sellers_;
  std::uint64_t next_bid_ = 0;
};

/// Immutable rank-ordered view of an OrderBook.
///
/// Accessors use the paper's 1-based rank convention, including sentinel
/// ranks m+1 / n+1, so protocol code reads like the paper's definitions.
class SortedBook {
 public:
  /// An empty ranking over the default domain; populate with `rebuild`.
  /// Exists so hot loops can keep one SortedBook per thread and recycle
  /// its buffers across instances.
  SortedBook() = default;

  /// Sorts with random tie-breaking drawn from `rng`.  The same book and
  /// rng state always produce the same ranking (deterministic replay).
  SortedBook(const OrderBook& book, Rng& rng);

  /// Re-ranks `book` in place, reusing this object's buffers (no
  /// allocation once capacity has grown to the workload's book size).
  /// Equivalent to assigning a freshly constructed SortedBook.
  void rebuild(const OrderBook& book, Rng& rng);

  /// Adopts vectors that are ALREADY ranked (buyers descending, sellers
  /// ascending, ties in the desired order).  The caller vouches for the
  /// ordering; debug builds assert it.  Used by callers that maintain a
  /// ranked view incrementally instead of re-sorting from scratch.
  static SortedBook from_ranked(const ValueDomain& domain,
                                std::vector<BidEntry> buyers_descending,
                                std::vector<BidEntry> sellers_ascending);

  /// `from_ranked` into this object's existing buffers (no allocation
  /// once capacity has grown to the workload's book size).  Same
  /// caller-vouches-for-the-ranking contract, asserted in debug builds.
  void assign_ranked(const ValueDomain& domain,
                     const std::vector<BidEntry>& buyers_descending,
                     const std::vector<BidEntry>& sellers_ascending);

  /// Incremental-maintenance escape hatch: inserts `entry` at 0-based
  /// `index` in the chosen lane.  The caller vouches that the position
  /// keeps the lane ranked (buyers descending, sellers ascending) — e.g.
  /// a uniformly random slot within the entry's equal-value run, which is
  /// how the manipulation-search engine patches a shared residual ranking
  /// per candidate instead of re-copying both lanes.  Debug builds assert
  /// the neighbours.
  void insert_ranked(Side side, const BidEntry& entry, std::size_t index);

  /// Removes the entry at 0-based `index` from the chosen lane, exactly
  /// undoing a matching `insert_ranked` (entries are PODs, so the lane is
  /// restored bit-for-bit).
  void erase_ranked(Side side, std::size_t index);

  std::size_t buyer_count() const { return buyers_.size(); }   // m
  std::size_t seller_count() const { return sellers_.size(); }  // n

  /// b(rank) for rank in [1, m+1]; b(m+1) is the low sentinel.
  Money buyer_value(std::size_t rank) const;
  /// s(rank) for rank in [1, n+1]; s(n+1) is the high sentinel.
  Money seller_value(std::size_t rank) const;

  /// The declaration at a given rank (1-based, no sentinel rank).
  const BidEntry& buyer(std::size_t rank) const;
  const BidEntry& seller(std::size_t rank) const;

  const std::vector<BidEntry>& buyers() const { return buyers_; }
  const std::vector<BidEntry>& sellers() const { return sellers_; }
  const ValueDomain& domain() const { return domain_; }

  /// Number of buyers with value >= r (the paper's `i`).
  std::size_t buyers_at_or_above(Money r) const;
  /// Number of sellers with value <= r (the paper's `j`).
  std::size_t sellers_at_or_below(Money r) const;

  /// The paper's k: the largest rank with b(k) >= s(k); 0 when even the
  /// best pair cannot trade.  This is the Pareto-efficient trade count.
  std::size_t efficient_trade_count() const;

 private:
  ValueDomain domain_;
  std::vector<BidEntry> buyers_;   // descending by value
  std::vector<BidEntry> sellers_;  // ascending by value
};

}  // namespace fnda
