#include "core/order_book.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace fnda {

OrderBook::OrderBook(ValueDomain domain) : domain_(domain) {
  if (!(domain_.lowest < domain_.highest)) {
    throw std::invalid_argument("OrderBook: domain must satisfy lowest < highest");
  }
}

BidId OrderBook::add(Side side, IdentityId identity, Money value) {
  if (value < domain_.lowest || value > domain_.highest) {
    throw std::invalid_argument("OrderBook::add: value outside the domain");
  }
  const BidId id{next_bid_++};
  auto& lane = side == Side::kBuyer ? buyers_ : sellers_;
  lane.push_back(BidEntry{id, identity, value});
  return id;
}

SortedBook::SortedBook(const OrderBook& book, Rng& rng) {
  rebuild(book, rng);
}

void SortedBook::rebuild(const OrderBook& book, Rng& rng) {
  domain_ = book.domain();
  buyers_.assign(book.buyers().begin(), book.buyers().end());
  sellers_.assign(book.sellers().begin(), book.sellers().end());
  // Random tie-breaking (paper footnote 5): shuffle first, then stable-sort
  // by value only.  Equal-valued bids end up in the shuffled order.
  rng.shuffle(buyers_.begin(), buyers_.end());
  rng.shuffle(sellers_.begin(), sellers_.end());
  std::stable_sort(buyers_.begin(), buyers_.end(),
                   [](const BidEntry& a, const BidEntry& b) {
                     return a.value > b.value;
                   });
  std::stable_sort(sellers_.begin(), sellers_.end(),
                   [](const BidEntry& a, const BidEntry& b) {
                     return a.value < b.value;
                   });
}

namespace {

[[maybe_unused]] bool ranked_invariant(const std::vector<BidEntry>& buyers,
                                       const std::vector<BidEntry>& sellers) {
  return std::is_sorted(buyers.begin(), buyers.end(),
                        [](const BidEntry& a, const BidEntry& b) {
                          return a.value > b.value;
                        }) &&
         std::is_sorted(sellers.begin(), sellers.end(),
                        [](const BidEntry& a, const BidEntry& b) {
                          return a.value < b.value;
                        });
}

}  // namespace

SortedBook SortedBook::from_ranked(const ValueDomain& domain,
                                   std::vector<BidEntry> buyers_descending,
                                   std::vector<BidEntry> sellers_ascending) {
  assert(ranked_invariant(buyers_descending, sellers_ascending));
  SortedBook book;
  book.domain_ = domain;
  book.buyers_ = std::move(buyers_descending);
  book.sellers_ = std::move(sellers_ascending);
  return book;
}

void SortedBook::assign_ranked(const ValueDomain& domain,
                               const std::vector<BidEntry>& buyers_descending,
                               const std::vector<BidEntry>& sellers_ascending) {
  assert(ranked_invariant(buyers_descending, sellers_ascending));
  domain_ = domain;
  buyers_.assign(buyers_descending.begin(), buyers_descending.end());
  sellers_.assign(sellers_ascending.begin(), sellers_ascending.end());
}

void SortedBook::insert_ranked(Side side, const BidEntry& entry,
                               std::size_t index) {
  auto& lane = side == Side::kBuyer ? buyers_ : sellers_;
  if (index > lane.size()) {
    throw std::out_of_range("SortedBook::insert_ranked: index out of range");
  }
  // The neighbours must tolerate the new value in ranked order.
  assert(index == 0 || (side == Side::kBuyer
                            ? !(lane[index - 1].value < entry.value)
                            : !(lane[index - 1].value > entry.value)));
  assert(index == lane.size() || (side == Side::kBuyer
                                      ? !(entry.value < lane[index].value)
                                      : !(entry.value > lane[index].value)));
  lane.insert(lane.begin() + static_cast<std::ptrdiff_t>(index), entry);
}

void SortedBook::erase_ranked(Side side, std::size_t index) {
  auto& lane = side == Side::kBuyer ? buyers_ : sellers_;
  if (index >= lane.size()) {
    throw std::out_of_range("SortedBook::erase_ranked: index out of range");
  }
  lane.erase(lane.begin() + static_cast<std::ptrdiff_t>(index));
}

Money SortedBook::buyer_value(std::size_t rank) const {
  if (rank == 0 || rank > buyers_.size() + 1) {
    throw std::out_of_range("SortedBook::buyer_value: rank out of range");
  }
  if (rank == buyers_.size() + 1) return domain_.lowest;  // b(m+1) sentinel
  return buyers_[rank - 1].value;
}

Money SortedBook::seller_value(std::size_t rank) const {
  if (rank == 0 || rank > sellers_.size() + 1) {
    throw std::out_of_range("SortedBook::seller_value: rank out of range");
  }
  if (rank == sellers_.size() + 1) return domain_.highest;  // s(n+1) sentinel
  return sellers_[rank - 1].value;
}

const BidEntry& SortedBook::buyer(std::size_t rank) const {
  if (rank == 0 || rank > buyers_.size()) {
    throw std::out_of_range("SortedBook::buyer: rank out of range");
  }
  return buyers_[rank - 1];
}

const BidEntry& SortedBook::seller(std::size_t rank) const {
  if (rank == 0 || rank > sellers_.size()) {
    throw std::out_of_range("SortedBook::seller: rank out of range");
  }
  return sellers_[rank - 1];
}

std::size_t SortedBook::buyers_at_or_above(Money r) const {
  // buyers_ is descending; find the first strictly below r.
  auto it = std::lower_bound(buyers_.begin(), buyers_.end(), r,
                             [](const BidEntry& e, Money v) {
                               return e.value >= v;
                             });
  return static_cast<std::size_t>(it - buyers_.begin());
}

std::size_t SortedBook::sellers_at_or_below(Money r) const {
  auto it = std::lower_bound(sellers_.begin(), sellers_.end(), r,
                             [](const BidEntry& e, Money v) {
                               return e.value <= v;
                             });
  return static_cast<std::size_t>(it - sellers_.begin());
}

std::size_t SortedBook::efficient_trade_count() const {
  const std::size_t limit = std::min(buyers_.size(), sellers_.size());
  std::size_t k = 0;
  while (k < limit && buyers_[k].value >= sellers_[k].value) ++k;
  return k;
}

}  // namespace fnda
