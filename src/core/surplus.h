// Social-surplus accounting.
//
// Surplus is always computed against *true* valuations, which only the
// simulation layer knows; protocols never see them.  Definitions follow
// Section 2 of the paper: quasi-linear utilities, the auctioneer counted
// as a (non-trading) participant whose utility is its revenue.
#pragma once

#include <unordered_map>

#include "common/ids.h"
#include "common/money.h"
#include "core/order_book.h"
#include "core/outcome.h"

namespace fnda {

/// True per-identity valuations (b*_x for buyers, s*_y for sellers).
/// An identity appears in at most one side's map.
struct TrueValuations {
  std::unordered_map<IdentityId, Money> buyer_values;
  std::unordered_map<IdentityId, Money> seller_values;
};

/// Surplus decomposition for one outcome.
struct SurplusReport {
  /// Sum of all participants' utilities including the auctioneer.  Because
  /// transfers cancel, this equals the sum over trades of
  /// (buyer's true value - seller's true value).
  double total = 0.0;
  /// Total minus the auctioneer's revenue: what the traders keep.
  double except_auctioneer = 0.0;
  /// The auctioneer's revenue.
  double auctioneer = 0.0;
  /// Sum of buyers' utilities (true value minus payment, per unit bought).
  double buyers = 0.0;
  /// Sum of sellers' utilities (receipt minus true value, per unit sold).
  double sellers = 0.0;
};

/// Computes the surplus realised by `outcome` under `truth`.  Every filled
/// identity must have a true valuation on the matching side; a missing
/// entry throws std::out_of_range (it indicates a wiring bug upstream).
SurplusReport realized_surplus(const Outcome& outcome,
                               const TrueValuations& truth);

/// The Pareto-efficient surplus of a book of *true* values: buyers/sellers
/// (1)..(k) trade, k per SortedBook::efficient_trade_count().
double efficient_surplus(const SortedBook& true_value_book);

}  // namespace fnda
