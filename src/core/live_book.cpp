#include "core/live_book.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <numeric>
#include <stdexcept>

namespace fnda {
namespace {

/// "Existing entry precedes the newcomer": ranks strictly better OR ties
/// it (ties stay in arrival order, so the newcomer goes after its whole
/// run).  Partition points of this predicate are insert slots.
inline bool precedes(std::int64_t existing, std::int64_t incoming,
                     bool descending) {
  return descending ? existing >= incoming : existing <= incoming;
}

}  // namespace

LiveBook::LiveBook(ValueDomain domain) {
  reset(domain);
}

void LiveBook::reset(ValueDomain domain) {
  if (!(domain.lowest < domain.highest)) {
    throw std::invalid_argument("LiveBook: domain must satisfy lowest < highest");
  }
  domain_ = domain;
  retire_lane(buyer_lane_);
  retire_lane(seller_lane_);
  buyers_.clear();
  sellers_.clear();
  buyer_arrival_.clear();
  seller_arrival_.clear();
  buyers_current_ = false;
  sellers_current_ = false;
  next_bid_ = 0;
  finalized_ = false;
}

void LiveBook::retire_lane(Lane& lane) {
  for (std::unique_ptr<Chunk>& chunk : lane.chunks) {
    chunk_pool_.push_back(std::move(chunk));
  }
  lane.chunks.clear();
  lane.chunk_last.clear();
  lane.size = 0;
}

std::unique_ptr<LiveBook::Chunk> LiveBook::take_chunk() {
  if (!chunk_pool_.empty()) {
    std::unique_ptr<Chunk> chunk = std::move(chunk_pool_.back());
    chunk_pool_.pop_back();
    chunk->count = 0;
    return chunk;
  }
  return std::make_unique<Chunk>();
}

void LiveBook::split_chunk(Lane& lane, std::size_t c) {
  constexpr std::size_t kHalf = kChunkCapacity / 2;
  std::unique_ptr<Chunk> fresh = take_chunk();
  Chunk& low = *lane.chunks[c];
  Chunk& high = *fresh;
  constexpr std::size_t kMoved = kChunkCapacity - kHalf;
  std::memcpy(high.value.data(), low.value.data() + kHalf,
              kMoved * sizeof(std::int64_t));
  std::memcpy(high.identity.data(), low.identity.data() + kHalf,
              kMoved * sizeof(std::uint64_t));
  std::memcpy(high.bid.data(), low.bid.data() + kHalf,
              kMoved * sizeof(std::uint32_t));
  std::memcpy(high.arrival.data(), low.arrival.data() + kHalf,
              kMoved * sizeof(std::uint32_t));
  high.count = kMoved;
  low.count = kHalf;
  lane.chunk_last.insert(
      lane.chunk_last.begin() + static_cast<std::ptrdiff_t>(c) + 1,
      high.value[high.count - 1]);
  lane.chunk_last[c] = low.value[low.count - 1];
  lane.chunks.insert(lane.chunks.begin() + static_cast<std::ptrdiff_t>(c) + 1,
                     std::move(fresh));
  ++stats_.chunk_splits;
}

void LiveBook::insert(Lane& lane, bool descending, BidId id,
                      IdentityId identity, std::int64_t value) {
  const auto arrival_index = static_cast<std::uint32_t>(lane.size);

  std::size_t c;
  std::size_t slot;
  if (lane.chunks.empty()) {
    lane.chunks.push_back(take_chunk());
    lane.chunk_last.push_back(value);
    c = 0;
    slot = 0;
  } else {
    // Chunk selection: the partition point of "every entry in this chunk
    // precedes the newcomer" over the dense per-chunk last values.  A
    // chunk's last value is its worst rank, so last-precedes implies
    // all-precede on both lane orders.
    const std::size_t chunk_count = lane.chunks.size();
    std::size_t lo = 0;
    std::size_t hi = chunk_count;
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (precedes(lane.chunk_last[mid], value, descending)) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    c = lo;
    if (c == chunk_count) {
      // Every chunk precedes: append at the lane tail.  A full tail chunk
      // opens a fresh one (zero moves) instead of splitting — the common
      // shape for near-sorted arrivals.
      c = chunk_count - 1;
      if (lane.chunks[c]->count == kChunkCapacity) {
        lane.chunks.push_back(take_chunk());
        lane.chunk_last.push_back(value);
        c = chunk_count;
      }
      slot = lane.chunks[c]->count;
    } else {
      Chunk* chunk = lane.chunks[c].get();
      if (chunk->count == kChunkCapacity) {
        split_chunk(lane, c);
        // The newcomer lands in whichever half its rank falls: the split
        // point is arbitrary, so re-test against the lower half's last.
        if (precedes(lane.chunk_last[c], value, descending)) ++c;
        chunk = lane.chunks[c].get();
      }
      // In-chunk slot: partition point of precedes over the live prefix.
      std::size_t in_lo = 0;
      std::size_t in_hi = chunk->count;
      while (in_lo < in_hi) {
        const std::size_t mid = in_lo + (in_hi - in_lo) / 2;
        if (precedes(chunk->value[mid], value, descending)) {
          in_lo = mid + 1;
        } else {
          in_hi = mid;
        }
      }
      slot = in_lo;
    }
  }

  Chunk& chunk = *lane.chunks[c];
#ifndef NDEBUG
  // First-principles cross-check of the shift accounting (satellite of
  // the SoA refactor): recompute the in-chunk slot by linear scan —
  // independent of the binary searches above — and the shift as the tail
  // it displaces.  The ASan/debug CI jobs run this on every insert.
  {
    std::size_t linear_slot = 0;
    while (linear_slot < chunk.count &&
           precedes(chunk.value[linear_slot], value, descending)) {
      ++linear_slot;
    }
    assert(linear_slot == slot &&
           "chunked gap-buffer slot disagrees with linear first-principles scan");
    if (c > 0) {
      const Chunk& prev = *lane.chunks[c - 1];
      assert(prev.count > 0 &&
             precedes(prev.value[prev.count - 1], value, descending) &&
             "chunk selection skipped a chunk whose tail does not precede");
    }
  }
#endif
  const std::size_t tail = chunk.count - slot;
  if (tail > 0) {
    std::memmove(chunk.value.data() + slot + 1, chunk.value.data() + slot,
                 tail * sizeof(std::int64_t));
    std::memmove(chunk.identity.data() + slot + 1,
                 chunk.identity.data() + slot, tail * sizeof(std::uint64_t));
    std::memmove(chunk.bid.data() + slot + 1, chunk.bid.data() + slot,
                 tail * sizeof(std::uint32_t));
    std::memmove(chunk.arrival.data() + slot + 1, chunk.arrival.data() + slot,
                 tail * sizeof(std::uint32_t));
  }
  chunk.value[slot] = value;
  chunk.identity[slot] = identity.value();
  chunk.bid[slot] = static_cast<std::uint32_t>(id.value());
  chunk.arrival[slot] = arrival_index;
  ++chunk.count;
  lane.chunk_last[c] = chunk.value[chunk.count - 1];
  ++lane.size;
  stats_.entries_shifted += tail;
}

BidId LiveBook::add(Side side, IdentityId identity, Money value) {
  if (finalized_) {
    throw std::logic_error("LiveBook::add: book already finalized this round");
  }
  if (value < domain_.lowest || value > domain_.highest) {
    throw std::invalid_argument("LiveBook::add: value outside the domain");
  }
  const BidId id{next_bid_++};
  assert(next_bid_ <= 0xffffffffull &&
         "round-local bid ids must fit the 4-byte SoA id lane");
  const bool descending = side == Side::kBuyer;
  if (descending) {
    insert(buyer_lane_, true, id, identity, value.micros());
    buyers_current_ = false;
  } else {
    insert(seller_lane_, false, id, identity, value.micros());
    sellers_current_ = false;
  }
  ++stats_.inserts;
  return id;
}

void LiveBook::materialize(const Lane& lane, std::vector<BidEntry>& entries,
                           std::vector<std::uint32_t>& arrival) const {
  entries.clear();
  arrival.clear();
  entries.reserve(lane.size);
  arrival.reserve(lane.size);
  for (const std::unique_ptr<Chunk>& chunk : lane.chunks) {
    for (std::uint32_t i = 0; i < chunk->count; ++i) {
      entries.push_back(BidEntry{BidId{chunk->bid[i]},
                                 IdentityId{chunk->identity[i]},
                                 Money::from_micros(chunk->value[i])});
      arrival.push_back(chunk->arrival[i]);
    }
  }
}

const std::vector<BidEntry>& LiveBook::ranked_buyers() const {
  if (!buyers_current_) {
    materialize(buyer_lane_, buyers_, buyer_arrival_);
    buyers_current_ = true;
  }
  return buyers_;
}

const std::vector<BidEntry>& LiveBook::ranked_sellers() const {
  if (!sellers_current_) {
    materialize(seller_lane_, sellers_, seller_arrival_);
    sellers_current_ = true;
  }
  return sellers_;
}

void LiveBook::fix_ties(std::vector<BidEntry>& lane,
                        std::vector<std::uint32_t>& arrival, Rng& rng) {
  const std::size_t n = lane.size();
  // SortedBook::rebuild's Fisher-Yates draws nothing for n < 2; match it.
  if (n < 2) return;

  // Replay rebuild's shuffle on arrival *indices* instead of 24-byte
  // entries: perm_[p] is the arrival index sitting at shuffled position p,
  // after exactly the below(n)..below(2) draws rebuild would have made.
  perm_.resize(n);
  std::iota(perm_.begin(), perm_.end(), 0u);
  for (std::uint64_t i = n; i > 1; --i) {
    const std::uint64_t j = rng.below(i);
    std::swap(perm_[i - 1], perm_[j]);
  }
  pos_.resize(n);
  for (std::size_t p = 0; p < n; ++p) pos_[perm_[p]] = static_cast<std::uint32_t>(p);

  // rebuild stable-sorts the shuffled array by value, so within an
  // equal-value run entries appear in ascending shuffled position.  The
  // lane already groups each run contiguously (same value set, arrival
  // order); reordering each run by pos_[arrival] reproduces rebuild's
  // ranking exactly.
  std::size_t lo = 0;
  while (lo < n) {
    std::size_t hi = lo + 1;
    while (hi < n && lane[hi].value == lane[lo].value) ++hi;
    const std::size_t len = hi - lo;
    if (len > 1) {
      // Sort (shuffled position, slot) keys — positions are distinct, so
      // plain sort suffices and stays O(len log len) on all-equal books.
      run_keys_.resize(len);
      for (std::size_t k = 0; k < len; ++k) {
        run_keys_[k] = (static_cast<std::uint64_t>(pos_[arrival[lo + k]]) << 32) |
                       (lo + k);
      }
      std::sort(run_keys_.begin(), run_keys_.end());
      run_scratch_.assign(lane.begin() + static_cast<std::ptrdiff_t>(lo),
                          lane.begin() + static_cast<std::ptrdiff_t>(hi));
      for (std::size_t k = 0; k < len; ++k) {
        const std::size_t src = static_cast<std::uint32_t>(run_keys_[k]) - lo;
        lane[lo + k] = run_scratch_[src];
      }
      stats_.tie_entries_permuted += len;
    }
    lo = hi;
  }
}

void LiveBook::finalize_ties(Rng& rng) {
  if (finalized_) {
    throw std::logic_error("LiveBook::finalize_ties: already finalized");
  }
  // One dense compaction per side — the whole close-time layout cost —
  // then the footnote-5 fixups run on the dense lanes.  Same side order
  // as rebuild: buyers' draws first, then sellers'.
  ranked_buyers();
  ranked_sellers();
  fix_ties(buyers_, buyer_arrival_, rng);
  fix_ties(sellers_, seller_arrival_, rng);
  finalized_ = true;
  ++stats_.rounds_finalized;
}

SortedBook LiveBook::to_sorted() const {
  ranked_buyers();
  ranked_sellers();
  return SortedBook::from_ranked(domain_, buyers_, sellers_);
}

void LiveBook::emit(SortedBook& out) const {
  ranked_buyers();
  ranked_sellers();
  out.assign_ranked(domain_, buyers_, sellers_);
}

}  // namespace fnda
