#include "core/live_book.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <stdexcept>

namespace fnda {

LiveBook::LiveBook(ValueDomain domain) {
  reset(domain);
}

void LiveBook::reset(ValueDomain domain) {
  if (!(domain.lowest < domain.highest)) {
    throw std::invalid_argument("LiveBook: domain must satisfy lowest < highest");
  }
  domain_ = domain;
  buyers_.clear();
  sellers_.clear();
  buyer_arrival_.clear();
  seller_arrival_.clear();
  next_bid_ = 0;
  finalized_ = false;
}

std::size_t LiveBook::gallop_slot(const std::vector<BidEntry>& lane,
                                  Money value, bool descending) const {
  // The slot is the partition point of "precedes": an existing entry
  // precedes the new one when it ranks strictly better OR ties it (ties
  // stay in arrival order, so the newcomer goes after its whole run).
  // Ranked inserts land uniformly, so probe exponentially from the tail —
  // the cheap end — then binary-search the bracket.
  auto precedes = [&](const BidEntry& e) {
    return descending ? e.value >= value : e.value <= value;
  };
  const std::size_t n = lane.size();
  std::size_t lo = 0;
  std::size_t hi = n;
  for (std::size_t bound = 1; bound <= n; bound <<= 1) {
    const std::size_t probe = n - bound;
    if (precedes(lane[probe])) {
      lo = probe + 1;
      break;
    }
    hi = probe;
  }
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (precedes(lane[mid])) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

BidId LiveBook::add(Side side, IdentityId identity, Money value) {
  if (finalized_) {
    throw std::logic_error("LiveBook::add: book already finalized this round");
  }
  if (value < domain_.lowest || value > domain_.highest) {
    throw std::invalid_argument("LiveBook::add: value outside the domain");
  }
  const BidId id{next_bid_++};
  const bool descending = side == Side::kBuyer;
  auto& lane = descending ? buyers_ : sellers_;
  auto& arrival = descending ? buyer_arrival_ : seller_arrival_;
  const std::size_t slot = gallop_slot(lane, value, descending);
  stats_.entries_shifted += lane.size() - slot;
  const auto arrival_index = static_cast<std::uint32_t>(arrival.size());
  lane.insert(lane.begin() + static_cast<std::ptrdiff_t>(slot),
              BidEntry{id, identity, value});
  arrival.insert(arrival.begin() + static_cast<std::ptrdiff_t>(slot),
                 arrival_index);
  ++stats_.inserts;
  return id;
}

void LiveBook::fix_ties(std::vector<BidEntry>& lane,
                        std::vector<std::uint32_t>& arrival, Rng& rng) {
  const std::size_t n = lane.size();
  // SortedBook::rebuild's Fisher-Yates draws nothing for n < 2; match it.
  if (n < 2) return;

  // Replay rebuild's shuffle on arrival *indices* instead of 24-byte
  // entries: perm_[p] is the arrival index sitting at shuffled position p,
  // after exactly the below(n)..below(2) draws rebuild would have made.
  perm_.resize(n);
  std::iota(perm_.begin(), perm_.end(), 0u);
  for (std::uint64_t i = n; i > 1; --i) {
    const std::uint64_t j = rng.below(i);
    std::swap(perm_[i - 1], perm_[j]);
  }
  pos_.resize(n);
  for (std::size_t p = 0; p < n; ++p) pos_[perm_[p]] = static_cast<std::uint32_t>(p);

  // rebuild stable-sorts the shuffled array by value, so within an
  // equal-value run entries appear in ascending shuffled position.  The
  // lane already groups each run contiguously (same value set, arrival
  // order); reordering each run by pos_[arrival] reproduces rebuild's
  // ranking exactly.
  std::size_t lo = 0;
  while (lo < n) {
    std::size_t hi = lo + 1;
    while (hi < n && lane[hi].value == lane[lo].value) ++hi;
    const std::size_t len = hi - lo;
    if (len > 1) {
      // Sort (shuffled position, slot) keys — positions are distinct, so
      // plain sort suffices and stays O(len log len) on all-equal books.
      run_keys_.resize(len);
      for (std::size_t k = 0; k < len; ++k) {
        run_keys_[k] = (static_cast<std::uint64_t>(pos_[arrival[lo + k]]) << 32) |
                       (lo + k);
      }
      std::sort(run_keys_.begin(), run_keys_.end());
      run_scratch_.assign(lane.begin() + static_cast<std::ptrdiff_t>(lo),
                          lane.begin() + static_cast<std::ptrdiff_t>(hi));
      for (std::size_t k = 0; k < len; ++k) {
        const std::size_t src = static_cast<std::uint32_t>(run_keys_[k]) - lo;
        lane[lo + k] = run_scratch_[src];
      }
      stats_.tie_entries_permuted += len;
    }
    lo = hi;
  }
}

void LiveBook::finalize_ties(Rng& rng) {
  if (finalized_) {
    throw std::logic_error("LiveBook::finalize_ties: already finalized");
  }
  // Same side order as rebuild: buyers' draws first, then sellers'.
  fix_ties(buyers_, buyer_arrival_, rng);
  fix_ties(sellers_, seller_arrival_, rng);
  finalized_ = true;
  ++stats_.rounds_finalized;
}

SortedBook LiveBook::to_sorted() const {
  return SortedBook::from_ranked(domain_, buyers_, sellers_);
}

void LiveBook::emit(SortedBook& out) const {
  out.assign_ranked(domain_, buyers_, sellers_);
}

}  // namespace fnda
