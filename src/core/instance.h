// Problem instances: the *true* state of the world the simulation knows
// but protocols never see.
#pragma once

#include <vector>

#include "core/order_book.h"
#include "core/surplus.h"

namespace fnda {

/// One single-unit market instance: true valuations of m buyers and n
/// sellers (Section 7's problem instances).
struct SingleUnitInstance {
  std::vector<Money> buyer_values;
  std::vector<Money> seller_values;
  ValueDomain domain{};
};

/// An instance realised as declarations: the order book that results when
/// every participant bids truthfully under its own single identity, plus
/// the identity bookkeeping needed to score outcomes.
struct InstantiatedMarket {
  OrderBook book;
  TrueValuations truth;
  /// buyer_identities[i] is the identity of the buyer with true value
  /// instance.buyer_values[i]; likewise for sellers.
  std::vector<IdentityId> buyer_identities;
  std::vector<IdentityId> seller_identities;
};

/// Builds the truthful market for an instance.  Buyer i receives identity
/// value i; seller j receives kSellerIdentityBase + j, so the two sides
/// never collide.
InstantiatedMarket instantiate_truthful(const SingleUnitInstance& instance);

/// Identity-space split between buyer and seller lanes (and, above
/// kExtraIdentityBase, identities minted for false-name declarations).
inline constexpr std::uint64_t kSellerIdentityBase = 1'000'000;
inline constexpr std::uint64_t kExtraIdentityBase = 2'000'000;

}  // namespace fnda
