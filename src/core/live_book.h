// Incrementally ranked order book for continuously clearing markets.
//
// A LiveBook keeps the buyer and seller lanes in protocol rank order at
// all times — buyers descending, sellers ascending, equal-value runs in
// arrival order — by galloping-inserting each accepted declaration:
// amortized O(log n) search (exponential probe from the tail, then binary
// search inside the bracket) plus one contiguous memmove to open the slot.
// At round close the book is already ranked, so clearing pays zero sort
// work; only the paper's footnote-5 random tie-breaking remains, applied
// by `finalize_ties` as per-run fixups that consume exactly the RNG draws
// `SortedBook::rebuild` would have made.  The resulting ranking — and the
// post-ranking RNG state handed to the protocol — are therefore
// bit-identical to the shuffle+stable-sort path, which is the market
// server's replay/audit contract.
//
// Cost model: the per-insert memmove averages half the lane, so a round
// of m bids moves O(m^2/2) entries in total.  That is the right trade for
// the call-market regime (hundreds to a few thousand bids per round per
// shard, spread across message handling) because it deletes the O(m log m)
// close-time sort plus its full-entry shuffle from the latency-critical
// clearing step; for lanes far beyond that, rebuild a SortedBook instead.
#pragma once

#include <cstdint>
#include <vector>

#include "core/order_book.h"

namespace fnda {

/// Work counters for the incremental engine, cumulative across rounds.
/// `sorts_at_close` exists to make the "zero sort work at round close"
/// claim observable next to the shift/fixup work actually done; the
/// incremental engine never increments it.
struct LiveBookStats {
  std::uint64_t inserts = 0;            ///< declarations galloping-inserted
  std::uint64_t entries_shifted = 0;    ///< entries memmoved to open slots
  std::uint64_t rounds_finalized = 0;   ///< finalize_ties calls
  std::uint64_t tie_entries_permuted = 0;  ///< entries in reordered tie runs
  std::uint64_t sorts_at_close = 0;     ///< always 0 for LiveBook

  void merge(const LiveBookStats& other) {
    inserts += other.inserts;
    entries_shifted += other.entries_shifted;
    rounds_finalized += other.rounds_finalized;
    tie_entries_permuted += other.tie_entries_permuted;
    sorts_at_close += other.sorts_at_close;
  }
};

/// Mutable rank-ordered collection of declarations for one clearing round.
///
/// Drop-in replacement for the OrderBook held by an open round: `add` has
/// the same signature, id assignment, and domain validation, but the lanes
/// it maintains are the *ranked* lanes a SortedBook would produce (modulo
/// tie-breaking, frozen at `finalize_ties`).  `reset` starts a new round
/// while keeping every buffer's capacity, so a warm server allocates
/// nothing per round on the submission path.
class LiveBook {
 public:
  explicit LiveBook(ValueDomain domain = {});

  /// Starts a new round over `domain`; capacity is retained, bid ids
  /// restart at 0 (ids are book-unique, matching OrderBook::add).
  void reset(ValueDomain domain);

  /// Records a declaration at its rank and returns its book-unique id.
  /// Values outside the domain are rejected with std::invalid_argument.
  /// Must not be called after finalize_ties (until the next reset).
  BidId add(Side side, IdentityId identity, Money value);
  BidId add_buyer(IdentityId identity, Money value) {
    return add(Side::kBuyer, identity, value);
  }
  BidId add_seller(IdentityId identity, Money value) {
    return add(Side::kSeller, identity, value);
  }

  /// Applies the paper's footnote-5 random tie-breaking to the ranked
  /// lanes.  Consumes from `rng` exactly the draws SortedBook::rebuild
  /// makes (one full Fisher-Yates pass per side, buyers first), so the
  /// final ranking AND the rng state afterwards are bit-identical to
  /// `SortedBook(book, rng)` over the same declarations — any protocol
  /// randomness drawn next sees an unshifted stream.
  void finalize_ties(Rng& rng);

  std::size_t buyer_count() const { return buyers_.size(); }
  std::size_t seller_count() const { return sellers_.size(); }
  const ValueDomain& domain() const { return domain_; }
  bool finalized() const { return finalized_; }

  /// Ranked lanes (ties in arrival order until finalize_ties freezes the
  /// footnote-5 permutation).
  const std::vector<BidEntry>& ranked_buyers() const { return buyers_; }
  const std::vector<BidEntry>& ranked_sellers() const { return sellers_; }

  /// A SortedBook over the current ranking (finalize_ties first for the
  /// footnote-5 contract).  `to_sorted` allocates a fresh book — use it
  /// for views that outlive the round; `emit` reuses `out`'s buffers for
  /// per-round scratch.
  SortedBook to_sorted() const;
  void emit(SortedBook& out) const;

  /// Cumulative work counters (survive reset; see LiveBookStats).
  const LiveBookStats& stats() const { return stats_; }

 private:
  std::size_t gallop_slot(const std::vector<BidEntry>& lane, Money value,
                          bool descending) const;
  void fix_ties(std::vector<BidEntry>& lane,
                std::vector<std::uint32_t>& arrival, Rng& rng);

  ValueDomain domain_;
  std::vector<BidEntry> buyers_;   ///< descending by value
  std::vector<BidEntry> sellers_;  ///< ascending by value
  /// Per-side arrival index of each ranked entry, the key finalize_ties
  /// maps through the shuffle permutation.
  std::vector<std::uint32_t> buyer_arrival_;
  std::vector<std::uint32_t> seller_arrival_;
  /// finalize_ties scratch (reused across rounds).
  std::vector<std::uint32_t> perm_;
  std::vector<std::uint32_t> pos_;
  std::vector<std::uint64_t> run_keys_;
  std::vector<BidEntry> run_scratch_;
  std::uint64_t next_bid_ = 0;
  bool finalized_ = false;
  LiveBookStats stats_;
};

}  // namespace fnda
