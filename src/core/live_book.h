// Incrementally ranked order book for continuously clearing markets.
//
// A LiveBook keeps the buyer and seller lanes in protocol rank order at
// all times — buyers descending, sellers ascending, equal-value runs in
// arrival order — by galloping-inserting each accepted declaration.  At
// round close the book is already ranked, so clearing pays zero sort
// work; only the paper's footnote-5 random tie-breaking remains, applied
// by `finalize_ties` as per-run fixups that consume exactly the RNG draws
// `SortedBook::rebuild` would have made.  The resulting ranking — and the
// post-ranking RNG state handed to the protocol — are therefore
// bit-identical to the shuffle+stable-sort path, which is the market
// server's replay/audit contract.
//
// Storage is a chunked structure-of-arrays gap buffer.  Each lane is a
// sequence of fixed-capacity chunks holding parallel `value[]` /
// `identity[]` / `bid[]` / `arrival[]` arrays; concatenating the chunks'
// live prefixes yields the ranked lane.  An insert binary-searches the
// per-chunk last values to pick its chunk, binary-searches inside the
// chunk, and memmoves only that chunk's dense POD tail — O(chunk), not
// O(n), so a 4096-bid round shifts ~64 slots per insert instead of ~2048
// fat entries.  A full chunk splits in half (per-chunk slack is how the
// gap buffer absorbs clustered arrivals); an append past the last chunk
// opens a fresh one with zero moves.  `entries_shifted` counts exactly
// the slots memmoved to open insert slots; split moves are visible
// separately as `chunk_splits` (each split relocates kChunkCapacity/2
// entries).  At finalize the chunks are compacted into dense entry lanes
// once, and the footnote-5 fixups run on those — the close-time cost is
// one linear pass, never a sort.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/order_book.h"

namespace fnda {

/// Work counters for the incremental engine, cumulative across rounds.
/// `sorts_at_close` exists to make the "zero sort work at round close"
/// claim observable next to the shift/fixup work actually done; the
/// incremental engine never increments it.
struct LiveBookStats {
  std::uint64_t inserts = 0;            ///< declarations galloping-inserted
  std::uint64_t entries_shifted = 0;    ///< entries memmoved to open slots
  std::uint64_t rounds_finalized = 0;   ///< finalize_ties calls
  std::uint64_t tie_entries_permuted = 0;  ///< entries in reordered tie runs
  std::uint64_t sorts_at_close = 0;     ///< always 0 for LiveBook
  /// Full chunks split in half to admit an insert; each split relocates
  /// exactly kChunkCapacity/2 entries to a fresh chunk (accounted here,
  /// not in entries_shifted, so shift counts stay exact per layout).
  std::uint64_t chunk_splits = 0;

  void merge(const LiveBookStats& other) {
    inserts += other.inserts;
    entries_shifted += other.entries_shifted;
    rounds_finalized += other.rounds_finalized;
    tie_entries_permuted += other.tie_entries_permuted;
    sorts_at_close += other.sorts_at_close;
    chunk_splits += other.chunk_splits;
  }
};

/// Mutable rank-ordered collection of declarations for one clearing round.
///
/// Drop-in replacement for the OrderBook held by an open round: `add` has
/// the same signature, id assignment, and domain validation, but the lanes
/// it maintains are the *ranked* lanes a SortedBook would produce (modulo
/// tie-breaking, frozen at `finalize_ties`).  `reset` starts a new round
/// while keeping every buffer's capacity — chunks are pooled, the dense
/// caches keep their capacity — so a warm server allocates nothing per
/// round on the submission path.
class LiveBook {
 public:
  /// Entries per chunk.  Inserts memmove at most this many slots; splits
  /// copy exactly half.  4096-bid lanes span ~32 chunks (~3 KiB each).
  static constexpr std::size_t kChunkCapacity = 128;

  explicit LiveBook(ValueDomain domain = {});

  /// Starts a new round over `domain`; capacity is retained, bid ids
  /// restart at 0 (ids are book-unique, matching OrderBook::add).
  void reset(ValueDomain domain);

  /// Records a declaration at its rank and returns its book-unique id.
  /// Values outside the domain are rejected with std::invalid_argument.
  /// Must not be called after finalize_ties (until the next reset).
  BidId add(Side side, IdentityId identity, Money value);
  BidId add_buyer(IdentityId identity, Money value) {
    return add(Side::kBuyer, identity, value);
  }
  BidId add_seller(IdentityId identity, Money value) {
    return add(Side::kSeller, identity, value);
  }

  /// Applies the paper's footnote-5 random tie-breaking to the ranked
  /// lanes.  Consumes from `rng` exactly the draws SortedBook::rebuild
  /// makes (one full Fisher-Yates pass per side, buyers first), so the
  /// final ranking AND the rng state afterwards are bit-identical to
  /// `SortedBook(book, rng)` over the same declarations — any protocol
  /// randomness drawn next sees an unshifted stream.
  void finalize_ties(Rng& rng);

  std::size_t buyer_count() const { return buyer_lane_.size; }
  std::size_t seller_count() const { return seller_lane_.size; }
  const ValueDomain& domain() const { return domain_; }
  bool finalized() const { return finalized_; }

  /// Ranked lanes (ties in arrival order until finalize_ties freezes the
  /// footnote-5 permutation).  Materialized lazily from the chunked
  /// storage into persistent-capacity dense buffers; cheap to call
  /// repeatedly between mutations, O(n) after an add.
  const std::vector<BidEntry>& ranked_buyers() const;
  const std::vector<BidEntry>& ranked_sellers() const;

  /// A SortedBook over the current ranking (finalize_ties first for the
  /// footnote-5 contract).  `to_sorted` allocates a fresh book — use it
  /// for views that outlive the round; `emit` reuses `out`'s buffers for
  /// per-round scratch.
  SortedBook to_sorted() const;
  void emit(SortedBook& out) const;

  /// Cumulative work counters (survive reset; see LiveBookStats).
  const LiveBookStats& stats() const { return stats_; }

 private:
  /// One fixed-capacity block of the gap buffer, structure-of-arrays:
  /// shifting a tail touches four dense POD ranges instead of 24-byte
  /// entries, and the value lane alone feeds the rank searches.
  struct Chunk {
    std::array<std::int64_t, kChunkCapacity> value;     // Money micros
    std::array<std::uint64_t, kChunkCapacity> identity;
    std::array<std::uint32_t, kChunkCapacity> bid;      // round-local ids
    std::array<std::uint32_t, kChunkCapacity> arrival;  // per-side sequence
    std::uint32_t count = 0;
  };

  struct Lane {
    std::vector<std::unique_ptr<Chunk>> chunks;
    /// chunk_last[c] mirrors chunks[c]->value[count - 1]: the dense array
    /// the chunk-selection binary search runs over.
    std::vector<std::int64_t> chunk_last;
    std::size_t size = 0;
  };

  void insert(Lane& lane, bool descending, BidId id, IdentityId identity,
              std::int64_t value);
  /// Splits full chunk `c` in half, moving the upper half to a fresh
  /// chunk at c + 1.
  void split_chunk(Lane& lane, std::size_t c);
  std::unique_ptr<Chunk> take_chunk();
  void retire_lane(Lane& lane);
  void materialize(const Lane& lane, std::vector<BidEntry>& entries,
                   std::vector<std::uint32_t>& arrival) const;
  void fix_ties(std::vector<BidEntry>& lane,
                std::vector<std::uint32_t>& arrival, Rng& rng);

  ValueDomain domain_;
  Lane buyer_lane_;   ///< descending by value
  Lane seller_lane_;  ///< ascending by value
  /// Retired chunks, reused across rounds (capacity survives reset).
  std::vector<std::unique_ptr<Chunk>> chunk_pool_;

  /// Dense AoS views of the chunked lanes, materialized on demand (and
  /// always at finalize, which then runs the tie fixups on them).  The
  /// vectors keep their capacity across rounds.
  mutable std::vector<BidEntry> buyers_;
  mutable std::vector<BidEntry> sellers_;
  mutable std::vector<std::uint32_t> buyer_arrival_;
  mutable std::vector<std::uint32_t> seller_arrival_;
  mutable bool buyers_current_ = false;
  mutable bool sellers_current_ = false;

  /// finalize_ties scratch (reused across rounds).
  std::vector<std::uint32_t> perm_;
  std::vector<std::uint32_t> pos_;
  std::vector<std::uint64_t> run_keys_;
  std::vector<BidEntry> run_scratch_;
  std::uint64_t next_bid_ = 0;
  bool finalized_ = false;
  LiveBookStats stats_;
};

}  // namespace fnda
