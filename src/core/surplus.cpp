#include "core/surplus.h"

#include <stdexcept>

namespace fnda {
namespace {

Money lookup(const std::unordered_map<IdentityId, Money>& values,
             IdentityId identity, const char* side) {
  auto it = values.find(identity);
  if (it == values.end()) {
    throw std::out_of_range(std::string("realized_surplus: no true ") + side +
                            " valuation for a filled identity");
  }
  return it->second;
}

}  // namespace

SurplusReport realized_surplus(const Outcome& outcome,
                               const TrueValuations& truth) {
  SurplusReport report;
  for (const Fill& fill : outcome.fills()) {
    if (fill.side == Side::kBuyer) {
      const Money value = lookup(truth.buyer_values, fill.identity, "buyer");
      report.buyers += (value - fill.price).to_double();
    } else {
      const Money value = lookup(truth.seller_values, fill.identity, "seller");
      report.sellers += (fill.price - value).to_double();
    }
  }
  report.auctioneer = outcome.auctioneer_revenue().to_double();
  // Rebates are transfers from the auctioneer to participants; they raise
  // the traders' surplus and are already deducted from the auctioneer's.
  report.except_auctioneer =
      report.buyers + report.sellers + outcome.rebates_total().to_double();
  report.total = report.except_auctioneer + report.auctioneer;
  return report;
}

double efficient_surplus(const SortedBook& true_value_book) {
  const std::size_t k = true_value_book.efficient_trade_count();
  double surplus = 0.0;
  for (std::size_t rank = 1; rank <= k; ++rank) {
    surplus += (true_value_book.buyer_value(rank) -
                true_value_book.seller_value(rank))
                   .to_double();
  }
  return surplus;
}

}  // namespace fnda
