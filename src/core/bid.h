// Bid types shared by every protocol.
#pragma once

#include "common/ids.h"
#include "common/money.h"

namespace fnda {

/// Which side of the market a declaration is on.  Following the paper, we
/// use "bid" for both buyer and seller declarations.
enum class Side { kBuyer, kSeller };

constexpr const char* to_string(Side side) {
  return side == Side::kBuyer ? "buyer" : "seller";
}

/// One single-unit declaration: `identity` claims it values one unit of the
/// good at `value` (willingness to pay for buyers, willingness to accept
/// for sellers).  Declared values are not necessarily truthful.
struct BidEntry {
  BidId id;
  IdentityId identity;
  Money value;

  friend bool operator==(const BidEntry&, const BidEntry&) = default;
};

}  // namespace fnda
