#include "core/outcome.h"

#include <stdexcept>

namespace fnda {

void Outcome::reserve(std::size_t trades) {
  fills_.reserve(2 * trades);
}

void Outcome::add_buy(BidId bid, IdentityId identity, Money price) {
  fills_.push_back(Fill{Side::kBuyer, bid, identity, price});
  ++buy_count_;
  buyer_payments_ += price;
  aggregates_built_ = false;
}

void Outcome::add_sell(BidId bid, IdentityId identity, Money price) {
  fills_.push_back(Fill{Side::kSeller, bid, identity, price});
  ++sell_count_;
  seller_receipts_ += price;
  aggregates_built_ = false;
}

void Outcome::ensure_aggregates() const {
  if (aggregates_built_) return;
  per_identity_.clear();
  fills_per_bid_.clear();
  per_identity_.reserve(fills_.size());
  fills_per_bid_.reserve(fills_.size());
  for (const Fill& fill : fills_) {
    auto& entry = per_identity_[fill.identity];
    if (fill.side == Side::kBuyer) {
      ++entry.bought;
      entry.paid += fill.price;
    } else {
      ++entry.sold;
      entry.received += fill.price;
    }
    ++fills_per_bid_[fill.bid];
  }
  aggregates_built_ = true;
}

std::size_t Outcome::units_bought(IdentityId identity) const {
  ensure_aggregates();
  auto it = per_identity_.find(identity);
  return it == per_identity_.end() ? 0 : it->second.bought;
}

std::size_t Outcome::units_sold(IdentityId identity) const {
  ensure_aggregates();
  auto it = per_identity_.find(identity);
  return it == per_identity_.end() ? 0 : it->second.sold;
}

Money Outcome::paid_by(IdentityId identity) const {
  ensure_aggregates();
  auto it = per_identity_.find(identity);
  return it == per_identity_.end() ? Money{} : it->second.paid;
}

Money Outcome::received_by(IdentityId identity) const {
  ensure_aggregates();
  auto it = per_identity_.find(identity);
  return it == per_identity_.end() ? Money{} : it->second.received;
}

void Outcome::add_rebate(IdentityId identity, Money amount) {
  if (amount < Money{}) {
    throw std::invalid_argument("Outcome::add_rebate: negative rebate");
  }
  rebates_[identity] += amount;
  rebates_total_ += amount;
}

Money Outcome::rebate_of(IdentityId identity) const {
  auto it = rebates_.find(identity);
  return it == rebates_.end() ? Money{} : it->second;
}

bool Outcome::bid_filled(BidId bid) const {
  ensure_aggregates();
  return fills_per_bid_.contains(bid);
}

}  // namespace fnda
