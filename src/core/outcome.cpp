#include "core/outcome.h"

#include <stdexcept>

namespace fnda {

void Outcome::add_buy(BidId bid, IdentityId identity, Money price) {
  fills_.push_back(Fill{Side::kBuyer, bid, identity, price});
  ++buy_count_;
  buyer_payments_ += price;
  auto& entry = per_identity_[identity];
  ++entry.bought;
  entry.paid += price;
  ++fills_per_bid_[bid];
}

void Outcome::add_sell(BidId bid, IdentityId identity, Money price) {
  fills_.push_back(Fill{Side::kSeller, bid, identity, price});
  ++sell_count_;
  seller_receipts_ += price;
  auto& entry = per_identity_[identity];
  ++entry.sold;
  entry.received += price;
  ++fills_per_bid_[bid];
}

std::size_t Outcome::units_bought(IdentityId identity) const {
  auto it = per_identity_.find(identity);
  return it == per_identity_.end() ? 0 : it->second.bought;
}

std::size_t Outcome::units_sold(IdentityId identity) const {
  auto it = per_identity_.find(identity);
  return it == per_identity_.end() ? 0 : it->second.sold;
}

Money Outcome::paid_by(IdentityId identity) const {
  auto it = per_identity_.find(identity);
  return it == per_identity_.end() ? Money{} : it->second.paid;
}

Money Outcome::received_by(IdentityId identity) const {
  auto it = per_identity_.find(identity);
  return it == per_identity_.end() ? Money{} : it->second.received;
}

void Outcome::add_rebate(IdentityId identity, Money amount) {
  if (amount < Money{}) {
    throw std::invalid_argument("Outcome::add_rebate: negative rebate");
  }
  rebates_[identity] += amount;
  rebates_total_ += amount;
}

Money Outcome::rebate_of(IdentityId identity) const {
  auto it = rebates_.find(identity);
  return it == rebates_.end() ? Money{} : it->second;
}

bool Outcome::bid_filled(BidId bid) const {
  return fills_per_bid_.contains(bid);
}

}  // namespace fnda
