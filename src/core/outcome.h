// Clearing outcomes.
//
// Every protocol reduces to a set of unit fills: one unit moving to a buyer
// identity at some price and one unit moving from a seller identity at some
// (possibly different) price.  Uniform-price protocols produce fills that
// all share a price per side; the multi-unit TPD extension produces
// per-unit GVA payments, which this representation captures without a
// special case.
#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/money.h"
#include "core/bid.h"

namespace fnda {

/// One unit bought or sold.  `price` is what the buyer pays (kBuyer fills)
/// or what the seller receives (kSeller fills) for this unit.
struct Fill {
  Side side;
  BidId bid;
  IdentityId identity;
  Money price;

  friend bool operator==(const Fill&, const Fill&) = default;
};

/// Result of one clearing.  Invariant (checked by `validate_outcome`):
/// the number of buyer fills equals the number of seller fills, and the
/// auctioneer revenue (buyer payments minus seller receipts) is
/// non-negative — the auctioneer is a budget balancer, never a subsidiser.
class Outcome {
 public:
  Outcome() = default;

  void add_buy(BidId bid, IdentityId identity, Money price);
  void add_sell(BidId bid, IdentityId identity, Money price);

  /// Pre-sizes the fill vector for `trades` buyer+seller fill pairs.
  /// Protocols that know their trade count up front call this so the hot
  /// Monte-Carlo loops do not grow the container incrementally.
  void reserve(std::size_t trades);

  const std::vector<Fill>& fills() const { return fills_; }

  /// Number of units traded (buyer-side fills; equal to seller-side fills
  /// in any valid outcome).
  std::size_t trade_count() const { return buy_count_; }
  std::size_t buy_fill_count() const { return buy_count_; }
  std::size_t sell_fill_count() const { return sell_count_; }

  /// Credits a non-trade transfer from the auctioneer to an identity
  /// (e.g. a revenue rebate).  Amounts must be non-negative; repeated
  /// credits accumulate.
  void add_rebate(IdentityId identity, Money amount);

  /// Total paid by buyers.
  Money buyer_payments() const { return buyer_payments_; }
  /// Total received by sellers.
  Money seller_receipts() const { return seller_receipts_; }
  /// Rebates granted (zero for the standard protocols).
  Money rebates_total() const { return rebates_total_; }
  Money rebate_of(IdentityId identity) const;
  /// What the budget balancer keeps: payments minus receipts and rebates.
  Money auctioneer_revenue() const {
    return buyer_payments_ - seller_receipts_ - rebates_total_;
  }

  /// Units bought / sold by one identity in this outcome.
  std::size_t units_bought(IdentityId identity) const;
  std::size_t units_sold(IdentityId identity) const;
  /// Total money paid / received by one identity.
  Money paid_by(IdentityId identity) const;
  Money received_by(IdentityId identity) const;

  /// True if `bid` appears in any fill.
  bool bid_filled(BidId bid) const;

 private:
  struct PerIdentity {
    std::size_t bought = 0;
    std::size_t sold = 0;
    Money paid;
    Money received;
  };

  /// The per-identity / per-bid lookup tables are derived views over
  /// `fills_`, built lazily on the first query (and invalidated by later
  /// add_buy/add_sell).  The Monte-Carlo hot loops never query them —
  /// surplus and validation both iterate `fills()` directly — so clearing
  /// stays a plain vector append with no hashing.  Lazy build is not
  /// thread-safe; outcomes are per-thread values everywhere in this
  /// codebase.
  void ensure_aggregates() const;

  std::vector<Fill> fills_;
  std::size_t buy_count_ = 0;
  std::size_t sell_count_ = 0;
  Money buyer_payments_;
  Money seller_receipts_;
  mutable bool aggregates_built_ = false;
  mutable std::unordered_map<IdentityId, PerIdentity> per_identity_;
  mutable std::unordered_map<BidId, std::size_t> fills_per_bid_;
  std::unordered_map<IdentityId, Money> rebates_;
  Money rebates_total_;
};

}  // namespace fnda
