#include "core/validation.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

namespace fnda {

namespace {

/// Hash-table lookup context: builds per-call maps, works for any id
/// assignment.  The reference semantics the dense context must match:
/// first occurrence of a duplicated id wins.
struct MapContext {
  std::unordered_map<BidId, const BidEntry*> buyer_bids;
  std::unordered_map<BidId, const BidEntry*> seller_bids;
  std::unordered_map<BidId, std::size_t> fill_counts;

  void bind(const std::vector<BidEntry>& buyers,
            const std::vector<BidEntry>& sellers) {
    for (const BidEntry& e : buyers) buyer_bids.emplace(e.id, &e);
    for (const BidEntry& e : sellers) seller_bids.emplace(e.id, &e);
  }
  const BidEntry* find(Side side, BidId id) const {
    const auto& lane = side == Side::kBuyer ? buyer_bids : seller_bids;
    const auto it = lane.find(id);
    return it == lane.end() ? nullptr : it->second;
  }
  std::size_t count_fill(BidId id) { return ++fill_counts[id]; }
};

/// Dense lookup context over persistent scratch: direct index by bid id.
/// Eligibility (ids bounded by the lane sizes) is checked by the caller.
struct DenseContext {
  ValidationScratch& scratch;
  explicit DenseContext(ValidationScratch& s) : scratch(s) {}

  void bind(const std::vector<BidEntry>& buyers,
            const std::vector<BidEntry>& sellers, std::size_t id_limit) {
    scratch.buyer_by_id.assign(id_limit, nullptr);
    scratch.seller_by_id.assign(id_limit, nullptr);
    scratch.fill_counts.assign(id_limit, 0);
    for (const BidEntry& e : buyers) {
      const BidEntry*& slot = scratch.buyer_by_id[e.id.value()];
      if (slot == nullptr) slot = &e;
    }
    for (const BidEntry& e : sellers) {
      const BidEntry*& slot = scratch.seller_by_id[e.id.value()];
      if (slot == nullptr) slot = &e;
    }
  }
  const BidEntry* find(Side side, BidId id) const {
    const auto& lane =
        side == Side::kBuyer ? scratch.buyer_by_id : scratch.seller_by_id;
    if (id.value() >= lane.size()) return nullptr;
    return lane[id.value()];
  }
  std::size_t count_fill(BidId id) {
    return ++scratch.fill_counts[id.value()];
  }
};

/// Shared core: every invariant is a function of the declaration set, so
/// both the raw-book and ranked-view overloads funnel through the lanes;
/// the context only decides how bid-id lookup is implemented, so error
/// content and order are identical across contexts.
template <typename Context>
ValidationErrors validate_lanes(const Outcome& outcome,
                                const ValidationOptions& options,
                                Context& ctx) {
  ValidationErrors errors;

  if (outcome.buy_fill_count() != outcome.sell_fill_count()) {
    std::ostringstream os;
    os << "goods not conserved: " << outcome.buy_fill_count()
       << " units bought vs " << outcome.sell_fill_count() << " sold";
    errors.push_back(os.str());
  }

  for (const Fill& fill : outcome.fills()) {
    const BidEntry* found = ctx.find(fill.side, fill.bid);
    if (found == nullptr) {
      std::ostringstream os;
      os << "fill references unknown " << to_string(fill.side) << " bid "
         << fill.bid;
      errors.push_back(os.str());
      continue;
    }
    const BidEntry& bid = *found;
    if (bid.identity != fill.identity) {
      std::ostringstream os;
      os << "fill identity " << fill.identity << " does not match bid "
         << fill.bid << " identity " << bid.identity;
      errors.push_back(os.str());
    }
    if (fill.side == Side::kBuyer && fill.price > bid.value) {
      std::ostringstream os;
      os << "buyer IR violated: bid " << fill.bid << " declared " << bid.value
         << " but pays " << fill.price;
      errors.push_back(os.str());
    }
    if (fill.side == Side::kSeller && fill.price < bid.value) {
      std::ostringstream os;
      os << "seller IR violated: bid " << fill.bid << " declared " << bid.value
         << " but receives " << fill.price;
      errors.push_back(os.str());
    }
    if (ctx.count_fill(fill.bid) > 1) {
      std::ostringstream os;
      os << "single-unit bid " << fill.bid << " filled more than once";
      errors.push_back(os.str());
    }
  }

  if (!options.allow_deficit && outcome.auctioneer_revenue() < Money{}) {
    std::ostringstream os;
    os << "auctioneer subsidises the market: revenue "
       << outcome.auctioneer_revenue();
    errors.push_back(os.str());
  }

  return errors;
}

ValidationErrors validate_mapped(const std::vector<BidEntry>& buyers,
                                 const std::vector<BidEntry>& sellers,
                                 const Outcome& outcome,
                                 const ValidationOptions& options) {
  MapContext ctx;
  ctx.bind(buyers, sellers);
  return validate_lanes(outcome, options, ctx);
}

/// Dense eligibility: every bid id must index a reasonably sized array.
/// Books assign ids 0..n-1 across both sides, so the limit 2n covers the
/// real callers while a pathological sparse book falls back to hashing.
bool dense_ids(const std::vector<BidEntry>& buyers,
               const std::vector<BidEntry>& sellers, std::size_t& id_limit) {
  const std::size_t total = buyers.size() + sellers.size();
  const std::size_t limit = 2 * total + 1;
  std::uint64_t max_id = 0;
  for (const BidEntry& e : buyers) max_id = std::max(max_id, e.id.value());
  for (const BidEntry& e : sellers) max_id = std::max(max_id, e.id.value());
  if (total == 0 || max_id >= limit) return false;
  id_limit = static_cast<std::size_t>(max_id) + 1;
  return true;
}

void throw_on_errors(const ValidationErrors& errors) {
  if (errors.empty()) return;
  std::ostringstream os;
  os << "invalid outcome (" << errors.size() << " violation(s)):";
  for (const std::string& e : errors) os << "\n  - " << e;
  throw std::logic_error(os.str());
}

}  // namespace

ValidationErrors validate_outcome(const OrderBook& book,
                                  const Outcome& outcome,
                                  const ValidationOptions& options) {
  return validate_mapped(book.buyers(), book.sellers(), outcome, options);
}

ValidationErrors validate_outcome(const SortedBook& book,
                                  const Outcome& outcome,
                                  const ValidationOptions& options) {
  return validate_mapped(book.buyers(), book.sellers(), outcome, options);
}

ValidationErrors validate_outcome(const SortedBook& book,
                                  const Outcome& outcome,
                                  ValidationScratch& scratch,
                                  const ValidationOptions& options) {
  std::size_t id_limit = 0;
  if (!dense_ids(book.buyers(), book.sellers(), id_limit)) {
    return validate_mapped(book.buyers(), book.sellers(), outcome, options);
  }
  DenseContext ctx(scratch);
  ctx.bind(book.buyers(), book.sellers(), id_limit);
  return validate_lanes(outcome, options, ctx);
}

void expect_valid_outcome(const OrderBook& book, const Outcome& outcome,
                          const ValidationOptions& options) {
  throw_on_errors(validate_outcome(book, outcome, options));
}

void expect_valid_outcome(const SortedBook& book, const Outcome& outcome,
                          const ValidationOptions& options) {
  throw_on_errors(validate_outcome(book, outcome, options));
}

void expect_valid_outcome(const SortedBook& book, const Outcome& outcome,
                          ValidationScratch& scratch,
                          const ValidationOptions& options) {
  throw_on_errors(validate_outcome(book, outcome, scratch, options));
}

}  // namespace fnda
