#include "core/validation.h"

#include <sstream>
#include <stdexcept>
#include <unordered_map>

namespace fnda {

namespace {

/// Shared core: every invariant is a function of the declaration set, so
/// both the raw-book and ranked-view overloads funnel through the lanes.
ValidationErrors validate_lanes(const std::vector<BidEntry>& buyers,
                                const std::vector<BidEntry>& sellers,
                                const Outcome& outcome,
                                const ValidationOptions& options) {
  ValidationErrors errors;

  std::unordered_map<BidId, const BidEntry*> buyer_bids;
  std::unordered_map<BidId, const BidEntry*> seller_bids;
  for (const BidEntry& e : buyers) buyer_bids.emplace(e.id, &e);
  for (const BidEntry& e : sellers) seller_bids.emplace(e.id, &e);

  if (outcome.buy_fill_count() != outcome.sell_fill_count()) {
    std::ostringstream os;
    os << "goods not conserved: " << outcome.buy_fill_count()
       << " units bought vs " << outcome.sell_fill_count() << " sold";
    errors.push_back(os.str());
  }

  std::unordered_map<BidId, std::size_t> fill_counts;
  for (const Fill& fill : outcome.fills()) {
    const auto& lane = fill.side == Side::kBuyer ? buyer_bids : seller_bids;
    auto it = lane.find(fill.bid);
    if (it == lane.end()) {
      std::ostringstream os;
      os << "fill references unknown " << to_string(fill.side) << " bid "
         << fill.bid;
      errors.push_back(os.str());
      continue;
    }
    const BidEntry& bid = *it->second;
    if (bid.identity != fill.identity) {
      std::ostringstream os;
      os << "fill identity " << fill.identity << " does not match bid "
         << fill.bid << " identity " << bid.identity;
      errors.push_back(os.str());
    }
    if (fill.side == Side::kBuyer && fill.price > bid.value) {
      std::ostringstream os;
      os << "buyer IR violated: bid " << fill.bid << " declared " << bid.value
         << " but pays " << fill.price;
      errors.push_back(os.str());
    }
    if (fill.side == Side::kSeller && fill.price < bid.value) {
      std::ostringstream os;
      os << "seller IR violated: bid " << fill.bid << " declared " << bid.value
         << " but receives " << fill.price;
      errors.push_back(os.str());
    }
    if (++fill_counts[fill.bid] > 1) {
      std::ostringstream os;
      os << "single-unit bid " << fill.bid << " filled more than once";
      errors.push_back(os.str());
    }
  }

  if (!options.allow_deficit && outcome.auctioneer_revenue() < Money{}) {
    std::ostringstream os;
    os << "auctioneer subsidises the market: revenue "
       << outcome.auctioneer_revenue();
    errors.push_back(os.str());
  }

  return errors;
}

void throw_on_errors(const ValidationErrors& errors) {
  if (errors.empty()) return;
  std::ostringstream os;
  os << "invalid outcome (" << errors.size() << " violation(s)):";
  for (const std::string& e : errors) os << "\n  - " << e;
  throw std::logic_error(os.str());
}

}  // namespace

ValidationErrors validate_outcome(const OrderBook& book,
                                  const Outcome& outcome,
                                  const ValidationOptions& options) {
  return validate_lanes(book.buyers(), book.sellers(), outcome, options);
}

ValidationErrors validate_outcome(const SortedBook& book,
                                  const Outcome& outcome,
                                  const ValidationOptions& options) {
  return validate_lanes(book.buyers(), book.sellers(), outcome, options);
}

void expect_valid_outcome(const OrderBook& book, const Outcome& outcome,
                          const ValidationOptions& options) {
  throw_on_errors(validate_outcome(book, outcome, options));
}

void expect_valid_outcome(const SortedBook& book, const Outcome& outcome,
                          const ValidationOptions& options) {
  throw_on_errors(validate_outcome(book, outcome, options));
}

}  // namespace fnda
