#include "core/validation.h"

#include <sstream>
#include <stdexcept>
#include <unordered_map>

namespace fnda {

ValidationErrors validate_outcome(const OrderBook& book,
                                  const Outcome& outcome,
                                  const ValidationOptions& options) {
  ValidationErrors errors;

  std::unordered_map<BidId, const BidEntry*> buyer_bids;
  std::unordered_map<BidId, const BidEntry*> seller_bids;
  for (const BidEntry& e : book.buyers()) buyer_bids.emplace(e.id, &e);
  for (const BidEntry& e : book.sellers()) seller_bids.emplace(e.id, &e);

  if (outcome.buy_fill_count() != outcome.sell_fill_count()) {
    std::ostringstream os;
    os << "goods not conserved: " << outcome.buy_fill_count()
       << " units bought vs " << outcome.sell_fill_count() << " sold";
    errors.push_back(os.str());
  }

  std::unordered_map<BidId, std::size_t> fill_counts;
  for (const Fill& fill : outcome.fills()) {
    const auto& lane = fill.side == Side::kBuyer ? buyer_bids : seller_bids;
    auto it = lane.find(fill.bid);
    if (it == lane.end()) {
      std::ostringstream os;
      os << "fill references unknown " << to_string(fill.side) << " bid "
         << fill.bid;
      errors.push_back(os.str());
      continue;
    }
    const BidEntry& bid = *it->second;
    if (bid.identity != fill.identity) {
      std::ostringstream os;
      os << "fill identity " << fill.identity << " does not match bid "
         << fill.bid << " identity " << bid.identity;
      errors.push_back(os.str());
    }
    if (fill.side == Side::kBuyer && fill.price > bid.value) {
      std::ostringstream os;
      os << "buyer IR violated: bid " << fill.bid << " declared " << bid.value
         << " but pays " << fill.price;
      errors.push_back(os.str());
    }
    if (fill.side == Side::kSeller && fill.price < bid.value) {
      std::ostringstream os;
      os << "seller IR violated: bid " << fill.bid << " declared " << bid.value
         << " but receives " << fill.price;
      errors.push_back(os.str());
    }
    if (++fill_counts[fill.bid] > 1) {
      std::ostringstream os;
      os << "single-unit bid " << fill.bid << " filled more than once";
      errors.push_back(os.str());
    }
  }

  if (!options.allow_deficit && outcome.auctioneer_revenue() < Money{}) {
    std::ostringstream os;
    os << "auctioneer subsidises the market: revenue "
       << outcome.auctioneer_revenue();
    errors.push_back(os.str());
  }

  return errors;
}

void expect_valid_outcome(const OrderBook& book, const Outcome& outcome,
                          const ValidationOptions& options) {
  const ValidationErrors errors = validate_outcome(book, outcome, options);
  if (errors.empty()) return;
  std::ostringstream os;
  os << "invalid outcome (" << errors.size() << " violation(s)):";
  for (const std::string& e : errors) os << "\n  - " << e;
  throw std::logic_error(os.str());
}

}  // namespace fnda
