// Outcome invariant checking.
//
// These checks encode the properties Section 2 demands of any acceptable
// protocol run: material feasibility, individual rationality with respect
// to *declared* values, and a budget-balancing (never subsidising)
// auctioneer.  Tests and the market server run every outcome through them.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/order_book.h"
#include "core/outcome.h"

namespace fnda {

/// Validation findings; empty means the outcome satisfies every invariant.
using ValidationErrors = std::vector<std::string>;

/// Relaxations for protocols that intentionally break an invariant.
struct ValidationOptions {
  /// VCG runs a budget deficit by design; set this to skip the
  /// non-negative-auctioneer-revenue check.
  bool allow_deficit = false;
};

/// Checks `outcome` against the book it was cleared from:
///   - units bought == units sold (goods are conserved);
///   - every fill references a bid present in the book, on the right side;
///   - no single-unit bid fills more than once;
///   - declared individual rationality: a buyer never pays above its
///     declared value, a seller never receives below its declared value;
///   - auctioneer revenue is non-negative.
ValidationErrors validate_outcome(const OrderBook& book,
                                  const Outcome& outcome,
                                  const ValidationOptions& options = {});

/// Same checks against a rank-ordered view: the invariants are functions
/// of the declaration *set*, so a SortedBook (or any incrementally
/// maintained ranking of the same declarations) validates identically.
/// This is the overload the market server's live-book clearing path uses.
ValidationErrors validate_outcome(const SortedBook& book,
                                  const Outcome& outcome,
                                  const ValidationOptions& options = {});

/// Reusable lookup scratch for the per-round hot path.  Books assign bid
/// ids densely (0..n-1 across both sides), so the per-call hash tables
/// the plain overloads build become persistent-capacity arrays indexed by
/// id; a round-frequency caller passing the same scratch re-validates
/// with zero allocation after warm-up.  Falls back to the hashed path —
/// same errors, same order, byte-identical strings — if the ids of the
/// book at hand turn out not to be dense.
struct ValidationScratch {
  std::vector<const BidEntry*> buyer_by_id;
  std::vector<const BidEntry*> seller_by_id;
  std::vector<std::uint32_t> fill_counts;
};

ValidationErrors validate_outcome(const SortedBook& book,
                                  const Outcome& outcome,
                                  ValidationScratch& scratch,
                                  const ValidationOptions& options = {});

/// Throws std::logic_error listing all violations if any check fails.
void expect_valid_outcome(const OrderBook& book, const Outcome& outcome,
                          const ValidationOptions& options = {});
void expect_valid_outcome(const SortedBook& book, const Outcome& outcome,
                          const ValidationOptions& options = {});
void expect_valid_outcome(const SortedBook& book, const Outcome& outcome,
                          ValidationScratch& scratch,
                          const ValidationOptions& options = {});

}  // namespace fnda
