// Protocol interface.
//
// A double-auction protocol is a deterministic function of the rank-ordered
// book (plus any randomness it explicitly draws, e.g. tie-breaking or the
// randomized-threshold baseline).  Protocols are direct revelation
// mechanisms: they see declared values only, never true valuations.
#pragma once

#include <memory>
#include <string>

#include "common/rng.h"
#include "core/order_book.h"
#include "core/outcome.h"

namespace fnda {

/// Abstract discrete-time (call-market) double-auction protocol.
class DoubleAuctionProtocol {
 public:
  virtual ~DoubleAuctionProtocol() = default;

  /// Clears one round.  `rng` supplies tie-breaking (and, for randomized
  /// protocols, allocation randomness); passing the same book and rng
  /// state reproduces the same outcome exactly.
  virtual Outcome clear(const OrderBook& book, Rng& rng) const = 0;

  /// Short stable name used in reports ("tpd", "pmd", ...).
  virtual std::string name() const = 0;

 protected:
  DoubleAuctionProtocol() = default;
  DoubleAuctionProtocol(const DoubleAuctionProtocol&) = default;
  DoubleAuctionProtocol& operator=(const DoubleAuctionProtocol&) = default;
};

using ProtocolPtr = std::unique_ptr<DoubleAuctionProtocol>;

}  // namespace fnda
