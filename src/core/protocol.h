// Protocol interface.
//
// A double-auction protocol is a deterministic function of the rank-ordered
// book (plus any randomness it explicitly draws, e.g. tie-breaking or the
// randomized-threshold baseline).  Protocols are direct revelation
// mechanisms: they see declared values only, never true valuations.
#pragma once

#include <memory>
#include <string>

#include "common/rng.h"
#include "core/order_book.h"
#include "core/outcome.h"

namespace fnda {

/// Abstract discrete-time (call-market) double-auction protocol.
///
/// There are two entry points.  `clear` takes a raw book and is what the
/// market server and one-off callers use; `clear_sorted` consumes a book
/// that has ALREADY been rank-ordered (tie-breaking included) and is the
/// hot path for the Monte-Carlo experiment runners, which build one
/// SortedBook per instance and share it across every registered protocol
/// instead of re-sorting P times.
///
/// Each default delegates to the other — `clear` ranks the book and
/// forwards, `clear_sorted` falls back through the raw-book path — so a
/// subclass must override AT LEAST ONE of them (overriding neither would
/// recurse).  Protocols whose rule is a pure function of the ranking
/// should override `clear_sorted`; the inherited `clear` then stays a
/// thin sort-and-forward wrapper, and both entry points yield identical
/// outcomes for identical rng streams.
class DoubleAuctionProtocol {
 public:
  virtual ~DoubleAuctionProtocol() = default;

  /// Clears one round.  `rng` supplies tie-breaking (and, for randomized
  /// protocols, allocation randomness); passing the same book and rng
  /// state reproduces the same outcome exactly.
  virtual Outcome clear(const OrderBook& book, Rng& rng) const {
    const SortedBook sorted(book, rng);
    return clear_sorted(sorted, rng);
  }

  /// Clears a pre-ranked book.  Tie-breaking is already frozen into
  /// `book`'s ranking; `rng` only supplies protocol-internal randomness
  /// (e.g. the randomized-threshold lottery) and is untouched by the
  /// deterministic protocols.
  virtual Outcome clear_sorted(const SortedBook& book, Rng& rng) const {
    // Fallback for subclasses that only implement the raw-book path:
    // reconstitute an equivalent OrderBook (same entries, rank order),
    // run it through `clear`, and translate the fills back to the
    // original bid IDs (OrderBook::add assigns fresh ones).
    OrderBook raw(book.domain());
    for (const BidEntry& entry : book.buyers()) {
      raw.add_buyer(entry.identity, entry.value);
    }
    for (const BidEntry& entry : book.sellers()) {
      raw.add_seller(entry.identity, entry.value);
    }
    const Outcome cleared = clear(raw, rng);

    const std::size_t buyer_count = book.buyer_count();
    Outcome remapped;
    for (const Fill& fill : cleared.fills()) {
      // Raw IDs are sequential in insertion order: buyers first.
      const std::size_t index = fill.bid.value();
      const BidEntry& original = fill.side == Side::kBuyer
                                     ? book.buyers()[index]
                                     : book.sellers()[index - buyer_count];
      if (fill.side == Side::kBuyer) {
        remapped.add_buy(original.id, original.identity, fill.price);
      } else {
        remapped.add_sell(original.id, original.identity, fill.price);
      }
    }
    for (const BidEntry& entry : book.buyers()) {
      const Money rebate = cleared.rebate_of(entry.identity);
      if (rebate > Money{} && remapped.rebate_of(entry.identity) == Money{}) {
        remapped.add_rebate(entry.identity, rebate);
      }
    }
    for (const BidEntry& entry : book.sellers()) {
      const Money rebate = cleared.rebate_of(entry.identity);
      if (rebate > Money{} && remapped.rebate_of(entry.identity) == Money{}) {
        remapped.add_rebate(entry.identity, rebate);
      }
    }
    return remapped;
  }

  /// Short stable name used in reports ("tpd", "pmd", ...).
  virtual std::string name() const = 0;

 protected:
  DoubleAuctionProtocol() = default;
  DoubleAuctionProtocol(const DoubleAuctionProtocol&) = default;
  DoubleAuctionProtocol& operator=(const DoubleAuctionProtocol&) = default;
};

using ProtocolPtr = std::unique_ptr<DoubleAuctionProtocol>;

}  // namespace fnda
