// Protocol interface.
//
// A double-auction protocol is a deterministic function of the rank-ordered
// book (plus any randomness it explicitly draws, e.g. tie-breaking or the
// randomized-threshold baseline).  Protocols are direct revelation
// mechanisms: they see declared values only, never true valuations.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/order_book.h"
#include "core/outcome.h"

namespace fnda {

/// Sound per-side price bounds over every book reachable from a given
/// ranking by adding at most a known number of extra declarations.  The
/// manipulation-search engine turns a bracket into a utility upper bound
/// (best price the searcher could possibly trade at) and prunes whole
/// candidate subtrees that cannot beat the incumbent.  `valid == false`
/// means the protocol makes no promise — always sound, never prunes.
struct PriceBracket {
  Money buy_floor;     // no buyer fill can pay less than this
  Money sell_ceiling;  // no seller fill can receive more than this
  bool valid = false;
};

/// One of a searching account's declarations as merged into a ranked book:
/// its side, its 1-based rank within that side's lane, and the declared
/// value.  Produced by callers that maintain the merge incrementally and
/// therefore already know where each own declaration landed.
struct OwnDeclaration {
  Side side;
  std::size_t rank = 0;  // 1-based rank in `side`'s lane
  Money value;
  IdentityId identity;
};

/// Aggregate fills of one account across a clearing: what the fast
/// account-position path computes instead of materializing an Outcome.
/// `received` folds in rebates for protocols that grant them, mirroring
/// how the utility model consumes an AccountPosition.
struct AccountFills {
  std::size_t bought = 0;
  std::size_t sold = 0;
  Money paid;
  Money received;
};

/// Shared price bracket for the k-double-auction family (PMD, VCG, k-DA,
/// efficient clearing): with k = efficient_trade_count of the base
/// ranking, every buyer fill pays at least s(k) and every seller fill
/// receives at most b(k).  Inserting D extra declarations shifts any rank
/// statistic by at most D positions and can only raise k, so s'(k') >=
/// s(k - D) and b'(k') <= b(k - D) on every reachable book — the bracket
/// below is sound for any strategy of up to `extra` declarations.
inline PriceBracket k_double_auction_bracket(const SortedBook& ranked,
                                             std::size_t extra) {
  PriceBracket bracket;
  bracket.valid = true;
  const std::size_t k = ranked.efficient_trade_count();
  if (k > extra) {
    bracket.buy_floor = ranked.seller_value(k - extra);
    bracket.sell_ceiling = ranked.buyer_value(k - extra);
  } else {
    bracket.buy_floor = ranked.domain().lowest;
    bracket.sell_ceiling = ranked.domain().highest;
  }
  return bracket;
}

/// Abstract discrete-time (call-market) double-auction protocol.
///
/// There are two entry points.  `clear` takes a raw book and is what the
/// market server and one-off callers use; `clear_sorted` consumes a book
/// that has ALREADY been rank-ordered (tie-breaking included) and is the
/// hot path for the Monte-Carlo experiment runners, which build one
/// SortedBook per instance and share it across every registered protocol
/// instead of re-sorting P times.
///
/// Each default delegates to the other — `clear` ranks the book and
/// forwards, `clear_sorted` falls back through the raw-book path — so a
/// subclass must override AT LEAST ONE of them (overriding neither would
/// recurse).  Protocols whose rule is a pure function of the ranking
/// should override `clear_sorted`; the inherited `clear` then stays a
/// thin sort-and-forward wrapper, and both entry points yield identical
/// outcomes for identical rng streams.
class DoubleAuctionProtocol {
 public:
  virtual ~DoubleAuctionProtocol() = default;

  /// Clears one round.  `rng` supplies tie-breaking (and, for randomized
  /// protocols, allocation randomness); passing the same book and rng
  /// state reproduces the same outcome exactly.
  virtual Outcome clear(const OrderBook& book, Rng& rng) const {
    const SortedBook sorted(book, rng);
    return clear_sorted(sorted, rng);
  }

  /// Clears a pre-ranked book.  Tie-breaking is already frozen into
  /// `book`'s ranking; `rng` only supplies protocol-internal randomness
  /// (e.g. the randomized-threshold lottery) and is untouched by the
  /// deterministic protocols.
  virtual Outcome clear_sorted(const SortedBook& book, Rng& rng) const {
    // Fallback for subclasses that only implement the raw-book path:
    // reconstitute an equivalent OrderBook (same entries, rank order),
    // run it through `clear`, and translate the fills back to the
    // original bid IDs (OrderBook::add assigns fresh ones).
    OrderBook raw(book.domain());
    for (const BidEntry& entry : book.buyers()) {
      raw.add_buyer(entry.identity, entry.value);
    }
    for (const BidEntry& entry : book.sellers()) {
      raw.add_seller(entry.identity, entry.value);
    }
    const Outcome cleared = clear(raw, rng);

    const std::size_t buyer_count = book.buyer_count();
    Outcome remapped;
    for (const Fill& fill : cleared.fills()) {
      // Raw IDs are sequential in insertion order: buyers first.
      const std::size_t index = fill.bid.value();
      const BidEntry& original = fill.side == Side::kBuyer
                                     ? book.buyers()[index]
                                     : book.sellers()[index - buyer_count];
      if (fill.side == Side::kBuyer) {
        remapped.add_buy(original.id, original.identity, fill.price);
      } else {
        remapped.add_sell(original.id, original.identity, fill.price);
      }
    }
    for (const BidEntry& entry : book.buyers()) {
      const Money rebate = cleared.rebate_of(entry.identity);
      if (rebate > Money{} && remapped.rebate_of(entry.identity) == Money{}) {
        remapped.add_rebate(entry.identity, rebate);
      }
    }
    for (const BidEntry& entry : book.sellers()) {
      const Money rebate = cleared.rebate_of(entry.identity);
      if (rebate > Money{} && remapped.rebate_of(entry.identity) == Money{}) {
        remapped.add_rebate(entry.identity, rebate);
      }
    }
    return remapped;
  }

  /// Sound price bounds over every book reachable from `ranked` by
  /// inserting at most `extra_declarations` additional declarations (on
  /// either side).  Used by the manipulation-search engine for bound-based
  /// pruning: a candidate strategy's utility can never exceed what the
  /// bracket's best-case prices allow, so subtrees whose bound cannot beat
  /// the incumbent are skipped without clearing.  The default returns an
  /// invalid bracket (no promise, no pruning), which is always sound;
  /// protocols with rank-statistic pricing override it.
  virtual PriceBracket price_bracket(const SortedBook& ranked,
                                     std::size_t extra_declarations) const {
    (void)ranked;
    (void)extra_declarations;
    return {};
  }

  /// Fast path for the manipulation search: computes ONLY the aggregate
  /// fills (and rebates) of the account owning `own` — each entry names
  /// one of the account's declarations with its known rank in `ranked` —
  /// exactly as `clear_sorted` would attribute them, without materializing
  /// the Outcome.  Contract: every identity in `own` holds exactly one
  /// declaration in the book, and the computation must consume no
  /// randomness (protocols whose allocation depends on `rng` return
  /// false).  Returns false when unsupported; callers then fall back to a
  /// full `clear_sorted`.
  virtual bool account_position(const SortedBook& ranked,
                                const std::vector<OwnDeclaration>& own,
                                AccountFills* out) const {
    (void)ranked;
    (void)own;
    (void)out;
    return false;
  }

  /// Short stable name used in reports ("tpd", "pmd", ...).
  virtual std::string name() const = 0;

 protected:
  DoubleAuctionProtocol() = default;
  DoubleAuctionProtocol(const DoubleAuctionProtocol&) = default;
  DoubleAuctionProtocol& operator=(const DoubleAuctionProtocol&) = default;
};

using ProtocolPtr = std::unique_ptr<DoubleAuctionProtocol>;

}  // namespace fnda
