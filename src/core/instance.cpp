#include "core/instance.h"

namespace fnda {

InstantiatedMarket instantiate_truthful(const SingleUnitInstance& instance) {
  InstantiatedMarket market{OrderBook(instance.domain), {}, {}, {}};
  market.buyer_identities.reserve(instance.buyer_values.size());
  market.seller_identities.reserve(instance.seller_values.size());

  for (std::size_t i = 0; i < instance.buyer_values.size(); ++i) {
    const IdentityId identity{i};
    market.book.add_buyer(identity, instance.buyer_values[i]);
    market.truth.buyer_values.emplace(identity, instance.buyer_values[i]);
    market.buyer_identities.push_back(identity);
  }
  for (std::size_t j = 0; j < instance.seller_values.size(); ++j) {
    const IdentityId identity{kSellerIdentityBase + j};
    market.book.add_seller(identity, instance.seller_values[j]);
    market.truth.seller_values.emplace(identity, instance.seller_values[j]);
    market.seller_identities.push_back(identity);
  }
  return market;
}

}  // namespace fnda
