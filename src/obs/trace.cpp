#include "obs/trace.h"

#include <ostream>

namespace fnda::obs {
namespace {

/// Chrome trace names are fixed labels from the instrumentation sites;
/// escape anyway so a stray quote can never corrupt the document.
void write_escaped(std::ostream& os, const char* text) {
  os << '"';
  for (const char* p = text; *p != '\0'; ++p) {
    const char c = *p;
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          const char* hex = "0123456789abcdef";
          os << "\\u00" << hex[(c >> 4) & 0xf] << hex[c & 0xf];
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

void TraceLog::append(const TraceSink& sink, std::string thread_name) {
  threads.push_back(Thread{sink.tid(), std::move(thread_name)});
  events.insert(events.end(), sink.events().begin(), sink.events().end());
  dropped += sink.dropped();
}

void write_chrome_trace(std::ostream& os, const TraceLog& log) {
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const TraceLog::Thread& thread : log.threads) {
    if (!first) os << ',';
    first = false;
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":"
       << thread.tid << ",\"args\":{\"name\":";
    write_escaped(os, thread.name.c_str());
    os << "}}";
  }
  for (const TraceEvent& event : log.events) {
    if (!first) os << ',';
    first = false;
    os << "{\"name\":";
    write_escaped(os, event.name);
    os << ",\"cat\":";
    write_escaped(os, event.category);
    os << ",\"ph\":\"X\",\"ts\":" << event.ts_micros
       << ",\"dur\":" << event.dur_micros << ",\"pid\":1,\"tid\":"
       << event.tid << '}';
  }
  os << "],\"displayTimeUnit\":\"ms\"}\n";
}

}  // namespace fnda::obs
