// Chrome trace_event spans for the sharded exchange.
//
// Each shard (plus the epoch driver) owns a TraceSink: a fixed-capacity
// ring of complete ("ph":"X") events recorded by RAII TraceScope spans or
// by explicit record_span calls.  Timestamps come from the sink's clock —
// the owning shard's simulated clock by default, so traces are
// bit-identical for every worker count; a session may opt into wall-clock
// timestamps (market-bench --trace-wallclock), which trades determinism
// for real CPU durations.
//
// The ring keeps the FIRST `capacity` events and counts the rest as
// dropped (a deterministic policy — which events survive depends only on
// the shard's own event order, never on thread timing).  Sinks are
// flushed once, at session end, in shard order; write_chrome_trace emits
// the standard {"traceEvents":[...]} JSON that chrome://tracing and
// Perfetto load directly.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

namespace fnda::obs {

/// One complete event.  `name` and `category` point at string literals —
/// trace call sites use fixed labels, so the ring stores 32 bytes per
/// event and recording never allocates.
struct TraceEvent {
  const char* name = "";
  const char* category = "";
  std::int64_t ts_micros = 0;
  std::int64_t dur_micros = 0;
  std::uint32_t tid = 0;
};

class TraceSink {
 public:
  static constexpr std::size_t kDefaultCapacity = std::size_t{1} << 16;

  explicit TraceSink(std::uint32_t tid = 0,
                     std::size_t capacity = kDefaultCapacity)
      : tid_(tid), capacity_(capacity == 0 ? 1 : capacity) {}

  /// The clock spans read (microseconds).  Unset sinks record ts 0 —
  /// wiring always installs either the shard's sim clock or the session
  /// wall clock.
  void set_clock(std::function<std::int64_t()> clock) {
    clock_ = std::move(clock);
  }
  std::int64_t now() const { return clock_ ? clock_() : 0; }

  /// Runtime recording gate (`trace start|stop` on the console).  A
  /// stopped sink drops spans silently — not counted as ring overflow, so
  /// stop/start never perturbs the dropped counter the tests pin.
  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

#ifndef FNDA_NO_TELEMETRY
  void record_span(const char* name, const char* category,
                   std::int64_t ts_micros, std::int64_t dur_micros) {
    if (!enabled_) return;
    if (events_.size() >= capacity_) {
      ++dropped_;
      return;
    }
    events_.push_back(TraceEvent{name, category, ts_micros, dur_micros, tid_});
  }
  const std::vector<TraceEvent>& events() const { return events_; }
  std::uint64_t dropped() const { return dropped_; }
#else
  void record_span(const char*, const char*, std::int64_t, std::int64_t) {}
  const std::vector<TraceEvent>& events() const { return events_; }
  std::uint64_t dropped() const { return 0; }
#endif

  std::uint32_t tid() const { return tid_; }

 private:
  std::uint32_t tid_ = 0;
  std::size_t capacity_;
  bool enabled_ = true;
  std::function<std::int64_t()> clock_;
  std::vector<TraceEvent> events_;
#ifndef FNDA_NO_TELEMETRY
  std::uint64_t dropped_ = 0;
#endif
};

/// RAII span: records [construction, destruction) against the sink's
/// clock.  A null sink makes the scope free (telemetry disabled at
/// runtime); FNDA_NO_TELEMETRY makes it free at compile time.
class TraceScope {
 public:
  TraceScope(TraceSink* sink, const char* name, const char* category)
#ifndef FNDA_NO_TELEMETRY
      : sink_(sink), name_(name), category_(category) {
    if (sink_ != nullptr) start_ = sink_->now();
  }
  ~TraceScope() {
    if (sink_ != nullptr) {
      sink_->record_span(name_, category_, start_, sink_->now() - start_);
    }
  }
#else
  {
    (void)sink;
    (void)name;
    (void)category;
  }
#endif
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

#ifndef FNDA_NO_TELEMETRY
 private:
  TraceSink* sink_;
  const char* name_;
  const char* category_;
  std::int64_t start_ = 0;
#endif
};

/// A session's flushed trace: thread names plus every sink's events in
/// flush order (driver first, then shards in shard order).
struct TraceLog {
  struct Thread {
    std::uint32_t tid = 0;
    std::string name;
  };
  std::vector<Thread> threads;
  std::vector<TraceEvent> events;
  std::uint64_t dropped = 0;

  void append(const TraceSink& sink, std::string thread_name);
};

/// Writes {"traceEvents":[...]} — thread_name metadata first, then the
/// events verbatim in log order.
void write_chrome_trace(std::ostream& os, const TraceLog& log);

}  // namespace fnda::obs
