// Snapshot exposition: Prometheus text format and a JSON document.
//
// Both writers emit only integers (counts, micro-unit sums, bucket
// bounds), never floating point, so the byte stream is a pure function of
// the deterministic snapshot — the property the threads-1-vs-8
// bit-identity tests pin.
#pragma once

#include <iosfwd>
#include <string>

#include "obs/metrics.h"

namespace fnda::obs {

/// Prometheus text exposition (# TYPE lines, histograms as cumulative
/// `le` buckets — only non-empty buckets are written, plus `+Inf`).
void write_prometheus(std::ostream& os, const MetricsSnapshot& snapshot);

/// The same snapshot as one JSON object:
/// {"metrics":{"name":{"type":"counter","value":N}, ...}}.  Histograms
/// carry count/sum/max plus parallel bound/count arrays.
void write_json_snapshot(std::ostream& os, const MetricsSnapshot& snapshot);

/// Convenience: write_prometheus into a string (tests, digests).
std::string prometheus_text(const MetricsSnapshot& snapshot);

}  // namespace fnda::obs
