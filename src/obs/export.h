// Snapshot exposition: Prometheus text format and a JSON document.
//
// Both writers emit only integers (counts, micro-unit sums, bucket
// bounds), never floating point, so the byte stream is a pure function of
// the deterministic snapshot — the property the threads-1-vs-8
// bit-identity tests pin.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "obs/metrics.h"

namespace fnda::obs {

/// Escapes a Prometheus label value per the exposition format: backslash,
/// double quote, and newline get backslash escapes.  The built-in writers
/// only ever emit integer `le` bounds (escape-free by construction), but
/// the ops layer emits operator-supplied strings through this.
std::string prometheus_escape_label(std::string_view value);

/// Quantile readout from a histogram snapshot value: the upper bound of
/// the bucket holding the rank-ceil(q*count) sample (nearest-rank, so a
/// sample recorded exactly at a bucket bound reads back exactly).  q >= 1
/// returns the recorded max; an empty histogram (or a scalar kind)
/// returns 0.  Deterministic: pure function of the snapshot.
std::uint64_t snapshot_quantile(const MetricValue& value, double q);

/// Prometheus text exposition (# TYPE lines, histograms as cumulative
/// `le` buckets — only non-empty buckets are written, plus `+Inf`).
void write_prometheus(std::ostream& os, const MetricsSnapshot& snapshot);

/// The same snapshot as one JSON object:
/// {"metrics":{"name":{"type":"counter","value":N}, ...}}.  Histograms
/// carry count/sum/max plus parallel bound/count arrays.
void write_json_snapshot(std::ostream& os, const MetricsSnapshot& snapshot);

/// Convenience: write_prometheus into a string (tests, digests).
std::string prometheus_text(const MetricsSnapshot& snapshot);

}  // namespace fnda::obs
