// Unified metrics layer: counters, gauges, and HDR-style histograms.
//
// Every hot component of the sharded exchange owns (or binds into) one
// MetricsRegistry per shard.  A registry is deliberately NOT thread-safe:
// a shard's registry is touched only by the worker thread that owns the
// shard (or by the epoch barrier's single-threaded completion step), so
// recording is a plain 64-bit increment — lock-free by construction, the
// same discipline the per-shard BusStats counters already follow.
// Cross-shard aggregation happens only on quiescent snapshots, merged in
// shard order, so the merged output is bit-identical for every worker
// count.
//
// Determinism contract: nothing recorded into a registry on the
// simulation path may derive from the wall clock — histogram samples are
// sim-time durations (delivery latency, epoch advance) or pure counts
// (batch sizes, queue depths).  Wall-clock instrumentation (barrier
// stalls, round-close CPU time) is opt-in behind the session's wallclock
// flag and documented as nondeterministic.
//
// Compiling with -DFNDA_NO_TELEMETRY turns every recording method into an
// inline no-op (empty Counter/Gauge/Histogram bodies; callback-bound
// metrics still read their underlying cells, which are functional state
// that exists either way).  Registration and exposition stay compiled —
// they are wiring-time and session-end code — so call sites never change.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace fnda::obs {

// ---------------------------------------------------------------------------
// Instruments.

/// Monotone event count.  64-bit, wraps never in practice.
class Counter {
 public:
#ifndef FNDA_NO_TELEMETRY
  void add(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
#else
  void add(std::uint64_t = 1) {}
  std::uint64_t value() const { return 0; }
#endif
};

/// Point-in-time signed value.  Merge policy is chosen at registration:
/// totals (escrow held) sum across shards, watermarks (peak queue depth)
/// take the max.
class Gauge {
 public:
#ifndef FNDA_NO_TELEMETRY
  void set(std::int64_t v) { value_ = v; }
  void raise_to(std::int64_t v) {
    if (v > value_) value_ = v;
  }
  std::int64_t value() const { return value_; }

 private:
  std::int64_t value_ = 0;
#else
  void set(std::int64_t) {}
  void raise_to(std::int64_t) {}
  std::int64_t value() const { return 0; }
#endif
};

/// Log-bucketed HDR-style histogram over non-negative 64-bit values
/// (negative samples clamp to 0 — callers record durations and counts,
/// both naturally non-negative).
///
/// Bucketing: values below kSubBuckets get exact unit buckets; above
/// that, each power-of-two octave is split into kSubBuckets linear
/// sub-buckets, bounding the relative quantization error at
/// 1/kSubBuckets = 12.5%.  The whole u64 range maps into kBucketCount
/// fixed buckets, so recording is a bit-scan plus two increments and the
/// memory footprint is a flat 4 KiB array — fixed-point friendly, no
/// allocation, bit-identical to merge.
class Histogram {
 public:
  static constexpr int kSubBucketBits = 3;
  static constexpr std::uint64_t kSubBuckets = std::uint64_t{1}
                                               << kSubBucketBits;
  /// Octaves 3..63 contribute kSubBuckets buckets each, on top of the
  /// kSubBuckets exact unit buckets: (64 - kSubBucketBits) * 8 + 8 = 496.
  static constexpr std::size_t kBucketCount =
      (64 - kSubBucketBits + 1) * static_cast<std::size_t>(kSubBuckets);

  /// The bucket a value lands in.  Pure function, shared with exposition
  /// and the tests that pin the power-of-two edges.
  static constexpr std::size_t bucket_index(std::uint64_t value) {
    if (value < kSubBuckets) return static_cast<std::size_t>(value);
    int msb = 0;
#if defined(__GNUC__) || defined(__clang__)
    // Hardware bit-scan on the recording hot path (one lzcnt/bsr); the
    // builtin is constexpr-safe on these toolchains.
    msb = 63 - __builtin_clzll(value);
#else
    for (std::uint64_t v = value; v > 1; v >>= 1) ++msb;
#endif
    const int shift = msb - kSubBucketBits;
    const std::uint64_t sub = (value >> shift) - kSubBuckets;
    return static_cast<std::size_t>(
        (static_cast<std::uint64_t>(msb - kSubBucketBits + 1)
         << kSubBucketBits) +
        sub);
  }

  /// Largest value mapping into `bucket` (the Prometheus `le` bound).
  static constexpr std::uint64_t bucket_upper_bound(std::size_t bucket) {
    if (bucket < kSubBuckets) return bucket;
    const std::uint64_t group = (bucket >> kSubBucketBits) - 1;  // >= 0
    const std::uint64_t sub = bucket & (kSubBuckets - 1);
    // Inverse of bucket_index: values in [ (sub+8)<<group, (sub+9)<<group ).
    return ((sub + kSubBuckets + 1) << group) - 1;
  }

#ifndef FNDA_NO_TELEMETRY
  void record(std::int64_t sample) {
    const std::uint64_t value =
        sample < 0 ? 0 : static_cast<std::uint64_t>(sample);
    ++counts_[bucket_index(value)];
    ++count_;
    sum_ += value;
    if (value > max_) max_ = value;
  }

  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  std::uint64_t max() const { return max_; }
  std::uint64_t bucket_count(std::size_t bucket) const {
    return counts_[bucket];
  }

 private:
  // Inline flat array (not a vector): recording must not chase a data
  // pointer, and the registry heap-allocates the Histogram anyway.
  std::array<std::uint64_t, kBucketCount> counts_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t max_ = 0;
#else
  void record(std::int64_t) {}
  std::uint64_t count() const { return 0; }
  std::uint64_t sum() const { return 0; }
  std::uint64_t max() const { return 0; }
  std::uint64_t bucket_count(std::size_t) const { return 0; }
#endif
};

// The top octave (msb 63) must map inside the flat array: UINT64_MAX
// lands in the very last bucket.
static_assert(Histogram::bucket_index(~std::uint64_t{0}) ==
              Histogram::kBucketCount - 1);

// ---------------------------------------------------------------------------
// Registry and snapshots.

enum class MetricKind { kCounter, kGauge, kHistogram };
enum class GaugeMerge { kSum, kMax };

/// One metric's frozen value, detached from the live instruments.  The
/// snapshot is the only thing that crosses shards, and only after every
/// worker has quiesced.
struct MetricValue {
  MetricKind kind = MetricKind::kCounter;
  GaugeMerge gauge_merge = GaugeMerge::kSum;
  std::uint64_t counter = 0;
  std::int64_t gauge = 0;
  // Histogram payload (empty for scalar kinds): sparse (bucket, count)
  // pairs in bucket order, plus the running aggregates.
  std::vector<std::pair<std::uint32_t, std::uint64_t>> buckets;
  std::uint64_t hist_count = 0;
  std::uint64_t hist_sum = 0;
  std::uint64_t hist_max = 0;
};

/// Name -> value, sorted by name.  merge_from folds another snapshot in
/// (sum counters/histograms, sum-or-max gauges); folding shard snapshots
/// in shard order is the deterministic session aggregate.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, MetricValue>> metrics;

  void merge_from(const MetricsSnapshot& other);
  const MetricValue* find(const std::string& name) const;
};

/// Per-shard metric namespace.  Owns its instruments (stable addresses —
/// components cache raw pointers at wiring time) and can additionally
/// bind *callback* metrics that read an external cell at snapshot time:
/// that is how the pre-existing BusStats / EpochStats / LiveBookStats
/// structs surface in the unified output without moving their storage or
/// touching their hot-path increments.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create; the returned reference is stable for the registry's
  /// lifetime.  Re-requesting a name with a different kind throws.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name, GaugeMerge merge = GaugeMerge::kSum);
  Histogram& histogram(const std::string& name);

  /// Snapshot-time callback metrics (no owned storage).  Registering a
  /// duplicate name throws.
  void counter_fn(const std::string& name,
                  std::function<std::uint64_t()> read);
  void gauge_fn(const std::string& name, std::function<std::int64_t()> read,
                GaugeMerge merge = GaugeMerge::kSum);

  /// Freezes every metric into a name-sorted snapshot.
  MetricsSnapshot snapshot() const;

  std::size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    std::string name;
    MetricKind kind = MetricKind::kCounter;
    GaugeMerge gauge_merge = GaugeMerge::kSum;
    // Exactly one of the owned instruments or a callback is live.
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    std::function<std::uint64_t()> read_counter;
    std::function<std::int64_t()> read_gauge;
  };

  Entry* find_entry(const std::string& name);
  Entry& add_entry(const std::string& name, MetricKind kind);

  std::vector<std::unique_ptr<Entry>> entries_;
};

}  // namespace fnda::obs
