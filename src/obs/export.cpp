#include "obs/export.h"

#include <ostream>
#include <sstream>

namespace fnda::obs {
namespace {

const char* type_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "untyped";
}

}  // namespace

void write_prometheus(std::ostream& os, const MetricsSnapshot& snapshot) {
  for (const auto& [name, value] : snapshot.metrics) {
    os << "# TYPE " << name << ' ' << type_name(value.kind) << '\n';
    switch (value.kind) {
      case MetricKind::kCounter:
        os << name << ' ' << value.counter << '\n';
        break;
      case MetricKind::kGauge:
        os << name << ' ' << value.gauge << '\n';
        break;
      case MetricKind::kHistogram: {
        std::uint64_t cumulative = 0;
        for (const auto& [bucket, count] : value.buckets) {
          cumulative += count;
          os << name << "_bucket{le=\""
             << Histogram::bucket_upper_bound(bucket) << "\"} " << cumulative
             << '\n';
        }
        os << name << "_bucket{le=\"+Inf\"} " << value.hist_count << '\n'
           << name << "_sum " << value.hist_sum << '\n'
           << name << "_count " << value.hist_count << '\n';
        break;
      }
    }
  }
}

void write_json_snapshot(std::ostream& os, const MetricsSnapshot& snapshot) {
  os << "{\"metrics\":{";
  bool first = true;
  for (const auto& [name, value] : snapshot.metrics) {
    if (!first) os << ',';
    first = false;
    os << '"' << name << "\":{\"type\":\"" << type_name(value.kind) << '"';
    switch (value.kind) {
      case MetricKind::kCounter:
        os << ",\"value\":" << value.counter;
        break;
      case MetricKind::kGauge:
        os << ",\"value\":" << value.gauge;
        break;
      case MetricKind::kHistogram: {
        os << ",\"count\":" << value.hist_count << ",\"sum\":"
           << value.hist_sum << ",\"max\":" << value.hist_max
           << ",\"bounds\":[";
        bool first_bucket = true;
        for (const auto& [bucket, count] : value.buckets) {
          (void)count;
          if (!first_bucket) os << ',';
          first_bucket = false;
          os << Histogram::bucket_upper_bound(bucket);
        }
        os << "],\"counts\":[";
        first_bucket = true;
        for (const auto& [bucket, count] : value.buckets) {
          (void)bucket;
          if (!first_bucket) os << ',';
          first_bucket = false;
          os << count;
        }
        os << ']';
        break;
      }
    }
    os << '}';
  }
  os << "}}\n";
}

std::string prometheus_text(const MetricsSnapshot& snapshot) {
  std::ostringstream os;
  write_prometheus(os, snapshot);
  return os.str();
}

}  // namespace fnda::obs
