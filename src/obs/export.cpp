#include "obs/export.h"

#include <cmath>
#include <ostream>
#include <sstream>

namespace fnda::obs {
namespace {

const char* type_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "untyped";
}

}  // namespace

std::string prometheus_escape_label(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::uint64_t snapshot_quantile(const MetricValue& value, double q) {
  if (value.kind != MetricKind::kHistogram || value.hist_count == 0) return 0;
  if (q >= 1.0) return value.hist_max;
  if (q < 0.0) q = 0.0;
  // Nearest-rank: the smallest bucket whose cumulative count reaches
  // ceil(q * count), floored at rank 1 so q = 0 reads the minimum bucket.
  const double exact = q * static_cast<double>(value.hist_count);
  std::uint64_t rank = static_cast<std::uint64_t>(std::ceil(exact));
  if (rank == 0) rank = 1;
  std::uint64_t cumulative = 0;
  for (const auto& [bucket, count] : value.buckets) {
    cumulative += count;
    if (cumulative >= rank) return Histogram::bucket_upper_bound(bucket);
  }
  return value.hist_max;
}

void write_prometheus(std::ostream& os, const MetricsSnapshot& snapshot) {
  for (const auto& [name, value] : snapshot.metrics) {
    os << "# TYPE " << name << ' ' << type_name(value.kind) << '\n';
    switch (value.kind) {
      case MetricKind::kCounter:
        os << name << ' ' << value.counter << '\n';
        break;
      case MetricKind::kGauge:
        os << name << ' ' << value.gauge << '\n';
        break;
      case MetricKind::kHistogram: {
        std::uint64_t cumulative = 0;
        for (const auto& [bucket, count] : value.buckets) {
          cumulative += count;
          os << name << "_bucket{le=\""
             << Histogram::bucket_upper_bound(bucket) << "\"} " << cumulative
             << '\n';
        }
        os << name << "_bucket{le=\"+Inf\"} " << value.hist_count << '\n'
           << name << "_sum " << value.hist_sum << '\n'
           << name << "_count " << value.hist_count << '\n';
        break;
      }
    }
  }
}

void write_json_snapshot(std::ostream& os, const MetricsSnapshot& snapshot) {
  os << "{\"metrics\":{";
  bool first = true;
  for (const auto& [name, value] : snapshot.metrics) {
    if (!first) os << ',';
    first = false;
    os << '"' << name << "\":{\"type\":\"" << type_name(value.kind) << '"';
    switch (value.kind) {
      case MetricKind::kCounter:
        os << ",\"value\":" << value.counter;
        break;
      case MetricKind::kGauge:
        os << ",\"value\":" << value.gauge;
        break;
      case MetricKind::kHistogram: {
        os << ",\"count\":" << value.hist_count << ",\"sum\":"
           << value.hist_sum << ",\"max\":" << value.hist_max
           << ",\"bounds\":[";
        bool first_bucket = true;
        for (const auto& [bucket, count] : value.buckets) {
          (void)count;
          if (!first_bucket) os << ',';
          first_bucket = false;
          os << Histogram::bucket_upper_bound(bucket);
        }
        os << "],\"counts\":[";
        first_bucket = true;
        for (const auto& [bucket, count] : value.buckets) {
          (void)bucket;
          if (!first_bucket) os << ',';
          first_bucket = false;
          os << count;
        }
        os << ']';
        break;
      }
    }
    os << '}';
  }
  os << "}}\n";
}

std::string prometheus_text(const MetricsSnapshot& snapshot) {
  std::ostringstream os;
  write_prometheus(os, snapshot);
  return os.str();
}

}  // namespace fnda::obs
