#include "obs/telemetry.h"

#include <string>

namespace fnda::obs {

SessionTelemetry::SessionTelemetry(std::size_t shards,
                                   TelemetryOptions options)
    : options_(options),
      start_(std::chrono::steady_clock::now()),
      driver_(0, options.trace_capacity) {
  for (std::size_t s = 0; s < shards; ++s) {
    shards_.emplace_back(static_cast<std::uint32_t>(s + 1),
                         options.trace_capacity);
  }
}

std::int64_t SessionTelemetry::wall_micros() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - start_)
      .count();
}

MetricsSnapshot SessionTelemetry::merged_snapshot() const {
  MetricsSnapshot merged = driver_.metrics.snapshot();
  for (const ShardTelemetry& shard : shards_) {
    merged.merge_from(shard.metrics.snapshot());
  }
  return merged;
}

TraceLog SessionTelemetry::flush_trace() const {
  TraceLog log;
  log.append(driver_.trace, "epoch-driver");
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    log.append(shards_[s].trace, "shard-" + std::to_string(s));
  }
  return log;
}

}  // namespace fnda::obs
