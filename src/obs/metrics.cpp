#include "obs/metrics.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace fnda::obs {

void MetricsSnapshot::merge_from(const MetricsSnapshot& other) {
  for (const auto& [name, value] : other.metrics) {
    auto it = std::find_if(
        metrics.begin(), metrics.end(),
        [&name = name](const auto& entry) { return entry.first == name; });
    if (it == metrics.end()) {
      metrics.emplace_back(name, value);
      continue;
    }
    MetricValue& mine = it->second;
    if (mine.kind != value.kind) {
      throw std::logic_error("MetricsSnapshot: kind mismatch for " + name);
    }
    switch (value.kind) {
      case MetricKind::kCounter:
        mine.counter += value.counter;
        break;
      case MetricKind::kGauge:
        if (mine.gauge_merge == GaugeMerge::kMax) {
          mine.gauge = std::max(mine.gauge, value.gauge);
        } else {
          mine.gauge += value.gauge;
        }
        break;
      case MetricKind::kHistogram: {
        // Merge the sparse bucket lists (both are in bucket order).
        std::vector<std::pair<std::uint32_t, std::uint64_t>> merged;
        merged.reserve(mine.buckets.size() + value.buckets.size());
        std::size_t a = 0;
        std::size_t b = 0;
        while (a < mine.buckets.size() || b < value.buckets.size()) {
          if (b >= value.buckets.size() ||
              (a < mine.buckets.size() &&
               mine.buckets[a].first < value.buckets[b].first)) {
            merged.push_back(mine.buckets[a++]);
          } else if (a >= mine.buckets.size() ||
                     value.buckets[b].first < mine.buckets[a].first) {
            merged.push_back(value.buckets[b++]);
          } else {
            merged.emplace_back(mine.buckets[a].first,
                                mine.buckets[a].second +
                                    value.buckets[b].second);
            ++a;
            ++b;
          }
        }
        mine.buckets = std::move(merged);
        mine.hist_count += value.hist_count;
        mine.hist_sum += value.hist_sum;
        mine.hist_max = std::max(mine.hist_max, value.hist_max);
        break;
      }
    }
  }
  std::sort(metrics.begin(), metrics.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
}

const MetricValue* MetricsSnapshot::find(const std::string& name) const {
  for (const auto& [key, value] : metrics) {
    if (key == name) return &value;
  }
  return nullptr;
}

MetricsRegistry::Entry* MetricsRegistry::find_entry(const std::string& name) {
  for (const auto& entry : entries_) {
    if (entry->name == name) return entry.get();
  }
  return nullptr;
}

MetricsRegistry::Entry& MetricsRegistry::add_entry(const std::string& name,
                                                   MetricKind kind) {
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->kind = kind;
  entries_.push_back(std::move(entry));
  return *entries_.back();
}

Counter& MetricsRegistry::counter(const std::string& name) {
  if (Entry* existing = find_entry(name)) {
    if (existing->kind != MetricKind::kCounter ||
        existing->counter == nullptr) {
      throw std::logic_error("MetricsRegistry: " + name +
                             " is not an owned counter");
    }
    return *existing->counter;
  }
  Entry& entry = add_entry(name, MetricKind::kCounter);
  entry.counter = std::make_unique<Counter>();
  return *entry.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name, GaugeMerge merge) {
  if (Entry* existing = find_entry(name)) {
    if (existing->kind != MetricKind::kGauge || existing->gauge == nullptr) {
      throw std::logic_error("MetricsRegistry: " + name +
                             " is not an owned gauge");
    }
    return *existing->gauge;
  }
  Entry& entry = add_entry(name, MetricKind::kGauge);
  entry.gauge_merge = merge;
  entry.gauge = std::make_unique<Gauge>();
  return *entry.gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  if (Entry* existing = find_entry(name)) {
    if (existing->kind != MetricKind::kHistogram ||
        existing->histogram == nullptr) {
      throw std::logic_error("MetricsRegistry: " + name +
                             " is not a histogram");
    }
    return *existing->histogram;
  }
  Entry& entry = add_entry(name, MetricKind::kHistogram);
  entry.histogram = std::make_unique<Histogram>();
  return *entry.histogram;
}

void MetricsRegistry::counter_fn(const std::string& name,
                                 std::function<std::uint64_t()> read) {
  if (find_entry(name) != nullptr) {
    throw std::logic_error("MetricsRegistry: duplicate metric " + name);
  }
  add_entry(name, MetricKind::kCounter).read_counter = std::move(read);
}

void MetricsRegistry::gauge_fn(const std::string& name,
                               std::function<std::int64_t()> read,
                               GaugeMerge merge) {
  if (find_entry(name) != nullptr) {
    throw std::logic_error("MetricsRegistry: duplicate metric " + name);
  }
  Entry& entry = add_entry(name, MetricKind::kGauge);
  entry.gauge_merge = merge;
  entry.read_gauge = std::move(read);
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  snap.metrics.reserve(entries_.size());
  for (const auto& entry : entries_) {
    MetricValue value;
    value.kind = entry->kind;
    value.gauge_merge = entry->gauge_merge;
    switch (entry->kind) {
      case MetricKind::kCounter:
        value.counter = entry->read_counter ? entry->read_counter()
                                            : entry->counter->value();
        break;
      case MetricKind::kGauge:
        value.gauge =
            entry->read_gauge ? entry->read_gauge() : entry->gauge->value();
        break;
      case MetricKind::kHistogram: {
        const Histogram& hist = *entry->histogram;
        value.hist_count = hist.count();
        value.hist_sum = hist.sum();
        value.hist_max = hist.max();
        for (std::size_t b = 0; b < Histogram::kBucketCount; ++b) {
          const std::uint64_t n = hist.bucket_count(b);
          if (n != 0) {
            value.buckets.emplace_back(static_cast<std::uint32_t>(b), n);
          }
        }
        break;
      }
    }
    snap.metrics.emplace_back(entry->name, std::move(value));
  }
  std::sort(
      snap.metrics.begin(), snap.metrics.end(),
      [](const auto& a, const auto& b) { return a.first < b.first; });
  return snap;
}

}  // namespace fnda::obs
