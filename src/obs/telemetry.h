// Session-level telemetry: one metrics registry + trace sink per shard,
// plus one for the epoch driver, owned as a unit by the exchange.
//
// Aggregation contract: merged_snapshot() folds the driver registry and
// then every shard registry IN SHARD ORDER; flush_trace() concatenates
// the driver sink and then every shard sink in shard order.  Each
// per-shard stream is produced by deterministic single-threaded
// execution, so both outputs are bit-identical for every worker count —
// the property `fnda market-bench --metrics-out/--trace-out` exposes and
// the obs tests pin against golden digests.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace fnda::obs {

struct TelemetryOptions {
  /// Runtime master switch: disabled sessions wire no telemetry at all
  /// (components keep null instrument pointers), which is the in-binary
  /// baseline the <2% overhead bench compares against.  Compiling with
  /// FNDA_NO_TELEMETRY additionally empties the instruments themselves.
  bool enabled = true;
  /// Wall-clock mode: trace timestamps come from the session steady
  /// clock and the wall-clock histograms (epoch barrier stall,
  /// round-close CPU time) are recorded.  Nondeterministic by nature —
  /// never enabled on the replay/digest paths.
  bool wallclock = false;
  std::size_t trace_capacity = TraceSink::kDefaultCapacity;
};

/// One event loop's private telemetry world (a shard, or the driver).
struct ShardTelemetry {
  ShardTelemetry(std::uint32_t tid, std::size_t trace_capacity)
      : trace(tid, trace_capacity) {}

  MetricsRegistry metrics;
  TraceSink trace;
};

class SessionTelemetry {
 public:
  /// Driver gets tid 0; shard s gets tid s + 1.
  SessionTelemetry(std::size_t shards, TelemetryOptions options);
  SessionTelemetry(const SessionTelemetry&) = delete;
  SessionTelemetry& operator=(const SessionTelemetry&) = delete;

  const TelemetryOptions& options() const { return options_; }
  bool wallclock() const { return options_.wallclock; }

  ShardTelemetry& driver() { return driver_; }
  ShardTelemetry& shard(std::size_t s) { return shards_[s]; }
  std::size_t shard_count() const { return shards_.size(); }

  /// Gates span recording on every sink at once (`trace start|stop`).
  /// Quiescent callers only, like the snapshot accessors.
  void set_trace_enabled(bool enabled) {
    driver_.trace.set_enabled(enabled);
    for (ShardTelemetry& shard : shards_) shard.trace.set_enabled(enabled);
  }
  bool trace_enabled() const { return driver_.trace.enabled(); }

  /// Steady-clock microseconds since session construction (the wall
  /// clock behind --trace-wallclock; never consulted in sim-time mode).
  std::int64_t wall_micros() const;

  /// Driver + shards in shard order; quiescent callers only.
  MetricsSnapshot merged_snapshot() const;
  TraceLog flush_trace() const;

 private:
  TelemetryOptions options_;
  std::chrono::steady_clock::time_point start_;
  ShardTelemetry driver_;
  std::deque<ShardTelemetry> shards_;  // stable addresses
};

}  // namespace fnda::obs
