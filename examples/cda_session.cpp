// A continuous double auction session (the paper's Section 1 contrast to
// its discrete-time setting), driven by zero-intelligence traders.
//
//   $ ./build/examples/cda_session
#include <iostream>

#include "market/zi_traders.h"
#include "sim/table.h"

int main() {
  using namespace fnda;

  // A small pit: eight buyers, eight sellers, U[0,100]-ish valuations.
  SingleUnitInstance instance;
  instance.buyer_values = {money(92), money(85), money(77), money(64),
                           money(51), money(38), money(22), money(15)};
  instance.seller_values = {money(11), money(19), money(33), money(42),
                            money(58), money(66), money(79), money(88)};

  Rng rng(20010416);
  const ZiSessionResult session = run_zi_session(instance, rng);

  std::cout << "CDA session with ZI-C (budget-constrained random) "
               "traders\n";
  TextTable table({"metric", "value"});
  table.add_row({"trades executed", std::to_string(session.trades)});
  table.add_row({"quote steps", std::to_string(session.steps)});
  table.add_row({"mean trade price", format_fixed(session.mean_price, 2)});
  table.add_row({"realized surplus", format_fixed(session.surplus, 1)});
  table.add_row({"efficient surplus",
                 format_fixed(session.efficient_surplus, 1)});
  table.add_row({"allocative efficiency",
                 format_fixed(100.0 * session.efficiency, 1) + "%"});
  std::cout << table << '\n';

  // Show the book mechanics on a tiny deterministic script.
  std::cout << "--- order-book mechanics ---\n";
  ContinuousDoubleAuction book;
  book.submit(Side::kSeller, IdentityId{1}, money(60), SimTime{0});
  book.submit(Side::kSeller, IdentityId{2}, money(55), SimTime{1});
  book.submit(Side::kBuyer, IdentityId{3}, money(50), SimTime{2});
  std::cout << "resting: best bid " << book.best_bid()->to_string()
            << ", best ask " << book.best_ask()->to_string() << '\n';
  const auto trade = book.submit(Side::kBuyer, IdentityId{4}, money(58),
                                 SimTime{3});
  std::cout << "aggressive buy @58 crosses the 55 ask: trades at "
            << trade->price << " (the resting order's price)\n";
  std::cout << "remaining asks: " << book.open_asks()
            << ", remaining bids: " << book.open_bids() << '\n';
  std::cout << "\nUnlike the call market, every trade here is a bilateral "
               "transaction at its own price; the paper's TPD instead "
               "clears all trades at once around the threshold.\n";
  return 0;
}
