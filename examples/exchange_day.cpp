// A trading day at the simulated exchange: three clearing rounds over the
// message bus, with one false-name attacker who gets caught by the
// security-deposit escrow at settlement.
//
//   $ ./build/examples/exchange_day
#include <iostream>

#include "market/exchange.h"
#include "protocols/tpd.h"

int main() {
  using namespace fnda;

  const TpdProtocol tpd(money(50));
  ExchangeConfig config;
  config.seed = 20010416;
  config.bus.base_latency = SimTime::millis(2);
  config.bus.jitter = SimTime::millis(1);
  ExchangeSimulation exchange(tpd, config);

  // Honest traders: five buyers, five sellers.
  for (double value : {92.0, 81.0, 66.0, 54.0, 35.0}) {
    exchange.add_trader(Side::kBuyer, money(value));
  }
  for (double value : {18.0, 27.0, 42.0, 58.0, 71.0}) {
    exchange.add_trader(Side::kSeller, money(value));
  }

  // The attacker: a buyer who values the good at 60 and also submits a
  // fake *seller* bid at 30 under a second pseudonym, hoping to collect
  // the spread.  The fake bid will clear — and fail delivery.
  TradingClient& attacker = exchange.add_trader(Side::kBuyer, money(60));
  Strategy attack;
  attack.declarations = {Declaration{Side::kBuyer, money(60)},
                         Declaration{Side::kSeller, money(30)}};
  attacker.set_strategy(attack);

  for (int day_round = 0; day_round < 3; ++day_round) {
    const RoundId round = exchange.run_round(SimTime::millis(50));
    const Outcome* outcome = exchange.server().outcome_of(round);
    const SettlementReport* settlement =
        exchange.server().settlement_of(round);
    std::cout << "round " << day_round << ": " << outcome->trade_count()
              << " trades, auctioneer revenue "
              << outcome->auctioneer_revenue() << ", failed deliveries "
              << settlement->failed << ", deposits confiscated "
              << settlement->confiscated_total << '\n';
  }

  std::cout << "\nattacker settled utility across the day: "
            << exchange.settled_utility(attacker) << " ("
            << exchange.audit().count(AuditKind::kDepositConfiscated)
            << " deposits confiscated in total, incl. honest sellers "
               "re-bidding after their unit sold)\n";

  std::cout << "\n--- audit trail (first round) ---\n";
  for (const AuditRecord& record : exchange.audit().for_round(RoundId{0})) {
    std::cout << "t=" << record.at.micros << "us " << to_string(record.kind)
              << ' ' << record.detail << '\n';
  }

  std::cout << "\nbus stats: sent=" << exchange.bus().stats().sent
            << " delivered=" << exchange.bus().stats().delivered << '\n';
  return 0;
}
