// A guided tour of every worked example in the paper (Sections 3-5, 9),
// showing the vulnerability of PMD and the robustness of TPD.
//
//   $ ./build/examples/paper_examples
#include <iostream>

#include "protocols/pmd.h"
#include "protocols/tpd.h"
#include "protocols/tpd_multi.h"

namespace {

using namespace fnda;

OrderBook example1_book(bool with_fake_buyer) {
  OrderBook book;
  book.add_buyer(IdentityId{1}, money(9));
  book.add_buyer(IdentityId{2}, money(8));
  book.add_buyer(IdentityId{3}, money(7));
  book.add_buyer(IdentityId{4}, money(4));
  book.add_seller(IdentityId{11}, money(2));
  book.add_seller(IdentityId{12}, money(3));
  book.add_seller(IdentityId{13}, money(4));  // the manipulator
  book.add_seller(IdentityId{14}, money(5));
  if (with_fake_buyer) {
    book.add_buyer(IdentityId{99}, money(4.8));  // manipulator's false name
  }
  return book;
}

OrderBook example2_book(bool with_fake_seller) {
  OrderBook book;
  book.add_buyer(IdentityId{1}, money(9));
  book.add_buyer(IdentityId{2}, money(8));
  book.add_buyer(IdentityId{3}, money(7));
  book.add_buyer(IdentityId{4}, money(4));
  book.add_seller(IdentityId{11}, money(2));
  book.add_seller(IdentityId{12}, money(3));
  book.add_seller(IdentityId{13}, money(4));  // the manipulator
  book.add_seller(IdentityId{14}, money(12));
  if (with_fake_seller) {
    book.add_seller(IdentityId{99}, money(6));  // manipulator's false name
  }
  return book;
}

void report(const char* label, const OrderBook& book,
            const DoubleAuctionProtocol& protocol, IdentityId manipulator) {
  Rng rng(1);
  const Outcome outcome = protocol.clear(book, rng);
  std::cout << label << ": " << outcome.trade_count() << " trades";
  if (outcome.trade_count() > 0) {
    const Fill& first = outcome.fills().front();
    std::cout << "; example prices: buyers pay ";
    for (const Fill& fill : outcome.fills()) {
      if (fill.side == Side::kBuyer) {
        std::cout << fill.price;
        break;
      }
    }
    std::cout << ", sellers get ";
    for (const Fill& fill : outcome.fills()) {
      if (fill.side == Side::kSeller) {
        std::cout << fill.price;
        break;
      }
    }
    (void)first;
  }
  const Money received = outcome.received_by(manipulator);
  std::cout << "; manipulator (seller v=4) "
            << (outcome.units_sold(manipulator) > 0
                    ? "sells at " + received.to_string()
                    : std::string("does not trade"))
            << '\n';
}

}  // namespace

int main() {
  using namespace fnda;
  const PmdProtocol pmd;
  const IdentityId manipulator{13};

  std::cout << "--- Example 1 (PMD, Section 4) ---\n";
  std::cout << "buyers 9 > 8 > 7 > 4; sellers 2 < 3 < 4 < 5\n";
  report("truthful       ", example1_book(false), pmd, manipulator);
  report("+fake buyer 4.8", example1_book(true), pmd, manipulator);
  std::cout << "=> the false-name bid raised the sellers' price from 4.5 "
               "to 4.9: PMD is manipulable.\n\n";

  std::cout << "--- Example 2 (PMD, Section 4) ---\n";
  std::cout << "buyers 9 > 8 > 7 > 4; sellers 2 < 3 < 4 < 12\n";
  report("truthful       ", example2_book(false), pmd, manipulator);
  report("+fake seller 6 ", example2_book(true), pmd, manipulator);
  std::cout << "=> the excluded seller bought its way into the trades: "
               "utility 0 -> 1.\n\n";

  std::cout << "--- Example 3 (TPD r = 4.5, Section 5.2) ---\n";
  const TpdProtocol tpd45(money(4.5));
  report("truthful       ", example1_book(false), tpd45, manipulator);
  report("+fake buyer 4.8", example1_book(true), tpd45, manipulator);
  std::cout << "=> sellers receive exactly the threshold either way: the "
               "attack is useless under TPD.\n\n";

  std::cout << "--- Example 4 (TPD, Section 5.2) ---\n";
  const TpdProtocol tpd6(money(6));
  const TpdProtocol tpd75(money(7.5));
  report("r = 6, truthful  ", example2_book(false), tpd6, manipulator);
  report("r = 7.5, truthful", example2_book(false), tpd75, manipulator);
  report("r = 7.5, +fake 6 ", example2_book(true), tpd75, manipulator);
  std::cout << "=> at r = 7.5 seller (3) cannot trade, with or without the "
               "false name.\n\n";

  std::cout << "--- Example 5 (multi-unit TPD, Section 9) ---\n";
  MultiUnitBook multi;
  multi.add_buyer(IdentityId{0}, {money(9), money(8)});  // buyer x
  multi.add_buyer(IdentityId{1}, {money(7)});
  multi.add_buyer(IdentityId{2}, {money(6)});
  multi.add_buyer(IdentityId{3}, {money(4)});
  multi.add_seller(IdentityId{10}, {money(2)});
  multi.add_seller(IdentityId{11}, {money(3)});
  multi.add_seller(IdentityId{12}, {money(4)});
  multi.add_seller(IdentityId{13}, {money(5)});
  multi.add_seller(IdentityId{14}, {money(7)});
  Rng rng(1);
  const MultiUnitOutcome outcome =
      TpdMultiUnitProtocol(money(4.5)).clear(multi, rng);
  std::cout << outcome.units_traded()
            << " units trade; buyer x {9,8} pays "
            << outcome.buyer(IdentityId{0})->total_paid
            << " (paper: 6 + 4.5 = 10.5); buyer {7} pays "
            << outcome.buyer(IdentityId{1})->total_paid << " (paper: 6)\n";
  return 0;
}
