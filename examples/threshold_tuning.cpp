// Tuning the threshold price for a market's value distribution — the
// paper's Section 8 "future work", implemented as a Monte-Carlo optimizer.
//
//   $ ./build/examples/threshold_tuning
#include <iostream>

#include "sim/table.h"
#include "sim/threshold_search.h"

int main() {
  using namespace fnda;

  // Suppose our marketplace's historical valuations look like U[10, 70]
  // with three times as many sellers as buyers.
  const ValueDistribution values{money(10), money(70), ValueDomain{}};
  const InstanceGenerator market = fixed_count_generator(25, 75, values);

  std::cout << "Market: 25 buyers, 75 sellers, valuations U[10,70]\n\n";

  // Sweep first, to see the whole surplus curve.
  ThresholdSearchConfig config;
  config.lo = money(10);
  config.hi = money(70);
  config.coarse_points = 13;
  config.instances_per_eval = 400;

  const ThresholdSearchResult total =
      optimize_threshold(market, config);
  config.objective = ThresholdObjective::kSurplusExceptAuctioneer;
  const ThresholdSearchResult except =
      optimize_threshold(market, config);

  TextTable table({"threshold", "E[total surplus]"});
  for (const auto& [r, value] : total.sweep) {
    table.add_row({r.to_string(), format_fixed(value, 1)});
  }
  std::cout << table << '\n';

  std::cout << "best threshold (total surplus):      "
            << total.best_threshold << " -> "
            << format_fixed(total.best_value, 1) << '\n';
  std::cout << "best threshold (traders' surplus):   "
            << except.best_threshold << " -> "
            << format_fixed(except.best_value, 1) << '\n';
  std::cout << "\nWith more sellers than buyers, the clearing bottleneck "
               "is demand: the optimal r sits below the distribution "
               "midpoint, where it admits every serious buyer.\n";
  return 0;
}
