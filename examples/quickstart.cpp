// Quickstart: clear one threshold-price double auction.
//
//   $ ./build/examples/quickstart
//
// Builds a small book of buyer/seller declarations, clears it with the
// TPD protocol at threshold r = 4.5, and prints who trades at what price.
#include <iostream>

#include "core/validation.h"
#include "protocols/tpd.h"

int main() {
  using namespace fnda;

  // 1. Collect declarations.  Identities are opaque 64-bit names; the
  //    protocol never learns who is behind them.
  OrderBook book;
  book.add_buyer(IdentityId{1}, money(9));
  book.add_buyer(IdentityId{2}, money(8));
  book.add_buyer(IdentityId{3}, money(7));
  book.add_buyer(IdentityId{4}, money(4));
  book.add_seller(IdentityId{11}, money(2));
  book.add_seller(IdentityId{12}, money(3));
  book.add_seller(IdentityId{13}, money(4));
  book.add_seller(IdentityId{14}, money(5));

  // 2. Pick the protocol.  The threshold price must be chosen before
  //    seeing any declaration (see sim/threshold_search.h for tuning it
  //    against a value distribution).
  const TpdProtocol tpd(money(4.5));

  // 3. Clear.  The Rng drives random tie-breaking; a fixed seed makes the
  //    round reproducible.
  Rng rng(2001);
  const Outcome outcome = tpd.clear(book, rng);
  expect_valid_outcome(book, outcome);  // feasibility, IR, budget balance

  // 4. Inspect the result.
  std::cout << "trades: " << outcome.trade_count() << '\n';
  for (const Fill& fill : outcome.fills()) {
    std::cout << "  " << to_string(fill.side) << ' ' << fill.identity
              << (fill.side == Side::kBuyer ? " pays " : " receives ")
              << fill.price << '\n';
  }
  std::cout << "auctioneer keeps: " << outcome.auctioneer_revenue() << '\n';
  return 0;
}
