// An exchange whose auctioneer tunes the TPD threshold between sessions —
// the Section 8 "find the optimal threshold" future work, running live
// against the full message-based substrate.
//
// Each trading session brings a fresh population drawn from the same
// (unknown-to-the-auctioneer) value distribution; the auctioneer observes
// each session's declared book afterwards and updates its threshold.
//
//   $ ./build/examples/adaptive_exchange
#include <iostream>

#include "core/surplus.h"
#include "market/exchange.h"
#include "protocols/tpd.h"
#include "sim/adaptive_threshold.h"
#include "sim/table.h"

int main() {
  using namespace fnda;

  // Values live on U[30, 110]; the surplus-optimal threshold is ~70.
  // The auctioneer starts at 15, knowing none of this.
  AdaptiveThresholdPolicy policy(money(15), 0.35);
  Rng population(99);

  TextTable table({"session", "threshold r", "trades", "efficiency",
                   "auctioneer take"});

  for (int session = 0; session < 10; ++session) {
    const TpdProtocol protocol(policy.current());
    ExchangeConfig config;
    config.seed = 1000 + static_cast<std::uint64_t>(session);
    ExchangeSimulation exchange(protocol, config);
    for (int i = 0; i < 25; ++i) {
      exchange.add_trader(Side::kBuyer,
                          population.uniform_money(money(30), money(110)));
      exchange.add_trader(Side::kSeller,
                          population.uniform_money(money(30), money(110)));
    }

    const RoundId round = exchange.run_round(SimTime::millis(50));
    const Outcome* outcome = exchange.server().outcome_of(round);

    // Score the session against its Pareto bound.
    double realized = 0.0;
    for (const auto& trader : exchange.traders()) {
      realized += exchange.settled_utility(*trader);
    }
    realized += outcome->auctioneer_revenue().to_double();
    OrderBook truth_book;
    for (const auto& trader : exchange.traders()) {
      truth_book.add(trader->role(), IdentityId{trader->account().value()},
                     trader->true_value());
    }
    Rng sort_rng(7);
    const SortedBook sorted(truth_book, sort_rng);
    const double pareto = efficient_surplus(sorted);

    table.add_row({std::to_string(session),
                   format_fixed(policy.current().to_double(), 1),
                   std::to_string(outcome->trade_count()),
                   format_fixed(pareto > 0 ? 100.0 * realized / pareto : 100.0,
                                1) + "%",
                   outcome->auctioneer_revenue().to_string()});

    // Learn from the completed session's declarations (truthful bidding
    // is dominant under TPD whatever r is, so this loop does not distort
    // one-shot incentives).
    policy.observe(sorted);
  }

  std::cout << "== Adaptive TPD exchange: threshold learned across "
               "sessions (values U[30,110], optimum ~70) ==\n"
            << table
            << "\nStarting blind at r = 15, the auctioneer reaches the "
               "clearing region within a few sessions and efficiency "
               "climbs above 95%.\n";
  return 0;
}
