// Multi-unit trading (Section 9): a small FX-style market where every
// participant has a declining marginal-value schedule for multiple units.
//
//   $ ./build/examples/multiunit_trading
#include <iostream>

#include "protocols/tpd_multi.h"
#include "sim/table.h"

int main() {
  using namespace fnda;

  // Dealers quote marginal values per unit (non-increasing, as Section 9
  // requires).  A seller's schedule reads: parting with the first unit
  // costs its *last* marginal value.
  MultiUnitBook book;
  MultiUnitTruth truth;

  auto add_buyer = [&](std::uint64_t id, std::vector<Money> values) {
    truth.buyer_values[IdentityId{id}] = values;
    book.add_buyer(IdentityId{id}, std::move(values));
  };
  auto add_seller = [&](std::uint64_t id, std::vector<Money> values) {
    truth.seller_values[IdentityId{id}] = values;
    book.add_seller(IdentityId{id}, std::move(values));
  };

  add_buyer(1, {money(95), money(80), money(62)});  // fund A
  add_buyer(2, {money(88), money(71)});             // fund B
  add_buyer(3, {money(55)});                        // retail buyer
  add_seller(11, {money(70), money(48), money(33)});  // dealer X
  add_seller(12, {money(64), money(41)});             // dealer Y
  add_seller(13, {money(52)});                        // retail seller

  const Money r = money(57.5);
  const TpdMultiUnitProtocol protocol(r);
  Rng rng(7);
  const MultiUnitOutcome outcome = protocol.clear(book, rng);

  std::cout << "threshold price r = " << r << ", units traded: "
            << outcome.units_traded() << "\n\n";

  TextTable buyers({"buyer", "units", "total paid", "per-unit prices"});
  for (const auto& result : outcome.buyers) {
    std::string prices;
    for (Money p : result.unit_payments) {
      if (!prices.empty()) prices += ", ";
      prices += p.to_string();
    }
    buyers.add_row({"id-" + std::to_string(result.identity.value()),
                    std::to_string(result.units),
                    result.total_paid.to_string(), prices});
  }
  std::cout << buyers << '\n';

  TextTable sellers({"seller", "units", "total received", "per-unit prices"});
  for (const auto& result : outcome.sellers) {
    std::string prices;
    for (Money p : result.unit_receipts) {
      if (!prices.empty()) prices += ", ";
      prices += p.to_string();
    }
    sellers.add_row({"id-" + std::to_string(result.identity.value()),
                     std::to_string(result.units),
                     result.total_received.to_string(), prices});
  }
  std::cout << sellers << '\n';

  const MultiUnitSurplus surplus = realized_multi_surplus(outcome, truth);
  Rng pareto_rng(8);
  std::cout << "realized surplus: " << format_fixed(surplus.total, 1)
            << " (auctioneer " << format_fixed(surplus.auctioneer, 1)
            << "); Pareto bound: "
            << format_fixed(efficient_multi_surplus(book, pareto_rng), 1)
            << '\n';
  std::cout << "\nBecause marginal utilities decrease, the protocol remains "
               "false-name-proof: splitting a schedule across pseudonyms "
               "cannot lower the GVA payments.\n";
  return 0;
}
