// fnda command-line tool.  All logic lives in src/cli (testable); this is
// only the process shell.
#include <iostream>
#include <string>
#include <vector>

#include "cli/commands.h"

int main(int argc, char** argv) {
  std::vector<std::string> args;
  args.reserve(static_cast<std::size_t>(argc > 0 ? argc - 1 : 0));
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  return fnda::run_cli(args, std::cin, std::cout, std::cerr);
}
