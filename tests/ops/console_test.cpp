// ConsoleSession end-to-end: the full command surface against a live
// exchange, runtime config landing only at round boundaries, and the
// tentpole bit-identity claim — the same script produces byte-identical
// reply transcripts AND the same exchange digest for 1, 2, and 8 worker
// threads, pinned with a golden digest.
#include "ops/console.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/money.h"
#include "protocols/tpd.h"

namespace fnda::ops {
namespace {

const std::vector<std::string>& golden_script() {
  static const std::vector<std::string> kScript = {
      "status",
      "run 2",
      "metrics show",
      "hist fnda_server_round_bids",
      "book dump 0",
      "escrow show",
      "config show",
      "config set retained_rounds 2",
      "shard pause 1",
      "run 1",
      "shard resume 1",
      "config set announce_interval_us 5000",
      "run 1",
      "audit tail 5",
      "health",
      "digest",
  };
  return kScript;
}

struct ScriptRun {
  std::string transcript;
  std::uint64_t digest = 0;
  std::uint64_t breaches = 0;
};

ScriptRun run_script(std::size_t threads,
                     const std::vector<std::string>& script) {
  const TpdProtocol tpd(Money::from_units(50));
  ConsoleConfig config;
  config.clients = 64;
  config.shards = 8;
  config.threads = threads;
  config.seed = 7;
  ConsoleSession session(tpd, std::move(config));

  ScriptRun result;
  for (const std::string& line : script) {
    const Reply reply = session.execute(line);
    EXPECT_TRUE(reply.ok) << line << ": " << reply.text();
    result.transcript += "> " + line + '\n' + reply.text() + '\n';
  }
  result.digest = session.digest();
  result.breaches = session.watchdog().total_breaches();
  return result;
}

// The acceptance-criteria pin: replies and exchange digest are
// bit-identical for every worker count.  The digest constant is the
// golden value; a change here means the deterministic replay contract
// moved and every thread count moved with it.
TEST(ConsoleSession, TranscriptAndDigestThreadCountInvariant) {
  const ScriptRun t1 = run_script(1, golden_script());
  const ScriptRun t2 = run_script(2, golden_script());
  const ScriptRun t8 = run_script(8, golden_script());

  EXPECT_EQ(t1.transcript, t2.transcript);
  EXPECT_EQ(t1.transcript, t8.transcript);
  EXPECT_EQ(t1.digest, t2.digest);
  EXPECT_EQ(t1.digest, t8.digest);
  EXPECT_EQ(t1.breaches, t2.breaches);
  EXPECT_EQ(t1.breaches, t8.breaches);
  EXPECT_EQ(t1.digest, 0x89133dbc59b37c7aull);
}

TEST(ConsoleSession, ConfigChangesLandOnlyAtRoundBoundaries) {
  const TpdProtocol tpd(Money::from_units(50));
  ConsoleConfig config;
  config.shards = 2;
  ConsoleSession session(tpd, std::move(config));
  MultiServerExchange& exchange = session.exchange();

  EXPECT_TRUE(session.execute("config set retained_rounds 3").ok);
  // Staged, not applied: the active config and generation are untouched.
  EXPECT_EQ(exchange.runtime_config().active().retained_rounds, 0u);
  EXPECT_EQ(exchange.runtime_config().generation(), 0u);
  EXPECT_TRUE(exchange.runtime_config().has_pending());

  EXPECT_TRUE(session.execute("run 1").ok);
  EXPECT_EQ(exchange.runtime_config().active().retained_rounds, 3u);
  EXPECT_EQ(exchange.runtime_config().generation(), 1u);
  EXPECT_FALSE(exchange.runtime_config().has_pending());
  EXPECT_EQ(exchange.server(0).config().retained_rounds, 3u);
}

TEST(ConsoleSession, RetainedRoundsEvictsOldRounds) {
  const TpdProtocol tpd(Money::from_units(50));
  ConsoleConfig config;
  config.shards = 1;
  ConsoleSession session(tpd, std::move(config));
  AuctionServer& server = session.exchange().server(0);

  EXPECT_TRUE(session.execute("run 1").ok);
  ASSERT_TRUE(server.latest_round().has_value());
  const RoundId first = *server.latest_round();
  EXPECT_TRUE(session.execute("run 2").ok);
  ASSERT_NE(server.ranked_of(first), nullptr);  // unbounded retention

  EXPECT_TRUE(session.execute("config set retained_rounds 1").ok);
  EXPECT_TRUE(session.execute("run 1").ok);
  EXPECT_EQ(server.ranked_of(first), nullptr);  // evicted down to 1
  ASSERT_TRUE(server.latest_round().has_value());
  EXPECT_NE(server.ranked_of(*server.latest_round()), nullptr);
}

TEST(ConsoleSession, PausedShardSkipsRounds) {
  const TpdProtocol tpd(Money::from_units(50));
  ConsoleConfig config;
  config.shards = 2;
  ConsoleSession session(tpd, std::move(config));
  MultiServerExchange& exchange = session.exchange();

  EXPECT_TRUE(session.execute("shard pause 1").ok);
  EXPECT_TRUE(exchange.shard_paused(1));
  EXPECT_TRUE(session.execute("run 2").ok);
  EXPECT_EQ(exchange.server(0).rounds_completed(), 2u);
  EXPECT_EQ(exchange.server(1).rounds_completed(), 0u);

  EXPECT_TRUE(session.execute("shard resume 1").ok);
  EXPECT_TRUE(session.execute("run 1").ok);
  EXPECT_EQ(exchange.server(1).rounds_completed(), 1u);
}

TEST(ConsoleSession, ShardBoundsValidatedAtRuntime) {
  const TpdProtocol tpd(Money::from_units(50));
  ConsoleConfig config;
  config.shards = 2;
  ConsoleSession session(tpd, std::move(config));

  EXPECT_FALSE(session.execute("shard pause 5").ok);
  EXPECT_FALSE(session.execute("book dump 2").ok);
  EXPECT_FALSE(session.execute("config set nope 1").ok);
  EXPECT_FALSE(session.execute("hist not_a_metric").ok);
  EXPECT_FALSE(session.execute("unknowncmd").ok);
}

TEST(ConsoleSession, CommentsAndBlanksAreNoops) {
  const TpdProtocol tpd(Money::from_units(50));
  ConsoleSession session(tpd, ConsoleConfig{});
  EXPECT_TRUE(session.execute("# a comment").ok);
  EXPECT_TRUE(session.execute("").ok);
  EXPECT_TRUE(session.execute("   ").ok);
  EXPECT_FALSE(session.done());
  EXPECT_TRUE(session.execute("quit").ok);
  EXPECT_TRUE(session.done());
}

TEST(ConsoleSession, HealthBreachCountersAreDeterministic) {
  // An impossible SLO breaches on every round, on every thread count.
  const auto breaches_at = [](std::size_t threads) {
    const TpdProtocol tpd(Money::from_units(50));
    ConsoleConfig config;
    config.shards = 4;
    config.threads = threads;
    config.slo_rules = {"rounds max(fnda_epoch_total) <= 0"};
    ConsoleSession session(tpd, std::move(config));
    EXPECT_TRUE(session.execute("run 3").ok);
    return session.watchdog().total_breaches();
  };
  const std::uint64_t b1 = breaches_at(1);
  EXPECT_EQ(b1, 3u);  // one evaluation per round, all breaching
  EXPECT_EQ(breaches_at(2), b1);
  EXPECT_EQ(breaches_at(4), b1);
}

TEST(ConsoleSession, MalformedSloRuleThrows) {
  const TpdProtocol tpd(Money::from_units(50));
  ConsoleConfig config;
  config.slo_rules = {"not a rule ("};
  EXPECT_THROW(ConsoleSession(tpd, std::move(config)),
               std::invalid_argument);
}

TEST(ConsoleSession, HealthCountersSurfaceInMergedExposition) {
  const TpdProtocol tpd(Money::from_units(50));
  ConsoleConfig config;
  config.shards = 2;
  ConsoleSession session(tpd, std::move(config));
  EXPECT_TRUE(session.execute("run 1").ok);

  const Reply prom = session.execute("metrics dump --prom");
  ASSERT_TRUE(prom.ok);
  const std::string text = prom.text();
  EXPECT_NE(text.find("fnda_health_evaluations_total 1"), std::string::npos);
  EXPECT_NE(text.find("fnda_health_breaches_total"), std::string::npos);
  EXPECT_NE(text.find("fnda_health_breach_delivery_p99_total"),
            std::string::npos);
}

}  // namespace
}  // namespace fnda::ops
