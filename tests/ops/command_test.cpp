// Typed command plane: declarative registration, longest-prefix dispatch,
// aliases, typed parameter validation (bounds, choices, optionals), flag
// handling, auto-generated help, and the text/JSON dual rendering of
// ReplyBuilder.
#include "ops/command.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

namespace fnda::ops {
namespace {

CommandTable make_table() {
  CommandTable table;
  table.add(CommandSpec{
      .name = "metrics dump",
      .aliases = {"md"},
      .help = "dump the merged metrics",
      .params = {},
      .flags = {"json", "prom"},
      .handler = [](const Invocation& inv) {
        ReplyBuilder reply;
        reply.field("json", inv.flag("json"));
        reply.field("prom", inv.flag("prom"));
        return reply.build();
      }});
  table.add(CommandSpec{
      .name = "metrics show",
      .aliases = {"m"},
      .help = "show the metrics table",
      .params = {},
      .flags = {},
      .handler = [](const Invocation&) {
        return ReplyBuilder{}.field("shown", true).build();
      }});
  table.add(CommandSpec{
      .name = "run",
      .aliases = {"r"},
      .help = "run rounds",
      .params = {ParamSpec::integer("rounds", 1, 100, "round count")
                     .optional("1")},
      .flags = {},
      .handler = [](const Invocation& inv) {
        return ReplyBuilder{}.field("rounds", inv.get_int("rounds")).build();
      }});
  table.add(CommandSpec{
      .name = "mode",
      .aliases = {},
      .help = "set a mode",
      .params = {ParamSpec::choice("which", {"fast", "safe"}, "the mode")},
      .flags = {},
      .handler = [](const Invocation& inv) {
        return ReplyBuilder{}.field("which", inv.get("which")).build();
      }});
  return table;
}

TEST(CommandTable, DispatchesLongestMultiWordName) {
  const CommandTable table = make_table();
  const Reply dump = table.dispatch("metrics dump");
  EXPECT_TRUE(dump.ok) << dump.text();
  EXPECT_NE(dump.text().find("json: false"), std::string::npos);
  const Reply show = table.dispatch("metrics show");
  EXPECT_TRUE(show.ok);
  EXPECT_NE(show.text().find("shown: true"), std::string::npos);
}

TEST(CommandTable, AliasDispatch) {
  const CommandTable table = make_table();
  EXPECT_TRUE(table.dispatch("md").ok);
  EXPECT_TRUE(table.dispatch("m").ok);
  const Reply reply = table.dispatch("r 7");
  EXPECT_TRUE(reply.ok);
  EXPECT_NE(reply.json.find("\"rounds\":7"), std::string::npos);
}

TEST(CommandTable, OptionalParamFallsBack) {
  const CommandTable table = make_table();
  const Reply reply = table.dispatch("run");
  EXPECT_TRUE(reply.ok);
  EXPECT_NE(reply.json.find("\"rounds\":1"), std::string::npos);
}

TEST(CommandTable, IntegerBoundsEnforced) {
  const CommandTable table = make_table();
  EXPECT_FALSE(table.dispatch("run 0").ok);
  EXPECT_FALSE(table.dispatch("run 101").ok);
  EXPECT_FALSE(table.dispatch("run banana").ok);
  EXPECT_TRUE(table.dispatch("run 100").ok);
}

TEST(CommandTable, ChoiceMembershipEnforced) {
  const CommandTable table = make_table();
  EXPECT_TRUE(table.dispatch("mode fast").ok);
  const Reply bad = table.dispatch("mode slow");
  EXPECT_FALSE(bad.ok);
  EXPECT_NE(bad.text().find("fast"), std::string::npos);  // lists choices
}

TEST(CommandTable, UnknownFlagAndExtraArgsRejected) {
  const CommandTable table = make_table();
  EXPECT_FALSE(table.dispatch("metrics dump --nope").ok);
  EXPECT_TRUE(table.dispatch("metrics dump --json").ok);
  EXPECT_FALSE(table.dispatch("run 3 extra").ok);
}

TEST(CommandTable, UnknownCommandAndMissingParam) {
  const CommandTable table = make_table();
  const Reply unknown = table.dispatch("frobnicate");
  EXPECT_FALSE(unknown.ok);
  EXPECT_NE(unknown.json.find("\"ok\":false"), std::string::npos);
  EXPECT_FALSE(table.dispatch("mode").ok);  // required param missing
}

TEST(CommandTable, BlankLineIsOkNoop) {
  const CommandTable table = make_table();
  const Reply reply = table.dispatch("   ");
  EXPECT_TRUE(reply.ok);
  EXPECT_TRUE(reply.lines.empty());
}

TEST(CommandTable, HelpListsCommandsAndPerCommandUsage) {
  const CommandTable table = make_table();
  const Reply all = table.dispatch("help");
  EXPECT_TRUE(all.ok);
  EXPECT_NE(all.text().find("metrics dump"), std::string::npos);
  EXPECT_NE(all.text().find("run"), std::string::npos);
  const Reply one = table.dispatch("help run");
  EXPECT_TRUE(one.ok);
  EXPECT_NE(one.text().find("rounds"), std::string::npos);
}

TEST(ReplyBuilder, TextAndJsonRenderTheSameFields) {
  ReplyBuilder builder;
  builder.field("name", std::string_view{"va\"lue"});
  builder.field("count", std::int64_t{-3});
  builder.field("total", std::uint64_t{7});
  builder.field("live", true);
  builder.row("  raw row");
  const Reply reply = builder.build();
  EXPECT_TRUE(reply.ok);
  EXPECT_NE(reply.text().find("name: va\"lue"), std::string::npos);
  EXPECT_NE(reply.text().find("count: -3"), std::string::npos);
  EXPECT_NE(reply.text().find("  raw row"), std::string::npos);
  EXPECT_NE(reply.json.find("\"name\":\"va\\\"lue\""), std::string::npos);
  EXPECT_NE(reply.json.find("\"count\":-3"), std::string::npos);
  EXPECT_NE(reply.json.find("\"live\":true"), std::string::npos);
  EXPECT_NE(reply.json.find("\"rows\":["), std::string::npos);
}

TEST(ReplyBuilder, ErrorReplyShape) {
  const Reply reply = Reply::error("boom \"quoted\"");
  EXPECT_FALSE(reply.ok);
  EXPECT_EQ(reply.text(), "error: boom \"quoted\"");
  EXPECT_EQ(reply.json, "{\"ok\":false,\"error\":\"boom \\\"quoted\\\"\"}");
}

TEST(CommandTable, TokenizeSplitsOnWhitespace) {
  const auto tokens = CommandTable::tokenize("  a   bb\tccc ");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0], "a");
  EXPECT_EQ(tokens[1], "bb");
  EXPECT_EQ(tokens[2], "ccc");
}

}  // namespace
}  // namespace fnda::ops
