// SLO rule parsing, the integer fixed-point evaluation semantics, and the
// watchdog's breach accounting + metric binding.  Everything here is a
// pure function of a snapshot, so the assertions double as the
// determinism contract the console's thread-invariance test rides on.
#include "ops/health.h"

#include <gtest/gtest.h>

#include <string>

#include "obs/export.h"
#include "obs/metrics.h"

namespace fnda::ops {
namespace {

SloRule parse_ok(const std::string& text) {
  SloRule rule;
  std::string error;
  EXPECT_TRUE(SloRule::parse(text, &rule, &error)) << error;
  return rule;
}

TEST(SloRule, ParsesEveryKind) {
  const SloRule max_rule = parse_ok("escrow max(fnda_escrow_held_micros) <= 10");
  EXPECT_EQ(max_rule.kind, SloKind::kValueMax);
  EXPECT_EQ(max_rule.name, "escrow");
  EXPECT_EQ(max_rule.metric, "fnda_escrow_held_micros");
  EXPECT_EQ(max_rule.threshold, 10u);

  const SloRule q = parse_ok("lat p99(fnda_latency_us) <= 250000");
  EXPECT_EQ(q.kind, SloKind::kQuantileMax);
  EXPECT_DOUBLE_EQ(q.quantile, 0.99);

  const SloRule ratio = parse_ok("shed ratio(fnda_drops,fnda_sent) <= 0.01");
  EXPECT_EQ(ratio.kind, SloKind::kRatioMax);
  EXPECT_EQ(ratio.metric, "fnda_drops");
  EXPECT_EQ(ratio.denominator, "fnda_sent");
  EXPECT_DOUBLE_EQ(ratio.ratio_threshold, 0.01);
}

TEST(SloRule, RoundTripsThroughToString) {
  const char* kDeclarations[] = {
      "escrow max(fnda_escrow_held_micros) <= 10",
      "lat p999(fnda_latency_us) <= 7",
      "shed ratio(fnda_drops,fnda_sent) <= 0.010000",
  };
  for (const char* text : kDeclarations) {
    const SloRule rule = parse_ok(text);
    EXPECT_EQ(rule.to_string(), text);
    // to_string output reparses to the same rule.
    const SloRule again = parse_ok(rule.to_string());
    EXPECT_EQ(again.to_string(), rule.to_string());
  }
}

TEST(SloRule, RejectsMalformedDeclarations) {
  const auto rejects = [](const std::string& text, const std::string& needle) {
    SloRule rule;
    std::string error;
    EXPECT_FALSE(SloRule::parse(text, &rule, &error)) << text;
    EXPECT_NE(error.find(needle), std::string::npos) << error;
  };
  rejects("BadName max(m) <= 1", "rule name");
  rejects("r frob(m) <= 1", "unknown rule kind");
  rejects("r max(m) >= 1", "expected '<='");
  rejects("r max(m) <= banana", "bad integer threshold");
  rejects("r ratio(m) <= 0.5", "two metrics");
  rejects("r ratio(m,n) <= x.y", "bad ratio threshold");
  rejects("r max(bad name) <= 1", "expected kind(metric)");
  rejects("r max(m) <= 1 trailing", "trailing input");
}

TEST(HealthWatchdog, ValueMaxReadsEveryMetricKind) {
  obs::MetricsRegistry registry;
  registry.counter("c").add(7);
  registry.gauge("g").set(-3);  // negative gauges clamp to 0 for ceilings
  obs::Histogram& hist = registry.histogram("h");
  hist.record(40);

  HealthWatchdog watchdog({parse_ok("rc max(c) <= 5"),
                           parse_ok("rg max(g) <= 0"),
                           parse_ok("rh max(h) <= 39")});
  EXPECT_EQ(watchdog.evaluate(registry.snapshot()), 2u);  // c and h breach
  EXPECT_EQ(watchdog.states()[0].last_value, 7u);
  EXPECT_TRUE(watchdog.states()[0].last_breached);
  EXPECT_EQ(watchdog.states()[1].last_value, 0u);
  EXPECT_FALSE(watchdog.states()[1].last_breached);
  EXPECT_EQ(watchdog.states()[2].last_value, 40u);
  EXPECT_TRUE(watchdog.states()[2].last_breached);
}

TEST(HealthWatchdog, QuantileRuleUsesNearestRankBuckets) {
  obs::MetricsRegistry registry;
  obs::Histogram& hist = registry.histogram("h");
  for (int i = 0; i < 99; ++i) hist.record(1);
  hist.record(1000);

  HealthWatchdog tight({parse_ok("r p99(h) <= 0")});
  EXPECT_EQ(tight.evaluate(registry.snapshot()), 1u);
  // rank ceil(0.99 * 100) = 99 lands in the bucket of the 1-valued
  // samples, so the observed p99 is exactly 1.
  EXPECT_EQ(tight.states()[0].last_value, 1u);

  HealthWatchdog loose({parse_ok("r p999(h) <= 2000")});
  EXPECT_EQ(loose.evaluate(registry.snapshot()), 0u);
}

TEST(HealthWatchdog, RatioIsIntegerFixedPoint) {
  obs::MetricsRegistry registry;
  registry.counter("num").add(1);
  registry.counter("den").add(3);

  HealthWatchdog watchdog({parse_ok("r ratio(num,den) <= 0.4")});
  EXPECT_EQ(watchdog.evaluate(registry.snapshot()), 0u);
  // 1/3 in micros fixed-point: 333333, never a float on the path.
  EXPECT_EQ(watchdog.states()[0].last_value, 333333u);

  HealthWatchdog strict({parse_ok("r ratio(num,den) <= 0.333333")});
  EXPECT_EQ(strict.evaluate(registry.snapshot()), 0u);  // 333333 <= 333333
  HealthWatchdog stricter({parse_ok("r ratio(num,den) <= 0.333332")});
  EXPECT_EQ(stricter.evaluate(registry.snapshot()), 1u);
}

TEST(HealthWatchdog, AbsentMetricNeverBreaches) {
  obs::MetricsRegistry registry;
  registry.counter("present").add(100);

  HealthWatchdog watchdog({parse_ok("r1 max(absent) <= 1"),
                           parse_ok("r2 ratio(present,also_absent) <= 0.1")});
  EXPECT_EQ(watchdog.evaluate(registry.snapshot()), 0u);
  EXPECT_FALSE(watchdog.states()[0].last_present);
  EXPECT_FALSE(watchdog.states()[1].last_present);
  EXPECT_EQ(watchdog.total_breaches(), 0u);
}

TEST(HealthWatchdog, BreachCountersAccumulateAcrossEvaluations) {
  obs::MetricsRegistry registry;
  obs::Counter& counter = registry.counter("c");

  HealthWatchdog watchdog({parse_ok("r max(c) <= 1")});
  EXPECT_EQ(watchdog.evaluate(registry.snapshot()), 0u);
  counter.add(5);
  EXPECT_EQ(watchdog.evaluate(registry.snapshot()), 1u);
  EXPECT_EQ(watchdog.evaluate(registry.snapshot()), 1u);
  EXPECT_EQ(watchdog.evaluations(), 3u);
  EXPECT_EQ(watchdog.total_breaches(), 2u);
  EXPECT_EQ(watchdog.states()[0].breaches, 2u);
}

TEST(HealthWatchdog, BindMetricsExposesCounters) {
  obs::MetricsRegistry session;
  obs::Counter& counter = session.counter("c");
  HealthWatchdog watchdog({parse_ok("r max(c) <= 0")});

  obs::MetricsRegistry exposition;
  watchdog.bind_metrics(exposition);
  counter.add(1);
  watchdog.evaluate(session.snapshot());

  const obs::MetricsSnapshot snap = exposition.snapshot();
  ASSERT_NE(snap.find("fnda_health_evaluations_total"), nullptr);
  EXPECT_EQ(snap.find("fnda_health_evaluations_total")->counter, 1u);
  EXPECT_EQ(snap.find("fnda_health_breaches_total")->counter, 1u);
  ASSERT_NE(snap.find("fnda_health_breach_r_total"), nullptr);
  EXPECT_EQ(snap.find("fnda_health_breach_r_total")->counter, 1u);
  // The exposition writer renders the bound counters like any other.
  const std::string text = obs::prometheus_text(snap);
  EXPECT_NE(text.find("fnda_health_breach_r_total 1"), std::string::npos);
}

TEST(HealthWatchdog, DefaultRulesParseAndCoverTheTentpoleSlos) {
  const std::vector<SloRule> rules = HealthWatchdog::default_rules();
  ASSERT_EQ(rules.size(), 4u);
  EXPECT_EQ(rules[0].name, "delivery_p99");
  EXPECT_EQ(rules[1].name, "mailbox_shed");
  EXPECT_EQ(rules[2].name, "attack_shed");
  EXPECT_EQ(rules[3].name, "escrow_held");
}

}  // namespace
}  // namespace fnda::ops
