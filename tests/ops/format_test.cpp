// Console formatting helpers: the metrics table / histogram renderings
// are byte-stable functions of a snapshot, and parse_prometheus_text is a
// faithful inverse of obs::write_prometheus (modulo hist_max, which the
// exposition format cannot carry).
#include "ops/format.h"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>

#include "obs/export.h"
#include "obs/metrics.h"

namespace fnda::ops {
namespace {

obs::MetricsSnapshot sample_snapshot() {
  obs::MetricsRegistry registry;
  registry.counter("fnda_events_total").add(42);
  registry.gauge("fnda_depth").set(-5);
  obs::Histogram& hist = registry.histogram("fnda_latency_us");
  hist.record(3);
  hist.record(3);
  hist.record(900);
  return registry.snapshot();
}

TEST(RenderMetricsTable, AlignsAndShowsEveryKind) {
  const std::vector<std::string> lines =
      render_metrics_table(sample_snapshot());
  ASSERT_EQ(lines.size(), 4u);  // header + 3 metrics
  EXPECT_NE(lines[0].find("name"), std::string::npos);
  EXPECT_NE(lines[1].find("fnda_depth"), std::string::npos);
  EXPECT_NE(lines[1].find("gauge"), std::string::npos);
  EXPECT_NE(lines[1].find("-5"), std::string::npos);
  EXPECT_NE(lines[2].find("counter    42"), std::string::npos);
  EXPECT_NE(lines[3].find("histogram  count=3"), std::string::npos);
  // Every row is aligned on the longest name.
  const std::size_t type_col = lines[0].find("type");
  EXPECT_NE(lines[1].find("gauge"), std::string::npos);
  EXPECT_EQ(lines[1].find("gauge"), type_col);
  EXPECT_EQ(lines[2].find("counter"), type_col);
}

TEST(RenderHistogram, QuantilesAndBuckets) {
  const obs::MetricsSnapshot snap = sample_snapshot();
  const obs::MetricValue* value = snap.find("fnda_latency_us");
  ASSERT_NE(value, nullptr);
  const std::vector<std::string> lines =
      render_histogram("fnda_latency_us", *value);
  EXPECT_EQ(lines[0], "fnda_latency_us:");
  EXPECT_EQ(lines[1], "  count 3");
  EXPECT_EQ(lines[2], "  sum   906");
  EXPECT_EQ(lines[3], "  mean  302");
  // Two samples at 3 (exact unit bucket), one at 900: p50 reads exactly 3.
  EXPECT_EQ(lines[4], "  p50   3");
  EXPECT_EQ(lines[8], "  max   900");
  // Bucket rows list the non-empty buckets with their upper bounds.
  EXPECT_NE(lines.back().find("le "), std::string::npos);
}

TEST(ParsePrometheus, RoundTripsWriterOutput) {
  const obs::MetricsSnapshot original = sample_snapshot();
  std::istringstream in(obs::prometheus_text(original));
  const obs::MetricsSnapshot parsed = parse_prometheus_text(in);

  ASSERT_EQ(parsed.metrics.size(), original.metrics.size());
  const obs::MetricValue* counter = parsed.find("fnda_events_total");
  ASSERT_NE(counter, nullptr);
  EXPECT_EQ(counter->counter, 42u);
  const obs::MetricValue* gauge = parsed.find("fnda_depth");
  ASSERT_NE(gauge, nullptr);
  EXPECT_EQ(gauge->gauge, -5);
  const obs::MetricValue* hist = parsed.find("fnda_latency_us");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->hist_count, 3u);
  EXPECT_EQ(hist->hist_sum, 906u);
  EXPECT_EQ(hist->buckets, original.find("fnda_latency_us")->buckets);
  // hist_max is not representable in the exposition format.
  EXPECT_EQ(hist->hist_max, 0u);

  // Re-serializing the parsed snapshot reproduces the document except the
  // +Inf-adjacent max, which reads back as 0 — scrub and compare.
  const std::string again = obs::prometheus_text(parsed);
  std::istringstream twice_in(again);
  const obs::MetricsSnapshot twice = parse_prometheus_text(twice_in);
  EXPECT_EQ(obs::prometheus_text(twice), again);
}

TEST(ParsePrometheus, MalformedInputsCarryLineNumbers) {
  const auto expect_error = [](const std::string& document,
                               const std::string& needle) {
    std::istringstream in(document);
    try {
      parse_prometheus_text(in);
      FAIL() << "expected parse failure for: " << document;
    } catch (const std::runtime_error& error) {
      EXPECT_NE(std::string(error.what()).find(needle), std::string::npos)
          << error.what();
    }
  };

  expect_error("garbage{\n", "line 1");
  expect_error("# TYPE x widget\n", "unknown metric type");
  expect_error("# TYPE x counter\n# TYPE x counter\n", "duplicate TYPE");
  expect_error("x 1\n", "undeclared metric");
  expect_error("# TYPE x counter\nx notanumber\n", "bad counter value");
  expect_error(
      "# TYPE h histogram\nh_bucket{le=\"3\"} 2\nh_bucket{le=\"7\"} 1\n"
      "h_sum 6\nh_count 3\n",
      "cumulative");
  // 16 sits inside the msb-4 octave whose buckets span two values (native
  // bounds there are 17, 19, ...), so it cannot be a bucket upper bound.
  expect_error(
      "# TYPE h histogram\nh_bucket{le=\"16\"} 1\nh_sum 6\nh_count 1\n",
      "not a native bucket bound");
  expect_error("# TYPE h histogram\nh_sum 6\n", "no _count sample");
  expect_error(
      "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 5\nh_sum 6\nh_count 3\n",
      "+Inf bucket disagrees");
  expect_error("# TYPE h histogram\nh 4\n", "bare sample for histogram");
  expect_error("# TYPE x counter\nx{le=\"3\" 1\n", "unterminated label");
}

TEST(ParsePrometheus, EmptyDocumentYieldsEmptySnapshot) {
  std::istringstream in("");
  const obs::MetricsSnapshot snap = parse_prometheus_text(in);
  EXPECT_TRUE(snap.metrics.empty());
}

}  // namespace
}  // namespace fnda::ops
