#include "serialize/csv.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace fnda {
namespace {

TEST(ParseCsvTest, SplitsRowsAndCells) {
  const auto rows = parse_csv("a,b,c\n1, 2 ,3\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"1", "2", "3"}));
}

TEST(ParseCsvTest, SkipsCommentsAndBlanks) {
  const auto rows = parse_csv("# comment\n\n  \nx,y\n# another\nz,w\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0], "x");
  EXPECT_EQ(rows[1][1], "w");
}

TEST(ParseCsvTest, TrailingCommaYieldsEmptyCell) {
  const auto rows = parse_csv("a,b,\n");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].size(), 3u);
  EXPECT_EQ(rows[0][2], "");
}

TEST(ParseMoneyTest, ParsesDecimals) {
  EXPECT_EQ(parse_money("4.5"), money(4.5));
  EXPECT_EQ(parse_money("12"), money(12));
  EXPECT_EQ(parse_money("0.000001"), Money::from_micros(1));
  EXPECT_EQ(parse_money("1e2"), money(100));
}

TEST(ParseMoneyTest, RejectsGarbage) {
  EXPECT_THROW(parse_money(""), std::invalid_argument);
  EXPECT_THROW(parse_money("abc"), std::invalid_argument);
  EXPECT_THROW(parse_money("4.5x"), std::invalid_argument);
}

TEST(ReadBookCsvTest, ParsesWithAndWithoutHeader) {
  const char* with_header =
      "side,identity,value\nbuyer,1,9\nseller,11,4.5\n";
  const OrderBook a = read_book_csv(with_header);
  EXPECT_EQ(a.buyer_count(), 1u);
  EXPECT_EQ(a.seller_count(), 1u);
  EXPECT_EQ(a.buyers()[0].identity, IdentityId{1});
  EXPECT_EQ(a.buyers()[0].value, money(9));
  EXPECT_EQ(a.sellers()[0].value, money(4.5));

  const OrderBook b = read_book_csv("buyer,1,9\nseller,11,4.5\n");
  EXPECT_EQ(b.buyer_count(), 1u);
  EXPECT_EQ(b.seller_count(), 1u);
}

TEST(ReadBookCsvTest, RejectsMalformedRows) {
  EXPECT_THROW(read_book_csv("buyer,1\n"), std::invalid_argument);
  EXPECT_THROW(read_book_csv("broker,1,9\n"), std::invalid_argument);
  EXPECT_THROW(read_book_csv("buyer,x,9\n"), std::invalid_argument);
  EXPECT_THROW(read_book_csv("buyer,1,nine\n"), std::invalid_argument);
}

TEST(ReadBookCsvTest, ErrorsNameTheRow) {
  try {
    read_book_csv("buyer,1,9\nseller,2,oops\n");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("'oops'"), std::string::npos);
  }
}

TEST(BookCsvRoundTripTest, WriteThenReadPreservesBook) {
  OrderBook book;
  book.add_buyer(IdentityId{1}, money(9));
  book.add_buyer(IdentityId{2}, money(4.25));
  book.add_seller(IdentityId{11}, money(0.5));

  const OrderBook round_trip = read_book_csv(write_book_csv(book));
  ASSERT_EQ(round_trip.buyer_count(), 2u);
  ASSERT_EQ(round_trip.seller_count(), 1u);
  EXPECT_EQ(round_trip.buyers()[1].value, money(4.25));
  EXPECT_EQ(round_trip.sellers()[0].identity, IdentityId{11});
}

TEST(MultiBookCsvTest, ParsesSchedules) {
  const MultiUnitBook book = read_multi_book_csv(
      "side,identity,schedule\nbuyer,1,9;8;6\nseller,11,7;5;2\n");
  ASSERT_EQ(book.buyers().size(), 1u);
  ASSERT_EQ(book.sellers().size(), 1u);
  EXPECT_EQ(book.buyers()[0].identity, IdentityId{1});
  EXPECT_EQ(book.buyers()[0].marginal_values,
            (std::vector<Money>{money(9), money(8), money(6)}));
  EXPECT_EQ(book.buyer_units(), 3u);
  EXPECT_EQ(book.seller_units(), 3u);
}

TEST(MultiBookCsvTest, RejectsBadSchedules) {
  EXPECT_THROW(read_multi_book_csv("buyer,1,\n"), std::invalid_argument);
  EXPECT_THROW(read_multi_book_csv("buyer,1,3;9\n"),  // increasing
               std::invalid_argument);
  EXPECT_THROW(read_multi_book_csv("broker,1,5\n"), std::invalid_argument);
  EXPECT_THROW(read_multi_book_csv("buyer,x,5\n"), std::invalid_argument);
}

TEST(MultiOutcomeCsvTest, EmitsUnitsAndPrices) {
  MultiUnitOutcome outcome;
  outcome.buyers.push_back(
      {IdentityId{0}, 2, money(10.5), {money(6), money(4.5)}});
  outcome.sellers.push_back({IdentityId{10}, 1, money(4.5), {money(4.5)}});
  EXPECT_EQ(write_multi_outcome_csv(outcome),
            "side,identity,units,total,per_unit\n"
            "buyer,0,2,10.5,6;4.5\n"
            "seller,10,1,4.5,4.5\n");
}

TEST(WriteOutcomeCsvTest, EmitsOneRowPerFill) {
  Outcome outcome;
  outcome.add_buy(BidId{0}, IdentityId{1}, money(4.5));
  outcome.add_sell(BidId{1}, IdentityId{11}, money(4.5));
  EXPECT_EQ(write_outcome_csv(outcome),
            "side,identity,price\nbuyer,1,4.5\nseller,11,4.5\n");
}

}  // namespace
}  // namespace fnda
