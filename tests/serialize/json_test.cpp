#include "serialize/json.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace fnda {
namespace {

TEST(JsonWriterTest, ObjectWithScalars) {
  JsonWriter w;
  w.begin_object();
  w.key("n");
  w.value(3);
  w.key("x");
  w.value(4.5);
  w.key("s");
  w.value("hi");
  w.key("b");
  w.value(true);
  w.key("z");
  w.null();
  w.end_object();
  EXPECT_EQ(w.str(), R"({"n":3,"x":4.5,"s":"hi","b":true,"z":null})");
}

TEST(JsonWriterTest, NestedArrays) {
  JsonWriter w;
  w.begin_array();
  w.value(1);
  w.begin_array();
  w.value(2);
  w.value(3);
  w.end_array();
  w.begin_object();
  w.key("k");
  w.value("v");
  w.end_object();
  w.end_array();
  EXPECT_EQ(w.str(), R"([1,[2,3],{"k":"v"}])");
}

TEST(JsonWriterTest, EscapesStrings) {
  EXPECT_EQ(JsonWriter::escape("a\"b\\c\nd\te"), "a\\\"b\\\\c\\nd\\te");
  EXPECT_EQ(JsonWriter::escape(std::string(1, '\x01')), "\\u0001");
  JsonWriter w;
  w.value("quote\"backslash\\");
  EXPECT_EQ(w.str(), R"("quote\"backslash\\")");
}

TEST(JsonWriterTest, MisuseThrows) {
  {
    JsonWriter w;
    w.begin_object();
    EXPECT_THROW(w.value(1), std::logic_error);  // value without key
  }
  {
    JsonWriter w;
    w.begin_array();
    EXPECT_THROW(w.key("k"), std::logic_error);  // key in array
  }
  {
    JsonWriter w;
    w.begin_object();
    EXPECT_THROW(w.end_array(), std::logic_error);  // mismatched close
  }
  {
    JsonWriter w;
    w.begin_object();
    EXPECT_THROW(w.str(), std::logic_error);  // unterminated
  }
}

TEST(OutcomeJsonTest, SerializesFills) {
  Outcome outcome;
  outcome.add_buy(BidId{0}, IdentityId{1}, money(7));
  outcome.add_sell(BidId{1}, IdentityId{11}, money(4));
  const std::string json = outcome_to_json(outcome);
  EXPECT_EQ(json,
            R"({"trades":1,"buyer_payments":7,"seller_receipts":4,)"
            R"("auctioneer_revenue":3,"fills":[)"
            R"({"side":"buyer","identity":1,"price":7},)"
            R"({"side":"seller","identity":11,"price":4}]})");
}

TEST(AuditJsonTest, SerializesRecords) {
  AuditLog log;
  log.append(SimTime{12}, RoundId{0}, AuditKind::kBidAccepted, "id-1 buyer@9");
  const std::string json = audit_to_json(log);
  EXPECT_EQ(json,
            R"([{"t_micros":12,"round":0,"kind":"bid-accepted",)"
            R"("detail":"id-1 buyer@9"}])");
}

TEST(SettlementJsonTest, SerializesDeliveries) {
  SettlementReport report;
  report.round = RoundId{3};
  report.failed = 1;
  report.confiscated_total = money(10);
  report.exchange_spread = money(2.5);
  Delivery ok;
  ok.seller = IdentityId{1};
  ok.buyer = IdentityId{2};
  ok.delivered = true;
  ok.buyer_paid = money(7);
  ok.seller_received = money(4.5);
  report.deliveries.push_back(ok);
  const std::string json = settlement_to_json(report);
  EXPECT_NE(json.find("\"round\":3"), std::string::npos);
  EXPECT_NE(json.find("\"failed_deliveries\":1"), std::string::npos);
  EXPECT_NE(json.find("\"confiscated_total\":10"), std::string::npos);
  EXPECT_NE(json.find("\"delivered\":true"), std::string::npos);
  EXPECT_NE(json.find("\"seller_received\":4.5"), std::string::npos);
}

TEST(AuditJsonTest, EmptyLogIsEmptyArray) {
  EXPECT_EQ(audit_to_json(AuditLog{}), "[]");
}

}  // namespace
}  // namespace fnda
