#include "market/settlement.h"

#include <gtest/gtest.h>

namespace fnda {
namespace {

class SettlementTest : public ::testing::Test {
 protected:
  IdentityRegistry registry_;
  CashLedger cash_;
  GoodsLedger goods_;
  EscrowService escrow_{cash_};
  SettlementEngine engine_{registry_, cash_, goods_, escrow_};
  AccountId exchange_ = IdentityRegistry::exchange_account();

  struct Trader {
    AccountId account;
    IdentityId identity;
  };

  Trader make_trader(bool endow_good) {
    Trader t;
    t.account = registry_.create_account();
    t.identity = registry_.register_identity(t.account);
    cash_.grant(t.account, money(100));
    escrow_.post(t.identity, t.account, money(10));
    if (endow_good) goods_.grant(t.account, 1);
    return t;
  }
};

TEST_F(SettlementTest, DeliveredTradeMovesCashAndGood) {
  const Trader buyer = make_trader(false);
  const Trader seller = make_trader(true);

  Outcome outcome;
  outcome.add_buy(BidId{0}, buyer.identity, money(7));
  outcome.add_sell(BidId{1}, seller.identity, money(4));

  const SettlementReport report = engine_.settle(RoundId{0}, outcome);
  ASSERT_EQ(report.deliveries.size(), 1u);
  EXPECT_TRUE(report.deliveries[0].delivered);
  EXPECT_EQ(report.failed, 0u);
  EXPECT_EQ(report.exchange_spread, money(3));

  EXPECT_EQ(goods_.units(buyer.account), 1u);
  EXPECT_EQ(goods_.units(seller.account), 0u);
  EXPECT_EQ(cash_.balance(buyer.account), money(100 - 10 - 7));
  EXPECT_EQ(cash_.balance(seller.account), money(100 - 10 + 4));
  EXPECT_EQ(cash_.balance(exchange_), money(3));
}

TEST_F(SettlementTest, FalseNameSellerConfiscatedAndPairCancelled) {
  const Trader buyer = make_trader(false);
  // An attacker account with NO good behind its seller identity.
  const Trader attacker = make_trader(false);

  Outcome outcome;
  outcome.add_buy(BidId{0}, buyer.identity, money(7));
  outcome.add_sell(BidId{1}, attacker.identity, money(4));

  const SettlementReport report = engine_.settle(RoundId{1}, outcome);
  ASSERT_EQ(report.deliveries.size(), 1u);
  EXPECT_FALSE(report.deliveries[0].delivered);
  EXPECT_EQ(report.failed, 1u);
  EXPECT_EQ(report.confiscated_total, money(10));

  // Pair cancelled: the buyer paid nothing, holds nothing.
  EXPECT_EQ(goods_.units(buyer.account), 0u);
  EXPECT_EQ(cash_.balance(buyer.account), money(90));  // only the deposit out
  // Attacker lost its deposit to the exchange.
  EXPECT_EQ(escrow_.held(attacker.identity), Money{});
  EXPECT_EQ(cash_.balance(exchange_), money(10));
  EXPECT_EQ(report.exchange_spread, Money{});
}

TEST_F(SettlementTest, MixedRoundSettlesEachPairIndependently) {
  const Trader buyer1 = make_trader(false);
  const Trader buyer2 = make_trader(false);
  const Trader honest = make_trader(true);
  const Trader cheat = make_trader(false);

  Outcome outcome;
  outcome.add_buy(BidId{0}, buyer1.identity, money(6));
  outcome.add_buy(BidId{1}, buyer2.identity, money(6));
  outcome.add_sell(BidId{2}, honest.identity, money(5));
  outcome.add_sell(BidId{3}, cheat.identity, money(5));

  const SettlementReport report = engine_.settle(RoundId{2}, outcome);
  EXPECT_EQ(report.deliveries.size(), 2u);
  EXPECT_EQ(report.failed, 1u);
  EXPECT_EQ(goods_.units(buyer1.account), 1u);  // matched with honest
  EXPECT_EQ(goods_.units(buyer2.account), 0u);  // matched with cheat
  EXPECT_EQ(report.exchange_spread, money(1));
  EXPECT_EQ(report.confiscated_total, money(10));
}

TEST_F(SettlementTest, SellerWithTwoIdentitiesOneGoodFailsSecondSale) {
  // Lemma 2's seller-side analogue: an account selling through two names
  // can deliver only once.
  const Trader buyer1 = make_trader(false);
  const Trader buyer2 = make_trader(false);
  Trader seller = make_trader(true);
  const IdentityId second = registry_.register_identity(seller.account);
  escrow_.post(second, seller.account, money(10));

  Outcome outcome;
  outcome.add_buy(BidId{0}, buyer1.identity, money(8));
  outcome.add_buy(BidId{1}, buyer2.identity, money(8));
  outcome.add_sell(BidId{2}, seller.identity, money(5));
  outcome.add_sell(BidId{3}, second, money(5));

  const SettlementReport report = engine_.settle(RoundId{3}, outcome);
  EXPECT_EQ(report.failed, 1u);
  EXPECT_EQ(report.confiscated_total, money(10));
  EXPECT_EQ(goods_.units(seller.account), 0u);
  // One delivery succeeded, one pair cancelled.
  EXPECT_EQ(goods_.units(buyer1.account) + goods_.units(buyer2.account), 1u);
}

TEST_F(SettlementTest, EmptyOutcomeEmptyReport) {
  const SettlementReport report = engine_.settle(RoundId{4}, Outcome{});
  EXPECT_TRUE(report.deliveries.empty());
  EXPECT_EQ(report.failed, 0u);
  EXPECT_EQ(report.confiscated_total, Money{});
}

TEST_F(SettlementTest, CashAndGoodsConservedAcrossSettlement) {
  const Trader buyer = make_trader(false);
  const Trader seller = make_trader(true);
  const Trader cheat = make_trader(false);
  const Trader buyer2 = make_trader(false);

  const Money cash_before = cash_.total();
  const std::size_t goods_before = goods_.total();

  Outcome outcome;
  outcome.add_buy(BidId{0}, buyer.identity, money(7));
  outcome.add_buy(BidId{1}, buyer2.identity, money(7));
  outcome.add_sell(BidId{2}, seller.identity, money(4));
  outcome.add_sell(BidId{3}, cheat.identity, money(4));
  engine_.settle(RoundId{5}, outcome);

  EXPECT_EQ(cash_.total(), cash_before);
  EXPECT_EQ(goods_.total(), goods_before);
}

}  // namespace
}  // namespace fnda
