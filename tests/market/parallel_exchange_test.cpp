// Regression tests for the multi-threaded sharded exchange.
//
// The contract under test: the parallel engine's output is a pure
// function of (config, seed) — bit-identical for every worker-thread
// count, equal to the pre-change engines at equal seeds — and failure
// modes (full mailboxes, throwing handlers) stay deterministic and
// propagate cleanly.
#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "market/epoch.h"
#include "market/exchange.h"
#include "market/fabric.h"
#include "market/multi_exchange.h"
#include "market/throughput.h"
#include "protocols/tpd.h"

namespace fnda {
namespace {

Money money(std::int64_t units) { return Money::from_units(units); }

// ---------------------------------------------------------------------------
// Golden digests of the PRE-CHANGE shared-queue MultiServerExchange
// (captured from the engine as of the previous commit, seed 42, 4 shards,
// 120 traders, 3 rounds, jitter 0).  Identity *numbering* changed with
// per-shard strided registries, so the digest covers everything
// account-level and aggregate: trades, revenue, the fill price/side
// sequence, bus totals, audit counts, ledger totals, and the clock.

struct GoldenRound {
  std::size_t trades;
  std::int64_t revenue_micros;
  std::uint64_t price_hash;
};

constexpr GoldenRound kGoldenRounds[4] = {
    {10u, 260000000ll, 9284622164738206275ull},
    {11u, 44000000ll, 16415840471058883043ull},
    {7u, 238000000ll, 1969116543166298083ull},
    {13u, 52000000ll, 7248508972865565475ull},
};

MultiServerExchange make_golden_exchange(const TpdProtocol& tpd,
                                         std::size_t threads,
                                         bool adaptive = true,
                                         std::size_t mailbox_capacity =
                                             std::size_t{1} << 16) {
  MultiExchangeConfig config;
  config.shards = 4;
  config.threads = threads;
  config.adaptive_epochs = adaptive;
  config.mailbox_capacity = mailbox_capacity;
  config.seed = 42;
  config.bus.base_latency = SimTime{1000};
  config.bus.jitter = SimTime{0};
  config.server.domain = ValueDomain{money(0), money(100)};
  MultiServerExchange exchange(tpd, config);
  for (std::size_t i = 0; i < 120; ++i) {
    const Side role = (i % 2 == 0) ? Side::kBuyer : Side::kSeller;
    const Money value =
        money(role == Side::kBuyer
                  ? 40 + static_cast<std::int64_t>((i * 7) % 60)
                  : 1 + static_cast<std::int64_t>((i * 5) % 50));
    TradingClient& trader = exchange.add_trader(role, value);
    if (role == Side::kSeller) exchange.grant_goods(trader.account(), 2);
  }
  return exchange;
}

std::uint64_t fill_hash(const Outcome& outcome) {
  std::uint64_t hash = 1469598103934665603ull;
  for (const Fill& fill : outcome.fills()) {
    hash ^= static_cast<std::uint64_t>(fill.price.micros()) * 31 +
            (fill.side == Side::kBuyer ? 17 : 71);
    hash *= 1099511628211ull;
  }
  return hash;
}

// (threads, adaptive): the digest must hold for every worker count with
// adaptive epoch windows on AND off — widening may only change *when*
// events run relative to the barriers, never what they compute.
class GoldenDigestTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, bool>> {};

TEST_P(GoldenDigestTest, MatchesPreChangeEngine) {
  const auto [threads, adaptive] = GetParam();
  const TpdProtocol tpd(money(50));
  MultiServerExchange exchange = make_golden_exchange(tpd, threads, adaptive);

  for (std::size_t r = 0; r < 3; ++r) {
    const std::vector<RoundId> rounds = exchange.run_round();
    for (std::size_t s = 0; s < 4; ++s) {
      const Outcome* outcome = exchange.server(s).outcome_of(rounds[s]);
      ASSERT_NE(outcome, nullptr) << "round " << r << " shard " << s;
      EXPECT_EQ(outcome->trade_count(), kGoldenRounds[s].trades);
      EXPECT_EQ(outcome->auctioneer_revenue().micros(),
                kGoldenRounds[s].revenue_micros);
      EXPECT_EQ(fill_hash(*outcome), kGoldenRounds[s].price_hash);
    }
  }

  std::size_t accepted = 0;
  for (const auto& trader : exchange.traders()) {
    accepted += trader->bids_accepted();
    EXPECT_EQ(trader->bids_rejected(), 0u);
  }
  EXPECT_EQ(accepted, 360u);

  const BusStats bus = exchange.bus_stats();
  EXPECT_EQ(bus.sent, 1686u);
  EXPECT_EQ(bus.delivered, 1686u);
  EXPECT_EQ(bus.duplicated, 0u);
  EXPECT_EQ(bus.dropped, 0u);
  EXPECT_EQ(bus.dead_lettered, 0u);
  EXPECT_EQ(bus.forwarded, 0u);  // account-hash routing is shard-local
  EXPECT_EQ(exchange.now(), SimTime{303000});

  EXPECT_EQ(exchange.merged_audit().size(), 507u);
  EXPECT_EQ(exchange.audit_count(AuditKind::kRoundOpened), 12u);
  EXPECT_EQ(exchange.audit_count(AuditKind::kBidAccepted), 360u);
  EXPECT_EQ(exchange.audit_count(AuditKind::kRoundCleared), 12u);
  EXPECT_EQ(exchange.audit_count(AuditKind::kDelivery), 123u);
  EXPECT_EQ(exchange.audit_count(AuditKind::kDeliveryFailed), 0u);
  EXPECT_EQ(exchange.audit_count(AuditKind::kDepositConfiscated), 0u);

  EXPECT_EQ(exchange.cash_balance(AccountId{0}), Money::from_micros(1782000000));
  EXPECT_EQ(exchange.cash_total(), Money::from_micros(120000000000ll));
  EXPECT_EQ(exchange.goods_total(), 180u);
  EXPECT_EQ(exchange.escrow_total_held(), Money::from_micros(3600000000ll));
  EXPECT_EQ(exchange.close_market(), Money::from_micros(3600000000ll));
}

// threads > shards exercises the clamp; the engine must not care.
INSTANTIATE_TEST_SUITE_P(
    ThreadCounts, GoldenDigestTest,
    ::testing::Combine(::testing::Values(std::size_t{1}, std::size_t{2},
                                         std::size_t{8}),
                       ::testing::Bool()));

// ---------------------------------------------------------------------------
// Full bit-identity across thread counts, on a lossy/jittery bus so every
// RNG stream is consulted.  The digest is exhaustive: fill sequences with
// identity ids, the merged audit dump (exact strings, exact order),
// per-shard BusStats, and per-trader counters.

struct SessionDigest {
  std::vector<std::string> audit_dump;
  std::vector<std::tuple<std::uint64_t, std::int64_t, int>> fills;
  std::vector<std::size_t> shard_delivered;
  std::vector<std::size_t> shard_dead_lettered;
  std::vector<std::size_t> shard_dropped;
  std::vector<std::size_t> shard_sent;
  std::size_t accepted = 0;
  std::size_t rejected = 0;
  std::size_t retransmissions = 0;
  std::int64_t exchange_cash = 0;
  std::int64_t refunded = 0;
  std::int64_t now = 0;

  bool operator==(const SessionDigest&) const = default;
};

SessionDigest run_lossy_session(std::size_t threads) {
  const TpdProtocol tpd(money(50));
  MultiExchangeConfig config;
  config.shards = 4;
  config.threads = threads;
  config.seed = 1234;
  config.bus.jitter = SimTime{500};
  config.bus.drop_probability = 0.02;
  config.bus.duplicate_probability = 0.02;
  config.client.retry_interval = SimTime::millis(20);
  config.server.domain = ValueDomain{money(0), money(100)};
  config.server.announce_interval = SimTime::millis(25);
  MultiServerExchange exchange(tpd, config);

  for (std::size_t i = 0; i < 160; ++i) {
    const Side role = (i % 2 == 0) ? Side::kBuyer : Side::kSeller;
    const Money value =
        money(role == Side::kBuyer
                  ? 30 + static_cast<std::int64_t>((i * 11) % 70)
                  : 1 + static_cast<std::int64_t>((i * 13) % 60));
    TradingClient& trader = exchange.add_trader(role, value);
    if (role == Side::kSeller) exchange.grant_goods(trader.account(), 3);
  }

  SessionDigest digest;
  for (std::size_t r = 0; r < 4; ++r) {
    const std::vector<RoundId> rounds = exchange.run_round();
    for (std::size_t s = 0; s < rounds.size(); ++s) {
      if (const Outcome* outcome = exchange.server(s).outcome_of(rounds[s])) {
        for (const Fill& fill : outcome->fills()) {
          digest.fills.emplace_back(fill.identity.value(),
                                    fill.price.micros(),
                                    fill.side == Side::kBuyer ? 1 : 0);
        }
      }
    }
  }
  for (const AuditRecord& record : exchange.merged_audit()) {
    digest.audit_dump.push_back(std::to_string(record.at.micros) + "|" +
                                std::to_string(record.round.value()) + "|" +
                                to_string(record.kind) + "|" + record.detail);
  }
  for (const BusStats& stats : exchange.shard_bus_stats()) {
    digest.shard_delivered.push_back(stats.delivered);
    digest.shard_dead_lettered.push_back(stats.dead_lettered);
    digest.shard_dropped.push_back(stats.dropped);
    digest.shard_sent.push_back(stats.sent);
  }
  for (const auto& trader : exchange.traders()) {
    digest.accepted += trader->bids_accepted();
    digest.rejected += trader->bids_rejected();
    digest.retransmissions += trader->retransmissions();
  }
  digest.exchange_cash = exchange.cash_balance(AccountId{0}).micros();
  digest.now = exchange.now().micros;
  digest.refunded = exchange.close_market().micros();

  // Merged conservation must hold no matter what the bus dropped/duped.
  const BusStats bus = exchange.bus_stats();
  EXPECT_EQ(bus.sent + bus.duplicated,
            bus.delivered + bus.dropped + bus.dead_lettered);
  EXPECT_GT(digest.accepted, 0u);
  return digest;
}

TEST(ParallelExchangeTest, LossySessionBitIdenticalAcrossThreadCounts) {
  const SessionDigest one = run_lossy_session(1);
  const SessionDigest two = run_lossy_session(2);
  const SessionDigest eight = run_lossy_session(8);
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, eight);
}

TEST(ParallelExchangeTest, ThroughputSessionIdenticalAcrossThreadCounts) {
  // The absolute values are golden: captured from the sort-at-close
  // engine before the incremental LiveBook replaced it.  The live path
  // must reproduce them bit for bit at every thread count.
  const TpdProtocol tpd(money(50));
  ThroughputConfig config;
  config.clients = 400;
  config.rounds = 3;
  config.shards = 4;
  config.jitter = SimTime{500};
  config.drop_probability = 0.01;
  config.seed = 7;

  ThroughputResult base;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    config.threads = threads;
    const ThroughputResult result = run_throughput_session(tpd, config);

    EXPECT_EQ(result.bids_accepted, 1169u) << "threads=" << threads;
    EXPECT_EQ(result.trades, 291u) << "threads=" << threads;
    EXPECT_EQ(result.sim_time, SimTime{304493}) << "threads=" << threads;
    EXPECT_EQ(result.bus.sent, 5355u) << "threads=" << threads;
    EXPECT_EQ(result.bus.delivered, 5306u) << "threads=" << threads;
    EXPECT_EQ(result.bus.dropped, 49u) << "threads=" << threads;
    EXPECT_EQ(result.bus.duplicated, 0u) << "threads=" << threads;

    // The incremental engine inserted every server-accepted bid (more
    // than the client-side ack count: the lossy bus dropped 14 acks),
    // finalized each shard's round, and never sorted at close.
    EXPECT_EQ(result.book.inserts, 1183u);
    EXPECT_EQ(result.book.rounds_finalized,
              config.rounds * config.shards);
    EXPECT_EQ(result.book.sorts_at_close, 0u);

    if (threads == 1u) {
      base = result;
      continue;
    }
    EXPECT_EQ(result.book.entries_shifted, base.book.entries_shifted);
    EXPECT_EQ(result.book.chunk_splits, base.book.chunk_splits);
    EXPECT_EQ(result.book.tie_entries_permuted,
              base.book.tie_entries_permuted);
    ASSERT_EQ(result.shard_bus.size(), base.shard_bus.size());
    for (std::size_t s = 0; s < base.shard_bus.size(); ++s) {
      EXPECT_EQ(result.shard_bus[s].sent, base.shard_bus[s].sent);
      EXPECT_EQ(result.shard_bus[s].delivered, base.shard_bus[s].delivered);
    }
  }
}

// ---------------------------------------------------------------------------
// shards == 1 must reproduce the single-server ExchangeSimulation output
// exactly — same RNG streams, same message ids, same audit dump — even on
// a lossy, jittery bus.

TEST(ParallelExchangeTest, SingleShardMatchesExchangeSimulation) {
  const TpdProtocol tpd(money(50));

  BusConfig bus;
  bus.jitter = SimTime{500};
  bus.drop_probability = 0.05;
  bus.duplicate_probability = 0.05;

  ExchangeConfig single;
  single.bus = bus;
  single.seed = 99;
  single.client.retry_interval = SimTime::millis(20);
  single.server.domain = ValueDomain{money(0), money(100)};
  ExchangeSimulation expected(tpd, single);

  MultiExchangeConfig sharded;
  sharded.shards = 1;
  sharded.threads = 1;
  sharded.bus = bus;
  sharded.seed = 99;
  sharded.client.retry_interval = SimTime::millis(20);
  sharded.server.domain = ValueDomain{money(0), money(100)};
  MultiServerExchange actual(tpd, sharded);

  for (std::size_t i = 0; i < 60; ++i) {
    const Side role = (i % 2 == 0) ? Side::kBuyer : Side::kSeller;
    const Money value = money(role == Side::kBuyer
                                  ? 45 + static_cast<std::int64_t>(i % 50)
                                  : 1 + static_cast<std::int64_t>(i % 40));
    expected.add_trader(role, value);
    actual.add_trader(role, value);
  }

  for (std::size_t r = 0; r < 3; ++r) {
    const RoundId expected_round = expected.run_round();
    const std::vector<RoundId> actual_rounds = actual.run_round();
    ASSERT_EQ(actual_rounds.size(), 1u);
    EXPECT_EQ(actual_rounds[0], expected_round);
  }

  EXPECT_EQ(actual.now(), expected.queue().now());
  const BusStats& want = expected.bus().stats();
  const BusStats got = actual.bus_stats();
  EXPECT_EQ(got.sent, want.sent);
  EXPECT_EQ(got.delivered, want.delivered);
  EXPECT_EQ(got.duplicated, want.duplicated);
  EXPECT_EQ(got.dropped, want.dropped);
  EXPECT_EQ(got.dead_lettered, want.dead_lettered);
  EXPECT_EQ(got.forwarded, 0u);

  // The audit logs must match line for line — timestamps, identity ids,
  // amounts, order.
  EXPECT_EQ(actual.audit(0).dump(), expected.audit().dump());
  EXPECT_EQ(actual.close_market(), expected.close_market());
}

// ---------------------------------------------------------------------------
// Cross-shard traffic: ping-pong between endpoints on different shards
// exercises forward/inject and must be bit-identical across thread counts
// even with latency jitter and duplicates in play.

struct PingPong : Endpoint {
  MessageBus* bus = nullptr;
  AddressId self;
  AddressId peer;
  std::vector<std::tuple<std::int64_t, std::uint64_t, std::uint64_t>> log;

  void on_message(const Envelope& envelope) override {
    const auto& msg = std::get<RoundOpenMsg>(envelope.payload);
    log.emplace_back(envelope.delivered_at.micros, envelope.id.value(),
                     msg.round.value());
    if (msg.round.value() > 0) {
      bus->send(self, peer,
                RoundOpenMsg{RoundId{msg.round.value() - 1},
                             envelope.delivered_at});
    }
  }
};

struct PairDigest {
  std::vector<std::tuple<std::int64_t, std::uint64_t, std::uint64_t>> log_a;
  std::vector<std::tuple<std::int64_t, std::uint64_t, std::uint64_t>> log_b;
  BusStats stats_a;
  BusStats stats_b;
};

PairDigest run_ping_pong(std::size_t threads, std::size_t mailbox_capacity,
                         BusConfig bus_config) {
  Fabric fabric(2, mailbox_capacity);
  EventQueue queue_a;
  EventQueue queue_b;
  BusConfig config_a = bus_config;
  config_a.first_message_id = 0;
  config_a.message_id_stride = 2;
  BusConfig config_b = bus_config;
  config_b.first_message_id = 1;
  config_b.message_id_stride = 2;
  MessageBus bus_a(queue_a, config_a, Rng(11), fabric, 0);
  MessageBus bus_b(queue_b, config_b, Rng(22), fabric, 1);

  PingPong a;
  PingPong b;
  a.bus = &bus_a;
  b.bus = &bus_b;
  a.self = bus_a.attach("a", a);
  b.self = bus_b.attach("b", b);
  a.peer = b.self;
  b.peer = a.self;

  // Two independent volleys kicked off from events on each shard.
  queue_a.schedule_at(SimTime{10}, [&] {
    bus_a.send(a.self, a.peer, RoundOpenMsg{RoundId{6}, SimTime{10}});
  });
  queue_b.schedule_at(SimTime{15}, [&] {
    bus_b.send(b.self, b.peer, RoundOpenMsg{RoundId{5}, SimTime{15}});
  });

  EpochDriver driver(fabric, {{&queue_a, &bus_a}, {&queue_b, &bus_b}},
                     bus_config.base_latency);
  driver.drive(threads);

  PairDigest digest;
  digest.log_a = a.log;
  digest.log_b = b.log;
  digest.stats_a = bus_a.stats();
  digest.stats_b = bus_b.stats();
  return digest;
}

TEST(ParallelExchangeTest, CrossShardPingPongDeterministicAcrossThreads) {
  BusConfig bus;
  bus.jitter = SimTime{300};
  bus.duplicate_probability = 0.1;

  const PairDigest one = run_ping_pong(1, 1 << 10, bus);
  const PairDigest two = run_ping_pong(2, 1 << 10, bus);

  EXPECT_FALSE(one.log_a.empty());
  EXPECT_FALSE(one.log_b.empty());
  EXPECT_EQ(one.log_a, two.log_a);
  EXPECT_EQ(one.log_b, two.log_b);
  EXPECT_GT(one.stats_a.forwarded, 0u);
  EXPECT_EQ(one.stats_a.forwarded, two.stats_a.forwarded);
  EXPECT_EQ(one.stats_b.forwarded, two.stats_b.forwarded);
  EXPECT_EQ(one.stats_a.sent, two.stats_a.sent);
  EXPECT_EQ(one.stats_b.sent, two.stats_b.sent);

  // Merged conservation with every message crossing shards.
  for (const PairDigest* digest : {&one, &two}) {
    const std::size_t sent = digest->stats_a.sent + digest->stats_b.sent;
    const std::size_t duplicated =
        digest->stats_a.duplicated + digest->stats_b.duplicated;
    const std::size_t delivered =
        digest->stats_a.delivered + digest->stats_b.delivered;
    const std::size_t dropped =
        digest->stats_a.dropped + digest->stats_b.dropped;
    const std::size_t dead =
        digest->stats_a.dead_lettered + digest->stats_b.dead_lettered;
    EXPECT_EQ(sent + duplicated, delivered + dropped + dead);
  }
}

// ---------------------------------------------------------------------------
// Backpressure: a full mailbox rejects the push and the sender accounts
// the message dropped — the same count on every thread count.

struct FloodSource : Endpoint {
  void on_message(const Envelope&) override {}
};

TEST(ParallelExchangeTest, MailboxBackpressureDropsDeterministically) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}}) {
    Fabric fabric(2, 4);  // tiny ring: 4 slots
    EventQueue queue_a;
    EventQueue queue_b;
    MessageBus bus_a(queue_a, BusConfig{}, Rng(3), fabric, 0);
    MessageBus bus_b(queue_b, BusConfig{}, Rng(4), fabric, 1);

    FloodSource source;
    FloodSource sink;
    const AddressId from = bus_a.attach("source", source);
    const AddressId to = bus_b.attach("sink", sink);

    queue_a.schedule_at(SimTime{1}, [&] {
      for (int i = 0; i < 10; ++i) {
        bus_a.send(from, to, RoundOpenMsg{RoundId{0}, SimTime{1}});
      }
    });

    EpochDriver driver(fabric, {{&queue_a, &bus_a}, {&queue_b, &bus_b}},
                       SimTime{1000});
    driver.drive(threads);

    const BusStats& stats_a = bus_a.stats();
    const BusStats& stats_b = bus_b.stats();
    EXPECT_EQ(stats_a.sent, 10u) << "threads=" << threads;
    EXPECT_EQ(stats_a.forwarded, 10u);
    EXPECT_EQ(stats_a.mailbox_overflow, 6u);  // 4 fit, 6 rejected
    EXPECT_EQ(stats_a.dropped, 6u);
    EXPECT_EQ(stats_b.delivered, 4u);
    EXPECT_EQ(stats_a.sent + stats_a.duplicated,
              stats_b.delivered + stats_a.dropped + stats_b.dead_lettered);
  }
}

// ---------------------------------------------------------------------------
// Torn epoch: an exception inside a shard's event handler must stop every
// worker at the next barrier and resurface on the driving thread.

TEST(ParallelExchangeTest, WorkerExceptionPropagatesCleanly) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}}) {
    Fabric fabric(2, 64);
    EventQueue queue_a;
    EventQueue queue_b;
    MessageBus bus_a(queue_a, BusConfig{}, Rng(5), fabric, 0);
    MessageBus bus_b(queue_b, BusConfig{}, Rng(6), fabric, 1);

    queue_a.schedule_at(SimTime{5}, [] {
      throw std::runtime_error("torn epoch");
    });
    bool other_ran = false;
    queue_b.schedule_at(SimTime{5}, [&] { other_ran = true; });
    // Work far in the future that must never run once shard 0 failed.
    bool late_ran = false;
    queue_b.schedule_at(SimTime::seconds(10), [&] { late_ran = true; });

    EpochDriver driver(fabric, {{&queue_a, &bus_a}, {&queue_b, &bus_b}},
                       SimTime{1000});
    EXPECT_THROW(driver.drive(threads), std::runtime_error)
        << "threads=" << threads;
    EXPECT_FALSE(late_ran);
    EXPECT_TRUE(other_ran);  // the in-flight epoch itself completes
  }
}

// Drive after a failed drive keeps working (errors are per-drive state).
TEST(ParallelExchangeTest, DriverRecoversAfterFailure) {
  Fabric fabric(1, 64);
  EventQueue queue;
  MessageBus bus(queue, BusConfig{}, Rng(8), fabric, 0);
  queue.schedule_at(SimTime{1}, [] { throw std::logic_error("boom"); });
  EpochDriver driver(fabric, {{&queue, &bus}}, SimTime{1000});
  EXPECT_THROW(driver.drive(1), std::logic_error);

  bool ran = false;
  queue.schedule_at(SimTime{2}, [&] { ran = true; });
  driver.drive(1);
  EXPECT_TRUE(ran);
}

// ---------------------------------------------------------------------------
// Epoch accounting: barrier crossings are a deterministic function of the
// workload — identical at every thread count — and the adaptive window
// policy must cut them at least in half on the identity-partitioned
// default workload without changing one observable output.

TEST(ParallelExchangeTest, EpochStatsThreadInvariantAndAdaptiveCutsBarriers) {
  const TpdProtocol tpd(money(50));
  ThroughputConfig config;
  config.clients = 240;
  config.rounds = 3;
  config.shards = 4;
  config.seed = 5;

  ThroughputResult base;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    config.threads = threads;
    const ThroughputResult result = run_throughput_session(tpd, config);
    if (threads == 1u) {
      base = result;
      continue;
    }
    EXPECT_EQ(result.epoch.epochs, base.epoch.epochs) << "threads=" << threads;
    EXPECT_EQ(result.epoch.barriers, base.epoch.barriers)
        << "threads=" << threads;
    EXPECT_EQ(result.epoch.widened, base.epoch.widened)
        << "threads=" << threads;
    EXPECT_EQ(result.epoch.injected, base.epoch.injected)
        << "threads=" << threads;
  }

  config.threads = 1;
  config.adaptive = false;
  const ThroughputResult fixed = run_throughput_session(tpd, config);
  EXPECT_EQ(fixed.epoch.widened, 0u);
  EXPECT_GE(fixed.epoch.barriers, 2 * base.epoch.barriers)
      << "adaptive windows must cut barrier crossings at least in half";
  // Same outputs either way: widening only moves barriers, not events.
  EXPECT_EQ(fixed.bids_accepted, base.bids_accepted);
  EXPECT_EQ(fixed.trades, base.trades);
  EXPECT_EQ(fixed.sim_time, base.sim_time);
  EXPECT_EQ(fixed.bus.sent, base.bus.sent);
}

// ---------------------------------------------------------------------------
// The kIsolated topology declaration is enforced, not trusted: a
// cross-shard send on a fabric declared isolated throws at the sender —
// deterministically, on every thread count — instead of silently breaking
// the unbounded-window math.

TEST(ParallelExchangeTest, IsolatedTopologyRejectsCrossShardSends) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}}) {
    Fabric fabric(2, 64);
    fabric.set_topology(ShardTopology::kIsolated);
    EventQueue queue_a;
    EventQueue queue_b;
    MessageBus bus_a(queue_a, BusConfig{}, Rng(3), fabric, 0);
    MessageBus bus_b(queue_b, BusConfig{}, Rng(4), fabric, 1);

    FloodSource source;
    FloodSource sink;
    const AddressId from = bus_a.attach("source", source);
    const AddressId to = bus_b.attach("sink", sink);
    queue_a.schedule_at(SimTime{1}, [&] {
      bus_a.send(from, to, RoundOpenMsg{RoundId{0}, SimTime{1}});
    });

    EpochDriver driver(fabric, {{&queue_a, &bus_a}, {&queue_b, &bus_b}},
                       SimTime{1000});
    EXPECT_THROW(driver.drive(threads), std::logic_error)
        << "threads=" << threads;
  }
}

// Same-shard traffic on an isolated fabric stays legal, and the adaptive
// driver collapses the whole drive into one unbounded epoch (3 barrier
// crossings: window, drain, final window) instead of stepping
// lookahead-sized windows across the event horizon.

TEST(ParallelExchangeTest, IsolatedTopologyCollapsesToOneEpoch) {
  Fabric fabric(2, 64);
  fabric.set_topology(ShardTopology::kIsolated);
  EventQueue queue_a;
  EventQueue queue_b;
  MessageBus bus_a(queue_a, BusConfig{}, Rng(3), fabric, 0);
  MessageBus bus_b(queue_b, BusConfig{}, Rng(4), fabric, 1);

  std::vector<std::int64_t> ran_a;
  std::vector<std::int64_t> ran_b;
  for (std::int64_t t = 10; t <= 50'010; t += 5'000) {
    queue_a.schedule_at(SimTime{t}, [&ran_a, t] { ran_a.push_back(t); });
    queue_b.schedule_at(SimTime{t + 3}, [&ran_b, t] {
      ran_b.push_back(t + 3);
    });
  }

  EpochDriver driver(fabric, {{&queue_a, &bus_a}, {&queue_b, &bus_b}},
                     SimTime{1000});
  const EpochStats stats = driver.drive(2);
  EXPECT_EQ(stats.epochs, 1u);
  EXPECT_EQ(stats.barriers, 3u);
  EXPECT_EQ(stats.widened, 1u);
  EXPECT_EQ(ran_a.size(), 11u);
  EXPECT_EQ(ran_b.size(), 11u);
  EXPECT_TRUE(std::is_sorted(ran_a.begin(), ran_a.end()));
}

// ---------------------------------------------------------------------------
// Gap widening on a connected fabric: when the two smallest shard heads
// are >= 2 lookaheads apart, the window stretches to
// min(m2 - L, m1 + 2L - 1) — fewer epochs than the fixed schedule, same
// events in the same order.

TEST(ParallelExchangeTest, AdaptiveWindowWidensAcrossIdleGaps) {
  EpochStats stats[2];
  std::vector<std::int64_t> ran[2];
  for (const bool adaptive : {false, true}) {
    Fabric fabric(2, 64);  // kAllToAll: cross-shard traffic stays legal
    EventQueue queue_a;
    EventQueue queue_b;
    MessageBus bus_a(queue_a, BusConfig{}, Rng(3), fabric, 0);
    MessageBus bus_b(queue_b, BusConfig{}, Rng(4), fabric, 1);

    // Shard A: a burst of local work; shard B: one far-future event, so
    // m2 - m1 >= 2L holds throughout A's burst.
    std::vector<std::int64_t>& log = ran[adaptive];
    for (std::int64_t t = 10; t < 9'710; t += 500) {
      queue_a.schedule_at(SimTime{t}, [&log, t] { log.push_back(t); });
    }
    queue_b.schedule_at(SimTime{100'000}, [&log] { log.push_back(100'000); });

    EpochDriver driver(fabric, {{&queue_a, &bus_a}, {&queue_b, &bus_b}},
                       SimTime{1000}, adaptive);
    stats[adaptive] = driver.drive(1);
  }
  EXPECT_EQ(ran[0], ran[1]);
  EXPECT_EQ(stats[0].widened, 0u);
  EXPECT_GT(stats[1].widened, 0u);
  EXPECT_LT(stats[1].epochs, stats[0].epochs);
  EXPECT_LT(stats[1].barriers, stats[0].barriers);
}

// ---------------------------------------------------------------------------
// Thread-count validation at the session layer: 0 resolves to hardware
// concurrency clamped to shards; the exchange reports what it ran with.

TEST(ParallelExchangeTest, ThreadZeroResolvesToHardwareClampedToShards) {
  const TpdProtocol tpd(money(50));
  MultiExchangeConfig config;
  config.shards = 2;
  config.threads = 0;
  MultiServerExchange exchange(tpd, config);
  EXPECT_GE(exchange.thread_count(), 1u);
  EXPECT_LE(exchange.thread_count(), 2u);
}

}  // namespace
}  // namespace fnda
