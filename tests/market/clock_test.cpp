#include "market/clock.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

namespace fnda {
namespace {

TEST(SimTimeTest, ArithmeticAndFactories) {
  EXPECT_EQ(SimTime::millis(2).micros, 2000);
  EXPECT_EQ(SimTime::seconds(1).micros, 1'000'000);
  EXPECT_EQ((SimTime{3} + SimTime{4}).micros, 7);
  EXPECT_EQ((SimTime{9} - SimTime{4}).micros, 5);
  EXPECT_LT(SimTime{1}, SimTime{2});
}

TEST(EventQueueTest, ExecutesInTimeOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.schedule_at(SimTime{30}, [&] { order.push_back(3); });
  queue.schedule_at(SimTime{10}, [&] { order.push_back(1); });
  queue.schedule_at(SimTime{20}, [&] { order.push_back(2); });
  EXPECT_EQ(queue.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(queue.now(), SimTime{30});
}

TEST(EventQueueTest, FifoAmongEqualTimes) {
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    queue.schedule_at(SimTime{100}, [&order, i] { order.push_back(i); });
  }
  queue.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, ScheduleAfterUsesCurrentTime) {
  EventQueue queue;
  SimTime observed{-1};
  queue.schedule_at(SimTime{50}, [&] {
    queue.schedule_after(SimTime{25}, [&] { observed = queue.now(); });
  });
  queue.run();
  EXPECT_EQ(observed, SimTime{75});
}

TEST(EventQueueTest, PastSchedulingClampsToNow) {
  EventQueue queue;
  bool ran = false;
  queue.schedule_at(SimTime{100}, [&] {
    queue.schedule_at(SimTime{10}, [&] {
      ran = true;
      EXPECT_EQ(queue.now(), SimTime{100});
    });
  });
  queue.run();
  EXPECT_TRUE(ran);
}

TEST(EventQueueTest, StepReturnsFalseWhenEmpty) {
  EventQueue queue;
  EXPECT_FALSE(queue.step());
  queue.schedule_at(SimTime{1}, [] {});
  EXPECT_TRUE(queue.step());
  EXPECT_FALSE(queue.step());
}

TEST(EventQueueTest, RunUntilStopsAtBoundary) {
  EventQueue queue;
  int count = 0;
  queue.schedule_at(SimTime{10}, [&] { ++count; });
  queue.schedule_at(SimTime{20}, [&] { ++count; });
  queue.schedule_at(SimTime{30}, [&] { ++count; });
  EXPECT_EQ(queue.run_until(SimTime{20}), 2u);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(queue.pending(), 1u);
}

TEST(EventQueueTest, PushBehindDrainPositionStaysOrdered) {
  // After a partial run_until, now() lags the drain position inside the
  // current bucket.  A push landing between the two (here: at the exact
  // instant just executed) must still fire before everything later.
  EventQueue queue;
  std::vector<int> order;
  queue.schedule_at(SimTime{10}, [&] { order.push_back(1); });
  queue.schedule_at(SimTime{200}, [&] { order.push_back(3); });
  EXPECT_EQ(queue.run_until(SimTime{50}), 1u);
  EXPECT_EQ(queue.now(), SimTime{10});
  queue.schedule_at(SimTime{10}, [&] { order.push_back(2); });
  queue.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, OrderHoldsAcrossBucketAndHorizonBoundaries) {
  // Events straddling wheel buckets (256 us) and the wheel horizon
  // (~262 ms) interleave back into exact time order.
  EventQueue queue;
  std::vector<std::int64_t> order;
  const std::vector<std::int64_t> times = {
      300'000'000, 255, 256, 1'000'000, 257, 262'144, 3, 262'143, 500'000'000};
  for (const std::int64_t t : times) {
    queue.schedule_at(SimTime{t}, [&order, t] { order.push_back(t); });
  }
  EXPECT_EQ(queue.run(), times.size());
  std::vector<std::int64_t> expected = times;
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(order, expected);
}

TEST(EventQueueTest, NextTimePeeksWithoutExecuting) {
  EventQueue queue;
  EXPECT_EQ(queue.next_time(), std::nullopt);
  bool ran = false;
  queue.schedule_at(SimTime{42}, [&] { ran = true; });
  queue.schedule_at(SimTime{7}, [] {});
  ASSERT_TRUE(queue.next_time().has_value());
  EXPECT_EQ(queue.next_time()->micros, 7);
  EXPECT_FALSE(ran);
  EXPECT_EQ(queue.now(), SimTime{0});  // peeking does not advance the clock
  EXPECT_EQ(queue.run(), 2u);
  EXPECT_TRUE(ran);
  EXPECT_EQ(queue.next_time(), std::nullopt);
}

TEST(EventQueueTest, RunUntilBoundsBatchedSameInstantWork) {
  // Entries sharing a timestamp drain as one batch; the `until` bound must
  // still cut between instants, never mid-check into the next one.
  EventQueue queue;
  std::vector<std::int64_t> order;
  for (int i = 0; i < 3; ++i) {
    queue.schedule_at(SimTime{10}, [&] { order.push_back(10); });
  }
  queue.schedule_at(SimTime{11}, [&] { order.push_back(11); });
  EXPECT_EQ(queue.run_until(SimTime{10}), 3u);
  EXPECT_EQ(order, (std::vector<std::int64_t>{10, 10, 10}));
  EXPECT_EQ(queue.run_until(SimTime{11}), 1u);
  EXPECT_EQ(order, (std::vector<std::int64_t>{10, 10, 10, 11}));
}

TEST(EventQueueTest, RunCapGuardsAgainstLoops) {
  EventQueue queue;
  std::function<void()> reschedule = [&] {
    queue.schedule_after(SimTime{1}, reschedule);
  };
  queue.schedule_at(SimTime{0}, reschedule);
  EXPECT_EQ(queue.run(100), 100u);
  EXPECT_GE(queue.pending(), 1u);
}

}  // namespace
}  // namespace fnda
