// Throughput-substrate behaviour: dead-lettering across re-attach,
// message conservation under a lossy/duplicating bus at scale, the
// bounded dedup filter's generation rollover, retained-round eviction,
// and the sharded multi-server exchange (including deterministic replay).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "market/bus.h"
#include "market/exchange.h"
#include "market/multi_exchange.h"
#include "market/throughput.h"
#include "protocols/tpd.h"

namespace fnda {
namespace {

class Recorder : public Endpoint {
 public:
  void on_message(const Envelope& envelope) override {
    received.push_back(envelope);
  }
  std::vector<Envelope> received;
};

BusConfig quiet_bus() {
  BusConfig config;
  config.base_latency = SimTime{1000};
  config.jitter = SimTime{0};
  return config;
}

// Regression: a message in flight across a detach + re-attach must be
// dead-lettered, not delivered to the replacement endpoint (the slab
// makes stale deliveries cheap to create; the binding generation in the
// delivery key is what catches them).
TEST(MessageBusTest, ReattachDoesNotReceiveInFlight) {
  EventQueue queue;
  MessageBus bus(queue, quiet_bus(), Rng(1));
  Recorder old_endpoint;
  Recorder new_endpoint;
  const AddressId address = bus.attach("b", old_endpoint);
  bus.send("a", "b", RoundClosedMsg{});
  bus.detach("b");
  bus.attach(address, new_endpoint);
  queue.run();
  EXPECT_TRUE(old_endpoint.received.empty());
  EXPECT_TRUE(new_endpoint.received.empty());
  EXPECT_EQ(bus.stats().dead_lettered, 1u);

  // The replacement is live for traffic sent after the re-attach.
  bus.send("a", "b", RoundClosedMsg{});
  queue.run();
  EXPECT_EQ(new_endpoint.received.size(), 1u);
  EXPECT_EQ(bus.stats().dead_lettered, 1u);
}

// Conservation under stress: 1k endpoints, lossy + duplicating bus with
// jitter, and a slice of receivers detached while traffic is in flight.
// Every scheduled copy must be accounted for:
//   sent == delivered + dropped + dead_lettered - duplicated.
TEST(MessageBusTest, StressConservationHoldsAtScale) {
  constexpr std::size_t kClients = 1000;
  constexpr int kVolleys = 20;
  EventQueue queue;
  BusConfig config;
  config.base_latency = SimTime{1000};
  config.jitter = SimTime{500};
  config.drop_probability = 0.05;
  config.duplicate_probability = 0.05;
  MessageBus bus(queue, config, Rng(42));

  std::vector<std::unique_ptr<Recorder>> endpoints;
  std::vector<AddressId> addresses;
  const AddressId sender = bus.intern("sender");
  for (std::size_t i = 0; i < kClients; ++i) {
    endpoints.push_back(std::make_unique<Recorder>());
    addresses.push_back(
        bus.attach("client-" + std::to_string(i), *endpoints[i]));
  }

  for (int volley = 0; volley < kVolleys; ++volley) {
    for (std::size_t i = 0; i < kClients; ++i) {
      bus.send(sender, addresses[i], RoundOpenMsg{RoundId{1}, queue.now()});
    }
    if (volley == kVolleys / 2) {
      // Detach every tenth receiver mid-flight: their outstanding
      // deliveries dead-letter instead of reaching a stale endpoint.
      for (std::size_t i = 0; i < kClients; i += 10) {
        bus.detach(addresses[i]);
      }
    }
    queue.run();
  }

  const BusStats& stats = bus.stats();
  EXPECT_EQ(stats.sent, kClients * kVolleys);
  EXPECT_GT(stats.dropped, 0u);
  EXPECT_GT(stats.duplicated, 0u);
  EXPECT_GT(stats.dead_lettered, 0u);
  EXPECT_EQ(stats.sent + stats.duplicated,
            stats.delivered + stats.dropped + stats.dead_lettered);

  std::size_t received = 0;
  for (const auto& endpoint : endpoints) received += endpoint->received.size();
  EXPECT_EQ(received, stats.delivered);
}

// The bounded filter forgets an id only after two full generations of
// fresh ids have passed — and then genuinely forgets it.
TEST(DedupFilterTest, GenerationRolloverForgetsOldIds) {
  DedupFilter filter(4);
  for (std::uint64_t id = 1; id <= 4; ++id) {
    EXPECT_TRUE(filter.fresh(MessageId{id}));
  }
  // Fills the current generation; 5 rolls it over.
  EXPECT_TRUE(filter.fresh(MessageId{5}));
  // Ids 1..4 moved to the previous generation: still remembered.
  for (std::uint64_t id = 1; id <= 4; ++id) {
    EXPECT_FALSE(filter.fresh(MessageId{id}));
  }
  for (std::uint64_t id = 6; id <= 8; ++id) {
    EXPECT_TRUE(filter.fresh(MessageId{id}));
  }
  // 9 triggers the second rollover, discarding the {1..4} generation.
  EXPECT_TRUE(filter.fresh(MessageId{9}));
  EXPECT_TRUE(filter.fresh(MessageId{1}))
      << "two rollovers past an id, the filter must have forgotten it";
  EXPECT_EQ(filter.seen_count(), 10u);
}

TEST(ServerTest, RetainedRoundsEvictsOldestCompletedRounds) {
  const TpdProtocol tpd(money(4.5));
  ExchangeConfig config;
  config.seed = 7;
  config.server.retained_rounds = 2;
  ExchangeSimulation exchange(tpd, config);
  exchange.add_trader(Side::kBuyer, money(9));
  exchange.add_trader(Side::kSeller, money(2));

  std::vector<RoundId> rounds;
  for (int i = 0; i < 3; ++i) rounds.push_back(exchange.run_round());

  EXPECT_EQ(exchange.server().rounds_completed(), 3u);
  EXPECT_EQ(exchange.server().outcome_of(rounds[0]), nullptr)
      << "oldest round should have been evicted";
  EXPECT_FALSE(exchange.server().replay_round(rounds[0]).has_value());
  for (int i = 1; i < 3; ++i) {
    ASSERT_NE(exchange.server().outcome_of(rounds[i]), nullptr);
    EXPECT_NE(exchange.server().settlement_of(rounds[i]), nullptr);
  }
}

TEST(MultiServerExchangeTest, PartitionsTradersAcrossShards) {
  const TpdProtocol tpd(money(4.5));
  MultiExchangeConfig config;
  config.shards = 4;
  config.seed = 3;
  MultiServerExchange exchange(tpd, config);
  std::vector<std::size_t> population(config.shards, 0);
  for (int i = 0; i < 64; ++i) {
    const Side role = (i % 2 == 0) ? Side::kBuyer : Side::kSeller;
    TradingClient& trader =
        exchange.add_trader(role, money(role == Side::kBuyer ? 90 : 2));
    const std::size_t shard = exchange.shard_of(trader.account());
    ASSERT_LT(shard, config.shards);
    EXPECT_EQ(shard, exchange.shard_of(trader.account()))
        << "shard assignment must be stable";
    ++population[shard];
  }
  for (std::size_t shard = 0; shard < config.shards; ++shard) {
    EXPECT_GT(population[shard], 0u)
        << "64 accounts should reach every one of 4 shards";
  }
}

TEST(MultiServerExchangeTest, RunsRoundsOnEveryShardAndSettles) {
  const TpdProtocol tpd(money(4.5));
  MultiExchangeConfig config;
  config.shards = 3;
  config.seed = 5;
  MultiServerExchange exchange(tpd, config);
  for (int i = 0; i < 24; ++i) {
    exchange.add_trader(Side::kBuyer, money(60 + i));
    exchange.add_trader(Side::kSeller, money(2 + i));
  }

  const std::vector<RoundId> rounds = exchange.run_round();
  ASSERT_EQ(rounds.size(), config.shards);
  EXPECT_EQ(exchange.rounds_completed(), config.shards);

  std::size_t trades = 0;
  for (std::size_t shard = 0; shard < config.shards; ++shard) {
    const Outcome* outcome = exchange.server(shard).outcome_of(rounds[shard]);
    ASSERT_NE(outcome, nullptr);
    trades += outcome->trade_count();
    // Audit replay of the stored book reproduces the stored outcome.
    const auto replayed = exchange.server(shard).replay_round(rounds[shard]);
    ASSERT_TRUE(replayed.has_value());
    EXPECT_EQ(replayed->fills(), outcome->fills());
  }
  EXPECT_GT(trades, 0u) << "wide value spread should clear trades";

  const Money refunded = exchange.close_market();
  EXPECT_GE(refunded.micros(), 0);
}

// The sharded session is deterministic in its seed: equal seeds produce
// identical volumes and transport statistics, unequal seeds diverge.
TEST(ThroughputSessionTest, DeterministicInSeed) {
  const TpdProtocol tpd(money(50));
  ThroughputConfig config;
  config.clients = 200;
  config.rounds = 2;
  config.shards = 4;
  config.drop_probability = 0.02;
  config.duplicate_probability = 0.02;
  config.retained_rounds = 1;
  config.seed = 9;

  const ThroughputResult a = run_throughput_session(tpd, config);
  const ThroughputResult b = run_throughput_session(tpd, config);
  EXPECT_EQ(a.bids_accepted, b.bids_accepted);
  EXPECT_EQ(a.trades, b.trades);
  EXPECT_EQ(a.sim_time, b.sim_time);
  EXPECT_EQ(a.bus.sent, b.bus.sent);
  EXPECT_EQ(a.bus.delivered, b.bus.delivered);
  EXPECT_EQ(a.bus.dropped, b.bus.dropped);
  EXPECT_EQ(a.bus.duplicated, b.bus.duplicated);
  EXPECT_EQ(a.bus.dead_lettered, b.bus.dead_lettered);
  // Conservation holds for the full session too.
  EXPECT_EQ(a.bus.sent + a.bus.duplicated,
            a.bus.delivered + a.bus.dropped + a.bus.dead_lettered);

  config.seed = 10;
  const ThroughputResult c = run_throughput_session(tpd, config);
  EXPECT_NE(a.bus.sent, c.bus.sent);
}

}  // namespace
}  // namespace fnda
