// Reliability features: idempotent bid resubmission at the server and
// at-least-once client retransmission over a lossy bus, plus the
// market-close refund sweep.
#include <gtest/gtest.h>

#include "market/exchange.h"
#include "protocols/tpd.h"

namespace fnda {
namespace {

TEST(ReliabilityTest, RetryRecoversFromHeavyLoss) {
  // 40% drop, retries on: with up to 6 retransmissions per bid spaced
  // well inside the round, every bid should land with overwhelming
  // probability (miss chance 0.4^7 ~ 0.16%).
  const TpdProtocol tpd(money(4.5));
  ExchangeConfig config;
  config.seed = 11;
  config.bus.drop_probability = 0.4;
  config.client.retry_interval = SimTime::millis(5);
  config.client.max_retries = 6;
  config.server.announce_interval = SimTime::millis(10);
  ExchangeSimulation exchange(tpd, config);
  exchange.add_trader(Side::kBuyer, money(9));
  exchange.add_trader(Side::kBuyer, money(7));
  exchange.add_trader(Side::kSeller, money(2));
  exchange.add_trader(Side::kSeller, money(3));

  const RoundId round = exchange.run_round(SimTime::millis(100));
  const Outcome* outcome = exchange.server().outcome_of(round);
  ASSERT_NE(outcome, nullptr);
  EXPECT_EQ(outcome->trade_count(), 2u);

  std::size_t retransmissions = 0;
  for (const auto& trader : exchange.traders()) {
    retransmissions += trader->retransmissions();
  }
  EXPECT_GT(retransmissions, 0u) << "40% loss should force retries";
}

TEST(ReliabilityTest, WithoutRetriesLossDropsBids) {
  const TpdProtocol tpd(money(4.5));
  ExchangeConfig config;
  config.seed = 13;
  config.bus.drop_probability = 0.5;
  ExchangeSimulation exchange(tpd, config);
  for (int i = 0; i < 6; ++i) {
    exchange.add_trader(Side::kBuyer, money(90));
    exchange.add_trader(Side::kSeller, money(2));
  }
  const RoundId round = exchange.run_round();
  // With 50% loss and no retries, it is overwhelmingly unlikely that all
  // 12 bids arrive.
  const auto* outcome = exchange.server().outcome_of(round);
  ASSERT_NE(outcome, nullptr);
  std::size_t accepted = 0;
  for (const auto& trader : exchange.traders()) {
    accepted += trader->bids_accepted();
  }
  EXPECT_LT(accepted, 12u);
}

TEST(ReliabilityTest, DuplicatedTransportDoesNotDoubleCount) {
  const TpdProtocol tpd(money(4.5));
  ExchangeConfig config;
  config.seed = 17;
  config.bus.duplicate_probability = 1.0;  // every message duplicated
  ExchangeSimulation exchange(tpd, config);
  TradingClient& buyer = exchange.add_trader(Side::kBuyer, money(9));
  TradingClient& seller = exchange.add_trader(Side::kSeller, money(2));

  const RoundId round = exchange.run_round();
  const Outcome* outcome = exchange.server().outcome_of(round);
  ASSERT_NE(outcome, nullptr);
  EXPECT_EQ(outcome->trade_count(), 1u);
  // Client-side dedup: one ack, one fill each despite duplication.
  EXPECT_EQ(buyer.bids_accepted(), 1u);
  EXPECT_EQ(buyer.fills().size(), 1u);
  EXPECT_EQ(seller.fills().size(), 1u);
  EXPECT_EQ(exchange.audit().count(AuditKind::kBidAccepted), 2u);
}

TEST(ReliabilityTest, RetryWithLossAndDuplicationStaysExactlyOnce) {
  const TpdProtocol tpd(money(50));
  ExchangeConfig config;
  config.seed = 19;
  config.bus.drop_probability = 0.25;
  config.bus.duplicate_probability = 0.25;
  config.client.retry_interval = SimTime::millis(4);
  config.client.max_retries = 8;
  config.server.announce_interval = SimTime::millis(10);
  ExchangeSimulation exchange(tpd, config);
  for (int i = 0; i < 5; ++i) {
    exchange.add_trader(Side::kBuyer, money(80));
    exchange.add_trader(Side::kSeller, money(10));
  }
  const RoundId round = exchange.run_round(SimTime::millis(120));
  const Outcome* outcome = exchange.server().outcome_of(round);
  ASSERT_NE(outcome, nullptr);
  // Every identity bid at most once in the book despite retransmissions
  // and duplicates: trade count is exactly min(buyers, sellers) = 5.
  EXPECT_EQ(outcome->trade_count(), 5u);
  EXPECT_EQ(exchange.audit().count(AuditKind::kBidRejected), 0u);
}

TEST(ReliabilityTest, CloseMarketRefundsAllRemainingDeposits) {
  const TpdProtocol tpd(money(4.5));
  ExchangeSimulation exchange(tpd);
  TradingClient& buyer = exchange.add_trader(Side::kBuyer, money(9));
  TradingClient& seller = exchange.add_trader(Side::kSeller, money(2));
  exchange.run_round();

  EXPECT_GT(exchange.escrow().total_held(), Money{});
  const Money refunded = exchange.close_market();
  EXPECT_EQ(refunded, money(20));  // two identities x 10
  EXPECT_EQ(exchange.escrow().total_held(), Money{});
  // Deposits are back in the owners' spendable cash.
  EXPECT_EQ(exchange.cash().balance(buyer.account()),
            money(1000 - 4.5));
  EXPECT_EQ(exchange.cash().balance(seller.account()),
            money(1000 + 4.5));
  EXPECT_EQ(exchange.audit().count(AuditKind::kDepositRefunded), 2u);
}

TEST(ReliabilityTest, CloseMarketSkipsConfiscatedDeposits) {
  const TpdProtocol tpd(money(4.5));
  ExchangeSimulation exchange(tpd);
  exchange.add_trader(Side::kSeller, money(2));
  exchange.add_trader(Side::kBuyer, money(9));
  TradingClient& attacker = exchange.add_trader(Side::kBuyer, money(7));
  Strategy attack;
  attack.declarations = {Declaration{Side::kBuyer, money(7)},
                         Declaration{Side::kSeller, money(3)}};
  attacker.set_strategy(attack);
  exchange.run_round();
  ASSERT_EQ(exchange.audit().count(AuditKind::kDepositConfiscated), 1u);

  // 4 identities posted 10 each; 1 was confiscated -> 30 refunded.
  EXPECT_EQ(exchange.close_market(), money(30));
}

TEST(ReliabilityTest, CloseMarketRefusesWhileRoundOpen) {
  const TpdProtocol tpd(money(4.5));
  ExchangeSimulation exchange(tpd);
  exchange.add_trader(Side::kBuyer, money(9));
  exchange.server().open_round(SimTime::millis(50));
  EXPECT_THROW(exchange.close_market(), std::logic_error);
  exchange.queue().run();  // drain so teardown is clean
}

}  // namespace
}  // namespace fnda
