// Exchange-level fuzz: random populations playing random (possibly
// hostile) strategies over a lossy, duplicating bus must never violate
// the substrate's conservation and coherence invariants.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "market/exchange.h"
#include "protocols/pmd.h"
#include "protocols/tpd.h"

namespace fnda {
namespace {

Strategy random_strategy(Side role, Money true_value, Rng& rng) {
  Strategy strategy;
  const std::size_t declarations = rng.below(3);  // 0, 1 or 2
  for (std::size_t d = 0; d < declarations; ++d) {
    const Side side = rng.bernoulli(0.5) ? Side::kBuyer : Side::kSeller;
    // Around the true value, sometimes wild.
    const Money value = rng.bernoulli(0.3)
                            ? rng.uniform_money(money(0), money(100))
                            : rng.uniform_money(
                                  std::max(money(0), true_value - money(10)),
                                  std::min(money(100), true_value + money(10)));
    strategy.declarations.push_back(Declaration{side, value});
  }
  if (strategy.declarations.empty()) {
    strategy = Strategy::truthful(role, true_value);
  }
  return strategy;
}

class ExchangeFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExchangeFuzzTest, ConservationAndCoherenceUnderChaos) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);

  const TpdProtocol tpd(money(50));
  const PmdProtocol pmd;
  const DoubleAuctionProtocol& protocol =
      rng.bernoulli(0.5) ? static_cast<const DoubleAuctionProtocol&>(tpd)
                         : static_cast<const DoubleAuctionProtocol&>(pmd);

  ExchangeConfig config;
  config.seed = seed * 31 + 7;
  config.bus.drop_probability = rng.uniform_double(0.0, 0.3);
  config.bus.duplicate_probability = rng.uniform_double(0.0, 0.3);
  config.bus.jitter = SimTime{rng.uniform_int(0, 3000)};
  config.client.retry_interval = SimTime::millis(rng.uniform_int(0, 8));
  config.server.announce_interval = SimTime::millis(10);
  ExchangeSimulation exchange(protocol, config);

  const std::size_t traders = 4 + rng.below(10);
  for (std::size_t t = 0; t < traders; ++t) {
    const Side role = rng.bernoulli(0.5) ? Side::kBuyer : Side::kSeller;
    const Money value = rng.uniform_money(money(0), money(100));
    TradingClient& client = exchange.add_trader(role, value);
    client.set_strategy(random_strategy(role, value, rng));
  }

  const std::size_t goods_before = exchange.goods().total();
  const Money cash_before = exchange.cash().total();

  const std::size_t rounds = 1 + rng.below(3);
  for (std::size_t r = 0; r < rounds; ++r) {
    const RoundId round = exchange.run_round(SimTime::millis(60));
    const Outcome* outcome = exchange.server().outcome_of(round);
    ASSERT_NE(outcome, nullptr);
    // Goods and cash are conserved after every settled round.
    EXPECT_EQ(exchange.goods().total(), goods_before);
    EXPECT_EQ(exchange.cash().total(), cash_before);
    // The audit log saw exactly one open and one clear per round.
    EXPECT_EQ(exchange.audit().count(AuditKind::kRoundOpened), r + 1);
    EXPECT_EQ(exchange.audit().count(AuditKind::kRoundCleared), r + 1);
    // Replay reproduces the stored outcome.
    const auto replayed = exchange.server().replay_round(round);
    ASSERT_TRUE(replayed.has_value());
    EXPECT_EQ(replayed->fills(), outcome->fills());
  }

  // Closing the market refunds every unconfiscated deposit; escrow empty.
  exchange.close_market();
  EXPECT_EQ(exchange.escrow().total_held(), Money{});
  EXPECT_EQ(exchange.cash().total(), cash_before);

  // No trader's settled wealth moved unless the ledgers say so: the sum
  // of all settled utilities equals realized trade surplus minus
  // confiscations going to the exchange (checked via cash identity).
  double total_utility = 0.0;
  for (const auto& trader : exchange.traders()) {
    total_utility += exchange.settled_utility(*trader);
  }
  const double exchange_take =
      exchange.cash()
          .balance(IdentityRegistry::exchange_account())
          .to_double();
  // Traders' net cash change + exchange take = 0 (transfers), so total
  // utility = goods-value reshuffling - exchange take.  The invariant we
  // can assert without re-deriving valuations: utilities are finite and
  // the exchange never loses money.
  EXPECT_GE(exchange_take, -1e-9);
  EXPECT_TRUE(std::isfinite(total_utility));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExchangeFuzzTest,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace fnda
