#include "market/bus.h"

#include <gtest/gtest.h>

#include <vector>

namespace fnda {
namespace {

class Recorder : public Endpoint {
 public:
  void on_message(const Envelope& envelope) override {
    received.push_back(envelope);
  }
  std::vector<Envelope> received;
};

BusConfig quiet_bus() {
  BusConfig config;
  config.base_latency = SimTime{1000};
  config.jitter = SimTime{0};
  return config;
}

TEST(MessageBusTest, DeliversAfterLatency) {
  EventQueue queue;
  MessageBus bus(queue, quiet_bus(), Rng(1));
  Recorder recorder;
  bus.attach("b", recorder);

  bus.send("a", "b", RoundOpenMsg{RoundId{0}, SimTime{5000}});
  EXPECT_TRUE(recorder.received.empty());  // not yet delivered
  queue.run();
  ASSERT_EQ(recorder.received.size(), 1u);
  EXPECT_EQ(bus.name_of(recorder.received[0].from), "a");
  EXPECT_EQ(bus.name_of(recorder.received[0].to), "b");
  EXPECT_EQ(recorder.received[0].sent_at, SimTime{0});
  EXPECT_EQ(recorder.received[0].delivered_at, SimTime{1000});
  EXPECT_STREQ(message_kind(recorder.received[0].payload), "round-open");
}

TEST(MessageBusTest, JitterBoundsLatency) {
  EventQueue queue;
  BusConfig config = quiet_bus();
  config.jitter = SimTime{500};
  MessageBus bus(queue, config, Rng(7));
  Recorder recorder;
  bus.attach("b", recorder);
  for (int i = 0; i < 200; ++i) {
    bus.send("a", "b", RoundClosedMsg{RoundId{0}, 0, Money{}});
  }
  queue.run();
  ASSERT_EQ(recorder.received.size(), 200u);
  for (const Envelope& e : recorder.received) {
    EXPECT_GE(e.delivered_at.micros, 1000);
    EXPECT_LT(e.delivered_at.micros, 1500);
  }
}

TEST(MessageBusTest, DistinctMessageIds) {
  EventQueue queue;
  MessageBus bus(queue, quiet_bus(), Rng(1));
  Recorder recorder;
  bus.attach("b", recorder);
  const MessageId a = bus.send("a", "b", RoundClosedMsg{});
  const MessageId b = bus.send("a", "b", RoundClosedMsg{});
  EXPECT_NE(a, b);
}

TEST(MessageBusTest, DuplicationSharesMessageId) {
  EventQueue queue;
  BusConfig config = quiet_bus();
  config.duplicate_probability = 1.0;
  MessageBus bus(queue, config, Rng(3));
  Recorder recorder;
  bus.attach("b", recorder);
  bus.send("a", "b", RoundClosedMsg{});
  queue.run();
  ASSERT_EQ(recorder.received.size(), 2u);
  EXPECT_EQ(recorder.received[0].id, recorder.received[1].id);
  EXPECT_EQ(bus.stats().duplicated, 1u);
  EXPECT_EQ(bus.stats().delivered, 2u);
}

TEST(MessageBusTest, DropLosesMessage) {
  EventQueue queue;
  BusConfig config = quiet_bus();
  config.drop_probability = 1.0;
  MessageBus bus(queue, config, Rng(3));
  Recorder recorder;
  bus.attach("b", recorder);
  bus.send("a", "b", RoundClosedMsg{});
  queue.run();
  EXPECT_TRUE(recorder.received.empty());
  EXPECT_EQ(bus.stats().dropped, 1u);
  EXPECT_EQ(bus.stats().sent, 1u);
}

TEST(MessageBusTest, UnknownAddressDeadLetters) {
  EventQueue queue;
  MessageBus bus(queue, quiet_bus(), Rng(1));
  bus.send("a", "nobody", RoundClosedMsg{});
  queue.run();
  EXPECT_EQ(bus.stats().dead_lettered, 1u);
  EXPECT_EQ(bus.stats().delivered, 0u);
}

TEST(MessageBusTest, DetachDeadLettersInFlight) {
  EventQueue queue;
  MessageBus bus(queue, quiet_bus(), Rng(1));
  Recorder recorder;
  bus.attach("b", recorder);
  bus.send("a", "b", RoundClosedMsg{});
  bus.detach("b");
  queue.run();
  EXPECT_TRUE(recorder.received.empty());
  EXPECT_EQ(bus.stats().dead_lettered, 1u);
}

TEST(MessageBusTest, StochasticLossRateRoughlyMatches) {
  EventQueue queue;
  BusConfig config = quiet_bus();
  config.drop_probability = 0.25;
  MessageBus bus(queue, config, Rng(11));
  Recorder recorder;
  bus.attach("b", recorder);
  constexpr int kMessages = 4000;
  for (int i = 0; i < kMessages; ++i) {
    bus.send("a", "b", RoundClosedMsg{});
  }
  queue.run();
  EXPECT_NEAR(static_cast<double>(bus.stats().dropped) / kMessages, 0.25,
              0.03);
  EXPECT_EQ(bus.stats().delivered + bus.stats().dropped,
            static_cast<std::size_t>(kMessages));
}

TEST(MessageKindTest, CoversEveryVariant) {
  EXPECT_STREQ(message_kind(RoundOpenMsg{}), "round-open");
  EXPECT_STREQ(message_kind(SubmitBidMsg{}), "submit-bid");
  EXPECT_STREQ(message_kind(BidAckMsg{}), "bid-ack");
  EXPECT_STREQ(message_kind(FillNoticeMsg{}), "fill");
  EXPECT_STREQ(message_kind(RoundClosedMsg{}), "round-closed");
  EXPECT_STREQ(message_kind(SettlementNoticeMsg{}), "settlement");
}

TEST(DedupFilterTest, FlagsRepeats) {
  DedupFilter filter;
  EXPECT_TRUE(filter.fresh(MessageId{1}));
  EXPECT_FALSE(filter.fresh(MessageId{1}));
  EXPECT_TRUE(filter.fresh(MessageId{2}));
  EXPECT_EQ(filter.seen_count(), 2u);
}

}  // namespace
}  // namespace fnda
