#include "market/server.h"

#include <gtest/gtest.h>

#include "protocols/tpd.h"

namespace fnda {
namespace {

/// Bare-bones endpoint capturing everything addressed to it.
class Probe : public Endpoint {
 public:
  void on_message(const Envelope& envelope) override {
    received.push_back(envelope);
  }
  std::size_t count(const char* kind) const {
    std::size_t n = 0;
    for (const Envelope& e : received) {
      if (std::string(message_kind(e.payload)) == kind) ++n;
    }
    return n;
  }
  std::vector<Envelope> received;
};

/// Server wired to real escrow/settlement over deterministic transport.
class ServerFixture : public ::testing::Test {
 protected:
  ServerFixture() {
    BusConfig bus_config;
    bus_config.base_latency = SimTime{100};
    bus_config.jitter = SimTime{0};
    bus_ = std::make_unique<MessageBus>(queue_, bus_config, Rng(2));
    escrow_ = std::make_unique<EscrowService>(cash_);
    settlement_ = std::make_unique<SettlementEngine>(registry_, cash_, goods_,
                                                     *escrow_);
    server_ = std::make_unique<AuctionServer>(
        "server", queue_, *bus_, tpd_, *escrow_, *settlement_, audit_, Rng(3),
        ServerConfig{});
    bus_->attach("probe", probe_);
    server_->subscribe("probe");
  }

  /// Creates a funded, deposited identity.
  IdentityId make_identity(bool endow_good) {
    const AccountId account = registry_.create_account();
    cash_.grant(account, money(1000));
    if (endow_good) goods_.grant(account, 1);
    const IdentityId identity = registry_.register_identity(account);
    escrow_->post(identity, account, money(10));
    return identity;
  }

  void submit(RoundId round, IdentityId identity, Side side, Money value) {
    bus_->send("probe", "server", SubmitBidMsg{round, identity, side, value});
  }

  EventQueue queue_;
  std::unique_ptr<MessageBus> bus_;
  IdentityRegistry registry_;
  CashLedger cash_;
  GoodsLedger goods_;
  std::unique_ptr<EscrowService> escrow_;
  std::unique_ptr<SettlementEngine> settlement_;
  AuditLog audit_;
  TpdProtocol tpd_{money(4.5)};
  std::unique_ptr<AuctionServer> server_;
  Probe probe_;
};

TEST_F(ServerFixture, RoundLifecycleBroadcasts) {
  const RoundId round = server_->open_round(SimTime::millis(10));
  queue_.run();
  EXPECT_EQ(probe_.count("round-open"), 1u);
  EXPECT_EQ(probe_.count("round-closed"), 1u);
  EXPECT_EQ(server_->rounds_completed(), 1u);
  EXPECT_FALSE(server_->round_open());
  ASSERT_NE(server_->outcome_of(round), nullptr);
  EXPECT_EQ(server_->outcome_of(round)->trade_count(), 0u);
}

TEST_F(ServerFixture, AcceptsValidBidAndClears) {
  const IdentityId buyer = make_identity(false);
  const IdentityId seller = make_identity(true);
  const RoundId round = server_->open_round(SimTime::millis(10));
  submit(round, buyer, Side::kBuyer, money(9));
  submit(round, seller, Side::kSeller, money(2));
  queue_.run();

  EXPECT_EQ(probe_.count("bid-ack"), 2u);
  const Outcome* outcome = server_->outcome_of(round);
  ASSERT_NE(outcome, nullptr);
  EXPECT_EQ(outcome->trade_count(), 1u);
  EXPECT_EQ(probe_.count("fill"), 2u);
  // Settlement delivered: the buyer account now holds the good.
  EXPECT_EQ(goods_.units(registry_.owner(buyer)), 1u);
  EXPECT_EQ(audit_.count(AuditKind::kDelivery), 1u);
}

TEST_F(ServerFixture, RejectsSecondBidFromSameIdentity) {
  const IdentityId buyer = make_identity(false);
  const RoundId round = server_->open_round(SimTime::millis(10));
  submit(round, buyer, Side::kBuyer, money(9));
  submit(round, buyer, Side::kBuyer, money(8));
  queue_.run();
  EXPECT_EQ(audit_.count(AuditKind::kBidAccepted), 1u);
  EXPECT_EQ(audit_.count(AuditKind::kBidRejected), 1u);
}

TEST_F(ServerFixture, RejectsWithoutDeposit) {
  const AccountId account = registry_.create_account();
  const IdentityId broke = registry_.register_identity(account);
  const RoundId round = server_->open_round(SimTime::millis(10));
  submit(round, broke, Side::kBuyer, money(9));
  queue_.run();
  EXPECT_EQ(audit_.count(AuditKind::kBidRejected), 1u);
  const auto records = audit_.for_round(round);
  bool found = false;
  for (const auto& r : records) {
    found |= r.detail.find("insufficient deposit") != std::string::npos;
  }
  EXPECT_TRUE(found);
}

TEST_F(ServerFixture, RejectsLateBid) {
  const IdentityId buyer = make_identity(false);
  const RoundId round = server_->open_round(SimTime::millis(1));
  queue_.run();  // round closes before this bid is sent
  submit(round, buyer, Side::kBuyer, money(9));
  queue_.run();
  EXPECT_EQ(audit_.count(AuditKind::kBidRejected), 1u);
}

TEST_F(ServerFixture, RejectsBidForWrongRound) {
  const IdentityId buyer = make_identity(false);
  server_->open_round(SimTime::millis(10));
  submit(RoundId{999}, buyer, Side::kBuyer, money(9));
  queue_.run();
  EXPECT_EQ(audit_.count(AuditKind::kBidRejected), 1u);
}

TEST_F(ServerFixture, RejectsOutOfDomainValue) {
  const IdentityId buyer = make_identity(false);
  const RoundId round = server_->open_round(SimTime::millis(10));
  submit(round, buyer, Side::kBuyer, money(2'000'000'000));
  queue_.run();
  EXPECT_EQ(audit_.count(AuditKind::kBidRejected), 1u);
}

TEST_F(ServerFixture, CannotOpenTwoRounds) {
  server_->open_round(SimTime::millis(10));
  EXPECT_THROW(server_->open_round(SimTime::millis(10)), std::logic_error);
}

TEST_F(ServerFixture, MultipleSequentialRounds) {
  const IdentityId buyer = make_identity(false);
  const IdentityId seller = make_identity(true);
  const RoundId r0 = server_->open_round(SimTime::millis(10));
  submit(r0, buyer, Side::kBuyer, money(9));
  submit(r0, seller, Side::kSeller, money(2));
  queue_.run();
  const RoundId r1 = server_->open_round(SimTime::millis(10));
  queue_.run();
  EXPECT_EQ(server_->rounds_completed(), 2u);
  EXPECT_NE(r0, r1);
  EXPECT_EQ(server_->outcome_of(r0)->trade_count(), 1u);
  EXPECT_EQ(server_->outcome_of(r1)->trade_count(), 0u);
}

TEST_F(ServerFixture, ReplayReproducesStoredOutcome) {
  const IdentityId b1 = make_identity(false);
  const IdentityId b2 = make_identity(false);
  const IdentityId s1 = make_identity(true);
  const IdentityId s2 = make_identity(true);
  const RoundId round = server_->open_round(SimTime::millis(10));
  submit(round, b1, Side::kBuyer, money(9));
  submit(round, b2, Side::kBuyer, money(7));
  submit(round, s1, Side::kSeller, money(2));
  submit(round, s2, Side::kSeller, money(3));
  queue_.run();

  const auto replayed = server_->replay_round(round);
  ASSERT_TRUE(replayed.has_value());
  EXPECT_EQ(replayed->fills(), server_->outcome_of(round)->fills());
  EXPECT_FALSE(server_->replay_round(RoundId{888}).has_value());
}

TEST_F(ServerFixture, BookStatsTrackIncrementalWorkPerRound) {
  const IdentityId buyer = make_identity(false);
  const IdentityId seller = make_identity(true);
  const RoundId round = server_->open_round(SimTime::millis(10));
  submit(round, buyer, Side::kBuyer, money(9));
  submit(round, seller, Side::kSeller, money(2));
  queue_.run();

  EXPECT_EQ(server_->book_stats().inserts, 2u);
  EXPECT_EQ(server_->book_stats().rounds_finalized, 1u);
  EXPECT_EQ(server_->book_stats().sorts_at_close, 0u);

  // Counters accumulate across rounds; replay does not re-insert or
  // re-finalize (it clears the retained ranked view).
  const auto replayed = server_->replay_round(round);
  ASSERT_TRUE(replayed.has_value());
  server_->open_round(SimTime::millis(10));
  queue_.run();
  EXPECT_EQ(server_->book_stats().inserts, 2u);
  EXPECT_EQ(server_->book_stats().rounds_finalized, 2u);
  EXPECT_EQ(server_->book_stats().sorts_at_close, 0u);
}

TEST_F(ServerFixture, FalseNameSellerConfiscatedEndToEnd) {
  const IdentityId buyer = make_identity(false);
  // A buyer account also bidding as a seller — no good behind it.
  const AccountId cheat_account = registry_.create_account();
  cash_.grant(cheat_account, money(1000));
  const IdentityId fake_seller = registry_.register_identity(cheat_account);
  escrow_->post(fake_seller, cheat_account, money(10));

  const RoundId round = server_->open_round(SimTime::millis(10));
  submit(round, buyer, Side::kBuyer, money(9));
  submit(round, fake_seller, Side::kSeller, money(2));
  queue_.run();

  EXPECT_EQ(server_->outcome_of(round)->trade_count(), 1u);
  EXPECT_EQ(audit_.count(AuditKind::kDeliveryFailed), 1u);
  EXPECT_EQ(audit_.count(AuditKind::kDepositConfiscated), 1u);
  EXPECT_EQ(escrow_->held(fake_seller), Money{});
  // The matched buyer was made whole (only its deposit is out of pocket).
  EXPECT_EQ(cash_.balance(registry_.owner(buyer)), money(990));
  EXPECT_EQ(probe_.count("settlement"), 1u);
}

TEST_F(ServerFixture, SetProtocolSwapsBetweenRounds) {
  const IdentityId buyer = make_identity(false);
  const IdentityId seller = make_identity(true);

  const RoundId r0 = server_->open_round(SimTime::millis(10));
  submit(r0, buyer, Side::kBuyer, money(9));
  submit(r0, seller, Side::kSeller, money(2));
  queue_.run();
  // tpd_ has threshold 4.5: one trade at 4.5 each side.
  EXPECT_EQ(server_->outcome_of(r0)->trade_count(), 1u);

  // Swap to a much higher threshold: the same population cannot trade.
  const TpdProtocol high(money(500));
  server_->set_protocol(high);
  const IdentityId buyer2 = make_identity(false);
  const RoundId r1 = server_->open_round(SimTime::millis(10));
  submit(r1, buyer2, Side::kBuyer, money(9));
  queue_.run();
  EXPECT_EQ(server_->outcome_of(r1)->trade_count(), 0u);

  // Replay of the OLD round still uses the old protocol.
  const auto replayed = server_->replay_round(r0);
  ASSERT_TRUE(replayed.has_value());
  EXPECT_EQ(replayed->fills(), server_->outcome_of(r0)->fills());
}

TEST_F(ServerFixture, SetProtocolRefusedWhileRoundOpen) {
  server_->open_round(SimTime::millis(10));
  const TpdProtocol other(money(9));
  EXPECT_THROW(server_->set_protocol(other), std::logic_error);
  queue_.run();
  EXPECT_NO_THROW(server_->set_protocol(other));
}

TEST_F(ServerFixture, DuplicateSubmitDeliveredTwiceCountsOnce) {
  BusConfig dup_config;
  dup_config.base_latency = SimTime{100};
  dup_config.jitter = SimTime{0};
  dup_config.duplicate_probability = 1.0;
  EventQueue queue;
  MessageBus bus(queue, dup_config, Rng(5));
  AuditLog audit;
  EscrowService escrow(cash_);
  SettlementEngine settlement(registry_, cash_, goods_, escrow);
  AuctionServer server("server2", queue, bus, tpd_, escrow, settlement, audit,
                       Rng(6), ServerConfig{});

  const AccountId account = registry_.create_account();
  cash_.grant(account, money(1000));
  const IdentityId identity = registry_.register_identity(account);
  escrow.post(identity, account, money(10));

  Probe probe;
  bus.attach("probe2", probe);
  const RoundId round = server.open_round(SimTime::millis(10));
  bus.send("probe2", "server2",
           SubmitBidMsg{round, identity, Side::kBuyer, money(9)});
  queue.run();
  // Transport duplicated the submit, but the server deduplicated it: one
  // accept, zero rejects.
  EXPECT_EQ(audit.count(AuditKind::kBidAccepted), 1u);
  EXPECT_EQ(audit.count(AuditKind::kBidRejected), 0u);
}

}  // namespace
}  // namespace fnda
