// End-to-end integration: the paper's examples replayed over the full
// message-based exchange, with settlement-truth utilities.
#include "market/exchange.h"

#include <gtest/gtest.h>

#include "protocols/pmd.h"
#include "protocols/tpd.h"

namespace fnda {
namespace {

/// Adds the Example 1/3 population (buyers 9,8,7,4; sellers 2,3,4,5) and
/// returns the seller with true value 4 (the paper's manipulator).
TradingClient& add_example1_population(ExchangeSimulation& exchange) {
  exchange.add_trader(Side::kBuyer, money(9));
  exchange.add_trader(Side::kBuyer, money(8));
  exchange.add_trader(Side::kBuyer, money(7));
  exchange.add_trader(Side::kBuyer, money(4));
  exchange.add_trader(Side::kSeller, money(2));
  exchange.add_trader(Side::kSeller, money(3));
  TradingClient& seller4 = exchange.add_trader(Side::kSeller, money(4));
  exchange.add_trader(Side::kSeller, money(5));
  return seller4;
}

TEST(ExchangeTest, TruthfulExample3RoundOverTheWire) {
  const TpdProtocol tpd(money(4.5));
  ExchangeSimulation exchange(tpd);
  TradingClient& seller4 = add_example1_population(exchange);

  const RoundId round = exchange.run_round();
  const Outcome* outcome = exchange.server().outcome_of(round);
  ASSERT_NE(outcome, nullptr);
  EXPECT_EQ(outcome->trade_count(), 3u);
  for (const Fill& fill : outcome->fills()) {
    EXPECT_EQ(fill.price, money(4.5));
  }
  // Seller with value 4 trades at 4.5: settled utility 0.5.
  EXPECT_NEAR(exchange.settled_utility(seller4), 0.5, 1e-9);
  EXPECT_EQ(seller4.bids_accepted(), 1u);
  EXPECT_EQ(seller4.settlement_failures(), 0u);
}

TEST(ExchangeTest, SettledUtilitiesMatchAnnouncedWhenEveryoneHonest) {
  const TpdProtocol tpd(money(4.5));
  ExchangeSimulation exchange(tpd);
  add_example1_population(exchange);
  exchange.run_round();
  for (const auto& trader : exchange.traders()) {
    EXPECT_NEAR(exchange.settled_utility(*trader),
                trader->announced_utility(), 1e-9)
        << trader->address();
  }
}

TEST(ExchangeTest, PmdFalseNameAttackProfitsEndToEnd) {
  // Example 1 over the wire: the trading seller (value 4) submits its real
  // seller bid plus a fake buyer bid at 4.8 under a second identity.
  // Under PMD the clearing price rises to 4.9 and the attack pays.
  const PmdProtocol pmd;
  ExchangeSimulation exchange(pmd);
  TradingClient& attacker = add_example1_population(exchange);
  Strategy attack;
  attack.declarations = {Declaration{Side::kSeller, money(4)},
                         Declaration{Side::kBuyer, money(4.8)}};
  attacker.set_strategy(attack);

  exchange.run_round();
  EXPECT_NEAR(exchange.settled_utility(attacker), 0.9, 1e-9);
  EXPECT_EQ(attacker.settlement_failures(), 0u);
}

TEST(ExchangeTest, TpdSameAttackGainsNothingEndToEnd) {
  // Example 3: the same attack under TPD leaves the attacker at its
  // truthful utility (sellers still receive exactly the threshold).
  const TpdProtocol tpd(money(4.5));
  ExchangeSimulation exchange(tpd);
  TradingClient& attacker = add_example1_population(exchange);
  Strategy attack;
  attack.declarations = {Declaration{Side::kSeller, money(4)},
                         Declaration{Side::kBuyer, money(4.8)}};
  attacker.set_strategy(attack);

  exchange.run_round();
  EXPECT_NEAR(exchange.settled_utility(attacker), 0.5, 1e-9);
}

TEST(ExchangeTest, BuyerFakeSellerBidGetsConfiscatedEndToEnd) {
  // A buyer submitting a fake *seller* bid that trades: the delivery
  // fails, the deposit is confiscated, and the pair is cancelled — the
  // Section 6 penalty path, end to end.
  const TpdProtocol tpd(money(4.5));
  ExchangeSimulation exchange(tpd);
  exchange.add_trader(Side::kSeller, money(2));
  exchange.add_trader(Side::kBuyer, money(9));
  TradingClient& attacker = exchange.add_trader(Side::kBuyer, money(7));
  Strategy attack;
  attack.declarations = {Declaration{Side::kBuyer, money(7)},
                         Declaration{Side::kSeller, money(3)}};
  attacker.set_strategy(attack);

  exchange.run_round();
  EXPECT_EQ(attacker.settlement_failures(), 1u);
  EXPECT_EQ(exchange.audit().count(AuditKind::kDepositConfiscated), 1u);
  // The attacker is strictly worse off than its truthful utility would
  // have been: it lost the deposit (10) on the fake identity.
  EXPECT_LT(exchange.settled_utility(attacker), -5.0);
}

TEST(ExchangeTest, ConservationAcrossAttackedRound) {
  const TpdProtocol tpd(money(4.5));
  ExchangeSimulation exchange(tpd);
  TradingClient& attacker = add_example1_population(exchange);
  Strategy attack;
  attack.declarations = {Declaration{Side::kBuyer, money(4)},
                         Declaration{Side::kSeller, money(2.5)}};
  attacker.set_strategy(attack);

  const std::size_t goods_before = exchange.goods().total();
  exchange.run_round();
  EXPECT_EQ(exchange.goods().total(), goods_before);
  // All cash in the system was granted by add_trader: 8 traders x 1000.
  EXPECT_EQ(exchange.cash().total(), money(8000));
}

TEST(ExchangeTest, MultipleRoundsAccumulate) {
  const TpdProtocol tpd(money(4.5));
  ExchangeSimulation exchange(tpd);
  exchange.add_trader(Side::kBuyer, money(9));
  exchange.add_trader(Side::kSeller, money(2));
  const RoundId r0 = exchange.run_round();
  const RoundId r1 = exchange.run_round();
  EXPECT_NE(r0, r1);
  EXPECT_EQ(exchange.server().rounds_completed(), 2u);
  // Round 0: the seller's unit moved to the buyer.  Round 1: the seller
  // has nothing left to sell but bids anyway; if matched, its delivery
  // fails.  Either way the system stays consistent.
  EXPECT_EQ(exchange.goods().total(), 1u);
}

TEST(ExchangeTest, AuditTrailCoversLifecycle) {
  const TpdProtocol tpd(money(4.5));
  ExchangeSimulation exchange(tpd);
  exchange.add_trader(Side::kBuyer, money(9));
  exchange.add_trader(Side::kSeller, money(2));
  const RoundId round = exchange.run_round();
  EXPECT_EQ(exchange.audit().count(AuditKind::kRoundOpened), 1u);
  EXPECT_EQ(exchange.audit().count(AuditKind::kBidAccepted), 2u);
  EXPECT_EQ(exchange.audit().count(AuditKind::kRoundCleared), 1u);
  EXPECT_EQ(exchange.audit().count(AuditKind::kDelivery), 1u);
  EXPECT_FALSE(exchange.audit().for_round(round).empty());
}

TEST(ExchangeTest, DeterministicAcrossIdenticalRuns) {
  auto run_once = [] {
    const TpdProtocol tpd(money(4.5));
    ExchangeConfig config;
    config.seed = 77;
    ExchangeSimulation exchange(tpd, config);
    exchange.add_trader(Side::kBuyer, money(9));
    exchange.add_trader(Side::kBuyer, money(7));
    exchange.add_trader(Side::kSeller, money(2));
    exchange.add_trader(Side::kSeller, money(4));
    const RoundId round = exchange.run_round();
    return exchange.server().outcome_of(round)->fills();
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(ExchangeTest, LossyTransportDegradesButStaysConsistent) {
  const TpdProtocol tpd(money(4.5));
  ExchangeConfig config;
  config.bus.drop_probability = 0.3;
  config.seed = 9;
  ExchangeSimulation exchange(tpd, config);
  TradingClient& seller4 = add_example1_population(exchange);
  (void)seller4;
  const RoundId round = exchange.run_round();
  const Outcome* outcome = exchange.server().outcome_of(round);
  ASSERT_NE(outcome, nullptr);
  // Whatever subset of bids arrived, the outcome is valid and goods are
  // conserved.
  EXPECT_LE(outcome->trade_count(), 3u);
  EXPECT_EQ(exchange.goods().total(), 4u);
}

}  // namespace
}  // namespace fnda
