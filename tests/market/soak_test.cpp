// Soak test: a long trading day combining every moving part — adaptive
// threshold re-tuning between rounds, a standing false-name attacker, a
// lossy and duplicating bus with client retries and server heartbeats —
// with the full invariant set checked after every round.
#include <gtest/gtest.h>

#include "core/surplus.h"
#include "market/exchange.h"
#include "protocols/tpd.h"
#include "sim/adaptive_threshold.h"

namespace fnda {
namespace {

TEST(SoakTest, ThirtyRoundAdaptiveDayUnderAttackAndLoss) {
  AdaptiveThresholdPolicy policy(money(20), 0.3);
  std::size_t confiscations = 0;
  double attacker_total_utility = 0.0;

  Rng population(0x50a6);
  for (int session = 0; session < 30; ++session) {
    // One exchange per session: fresh traders, same value distribution.
    TpdProtocol protocol(policy.current());
    ExchangeConfig config;
    config.seed = 7000 + static_cast<std::uint64_t>(session);
    config.bus.drop_probability = 0.15;
    config.bus.duplicate_probability = 0.15;
    config.client.retry_interval = SimTime::millis(5);
    config.client.max_retries = 5;
    config.server.announce_interval = SimTime::millis(10);
    ExchangeSimulation exchange(protocol, config);

    for (int i = 0; i < 12; ++i) {
      exchange.add_trader(Side::kBuyer,
                          population.uniform_money(money(20), money(100)));
      exchange.add_trader(Side::kSeller,
                          population.uniform_money(money(20), money(100)));
    }
    // A standing attacker: buyer who also fires a fake seller bid.
    TradingClient& attacker =
        exchange.add_trader(Side::kBuyer, money(70));
    Strategy attack;
    attack.declarations = {Declaration{Side::kBuyer, money(70)},
                           Declaration{Side::kSeller, money(30)}};
    attacker.set_strategy(attack);

    const std::size_t goods_before = exchange.goods().total();
    const Money cash_before = exchange.cash().total();

    const RoundId round = exchange.run_round(SimTime::millis(80));

    // Invariants after every session.
    ASSERT_NE(exchange.server().outcome_of(round), nullptr);
    EXPECT_EQ(exchange.goods().total(), goods_before);
    EXPECT_EQ(exchange.cash().total(), cash_before);
    const auto replayed = exchange.server().replay_round(round);
    ASSERT_TRUE(replayed.has_value());
    EXPECT_EQ(replayed->fills(),
              exchange.server().outcome_of(round)->fills());

    const SettlementReport* settlement =
        exchange.server().settlement_of(round);
    ASSERT_NE(settlement, nullptr);
    confiscations += settlement->failed;
    attacker_total_utility += exchange.settled_utility(attacker);

    exchange.close_market();
    EXPECT_EQ(exchange.escrow().total_held(), Money{});

    // Adapt from the session's true valuations (== declared, by
    // dominance) for the next session.
    OrderBook observed;
    for (const auto& trader : exchange.traders()) {
      observed.add(trader->role(), IdentityId{trader->account().value()},
                   trader->true_value());
    }
    Rng sort_rng(static_cast<std::uint64_t>(session));
    const SortedBook sorted(observed, sort_rng);
    policy.observe(sorted);
  }

  // The policy converged into the distribution's clearing region.
  EXPECT_NEAR(policy.current().to_double(), 60.0, 12.0);
  // The attacker's fake seller bids were repeatedly caught and punished:
  // across 30 sessions its cumulative settled utility is deeply negative.
  EXPECT_GT(confiscations, 5u);
  EXPECT_LT(attacker_total_utility, 0.0);
}

}  // namespace
}  // namespace fnda
