#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "market/escrow.h"
#include "market/identity.h"

namespace fnda {
namespace {

TEST(IdentityRegistryTest, AccountsAreSequentialAndDistinctFromExchange) {
  IdentityRegistry registry;
  const AccountId a = registry.create_account();
  const AccountId b = registry.create_account();
  EXPECT_NE(a, b);
  EXPECT_NE(a, IdentityRegistry::exchange_account());
  EXPECT_EQ(registry.account_count(), 2u);
}

TEST(IdentityRegistryTest, IdentitiesMapToOwners) {
  IdentityRegistry registry;
  const AccountId account = registry.create_account();
  const IdentityId id1 = registry.register_identity(account);
  const IdentityId id2 = registry.register_identity(account);
  EXPECT_NE(id1, id2);
  EXPECT_EQ(registry.owner(id1), account);
  EXPECT_EQ(registry.owner(id2), account);
  EXPECT_EQ(registry.identity_count(), 2u);
}

TEST(IdentityRegistryTest, UnknownIdentityThrows) {
  IdentityRegistry registry;
  EXPECT_THROW(registry.owner(IdentityId{99}), std::out_of_range);
}

TEST(IdentityRegistryTest, IdentitiesOfListsAllPseudonyms) {
  IdentityRegistry registry;
  const AccountId honest = registry.create_account();
  const AccountId cheat = registry.create_account();
  registry.register_identity(honest);
  const IdentityId fake1 = registry.register_identity(cheat);
  const IdentityId fake2 = registry.register_identity(cheat);
  const auto fakes = registry.identities_of(cheat);
  EXPECT_EQ(fakes.size(), 2u);
  EXPECT_NE(std::find(fakes.begin(), fakes.end(), fake1), fakes.end());
  EXPECT_NE(std::find(fakes.begin(), fakes.end(), fake2), fakes.end());
}

class EscrowTest : public ::testing::Test {
 protected:
  CashLedger cash_;
  EscrowService escrow_{cash_};
  IdentityRegistry registry_;
  AccountId trader_ = registry_.create_account();
  AccountId exchange_ = IdentityRegistry::exchange_account();
  IdentityId identity_ = registry_.register_identity(trader_);

  void SetUp() override { cash_.grant(trader_, money(100)); }
};

TEST_F(EscrowTest, PostMovesCashIntoEscrow) {
  escrow_.post(identity_, trader_, money(10));
  EXPECT_EQ(escrow_.held(identity_), money(10));
  EXPECT_EQ(cash_.balance(trader_), money(90));
  EXPECT_EQ(cash_.total(), money(100));  // conservation
}

TEST_F(EscrowTest, PostsAccumulate) {
  escrow_.post(identity_, trader_, money(10));
  escrow_.post(identity_, trader_, money(5));
  EXPECT_EQ(escrow_.held(identity_), money(15));
  EXPECT_EQ(escrow_.total_held(), money(15));
}

TEST_F(EscrowTest, RefundRestoresCash) {
  escrow_.post(identity_, trader_, money(10));
  escrow_.refund(identity_, trader_);
  EXPECT_EQ(escrow_.held(identity_), Money{});
  EXPECT_EQ(cash_.balance(trader_), money(100));
}

TEST_F(EscrowTest, ConfiscateGoesToExchange) {
  escrow_.post(identity_, trader_, money(10));
  const Money seized = escrow_.confiscate(identity_, exchange_);
  EXPECT_EQ(seized, money(10));
  EXPECT_EQ(escrow_.held(identity_), Money{});
  EXPECT_EQ(cash_.balance(exchange_), money(10));
  EXPECT_EQ(cash_.balance(trader_), money(90));
}

TEST_F(EscrowTest, ConfiscateEmptyIsNoop) {
  EXPECT_EQ(escrow_.confiscate(identity_, exchange_), Money{});
  EXPECT_EQ(cash_.balance(exchange_), Money{});
}

TEST_F(EscrowTest, RefundEmptyIsNoop) {
  escrow_.refund(identity_, trader_);
  EXPECT_EQ(cash_.balance(trader_), money(100));
}

TEST_F(EscrowTest, DoubleConfiscateSeizesOnce) {
  escrow_.post(identity_, trader_, money(10));
  EXPECT_EQ(escrow_.confiscate(identity_, exchange_), money(10));
  EXPECT_EQ(escrow_.confiscate(identity_, exchange_), Money{});
  EXPECT_EQ(cash_.balance(exchange_), money(10));
}

}  // namespace
}  // namespace fnda
