#include "market/ledger.h"

#include <gtest/gtest.h>

namespace fnda {
namespace {

TEST(CashLedgerTest, GrantAndBalance) {
  CashLedger cash;
  EXPECT_EQ(cash.balance(AccountId{1}), Money{});
  cash.grant(AccountId{1}, money(100));
  EXPECT_EQ(cash.balance(AccountId{1}), money(100));
  cash.grant(AccountId{1}, money(50));
  EXPECT_EQ(cash.balance(AccountId{1}), money(150));
}

TEST(CashLedgerTest, TransferConservesTotal) {
  CashLedger cash;
  cash.grant(AccountId{1}, money(100));
  cash.grant(AccountId{2}, money(30));
  const Money before = cash.total();
  cash.transfer(AccountId{1}, AccountId{2}, money(45));
  EXPECT_EQ(cash.balance(AccountId{1}), money(55));
  EXPECT_EQ(cash.balance(AccountId{2}), money(75));
  EXPECT_EQ(cash.total(), before);
}

TEST(CashLedgerTest, BalancesMayGoNegative) {
  CashLedger cash;
  cash.transfer(AccountId{1}, AccountId{2}, money(10));
  EXPECT_EQ(cash.balance(AccountId{1}), money(-10));
  EXPECT_EQ(cash.total(), Money{});
}

TEST(GoodsLedgerTest, GrantAndTransfer) {
  GoodsLedger goods;
  goods.grant(AccountId{1}, 2);
  EXPECT_EQ(goods.units(AccountId{1}), 2u);
  EXPECT_TRUE(goods.transfer_unit(AccountId{1}, AccountId{2}));
  EXPECT_EQ(goods.units(AccountId{1}), 1u);
  EXPECT_EQ(goods.units(AccountId{2}), 1u);
  EXPECT_EQ(goods.total(), 2u);
}

TEST(GoodsLedgerTest, TransferFailsWhenEmpty) {
  GoodsLedger goods;
  EXPECT_FALSE(goods.transfer_unit(AccountId{1}, AccountId{2}));
  goods.grant(AccountId{1}, 1);
  EXPECT_TRUE(goods.transfer_unit(AccountId{1}, AccountId{2}));
  EXPECT_FALSE(goods.transfer_unit(AccountId{1}, AccountId{2}));
  EXPECT_EQ(goods.total(), 1u);
}

TEST(GoodsLedgerTest, UnknownAccountHoldsNothing) {
  GoodsLedger goods;
  EXPECT_EQ(goods.units(AccountId{42}), 0u);
  EXPECT_EQ(goods.total(), 0u);
}

}  // namespace
}  // namespace fnda
