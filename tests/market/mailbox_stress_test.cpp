// ShardMailbox under real contention: N producer threads racing a
// concurrent drainer, with randomized per-producer batch sizes.
//
// The contract under test is the one the epoch barrier leans on: however
// the ring interleaves the producers, (a) nothing is lost or duplicated,
// (b) each producer's envelopes come out in push order, and (c) sorting
// the drained traffic by the canonical (deliver_at, source_shard,
// sequence) key yields ONE order — computable without ever running the
// threads — so the merge the inject phase performs is bit-identical for
// every thread count and every interleaving.
#include "market/fabric.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <random>
#include <thread>
#include <tuple>
#include <vector>

namespace fnda {
namespace {

using MergeKey = std::tuple<std::int64_t, std::uint32_t, std::uint64_t>;

MergeKey key_of(const RemoteEnvelope& envelope) {
  return {envelope.deliver_at.micros, envelope.source_shard,
          envelope.sequence};
}

/// deliver_at is a deterministic function of (producer, sequence) — many
/// collisions across producers, so the source_shard and sequence
/// tie-breaks actually carry weight in the canonical sort.
RemoteEnvelope make_envelope(std::uint32_t producer, std::uint64_t sequence) {
  RemoteEnvelope envelope;
  envelope.id = MessageId{producer * 1'000'000 + sequence};
  envelope.from = AddressId{producer};
  envelope.to = AddressId{100 + producer};
  envelope.sent_at = SimTime{0};
  envelope.deliver_at = SimTime{static_cast<std::int64_t>(
      (sequence * 7 + producer * 3) % 50)};
  envelope.sequence = sequence;
  envelope.source_shard = producer;
  envelope.payload = RoundOpenMsg{RoundId{sequence}, SimTime{0}};
  return envelope;
}

TEST(ShardMailboxStress, ConcurrentDrainPreservesCanonicalMergeOrder) {
  constexpr std::uint32_t kProducers = 4;
  constexpr std::uint64_t kPerProducer = 5'000;
  ShardMailbox mailbox(std::size_t{1} << 15);  // never fills: no drops

  std::atomic<bool> go{false};
  std::atomic<std::uint32_t> done{0};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (std::uint32_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      // Deterministic seeds; the *interleaving* is the random input.
      std::mt19937 rng(p + 1);
      std::uniform_int_distribution<int> batch(1, 47);
      while (!go.load(std::memory_order_acquire)) {
      }
      std::uint64_t sequence = 0;
      while (sequence < kPerProducer) {
        const std::uint64_t end = std::min<std::uint64_t>(
            kPerProducer, sequence + static_cast<std::uint64_t>(batch(rng)));
        for (; sequence < end; ++sequence) {
          ASSERT_TRUE(mailbox.push(make_envelope(p, sequence)));
        }
        std::this_thread::yield();
      }
      done.fetch_add(1, std::memory_order_release);
    });
  }

  // One drainer racing the producers, pulling whatever has landed.  The
  // epoch barrier only drains quiescent producers; draining mid-flight
  // here is a stronger exercise of the same cursor discipline.
  std::vector<RemoteEnvelope> drained;
  go.store(true, std::memory_order_release);
  while (done.load(std::memory_order_acquire) < kProducers) {
    mailbox.drain(drained);
  }
  mailbox.drain(drained);  // producers quiescent: take the tail
  for (std::thread& producer : producers) producer.join();

  ASSERT_EQ(drained.size(), std::size_t{kProducers} * kPerProducer);

  // Per-producer FIFO: the ring hands a single producer increasing slots,
  // so its envelopes must come out in push order even mid-contention.
  std::vector<std::uint64_t> next_sequence(kProducers, 0);
  for (const RemoteEnvelope& envelope : drained) {
    ASSERT_LT(envelope.source_shard, kProducers);
    EXPECT_EQ(envelope.sequence, next_sequence[envelope.source_shard]);
    ++next_sequence[envelope.source_shard];
  }

  // Canonical merge determinism: sorting by (deliver_at, source_shard,
  // sequence) must reproduce the schedule computed without threads.
  std::vector<MergeKey> got;
  got.reserve(drained.size());
  for (const RemoteEnvelope& envelope : drained) {
    got.push_back(key_of(envelope));
  }
  std::sort(got.begin(), got.end());

  std::vector<MergeKey> want;
  want.reserve(got.size());
  for (std::uint32_t p = 0; p < kProducers; ++p) {
    for (std::uint64_t s = 0; s < kPerProducer; ++s) {
      want.push_back(key_of(make_envelope(p, s)));
    }
  }
  std::sort(want.begin(), want.end());
  EXPECT_EQ(got, want);
}

// A ring at capacity under the same contention: rejected pushes are
// accounted by the producer, and accepted + rejected == attempted — the
// backpressure path loses nothing silently.
TEST(ShardMailboxStress, FullRingRejectsWithoutLosingAcceptedTraffic) {
  constexpr std::uint32_t kProducers = 4;
  constexpr std::uint64_t kPerProducer = 2'000;
  ShardMailbox mailbox(64);

  std::atomic<bool> go{false};
  std::atomic<std::uint32_t> done{0};
  std::atomic<std::uint64_t> accepted{0};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (std::uint32_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      while (!go.load(std::memory_order_acquire)) {
      }
      std::uint64_t mine = 0;
      for (std::uint64_t s = 0; s < kPerProducer; ++s) {
        if (mailbox.push(make_envelope(p, s))) ++mine;
      }
      accepted.fetch_add(mine, std::memory_order_acq_rel);
      done.fetch_add(1, std::memory_order_release);
    });
  }

  std::vector<RemoteEnvelope> drained;
  go.store(true, std::memory_order_release);
  while (done.load(std::memory_order_acquire) < kProducers) {
    mailbox.drain(drained);
  }
  mailbox.drain(drained);
  for (std::thread& producer : producers) producer.join();

  EXPECT_EQ(drained.size(), accepted.load());
  EXPECT_GT(drained.size(), 0u);
  // Whatever made it through still drains per-producer in push order.
  std::vector<std::uint64_t> last(kProducers, 0);
  std::vector<bool> seen(kProducers, false);
  for (const RemoteEnvelope& envelope : drained) {
    if (seen[envelope.source_shard]) {
      EXPECT_GT(envelope.sequence, last[envelope.source_shard]);
    }
    last[envelope.source_shard] = envelope.sequence;
    seen[envelope.source_shard] = true;
  }
}

}  // namespace
}  // namespace fnda
