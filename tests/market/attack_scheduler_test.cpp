// Adversarial co-simulation determinism (ISSUE 9 tentpole): the exchange
// output — fills, positions, ledgers, folded into LiveAttackResult's
// digest — must be bit-identical for every exchange thread count AND
// every background search-pool size, with the co-simulation enabled.
// Attack bids computed from round r inject in round r+1 through the
// normal submission path, sequenced in account order, so the staleness
// contract never leaks wall-clock nondeterminism into the market.
#include "market/attack_scheduler.h"

#include <gtest/gtest.h>

#include "market/live_attack.h"
#include "protocols/tpd.h"

namespace fnda {
namespace {

LiveAttackConfig small_session(std::size_t threads, std::size_t pool) {
  LiveAttackConfig config;
  config.honest = 60;
  config.attackers = 6;
  config.rounds = 4;
  config.shards = 2;
  config.threads = threads;
  config.search_threads = pool;
  config.grid_points = 5;
  config.max_declarations = 2;
  config.seed = 7;
  config.telemetry.enabled = false;
  return config;
}

TEST(AttackSchedulerDeterminism, OutputBitIdenticalAcrossThreadCounts) {
  const TpdProtocol tpd(Money::from_units(50));
  const LiveAttackResult one =
      run_live_attack_session(tpd, small_session(1, 1));
  const LiveAttackResult two =
      run_live_attack_session(tpd, small_session(2, 2));
  const LiveAttackResult eight =
      run_live_attack_session(tpd, small_session(8, 8));

  EXPECT_EQ(one.digest, two.digest);
  EXPECT_EQ(one.digest, eight.digest);
  EXPECT_EQ(one.trades, two.trades);
  EXPECT_EQ(one.trades, eight.trades);
  EXPECT_EQ(one.bids_accepted, two.bids_accepted);
  EXPECT_EQ(one.bids_accepted, eight.bids_accepted);
  EXPECT_EQ(one.attack.searches, eight.attack.searches);
  EXPECT_EQ(one.attack.warm_hits, eight.attack.warm_hits);
  EXPECT_EQ(one.planned_gain_total, eight.planned_gain_total);
  EXPECT_EQ(one.efficiency_ratio, eight.efficiency_ratio);

  // Golden digest of the co-simulated exchange output.  Re-pin on an
  // intentional market/search change, with justification.
  EXPECT_EQ(one.digest, 0x8ab1d6174c41ac58ull)
      << "digest: " << std::hex << one.digest;
}

TEST(AttackSchedulerDeterminism, SearchPoolSizeDoesNotChangeOutput) {
  // Same exchange threads, different pool fan-out: the planning results
  // are per-account deterministic, so only wall time may differ.
  const TpdProtocol tpd(Money::from_units(50));
  const LiveAttackResult narrow =
      run_live_attack_session(tpd, small_session(2, 1));
  const LiveAttackResult wide =
      run_live_attack_session(tpd, small_session(2, 8));
  EXPECT_EQ(narrow.digest, wide.digest);
  EXPECT_EQ(narrow.attack.searches, wide.attack.searches);
  EXPECT_EQ(narrow.attack.warm_hits, wide.attack.warm_hits);
  EXPECT_EQ(narrow.planned_gain_total, wide.planned_gain_total);
}

TEST(AttackSchedulerDeterminism, WarmAndColdSearchesAgreeOnOutput) {
  // Warm-start is a pure accelerator: disabling it must reproduce the
  // exchange output bit for bit (only coverage/latency counters differ).
  const TpdProtocol tpd(Money::from_units(50));
  LiveAttackConfig cold_config = small_session(1, 2);
  cold_config.warm = false;
  const LiveAttackResult warm =
      run_live_attack_session(tpd, small_session(1, 2));
  const LiveAttackResult cold = run_live_attack_session(tpd, cold_config);
  EXPECT_EQ(warm.digest, cold.digest);
  EXPECT_EQ(warm.trades, cold.trades);
  EXPECT_EQ(warm.planned_gain_total, cold.planned_gain_total);
  EXPECT_EQ(cold.attack.warm_hits, 0u);
  EXPECT_GT(warm.attack.warm_hits + warm.attack.warm_seeded, 0u);
}

TEST(AttackSchedulerDeterminism, BudgetShedsDeterministically) {
  const TpdProtocol tpd(Money::from_units(50));
  LiveAttackConfig config = small_session(1, 2);
  config.search_budget = 2;
  const LiveAttackResult a = run_live_attack_session(tpd, config);
  const LiveAttackResult b = run_live_attack_session(tpd, config);
  EXPECT_EQ(a.digest, b.digest);
  // 6 attackers, budget 2, planning after rounds 0..2: 3 rounds * 4 shed.
  EXPECT_EQ(a.attack.shed, 12u);
  EXPECT_EQ(a.attack.searches, 6u);
  // The rotating window must cover the population across rounds.
  EXPECT_EQ(a.attack.rounds, 3u);
}

TEST(AttackSchedulerDeterminism, SessionEmitsBothMetricFamilies) {
  const TpdProtocol tpd(Money::from_units(50));
  const LiveAttackResult result =
      run_live_attack_session(tpd, small_session(1, 1));
  // Mechanism level...
  EXPECT_EQ(result.attack.rounds, 3u);  // rounds - 1 planning rounds
  EXPECT_EQ(result.attack.searches, 18u);
  EXPECT_GT(result.trades, 0u);
  EXPECT_GT(result.efficiency_ratio, 0.0);
  EXPECT_LE(result.efficiency_ratio, 1.0 + 1e-9);
  // ...and systems level, from the same run.
  EXPECT_EQ(result.round_wall_ns.size(), result.rounds);
  EXPECT_GT(result.total_wall_ns, 0u);
  EXPECT_GT(result.bus.delivered, 0u);
#ifndef FNDA_NO_TELEMETRY
  ASSERT_NE(result.metrics.find("fnda_attack_rounds_total"), nullptr);
  EXPECT_EQ(result.metrics.find("fnda_attack_rounds_total")->counter, 3u);
  ASSERT_NE(result.metrics.find("fnda_attack_warm_hits_total"), nullptr);
  ASSERT_NE(result.metrics.find("fnda_attack_search_latency_us"), nullptr);
#endif
}

}  // namespace
}  // namespace fnda
